#!/bin/sh
# shard_smoke.sh — CI gate for the sharded sweep tier (make bench-shard-smoke).
#
# Proves the shard/merge contract end to end on a tiny-budget fig10:
#
#   1. Static shards: running bucket 0/2 and 1/2 as separate processes
#      (each publishing only its owned study rows to a shared persistent
#      cache) and then merging — a plain run against the warm cache —
#      renders byte-identical to a never-sharded baseline.
#   2. The merge actually reused the shards' work: its run manifest shows
#      memo.persist_hits > 0 and memo.persist_misses == 0 (every study row
#      was served from the cache, none recomputed).
#   3. Coordinator mode: `-shard-coordinator 2` (spawned workers claiming
#      buckets over the work-claiming HTTP protocol, then merging in-process)
#      also renders byte-identical to the baseline.
#
# The CLI's timing footer is the only line stripped from comparisons (same
# idiom as bench-queue-smoke). Requires: go, jq. Writes only under /tmp.
set -eu

GO=${GO:-go}
TMP=/tmp/capsim_shard_smoke
rm -rf "$TMP"
mkdir -p "$TMP"
BIN="$TMP/capsim"
B="-parallel 2 -queue-instrs 3000"

fail() {
	echo "shard-smoke FAIL: $*" >&2
	exit 1
}

$GO build -o "$BIN" ./cmd/capsim

# --- baseline: never sharded, no persistent cache --------------------------
"$BIN" -experiment fig10 $B | grep -v '^(fig10 in ' > "$TMP/base.txt"

# --- 1. static shards + merge ----------------------------------------------
"$BIN" -experiment fig10 $B -shard 0/2 -study-cache "$TMP/static" 2>/dev/null \
	> "$TMP/shard0.txt"
"$BIN" -experiment fig10 $B -shard 1/2 -study-cache "$TMP/static" 2>/dev/null \
	> "$TMP/shard1.txt"
# Shard workers render nothing: stdout is reserved for the merge.
[ -s "$TMP/shard0.txt" ] && fail "static shard 0/2 wrote to stdout"
[ -s "$TMP/shard1.txt" ] && fail "static shard 1/2 wrote to stdout"
"$BIN" -experiment fig10 $B -study-cache "$TMP/static" \
	-metrics-out "$TMP/merge.manifest.json" 2>/dev/null \
	| grep -v '^(fig10 in ' > "$TMP/merged.txt"
cmp -s "$TMP/base.txt" "$TMP/merged.txt" || {
	diff "$TMP/base.txt" "$TMP/merged.txt" >&2 || true
	fail "static-shard merge differs from unsharded baseline"
}

# --- 2. the merge reused the shards' rows ----------------------------------
hits=$(jq -r '.final.counters["memo.persist_hits"] // 0' "$TMP/merge.manifest.json")
misses=$(jq -r '.final.counters["memo.persist_misses"] // 0' "$TMP/merge.manifest.json")
[ "$hits" -gt 0 ] || fail "merge took no persistent-cache hits (hits=$hits)"
[ "$misses" -eq 0 ] || fail "merge recomputed $misses study rows the shards should have published"

# --- 3. coordinator mode ----------------------------------------------------
"$BIN" -experiment fig10 $B -shard-coordinator 2 -study-cache "$TMP/coord" \
	2> "$TMP/coord.log" | grep -v '^(fig10 in ' > "$TMP/coord.txt"
cmp -s "$TMP/base.txt" "$TMP/coord.txt" || {
	cat "$TMP/coord.log" >&2
	diff "$TMP/base.txt" "$TMP/coord.txt" >&2 || true
	fail "coordinator merge differs from unsharded baseline"
}
grep -q 'buckets done; merging' "$TMP/coord.log" \
	|| fail "coordinator log missing completion line"

echo "shard-smoke ok (static + coordinator merges byte-identical; merge served $hits rows from the shard cache)"
