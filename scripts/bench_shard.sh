#!/bin/sh
# bench_shard.sh — regenerate BENCH_shard.json (make bench-shard).
#
# Records the shard tier's scaling curve and the persistent study cache's
# warm-vs-cold win on the full experiment registry, six elements in order:
#
#   1. cold        — unsharded `-experiment all`, no study cache: the
#                    single-process reference cost.
#   2-5. shards=N  — `-shard-coordinator N` for N in 1 2 4 8, each against a
#                    fresh cache: shard_wall_ns is the worker phase (the
#                    distributed compute), total_wall_ns the merge (every row
#                    a warm-cache hit); end-to-end is their sum. On a
#                    single-core box the curve records process overhead —
#                    the workers time-slice one core — while a multi-core
#                    box sees the worker phase shrink with N.
#   6. warm        — unsharded `-experiment all` against the cache the
#                    shards=8 leg left behind: every study row is reused
#                    from disk, so total_wall_ns must beat the cold leg by
#                    a wide margin (the acceptance criterion).
#
# All legs run -parallel 1 so the comparison is pure shard/cache effect.
# Renders go to /dev/null: the byte-identity of shard merges is ci's
# bench-shard-smoke gate, not this benchmark's job.
set -eu

GO=${GO:-go}
TMP=/tmp/capsim_bench_shard
rm -rf "$TMP"
mkdir -p "$TMP"
B="-experiment all -parallel 1"

$GO run ./cmd/capsim $B -bench-json "$TMP/cold.json" >/dev/null

for n in 1 2 4 8; do
	rm -rf "$TMP/cache"
	$GO run ./cmd/capsim $B -shard-coordinator "$n" -study-cache "$TMP/cache" \
		-bench-json "$TMP/shard$n.json" >/dev/null 2>"$TMP/shard$n.log"
done

# The shards=8 leg's cache is still warm: the reuse leg renders everything
# from it without recomputing a single study row.
$GO run ./cmd/capsim $B -study-cache "$TMP/cache" -bench-json "$TMP/warm.json" >/dev/null

{
	printf '[\n'
	cat "$TMP/cold.json"
	for n in 1 2 4 8; do
		printf ',\n'
		cat "$TMP/shard$n.json"
	done
	printf ',\n'
	cat "$TMP/warm.json"
	printf ']\n'
} > BENCH_shard.json

cold=$(sed -n 's/^ *"total_wall_ns": *\([0-9]*\).*/\1/p' "$TMP/cold.json")
warm=$(sed -n 's/^ *"total_wall_ns": *\([0-9]*\).*/\1/p' "$TMP/warm.json")
echo "wrote BENCH_shard.json (cold ${cold}ns vs warm ${warm}ns unsharded)"
[ "$warm" -lt "$cold" ] || {
	echo "bench-shard: warm-cache run did not beat cold ($warm >= $cold)" >&2
	exit 1
}
