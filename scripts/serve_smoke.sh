#!/bin/sh
# serve_smoke.sh — CI smoke test for the experiment API server (make serve-smoke).
#
# Boots `capsim -serve-api` on an ephemeral port and proves the service
# contract end to end:
#
#   1. POST /v1/run for a small fig10 renders byte-identical to the CLI
#      (`capsim -experiment fig10` with the same budgets) — the tentpole
#      acceptance criterion.
#   2. A second identical POST is served from the response cache.
#   3. With one run slot (-api-inflight 1, no queue wait), a request that
#      arrives while a slow run is in flight is rejected with 429.
#   4. Cancelling the slow request (client disconnect) stops its sweep
#      early: the run slot frees long before the run's full budget could
#      have completed.
#   5. A `stream: true` POST yields valid NDJSON — a ledger header line
#      first, a terminal "result" line last — and the result's render is
#      byte-identical to the CLI's.
#   6. Disconnecting a streamed run mid-feed cancels it: in_flight returns
#      to zero, same contract as the buffered path.
#   7. SIGTERM drains gracefully: the process exits 0 and confirms the
#      drain. (Drain-cancels-in-flight-runs is locked by the package's
#      TestDrain; here the smoke proves the process-level signal path.)
#
# Requires: go, curl, jq. Uses no fixed ports and writes only under /tmp.
set -eu

GO=${GO:-go}
TMP=/tmp/capsim_serve_smoke
rm -rf "$TMP"
mkdir -p "$TMP"
BIN="$TMP/capsim"
LOG="$TMP/server.log"

SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

fail() {
    echo "serve-smoke FAIL: $*" >&2
    [ -f "$LOG" ] && { echo "--- server log ---" >&2; cat "$LOG" >&2; }
    exit 1
}

# wait_until SECONDS CMD... — poll CMD until it succeeds or SECONDS of wall
# time elapse (returns 1). A wall-clock deadline, not a fixed iteration
# count: each probe's own cost (curl on a loaded box) eats into the budget
# instead of silently stretching it.
wait_until() {
    deadline=$(( $(date +%s) + $1 ))
    shift
    while :; do
        "$@" && return 0
        [ "$(date +%s)" -ge "$deadline" ] && return 1
        sleep 0.1
    done
}

$GO build -o "$BIN" ./cmd/capsim

# --- reference render via the CLI -----------------------------------------
# The CLI prints Render() followed by a timing footer and a blank line; the
# footer is the only line stripped (same idiom as bench-queue-smoke).
"$BIN" -experiment fig10 -parallel 2 -queue-instrs 3000 \
    | grep -v '^(fig10 in ' > "$TMP/cli.txt"

# --- boot the server on an ephemeral port ---------------------------------
"$BIN" -serve-api 127.0.0.1:0 -api-inflight 1 -api-queue-wait -1s \
    -drain-grace 2s 2> "$LOG" &
SRV_PID=$!

BASE=""
server_bound() {
    kill -0 "$SRV_PID" 2>/dev/null || fail "server exited before binding"
    BASE=$(sed -n 's/.*experiment API on \(http:\/\/[0-9.:]*\).*/\1/p' "$LOG" | head -n1)
    [ -n "$BASE" ]
}
wait_until 10 server_bound || fail "server never reported its address"

# --- 1. byte-identical render ---------------------------------------------
code=$(curl -s -o "$TMP/run1.json" -w '%{http_code}' \
    -X POST "$BASE/v1/run" -H 'Content-Type: application/json' \
    -d '{"experiment":"fig10","parallel":2,"queue_instrs":3000}')
[ "$code" = "200" ] || fail "POST /v1/run returned $code: $(cat "$TMP/run1.json")"
jq -r '.render' "$TMP/run1.json" > "$TMP/api.txt"
cmp -s "$TMP/cli.txt" "$TMP/api.txt" || {
    diff "$TMP/cli.txt" "$TMP/api.txt" >&2 || true
    fail "API render differs from CLI render"
}
[ "$(jq -r '.cached' "$TMP/run1.json")" = "false" ] || fail "first run claims cached"

# --- 2. cache hit ----------------------------------------------------------
code=$(curl -s -o "$TMP/run2.json" -w '%{http_code}' \
    -X POST "$BASE/v1/run" -H 'Content-Type: application/json' \
    -d '{"experiment":"fig10","parallel":2,"queue_instrs":3000}')
[ "$code" = "200" ] || fail "cached POST returned $code"
[ "$(jq -r '.cached' "$TMP/run2.json")" = "true" ] || fail "second run not cached"
jq -r '.render' "$TMP/run2.json" > "$TMP/api2.txt"
cmp -s "$TMP/cli.txt" "$TMP/api2.txt" || fail "cached render differs from CLI render"

# --- 3. admission control: 429 while the one slot is busy ------------------
# A deliberately slow run (large serial budget, uncached key) occupies the
# single slot; /healthz confirms admission before the probe is sent.
curl -s -o "$TMP/slow.json" -X POST "$BASE/v1/run" \
    -H 'Content-Type: application/json' \
    -d '{"experiment":"fig10","seed":7,"parallel":1,"queue_instrs":1000000,"no_cache":true}' &
SLOW_CURL=$!

in_flight_is() {
    inflight=$(curl -s "$BASE/healthz" | jq -r '.in_flight' 2>/dev/null || echo "")
    [ "$inflight" = "$1" ]
}
wait_until 10 in_flight_is 1 || fail "slow run never occupied the run slot"

code=$(curl -s -o "$TMP/busy.json" -w '%{http_code}' \
    -X POST "$BASE/v1/run" -H 'Content-Type: application/json' \
    -d '{"experiment":"fig10","seed":8,"queue_instrs":3000,"no_cache":true}')
[ "$code" = "429" ] || fail "expected 429 while slot busy, got $code: $(cat "$TMP/busy.json")"

# --- 4. client disconnect cancels the sweep --------------------------------
# Killing the client cancels the request context; the sweep stops claiming
# simulation jobs and the run slot frees after at most the one in-flight
# job — far sooner than the run's full budget (~20s serial) could finish.
kill "$SLOW_CURL" 2>/dev/null || true
wait "$SLOW_CURL" 2>/dev/null || true
wait_until 10 in_flight_is 0 || fail "cancelled request did not release its run slot (sweep kept running)"

# --- 5. streamed run: valid NDJSON, final render byte-identical -------------
code=$(curl -s -N -o "$TMP/stream.ndjson" -w '%{http_code}' \
    -X POST "$BASE/v1/run" -H 'Content-Type: application/json' \
    -d '{"experiment":"fig10","parallel":2,"queue_instrs":3000,"stream":true}')
[ "$code" = "200" ] || fail "streamed POST returned $code: $(cat "$TMP/stream.ndjson")"
jq -c . < "$TMP/stream.ndjson" > /dev/null 2>&1 || fail "stream is not valid NDJSON"
[ "$(head -n1 "$TMP/stream.ndjson" | jq -r '.t')" = "ledger" ] \
    || fail "stream does not open with the ledger header line"
[ "$(tail -n1 "$TMP/stream.ndjson" | jq -r '.t')" = "result" ] \
    || fail "stream does not end with a result line: $(tail -n1 "$TMP/stream.ndjson")"
tail -n1 "$TMP/stream.ndjson" | jq -r '.response.render' > "$TMP/stream_render.txt"
cmp -s "$TMP/cli.txt" "$TMP/stream_render.txt" || {
    diff "$TMP/cli.txt" "$TMP/stream_render.txt" >&2 || true
    fail "streamed result render differs from CLI render"
}
[ "$(tail -n1 "$TMP/stream.ndjson" | jq -r '.response.cached')" = "false" ] \
    || fail "streamed run claims cached (streams must bypass the response cache)"

# --- 6. mid-stream disconnect frees the run slot ----------------------------
curl -s -N -o "$TMP/stream_slow.ndjson" -X POST "$BASE/v1/run" \
    -H 'Content-Type: application/json' \
    -d '{"experiment":"fig10","seed":9,"parallel":1,"queue_instrs":1000000,"stream":true}' &
STREAM_CURL=$!
wait_until 10 in_flight_is 1 || fail "streamed slow run never occupied the run slot"
kill "$STREAM_CURL" 2>/dev/null || true
wait "$STREAM_CURL" 2>/dev/null || true
wait_until 10 in_flight_is 0 || fail "disconnected stream did not release its run slot"

# --- 7. graceful drain on SIGTERM ------------------------------------------
kill -TERM "$SRV_PID"
if wait "$SRV_PID"; then :; else fail "server exited non-zero after SIGTERM"; fi
SRV_PID=""
grep -q 'drained' "$LOG" || fail "server log missing drain confirmation"

echo "serve-smoke ok (render byte-identical to CLI; cache, 429, streaming and drain exercised)"
