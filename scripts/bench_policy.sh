#!/bin/sh
# bench_policy.sh — regenerate BENCH_policy.json (make bench-policy).
#
# Records the interval-policy replay engine's win on the Section 6 suite —
# fig12, fig13 and the policy ablations (ablation-interval carries the
# per-interval oracle, ablation-switch the penalty sweep) — two elements in
# order:
#
#   1. direct — -onepass=false: every policy x penalty cell simulates its own
#               private QueueMachine from a fresh stream.
#   2. replay — -onepass=true: one MultiCore family pass per (app, sizes)
#               materializes the per-interval (cycles, issued) columns; every
#               fixed-policy cell, penalty point and oracle trace replays
#               them through its own clock accounting, and stateful policies
#               race in lockstep columns (core.MultiPolicy).
#
# All four ids run in ONE process per leg (-experiment takes a comma list),
# so the replay leg's cross-driver reuse — the family key excludes the switch
# penalty — is part of what is measured. Both legs run -parallel 1 so the
# comparison is pure compute; renders go to /dev/null (byte identity is ci's
# bench-policy-smoke gate). The replay element's trace_ratio field records
# the compressed reference/instruction tier's footprint against its flat
# equivalent (the classify_* fields stay 0 here: classification streams
# serve the joint cache x queue kernel, not the queue-only interval suite).
#
# Fails unless the replay leg beats the direct leg by >= 1.5x — the
# acceptance floor for the one-pass policy engine.
set -eu

GO=${GO:-go}
TMP=/tmp/capsim_bench_policy
rm -rf "$TMP"
mkdir -p "$TMP"
B="-experiment fig12,fig13,ablation-interval,ablation-switch -parallel 1"

$GO run ./cmd/capsim $B -onepass=false -bench-json "$TMP/direct.json" >/dev/null
$GO run ./cmd/capsim $B -onepass=true -bench-json "$TMP/replay.json" >/dev/null

{
	printf '[\n'
	cat "$TMP/direct.json"
	printf ',\n'
	cat "$TMP/replay.json"
	printf ']\n'
} > BENCH_policy.json

direct=$(sed -n 's/^ *"total_wall_ns": *\([0-9]*\).*/\1/p' "$TMP/direct.json")
replay=$(sed -n 's/^ *"total_wall_ns": *\([0-9]*\).*/\1/p' "$TMP/replay.json")
ratio=$(sed -n 's/^ *"trace_ratio": *\([0-9.e+-]*\).*/\1/p' "$TMP/replay.json")
echo "wrote BENCH_policy.json (direct ${direct}ns vs replay ${replay}ns, trace_ratio ${ratio:-n/a})"
awk -v d="$direct" -v r="$replay" 'BEGIN {
	if (r <= 0 || d / r < 1.5) {
		printf "bench-policy: replay speedup %.2fx below the 1.5x floor\n", (r > 0 ? d / r : 0) > "/dev/stderr"
		exit 1
	}
	printf "bench-policy: replay speedup %.2fx (floor 1.5x)\n", d / r
}'
