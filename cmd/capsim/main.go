// Command capsim regenerates the tables and figures of the CAP paper
// (Albonesi, "Dynamic IPC/Clock Rate Optimization", ISCA 1998).
//
// Usage:
//
//	capsim -list
//	capsim -experiment fig9
//	capsim -experiment all -cache-refs 2000000 -queue-instrs 1000000
//	capsim -experiment all -parallel 8 -bench-json BENCH_sweep.json
//	capsim -experiment fig7 -parallel 1 -cpuprofile fig7.pprof
//	capsim -experiment fig7 -onepass=false   # legacy per-boundary oracle
//	capsim -experiment fig10 -queue-engine scan   # per-cycle window-scan engine
//	capsim -experiment all -trace-out run.trace.json   # Chrome trace timeline
//	capsim -experiment all -metrics-out run.json       # run manifest + counters
//	capsim -experiment all -serve :8417                # live expvar endpoint
//	capsim -experiment fig10 -obs-assert               # runtime invariant checks
//	capsim -experiment ablation-interval -ledger-out run.ledger.gz  # flight recorder
//	capsim -experiment zoo -ledger-out zoo.ledger.gz   # policy league race
//	capsim -report run.ledger.gz,run.json              # offline regret analysis
//
// Output is byte-identical at every -parallel setting: simulation jobs derive
// their random streams from (seed, benchmark, purpose) and results are
// collected by grid index, so the worker count changes only the wall time.
// It is also byte-identical at either -onepass setting: the one-pass path
// (default) profiles every cache boundary in a single replay of a shared
// materialized trace, while -onepass=false re-generates every stream per
// configuration cell; only wall time and memory differ. Likewise
// -queue-engine selects between the event-driven issue-queue engine (default)
// and the per-cycle window scan it replaces; the two are bit-identical in
// every statistic and differ only in asymptotic cost. The telemetry flags
// (-obs, -trace-out, -metrics-out, -serve, -obs-assert) never change stdout
// either: observability receives statistics, it does not feed them back (all
// telemetry notices go to stderr; `make ci`'s bench-obs-smoke enforces the
// byte identity).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"capsim/internal/classify"
	"capsim/internal/experiments"
	"capsim/internal/flight"
	"capsim/internal/obs"
	"capsim/internal/ooo"
	"capsim/internal/server"
	"capsim/internal/sweep"
	"capsim/internal/tech"
	"capsim/internal/trace"
)

// benchCommand is the invocation recorded in -bench-json reports. argv[0]
// is normalized to the bare binary name so records are comparable across
// `go run` builds, whose temporary binary path changes with every compile
// — `make bench` diffs this field against the flags it is about to run to
// refuse silently overwriting a record with different semantics.
func benchCommand() string {
	return strings.Join(append([]string{"capsim"}, os.Args[1:]...), " ")
}

// benchRecord is one experiment's measured cost for -bench-json.
type benchRecord struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	WallNS int64  `json:"wall_ns"`
	// Allocs and AllocBytes are process-wide deltas over the experiment
	// (runtime.ReadMemStats), so they attribute every allocation made by the
	// experiment's goroutines, including the sweep workers.
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// benchReport is the top-level -bench-json document. The -metrics-out
// manifest (obs.Manifest) is a superset of this schema: shared field names
// keep their meaning, so consumers of either file can parse both.
type benchReport struct {
	Generated   string `json:"generated"`
	Command     string `json:"command"`
	Parallel    int    `json:"parallel"`
	Onepass     bool   `json:"onepass"`
	QueueEngine string `json:"queue_engine"`
	ObsEnabled  bool   `json:"obs_enabled"`
	// Host metadata: identifies the machine and toolchain a record was
	// measured on. scripts/bench_guard.sh compares only the command field,
	// so these never make a record stale — they contextualize wall times
	// (a record from a different host is comparable in shape, not speed).
	GOMAXPROCS  int           `json:"gomaxprocs"`
	NumCPU      int           `json:"num_cpu"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	Seed        uint64        `json:"seed"`
	CacheRefs   int64         `json:"cache_refs"`
	QueueInstrs int64         `json:"queue_instrs"`
	Experiments []benchRecord `json:"experiments"`
	TotalWallNS int64         `json:"total_wall_ns"`
	// Trace-tier footprint at the end of the run: live (compressed) bytes
	// across the materialized stores, what the same contents would occupy
	// in the flat pre-compression layout, and their ratio (0 when no store
	// was materialized, e.g. -onepass=false).
	TraceBudget   int64   `json:"trace_budget"`
	TraceBytes    int64   `json:"trace_bytes"`
	TraceRawBytes int64   `json:"trace_raw_bytes"`
	TraceRatio    float64 `json:"trace_ratio"`
	// Classification-tier footprint, same convention: encoded RLE+varint
	// bytes across materialized class streams against the flat
	// one-byte-per-class equivalent.
	ClassifyBytes    int64   `json:"classify_bytes"`
	ClassifyRawBytes int64   `json:"classify_raw_bytes"`
	ClassifyRatio    float64 `json:"classify_ratio"`
	// Shard coordinator runs: worker count and the wall time the worker
	// phase took before the merge. The per-experiment records above then
	// measure only the merge (every row a warm-cache hit), so end-to-end
	// wall is shard_wall_ns + total_wall_ns.
	Shards      int   `json:"shards,omitempty"`
	ShardWallNS int64 `json:"shard_wall_ns,omitempty"`
}

// main is a thin shell around run: all error paths return through run's
// single exit point so every deferred cleanup — pprof.StopCPUProfile, the
// profile file's Close, obs.StopTrace flushing the Chrome trace array —
// executes before the process decides its exit status. (The old main called
// os.Exit mid-function, which skipped the deferred StopCPUProfile and
// silently truncated profiles on any later error.)
func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "capsim: %v\n", err)
		if ec, ok := err.(exitCoder); ok {
			os.Exit(ec.code)
		}
		os.Exit(1)
	}
}

// exitCoder carries a specific exit status through run's error return.
type exitCoder struct {
	error
	code int
}

// usageErr wraps a usage problem with exit status 2 (flag package convention).
func usageErr(format string, args ...any) error {
	return exitCoder{fmt.Errorf(format, args...), 2}
}

func run() (err error) {
	var (
		list        = flag.Bool("list", false, "list available experiments and exit")
		experiment  = flag.String("experiment", "", "experiment id, comma-separated list of ids, or 'all'")
		seed        = flag.Uint64("seed", 1998, "master workload seed")
		cacheRefs   = flag.Int64("cache-refs", 400_000, "measured references per cache configuration")
		cacheWarm   = flag.Int64("cache-warm", 100_000, "warm-up references per cache configuration")
		queueInstrs = flag.Int64("queue-instrs", 150_000, "measured instructions per queue configuration")
		interval    = flag.Int64("interval", 2_000, "interval length in instructions (Section 6 studies)")
		penalty     = flag.Int("switch-penalty", -1, "clock-switch penalty in cycles (-1 = default)")
		feature     = flag.Float64("feature", 0.18, "feature size in microns (0.25, 0.18, 0.12)")
		parallel    = flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker count (1 = serial; output is identical at any setting)")
		onepass     = flag.Bool("onepass", true, "profile over the shared materialized trace in one pass (false = legacy per-configuration streams; output is identical either way)")
		traceBudget = flag.Int64("trace-budget", 0, "materialized-trace byte ceiling; cold stores evict and regenerate on demand (0 = unbounded; output is identical at any setting)")
		queueEngine = flag.String("queue-engine", "event", "issue-queue engine: 'event' (event-driven wakeup/select) or 'scan' (per-cycle window scan); output is identical either way")
		studyCache  = flag.String("study-cache", "", "persistent content-addressed study cache directory; repeated runs, CI and shard workers reuse finished profiling rows instead of recomputing (output is identical with or without)")
		studyBudget = flag.Int64("study-cache-budget", 0, "study-cache byte ceiling: publications past it evict least-recently-used entries, deterministically (0 = unbounded; output is identical at any setting)")
		shardSpec   = flag.String("shard", "", "run as static shard i/N: compute and publish only the study rows bucket i owns, render nothing (requires -study-cache)")
		shardCoord  = flag.Int("shard-coordinator", 0, "spawn N worker processes over the work-claiming protocol, then render the merge (requires -study-cache; output is byte-identical to an unsharded run)")
		shardBucket = flag.Int("shard-buckets", 0, "shard-coordinator: bucket-space size (default 4N, so fast workers absorb slow workers' tail)")
		shardClaim  = flag.String("shard-claim", "", "run as dynamic shard worker claiming buckets from this coordinator URL until exhausted (requires -study-cache)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		benchJSON   = flag.String("bench-json", "", "write per-experiment wall time and allocation deltas as JSON to this file")
		ledgerOut   = flag.String("ledger-out", "", "write the flight-recorder decision ledger (per-interval NDJSON, gzip when the path ends in .gz) of every adaptive-policy run to this file")
		reportIn    = flag.String("report", "", "offline ledger analysis: read comma-separated ledger/manifest files, print regret, switch-rate and dwell tables, and exit (no simulation)")
		obsOn       = flag.Bool("obs", false, "enable telemetry counters (implied by -metrics-out and -serve)")
		obsAssert   = flag.Bool("obs-assert", false, "enable runtime invariant self-checks in the simulators (panics on violation)")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event timeline (chrome://tracing, ui.perfetto.dev) to this file")
		metricsOut  = flag.String("metrics-out", "", "write a run manifest (build provenance, flags, per-experiment cost, counter snapshot) as JSON to this file")
		serveAddr   = flag.String("serve", "", "serve live metrics (expvar + /metrics) on this address, e.g. :8417")
		serveAPI    = flag.String("serve-api", "", "run the experiment API server on this address, e.g. :8418 (instead of a one-shot -experiment run)")
		apiInFlight = flag.Int("api-inflight", 2, "serve-api: maximum concurrently executing runs")
		apiWait     = flag.Duration("api-queue-wait", 2*time.Second, "serve-api: how long an inadmissible request may queue for a run slot before 429")
		apiTimeout  = flag.Duration("api-timeout", 0, "serve-api: per-run wall-time limit (0 = unbounded; a request's timeout_ms can only tighten it)")
		apiCache    = flag.Int("api-cache", 64, "serve-api: response-cache entries, LRU (0 disables); also bounds the study-pass memos")
		drainGrace  = flag.Duration("drain-grace", 15*time.Second, "serve-api: how long in-flight runs may finish after SIGINT/SIGTERM before their sweeps are cancelled")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-20s %s\n", id, title)
		}
		return nil
	}
	if *reportIn != "" {
		var inputs []flight.ReportInput
		for _, p := range strings.Split(*reportIn, ",") {
			if p = strings.TrimSpace(p); p == "" {
				continue
			}
			in, err := flight.ReadReportInput(p)
			if err != nil {
				return fmt.Errorf("-report: %w", err)
			}
			inputs = append(inputs, in)
		}
		if len(inputs) == 0 {
			return usageErr("-report: no input files")
		}
		fmt.Print(flight.Report(inputs))
		return nil
	}
	if *experiment == "" && *serveAPI == "" {
		return usageErr("-experiment required (or -list, -report, or -serve-api); e.g. capsim -experiment fig9")
	}

	sweep.SetDefaultWorkers(*parallel)
	trace.SetEnabled(*onepass)
	trace.SetBudget(*traceBudget)
	eng, err := ooo.ParseEngine(*queueEngine)
	if err != nil {
		return usageErr("%v", err)
	}
	ooo.SetDefaultEngine(eng)
	experiments.SetStudyCacheBudget(*studyBudget)
	if *studyCache != "" {
		if err := experiments.SetStudyCacheDir(*studyCache); err != nil {
			return fmt.Errorf("-study-cache: %w", err)
		}
	}
	if (*shardSpec != "" && (*shardCoord > 0 || *shardClaim != "")) || (*shardCoord > 0 && *shardClaim != "") {
		return usageErr("-shard, -shard-coordinator and -shard-claim are mutually exclusive")
	}

	// Telemetry switches. Counters are free when off; -metrics-out and
	// -serve imply them (a manifest or live endpoint full of zeros would
	// only mislead). All obs notices go to stderr: stdout carries exactly
	// the rendered experiment output, byte-identical with telemetry on or
	// off.
	obs.SetAssert(*obsAssert)
	obsEnabled := *obsOn || *metricsOut != ""
	obs.SetEnabled(obsEnabled)
	if *serveAddr != "" {
		h, err := obs.Serve(*serveAddr)
		if err != nil {
			return fmt.Errorf("-serve: %w", err)
		}
		// Drain the endpoint before exit instead of dying mid-write: the
		// old code leaked the listener and server for the process lifetime.
		defer func() {
			sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer scancel()
			if serr := h.Shutdown(sctx); serr != nil {
				fmt.Fprintf(os.Stderr, "capsim: -serve shutdown: %v\n", serr)
			}
		}()
		obsEnabled = true
		fmt.Fprintf(os.Stderr, "capsim: live metrics on http://%s/metrics\n", h.Addr())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		if err := obs.StartTrace(f); err != nil {
			f.Close()
			return err
		}
		// StopTrace terminates the JSON array and closes f; report its
		// error so a truncated trace is visible instead of shipping
		// silently.
		defer func() {
			if terr := obs.StopTrace(); terr != nil {
				fmt.Fprintf(os.Stderr, "capsim: trace: %v\n", terr)
			}
		}()
	}

	// The flight recorder's process-wide collector: every adaptive-policy run
	// in this process (one-shot experiments and API-served runs alike) appends
	// its per-interval decision ledger to the file. Recording never feeds back
	// into the simulation — stdout stays byte-identical with or without it.
	if *ledgerOut != "" {
		lw, lerr := flight.CreateLedger(*ledgerOut)
		if lerr != nil {
			return fmt.Errorf("-ledger-out: %w", lerr)
		}
		col := flight.NewCollector(lw)
		flight.SetCollector(col)
		// Close flushes the gzip/bufio layers; a truncated or failed ledger
		// must fail the run, not ship silently.
		defer func() {
			flight.SetCollector(nil)
			if serr := col.Err(); serr != nil && err == nil {
				err = fmt.Errorf("-ledger-out: %w", serr)
			}
			if cerr := lw.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("-ledger-out: %w", cerr)
			}
		}()
		if !*onepass {
			fmt.Fprintln(os.Stderr, "capsim: -ledger-out: the legacy (-onepass=false) policy path records no ledger events")
		}
		if *studyCache != "" {
			fmt.Fprintln(os.Stderr, "capsim: -ledger-out: warm -study-cache rows skip simulation and record nothing; record from a cold cache for a complete ledger")
		}
		fmt.Fprintf(os.Stderr, "capsim: writing flight ledger to %s\n", *ledgerOut)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.CacheRefs = *cacheRefs
	cfg.CacheWarmRefs = *cacheWarm
	cfg.QueueInstrs = *queueInstrs
	cfg.IntervalInstrs = *interval
	cfg.PenaltyCycles = *penalty
	cfg.Feature = tech.FeatureSize(*feature)
	cfg.CacheParams.Feature = cfg.Feature

	if *serveAPI != "" {
		return serveAPIMode(*serveAPI, cfg, serveOptions{
			inFlight:   *apiInFlight,
			queueWait:  *apiWait,
			runTimeout: *apiTimeout,
			cache:      *apiCache,
			drainGrace: *drainGrace,
			parallel:   *parallel,
		})
	}

	// -experiment accepts a comma-separated list ("fig12,fig13,oracleTPI"):
	// the ids run in the given order in ONE process, so passes they share —
	// materialized traces, classification streams, interval families — are
	// computed once and reused across them, exactly what `make bench-policy`
	// measures.
	ids := strings.Split(*experiment, ",")
	if *experiment == "all" {
		ids = experiments.IDs()
	}

	// Shard modes. Workers (-shard, -shard-claim) publish owned study rows
	// to the shared study cache and render nothing; the coordinator waits for
	// its workers and then falls through to the normal render loop below —
	// which IS the merge: every row hits the warm cache and stdout is
	// byte-identical to a single-process run.
	if *shardClaim != "" {
		return shardClaimMode(*shardClaim, ids, cfg)
	}
	if *shardSpec != "" {
		return shardWorkerMode(*shardSpec, ids, cfg)
	}
	var shardWall time.Duration
	if *shardCoord > 0 {
		workerParallel := *parallel / *shardCoord
		if workerParallel < 1 {
			workerParallel = 1
		}
		commonArgs := []string{
			"-experiment", *experiment,
			"-seed", fmt.Sprint(*seed),
			"-cache-refs", fmt.Sprint(*cacheRefs),
			"-cache-warm", fmt.Sprint(*cacheWarm),
			"-queue-instrs", fmt.Sprint(*queueInstrs),
			"-interval", fmt.Sprint(*interval),
			"-switch-penalty", fmt.Sprint(*penalty),
			"-feature", fmt.Sprint(*feature),
			fmt.Sprintf("-onepass=%v", *onepass),
			"-queue-engine", *queueEngine,
			"-trace-budget", fmt.Sprint(*traceBudget),
			"-study-cache", *studyCache,
			"-study-cache-budget", fmt.Sprint(*studyBudget),
		}
		shardStart := time.Now()
		if err := shardCoordinate(*shardCoord, *shardBucket, workerParallel, commonArgs); err != nil {
			return err
		}
		shardWall = time.Since(shardStart)
	}

	report := benchReport{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Command:     benchCommand(),
		Parallel:    sweep.DefaultWorkers(),
		Onepass:     *onepass,
		QueueEngine: eng.String(),
		ObsEnabled:  obsEnabled,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Seed:        cfg.Seed,
		CacheRefs:   cfg.CacheRefs,
		QueueInstrs: cfg.QueueInstrs,
		Shards:      *shardCoord,
		ShardWallNS: shardWall.Nanoseconds(),
	}
	manifest := obs.NewManifest()
	manifest.Flags = flagMap()
	manifest.Parallel = report.Parallel
	manifest.Onepass = *onepass
	manifest.QueueEngine = eng.String()
	manifest.ObsEnabled = obsEnabled
	manifest.Seed = cfg.Seed
	manifest.CacheRefs = cfg.CacheRefs
	manifest.QueueInstrs = cfg.QueueInstrs

	measure := *benchJSON != "" || *metricsOut != ""
	var before, after runtime.MemStats
	for _, id := range ids {
		var snapBefore obs.Snapshot
		if measure {
			runtime.ReadMemStats(&before)
		}
		if *metricsOut != "" {
			snapBefore = obs.TakeSnapshot()
		}
		start := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		fmt.Print(res.Render())
		fmt.Printf("(%s in %.1fs)\n\n", id, wall.Seconds())
		if measure {
			runtime.ReadMemStats(&after)
			title, _ := experiments.Title(id)
			rec := benchRecord{
				ID:         id,
				Title:      title,
				WallNS:     wall.Nanoseconds(),
				Allocs:     after.Mallocs - before.Mallocs,
				AllocBytes: after.TotalAlloc - before.TotalAlloc,
			}
			report.Experiments = append(report.Experiments, rec)
			report.TotalWallNS += wall.Nanoseconds()
			if *metricsOut != "" {
				manifest.Experiments = append(manifest.Experiments, obs.ExperimentRecord{
					ID: rec.ID, Title: rec.Title, WallNS: rec.WallNS,
					Allocs: rec.Allocs, AllocBytes: rec.AllocBytes,
					Counters: obs.TakeSnapshot().DiffCounters(snapBefore),
				})
				manifest.TotalWallNS += rec.WallNS
			}
		}
	}

	if *benchJSON != "" {
		report.TraceBudget = trace.Budget()
		report.TraceBytes = trace.TotalBytes()
		report.TraceRawBytes = trace.TotalRawBytes()
		if report.TraceRawBytes > 0 {
			report.TraceRatio = float64(report.TraceBytes) / float64(report.TraceRawBytes)
		}
		report.ClassifyBytes = classify.TotalBytes()
		report.ClassifyRawBytes = classify.TotalRawBytes()
		if report.ClassifyRawBytes > 0 {
			report.ClassifyRatio = float64(report.ClassifyBytes) / float64(report.ClassifyRawBytes)
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*benchJSON, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d experiments, parallel=%d)\n", *benchJSON, len(report.Experiments), report.Parallel)
	}
	if *metricsOut != "" {
		manifest.Final = obs.TakeSnapshot()
		if err := manifest.WriteFile(*metricsOut); err != nil {
			return fmt.Errorf("-metrics-out: %w", err)
		}
		fmt.Fprintf(os.Stderr, "capsim: wrote run manifest %s (%d experiments)\n", *metricsOut, len(manifest.Experiments))
	}
	return nil
}

// serveOptions carries the -serve-api tuning flags into serveAPIMode.
type serveOptions struct {
	inFlight   int
	queueWait  time.Duration
	runTimeout time.Duration
	cache      int
	drainGrace time.Duration
	parallel   int
}

// serveAPIMode runs the experiment API server until SIGINT/SIGTERM, then
// drains: new runs get 503 immediately, in-flight runs get the drain grace
// period to finish, after which their sweeps are cancelled. The base
// configuration (budgets a request's absent fields inherit) is the same one
// the flag set builds for a one-shot run.
func serveAPIMode(addr string, cfg experiments.Config, so serveOptions) error {
	// A long-lived process sweeping arbitrary client configurations must
	// bound its memoized profiling passes; the one-shot CLI path never does.
	if so.cache > 0 {
		experiments.SetStudyCacheCap(so.cache)
	}
	// Telemetry is on for a service: /metrics over frozen zeros would only
	// mislead, and counters are cheap (see internal/obs).
	obs.SetEnabled(true)

	srv := server.New(server.Options{
		BaseConfig:   cfg,
		MaxInFlight:  so.inFlight,
		QueueWait:    so.queueWait,
		RunTimeout:   so.runTimeout,
		CacheEntries: so.cache,
		MaxParallel:  so.parallel,
	})
	bound, err := srv.Start(addr)
	if err != nil {
		return fmt.Errorf("-serve-api: %w", err)
	}
	fmt.Fprintf(os.Stderr, "capsim: experiment API on http://%s (GET /v1/experiments, POST /v1/run, /healthz, /metrics)\n", bound)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // restore default signal handling: a second ^C kills immediately

	fmt.Fprintf(os.Stderr, "capsim: draining (in-flight runs get %s)\n", so.drainGrace)
	sctx, cancel := context.WithTimeout(context.Background(), so.drainGrace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("-serve-api: drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "capsim: drained")
	return nil
}

// flagMap captures every flag's effective value (set or default) for the
// manifest, so a run is reproducible from its manifest alone.
func flagMap() map[string]string {
	m := make(map[string]string)
	flag.VisitAll(func(f *flag.Flag) { m[f.Name] = f.Value.String() })
	return m
}
