// Command capsim regenerates the tables and figures of the CAP paper
// (Albonesi, "Dynamic IPC/Clock Rate Optimization", ISCA 1998).
//
// Usage:
//
//	capsim -list
//	capsim -experiment fig9
//	capsim -experiment all -cache-refs 2000000 -queue-instrs 1000000
//	capsim -experiment all -parallel 8 -bench-json BENCH_sweep.json
//	capsim -experiment fig7 -parallel 1 -cpuprofile fig7.pprof
//	capsim -experiment fig7 -onepass=false   # legacy per-boundary oracle
//	capsim -experiment fig10 -queue-engine scan   # per-cycle window-scan engine
//
// Output is byte-identical at every -parallel setting: simulation jobs derive
// their random streams from (seed, benchmark, purpose) and results are
// collected by grid index, so the worker count changes only the wall time.
// It is also byte-identical at either -onepass setting: the one-pass path
// (default) profiles every cache boundary in a single replay of a shared
// materialized trace, while -onepass=false re-generates every stream per
// configuration cell; only wall time and memory differ. Likewise
// -queue-engine selects between the event-driven issue-queue engine (default)
// and the per-cycle window scan it replaces; the two are bit-identical in
// every statistic and differ only in asymptotic cost.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"capsim/internal/experiments"
	"capsim/internal/ooo"
	"capsim/internal/sweep"
	"capsim/internal/tech"
	"capsim/internal/trace"
)

// benchRecord is one experiment's measured cost for -bench-json.
type benchRecord struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	WallNS int64  `json:"wall_ns"`
	// Allocs and AllocBytes are process-wide deltas over the experiment
	// (runtime.ReadMemStats), so they attribute every allocation made by the
	// experiment's goroutines, including the sweep workers.
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// benchReport is the top-level -bench-json document.
type benchReport struct {
	Generated   string        `json:"generated"`
	Command     string        `json:"command"`
	Parallel    int           `json:"parallel"`
	Onepass     bool          `json:"onepass"`
	QueueEngine string        `json:"queue_engine"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	NumCPU      int           `json:"num_cpu"`
	Seed        uint64        `json:"seed"`
	CacheRefs   int64         `json:"cache_refs"`
	QueueInstrs int64         `json:"queue_instrs"`
	Experiments []benchRecord `json:"experiments"`
	TotalWallNS int64         `json:"total_wall_ns"`
}

func main() {
	var (
		list        = flag.Bool("list", false, "list available experiments and exit")
		experiment  = flag.String("experiment", "", "experiment id to run, or 'all'")
		seed        = flag.Uint64("seed", 1998, "master workload seed")
		cacheRefs   = flag.Int64("cache-refs", 400_000, "measured references per cache configuration")
		cacheWarm   = flag.Int64("cache-warm", 100_000, "warm-up references per cache configuration")
		queueInstrs = flag.Int64("queue-instrs", 150_000, "measured instructions per queue configuration")
		interval    = flag.Int64("interval", 2_000, "interval length in instructions (Section 6 studies)")
		penalty     = flag.Int("switch-penalty", -1, "clock-switch penalty in cycles (-1 = default)")
		feature     = flag.Float64("feature", 0.18, "feature size in microns (0.25, 0.18, 0.12)")
		parallel    = flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker count (1 = serial; output is identical at any setting)")
		onepass     = flag.Bool("onepass", true, "profile over the shared materialized trace in one pass (false = legacy per-configuration streams; output is identical either way)")
		queueEngine = flag.String("queue-engine", "event", "issue-queue engine: 'event' (event-driven wakeup/select) or 'scan' (per-cycle window scan); output is identical either way")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		benchJSON   = flag.String("bench-json", "", "write per-experiment wall time and allocation deltas as JSON to this file")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-20s %s\n", id, title)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "capsim: -experiment required (or -list); e.g. capsim -experiment fig9")
		os.Exit(2)
	}

	sweep.SetDefaultWorkers(*parallel)
	trace.SetEnabled(*onepass)
	eng, err := ooo.ParseEngine(*queueEngine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "capsim: %v\n", err)
		os.Exit(2)
	}
	ooo.SetDefaultEngine(eng)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "capsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "capsim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.CacheRefs = *cacheRefs
	cfg.CacheWarmRefs = *cacheWarm
	cfg.QueueInstrs = *queueInstrs
	cfg.IntervalInstrs = *interval
	cfg.PenaltyCycles = *penalty
	cfg.Feature = tech.FeatureSize(*feature)
	cfg.CacheParams.Feature = cfg.Feature

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = experiments.IDs()
	}

	report := benchReport{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Command:     strings.Join(os.Args, " "),
		Parallel:    sweep.DefaultWorkers(),
		Onepass:     *onepass,
		QueueEngine: eng.String(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Seed:        cfg.Seed,
		CacheRefs:   cfg.CacheRefs,
		QueueInstrs: cfg.QueueInstrs,
	}
	var before, after runtime.MemStats
	for _, id := range ids {
		if *benchJSON != "" {
			runtime.ReadMemStats(&before)
		}
		start := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "capsim: %v\n", err)
			os.Exit(1)
		}
		wall := time.Since(start)
		fmt.Print(res.Render())
		fmt.Printf("(%s in %.1fs)\n\n", id, wall.Seconds())
		if *benchJSON != "" {
			runtime.ReadMemStats(&after)
			title, _ := experiments.Title(id)
			report.Experiments = append(report.Experiments, benchRecord{
				ID:         id,
				Title:      title,
				WallNS:     wall.Nanoseconds(),
				Allocs:     after.Mallocs - before.Mallocs,
				AllocBytes: after.TotalAlloc - before.TotalAlloc,
			})
			report.TotalWallNS += wall.Nanoseconds()
		}
	}

	if *benchJSON != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "capsim: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*benchJSON, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "capsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments, parallel=%d)\n", *benchJSON, len(report.Experiments), report.Parallel)
	}
}
