// Command capsim regenerates the tables and figures of the CAP paper
// (Albonesi, "Dynamic IPC/Clock Rate Optimization", ISCA 1998).
//
// Usage:
//
//	capsim -list
//	capsim -experiment fig9
//	capsim -experiment all -cache-refs 2000000 -queue-instrs 1000000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"capsim/internal/experiments"
	"capsim/internal/tech"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list available experiments and exit")
		experiment  = flag.String("experiment", "", "experiment id to run, or 'all'")
		seed        = flag.Uint64("seed", 1998, "master workload seed")
		cacheRefs   = flag.Int64("cache-refs", 400_000, "measured references per cache configuration")
		cacheWarm   = flag.Int64("cache-warm", 100_000, "warm-up references per cache configuration")
		queueInstrs = flag.Int64("queue-instrs", 150_000, "measured instructions per queue configuration")
		interval    = flag.Int64("interval", 2_000, "interval length in instructions (Section 6 studies)")
		penalty     = flag.Int("switch-penalty", -1, "clock-switch penalty in cycles (-1 = default)")
		feature     = flag.Float64("feature", 0.18, "feature size in microns (0.25, 0.18, 0.12)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-20s %s\n", id, title)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "capsim: -experiment required (or -list); e.g. capsim -experiment fig9")
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.CacheRefs = *cacheRefs
	cfg.CacheWarmRefs = *cacheWarm
	cfg.QueueInstrs = *queueInstrs
	cfg.IntervalInstrs = *interval
	cfg.PenaltyCycles = *penalty
	cfg.Feature = tech.FeatureSize(*feature)
	cfg.CacheParams.Feature = cfg.Feature

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "capsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
