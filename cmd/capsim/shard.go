// Shard modes: distribute the experiment grid across worker processes.
//
// Three entry points, all sharing the persistent study cache (-study-cache)
// as the data plane:
//
//	capsim -shard i/N -study-cache DIR -experiment all
//	    Static worker: compute and publish only the study rows bucket i of N
//	    owns. Stdout stays empty — the render would be full of stubs; the
//	    merge run below produces the real one.
//
//	capsim -shard-claim URL -study-cache DIR -experiment all
//	    Dynamic worker: claim buckets from a coordinator until the space is
//	    exhausted, running each claim as -shard bucket/buckets.
//
//	capsim -shard-coordinator N -study-cache DIR -experiment all
//	    Coordinator: serve a bucket space (default 4N buckets, override with
//	    -shard-buckets) over the work-claiming HTTP protocol, spawn N dynamic
//	    workers of this same binary, wait for them, then fall through to the
//	    normal render loop — which is the merge: every study row hits the
//	    warm cache and stdout is byte-identical to a single-process run.
//
// The merge is self-healing: rows a crashed worker never published are
// recomputed by the merge run itself.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"time"

	"capsim/internal/experiments"
	"capsim/internal/server"
	"capsim/internal/sweep"
)

// shardWorkerMode runs ids as one static shard: only owned study rows are
// computed (and published to the study cache); renders are discarded.
func shardWorkerMode(spec string, ids []string, cfg experiments.Config) error {
	sh, err := sweep.ParseShard(spec)
	if err != nil {
		return usageErr("%v", err)
	}
	if experiments.StudyCacheDir() == "" {
		return usageErr("-shard requires -study-cache DIR: a shard's output lives in the shared study cache")
	}
	if err := sweep.SetShard(sh); err != nil {
		return usageErr("%v", err)
	}
	defer sweep.ClearShard()
	t0 := time.Now()
	for _, id := range ids {
		if _, err := experiments.Run(id, cfg); err != nil {
			return fmt.Errorf("shard %s: %s: %w", spec, id, err)
		}
	}
	fmt.Fprintf(os.Stderr, "capsim: shard %s published %d experiments' rows to %s in %.1fs\n",
		spec, len(ids), experiments.StudyCacheDir(), time.Since(t0).Seconds())
	return nil
}

// shardClaimMode runs ids as a dynamic worker: claim a bucket, run every
// experiment as that shard, report done, repeat until exhausted. The study
// memos are reset between buckets — a study assembled under one bucket's
// ownership (stubs included) must not satisfy the next bucket's runs — while
// materialized trace stores stay warm (they are ownership-independent).
func shardClaimMode(baseURL string, ids []string, cfg experiments.Config) error {
	if experiments.StudyCacheDir() == "" {
		return usageErr("-shard-claim requires -study-cache DIR: a shard's output lives in the shared study cache")
	}
	worker := fmt.Sprintf("pid%d", os.Getpid())
	defer sweep.ClearShard()
	claimed := 0
	t0 := time.Now()
	for {
		claim, ok, err := server.ClaimBucket(baseURL, worker)
		if err != nil {
			return fmt.Errorf("shard worker %s: %w", worker, err)
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "capsim: shard worker %s finished %d buckets in %.1fs\n",
				worker, claimed, time.Since(t0).Seconds())
			return nil
		}
		if err := sweep.SetShard(sweep.Shard{Bucket: claim.Bucket, Of: claim.Buckets}); err != nil {
			return err
		}
		experiments.ResetStudies()
		for _, id := range ids {
			if _, err := experiments.Run(id, cfg); err != nil {
				return fmt.Errorf("shard %d/%d: %s: %w", claim.Bucket, claim.Buckets, id, err)
			}
		}
		if err := server.ReportDone(baseURL, worker, claim.Bucket); err != nil {
			return fmt.Errorf("shard worker %s: %w", worker, err)
		}
		claimed++
	}
}

// shardCoordinate serves the bucket space, spawns workers of this same
// binary in -shard-claim mode, and waits for all of them. commonArgs carries
// every render-determining flag (budgets, experiment selection, study cache)
// so the children run the exact configuration the merge will render. Worker
// stdout/stderr both go to our stderr: stdout is reserved for the merge.
func shardCoordinate(workers, buckets, workerParallel int, commonArgs []string) error {
	if experiments.StudyCacheDir() == "" {
		return usageErr("-shard-coordinator requires -study-cache DIR: it is the channel workers publish through")
	}
	if buckets <= 0 {
		buckets = 4 * workers // fast workers absorb slow workers' tail
	}
	coord, err := server.NewShardCoordinator(buckets)
	if err != nil {
		return err
	}
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("shard coordinator: %w", err)
	}
	defer coord.Shutdown()
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("shard coordinator: resolve own binary: %w", err)
	}
	fmt.Fprintf(os.Stderr, "capsim: shard coordinator on http://%s (%d buckets, %d workers)\n", addr, buckets, workers)

	args := append([]string{
		"-shard-claim", "http://" + addr,
		"-parallel", fmt.Sprint(workerParallel),
	}, commonArgs...)
	cmds := make([]*exec.Cmd, workers)
	for i := range cmds {
		c := exec.Command(exe, args...)
		c.Stdout = os.Stderr
		c.Stderr = os.Stderr
		if err := c.Start(); err != nil {
			for _, prev := range cmds[:i] {
				prev.Process.Kill()
				prev.Wait()
			}
			return fmt.Errorf("shard coordinator: start worker %d: %w", i, err)
		}
		cmds[i] = c
	}
	var firstErr error
	for i, c := range cmds {
		if err := c.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard worker %d: %w", i, err)
		}
	}
	if firstErr != nil {
		// The merge below would silently recompute a failed worker's rows;
		// surface the failure instead — a dead worker is a bug or an
		// interrupt, not a condition to paper over.
		return firstErr
	}
	st := coord.Status()
	fmt.Fprintf(os.Stderr, "capsim: shard coordinator: %d/%d buckets done; merging\n", st.Done, st.Buckets)
	return nil
}
