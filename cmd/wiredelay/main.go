// Command wiredelay explores the repeater (wire-buffer) tradeoff behind the
// CAP paper's Section 2: unbuffered vs optimally buffered bus delay for an
// arbitrary line, at any feature size.
//
// Usage:
//
//	wiredelay -length 3.5 -load 2.0
//	wiredelay -length 3.5 -load 2.0 -feature 0.12
package main

import (
	"flag"
	"fmt"
	"os"

	"capsim/internal/tech"
	"capsim/internal/wire"
)

func main() {
	var (
		length  = flag.Float64("length", 2.0, "wire length in mm")
		load    = flag.Float64("load", 1.0, "distributed element load in pF")
		feature = flag.Float64("feature", 0, "feature size in microns (0 = all paper generations)")
	)
	flag.Parse()

	if *length <= 0 || *load < 0 {
		fmt.Fprintln(os.Stderr, "wiredelay: length must be positive and load non-negative")
		os.Exit(2)
	}
	l := wire.Line{LengthMM: *length, LoadC: *load}

	features := tech.Generations()
	if *feature > 0 {
		features = []tech.FeatureSize{tech.FeatureSize(*feature)}
	}
	fmt.Printf("line: %.2f mm, %.2f pF element load\n", *length, *load)
	for _, f := range features {
		p := tech.ForFeature(f)
		u := wire.UnbufferedDelay(l, p)
		b, k := wire.OptimalBufferedDelay(l, p)
		h := wire.OptimalRepeaterSize(l, p)
		best := "unbuffered"
		if b < u {
			best = "buffered"
		}
		fmt.Printf("%s: unbuffered %.3f ns | buffered %.3f ns (%d repeaters, %.1fx sizing) -> %s\n",
			f, u, b, k, h, best)
	}
}
