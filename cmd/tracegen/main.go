// Command tracegen dumps the synthetic workload streams used by the
// simulators, for inspection or external consumption.
//
// Usage:
//
//	tracegen -bench stereo -kind mem -n 20        # address trace
//	tracegen -bench turb3d -kind ilp -n 20        # instruction stream
//	tracegen -bench stereo -kind memstats -n 1000000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"capsim/internal/workload"
)

func main() {
	var (
		bench = flag.String("bench", "gcc", "benchmark name (see -list)")
		kind  = flag.String("kind", "mem", "mem | ilp | memstats")
		n     = flag.Int("n", 32, "number of records")
		seed  = flag.Uint64("seed", 1998, "workload seed")
		list  = flag.Bool("list", false, "list benchmark names and exit")
	)
	flag.Parse()

	if *list {
		for _, b := range workload.All() {
			mem := "mem+ilp"
			if b.Mem == nil {
				mem = "ilp only"
			}
			fmt.Printf("%-10s %-10s %s\n", b.Name, b.Suite, mem)
		}
		return
	}
	b, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch *kind {
	case "mem":
		if b.Mem == nil {
			fmt.Fprintf(os.Stderr, "tracegen: %s has no memory profile\n", b.Name)
			os.Exit(1)
		}
		tr := workload.NewAddressTrace(b, *seed)
		for i := 0; i < *n; i++ {
			r := tr.Next()
			op := "R"
			if r.Write {
				op = "W"
			}
			fmt.Fprintf(w, "%s 0x%08x\n", op, r.Addr)
		}
	case "ilp":
		s := workload.NewInstrStream(b, *seed)
		for i := 0; i < *n; i++ {
			in := s.Next()
			fmt.Fprintf(w, "i%d: src(-%d, -%d) lat=%d\n", i, in.Src[0], in.Src[1], in.Latency)
		}
	case "memstats":
		if b.Mem == nil {
			fmt.Fprintf(os.Stderr, "tracegen: %s has no memory profile\n", b.Name)
			os.Exit(1)
		}
		tr := workload.NewAddressTrace(b, *seed)
		blocks := map[uint64]int{}
		writes := 0
		for i := 0; i < *n; i++ {
			r := tr.Next()
			blocks[r.Addr/32]++
			if r.Write {
				writes++
			}
		}
		fmt.Fprintf(w, "%s: %d refs, %d distinct 32B blocks (~%d KB touched), %.1f%% writes\n",
			b.Name, *n, len(blocks), len(blocks)*32/1024, 100*float64(writes)/float64(*n))
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}
