package capsim

import (
	"strings"
	"testing"
)

func TestFacadeBenchmarks(t *testing.T) {
	all := Benchmarks()
	if len(all) != 22 {
		t.Fatalf("%d benchmarks, want 22", len(all))
	}
	if _, err := BenchmarkByName("stereo"); err != nil {
		t.Error(err)
	}
	if _, err := BenchmarkByName("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFacadeQueueMachineEndToEnd(t *testing.T) {
	b, err := BenchmarkByName("m88ksim")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewQueueMachine(b, 1, PaperQueueSizes(), 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	res := RunQueue(m, FixedPolicy{Config: 3}, 10, 1000, true)
	if res.TPI <= 0 || len(res.Samples) != 10 {
		t.Errorf("result %+v", res)
	}
}

func TestFacadeCacheMachineEndToEnd(t *testing.T) {
	b, err := BenchmarkByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewCacheMachine(b, 1, PaperCacheParams(), 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	res := RunCache(m, ProcessLevelPolicy{Best: 6}, 5, 4000, false)
	if res.TPI <= 0 || res.TPIMiss < 0 || res.Refs != 20000 {
		t.Errorf("result %+v", res)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := Experiments()
	if len(ids) < 14 {
		t.Fatalf("only %d experiments", len(ids))
	}
	cfg := DefaultExperimentConfig()
	res, err := RunExperiment("fig1a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "fig1a") {
		t.Error("render missing id")
	}
	if _, err := RunExperiment("nope", cfg); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestIntervalPolicyThroughFacade(t *testing.T) {
	b, err := BenchmarkByName("vortex")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewQueueMachine(b, 1, []int{16, 64}, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	p := &IntervalPolicy{Configs: []int{0, 1}}
	res := RunQueue(m, p, 100, 2000, false)
	if res.TPI <= 0 {
		t.Error("no TPI")
	}
}
