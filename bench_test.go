package capsim

import (
	"testing"

	"capsim/internal/cache"
	"capsim/internal/core"
	"capsim/internal/experiments"
	"capsim/internal/ooo"
	"capsim/internal/tech"
	"capsim/internal/trace"
	"capsim/internal/workload"
)

// benchConfig returns reduced budgets so the full `go test -bench=.` sweep
// regenerates every figure in minutes on one core. Raise the budgets (or use
// cmd/capsim with -cache-refs / -queue-instrs) for full-fidelity runs.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.CacheWarmRefs = 20_000
	cfg.CacheRefs = 100_000
	cfg.QueueInstrs = 30_000
	return cfg
}

// benchExperiment runs one of the paper's figures/tables per benchmark
// iteration and reports its aggregate text size (to keep the work observable
// and defeat dead-code elimination).
func benchExperiment(b *testing.B, id string) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Figures)+len(res.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}

// Figure 1(a): cache address-bus wire delay vs number of 2KB subarrays.
func BenchmarkFig1a(b *testing.B) { benchExperiment(b, "fig1a") }

// Figure 1(b): cache address-bus wire delay vs number of 4KB subarrays.
func BenchmarkFig1b(b *testing.B) { benchExperiment(b, "fig1b") }

// Figure 2: integer-queue wire delay vs entry count.
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// Figure 7: per-application TPI vs L1 Dcache size (fixed boundaries).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// Figure 8: TPImiss, best conventional vs process-level adaptive hierarchy.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// Figure 9: TPI, best conventional vs process-level adaptive hierarchy.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// Figure 10: per-application TPI vs instruction-queue size.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// Figure 11: TPI, best conventional vs process-level adaptive queue.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// Figure 12: turb3d per-interval snapshots, 64- vs 128-entry queue.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// Figure 13: vortex per-interval snapshots, 16- vs 64-entry queue.
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// Ablation: Section 6 interval predictor vs process-level vs oracle.
func BenchmarkAblationInterval(b *testing.B) { benchExperiment(b, "ablation-interval") }

// Ablation: clock-switch penalty sweep.
func BenchmarkAblationSwitchPenalty(b *testing.B) { benchExperiment(b, "ablation-switch") }

// Ablation: increment granularity (paper Section 5.2.1's design choice).
func BenchmarkAblationIncrement(b *testing.B) { benchExperiment(b, "ablation-increment") }

// Ablation: Section 4.1 low-power mode.
func BenchmarkAblationPower(b *testing.B) { benchExperiment(b, "ablation-power") }

// Extension: adaptive TLB with the Section 4.2 backup strategy.
func BenchmarkAblationTLB(b *testing.B) { benchExperiment(b, "ablation-tlb") }

// Extension: adaptive branch-predictor table sizing.
func BenchmarkAblationBpred(b *testing.B) { benchExperiment(b, "ablation-bpred") }

// Extension: the full Figure 5 processor — joint cache+queue adaptation.
func BenchmarkAblationCombined(b *testing.B) { benchExperiment(b, "ablation-combined") }

// Extension: the policy-zoo league race (contenders + baselines + oracle).
func BenchmarkZoo(b *testing.B) { benchExperiment(b, "zoo") }

// --- Micro-benchmarks of the simulation substrates -----------------------

func BenchmarkCacheAccess(b *testing.B) {
	bm, err := BenchmarkByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewCacheMachine(bm, 1, PaperCacheParams(), 2, -1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	const chunk = 1 << 12
	for i := 0; i < b.N; i += chunk {
		m.RunInterval(chunk)
	}
}

func BenchmarkQueueIssue(b *testing.B) {
	bm, err := BenchmarkByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewQueueMachine(bm, 1, PaperQueueSizes(), 3, -1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	const chunk = 1 << 12
	for i := 0; i < b.N; i += chunk {
		m.RunInterval(chunk)
	}
}

// --- One-pass vs legacy profiling (make bench-compare) --------------------
//
// Each pair measures the identical profiling computation on the two source
// paths: Onepass replays (and for the cache study, evaluates) the shared
// materialized trace in one pass; Legacy regenerates every stream per
// configuration cell, exactly as the pre-one-pass code did. trace.Reset()
// inside the loop keeps every iteration cold, so Onepass pays its
// materialization cost honestly.

func benchCacheProfile(b *testing.B, onepass bool) {
	bm := workload.MustByName("gcc")
	defer func() { trace.SetEnabled(true); trace.Reset() }()
	trace.SetEnabled(onepass)
	p := cache.PaperParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.Reset()
		tpi, _, err := core.ProfileCacheTPI(bm, 1998, p, core.PaperMaxBoundary, 20_000, 100_000)
		if err != nil {
			b.Fatal(err)
		}
		if len(tpi) != core.PaperMaxBoundary+1 {
			b.Fatal("short table")
		}
	}
}

// BenchmarkCacheProfileOnepass profiles all 8 paper boundaries for one
// application via the one-pass MultiHierarchy engine.
func BenchmarkCacheProfileOnepass(b *testing.B) { benchCacheProfile(b, true) }

// BenchmarkCacheProfileLegacy is the same profile through 8 independent
// machines, each regenerating the reference stream.
func BenchmarkCacheProfileLegacy(b *testing.B) { benchCacheProfile(b, false) }

func benchQueueProfile(b *testing.B, onepass bool, eng ooo.Engine) {
	bm := workload.MustByName("gcc")
	prev := ooo.DefaultEngine()
	defer func() { trace.SetEnabled(true); trace.Reset(); ooo.SetDefaultEngine(prev) }()
	trace.SetEnabled(onepass)
	ooo.SetDefaultEngine(eng)
	sizes := core.PaperQueueSizes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.Reset()
		tpi, err := core.ProfileQueueTPI(bm, 1998, sizes, 30_000, tech.Micron018)
		if err != nil {
			b.Fatal(err)
		}
		if len(tpi) != len(sizes) {
			b.Fatal("short table")
		}
	}
}

// BenchmarkQueueProfileOnepass profiles all 8 queue sizes in one
// event-driven MultiCore pass over the shared materialized instruction
// stream — the default configuration.
func BenchmarkQueueProfileOnepass(b *testing.B) { benchQueueProfile(b, true, ooo.EngineEvent) }

// BenchmarkQueueProfileLegacy regenerates the instruction stream per size
// (event engine, independent machines).
func BenchmarkQueueProfileLegacy(b *testing.B) { benchQueueProfile(b, false, ooo.EngineEvent) }

// BenchmarkQueueProfileScanOnepass is the one-pass profile on the per-cycle
// window-scan engine: isolates the MultiCore stream sharing from the
// event-driven issue algorithm.
func BenchmarkQueueProfileScanOnepass(b *testing.B) { benchQueueProfile(b, true, ooo.EngineScan) }

// BenchmarkQueueProfileScanLegacy is the PR 2 baseline: scan engine,
// per-configuration machines and streams.
func BenchmarkQueueProfileScanLegacy(b *testing.B) { benchQueueProfile(b, false, ooo.EngineScan) }
