package capsim

import (
	"testing"

	"capsim/internal/experiments"
)

// benchConfig returns reduced budgets so the full `go test -bench=.` sweep
// regenerates every figure in minutes on one core. Raise the budgets (or use
// cmd/capsim with -cache-refs / -queue-instrs) for full-fidelity runs.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.CacheWarmRefs = 20_000
	cfg.CacheRefs = 100_000
	cfg.QueueInstrs = 30_000
	return cfg
}

// benchExperiment runs one of the paper's figures/tables per benchmark
// iteration and reports its aggregate text size (to keep the work observable
// and defeat dead-code elimination).
func benchExperiment(b *testing.B, id string) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Figures)+len(res.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}

// Figure 1(a): cache address-bus wire delay vs number of 2KB subarrays.
func BenchmarkFig1a(b *testing.B) { benchExperiment(b, "fig1a") }

// Figure 1(b): cache address-bus wire delay vs number of 4KB subarrays.
func BenchmarkFig1b(b *testing.B) { benchExperiment(b, "fig1b") }

// Figure 2: integer-queue wire delay vs entry count.
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// Figure 7: per-application TPI vs L1 Dcache size (fixed boundaries).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// Figure 8: TPImiss, best conventional vs process-level adaptive hierarchy.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// Figure 9: TPI, best conventional vs process-level adaptive hierarchy.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// Figure 10: per-application TPI vs instruction-queue size.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// Figure 11: TPI, best conventional vs process-level adaptive queue.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// Figure 12: turb3d per-interval snapshots, 64- vs 128-entry queue.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// Figure 13: vortex per-interval snapshots, 16- vs 64-entry queue.
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// Ablation: Section 6 interval predictor vs process-level vs oracle.
func BenchmarkAblationInterval(b *testing.B) { benchExperiment(b, "ablation-interval") }

// Ablation: clock-switch penalty sweep.
func BenchmarkAblationSwitchPenalty(b *testing.B) { benchExperiment(b, "ablation-switch") }

// Ablation: increment granularity (paper Section 5.2.1's design choice).
func BenchmarkAblationIncrement(b *testing.B) { benchExperiment(b, "ablation-increment") }

// Ablation: Section 4.1 low-power mode.
func BenchmarkAblationPower(b *testing.B) { benchExperiment(b, "ablation-power") }

// Extension: adaptive TLB with the Section 4.2 backup strategy.
func BenchmarkAblationTLB(b *testing.B) { benchExperiment(b, "ablation-tlb") }

// Extension: adaptive branch-predictor table sizing.
func BenchmarkAblationBpred(b *testing.B) { benchExperiment(b, "ablation-bpred") }

// Extension: the full Figure 5 processor — joint cache+queue adaptation.
func BenchmarkAblationCombined(b *testing.B) { benchExperiment(b, "ablation-combined") }

// --- Micro-benchmarks of the simulation substrates -----------------------

func BenchmarkCacheAccess(b *testing.B) {
	bm, err := BenchmarkByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewCacheMachine(bm, 1, PaperCacheParams(), 2, -1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	const chunk = 1 << 12
	for i := 0; i < b.N; i += chunk {
		m.RunInterval(chunk)
	}
}

func BenchmarkQueueIssue(b *testing.B) {
	bm, err := BenchmarkByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewQueueMachine(bm, 1, PaperQueueSizes(), 3, -1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	const chunk = 1 << 12
	for i := 0; i < b.N; i += chunk {
		m.RunInterval(chunk)
	}
}
