module capsim

go 1.22
