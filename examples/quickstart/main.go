// Quickstart: build a Complexity-Adaptive Processor with an adaptive
// instruction queue, run two very different applications on it, and watch
// the process-level configuration manager pick a different IPC/clock-rate
// tradeoff for each — the core idea of the CAP paper.
package main

import (
	"fmt"
	"log"

	"capsim"
)

func main() {
	sizes := capsim.PaperQueueSizes() // 16..128 entries

	// gcc has window-hungry parallel bursts; appcg is a dependence-bound
	// sparse solver that only wants the fastest clock.
	for _, name := range []string{"gcc", "appcg"} {
		b, err := capsim.BenchmarkByName(name)
		if err != nil {
			log.Fatal(err)
		}

		// Profile every configuration (the paper assumes a CAP compiler
		// or runtime performs this analysis), then run under the
		// process-level policy with the winner.
		fmt.Printf("%s:\n", name)
		table := map[int]float64{}
		for i := range sizes {
			m, err := capsim.NewQueueMachine(b, 1, sizes, i, -1)
			if err != nil {
				log.Fatal(err)
			}
			m.RunInterval(100_000)
			table[i] = m.TotalTPI()
			fmt.Printf("  IQ=%3d entries @ %.3f ns/cycle -> TPI %.4f ns\n",
				sizes[i], m.Current().CycleNS, table[i])
		}

		best := bestConfig(table)
		m, err := capsim.NewQueueMachine(b, 1, sizes, 0, -1)
		if err != nil {
			log.Fatal(err)
		}
		res := capsim.RunQueue(m, capsim.ProcessLevelPolicy{Best: best}, 50, 2000, false)
		fmt.Printf("  process-level adaptive picks IQ=%d: TPI %.4f ns (%d clock switch)\n\n",
			sizes[best], res.TPI, res.Switches)
	}
}

func bestConfig(table map[int]float64) int {
	best, bestTPI := 0, 0.0
	first := true
	for id, tpi := range table {
		if first || tpi < bestTPI {
			best, bestTPI, first = id, tpi, false
		}
	}
	return best
}
