// adaptive-cache reproduces the paper's motivating cache scenario (Section
// 5.2): a scientific application whose working set wants a large L1 (stereo,
// from the CMU suite) shares a processor design with a general-purpose
// application that wants the fastest clock (gcc). A conventional design must
// compromise; the complexity-adaptive hierarchy moves its L1/L2 boundary per
// application and wins on both.
package main

import (
	"fmt"
	"log"

	"capsim"
)

func main() {
	p := capsim.PaperCacheParams() // 128 KB: 16 increments of 8 KB 2-way

	fmt.Println("Complexity-adaptive 128KB Dcache hierarchy (movable L1/L2 boundary)")
	fmt.Println()

	type appResult struct {
		name    string
		tpi     map[int]float64
		tpiMiss map[int]float64
	}
	var results []appResult

	for _, name := range []string{"gcc", "stereo", "appcg"} {
		b, err := capsim.BenchmarkByName(name)
		if err != nil {
			log.Fatal(err)
		}
		r := appResult{name: name, tpi: map[int]float64{}, tpiMiss: map[int]float64{}}
		fmt.Printf("%s (refs/instr %.2f):\n", name, b.Mem.RefsPerInstr)
		for k := 1; k <= 8; k++ {
			m, err := capsim.NewCacheMachine(b, 1, p, k, -1)
			if err != nil {
				log.Fatal(err)
			}
			m.RunInterval(300_000)
			r.tpi[k] = m.TotalTPI()
			r.tpiMiss[k] = m.TotalTPIMiss()
			fmt.Printf("  L1=%2dKB %2d-way: cycle %.3f ns, L1 miss %.1f%%, TPI %.4f (miss %.4f)\n",
				p.L1Bytes(k)/1024, p.L1Assoc(k), m.Timing(k).CycleNS,
				100*m.Stats().L1MissRatio(), r.tpi[k], r.tpiMiss[k])
		}
		results = append(results, r)
		fmt.Println()
	}

	// The conventional design freezes one boundary for everyone; the CAP
	// reconfigures on context switches.
	conv := 2 // 16KB 4-way, the paper's best conventional configuration
	fmt.Printf("conventional (fixed L1=%dKB) vs process-level adaptive:\n", p.L1Bytes(conv)/1024)
	for _, r := range results {
		best, bestTPI := conv, r.tpi[conv]
		for k, tpi := range r.tpi {
			if tpi < bestTPI {
				best, bestTPI = k, tpi
			}
		}
		fmt.Printf("  %-8s conventional %.4f ns -> adaptive %.4f ns at L1=%dKB (%.1f%% faster)\n",
			r.name, r.tpi[conv], bestTPI, p.L1Bytes(best)/1024,
			100*(r.tpi[conv]-bestTPI)/r.tpi[conv])
	}
}
