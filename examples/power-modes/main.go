// power-modes demonstrates the CAP's power-management side (paper Section
// 4.1): the controllable clock and structure sizes provide several
// performance/power design points in one chip. The lowest-power mode sets
// every adaptive structure to its minimum size and selects the slowest
// clock — the mode the paper suggests for running from an uninterruptible
// power supply — and the same silicon can ship anywhere from a high-end
// server to a low-power laptop configuration.
package main

import (
	"fmt"
	"log"

	"capsim"
)

func main() {
	p := capsim.PaperCacheParams()
	b, err := capsim.BenchmarkByName("gcc")
	if err != nil {
		log.Fatal(err)
	}

	// Profile the boundaries once to find the performance mode.
	var pts []point
	for k := 1; k <= 8; k++ {
		m, err := capsim.NewCacheMachine(b, 1, p, k, -1)
		if err != nil {
			log.Fatal(err)
		}
		m.RunInterval(200_000)
		pts = append(pts, point{k, m.TotalTPI(), m.Timing(k).CycleNS})
	}
	best := pts[0]
	for _, pt := range pts {
		if pt.tpi < best.tpi {
			best = pt
		}
	}
	slowest := pts[len(pts)-1].cycleNS

	fmt.Println("gcc on the adaptive 128KB Dcache hierarchy:")
	fmt.Println()
	modes := []struct {
		name    string
		k       int
		cycleNS float64
	}{
		{"server (performance)", best.k, best.cycleNS},
		{"laptop (balanced)", 1, pts[0].cycleNS},
		{"UPS   (lowest power)", 1, slowest},
	}
	for _, mode := range modes {
		// CPI is set by the structure configuration; the clock may be
		// deliberately slower than the structure requires.
		cpi := pts[mode.k-1].tpi / pts[mode.k-1].cycleNS
		tpi := cpi * mode.cycleNS
		activeFrac := float64(mode.k) / 8
		// Dynamic power proxy: switched capacitance (active fraction)
		// times frequency. Energy per instruction: power x TPI.
		power := activeFrac / mode.cycleNS
		energy := activeFrac * cpi
		fmt.Printf("  %-22s L1=%dKB @ %.3f ns: TPI %.4f ns, rel. power %.2f, rel. energy/instr %.2f\n",
			mode.name, p.L1Bytes(mode.k)/1024, mode.cycleNS, tpi,
			power/(1.0/pts[best.k-1].cycleNS), energy/(float64(best.k)/8*cpiOf(pts, best.k)))
	}
	fmt.Println()
	fmt.Println("One implementation, several product configurations (paper Section 4.1).")
}

// point is one profiled boundary configuration.
type point struct {
	k       int
	tpi     float64
	cycleNS float64
}

func cpiOf(pts []point, k int) float64 {
	return pts[k-1].tpi / pts[k-1].cycleNS
}
