// interval-adaptivity demonstrates the paper's Section 6 extension: instead
// of fixing one configuration per application, a hardware predictor reads
// the performance-monitoring hardware every interval, predicts the best
// queue size for the next interval, and switches when confident — paying
// queue-drain and clock-switch penalties when it does.
//
// vortex is the interesting subject: its best configuration alternates
// between 16 and 64 entries on a fairly regular period in some stretches and
// irregularly in others, which is exactly what the confidence gate is for.
package main

import (
	"fmt"
	"log"

	"capsim"
)

func main() {
	b, err := capsim.BenchmarkByName("vortex")
	if err != nil {
		log.Fatal(err)
	}
	sizes := []int{16, 64} // the two configurations Figure 13 studies
	const (
		intervals      = 1200
		intervalInstrs = 2000
	)

	run := func(p capsim.Policy) (float64, int64) {
		m, err := capsim.NewQueueMachine(b, 7, sizes, 0, -1)
		if err != nil {
			log.Fatal(err)
		}
		res := capsim.RunQueue(m, p, intervals, intervalInstrs, false)
		return res.TPI, res.Switches
	}

	fmt.Printf("vortex, %d intervals of %d instructions:\n\n", intervals, intervalInstrs)
	for _, fixed := range []int{0, 1} {
		tpi, _ := run(capsim.FixedPolicy{Config: fixed})
		fmt.Printf("  fixed IQ=%-3d           TPI %.4f ns\n", sizes[fixed], tpi)
	}

	adaptive := &capsim.IntervalPolicy{Configs: []int{0, 1}}
	tpi, switches := run(adaptive)
	fmt.Printf("  interval-adaptive      TPI %.4f ns (%d reconfigurations)\n\n", tpi, switches)

	// The confidence gate is what keeps the irregular stretches from
	// thrashing: compare against a trigger-happy variant.
	eager := &capsim.IntervalPolicy{Configs: []int{0, 1}, ConfidenceMax: 1, MinGain: 0.001, ExplorePeriod: 4}
	tpiEager, switchesEager := run(eager)
	fmt.Printf("  without confidence     TPI %.4f ns (%d reconfigurations)\n", tpiEager, switchesEager)
	fmt.Println()
	fmt.Println("The paper: 'a complexity-adaptive hardware predictor should assign a")
	fmt.Println("confidence level to each prediction ... to avoid needless")
	fmt.Println("reconfiguration overhead.'")
}
