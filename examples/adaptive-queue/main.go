// adaptive-queue walks through the paper's instruction-queue experiment
// (Section 5.3) on three contrasting applications: a window-hungry integer
// code (gcc), a dependence-chain-bound solver (appcg), and one that keeps
// profiting all the way to 128 entries (compress). It prints the
// wakeup/select timing decomposition behind each configuration's clock.
package main

import (
	"fmt"
	"log"

	"capsim"
)

func main() {
	sizes := capsim.PaperQueueSizes()

	fmt.Println("Adaptive instruction queue: wakeup+select sets the clock")
	fmt.Println()
	fmt.Println("  entries  cycle(ns)")
	for i, w := range sizes {
		b, _ := capsim.BenchmarkByName("gcc")
		m, err := capsim.NewQueueMachine(b, 1, sizes, i, -1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %7d  %.3f\n", w, m.Current().CycleNS)
	}
	fmt.Println()

	for _, name := range []string{"gcc", "appcg", "compress"} {
		b, err := capsim.BenchmarkByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: TPI by queue size\n", name)
		bestI, bestTPI := 0, 0.0
		for i := range sizes {
			m, err := capsim.NewQueueMachine(b, 1, sizes, i, -1)
			if err != nil {
				log.Fatal(err)
			}
			s := m.RunInterval(120_000)
			tpi := m.TotalTPI()
			if i == 0 || tpi < bestTPI {
				bestI, bestTPI = i, tpi
			}
			fmt.Printf("  IQ=%3d: IPC %.2f  TPI %.4f ns\n", sizes[i], s.IPC, tpi)
		}
		fmt.Printf("  -> best configuration: %d entries (%.4f ns)\n\n", sizes[bestI], bestTPI)
	}

	fmt.Println("A conventional processor freezes one of these rows at design time;")
	fmt.Println("the CAP picks per application and keeps the frozen rows' clock rates.")
}
