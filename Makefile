# capsim build/test/bench entry points. `make ci` is the gate every change
# must pass; `make bench` regenerates BENCH_sweep.json (serial vs parallel
# full-evaluation runs, each in a fresh process so the study memos are cold).

GO ?= go

.PHONY: all build test short race vet fmt ci bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt vet build race

# bench writes BENCH_sweep.json: a two-element array holding the full
# -experiment all evaluation measured at -parallel 1 and at -parallel 8,
# with per-experiment wall time and allocation deltas. Compare
# total_wall_ns between the elements for the sweep speedup (on a
# single-core box the two legs tie — the pool adds no overhead — while the
# parallel leg still exercises the full worker machinery).
bench:
	$(GO) run ./cmd/capsim -experiment all -parallel 1 -bench-json /tmp/capsim_bench_serial.json >/dev/null
	$(GO) run ./cmd/capsim -experiment all -parallel 8 -bench-json /tmp/capsim_bench_parallel.json >/dev/null
	{ printf '[\n'; cat /tmp/capsim_bench_serial.json; printf ',\n'; \
	  cat /tmp/capsim_bench_parallel.json; printf ']\n'; } > BENCH_sweep.json
	@echo "wrote BENCH_sweep.json"

clean:
	rm -f /tmp/capsim_bench_serial.json /tmp/capsim_bench_parallel.json
