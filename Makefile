# capsim build/test/bench entry points. `make ci` is the gate every change
# must pass; `make bench` regenerates BENCH_sweep.json (serial vs parallel
# full-evaluation runs, each in a fresh process so the study memos are cold);
# `make bench-onepass` regenerates BENCH_onepass.json (legacy per-cell
# streams vs the shared-trace one-pass profiling path); `make bench-queue`
# regenerates BENCH_queue.json (scan vs event issue engine x onepass on the
# queue study); `make bench-obs` regenerates BENCH_obs.json (obs-disabled vs
# obs-enabled overhead on the fig7/fig10 profiling passes, plus the fig12
# flight-recorder ledger-on/off x obs-on/off matrix); `make
# bench-joint` regenerates BENCH_joint.json (independent per-cell machines
# vs the joint cache x queue kernel on the Figure 5 ablation, plus the
# compressed trace-tier ratio); `make bench-shard` regenerates
# BENCH_shard.json (the shard tier's scaling curve at 1/2/4/8 workers plus
# the persistent study cache's warm-vs-cold win); `make bench-policy`
# regenerates BENCH_policy.json (direct per-policy simulation vs the
# one-pass interval-family replay on the Section 6 suite, with the
# classification tier's compression ratio); `make bench-zoo` regenerates
# BENCH_zoo.json (the policy-zoo league race, serial vs 8-way parallel);
# `make bench-compare` prints the old-vs-new profiling micro-benchmark
# deltas. Every bench-*
# record target refuses to overwrite a record whose recorded command no
# longer matches the built flags (scripts/bench_guard.sh); pass FORCE=1 to
# regenerate intentionally.

GO ?= go

.PHONY: all build test short race ci-race vet fmt staticcheck ci bench bench-compare bench-compare-smoke bench-onepass bench-queue bench-queue-smoke bench-obs bench-obs-smoke bench-joint bench-joint-smoke bench-shard bench-shard-smoke bench-policy bench-policy-smoke bench-zoo bench-zoo-smoke serve-smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -timeout 30m ./...

# ci-race is the focused race lane over the concurrency-heavy packages — the
# flight recorder's publication fan-out, the obs counters, the API server's
# streaming/admission paths and the sweep pool — cheap enough to run on every
# iteration (the full `race` target covers the whole module).
ci-race:
	$(GO) test -race -timeout 10m ./internal/flight/ ./internal/obs/ ./internal/server/ ./internal/sweep/

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# staticcheck installs itself on demand when absent (go install; needs
# network once) and runs; when the install fails — offline box — it warns
# loudly instead of failing, so ci still passes air-gapped but the skip is
# visible rather than silent.
staticcheck:
	@gobin="$$($(GO) env GOPATH)/bin"; \
	if ! command -v staticcheck >/dev/null 2>&1 && [ ! -x "$$gobin/staticcheck" ]; then \
		echo "staticcheck not installed; trying: $(GO) install honnef.co/go/tools/cmd/staticcheck@latest"; \
		$(GO) install honnef.co/go/tools/cmd/staticcheck@latest || true; \
	fi; \
	if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	elif [ -x "$$gobin/staticcheck" ]; then \
		"$$gobin/staticcheck" ./... ; \
	else \
		echo "WARNING: staticcheck unavailable and install failed (offline?); static analysis SKIPPED"; \
	fi

ci: fmt vet staticcheck build ci-race race bench-compare-smoke bench-queue-smoke bench-obs-smoke bench-joint-smoke bench-shard-smoke bench-policy-smoke bench-zoo-smoke serve-smoke

# serve-smoke boots the experiment API server (-serve-api) on an ephemeral
# port and proves the service contract end to end: POST /v1/run renders
# byte-identical to the CLI, a repeat request hits the response cache, a
# request against a busy run slot gets 429, a disconnected client's sweep
# stops claiming jobs, and SIGTERM drains the process to a zero exit.
serve-smoke:
	@GO="$(GO)" sh scripts/serve_smoke.sh

# bench writes BENCH_sweep.json: a two-element array holding the full
# -experiment all evaluation measured at -parallel 1 and at -parallel 8,
# with per-experiment wall time and allocation deltas. Compare
# total_wall_ns between the elements for the sweep speedup (on a
# single-core box the two legs tie — the pool adds no overhead — while the
# parallel leg still exercises the full worker machinery).
bench:
	@FORCE=$(FORCE) sh scripts/bench_guard.sh BENCH_sweep.json \
		"capsim -experiment all -parallel 1 -bench-json /tmp/capsim_bench_serial.json" \
		"capsim -experiment all -parallel 8 -bench-json /tmp/capsim_bench_parallel.json"
	$(GO) run ./cmd/capsim -experiment all -parallel 1 -bench-json /tmp/capsim_bench_serial.json >/dev/null
	$(GO) run ./cmd/capsim -experiment all -parallel 8 -bench-json /tmp/capsim_bench_parallel.json >/dev/null
	{ printf '[\n'; cat /tmp/capsim_bench_serial.json; printf ',\n'; \
	  cat /tmp/capsim_bench_parallel.json; printf ']\n'; } > BENCH_sweep.json
	@echo "wrote BENCH_sweep.json"

# bench-compare runs the paired profiling benchmarks (one-pass shared-trace
# vs legacy per-cell streams, for the cache and queue studies) and prints a
# benchstat-style delta per pair. No external tooling: the reduction is one
# awk pass over the standard -bench output.
bench-compare:
	@$(GO) test -run '^$$' -bench 'Profile(Onepass|Legacy)' -benchtime 5x -count 1 . \
		| tee /tmp/capsim_bench_compare.txt
	@awk '/^Benchmark/ { \
		name=$$1; sub(/-[0-9]+$$/, "", name); ns[name]=$$3; order[n++]=name } \
	END { \
		printf "\n%-22s %14s %14s %8s\n", "study", "legacy ns/op", "onepass ns/op", "speedup"; \
		for (i=0; i<n; i++) { \
			name=order[i]; \
			if (name ~ /Onepass$$/) { \
				base=name; sub(/Onepass$$/, "", base); \
				leg=ns[base "Legacy"]; one=ns[base "Onepass"]; \
				if (leg && one) printf "%-22s %14.0f %14.0f %7.2fx\n", base, leg, one, leg/one; \
			} } }' /tmp/capsim_bench_compare.txt

# bench-compare-smoke is the ci-gated variant: single iteration per
# benchmark, just proving both paths run and the harness parses.
bench-compare-smoke:
	@$(GO) test -run '^$$' -bench 'Profile(Onepass|Legacy)' -benchtime 1x -count 1 . >/dev/null
	@echo "bench-compare smoke ok"

# bench-onepass writes BENCH_onepass.json: the full cache-study profiling
# pass (fig7 regenerates it from cold memos in each fresh process) measured
# with -onepass=false (legacy, one machine + private stream per boundary
# cell) and -onepass=true (shared materialized trace, one MultiHierarchy
# pass per application), both serial so the comparison is pure compute.
# Compare total_wall_ns between the two elements for the one-pass speedup.
bench-onepass:
	@FORCE=$(FORCE) sh scripts/bench_guard.sh BENCH_onepass.json \
		"capsim -experiment fig7 -parallel 1 -onepass=false -bench-json /tmp/capsim_bench_legacy.json" \
		"capsim -experiment fig7 -parallel 1 -onepass=true -bench-json /tmp/capsim_bench_onepass.json"
	$(GO) run ./cmd/capsim -experiment fig7 -parallel 1 -onepass=false -bench-json /tmp/capsim_bench_legacy.json >/dev/null
	$(GO) run ./cmd/capsim -experiment fig7 -parallel 1 -onepass=true -bench-json /tmp/capsim_bench_onepass.json >/dev/null
	{ printf '[\n'; cat /tmp/capsim_bench_legacy.json; printf ',\n'; \
	  cat /tmp/capsim_bench_onepass.json; printf ']\n'; } > BENCH_onepass.json
	@echo "wrote BENCH_onepass.json"

# bench-queue writes BENCH_queue.json: the queue-study profiling pass (fig10
# regenerates it from cold memos in each fresh process) measured across the
# issue-engine x onepass grid at a fixed seed, all serial so the comparison
# is pure compute. The four elements are distinguished by their queue_engine
# and onepass fields; compare total_wall_ns of the scan/onepass element (the
# previous default) against event/onepass (the new default) for the headline
# event-engine speedup.
bench-queue:
	@FORCE=$(FORCE) sh scripts/bench_guard.sh BENCH_queue.json \
		"capsim -experiment fig10 -parallel 1 -onepass=false -queue-engine scan -bench-json /tmp/capsim_bench_q_scan_legacy.json" \
		"capsim -experiment fig10 -parallel 1 -onepass=true -queue-engine scan -bench-json /tmp/capsim_bench_q_scan_onepass.json" \
		"capsim -experiment fig10 -parallel 1 -onepass=false -queue-engine event -bench-json /tmp/capsim_bench_q_event_legacy.json" \
		"capsim -experiment fig10 -parallel 1 -onepass=true -queue-engine event -bench-json /tmp/capsim_bench_q_event_onepass.json"
	$(GO) run ./cmd/capsim -experiment fig10 -parallel 1 -onepass=false -queue-engine scan -bench-json /tmp/capsim_bench_q_scan_legacy.json >/dev/null
	$(GO) run ./cmd/capsim -experiment fig10 -parallel 1 -onepass=true -queue-engine scan -bench-json /tmp/capsim_bench_q_scan_onepass.json >/dev/null
	$(GO) run ./cmd/capsim -experiment fig10 -parallel 1 -onepass=false -queue-engine event -bench-json /tmp/capsim_bench_q_event_legacy.json >/dev/null
	$(GO) run ./cmd/capsim -experiment fig10 -parallel 1 -onepass=true -queue-engine event -bench-json /tmp/capsim_bench_q_event_onepass.json >/dev/null
	{ printf '[\n'; cat /tmp/capsim_bench_q_scan_legacy.json; printf ',\n'; \
	  cat /tmp/capsim_bench_q_scan_onepass.json; printf ',\n'; \
	  cat /tmp/capsim_bench_q_event_legacy.json; printf ',\n'; \
	  cat /tmp/capsim_bench_q_event_onepass.json; printf ']\n'; } > BENCH_queue.json
	@echo "wrote BENCH_queue.json"

# bench-queue-smoke is the ci-gated variant: a tiny-budget fig10 run under
# each issue engine, asserting byte-identical renders (the timing footer is
# stripped; it is the only line allowed to differ).
bench-queue-smoke:
	@$(GO) run ./cmd/capsim -experiment fig10 -parallel 2 -queue-instrs 3000 -queue-engine event \
		| grep -v '^(fig10 in ' > /tmp/capsim_q_event.txt
	@$(GO) run ./cmd/capsim -experiment fig10 -parallel 2 -queue-instrs 3000 -queue-engine scan \
		| grep -v '^(fig10 in ' > /tmp/capsim_q_scan.txt
	@cmp /tmp/capsim_q_event.txt /tmp/capsim_q_scan.txt || \
		{ echo "queue engines rendered differently"; exit 1; }
	@echo "bench-queue smoke ok (renders byte-identical across engines)"

# bench-obs writes BENCH_obs.json: the fig7 (cache) and fig10 (queue)
# profiling passes measured with telemetry disabled (the default) and
# enabled (-obs plus a trace sink), plus the fig12 interval-trace pass
# across the flight-recorder matrix (ledger-on/off x obs-on/off), each in a
# fresh process from cold memos, all serial. The elements are distinguished
# by their obs_enabled field and recorded command; compare total_wall_ns
# within each figure pair for the overhead — the disabled-mode pair must be
# within noise (<2%) of the seed, which is the subsystem's "zero-overhead
# when off" contract, and the fig12 ledger-on legs must stay within 2% of
# ledger-off.
bench-obs:
	@FORCE=$(FORCE) sh scripts/bench_guard.sh BENCH_obs.json \
		"capsim -experiment fig7 -parallel 1 -bench-json /tmp/capsim_bench_obs_f7_off.json" \
		"capsim -experiment fig7 -parallel 1 -obs -trace-out /tmp/capsim_obs_f7.trace.json -bench-json /tmp/capsim_bench_obs_f7_on.json" \
		"capsim -experiment fig10 -parallel 1 -bench-json /tmp/capsim_bench_obs_f10_off.json" \
		"capsim -experiment fig10 -parallel 1 -obs -trace-out /tmp/capsim_obs_f10.trace.json -bench-json /tmp/capsim_bench_obs_f10_on.json" \
		"capsim -experiment fig12 -parallel 1 -bench-json /tmp/capsim_bench_obs_f12_off.json" \
		"capsim -experiment fig12 -parallel 1 -ledger-out /tmp/capsim_obs_f12.ledger.gz -bench-json /tmp/capsim_bench_obs_f12_ledger.json" \
		"capsim -experiment fig12 -parallel 1 -obs -bench-json /tmp/capsim_bench_obs_f12_obs.json" \
		"capsim -experiment fig12 -parallel 1 -obs -ledger-out /tmp/capsim_obs_f12_both.ledger.gz -bench-json /tmp/capsim_bench_obs_f12_both.json"
	$(GO) run ./cmd/capsim -experiment fig7 -parallel 1 -bench-json /tmp/capsim_bench_obs_f7_off.json >/dev/null
	$(GO) run ./cmd/capsim -experiment fig7 -parallel 1 -obs -trace-out /tmp/capsim_obs_f7.trace.json -bench-json /tmp/capsim_bench_obs_f7_on.json >/dev/null 2>/dev/null
	$(GO) run ./cmd/capsim -experiment fig10 -parallel 1 -bench-json /tmp/capsim_bench_obs_f10_off.json >/dev/null
	$(GO) run ./cmd/capsim -experiment fig10 -parallel 1 -obs -trace-out /tmp/capsim_obs_f10.trace.json -bench-json /tmp/capsim_bench_obs_f10_on.json >/dev/null 2>/dev/null
	$(GO) run ./cmd/capsim -experiment fig12 -parallel 1 -bench-json /tmp/capsim_bench_obs_f12_off.json >/dev/null
	$(GO) run ./cmd/capsim -experiment fig12 -parallel 1 -ledger-out /tmp/capsim_obs_f12.ledger.gz -bench-json /tmp/capsim_bench_obs_f12_ledger.json >/dev/null 2>/dev/null
	$(GO) run ./cmd/capsim -experiment fig12 -parallel 1 -obs -bench-json /tmp/capsim_bench_obs_f12_obs.json >/dev/null
	$(GO) run ./cmd/capsim -experiment fig12 -parallel 1 -obs -ledger-out /tmp/capsim_obs_f12_both.ledger.gz -bench-json /tmp/capsim_bench_obs_f12_both.json >/dev/null 2>/dev/null
	{ printf '[\n'; cat /tmp/capsim_bench_obs_f7_off.json; printf ',\n'; \
	  cat /tmp/capsim_bench_obs_f7_on.json; printf ',\n'; \
	  cat /tmp/capsim_bench_obs_f10_off.json; printf ',\n'; \
	  cat /tmp/capsim_bench_obs_f10_on.json; printf ',\n'; \
	  cat /tmp/capsim_bench_obs_f12_off.json; printf ',\n'; \
	  cat /tmp/capsim_bench_obs_f12_ledger.json; printf ',\n'; \
	  cat /tmp/capsim_bench_obs_f12_obs.json; printf ',\n'; \
	  cat /tmp/capsim_bench_obs_f12_both.json; printf ']\n'; } > BENCH_obs.json
	@echo "wrote BENCH_obs.json"

# bench-obs-smoke is the ci-gated variant: a tiny-budget fig10 run with
# telemetry off and with every sink on (-obs -obs-assert, trace + manifest),
# asserting byte-identical stdout renders (the timing footer is stripped; it
# is the only line allowed to differ) and that the trace and manifest files
# are produced; then a fig12 run with the flight recorder on (-ledger-out
# under -obs-assert, so the ledger invariants are live), asserting the
# render is byte-identical to recorder-off and that the recorded ledger
# parses back through `capsim -report`.
bench-obs-smoke:
	@$(GO) run ./cmd/capsim -experiment fig10 -parallel 2 -queue-instrs 3000 \
		| grep -v '^(fig10 in ' > /tmp/capsim_obs_off.txt
	@$(GO) run ./cmd/capsim -experiment fig10 -parallel 2 -queue-instrs 3000 \
		-obs -obs-assert -trace-out /tmp/capsim_obs_smoke.trace.json -metrics-out /tmp/capsim_obs_smoke.json \
		2>/dev/null | grep -v '^(fig10 in ' > /tmp/capsim_obs_on.txt
	@cmp /tmp/capsim_obs_off.txt /tmp/capsim_obs_on.txt || \
		{ echo "obs-enabled run rendered differently"; exit 1; }
	@test -s /tmp/capsim_obs_smoke.trace.json || { echo "trace file missing"; exit 1; }
	@test -s /tmp/capsim_obs_smoke.json || { echo "manifest missing"; exit 1; }
	@$(GO) run ./cmd/capsim -experiment fig12 -parallel 2 \
		| grep -v '^(fig12 in ' > /tmp/capsim_ledger_off.txt
	@$(GO) run ./cmd/capsim -experiment fig12 -parallel 2 \
		-obs-assert -ledger-out /tmp/capsim_obs_smoke.ledger.gz \
		2>/dev/null | grep -v '^(fig12 in ' > /tmp/capsim_ledger_on.txt
	@cmp /tmp/capsim_ledger_off.txt /tmp/capsim_ledger_on.txt || \
		{ echo "ledger-enabled run rendered differently"; exit 1; }
	@$(GO) run ./cmd/capsim -report /tmp/capsim_obs_smoke.ledger.gz | grep -q '^league:' || \
		{ echo "recorded ledger failed to parse back through -report"; exit 1; }
	@echo "bench-obs smoke ok (renders byte-identical with obs/assert/trace/manifest/ledger on; ledger round-trips)"

# bench-joint writes BENCH_joint.json: the Figure 5 joint cache x queue
# ablation (ablation-combined) measured with -onepass=false (one private
# CombinedMachine per grid cell, fanned across the pool at -parallel 1)
# and -onepass=true (one MultiCombined joint-kernel pass per application
# over the shared compressed trace), both serial so the comparison is
# pure compute. Compare total_wall_ns between the elements for the
# joint-kernel speedup; the onepass element's trace_ratio field records
# compressed chunk bytes over their raw struct equivalent (the trace-tier
# shrink), and trace_bytes the resident store ceiling.
bench-joint:
	@FORCE=$(FORCE) sh scripts/bench_guard.sh BENCH_joint.json \
		"capsim -experiment ablation-combined -parallel 1 -onepass=false -bench-json /tmp/capsim_bench_joint_legacy.json" \
		"capsim -experiment ablation-combined -parallel 1 -onepass=true -bench-json /tmp/capsim_bench_joint_onepass.json"
	$(GO) run ./cmd/capsim -experiment ablation-combined -parallel 1 -onepass=false -bench-json /tmp/capsim_bench_joint_legacy.json >/dev/null
	$(GO) run ./cmd/capsim -experiment ablation-combined -parallel 1 -onepass=true -bench-json /tmp/capsim_bench_joint_onepass.json >/dev/null
	{ printf '[\n'; cat /tmp/capsim_bench_joint_legacy.json; printf ',\n'; \
	  cat /tmp/capsim_bench_joint_onepass.json; printf ']\n'; } > BENCH_joint.json
	@echo "wrote BENCH_joint.json"

# bench-joint-smoke is the ci-gated variant: a tiny-budget ablation-combined
# run through the joint kernel (-onepass) and through independent per-cell
# machines, asserting byte-identical renders (the timing footer is stripped;
# it is the only line allowed to differ).
bench-joint-smoke:
	@$(GO) run ./cmd/capsim -experiment ablation-combined -parallel 2 -queue-instrs 20000 -onepass=true \
		| grep -v '^(ablation-combined in ' > /tmp/capsim_joint_one.txt
	@$(GO) run ./cmd/capsim -experiment ablation-combined -parallel 2 -queue-instrs 20000 -onepass=false \
		| grep -v '^(ablation-combined in ' > /tmp/capsim_joint_leg.txt
	@cmp /tmp/capsim_joint_one.txt /tmp/capsim_joint_leg.txt || \
		{ echo "joint kernel rendered differently from independent machines"; exit 1; }
	@echo "bench-joint smoke ok (joint kernel byte-identical to independent machines)"

# bench-shard writes BENCH_shard.json (scripts/bench_shard.sh): the full
# registry measured unsharded from cold, under -shard-coordinator 1/2/4/8
# (each element's shard_wall_ns is the worker phase, total_wall_ns the
# merge), and unsharded against the warm persistent study cache the last
# shard leg left behind. The script fails if the warm leg does not beat
# the cold one — the persistent cache's reason to exist.
bench-shard:
	@FORCE=$(FORCE) sh scripts/bench_guard.sh BENCH_shard.json \
		"capsim -experiment all -parallel 1 -bench-json /tmp/capsim_bench_shard/cold.json" \
		"capsim -experiment all -parallel 1 -shard-coordinator 1 -study-cache /tmp/capsim_bench_shard/cache -bench-json /tmp/capsim_bench_shard/shard1.json" \
		"capsim -experiment all -parallel 1 -shard-coordinator 2 -study-cache /tmp/capsim_bench_shard/cache -bench-json /tmp/capsim_bench_shard/shard2.json" \
		"capsim -experiment all -parallel 1 -shard-coordinator 4 -study-cache /tmp/capsim_bench_shard/cache -bench-json /tmp/capsim_bench_shard/shard4.json" \
		"capsim -experiment all -parallel 1 -shard-coordinator 8 -study-cache /tmp/capsim_bench_shard/cache -bench-json /tmp/capsim_bench_shard/shard8.json" \
		"capsim -experiment all -parallel 1 -study-cache /tmp/capsim_bench_shard/cache -bench-json /tmp/capsim_bench_shard/warm.json"
	@GO="$(GO)" sh scripts/bench_shard.sh

# bench-shard-smoke is the ci-gated variant (scripts/shard_smoke.sh): a
# tiny-budget fig10 proves static shards and coordinator mode both merge
# byte-identical to an unsharded baseline, and that the merge served its
# study rows from the shards' persistent cache (memo.persist_hits > 0,
# zero misses, in the merge's run manifest).
bench-shard-smoke:
	@GO="$(GO)" sh scripts/shard_smoke.sh

# bench-policy writes BENCH_policy.json (scripts/bench_policy.sh): the
# Section 6 interval suite (fig12, fig13, the policy ablations with the
# per-interval oracle) measured with direct per-policy simulation
# (-onepass=false) and with the one-pass interval-family replay + lockstep
# policy race (-onepass=true), both serial, each suite in one process so
# cross-driver family reuse is part of the measurement. The script fails
# below a 1.5x replay speedup; the replay element's trace_ratio records
# the compressed stream tier's footprint against its flat equivalent.
bench-policy:
	@FORCE=$(FORCE) sh scripts/bench_guard.sh BENCH_policy.json \
		"capsim -experiment fig12,fig13,ablation-interval,ablation-switch -parallel 1 -onepass=false -bench-json /tmp/capsim_bench_policy/direct.json" \
		"capsim -experiment fig12,fig13,ablation-interval,ablation-switch -parallel 1 -onepass=true -bench-json /tmp/capsim_bench_policy/replay.json"
	@GO="$(GO)" sh scripts/bench_policy.sh

# bench-policy-smoke is the ci-gated variant: fig12 and fig13 rendered
# through the interval-family replay (-onepass) and through direct
# per-configuration simulation, asserting byte-identical renders (the
# timing footers are stripped; they are the only lines allowed to differ).
bench-policy-smoke:
	@$(GO) run ./cmd/capsim -experiment fig12,fig13 -parallel 2 -onepass=true \
		| grep -v '^(fig1[23] in ' > /tmp/capsim_policy_one.txt
	@$(GO) run ./cmd/capsim -experiment fig12,fig13 -parallel 2 -onepass=false \
		| grep -v '^(fig1[23] in ' > /tmp/capsim_policy_leg.txt
	@cmp /tmp/capsim_policy_one.txt /tmp/capsim_policy_leg.txt || \
		{ echo "policy replay rendered differently from direct simulation"; exit 1; }
	@echo "bench-policy smoke ok (replay byte-identical to direct simulation)"

# bench-zoo writes BENCH_zoo.json: the full policy-zoo league race (every
# contender + fixed baselines + oracle across the app x penalty grid, each
# cell one study row) measured at -parallel 1 and at -parallel 8, each in a
# fresh process so the study memos are cold. Compare total_wall_ns between
# the elements for the cell fan-out speedup.
bench-zoo:
	@FORCE=$(FORCE) sh scripts/bench_guard.sh BENCH_zoo.json \
		"capsim -experiment zoo -parallel 1 -bench-json /tmp/capsim_bench_zoo_serial.json" \
		"capsim -experiment zoo -parallel 8 -bench-json /tmp/capsim_bench_zoo_parallel.json"
	$(GO) run ./cmd/capsim -experiment zoo -parallel 1 -bench-json /tmp/capsim_bench_zoo_serial.json >/dev/null
	$(GO) run ./cmd/capsim -experiment zoo -parallel 8 -bench-json /tmp/capsim_bench_zoo_parallel.json >/dev/null
	{ printf '[\n'; cat /tmp/capsim_bench_zoo_serial.json; printf ',\n'; \
	  cat /tmp/capsim_bench_zoo_parallel.json; printf ']\n'; } > BENCH_zoo.json
	@echo "wrote BENCH_zoo.json"

# bench-zoo-smoke is the ci-gated variant: a tiny-budget zoo run proving
# the league render is byte-identical at 1 vs 4 workers and under a 2-way
# shard coordinator merging through a fresh persistent study cache, and
# that `capsim -report` over the ledger the run emits reproduces the league
# tables byte-for-byte (the experiment header and timing footer are
# stripped, plus the blank separators the experiment renderer leaves before
# its footer; every table byte must match).
bench-zoo-smoke:
	@$(GO) run ./cmd/capsim -experiment zoo -parallel 1 -queue-instrs 3000 \
		| grep -v '^(zoo in ' > /tmp/capsim_zoo_p1.txt
	@$(GO) run ./cmd/capsim -experiment zoo -parallel 4 -queue-instrs 3000 \
		| grep -v '^(zoo in ' > /tmp/capsim_zoo_p4.txt
	@cmp /tmp/capsim_zoo_p1.txt /tmp/capsim_zoo_p4.txt || \
		{ echo "zoo rendered differently at 1 vs 4 workers"; exit 1; }
	@rm -rf /tmp/capsim_zoo_smoke && mkdir -p /tmp/capsim_zoo_smoke
	@$(GO) run ./cmd/capsim -experiment zoo -parallel 2 -queue-instrs 3000 \
		-shard-coordinator 2 -study-cache /tmp/capsim_zoo_smoke/cache \
		| grep -v '^(zoo in ' > /tmp/capsim_zoo_shard.txt
	@cmp /tmp/capsim_zoo_p1.txt /tmp/capsim_zoo_shard.txt || \
		{ echo "sharded zoo rendered differently from unsharded"; exit 1; }
	@$(GO) run ./cmd/capsim -experiment zoo -parallel 2 -queue-instrs 3000 \
		-ledger-out /tmp/capsim_zoo_smoke/zoo.ledger.gz 2>/dev/null \
		> /tmp/capsim_zoo_direct_full.txt
	@$(GO) run ./cmd/capsim -report /tmp/capsim_zoo_smoke/zoo.ledger.gz \
		> /tmp/capsim_zoo_report_full.txt
	@sed -n '/^league:/,$$p' /tmp/capsim_zoo_direct_full.txt | grep -v '^(zoo in ' \
		| awk '{l[NR]=$$0} END{n=NR; while(n>0 && l[n]=="") n--; for(i=1;i<=n;i++) print l[i]}' \
		> /tmp/capsim_zoo_direct.txt
	@sed -n '/^league:/,$$p' /tmp/capsim_zoo_report_full.txt \
		| awk '{l[NR]=$$0} END{n=NR; while(n>0 && l[n]=="") n--; for(i=1;i<=n;i++) print l[i]}' \
		> /tmp/capsim_zoo_report.txt
	@cmp /tmp/capsim_zoo_direct.txt /tmp/capsim_zoo_report.txt || \
		{ echo "capsim -report did not reproduce the zoo league tables"; exit 1; }
	@echo "bench-zoo smoke ok (renders byte-identical at 1 vs 4 workers and sharded vs unsharded; -report reproduces the league)"

clean:
	rm -f /tmp/capsim_bench_serial.json /tmp/capsim_bench_parallel.json \
	  /tmp/capsim_bench_obs_f7_off.json /tmp/capsim_bench_obs_f7_on.json \
	  /tmp/capsim_bench_obs_f10_off.json /tmp/capsim_bench_obs_f10_on.json \
	  /tmp/capsim_obs_f7.trace.json /tmp/capsim_obs_f10.trace.json \
	  /tmp/capsim_obs_off.txt /tmp/capsim_obs_on.txt \
	  /tmp/capsim_obs_smoke.trace.json /tmp/capsim_obs_smoke.json \
	  /tmp/capsim_bench_obs_f12_off.json /tmp/capsim_bench_obs_f12_ledger.json \
	  /tmp/capsim_bench_obs_f12_obs.json /tmp/capsim_bench_obs_f12_both.json \
	  /tmp/capsim_obs_f12.ledger.gz /tmp/capsim_obs_f12_both.ledger.gz \
	  /tmp/capsim_ledger_off.txt /tmp/capsim_ledger_on.txt /tmp/capsim_obs_smoke.ledger.gz \
	  /tmp/capsim_bench_legacy.json /tmp/capsim_bench_onepass.json \
	  /tmp/capsim_bench_compare.txt \
	  /tmp/capsim_bench_q_scan_legacy.json /tmp/capsim_bench_q_scan_onepass.json \
	  /tmp/capsim_bench_q_event_legacy.json /tmp/capsim_bench_q_event_onepass.json \
	  /tmp/capsim_q_event.txt /tmp/capsim_q_scan.txt \
	  /tmp/capsim_bench_joint_legacy.json /tmp/capsim_bench_joint_onepass.json \
	  /tmp/capsim_joint_one.txt /tmp/capsim_joint_leg.txt \
	  /tmp/capsim_policy_one.txt /tmp/capsim_policy_leg.txt \
	  /tmp/capsim_bench_zoo_serial.json /tmp/capsim_bench_zoo_parallel.json \
	  /tmp/capsim_zoo_p1.txt /tmp/capsim_zoo_p4.txt /tmp/capsim_zoo_shard.txt \
	  /tmp/capsim_zoo_direct_full.txt /tmp/capsim_zoo_report_full.txt \
	  /tmp/capsim_zoo_direct.txt /tmp/capsim_zoo_report.txt
	rm -rf /tmp/capsim_serve_smoke /tmp/capsim_shard_smoke /tmp/capsim_bench_shard \
	  /tmp/capsim_bench_policy /tmp/capsim_zoo_smoke
