package ooo

import (
	"testing"
	"testing/quick"

	"capsim/internal/workload"
)

// stream builds a synthetic benchmark stream from raw ILP parameters.
func stream(t *testing.T, p workload.ILPParams, seed uint64) *workload.InstrStream {
	t.Helper()
	b := workload.Benchmark{Name: "test", ILP: workload.ILPProfile{Base: p}}
	return workload.NewInstrStream(b, seed)
}

func chainParams(lat int) workload.ILPParams {
	return workload.ILPParams{
		SrcWeights: [3]float64{0, 1, 0},
		Dists:      []workload.GeomComponent{{Mean: 1, Weight: 1}},
		Lats:       []workload.LatComponent{{Cycles: lat, Weight: 1}},
	}
}

func independentParams(lat int) workload.ILPParams {
	return workload.ILPParams{
		SrcWeights: [3]float64{1, 0, 0},
		Dists:      []workload.GeomComponent{{Mean: 1, Weight: 1}},
		Lats:       []workload.LatComponent{{Cycles: lat, Weight: 1}},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{WindowSize: 16, IssueWidth: 8}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (Config{WindowSize: 0, IssueWidth: 8}).Validate(); err == nil {
		t.Error("zero window accepted")
	}
	if err := (Config{WindowSize: 16, IssueWidth: 0}).Validate(); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(Config{WindowSize: maxDist, IssueWidth: 8}); err == nil {
		t.Error("oversized window accepted")
	}
}

func TestSerialChainIPC(t *testing.T) {
	// A pure dependence chain with latency L issues one instruction every
	// L cycles regardless of window size.
	for _, lat := range []int{1, 2, 4} {
		for _, w := range []int{16, 64, 128} {
			c := MustNew(PaperConfig(w))
			st := c.Run(stream(t, chainParams(lat), 1), 5000)
			want := 1.0 / float64(lat)
			if got := st.IPC(); got < want*0.98 || got > want*1.02 {
				t.Errorf("chain lat=%d W=%d: IPC %v, want %v", lat, w, got, want)
			}
		}
	}
}

func TestIndependentStreamSaturatesIssueWidth(t *testing.T) {
	c := MustNew(PaperConfig(64))
	st := c.Run(stream(t, independentParams(1), 2), 20000)
	if got := st.IPC(); got < 7.9 {
		t.Errorf("independent stream IPC %v, want ~8 (issue width)", got)
	}
}

func TestIssueWidthRespected(t *testing.T) {
	c := MustNew(Config{WindowSize: 64, IssueWidth: 4})
	st := c.Run(stream(t, independentParams(1), 3), 20000)
	if got := st.IPC(); got > 4.001 {
		t.Errorf("IPC %v exceeds issue width 4", got)
	}
	if got := st.IPC(); got < 3.9 {
		t.Errorf("IPC %v far below achievable 4", got)
	}
}

func TestBackToBackDependentIssue(t *testing.T) {
	// Single-cycle producer-consumer chains must issue in consecutive
	// cycles (IPC 1.0), the property the atomic wakeup+select protects.
	c := MustNew(PaperConfig(32))
	st := c.Run(stream(t, chainParams(1), 4), 5000)
	if got := st.IPC(); got < 0.99 {
		t.Errorf("back-to-back chain IPC %v, want 1.0", got)
	}
}

func TestLargerWindowNeverHurtsIPC(t *testing.T) {
	// Pure-IPC monotonicity across window sizes for a realistic stream.
	b, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, w := range []int{16, 32, 64, 128} {
		c := MustNew(PaperConfig(w))
		s := workload.NewInstrStream(b, 5)
		ipc := c.Run(s, 100000).IPC()
		if ipc < prev*0.995 { // tolerate sub-percent noise
			t.Errorf("W=%d IPC %v below smaller window's %v", w, ipc, prev)
		}
		prev = ipc
	}
}

func TestWindowFullAccounting(t *testing.T) {
	// A tiny window running a slow chain must report dispatch-blocked
	// cycles.
	c := MustNew(Config{WindowSize: 4, IssueWidth: 8})
	st := c.Run(stream(t, chainParams(4), 6), 2000)
	if st.WindowFullCy == 0 {
		t.Error("no window-full cycles recorded for a saturated tiny window")
	}
}

func TestDrain(t *testing.T) {
	c := MustNew(PaperConfig(64))
	s := stream(t, chainParams(4), 7)
	for i := 0; i < 30; i++ {
		c.Step(s)
	}
	if c.Occupancy() == 0 {
		t.Fatal("window empty after 30 cycles of a slow chain")
	}
	before := c.Stats().Issued
	c.Drain(8)
	if c.Occupancy() > 8 {
		t.Errorf("occupancy %d after Drain(8)", c.Occupancy())
	}
	if c.Stats().DrainStalls == 0 {
		t.Error("drain stalls not recorded")
	}
	if c.Stats().Issued <= before {
		t.Error("drain issued nothing")
	}
}

func TestResize(t *testing.T) {
	c := MustNew(PaperConfig(64))
	s := stream(t, chainParams(2), 8)
	for i := 0; i < 40; i++ {
		c.Step(s)
	}
	if err := c.Resize(16); err != nil {
		t.Fatal(err)
	}
	if c.Occupancy() > 16 {
		t.Errorf("occupancy %d after shrink to 16", c.Occupancy())
	}
	if c.Config().WindowSize != 16 {
		t.Errorf("window size %d", c.Config().WindowSize)
	}
	if err := c.Resize(128); err != nil {
		t.Fatal(err)
	}
	if err := c.Resize(0); err == nil {
		t.Error("Resize(0) accepted")
	}
}

func TestRunIssuesExactly(t *testing.T) {
	c := MustNew(PaperConfig(32))
	st := c.Run(stream(t, independentParams(1), 9), 12345)
	if st.Issued < 12345 {
		t.Errorf("issued %d, want >= 12345", st.Issued)
	}
	if st.Issued > 12345+int64(c.Config().IssueWidth) {
		t.Errorf("overshot issue target by %d", st.Issued-12345)
	}
}

func TestResetStats(t *testing.T) {
	c := MustNew(PaperConfig(32))
	c.Run(stream(t, independentParams(1), 10), 100)
	c.ResetStats()
	if s := c.Stats(); s.Cycles != 0 || s.Issued != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Cycles: 10, Instrs: 20, Issued: 15, DrainStalls: 1, WindowFullCy: 2}
	b := Stats{Cycles: 4, Instrs: 8, Issued: 5, DrainStalls: 1, WindowFullCy: 0}
	d := a.Sub(b)
	if d.Cycles != 6 || d.Instrs != 12 || d.Issued != 10 || d.DrainStalls != 0 || d.WindowFullCy != 2 {
		t.Errorf("delta %+v", d)
	}
}

func TestIPCNeverExceedsWidthProperty(t *testing.T) {
	f := func(seed uint64, wExp, widthExp uint8) bool {
		w := 8 << (wExp % 5)         // 8..128
		width := 2 << (widthExp % 3) // 2..8
		c := MustNew(Config{WindowSize: w, IssueWidth: width})
		b, _ := workload.ByName("perl")
		s := workload.NewInstrStream(b, seed)
		st := c.Run(s, 20000)
		return st.IPC() > 0 && st.IPC() <= float64(width)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicExecution(t *testing.T) {
	b, _ := workload.ByName("turb3d")
	run := func() Stats {
		c := MustNew(PaperConfig(64))
		return c.Run(workload.NewInstrStream(b, 42), 50000)
	}
	if run() != run() {
		t.Error("identical runs produced different statistics")
	}
}
