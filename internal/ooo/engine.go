package ooo

import (
	"fmt"
	"sync/atomic"
)

// Engine selects the issue-queue simulation algorithm. Both engines produce
// bit-identical Stats for any instruction stream and any schedule of Run,
// RunWithLoads, Drain and Resize calls; they differ only in cost:
//
//   - EngineEvent: event-driven wakeup + ordered select. Per issued
//     instruction O(log W); per idle cycle O(1).
//   - EngineScan: the direct priority-encoder model. Per cycle O(W)
//     regardless of activity.
//
// cmd/capsim exposes the choice as -queue-engine for A/B verification and
// benchmarking (renders are byte-identical across the settings).
type Engine uint8

const (
	// EngineEvent is the event-driven wakeup/select engine (default).
	EngineEvent Engine = iota
	// EngineScan is the per-cycle window-scan engine, kept as the
	// executable specification the event engine is verified against.
	EngineScan
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineEvent:
		return "event"
	case EngineScan:
		return "scan"
	default:
		return fmt.Sprintf("engine(%d)", uint8(e))
	}
}

// ParseEngine maps the -queue-engine flag values to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "event":
		return EngineEvent, nil
	case "scan":
		return EngineScan, nil
	default:
		return 0, fmt.Errorf("ooo: unknown engine %q (want \"event\" or \"scan\")", s)
	}
}

// defaultEngine is the process-wide engine used by New. The zero value is
// EngineEvent, so the fast path is the default.
var defaultEngine atomic.Uint32

// SetDefaultEngine selects the engine New hands out process-wide
// (cmd/capsim -queue-engine). Cores already constructed are unaffected.
func SetDefaultEngine(e Engine) { defaultEngine.Store(uint32(e)) }

// DefaultEngine reports the engine New currently hands out.
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }
