package ooo

import (
	"strings"
	"testing"

	"capsim/internal/obs"
	"capsim/internal/workload"
)

// runSome drives a small core a few hundred instructions so the invariant
// checks see a realistic mid-flight state.
func runSome(t *testing.T, e Engine) *Core {
	t.Helper()
	c, err := NewWithEngine(PaperConfig(32), e)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	c.Run(workload.NewInstrStream(b, 1), 500)
	return c
}

func TestCheckInvariantsCleanBothEngines(t *testing.T) {
	for _, e := range []Engine{EngineScan, EngineEvent} {
		c := runSome(t, e)
		if err := c.CheckInvariants(); err != nil {
			t.Errorf("engine %v: clean core failed invariants: %v", e, err)
		}
	}
}

// mustTrip asserts that CheckInvariants reports an error containing want.
func mustTrip(t *testing.T, c *Core, want string) {
	t.Helper()
	err := c.CheckInvariants()
	if err == nil {
		t.Fatalf("corruption not detected (want %q)", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestCheckInvariantsTripsIssuedExceedsDispatched(t *testing.T) {
	c := runSome(t, EngineEvent)
	c.stats.Issued = c.stats.Instrs + 1
	mustTrip(t, c, "exceeds dispatched")
}

func TestCheckInvariantsTripsNegativeStat(t *testing.T) {
	c := runSome(t, EngineScan)
	c.stats.Cycles = -1
	mustTrip(t, c, "negative statistic")
}

func TestCheckInvariantsTripsDrainStalls(t *testing.T) {
	c := runSome(t, EngineScan)
	c.stats.DrainStalls = c.stats.Cycles + 1
	mustTrip(t, c, "drain stalls")
}

func TestCheckInvariantsTripsOccupancy(t *testing.T) {
	c := runSome(t, EngineEvent)
	c.ev.occ = c.cfg.WindowSize + 1
	mustTrip(t, c, "occupancy")
}

func TestCheckInvariantsTripsRingShape(t *testing.T) {
	c := runSome(t, EngineScan)
	c.done = c.done[:len(c.done)-1] // no longer a power of two
	mustTrip(t, c, "power of two")

	c = runSome(t, EngineScan)
	c.mask = 7 // inconsistent with the ring length
	mustTrip(t, c, "mask")

	c = runSome(t, EngineScan)
	c.done = make([]int64, 2)
	c.mask = 1 // power of two but far below ringSize(window)
	mustTrip(t, c, "below requirement")
}

func TestCheckInvariantsTripsRingGrowthMonotonicity(t *testing.T) {
	c := runSome(t, EngineEvent)
	c.pubTal.ringGrows = c.tal.ringGrows + 1
	mustTrip(t, c, "backwards")
}

func TestCheckInvariantsTripsSlotLeak(t *testing.T) {
	c := runSome(t, EngineEvent)
	c.ev.free = c.ev.free[:0]
	if len(c.ev.free)+c.ev.occ == len(c.ev.slots) {
		t.Skip("window exactly full; cannot fabricate a leak this way")
	}
	mustTrip(t, c, "slot leak")
}

func TestCheckInvariantsTripsReadyOverflow(t *testing.T) {
	c := runSome(t, EngineEvent)
	for i := 0; i <= c.cfg.WindowSize; i++ {
		c.ev.eligible = append(c.ev.eligible, int64(i))
	}
	mustTrip(t, c, "exceed occupancy")
}

// TestAssertCheckFailsThroughObs verifies the -obs-assert funnel: with the
// switch on, a corrupted core panics via obs.Fail and bumps the failure
// counter; with it off, assertCheck is a no-op.
func TestAssertCheckFailsThroughObs(t *testing.T) {
	c := runSome(t, EngineEvent)
	c.stats.Issued = c.stats.Instrs + 1

	prev := obs.AssertEnabled()
	defer obs.SetAssert(prev)

	obs.SetAssert(false)
	c.assertCheck() // must not panic

	obs.SetAssert(true)
	before := obs.AssertFailures()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("assertCheck did not panic with -obs-assert on")
			}
		}()
		c.assertCheck()
	}()
	if got := obs.AssertFailures(); got != before+1 {
		t.Fatalf("assert failure counter %d, want %d", got, before+1)
	}
}

// TestPublishObsDeltas verifies PublishObs ships deltas, not totals: two
// consecutive publishes after one run must add the run's stats exactly once.
func TestPublishObsDeltas(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	base := obsIssued.Value()
	c := runSome(t, EngineEvent)
	c.PublishObs()
	c.PublishObs() // second publish: zero delta
	if got, want := obsIssued.Value()-base, c.stats.Issued; got != want {
		t.Fatalf("published issued delta %d, want %d", got, want)
	}
	if obsWakeups.Value() == 0 {
		t.Fatal("event engine published no wakeups")
	}
}
