package ooo

import (
	"fmt"

	"capsim/internal/obs"
)

// CheckInvariants verifies the core's structural invariants and returns the
// first violation found, or nil. It is pure read-only and engine-aware.
//
// The checks cover the simulator's accounting identities (issued never
// exceeds dispatched, no negative statistics), the window (occupancy within
// [0, WindowSize]), the completion ring (power-of-two length, never below
// the configured window's requirement, growth strictly monotone — growRing
// only ever enlarges), and, for the event engine, slot conservation
// (free + occupied == slab) and the ready-structure population bound
// (eligible + calendar + far heap entries never exceed occupancy).
func (c *Core) CheckInvariants() error {
	s := c.stats
	if s.Issued > s.Instrs {
		return fmt.Errorf("ooo: issued %d exceeds dispatched %d", s.Issued, s.Instrs)
	}
	if s.Cycles < 0 || s.Instrs < 0 || s.Issued < 0 || s.DrainStalls < 0 || s.WindowFullCy < 0 {
		return fmt.Errorf("ooo: negative statistic in %+v", s)
	}
	if s.DrainStalls > s.Cycles {
		return fmt.Errorf("ooo: drain stalls %d exceed cycles %d", s.DrainStalls, s.Cycles)
	}
	if occ := c.Occupancy(); occ < 0 || occ > c.cfg.WindowSize {
		return fmt.Errorf("ooo: occupancy %d outside [0,%d]", occ, c.cfg.WindowSize)
	}
	n := len(c.done)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("ooo: completion ring length %d not a power of two", n)
	}
	if c.mask != int64(n-1) {
		return fmt.Errorf("ooo: ring mask %#x inconsistent with length %d", c.mask, n)
	}
	if need := ringSize(c.cfg.WindowSize); n < need {
		return fmt.Errorf("ooo: ring length %d below requirement %d for window %d", n, need, c.cfg.WindowSize)
	}
	if c.tal.ringGrows < c.pubTal.ringGrows {
		return fmt.Errorf("ooo: ring growth count moved backwards (%d < %d)", c.tal.ringGrows, c.pubTal.ringGrows)
	}
	if c.engine == EngineEvent {
		ev := &c.ev
		if len(ev.free)+ev.occ != len(ev.slots) {
			return fmt.Errorf("ooo: slot leak: free %d + occupied %d != slab %d", len(ev.free), ev.occ, len(ev.slots))
		}
		ready := len(ev.eligible) + len(ev.far)
		for b := range ev.near {
			ready += len(ev.near[b])
		}
		if ready > ev.occ {
			return fmt.Errorf("ooo: %d ready-structure entries exceed occupancy %d", ready, ev.occ)
		}
	}
	return nil
}

// assertCheck runs CheckInvariants when -obs-assert is active, funnelling any
// violation through obs.Fail (which counts it and panics). Called at coarse
// boundaries — after a Run and around Resize — so the O(window) scan never
// sits on a per-cycle path.
func (c *Core) assertCheck() {
	if !obs.AssertEnabled() {
		return
	}
	if err := c.CheckInvariants(); err != nil {
		obs.Fail(err)
	}
}
