// Package ooo implements the out-of-order issue-queue simulator used for the
// paper's complexity-adaptive instruction queue experiment (Section 5.3).
//
// Following the paper's methodology, the machine model is deliberately
// idealized everywhere except the queue itself: an 8-way fetch/dispatch
// front end with perfect branch prediction, perfect caches, and plentiful
// functional units. IPC is then determined solely by how much of the
// instruction stream's dependence structure the window can expose — which is
// exactly the quantity that trades against the queue's wakeup+select cycle
// time.
//
// The queue is a RAM/CAM structure: dispatched instructions wait in the
// window until their source operands complete (wakeup), ready instructions
// issue oldest-first up to the issue width (select, a tree of priority
// encoders), and entries are freed at issue. Shrinking the queue requires
// draining the entries being disabled (paper Section 5.1); Drain models
// that.
//
// Two issue engines implement those semantics (see engine.go):
//
//   - EngineScan is the direct model: every cycle re-scans the whole window
//     oldest-first, waking and selecting in one pass. Cost O(cycles · W).
//   - EngineEvent (the default) is the event-driven equivalent: per-producer
//     consumer lists fire wakeups the moment a producer's completion cycle
//     becomes known, feeding a ready structure ordered so select pops
//     oldest-first. Cost O(instructions · log W) — proportional to work
//     issued, not cycles × window. See event.go for the invariants that make
//     it bit-identical to the scan.
package ooo

import (
	"fmt"

	"capsim/internal/workload"
)

// Config describes the simulated machine.
type Config struct {
	// WindowSize is the number of instruction-queue entries.
	WindowSize int
	// IssueWidth is the maximum instructions issued per cycle (and the
	// dispatch width; the paper models an 8-way machine).
	IssueWidth int
}

// PaperConfig returns the paper's 8-way machine with the given window.
func PaperConfig(window int) Config { return Config{WindowSize: window, IssueWidth: 8} }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.WindowSize < 1 {
		return fmt.Errorf("ooo: window size %d must be >= 1", c.WindowSize)
	}
	if c.IssueWidth < 1 {
		return fmt.Errorf("ooo: issue width %d must be >= 1", c.IssueWidth)
	}
	return nil
}

// maxDist caps usable dependence distances; producers further away are
// treated as retired (their results are trivially available). The paper's
// window sizes top out at 128 entries and every workload profile draws
// dependence distances from geometric mixtures with means below ~30, so a
// 2048-instruction horizon is unreachable in practice (P ≈ e^-68 per
// instruction for the largest mean); and any producer ≥ maxDist dispatches
// old has long completed (in-flight age is bounded by the window plus
// IssueWidth × the maximum completion latency, far below maxDist), so its
// contribution to a consumer's readiness is already in the past and
// classification as "retired" cannot change issue timing.
const maxDist = 1 << 11

// ringSlack is the extra completion-ring headroom beyond WindowSize+maxDist:
// a producer's ring slot must survive until no live consumer can inspect it,
// i.e. for up to maxDist+WindowSize dispatches plus the instructions that can
// dispatch past a still-waiting consumer. The slack covers every realistic
// schedule; pathological ones (enormous RunWithLoads latencies) are caught by
// the recycle guard in dispatch, which grows the ring rather than reuse a
// slot whose instruction has not yet completed.
const ringSlack = 1 << 11

// ringSize returns the completion-ring capacity for a window: the smallest
// power of two covering the window, the tracked dependence horizon and the
// in-flight slack. For the paper's 16–128-entry windows this is 8192 slots
// (64 KB) — 8× smaller than the fixed 512 KB ring it replaces, which matters
// when profiling fans dozens of cores out across sweep workers.
func ringSize(window int) int {
	need := window + maxDist + ringSlack
	r := 1
	for r < need {
		r <<= 1
	}
	return r
}

// pending marks a dispatched-but-not-yet-issued producer in the ring.
const pending = int64(1) << 62

// entry is one occupied window slot (scan engine).
type entry struct {
	seq   int64 // dynamic instruction number (issue priority: oldest first)
	src0  int64 // producer seq, or -1
	src1  int64 // producer seq, or -1
	ready int64 // resolved readiness cycle, or -1 while a source is pending
	lat   int64
}

// Core is the simulator state.
type Core struct {
	cfg    Config
	engine Engine
	cycle  int64
	seq    int64 // next dynamic instruction number to dispatch

	// window is kept in dispatch order (oldest first); the scan engine's
	// select logic walks it in order, matching an oldest-first priority
	// encoder tree. Unused by the event engine.
	window []entry

	// done[seq & mask] is the cycle the instruction's result is available,
	// or `pending` while it sits unissued in the window. The ring is a
	// power of two sized by ringSize for the configured window (it grows,
	// never shrinks, across Resize).
	done []int64
	mask int64

	// ev is the event engine's state (event.go); zero-valued when the scan
	// engine is active.
	ev eventState

	// Load attachment (RunWithLoads): every 1/loadRPI-th dispatched
	// instruction becomes a memory operation whose extra latency is
	// drawn from memLat. Zero-valued = disabled (perfect caches).
	//
	// loadAcc is the fractional-load accumulator. It deliberately
	// persists across RunWithLoads calls: the CombinedMachine runs in
	// intervals, and the deterministic refs-per-instruction spacing must
	// continue across interval boundaries rather than restart (the
	// accumulator carrying, say, 0.7 into the next interval makes its
	// first load arrive one instruction earlier, exactly as if the run
	// had not been split). TestRunWithLoadsCarryOver pins this.
	loadRPI float64
	loadAcc float64
	memLat  func(write bool) int64

	stats Stats

	// Telemetry tallies and publish baselines (obs.go): plain unconditional
	// increments on already-branchy paths, shipped as deltas by PublishObs.
	tal      tallies
	pubStats Stats
	pubTal   tallies
}

// Stats accumulates execution statistics.
type Stats struct {
	Cycles       int64
	Instrs       int64 // dispatched
	Issued       int64
	DrainStalls  int64 // cycles spent draining for downsizing
	WindowFullCy int64 // cycles in which dispatch was blocked by a full window
}

// IPC returns issued instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Issued) / float64(s.Cycles)
}

// Sub returns s - o, the statistics delta between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Cycles:       s.Cycles - o.Cycles,
		Instrs:       s.Instrs - o.Instrs,
		Issued:       s.Issued - o.Issued,
		DrainStalls:  s.DrainStalls - o.DrainStalls,
		WindowFullCy: s.WindowFullCy - o.WindowFullCy,
	}
}

// New creates a core using the process-default issue engine (see
// SetDefaultEngine; EngineEvent unless overridden).
func New(cfg Config) (*Core, error) { return NewWithEngine(cfg, DefaultEngine()) }

// NewWithEngine creates a core with an explicit issue engine. Both engines
// are bit-identical in every statistic; they differ only in asymptotic cost
// (the differential and fuzz tests in this package enforce the equivalence).
func NewWithEngine(cfg Config, e Engine) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.WindowSize >= maxDist {
		return nil, fmt.Errorf("ooo: window size %d exceeds supported maximum %d", cfg.WindowSize, maxDist-1)
	}
	r := ringSize(cfg.WindowSize)
	c := &Core{
		cfg:    cfg,
		engine: e,
		done:   make([]int64, r),
		mask:   int64(r - 1),
	}
	if e == EngineEvent {
		c.ev.init(cfg.WindowSize, r)
	} else {
		c.window = make([]entry, 0, cfg.WindowSize)
	}
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Core {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Engine returns the issue engine the core runs on.
func (c *Core) Engine() Engine { return c.engine }

// Stats returns accumulated statistics.
func (c *Core) Stats() Stats { return c.stats }

// ResetStats zeroes counters without touching pipeline state (used to
// discard warm-up and to delimit measurement intervals).
func (c *Core) ResetStats() { c.stats, c.pubStats = Stats{}, Stats{} }

// Occupancy returns the current number of window entries in use.
func (c *Core) Occupancy() int {
	if c.engine == EngineEvent {
		return c.ev.occ
	}
	return len(c.window)
}

// Run simulates until n more instructions have been issued, pulling from the
// stream as needed, and returns the statistics delta for this run. Issued
// instructions are the paper's measurement unit (TPI over a fixed
// instruction count).
func (c *Core) Run(stream workload.InstrSource, n int64) Stats {
	before := c.stats
	target := c.stats.Issued + n
	for c.stats.Issued < target {
		c.Step(stream)
	}
	c.assertCheck()
	return c.stats.Sub(before)
}

// RunWithLoads is Run with the perfect-cache assumption removed: a
// deterministic rpi fraction of dispatched instructions become memory
// operations whose extra completion latency is supplied by memLat (cycles
// beyond a pipelined L1 hit). The CombinedMachine uses this to couple the
// adaptive queue to the live adaptive cache hierarchy.
//
// The fractional-load accumulator carries over between successive calls (see
// the loadAcc field): splitting a run into intervals yields the identical
// load placement — and therefore identical memLat call sequence and
// statistics — as one unbroken run.
func (c *Core) RunWithLoads(stream workload.InstrSource, n int64, rpi float64, memLat func(write bool) int64) Stats {
	c.attachLoads(rpi, memLat)
	defer c.detachLoads()
	return c.Run(stream, n)
}

// attachLoads enables the deterministic load attachment for subsequent Step
// calls: every 1/rpi-th dispatched instruction draws extra latency from
// memLat. The fractional accumulator is deliberately left untouched so
// interval splits preserve load placement (see loadAcc). MultiCore attaches
// per-core closures around its shared-stream rounds.
func (c *Core) attachLoads(rpi float64, memLat func(write bool) int64) {
	if rpi < 0 {
		rpi = 0
	}
	if rpi > 1 {
		rpi = 1
	}
	c.loadRPI, c.memLat = rpi, memLat
}

// detachLoads restores the perfect-cache assumption (accumulator preserved).
func (c *Core) detachLoads() { c.loadRPI, c.memLat = 0, nil }

// Step advances the machine by one cycle: dispatch up to IssueWidth new
// instructions into free window slots, then wake up and select up to
// IssueWidth ready instructions to issue.
func (c *Core) Step(stream workload.InstrSource) {
	c.cycle++
	c.stats.Cycles++

	// Dispatch. The front end is perfect, so it always has instructions.
	free := c.cfg.WindowSize - c.Occupancy()
	dispatch := c.cfg.IssueWidth
	if dispatch > free {
		dispatch = free
		if free == 0 {
			c.stats.WindowFullCy++
		}
	}
	if c.engine == EngineEvent {
		if dispatch == 0 {
			// Full window: nothing reads the stream this cycle, so when
			// nothing is due either, the machine is mid-stall and the
			// event structures name the next cycle anything happens.
			// Fast-forward straight to it; every skipped cycle would have
			// been another dispatch-blocked no-op (bit-identical stats).
			d := c.idleSkip()
			c.stats.Cycles += d
			c.stats.WindowFullCy += d
		}
		c.dispatchEvent(stream, dispatch)
		c.issueCycleEvent()
	} else {
		c.dispatchScan(stream, dispatch)
		c.issueCycle()
	}
}

// instrLat returns the instruction's completion latency, applying the
// deterministic load attachment when enabled. Called once per dispatched
// instruction in dispatch order by both engines, so the memLat call sequence
// — and any external state it advances (the combined machine's cache
// hierarchy) — is engine-independent.
func (c *Core) instrLat(in workload.Instr) int64 {
	lat := int64(in.Latency)
	if c.loadRPI > 0 {
		c.loadAcc += c.loadRPI
		if c.loadAcc >= 1 {
			c.loadAcc--
			// Memory operation: the hierarchy's stall cycles extend
			// the consumer-visible latency.
			lat += c.memLat(false)
		}
	}
	return lat
}

// recycleGuard grows the completion ring if the slot about to be claimed for
// c.seq still belongs to an instruction that is pending or completes in the
// future (value > current cycle; `pending` is a huge constant, so one compare
// covers both). This is the invariant that makes lookupDone's recycling rule
// exact rather than approximate: a recycled slot always describes an
// instruction whose result was available at or before the current cycle, and
// treating such a producer as retired-with-result-at-0 cannot change any
// `ready <= cycle` issue decision. In practice the guard never fires — it
// takes ring-size dispatches to lap a slot, which at 8-wide dispatch leaves
// ~1000 cycles for the instruction to complete — but it makes the shrunken
// ring safe against arbitrary RunWithLoads latencies by construction.
func (c *Core) recycleGuard() {
	for c.done[c.seq&c.mask] > c.cycle {
		c.growRing(2 * len(c.done))
	}
}

// dispatchScan dispatches n instructions into the scan engine's window.
func (c *Core) dispatchScan(stream workload.InstrSource, n int) {
	for i := 0; i < n; i++ {
		in := stream.Next()
		c.recycleGuard()
		seq := c.seq
		c.seq++
		c.stats.Instrs++
		e := entry{seq: seq, src0: -1, src1: -1, lat: c.instrLat(in)}
		e.src0 = c.producer(seq, in.Src[0])
		e.src1 = c.producer(seq, in.Src[1])
		e.ready = -1
		c.done[seq&c.mask] = pending
		c.window = append(c.window, e)
	}
}

// producer maps a dependence distance to a producer seq, or -1 when the
// producer is retired (distance 0, beyond the tracked horizon, or before
// program start).
func (c *Core) producer(seq int64, dist int32) int64 {
	if dist <= 0 || int64(dist) >= maxDist {
		return -1
	}
	p := seq - int64(dist)
	if p < 0 {
		return -1
	}
	return p
}

// lookupDone returns a producer's completion cycle and whether it is still
// pending. A producer whose ring slot has been recycled (p+len(done) ≤ seq,
// i.e. at least a full ring of instructions dispatched after it) is treated
// as long retired with its result trivially available. recycleGuard makes
// this exact: a slot is only ever recycled once its instruction's completion
// cycle is in the past, and a completion at or before the reader's current
// cycle is behaviorally identical to 0 (readiness is only ever compared via
// ready <= cycle at cycles from the reader's dispatch onward).
func (c *Core) lookupDone(p int64) (int64, bool) {
	if p+int64(len(c.done)) <= c.seq {
		return 0, false
	}
	t := c.done[p&c.mask]
	if t == pending {
		return 0, true
	}
	return t, false
}

// issueCycle performs one wakeup+select pass at the current cycle (scan
// engine): the window is re-scanned oldest first, resolving readiness and
// issuing up to IssueWidth ready entries in one pass.
func (c *Core) issueCycle() {
	issued := 0
	w := c.window[:0]
	for i := range c.window {
		e := c.window[i]
		if e.ready < 0 {
			e.ready = c.resolve(&e)
		}
		if e.ready >= 0 && e.ready <= c.cycle && issued < c.cfg.IssueWidth {
			c.done[e.seq&c.mask] = c.cycle + e.lat
			c.stats.Issued++
			issued++
			continue
		}
		w = append(w, e)
	}
	c.window = w
}

// resolve attempts to compute the entry's readiness cycle; it returns -1
// while any producer is still unissued. Because the window is scanned oldest
// first, a producer issuing this cycle is visible to its consumers in the
// same pass, enabling back-to-back issue of single-cycle dependent pairs.
func (c *Core) resolve(e *entry) int64 {
	ready := int64(0)
	if e.src0 >= 0 {
		t, pend := c.lookupDone(e.src0)
		if pend {
			return -1
		}
		if t > ready {
			ready = t
		}
	}
	if e.src1 >= 0 {
		t, pend := c.lookupDone(e.src1)
		if pend {
			return -1
		}
		if t > ready {
			ready = t
		}
	}
	return ready
}

// Drain forces the core to issue (without dispatching) until the window
// occupancy is at most max, modelling the cleanup required before disabling
// queue entries when downsizing (paper Sections 4.2 and 5.1). The stall
// cycles are recorded in DrainStalls. Entries whose operands are not yet
// ready simply wait; plentiful functional units guarantee forward progress.
func (c *Core) Drain(max int) {
	if max < 0 {
		max = 0
	}
	for c.Occupancy() > max {
		c.cycle++
		c.stats.Cycles++
		c.stats.DrainStalls++
		if c.engine == EngineEvent {
			// Draining never dispatches, so stall gaps fast-forward the
			// same way Step's full-window path does.
			d := c.idleSkip()
			c.stats.Cycles += d
			c.stats.DrainStalls += d
			c.issueCycleEvent()
		} else {
			c.issueCycle()
		}
	}
}

// Resize changes the window size, draining first when shrinking. Growing is
// immediate (newly enabled entries start empty). Returns an error for
// non-positive or unsupported sizes.
//
// All capacity — the scan window's backing slice, the event engine's slab,
// heaps and free list, and the completion ring — is reserved here, up front,
// so the per-cycle dispatch and issue paths run allocation-free afterwards.
func (c *Core) Resize(newSize int) error {
	if newSize < 1 || newSize >= maxDist {
		return fmt.Errorf("ooo: window size %d out of range", newSize)
	}
	c.tal.resizes++
	if newSize < c.Occupancy() {
		c.Drain(newSize)
	}
	if need := ringSize(newSize); need > len(c.done) {
		c.growRing(need)
	}
	if c.engine == EngineEvent {
		c.ev.grow(newSize)
	} else if newSize > cap(c.window) {
		w := make([]entry, len(c.window), newSize)
		copy(w, c.window)
		c.window = w
	}
	c.cfg.WindowSize = newSize
	c.assertCheck()
	return nil
}

// growRing rehomes the completion ring (and the event engine's parallel
// slot-index ring) into a larger power-of-two array, preserving the slots of
// every sequence number the old ring still covered. Slots older than the old
// ring's span land zeroed, which lookupDone's recycling rule already treats
// as retired-with-result-available.
func (c *Core) growRing(need int) {
	c.tal.ringGrows++
	old, oldMask := c.done, c.mask
	c.done = make([]int64, need)
	c.mask = int64(need - 1)
	lo := c.seq - int64(len(old))
	if lo < 0 {
		lo = 0
	}
	for s := lo; s < c.seq; s++ {
		c.done[s&c.mask] = old[s&oldMask]
	}
	if c.engine == EngineEvent {
		oldSlot := c.ev.slotOf
		c.ev.slotOf = make([]int32, need)
		for s := lo; s < c.seq; s++ {
			c.ev.slotOf[s&c.mask] = oldSlot[s&oldMask]
		}
	}
}
