// Package ooo implements the out-of-order issue-queue simulator used for the
// paper's complexity-adaptive instruction queue experiment (Section 5.3).
//
// Following the paper's methodology, the machine model is deliberately
// idealized everywhere except the queue itself: an 8-way fetch/dispatch
// front end with perfect branch prediction, perfect caches, and plentiful
// functional units. IPC is then determined solely by how much of the
// instruction stream's dependence structure the window can expose — which is
// exactly the quantity that trades against the queue's wakeup+select cycle
// time.
//
// The queue is a RAM/CAM structure: dispatched instructions wait in the
// window until their source operands complete (wakeup), ready instructions
// issue oldest-first up to the issue width (select, a tree of priority
// encoders), and entries are freed at issue. Shrinking the queue requires
// draining the entries being disabled (paper Section 5.1); Drain models
// that.
package ooo

import (
	"fmt"

	"capsim/internal/workload"
)

// Config describes the simulated machine.
type Config struct {
	// WindowSize is the number of instruction-queue entries.
	WindowSize int
	// IssueWidth is the maximum instructions issued per cycle (and the
	// dispatch width; the paper models an 8-way machine).
	IssueWidth int
}

// PaperConfig returns the paper's 8-way machine with the given window.
func PaperConfig(window int) Config { return Config{WindowSize: window, IssueWidth: 8} }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.WindowSize < 1 {
		return fmt.Errorf("ooo: window size %d must be >= 1", c.WindowSize)
	}
	if c.IssueWidth < 1 {
		return fmt.Errorf("ooo: issue width %d must be >= 1", c.IssueWidth)
	}
	return nil
}

// ringSize is the completion-time ring capacity. It must comfortably exceed
// the window size plus the largest dependence distance so that a slot is
// never reused while a consumer might still inspect it.
const ringSize = 1 << 16

// maxDist caps usable dependence distances; producers further away are
// treated as retired (their results are trivially available).
const maxDist = ringSize / 2

// pending marks a dispatched-but-not-yet-issued producer in the ring.
const pending = int64(1) << 62

// entry is one occupied window slot.
type entry struct {
	seq   int64 // dynamic instruction number (issue priority: oldest first)
	src0  int64 // producer seq, or -1
	src1  int64 // producer seq, or -1
	ready int64 // resolved readiness cycle, or -1 while a source is pending
	lat   int64
}

// Core is the simulator state.
type Core struct {
	cfg   Config
	cycle int64
	seq   int64 // next dynamic instruction number to dispatch

	// window is kept in dispatch order (oldest first); the select logic
	// scans it in order, matching an oldest-first priority encoder tree.
	window []entry

	// done[seq % ringSize] is the cycle the instruction's result is
	// available, or `pending` while it sits unissued in the window.
	done [ringSize]int64

	// Load attachment (RunWithLoads): every 1/loadRPI-th dispatched
	// instruction becomes a memory operation whose extra latency is
	// drawn from memLat. Zero-valued = disabled (perfect caches).
	loadRPI float64
	loadAcc float64
	memLat  func(write bool) int64

	stats Stats
}

// Stats accumulates execution statistics.
type Stats struct {
	Cycles       int64
	Instrs       int64 // dispatched
	Issued       int64
	DrainStalls  int64 // cycles spent draining for downsizing
	WindowFullCy int64 // cycles in which dispatch was blocked by a full window
}

// IPC returns issued instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Issued) / float64(s.Cycles)
}

// Sub returns s - o, the statistics delta between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Cycles:       s.Cycles - o.Cycles,
		Instrs:       s.Instrs - o.Instrs,
		Issued:       s.Issued - o.Issued,
		DrainStalls:  s.DrainStalls - o.DrainStalls,
		WindowFullCy: s.WindowFullCy - o.WindowFullCy,
	}
}

// New creates a core.
func New(cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.WindowSize >= maxDist {
		return nil, fmt.Errorf("ooo: window size %d exceeds supported maximum %d", cfg.WindowSize, maxDist-1)
	}
	return &Core{
		cfg:    cfg,
		window: make([]entry, 0, cfg.WindowSize),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Core {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Stats returns accumulated statistics.
func (c *Core) Stats() Stats { return c.stats }

// ResetStats zeroes counters without touching pipeline state (used to
// discard warm-up and to delimit measurement intervals).
func (c *Core) ResetStats() { c.stats = Stats{} }

// Occupancy returns the current number of window entries in use.
func (c *Core) Occupancy() int { return len(c.window) }

// Run simulates until n more instructions have been issued, pulling from the
// stream as needed, and returns the statistics delta for this run. Issued
// instructions are the paper's measurement unit (TPI over a fixed
// instruction count).
func (c *Core) Run(stream workload.InstrSource, n int64) Stats {
	before := c.stats
	target := c.stats.Issued + n
	for c.stats.Issued < target {
		c.Step(stream)
	}
	return c.stats.Sub(before)
}

// RunWithLoads is Run with the perfect-cache assumption removed: a
// deterministic rpi fraction of dispatched instructions become memory
// operations whose extra completion latency is supplied by memLat (cycles
// beyond a pipelined L1 hit). The CombinedMachine uses this to couple the
// adaptive queue to the live adaptive cache hierarchy.
func (c *Core) RunWithLoads(stream workload.InstrSource, n int64, rpi float64, memLat func(write bool) int64) Stats {
	if rpi < 0 {
		rpi = 0
	}
	if rpi > 1 {
		rpi = 1
	}
	c.loadRPI, c.memLat = rpi, memLat
	defer func() { c.loadRPI, c.memLat = 0, nil }()
	return c.Run(stream, n)
}

// Step advances the machine by one cycle: dispatch up to IssueWidth new
// instructions into free window slots, then wake up and select up to
// IssueWidth ready instructions to issue.
func (c *Core) Step(stream workload.InstrSource) {
	c.cycle++
	c.stats.Cycles++

	// Dispatch. The front end is perfect, so it always has instructions.
	free := c.cfg.WindowSize - len(c.window)
	dispatch := c.cfg.IssueWidth
	if dispatch > free {
		dispatch = free
		if free == 0 {
			c.stats.WindowFullCy++
		}
	}
	for i := 0; i < dispatch; i++ {
		in := stream.Next()
		seq := c.seq
		c.seq++
		c.stats.Instrs++
		e := entry{seq: seq, src0: -1, src1: -1, lat: int64(in.Latency)}
		if c.loadRPI > 0 {
			c.loadAcc += c.loadRPI
			if c.loadAcc >= 1 {
				c.loadAcc--
				// Memory operation: the hierarchy's stall cycles
				// extend the consumer-visible latency.
				e.lat += c.memLat(false)
			}
		}
		e.src0 = c.producer(seq, in.Src[0])
		e.src1 = c.producer(seq, in.Src[1])
		e.ready = -1
		c.done[seq%ringSize] = pending
		c.window = append(c.window, e)
	}

	c.issueCycle()
}

// producer maps a dependence distance to a producer seq, or -1 when the
// producer is retired (distance 0, out of range, or before program start).
func (c *Core) producer(seq int64, dist int32) int64 {
	if dist <= 0 || int64(dist) >= maxDist {
		return -1
	}
	p := seq - int64(dist)
	if p < 0 {
		return -1
	}
	return p
}

// issueCycle performs one wakeup+select pass at the current cycle.
func (c *Core) issueCycle() {
	issued := 0
	w := c.window[:0]
	for i := range c.window {
		e := c.window[i]
		if e.ready < 0 {
			e.ready = c.resolve(&e)
		}
		if e.ready >= 0 && e.ready <= c.cycle && issued < c.cfg.IssueWidth {
			c.done[e.seq%ringSize] = c.cycle + e.lat
			c.stats.Issued++
			issued++
			continue
		}
		w = append(w, e)
	}
	c.window = w
}

// resolve attempts to compute the entry's readiness cycle; it returns -1
// while any producer is still unissued. Because the window is scanned oldest
// first, a producer issuing this cycle is visible to its consumers in the
// same pass, enabling back-to-back issue of single-cycle dependent pairs.
func (c *Core) resolve(e *entry) int64 {
	ready := int64(0)
	if e.src0 >= 0 {
		t := c.done[e.src0%ringSize]
		if t == pending {
			return -1
		}
		if t > ready {
			ready = t
		}
	}
	if e.src1 >= 0 {
		t := c.done[e.src1%ringSize]
		if t == pending {
			return -1
		}
		if t > ready {
			ready = t
		}
	}
	return ready
}

// Drain forces the core to issue (without dispatching) until the window
// occupancy is at most max, modelling the cleanup required before disabling
// queue entries when downsizing (paper Sections 4.2 and 5.1). The stall
// cycles are recorded in DrainStalls. Entries whose operands are not yet
// ready simply wait; plentiful functional units guarantee forward progress.
func (c *Core) Drain(max int) {
	if max < 0 {
		max = 0
	}
	for len(c.window) > max {
		c.cycle++
		c.stats.Cycles++
		c.stats.DrainStalls++
		c.issueCycle()
	}
}

// Resize changes the window size, draining first when shrinking. Growing is
// immediate (newly enabled entries start empty). Returns an error for
// non-positive or unsupported sizes.
//
// The backing slice's capacity is reserved for the new size up front: the
// dispatch loop appends up to WindowSize entries per cycle, and without the
// reservation a grow (16 -> 128 entries, say) would regrow the slice
// incrementally inside the per-cycle hot loop. After the one-time
// reservation here, dispatch and issueCycle (which filters in place via
// c.window[:0]) run allocation-free.
func (c *Core) Resize(newSize int) error {
	if newSize < 1 || newSize >= maxDist {
		return fmt.Errorf("ooo: window size %d out of range", newSize)
	}
	if newSize < len(c.window) {
		c.Drain(newSize)
	}
	if newSize > cap(c.window) {
		w := make([]entry, len(c.window), newSize)
		copy(w, c.window)
		c.window = w
	}
	c.cfg.WindowSize = newSize
	return nil
}
