package ooo

import (
	"testing"

	"capsim/internal/workload"
)

// The tests in this file enforce the package's central claim: EngineEvent and
// EngineScan are bit-identical in every statistic for any instruction stream
// and any schedule of Run, RunWithLoads, Drain and Resize calls.

func TestParseEngine(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Engine
	}{{"event", EngineEvent}, {"scan", EngineScan}} {
		got, err := ParseEngine(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseEngine(%q) = %v, %v", c.in, got, err)
		}
		if got.String() != c.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), c.in)
		}
	}
	if _, err := ParseEngine("calendar"); err == nil {
		t.Error("ParseEngine accepted an unknown engine")
	}
}

func TestDefaultEngineSwitch(t *testing.T) {
	prev := DefaultEngine()
	defer SetDefaultEngine(prev)
	SetDefaultEngine(EngineScan)
	if c := MustNew(PaperConfig(16)); c.Engine() != EngineScan {
		t.Errorf("New under scan default built %v", c.Engine())
	}
	SetDefaultEngine(EngineEvent)
	if c := MustNew(PaperConfig(16)); c.Engine() != EngineEvent {
		t.Errorf("New under event default built %v", c.Engine())
	}
}

// lcg is a deterministic latency generator for RunWithLoads differential
// runs: both engines get an independent copy seeded identically, so the
// sequences match exactly as long as the call counts do (which is itself
// part of the equivalence being tested).
type lcg struct{ x uint64 }

func (l *lcg) next() uint64 {
	l.x = l.x*6364136223846793005 + 1442695040888963407
	return l.x >> 33
}

func (l *lcg) memLat(bool) int64 { return int64(l.next() % 60) }

// enginePair drives a scan core and an event core through the same schedule,
// checking Stats and Occupancy equality after every operation.
type enginePair struct {
	t        *testing.T
	scan, ev *Core
}

func newEnginePair(t *testing.T, cfg Config) *enginePair {
	t.Helper()
	sc, err := NewWithEngine(cfg, EngineScan)
	if err != nil {
		t.Fatal(err)
	}
	evc, err := NewWithEngine(cfg, EngineEvent)
	if err != nil {
		t.Fatal(err)
	}
	return &enginePair{t: t, scan: sc, ev: evc}
}

func (p *enginePair) step(name string, f func(c *Core)) {
	p.t.Helper()
	f(p.scan)
	f(p.ev)
	if a, b := p.scan.Stats(), p.ev.Stats(); a != b {
		p.t.Fatalf("%s: scan stats %+v != event stats %+v", name, a, b)
	}
	if a, b := p.scan.Occupancy(), p.ev.Occupancy(); a != b {
		p.t.Fatalf("%s: scan occupancy %d != event occupancy %d", name, a, b)
	}
}

func TestEngineDifferentialRun(t *testing.T) {
	for _, b := range []string{"gcc", "swim", "compress"} {
		bench, err := workload.ByName(b)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 4, 16, 61, 128} {
			p := newEnginePair(t, Config{WindowSize: w, IssueWidth: 8})
			ss := workload.NewInstrStream(bench, 11)
			es := workload.NewInstrStream(bench, 11)
			for i := 0; i < 5; i++ {
				p.step("run", func(c *Core) {
					s := ss
					if c.Engine() == EngineEvent {
						s = es
					}
					c.Run(s, 4000)
				})
			}
		}
	}
}

func TestEngineDifferentialSchedule(t *testing.T) {
	// Runs interleaved with drains and resizes in both directions, plus
	// RunWithLoads intervals: the full schedule surface the queue machines
	// exercise.
	bench, err := workload.ByName("turb3d")
	if err != nil {
		t.Fatal(err)
	}
	p := newEnginePair(t, PaperConfig(64))
	ss := workload.NewInstrStream(bench, 7)
	es := workload.NewInstrStream(bench, 7)
	sl := &lcg{x: 99}
	el := &lcg{x: 99}
	pick := func(c *Core, a, b interface{}) interface{} {
		if c.Engine() == EngineEvent {
			return b
		}
		return a
	}
	run := func(n int64) {
		p.step("run", func(c *Core) {
			c.Run(pick(c, ss, es).(*workload.InstrStream), n)
		})
	}
	loads := func(n int64, rpi float64) {
		p.step("loads", func(c *Core) {
			c.RunWithLoads(pick(c, ss, es).(*workload.InstrStream), n, rpi, pick(c, sl, el).(*lcg).memLat)
		})
	}
	run(3000)
	p.step("drain", func(c *Core) { c.Drain(10) })
	run(500)
	p.step("shrink", func(c *Core) {
		if err := c.Resize(16); err != nil {
			t.Fatal(err)
		}
	})
	run(2000)
	loads(2500, 0.31)
	p.step("grow", func(c *Core) {
		if err := c.Resize(128); err != nil {
			t.Fatal(err)
		}
	})
	loads(2500, 0.87)
	p.step("drain0", func(c *Core) { c.Drain(0) })
	run(4000)
	p.step("shrink2", func(c *Core) {
		if err := c.Resize(48); err != nil {
			t.Fatal(err)
		}
	})
	run(3000)
	if sl.x != el.x {
		t.Fatalf("memLat generators diverged: %d calls vs %d-state mismatch", sl.x, el.x)
	}
}

// fuzzSource synthesizes adversarial instruction streams directly, without a
// workload profile: dependence distances occasionally exceed maxDist (so the
// retirement horizon is exercised) and latencies include zero.
type fuzzSource struct{ l lcg }

func (f *fuzzSource) Next() workload.Instr {
	var in workload.Instr
	r := f.l.next()
	switch r % 8 {
	case 0: // no sources
	case 1: // one long-distance source, sometimes beyond maxDist
		in.Src[0] = int32(1 + (r>>8)%(3*maxDist))
	default:
		in.Src[0] = int32((r >> 8) % 48)
		in.Src[1] = int32((r >> 16) % 48)
	}
	in.Latency = int8((r >> 24) % 21) // 0..20
	return in
}

func FuzzOooEngines(f *testing.F) {
	f.Add(uint64(1), []byte{0, 10, 1, 4, 2, 30, 3, 9})
	f.Add(uint64(42), []byte{2, 0, 0, 200, 1, 0, 2, 255, 3, 50, 0, 3})
	f.Add(uint64(1998), []byte{0, 255, 2, 1, 0, 255, 1, 255, 2, 140})
	f.Fuzz(func(t *testing.T, seed uint64, script []byte) {
		if len(script) > 64 {
			script = script[:64]
		}
		sc, _ := NewWithEngine(Config{WindowSize: 32, IssueWidth: 4}, EngineScan)
		ev, _ := NewWithEngine(Config{WindowSize: 32, IssueWidth: 4}, EngineEvent)
		ssrc := &fuzzSource{l: lcg{x: seed}}
		esrc := &fuzzSource{l: lcg{x: seed}}
		sl := &lcg{x: seed ^ 0xabcdef}
		el := &lcg{x: seed ^ 0xabcdef}
		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i], int64(script[i+1])
			switch op % 4 {
			case 0:
				sc.Run(ssrc, 1+arg*13)
				ev.Run(esrc, 1+arg*13)
			case 1:
				max := int(arg) % (sc.Config().WindowSize + 1)
				sc.Drain(max)
				ev.Drain(max)
			case 2:
				w := 1 + int(arg)%140
				if err := sc.Resize(w); err != nil {
					t.Fatal(err)
				}
				if err := ev.Resize(w); err != nil {
					t.Fatal(err)
				}
			default:
				rpi := float64(arg%100) / 100
				sc.RunWithLoads(ssrc, 1+arg*7, rpi, sl.memLat)
				ev.RunWithLoads(esrc, 1+arg*7, rpi, el.memLat)
			}
			if a, b := sc.Stats(), ev.Stats(); a != b {
				t.Fatalf("op %d (%d,%d): scan %+v != event %+v", i/2, op, arg, a, b)
			}
			if a, b := sc.Occupancy(), ev.Occupancy(); a != b {
				t.Fatalf("op %d: occupancy scan %d != event %d", i/2, a, b)
			}
			if sl.x != el.x {
				t.Fatalf("op %d: memLat call sequences diverged", i/2)
			}
		}
	})
}

func TestRunWithLoadsCarryOver(t *testing.T) {
	// Splitting a RunWithLoads run into intervals must yield the identical
	// load placement (memLat call count and argument sequence) and
	// statistics as one unbroken run: the fractional-load accumulator
	// carries across calls.
	bench, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	const rpi = 0.37
	type probe struct {
		c     *Core
		s     *workload.InstrStream
		l     *lcg
		calls int64
	}
	mk := func() *probe {
		p := &probe{c: MustNew(PaperConfig(64)), s: workload.NewInstrStream(bench, 21), l: &lcg{x: 5}}
		return p
	}
	run := func(p *probe, n int64) {
		p.c.RunWithLoads(p.s, n, rpi, func(w bool) int64 { p.calls++; return p.l.memLat(w) })
	}
	whole, split := mk(), mk()
	run(whole, 10000)
	for i := 0; i < 4; i++ {
		run(split, 2500)
	}
	// Run's per-call overshoot telescopes: the split run's final issue
	// target can exceed the unbroken run's, so top the shorter run up to
	// the longer one's issued count. Both cores stop at the first cycle
	// whose cumulative issue count reaches that shared target, so from
	// identical per-instruction behavior (the property under test) follows
	// exact state equality.
	if d := split.c.Stats().Issued - whole.c.Stats().Issued; d > 0 {
		run(whole, d)
	} else if d < 0 {
		run(split, -d)
	}
	if a, b := whole.c.Stats(), split.c.Stats(); a != b {
		t.Errorf("stats differ: unbroken %+v, split %+v", a, b)
	}
	if whole.calls != split.calls || whole.l.x != split.l.x {
		t.Errorf("load sequence differs: unbroken %d calls, split %d calls", whole.calls, split.calls)
	}
	// Sanity: loads actually happened at roughly rpi per dispatched instr.
	st := whole.c.Stats()
	if lo := int64(float64(st.Instrs)*rpi) - 2; whole.calls < lo {
		t.Errorf("memLat called %d times for %d dispatches at rpi %v", whole.calls, st.Instrs, rpi)
	}
}

func TestMultiCoreDifferential(t *testing.T) {
	// MultiCore per-core stats must be bit-identical to independent cores
	// running private copies of the same stream — across multiple RunEach
	// calls (continuation) and under both engines.
	bench, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{16, 32, 48, 64, 80, 96, 112, 128}
	prev := DefaultEngine()
	defer SetDefaultEngine(prev)
	for _, eng := range []Engine{EngineEvent, EngineScan} {
		SetDefaultEngine(eng)
		cfgs := make([]Config, len(sizes))
		for i, w := range sizes {
			cfgs[i] = PaperConfig(w)
		}
		mc, err := NewMultiCore(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		src := workload.NewInstrStream(bench, 33)
		for round := 0; round < 3; round++ {
			got := mc.RunEach(src, 5000)
			for i, cfg := range cfgs {
				ref := MustNew(cfg)
				refSrc := workload.NewInstrStream(bench, 33)
				var want Stats
				for r := 0; r <= round; r++ {
					want = ref.Run(refSrc, 5000)
				}
				if got[i] != want {
					t.Fatalf("engine %v round %d W=%d: multicore %+v != independent %+v",
						eng, round, cfg.WindowSize, got[i], want)
				}
			}
		}
	}
}

func TestMultiCoreRejectsEmpty(t *testing.T) {
	if _, err := NewMultiCore(nil); err == nil {
		t.Error("empty config list accepted")
	}
	if _, err := NewMultiCore([]Config{{WindowSize: 0, IssueWidth: 8}}); err == nil {
		t.Error("invalid config accepted")
	}
}

// slowLoadSource emits independent single-cycle instructions; paired with an
// rpi-1.0 RunWithLoads whose memLat occasionally returns an enormous stall,
// it laps the completion ring while completions are still in the future and
// forces the recycleGuard growth path.
type slowLoadSource struct{}

func (slowLoadSource) Next() workload.Instr { return workload.Instr{Latency: 1} }

func TestRingGrowPreservesState(t *testing.T) {
	runEngine := func(e Engine) (*Core, Stats) {
		c, err := NewWithEngine(PaperConfig(128), e)
		if err != nil {
			t.Fatal(err)
		}
		var calls int64
		memLat := func(bool) int64 {
			calls++
			if calls%5000 == 0 {
				return 200_000 // completion far past the ring's lap time
			}
			return 0
		}
		st := c.RunWithLoads(slowLoadSource{}, 60_000, 1.0, memLat)
		return c, st
	}
	sc, sst := runEngine(EngineScan)
	ev, est := runEngine(EngineEvent)
	if sst != est {
		t.Fatalf("scan %+v != event %+v after ring growth", sst, est)
	}
	if sc.Stats() != ev.Stats() {
		t.Fatalf("cumulative stats diverge: %+v vs %+v", sc.Stats(), ev.Stats())
	}
	base := ringSize(128)
	if len(sc.done) <= base || len(ev.done) <= base {
		t.Fatalf("ring did not grow (scan %d, event %d, base %d): recycleGuard untested",
			len(sc.done), len(ev.done), base)
	}
}

func TestRunEachWithLoadsDifferential(t *testing.T) {
	// RunEachWithLoads must be bit-identical to independent RunWithLoads
	// runs with the same per-core latency sources — same stats AND same
	// memLat call sequence (the joint kernel's cache rows depend on the
	// latter) — across interval splits and both engines.
	bench, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{16, 64, 128}
	const rpi = 0.3
	prev := DefaultEngine()
	defer SetDefaultEngine(prev)
	for _, eng := range []Engine{EngineEvent, EngineScan} {
		SetDefaultEngine(eng)
		cfgs := make([]Config, len(sizes))
		for i, w := range sizes {
			cfgs[i] = PaperConfig(w)
		}
		mc, err := NewMultiCore(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		lats := make([]*lcg, len(sizes))
		calls := make([]int64, len(sizes))
		memLat := make([]func(bool) int64, len(sizes))
		for i := range sizes {
			l := &lcg{x: uint64(1000 + i)}
			lats[i] = l
			i := i
			memLat[i] = func(w bool) int64 { calls[i]++; return l.memLat(w) }
		}
		src := workload.NewInstrStream(bench, 77)
		for round := 0; round < 3; round++ {
			got := mc.RunEachWithLoads(src, 4000, rpi, memLat)
			for i, cfg := range cfgs {
				ref := MustNew(cfg)
				refSrc := workload.NewInstrStream(bench, 77)
				refLat := &lcg{x: uint64(1000 + i)}
				var refCalls int64
				var want Stats
				for r := 0; r <= round; r++ {
					want = ref.RunWithLoads(refSrc, 4000, rpi, func(w bool) int64 { refCalls++; return refLat.memLat(w) })
				}
				if got[i] != want {
					t.Fatalf("engine %v round %d W=%d: multicore %+v != independent %+v",
						eng, round, cfg.WindowSize, got[i], want)
				}
				if calls[i] != refCalls || lats[i].x != refLat.x {
					t.Fatalf("engine %v round %d W=%d: load sequence diverged (%d vs %d calls)",
						eng, round, cfg.WindowSize, calls[i], refCalls)
				}
			}
		}
	}
}
