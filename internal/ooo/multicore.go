package ooo

import (
	"fmt"

	"capsim/internal/workload"
)

// MultiCore evaluates several queue configurations in one pass over a single
// instruction stream — the queue analog of cache.MultiHierarchy. Each member
// core is an ordinary *Core (either engine); what MultiCore adds is stream
// sharing: one underlying InstrSource is materialized once into a bounded
// lookahead buffer that every core reads through its own position cursor, so
// an N-configuration profile touches the workload generator (or the shared
// trace store) exactly once instead of N times.
//
// Equivalence: every core observes the instruction sequence starting at
// stream position 0 and consumes it one instruction per dispatch, exactly as
// it would from a private stream — so per-core Stats are bit-identical to N
// independent runs (TestMultiCoreDifferential). The cores advance in rounds
// of refillBatch instructions, keeping them position-locked to within one
// batch; because each RunEach call issues the same n on every core, final
// positions differ only by window-occupancy differences, and the buffer
// prefix below the slowest cursor is recycled each round. Peak buffer memory
// is O(refillBatch + max window), independent of n.
type MultiCore struct {
	cores []*Core
	pos   []int64 // pos[i]: absolute stream index of core i's next instruction
	base  int64   // absolute stream index of buf[0]
	buf   []workload.Instr
}

// refillBatch is the shared-buffer growth quantum: large enough to amortize
// the per-round bookkeeping, small enough to stay cache-resident.
const refillBatch = 1 << 12

// NewMultiCore creates one core per configuration, all using the
// process-default issue engine (see SetDefaultEngine).
func NewMultiCore(cfgs []Config) (*MultiCore, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("ooo: MultiCore needs at least one configuration")
	}
	mc := &MultiCore{
		cores: make([]*Core, len(cfgs)),
		pos:   make([]int64, len(cfgs)),
		buf:   make([]workload.Instr, 0, refillBatch*2),
	}
	for i, cfg := range cfgs {
		c, err := New(cfg)
		if err != nil {
			return nil, err
		}
		mc.cores[i] = c
	}
	return mc, nil
}

// Cores returns the member cores (index-parallel to the construction
// configs). Callers may inspect Stats or ResetStats between passes; resizing
// member cores is not supported.
func (mc *MultiCore) Cores() []*Core { return mc.cores }

// mcCursor adapts one core's view of the shared buffer to workload.InstrSource.
type mcCursor struct {
	mc   *MultiCore
	core int
}

// Next returns the core's next instruction from the shared buffer. RunEach
// guarantees at least IssueWidth instructions of lookahead before each Step,
// so the index is always in range.
func (cu mcCursor) Next() workload.Instr {
	mc := cu.mc
	p := mc.pos[cu.core]
	in := mc.buf[p-mc.base]
	mc.pos[cu.core] = p + 1
	return in
}

// RunEach advances every core until it has issued n more instructions,
// pulling the shared stream as needed, and returns the per-core statistics
// deltas (index-parallel to Cores).
func (mc *MultiCore) RunEach(src workload.InstrSource, n int64) []Stats {
	k := len(mc.cores)
	before := make([]Stats, k)
	target := make([]int64, k)
	for i, c := range mc.cores {
		before[i] = c.stats
		target[i] = c.stats.Issued + n
	}
	for {
		done := true
		for i, c := range mc.cores {
			if c.stats.Issued >= target[i] {
				continue
			}
			done = false
			cur := mcCursor{mc: mc, core: i}
			// A Step dispatches at most IssueWidth instructions; run
			// until the target is met or the lookahead cannot cover a
			// full dispatch group.
			limit := mc.base + int64(len(mc.buf)) - int64(c.cfg.IssueWidth)
			for c.stats.Issued < target[i] && mc.pos[i] <= limit {
				c.Step(cur)
			}
		}
		if done {
			break
		}
		mc.refill(src)
	}
	out := make([]Stats, k)
	for i, c := range mc.cores {
		out[i] = c.stats.Sub(before[i])
	}
	return out
}

// refill recycles the consumed buffer prefix (everything below the slowest
// cursor) and appends the next batch from the shared stream.
func (mc *MultiCore) refill(src workload.InstrSource) {
	min := mc.pos[0]
	for _, p := range mc.pos[1:] {
		if p < min {
			min = p
		}
	}
	if drop := int(min - mc.base); drop > 0 {
		kept := copy(mc.buf, mc.buf[drop:])
		mc.buf = mc.buf[:kept]
		mc.base = min
	}
	for i := 0; i < refillBatch; i++ {
		mc.buf = append(mc.buf, src.Next())
	}
}
