package ooo

import (
	"fmt"

	"capsim/internal/workload"
)

// MultiCore evaluates several queue configurations in one pass over a single
// instruction stream — the queue analog of cache.MultiHierarchy. Each member
// core is an ordinary *Core (either engine); what MultiCore adds is stream
// sharing: one underlying InstrSource is materialized once into a bounded
// lookahead buffer that every core reads through its own position cursor, so
// an N-configuration profile touches the workload generator (or the shared
// trace store) exactly once instead of N times.
//
// Equivalence: every core observes the instruction sequence starting at
// stream position 0 and consumes it one instruction per dispatch, exactly as
// it would from a private stream — so per-core Stats are bit-identical to N
// independent runs (TestMultiCoreDifferential). The cores advance in rounds
// of refillBatch instructions, keeping them position-locked to within one
// batch; because each RunEach call issues the same n on every core, final
// positions differ only by window-occupancy differences, and the buffer
// prefix below the slowest cursor is recycled each round. Peak buffer memory
// is O(refillBatch + max window), independent of n.
type MultiCore struct {
	cores []*Core
	pos   []int64 // pos[i]: absolute stream index of core i's next instruction
	base  int64   // absolute stream index of buf[0]
	buf   []workload.Instr
	// curs[i] is core i's buffer cursor, boxed into the InstrSource
	// interface once at construction: mcCursor is a two-word struct, so
	// converting it at every Step call would allocate on the hot path.
	curs []workload.InstrSource
}

// refillBatch is the shared-buffer growth quantum: large enough to amortize
// the per-round bookkeeping, small enough to stay cache-resident.
const refillBatch = 1 << 12

// NewMultiCore creates one core per configuration, all using the
// process-default issue engine (see SetDefaultEngine).
func NewMultiCore(cfgs []Config) (*MultiCore, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("ooo: MultiCore needs at least one configuration")
	}
	mc := &MultiCore{
		cores: make([]*Core, len(cfgs)),
		pos:   make([]int64, len(cfgs)),
		buf:   make([]workload.Instr, 0, refillBatch*2),
		curs:  make([]workload.InstrSource, len(cfgs)),
	}
	for i, cfg := range cfgs {
		c, err := New(cfg)
		if err != nil {
			return nil, err
		}
		mc.cores[i] = c
		mc.curs[i] = mcCursor{mc: mc, core: i}
	}
	return mc, nil
}

// Cores returns the member cores (index-parallel to the construction
// configs). Callers may inspect Stats or ResetStats between passes, and may
// Resize a member core between RunEach rounds — each core consumes the shared
// buffer through its own cursor, so a resize perturbs only that column
// (core.MultiPolicy's lockstep policy race is built on this, pinned by
// TestMultiPolicyRaceLockstep).
func (mc *MultiCore) Cores() []*Core { return mc.cores }

// mcCursor adapts one core's view of the shared buffer to workload.InstrSource.
type mcCursor struct {
	mc   *MultiCore
	core int
}

// Next returns the core's next instruction from the shared buffer. RunEach
// guarantees at least IssueWidth instructions of lookahead before each Step,
// so the index is always in range.
func (cu mcCursor) Next() workload.Instr {
	mc := cu.mc
	p := mc.pos[cu.core]
	in := mc.buf[p-mc.base]
	mc.pos[cu.core] = p + 1
	return in
}

// RunEach advances every core until it has issued n more instructions,
// pulling the shared stream as needed, and returns the per-core statistics
// deltas (index-parallel to Cores).
func (mc *MultiCore) RunEach(src workload.InstrSource, n int64) []Stats {
	return mc.runEach(src, n)
}

// RunEachWithLoads is RunEach with each core's perfect-cache assumption
// replaced by its own load-latency source: core i draws the extra latency of
// its deterministic rpi-spaced memory operations from memLat[i]. Load
// PLACEMENT is identical across cores (same rpi, and each core's fractional
// accumulator advances once per dispatched instruction), so the i-th load of
// the run lands on the same stream position everywhere — which is what lets
// the joint cache×queue kernel classify each load once per cache row and
// serve every queue column from the same classification sequence. As with
// RunWithLoads, per-core accumulators persist across calls, so interval
// splits keep the exact load spacing.
func (mc *MultiCore) RunEachWithLoads(src workload.InstrSource, n int64, rpi float64, memLat []func(write bool) int64) []Stats {
	if len(memLat) != len(mc.cores) {
		panic(fmt.Sprintf("ooo: %d memLat sources for %d cores", len(memLat), len(mc.cores)))
	}
	for i, c := range mc.cores {
		c.attachLoads(rpi, memLat[i])
	}
	defer func() {
		for _, c := range mc.cores {
			c.detachLoads()
		}
	}()
	return mc.runEach(src, n)
}

// runEach is the shared round loop behind RunEach and RunEachWithLoads.
func (mc *MultiCore) runEach(src workload.InstrSource, n int64) []Stats {
	k := len(mc.cores)
	before := make([]Stats, k)
	target := make([]int64, k)
	for i, c := range mc.cores {
		before[i] = c.stats
		target[i] = c.stats.Issued + n
	}
	for {
		done := true
		for i, c := range mc.cores {
			if c.stats.Issued >= target[i] {
				continue
			}
			cur := mc.curs[i]
			// A Step dispatches at most IssueWidth instructions; run
			// until the target is met or the lookahead cannot cover a
			// full dispatch group. A core whose window is full consumes
			// nothing, so it may keep stepping (issuing, or
			// fast-forwarding a stall) regardless of lookahead — without
			// this, one long-stalled core wedges the round-robin into
			// refilling for everyone else until its stall resolves.
			limit := mc.base + int64(len(mc.buf)) - int64(c.cfg.IssueWidth)
			for c.stats.Issued < target[i] {
				if mc.pos[i] > limit && c.Occupancy() < c.cfg.WindowSize {
					break
				}
				c.Step(cur)
			}
			// Only a core that is still short after draining its lookahead
			// forces a refill; marking done=false up front would append a
			// batch even when every core reached its target from data
			// already buffered, growing the buffer (and materializing
			// trace chunks) ~2x ahead of consumption.
			if c.stats.Issued < target[i] {
				done = false
			}
		}
		if done {
			break
		}
		mc.refill(src)
	}
	out := make([]Stats, k)
	for i, c := range mc.cores {
		out[i] = c.stats.Sub(before[i])
	}
	return out
}

// bulkInstrSource is the optional batched-read fast path a source may offer
// (trace.OpCursor does): fill a prefix of dst, return the count written.
type bulkInstrSource interface {
	CopyNext(dst []workload.Instr) int
}

// refill recycles the consumed buffer prefix (everything below the slowest
// cursor) and appends the next batch from the shared stream — via the
// source's bulk reader when it has one, one Next at a time otherwise.
func (mc *MultiCore) refill(src workload.InstrSource) {
	min := mc.pos[0]
	for _, p := range mc.pos[1:] {
		if p < min {
			min = p
		}
	}
	if drop := int(min - mc.base); drop > 0 {
		kept := copy(mc.buf, mc.buf[drop:])
		mc.buf = mc.buf[:kept]
		mc.base = min
	}
	if bs, ok := src.(bulkInstrSource); ok {
		n := len(mc.buf)
		if cap(mc.buf) < n+refillBatch {
			newCap := 2 * cap(mc.buf)
			if newCap < n+refillBatch {
				newCap = n + refillBatch
			}
			grown := make([]workload.Instr, n, newCap)
			copy(grown, mc.buf)
			mc.buf = grown
		}
		mc.buf = mc.buf[:n+refillBatch]
		for filled := 0; filled < refillBatch; {
			filled += bs.CopyNext(mc.buf[n+filled : n+refillBatch])
		}
		return
	}
	for i := 0; i < refillBatch; i++ {
		mc.buf = append(mc.buf, src.Next())
	}
}
