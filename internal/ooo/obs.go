package ooo

import "capsim/internal/obs"

// Telemetry (internal/obs). The per-cycle and per-instruction paths are not
// instrumented with atomics: the core keeps plain tally fields (below,
// embedded in Core) that are incremented unconditionally — deterministic and
// a few cycles each — and PublishObs ships the deltas to the global counters
// at coarse boundaries (end of a Run window, a profile pass, an interval).
var (
	obsInstrs     = obs.NewCounter("ooo.instrs")         // instructions dispatched
	obsIssued     = obs.NewCounter("ooo.issued")         // instructions issued
	obsCycles     = obs.NewCounter("ooo.cycles")         // cycles simulated
	obsDrainCy    = obs.NewCounter("ooo.drain_stalls")   // drain stall cycles
	obsFullCy     = obs.NewCounter("ooo.window_full_cy") // dispatch-blocked cycles
	obsWakeups    = obs.NewCounter("ooo.wakeups")        // consumer notifications (event engine)
	obsFiledDir   = obs.NewCounter("ooo.filed_direct")   // entries filed straight into select
	obsFiledNear  = obs.NewCounter("ooo.filed_near")     // entries filed into the rotating calendar
	obsFiledFar   = obs.NewCounter("ooo.filed_far")      // entries filed into the far heap
	obsRingGrows  = obs.NewCounter("ooo.ring_grows")     // completion-ring growths
	obsResizes    = obs.NewCounter("ooo.resizes")        // window Resize calls
	obsIdleSkip   = obs.NewCounter("ooo.idle_skipped")   // stall cycles fast-forwarded (event engine)
	obsWindowG    = obs.NewGauge("ooo.window_current")   // window size at the last publish
	obsOccupancyG = obs.NewGauge("ooo.occupancy")        // occupancy at the last publish
)

// tallies are the core's plain telemetry counters: structural event counts
// the local Stats struct does not carry. They are updated unconditionally on
// their (already branchy) paths and published as deltas.
type tallies struct {
	wakeups     int64 // producer->consumer notifications fired
	filedDirect int64
	filedNear   int64
	filedFar    int64
	ringGrows   int64 // monotone: growRing only ever enlarges the ring
	resizes     int64
	idleSkipped int64 // stall cycles fast-forwarded by idleSkip
}

// sub returns t - o field-wise.
func (t tallies) sub(o tallies) tallies {
	return tallies{
		wakeups:     t.wakeups - o.wakeups,
		filedDirect: t.filedDirect - o.filedDirect,
		filedNear:   t.filedNear - o.filedNear,
		filedFar:    t.filedFar - o.filedFar,
		ringGrows:   t.ringGrows - o.ringGrows,
		resizes:     t.resizes - o.resizes,
		idleSkipped: t.idleSkipped - o.idleSkipped,
	}
}

// PublishObs publishes the statistics and structural tallies accumulated
// since the previous publish. Call at coarse boundaries only. The delta
// baselines advance even while obs is disabled, so enabling telemetry
// mid-process never attributes old work to the next experiment.
func (c *Core) PublishObs() {
	ds := c.stats.Sub(c.pubStats)
	dt := c.tal.sub(c.pubTal)
	c.pubStats, c.pubTal = c.stats, c.tal
	if !obs.Enabled() {
		return
	}
	obsInstrs.Add1(ds.Instrs)
	obsIssued.Add1(ds.Issued)
	obsCycles.Add1(ds.Cycles)
	obsDrainCy.Add1(ds.DrainStalls)
	obsFullCy.Add1(ds.WindowFullCy)
	obsWakeups.Add1(dt.wakeups)
	obsFiledDir.Add1(dt.filedDirect)
	obsFiledNear.Add1(dt.filedNear)
	obsFiledFar.Add1(dt.filedFar)
	obsRingGrows.Add1(dt.ringGrows)
	obsResizes.Add1(dt.resizes)
	obsIdleSkip.Add1(dt.idleSkipped)
	obsWindowG.Set(int64(c.cfg.WindowSize))
	obsOccupancyG.Set(int64(c.Occupancy()))
}

// PublishObs publishes every member core's deltas (the one-pass queue
// profiling path drives all window sizes through one MultiCore).
func (mc *MultiCore) PublishObs() {
	for _, c := range mc.cores {
		c.PublishObs()
	}
}
