package ooo

import "capsim/internal/workload"

// This file is the event-driven wakeup/select engine (EngineEvent): the
// algorithmically fast replacement for the per-cycle window scan, bit-exact
// by construction.
//
// What the scan does, restated as events. The scan engine walks the window
// oldest-first every cycle; an entry issues the first cycle in which (a) all
// its producers' completion cycles are known, (b) its readiness cycle
// max(producer completion) has arrived, and (c) fewer than IssueWidth older
// ready entries exist this cycle. Because every producer has a strictly
// smaller sequence number than its consumers, the oldest-first pass
// guarantees a producer issuing in a pass is visible to its consumers later
// in the same pass — the atomic-wakeup property that lets single-cycle
// dependent pairs issue back to back.
//
// The event engine computes the same fixpoint without touching waiting
// entries:
//
//   - Wakeup: each window slot carries a consumer list threaded through the
//     consumers' own slots (two link fields per consumer, one per source
//     operand, so the lists need no allocation). When a producer issues, its
//     completion cycle is pushed to exactly the entries that were waiting on
//     it; an entry whose last pending producer resolves computes its
//     readiness cycle max over sources — the same max the scan's resolve
//     takes.
//   - Select: entries whose readiness cycle has arrived sit in `eligible`, a
//     min-heap of packed (seq<<slotBits | slot) keys — ordered by sequence
//     number, with the slot index riding along so sift comparisons never
//     dereference the slot slab. Each cycle pops up to IssueWidth keys.
//   - Future: entries ready within the next nearBuckets cycles sit in a
//     rotating calendar — near[readyAt & nearMask] is a plain slice, append
//     on wakeup, drained wholesale when its cycle arrives (the span never
//     exceeds the bucket count, so a bucket holds exactly one cycle's
//     entries). Entries ready further out (long RunWithLoads stalls) go to
//     `far`, a min-heap ordered by (readyAt, seq). Completion latencies in
//     the paper's workloads are single digits, so the far heap is cold.
//
// Why seq-ordered eligibility (rather than one (ready, seq) structure)
// reproduces the oldest-first priority encoder exactly: among entries whose
// readiness has arrived, the scan issues strictly by seq — how long ago an
// entry became ready is irrelevant, only age is — so leftover entries (ready
// in earlier cycles but squeezed out by the width limit) must merge with
// entries becoming ready this cycle in pure seq order. That is precisely the
// calendar/eligible split: the calendar needs readiness order only to find
// which entries become eligible at each cycle boundary; once eligible, seq
// alone decides. A single heap ordered by (ready, seq) would be wrong: it
// would prefer an entry that became ready earlier over an older entry that
// became ready later, which a priority encoder never does.
//
// Mid-select wakeups preserve the same-pass visibility invariant: a consumer
// woken by an issue this cycle has a larger seq than the issuing producer,
// so pushing it into `eligible` mid-pass keeps the heap's extraction order
// identical to the scan's single oldest-first walk.

// nilLink terminates consumer lists.
const nilLink = int32(-1)

// slotBits is the width of the slot-index field in packed eligible keys.
// Window sizes are capped below maxDist = 1<<11, so a slot index always
// fits; seq occupies the bits above and dominates the ordering (seqs are
// unique, so the slot bits never decide a comparison).
const (
	slotBits = 11
	slotMask = 1<<slotBits - 1
)

// nearBuckets is the rotating-calendar span: wakeups landing within this
// many cycles take the O(1) bucket path; later ones take the far heap.
// Must be a power of two and cover the workload latency range (≤ 12).
const (
	nearBuckets = 16
	nearMask    = nearBuckets - 1
)

// eslot is one window entry in the event engine's slab. Slots are reused
// through the free list; indices are stable handles while an entry is live.
type eslot struct {
	seq     int64 // dynamic instruction number (issue priority)
	readyAt int64 // max completion cycle over resolved sources so far
	lat     int64 // completion latency beyond issue
	head    int32 // consumer list head: handle = consumerSlot<<1 | srcIndex
	next    [2]int32
	npend   int32 // producers still unissued
}

// farEnt is one far-calendar entry: the readiness cycle and the packed
// (seq, slot) key, kept inline so heap sifts stay within one contiguous
// array.
type farEnt struct {
	ready int64
	key   int64
}

// eventState is the event engine's per-core state. All capacity is reserved
// in init/grow; the steady-state hot path performs no allocation (bucket and
// heap slices keep their capacity across drains).
type eventState struct {
	slots []eslot
	free  []int32 // free slot indices (LIFO)
	occ   int

	// slotOf[seq & mask] is the live slot of a pending producer; valid only
	// while done[seq & mask] == pending. Parallel to Core.done.
	slotOf []int32

	// eligible is a min-heap of packed seq<<slotBits|slot keys: entries
	// whose readiness cycle has arrived, awaiting select.
	eligible []int64
	// near[readyAt & nearMask] holds entries becoming ready at that cycle,
	// for readyAt within (cycle, cycle+nearBuckets].
	near [nearBuckets][]int32
	// far is a min-heap by (ready, key) for readiness beyond the calendar.
	far []farEnt
}

// init sizes the slab and heaps for a window and the ring-parallel slot map.
func (ev *eventState) init(window, ring int) {
	ev.slots = make([]eslot, window)
	ev.free = make([]int32, window)
	for i := range ev.free {
		// LIFO pop order: slot 0 first, purely cosmetic.
		ev.free[i] = int32(window - 1 - i)
	}
	ev.slotOf = make([]int32, ring)
	ev.eligible = make([]int64, 0, window)
}

// grow extends the slab, free list and heap reservations to a new window
// size (shrinking keeps capacity: Resize may grow again later and the slack
// is small).
func (ev *eventState) grow(window int) {
	for len(ev.slots) < window {
		ev.free = append(ev.free, int32(len(ev.slots)))
		ev.slots = append(ev.slots, eslot{})
	}
	if cap(ev.eligible) < window {
		h := make([]int64, len(ev.eligible), window)
		copy(h, ev.eligible)
		ev.eligible = h
	}
}

// fileReady routes an entry whose readiness cycle just became known into the
// select pool (readiness arrived), the near calendar, or the far heap.
func (c *Core) fileReady(si int32, s *eslot) {
	ev := &c.ev
	key := s.seq<<slotBits | int64(si)
	switch d := s.readyAt - c.cycle; {
	case d <= 0:
		c.tal.filedDirect++
		ev.pushEligible(key)
	case d < nearBuckets:
		c.tal.filedNear++
		// Strict inequality: dispatch files entries before this cycle's
		// bucket is drained, so readyAt = cycle+nearBuckets would land in
		// the about-to-drain bucket and wake a full rotation early. d <
		// nearBuckets keeps every live bucket entry's readyAt within
		// (cycle, cycle+nearBuckets), distinct mod nearBuckets and never
		// aliasing the current cycle's bucket.
		b := s.readyAt & nearMask
		ev.near[b] = append(ev.near[b], si)
	default:
		c.tal.filedFar++
		ev.pushFar(farEnt{ready: s.readyAt, key: key})
	}
}

// dispatchEvent dispatches n instructions: allocate a slot, resolve each
// source against the completion ring, and either link the entry onto the
// pending producers' consumer lists or, with all sources resolved, file it
// directly into the ready structures. A dispatched entry whose readiness
// cycle has already arrived is eligible in this very cycle's select, exactly
// as the scan (which dispatches before its wakeup+select pass) would see it.
func (c *Core) dispatchEvent(stream workload.InstrSource, n int) {
	ev := &c.ev
	for i := 0; i < n; i++ {
		in := stream.Next()
		c.recycleGuard()
		seq := c.seq
		c.seq++
		c.stats.Instrs++
		lat := c.instrLat(in)

		si := ev.free[len(ev.free)-1]
		ev.free = ev.free[:len(ev.free)-1]
		s := &ev.slots[si]
		s.seq, s.lat = seq, lat
		s.readyAt = 0
		s.npend = 0
		s.head = nilLink
		s.next[0], s.next[1] = nilLink, nilLink

		for k := 0; k < 2; k++ {
			p := c.producer(seq, in.Src[k])
			if p < 0 {
				continue
			}
			t, pend := c.lookupDone(p)
			if pend {
				ps := ev.slotOf[p&c.mask]
				s.next[k] = ev.slots[ps].head
				ev.slots[ps].head = si<<1 | int32(k)
				s.npend++
			} else if t > s.readyAt {
				s.readyAt = t
			}
		}

		c.done[seq&c.mask] = pending
		ev.slotOf[seq&c.mask] = si
		ev.occ++
		if s.npend == 0 {
			c.fileReady(si, s)
		}
	}
}

// idleSkip advances the clock directly to the next cycle with scheduled
// readiness, returning how many cycles were skipped (0 when this cycle has —
// or may have — work). Callers invoke it only on cycles with no dispatch
// (full window, or draining): in that state nothing reads the stream, no
// wakeup can fire (wakeups only follow issues), and the select pool is empty,
// so every cycle until the earliest calendar/far readiness is a pure stall —
// the per-cycle loop would do nothing but increment counters. Skipping d
// cycles is therefore exact as long as the caller adds d to the same counters
// the loop would have bumped (Cycles plus WindowFullCy or DrainStalls).
//
// The span invariant survives the jump: live near-bucket entries have readyAt
// in (oldCycle, oldCycle+nearBuckets), the jump lands on the minimum such
// readyAt (or the far minimum, whichever is earlier), so afterwards every
// entry still satisfies cycle <= readyAt < cycle+nearBuckets and this cycle's
// bucket is exactly the entries now due. A non-empty window always has a
// scheduled readiness (eligible, near or far): entries waiting on producers
// chain down to an oldest entry whose sources are all resolved.
func (c *Core) idleSkip() int64 {
	ev := &c.ev
	if len(ev.eligible) > 0 || len(ev.near[c.cycle&nearMask]) > 0 {
		return 0
	}
	if len(ev.far) > 0 && ev.far[0].ready <= c.cycle {
		return 0
	}
	next := int64(-1)
	for d := int64(1); d < nearBuckets; d++ {
		if len(ev.near[(c.cycle+d)&nearMask]) > 0 {
			next = c.cycle + d
			break
		}
	}
	if len(ev.far) > 0 && (next < 0 || ev.far[0].ready < next) {
		next = ev.far[0].ready
	}
	if next < 0 {
		return 0
	}
	d := next - c.cycle
	c.cycle = next
	c.tal.idleSkipped += d
	return d
}

// issueCycleEvent performs one wakeup+select pass at the current cycle.
func (c *Core) issueCycleEvent() {
	ev := &c.ev

	// Cycle-boundary wakeup: entries whose readiness cycle has arrived
	// join the select pool. The calendar bucket for this cycle holds
	// exactly the entries with readyAt == cycle (the span invariant);
	// the far heap surfaces anything longer-latency that is now due.
	if b := c.cycle & nearMask; len(ev.near[b]) > 0 {
		for _, si := range ev.near[b] {
			s := &ev.slots[si]
			ev.pushEligible(s.seq<<slotBits | int64(si))
		}
		ev.near[b] = ev.near[b][:0]
	}
	for len(ev.far) > 0 && ev.far[0].ready <= c.cycle {
		ev.pushEligible(ev.popFar().key)
	}

	issued := 0
	for issued < c.cfg.IssueWidth && len(ev.eligible) > 0 {
		si := int32(ev.popEligible() & slotMask)
		s := &ev.slots[si]
		t := c.cycle + s.lat
		c.done[s.seq&c.mask] = t
		c.stats.Issued++
		issued++
		ev.occ--

		// Producer-completion wakeup: push t to every consumer that was
		// waiting on this entry. Consumers have larger seqs, so any that
		// become eligible merge behind the current heap position —
		// preserving the scan's same-pass visibility.
		h := s.head
		s.head = nilLink
		for h != nilLink {
			c.tal.wakeups++
			ci := h >> 1
			k := h & 1
			cs := &ev.slots[ci]
			h = cs.next[k]
			cs.next[k] = nilLink
			if t > cs.readyAt {
				cs.readyAt = t
			}
			cs.npend--
			if cs.npend == 0 {
				c.fileReady(ci, cs)
			}
		}
		ev.free = append(ev.free, si)
	}
}

// --- heaps ---------------------------------------------------------------
//
// Hand-rolled binary heaps with inline keys: sift comparisons are plain
// int64 compares within one contiguous array — no pointer chase into the
// slot slab, no interface box, no callback (container/heap would force
// both in the hottest loop).

func (ev *eventState) pushEligible(key int64) {
	h := append(ev.eligible, key)
	ev.eligible = h
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (ev *eventState) popEligible() int64 {
	h := ev.eligible
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	ev.eligible = h[:n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r] < h[l] {
			m = r
		}
		if h[i] <= h[m] {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// farLess orders far entries by (ready, key); keys embed seq in their high
// bits, so the tiebreak is by age, mirroring the calendar-drain order.
func farLess(a, b farEnt) bool {
	if a.ready != b.ready {
		return a.ready < b.ready
	}
	return a.key < b.key
}

func (ev *eventState) pushFar(e farEnt) {
	h := append(ev.far, e)
	ev.far = h
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !farLess(h[i], h[p]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (ev *eventState) popFar() farEnt {
	h := ev.far
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	ev.far = h[:n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && farLess(h[r], h[l]) {
			m = r
		}
		if !farLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}
