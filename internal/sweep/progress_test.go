package sweep

import (
	"context"
	"sync"
	"testing"

	"capsim/internal/flight"
)

// progressSink records progress pulses; runs are ignored.
type progressSink struct {
	mu    sync.Mutex
	pulse []flight.Progress
}

func (s *progressSink) WriteRun(int64, flight.RunMeta, []flight.Event, flight.RunEnd) error {
	return nil
}

func (s *progressSink) WriteProgress(p flight.Progress) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pulse = append(s.pulse, p)
	return nil
}

// Both pool paths emit one pulse per completed job when a collector is
// active, with Done reaching Total.
func TestRunNCtxFlightProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := &progressSink{}
		ctx := flight.WithCollector(context.Background(), flight.NewCollector(s))
		const n = 12
		if _, err := RunNCtx(ctx, workers, n, func(i int) (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
		if len(s.pulse) != n {
			t.Fatalf("workers=%d: got %d pulses, want %d", workers, len(s.pulse), n)
		}
		maxDone := 0
		for _, p := range s.pulse {
			if p.Total != n || p.Label != "sweep" {
				t.Fatalf("workers=%d: bad pulse %+v", workers, p)
			}
			if p.Done > maxDone {
				maxDone = p.Done
			}
		}
		if maxDone != n {
			t.Fatalf("workers=%d: max Done %d, want %d", workers, maxDone, n)
		}
	}
}

// Without a collector, results are identical and nothing is published — the
// recorder is invisible to the pool's determinism contract.
func TestRunNCtxNoCollectorIdentical(t *testing.T) {
	base, err := RunNCtx(context.Background(), 3, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	s := &progressSink{}
	ctx := flight.WithCollector(context.Background(), flight.NewCollector(s))
	rec, err := RunNCtx(ctx, 3, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i] != rec[i] {
			t.Fatalf("results diverged at %d", i)
		}
	}
}
