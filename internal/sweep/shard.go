// Shard partition contract: split the deterministic study-row key space
// across N cooperating processes.
//
// The unit of distribution is the *study row* — the same canonical key
// strings the memo tier and the persistent study cache are addressed by. A
// row belongs to exactly one bucket, chosen by hashing its key through the
// repository's seed-derivation contract (rng.DeriveSeed — the same expansion
// that gives every benchmark its independent stream), so the assignment is a
// pure function of the key: stable across processes, machines, Go versions,
// and shard counts that divide the same bucket space.
//
// A shard process runs the full experiment skeleton but computes only the
// rows it owns, publishing them to the shared persistent store; rows it does
// not own yield shape-correct stubs and the render is discarded. The merge
// is a plain unsharded run against the warm store: every row hits disk, the
// driver renders normally, and the output is byte-identical to a
// single-process run because the store round-trips float64 bit-exactly. The
// merge is self-healing — any row a shard failed to publish is simply
// recomputed.
package sweep

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"capsim/internal/rng"
)

// shardSalt seeds the key→bucket hash. It is part of the on-disk contract
// only in the weak sense that changing it reshuffles which shard computes
// which row; the persisted entries themselves are keyed by row key alone and
// stay valid.
const shardSalt uint64 = 0x51ab_c0de_1998_0a11

// Shard is one partition of the row key space: bucket Bucket of Of total.
type Shard struct {
	Bucket int // 0-based bucket this process owns
	Of     int // total bucket count, >= 1
}

// activeShard is the process-wide shard assignment, nil when unsharded. Like
// trace.SetEnabled and the ooo engine switch it is an atomic process-global:
// experiment drivers consult it at row granularity without plumbing a
// parameter through every signature.
var activeShard atomic.Pointer[Shard]

// SetShard makes s the process-wide shard assignment. Pass the zero Shard's
// negation via ClearShard to return to unsharded operation.
func SetShard(s Shard) error {
	if err := s.validate(); err != nil {
		return err
	}
	sh := s
	activeShard.Store(&sh)
	return nil
}

// ClearShard returns the process to unsharded operation (every row owned).
func ClearShard() { activeShard.Store(nil) }

// ActiveShard returns the current shard assignment, ok=false when unsharded.
func ActiveShard() (Shard, bool) {
	p := activeShard.Load()
	if p == nil {
		return Shard{}, false
	}
	return *p, true
}

func (s Shard) validate() error {
	if s.Of < 1 {
		return fmt.Errorf("sweep: shard count %d, want >= 1", s.Of)
	}
	if s.Bucket < 0 || s.Bucket >= s.Of {
		return fmt.Errorf("sweep: shard bucket %d out of range [0,%d)", s.Bucket, s.Of)
	}
	return nil
}

// String renders the canonical "i/N" spec ParseShard accepts.
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Bucket, s.Of) }

// ParseShard parses an "i/N" spec (0-based bucket i of N), as passed to
// `capsim -shard i/N`.
func ParseShard(spec string) (Shard, error) {
	bs, ns, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, fmt.Errorf("sweep: shard spec %q, want \"i/N\"", spec)
	}
	b, berr := strconv.Atoi(bs)
	n, nerr := strconv.Atoi(ns)
	if berr != nil || nerr != nil {
		return Shard{}, fmt.Errorf("sweep: shard spec %q, want \"i/N\"", spec)
	}
	s := Shard{Bucket: b, Of: n}
	if err := s.validate(); err != nil {
		return Shard{}, err
	}
	return s, nil
}

// BucketOf maps a row key to its bucket in an n-bucket space. The assignment
// is uniform (xoshiro-quality bits from DeriveSeed) and depends only on
// (key, n).
func BucketOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(rng.DeriveSeed(shardSalt, key) % uint64(n))
}

// Owns reports whether this shard computes the row with the given key.
func (s Shard) Owns(key string) bool {
	return s.Of <= 1 || BucketOf(key, s.Of) == s.Bucket
}

// OwnsKey consults the process-wide shard: true when unsharded or when the
// active shard owns key. This is the single call sites use to decide
// compute-vs-stub.
func OwnsKey(key string) bool {
	p := activeShard.Load()
	if p == nil {
		return true
	}
	return p.Owns(key)
}
