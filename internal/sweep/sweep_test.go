package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCollectsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 33} {
		got, err := RunN(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := RunN(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty run: %v %v", got, err)
	}
}

func TestRunLowestIndexedError(t *testing.T) {
	// Jobs 7 and 3 fail; the error from job 3 must be reported regardless of
	// completion order.
	for trial := 0; trial < 20; trial++ {
		_, err := RunN(4, 10, func(i int) (int, error) {
			if i == 7 || i == 3 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("trial %d: got error %v, want job 3's", trial, err)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	_, err := RunN(workers, 64, func(i int) (struct{}, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent jobs, cap %d", p, workers)
	}
}

func TestRunNested(t *testing.T) {
	// A job may itself fan out; nesting must neither deadlock nor corrupt
	// result placement.
	got, err := RunN(4, 6, func(o int) ([]int, error) {
		return RunN(4, 5, func(i int) (int, error) { return o*10 + i, nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	for o, row := range got {
		for i, v := range row {
			if v != o*10+i {
				t.Fatalf("nested result[%d][%d]=%d", o, i, v)
			}
		}
	}
}

func TestGrid(t *testing.T) {
	m, err := Grid(3, 4, func(o, i int) (int, error) { return o*100 + i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("%d rows", len(m))
	}
	for o, row := range m {
		if len(row) != 4 {
			t.Fatalf("row %d: %d cols", o, len(row))
		}
		for i, v := range row {
			if v != o*100+i {
				t.Fatalf("grid[%d][%d]=%d", o, i, v)
			}
		}
	}
}

func TestGridError(t *testing.T) {
	want := errors.New("boom")
	if _, err := Grid(2, 2, func(o, i int) (int, error) {
		if o == 1 && i == 1 {
			return 0, want
		}
		return 0, nil
	}); !errors.Is(err, want) {
		t.Fatalf("grid error %v", err)
	}
}

func TestDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("unset default %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Errorf("default %d after Set(3)", got)
	}
	SetDefaultWorkers(-5)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default %d after Set(-5), want GOMAXPROCS", got)
	}
}

func TestEach(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	if err := Each(32, func(i int) error {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 32 {
		t.Errorf("ran %d jobs, want 32", len(seen))
	}
}

// TestRunAbortsAfterError locks the early-abort bugfix: once a job fails, the
// pool must stop claiming higher-indexed jobs instead of burning CPU on the
// whole remaining grid. Job 0 fails immediately while every other job sleeps
// briefly, so by the time the sleepers finish their first claim the abort is
// visible and all later claims are skipped.
func TestRunAbortsAfterError(t *testing.T) {
	const n = 1000
	var ran atomic.Int64
	_, err := RunN(4, n, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, fmt.Errorf("job 0 failed")
		}
		time.Sleep(2 * time.Millisecond)
		return i, nil
	})
	if err == nil || err.Error() != "job 0 failed" {
		t.Fatalf("error %v, want job 0's", err)
	}
	if got := ran.Load(); got >= n/2 {
		t.Errorf("%d of %d jobs ran after an immediate failure; abort did not take", got, n)
	}
}

// TestRunErrorDeterministicUnderAbort locks the determinism half of the
// early-abort contract: even though the pool skips jobs above the lowest
// observed failing index, the *returned* error must always be the
// lowest-indexed one — jobs below the current minimum keep running precisely
// so a lower-indexed failure can still surface.
func TestRunErrorDeterministicUnderAbort(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		for _, workers := range []int{2, 4, 8} {
			_, err := RunN(workers, 64, func(i int) (int, error) {
				switch i {
				case 3, 7, 40:
					return 0, fmt.Errorf("job %d failed", i)
				}
				return i, nil
			})
			if err == nil || err.Error() != "job 3 failed" {
				t.Fatalf("trial %d workers %d: got %v, want job 3's error", trial, workers, err)
			}
		}
	}
}

// TestRunCtxCancelStopsClaiming proves a cancelled context stops the pool
// from claiming new jobs: cancel fires after the first few jobs start, and
// far fewer than n jobs may run.
func TestRunCtxCancelStopsClaiming(t *testing.T) {
	const n = 1000
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	started := make(chan struct{}, n)
	go func() {
		<-started
		cancel()
	}()
	_, err := RunNCtx(ctx, 4, n, func(i int) (int, error) {
		ran.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		time.Sleep(2 * time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= n/2 {
		t.Errorf("%d of %d jobs ran after cancellation", got, n)
	}
}

// TestRunCtxSerialCancel covers the workers=1 path: the serial loop must
// check the context between jobs.
func TestRunCtxSerialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	_, err := RunNCtx(ctx, 1, 100, func(i int) (int, error) {
		ran++
		if i == 2 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Errorf("serial path ran %d jobs after cancel at job 2, want 3", ran)
	}
}

// TestRunCtxPreCancelled: a context that is already done runs nothing.
func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := RunNCtx(ctx, 4, 10, func(i int) (int, error) { ran.Add(1); return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d jobs ran under a pre-cancelled context", ran.Load())
	}
}

// TestRunCtxCompletedRunIgnoresLateCancel: if every job finished, the run
// returns its results even when the context is cancelled afterwards —
// mirroring a serial loop that completes its final iteration.
func TestRunCtxCompletedRunIgnoresLateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	got, err := RunNCtx(ctx, 4, 50, func(i int) (int, error) { return i * 2, nil })
	cancel()
	if err != nil {
		t.Fatalf("completed run reported %v", err)
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("result[%d]=%d", i, v)
		}
	}
}

// TestWithWorkers checks the per-context worker override used by the API
// server's `parallel` request field.
func TestWithWorkers(t *testing.T) {
	SetDefaultWorkers(8)
	defer SetDefaultWorkers(0)
	ctx := WithWorkers(context.Background(), 2)
	var cur, peak atomic.Int32
	_, err := RunCtx(ctx, 64, func(i int) (struct{}, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("observed %d concurrent jobs, override cap 2", p)
	}
	if ctxWorkers(context.Background()) != 8 {
		t.Errorf("plain context did not fall back to the process default")
	}
	if ctxWorkers(WithWorkers(context.Background(), -3)) != 8 {
		t.Errorf("negative override did not fall back to the process default")
	}
}

// TestRunDeterministicUnderRace hammers the pool with shared-free jobs so the
// race detector can certify the result-collection path.
func TestRunDeterministicUnderRace(t *testing.T) {
	base, err := RunN(1, 257, func(i int) (uint64, error) {
		x := uint64(i) * 0x9e3779b97f4a7c15
		x ^= x >> 29
		return x, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 7, 16} {
		got, err := RunN(w, 257, func(i int) (uint64, error) {
			x := uint64(i) * 0x9e3779b97f4a7c15
			x ^= x >> 29
			return x, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: result[%d] differs from serial", w, i)
			}
		}
	}
}
