// Package sweep is the parallel sweep engine behind the experiment drivers:
// a bounded worker pool that fans independent (benchmark, configuration)
// simulation jobs across CPUs while preserving bit-for-bit determinism.
//
// Every figure of the paper is a sweep over a cross product — 21 applications
// x 16 boundary positions for Figures 7-9, 22 applications x 8 queue sizes
// for Figures 10-11 — whose cells are completely independent: each cell
// builds a fresh machine whose workload generators are seeded by
// (master seed, benchmark name, purpose) via rng.DeriveSeed, so no cell can
// observe another cell's random stream or simulator state.
//
// Determinism contract (see DESIGN.md "Parallel execution & determinism"):
//
//   - jobs are identified by their index in [0, n); the result of job i is
//     stored at results[i] regardless of which worker ran it or when it
//     finished — collection is by index, never by completion order;
//   - jobs derive all randomness from their own arguments (never from shared
//     mutable state), so scheduling cannot perturb any simulated outcome;
//   - error selection is deterministic: after all jobs complete, the error
//     of the lowest-indexed failing job is returned.
//
// Consequently Run(n, fn) returns byte-identical results for any worker
// count, including 1 (the serial fallback used by `capsim -parallel 1` and
// the determinism tests).
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the process-wide worker count used by Run when the
// caller does not specify one. Zero (the initial value) means "use
// runtime.GOMAXPROCS(0)". cmd/capsim's -parallel flag sets it.
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the process-wide default worker count. n < 1
// restores the automatic default (GOMAXPROCS).
func SetDefaultWorkers(n int) {
	if n < 1 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// DefaultWorkers returns the worker count Run will use: the value set by
// SetDefaultWorkers, or runtime.GOMAXPROCS(0) when unset.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes jobs 0..n-1 with the default worker count and collects their
// results by index. See RunN.
func Run[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return RunN(DefaultWorkers(), n, fn)
}

// RunN executes jobs 0..n-1 on at most `workers` concurrent goroutines.
// results[i] always holds job i's value. The returned error is the
// lowest-indexed job error, or nil: the parallel path runs every job and
// then selects by index, while the serial path stops at the first error —
// which, running in order, is by construction the lowest-indexed one. Both
// paths therefore report the identical error for identical inputs.
//
// RunN may be nested: a job may itself call Run/RunN. Each invocation spawns
// its own bounded goroutine set and holds no locks while jobs execute, so
// nesting cannot deadlock; it merely oversubscribes the scheduler briefly.
func RunN[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: no goroutines, no synchronization. This is the
		// baseline the determinism tests compare parallel runs against.
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return results, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Each is Run for jobs without results.
func Each(n int, fn func(i int) error) error {
	_, err := Run(n, func(i int) (struct{}, error) { return struct{}{}, fn(i) })
	return err
}

// Grid is a helper for two-dimensional sweeps over an (outer x inner) cross
// product, the shape of every figure in the paper. Job (o, i) runs at flat
// index o*inner+i; results are returned as a dense [outer][inner] matrix.
func Grid[T any](outer, inner int, fn func(o, i int) (T, error)) ([][]T, error) {
	flat, err := Run(outer*inner, func(j int) (T, error) {
		return fn(j/inner, j%inner)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]T, outer)
	for o := range out {
		out[o] = flat[o*inner : (o+1)*inner : (o+1)*inner]
	}
	return out, nil
}
