// Package sweep is the parallel sweep engine behind the experiment drivers:
// a bounded worker pool that fans independent (benchmark, configuration)
// simulation jobs across CPUs while preserving bit-for-bit determinism.
//
// Every figure of the paper is a sweep over a cross product — 21 applications
// x 16 boundary positions for Figures 7-9, 22 applications x 8 queue sizes
// for Figures 10-11 — whose cells are completely independent: each cell
// builds a fresh machine whose workload generators are seeded by
// (master seed, benchmark name, purpose) via rng.DeriveSeed, so no cell can
// observe another cell's random stream or simulator state.
//
// Determinism contract (see DESIGN.md "Parallel execution & determinism"):
//
//   - jobs are identified by their index in [0, n); the result of job i is
//     stored at results[i] regardless of which worker ran it or when it
//     finished — collection is by index, never by completion order;
//   - jobs derive all randomness from their own arguments (never from shared
//     mutable state), so scheduling cannot perturb any simulated outcome;
//   - error selection is deterministic: after all jobs complete, the error
//     of the lowest-indexed failing job is returned.
//
// Consequently Run(n, fn) returns byte-identical results for any worker
// count, including 1 (the serial fallback used by `capsim -parallel 1` and
// the determinism tests).
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"capsim/internal/obs"
)

// Telemetry (internal/obs). Counters/gauges are no-ops unless -obs (or a
// sink flag) enabled them; spans are no-ops unless -trace-out installed a
// sink. Busy-ns adds land on the worker's own counter lane, so the pool's
// telemetry never bounces a cache line between workers.
var (
	obsRuns       = obs.NewCounter("sweep.runs")          // Run/RunN invocations
	obsJobs       = obs.NewCounter("sweep.jobs")          // jobs executed
	obsBusyNS     = obs.NewCounter("sweep.busy_ns")       // per-worker time inside fn
	obsJobNS      = obs.NewHistogram("sweep.job_ns")      // per-job wall time
	obsQueueDepth = obs.NewGauge("sweep.queue_depth")     // unclaimed jobs of the latest pass
	obsWorkers    = obs.NewGauge("sweep.workers_current") // workers of the latest parallel pass
)

// observing reports whether per-job timing should be collected: either the
// metric registry is live or a span sink is installed. One branch per job.
func observing() bool { return obs.Enabled() || obs.Tracing() }

// defaultWorkers holds the process-wide worker count used by Run when the
// caller does not specify one. Zero (the initial value) means "use
// runtime.GOMAXPROCS(0)". cmd/capsim's -parallel flag sets it.
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the process-wide default worker count. n < 1
// restores the automatic default (GOMAXPROCS).
func SetDefaultWorkers(n int) {
	if n < 1 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// DefaultWorkers returns the worker count Run will use: the value set by
// SetDefaultWorkers, or runtime.GOMAXPROCS(0) when unset.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes jobs 0..n-1 with the default worker count and collects their
// results by index. See RunN.
func Run[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return RunN(DefaultWorkers(), n, fn)
}

// RunN executes jobs 0..n-1 on at most `workers` concurrent goroutines.
// results[i] always holds job i's value. The returned error is the
// lowest-indexed job error, or nil: the parallel path runs every job and
// then selects by index, while the serial path stops at the first error —
// which, running in order, is by construction the lowest-indexed one. Both
// paths therefore report the identical error for identical inputs.
//
// RunN may be nested: a job may itself call Run/RunN. Each invocation spawns
// its own bounded goroutine set and holds no locks while jobs execute, so
// nesting cannot deadlock; it merely oversubscribes the scheduler briefly.
func RunN[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	obsRuns.Inc1()
	if workers == 1 {
		// Serial fast path: no goroutines, no synchronization. This is the
		// baseline the determinism tests compare parallel runs against. The
		// telemetry branch below never influences fn — it only measures it.
		if observing() {
			tid := obs.WorkerTIDs(1, "sweep-serial")
			for i := 0; i < n; i++ {
				sp := obs.StartSpan("sweep.job", tid)
				t0 := time.Now()
				v, err := fn(i)
				ns := time.Since(t0).Nanoseconds()
				sp.End(obs.Arg{K: "i", V: i})
				obsJobs.Inc(0)
				obsBusyNS.Add(0, ns)
				obsJobNS.Observe(ns)
				if err != nil {
					return nil, err
				}
				results[i] = v
			}
			return results, nil
		}
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return results, nil
	}

	obsWorkers.Set(int64(workers))
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	// Reserve a block of fresh trace thread ids for this pass so nested
	// RunN invocations render on distinct timeline tracks. Zero when no
	// trace sink is installed.
	tidBase := obs.WorkerTIDs(workers, "sweep")
	watch := observing()
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if watch {
					// Depth is approximate by design: it samples the shared
					// claim counter, which other workers advance concurrently.
					if left := int64(n) - next.Load(); left > 0 {
						obsQueueDepth.Set(left)
					} else {
						obsQueueDepth.Set(0)
					}
					sp := obs.StartSpan("sweep.job", tidBase+int64(w))
					t0 := time.Now()
					results[i], errs[i] = fn(i)
					ns := time.Since(t0).Nanoseconds()
					sp.End(obs.Arg{K: "i", V: i})
					// Busy time lands on the worker's own counter lane so
					// concurrent adds never share a cache line.
					obsJobs.Inc(w)
					obsBusyNS.Add(w, ns)
					obsJobNS.Observe(ns)
					continue
				}
				results[i], errs[i] = fn(i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Each is Run for jobs without results.
func Each(n int, fn func(i int) error) error {
	_, err := Run(n, func(i int) (struct{}, error) { return struct{}{}, fn(i) })
	return err
}

// Grid is a helper for two-dimensional sweeps over an (outer x inner) cross
// product, the shape of every figure in the paper. Job (o, i) runs at flat
// index o*inner+i; results are returned as a dense [outer][inner] matrix.
func Grid[T any](outer, inner int, fn func(o, i int) (T, error)) ([][]T, error) {
	flat, err := Run(outer*inner, func(j int) (T, error) {
		return fn(j/inner, j%inner)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]T, outer)
	for o := range out {
		out[o] = flat[o*inner : (o+1)*inner : (o+1)*inner]
	}
	return out, nil
}
