// Package sweep is the parallel sweep engine behind the experiment drivers:
// a bounded worker pool that fans independent (benchmark, configuration)
// simulation jobs across CPUs while preserving bit-for-bit determinism.
//
// Every figure of the paper is a sweep over a cross product — 21 applications
// x 16 boundary positions for Figures 7-9, 22 applications x 8 queue sizes
// for Figures 10-11 — whose cells are completely independent: each cell
// builds a fresh machine whose workload generators are seeded by
// (master seed, benchmark name, purpose) via rng.DeriveSeed, so no cell can
// observe another cell's random stream or simulator state.
//
// Determinism contract (see DESIGN.md "Parallel execution & determinism"):
//
//   - jobs are identified by their index in [0, n); the result of job i is
//     stored at results[i] regardless of which worker ran it or when it
//     finished — collection is by index, never by completion order;
//   - jobs derive all randomness from their own arguments (never from shared
//     mutable state), so scheduling cannot perturb any simulated outcome;
//   - error selection is deterministic: the error of the lowest-indexed
//     failing job is returned, even though the pool stops claiming
//     higher-indexed jobs as soon as any error is observed (every job below
//     the current minimum failing index still runs, so the reported error is
//     exactly the one a full serial pass would report).
//
// Consequently Run(n, fn) returns byte-identical results for any worker
// count, including 1 (the serial fallback used by `capsim -parallel 1` and
// the determinism tests).
//
// Cancellation (see DESIGN.md "Experiment service & the cancellation
// contract"): the *Ctx variants stop claiming new jobs once ctx is done and
// return ctx.Err(). Cancellation is inherently racy — which jobs had already
// been claimed depends on scheduling — so a cancelled run never returns
// partial results, only the context's error. A run whose jobs all completed
// before the cancellation was observed returns its full results, mirroring
// the serial loop finishing its last iteration.
package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"capsim/internal/flight"
	"capsim/internal/obs"
)

// Telemetry (internal/obs). Counters/gauges are no-ops unless -obs (or a
// sink flag) enabled them; spans are no-ops unless -trace-out installed a
// sink. Busy-ns adds land on the worker's own counter lane, so the pool's
// telemetry never bounces a cache line between workers.
var (
	obsRuns       = obs.NewCounter("sweep.runs")          // Run/RunN invocations
	obsJobs       = obs.NewCounter("sweep.jobs")          // jobs executed
	obsSkipped    = obs.NewCounter("sweep.jobs_skipped")  // jobs skipped after an error or cancellation
	obsBusyNS     = obs.NewCounter("sweep.busy_ns")       // per-worker time inside fn
	obsJobNS      = obs.NewHistogram("sweep.job_ns")      // per-job wall time
	obsQueueDepth = obs.NewGauge("sweep.queue_depth")     // unclaimed jobs of the latest pass
	obsWorkers    = obs.NewGauge("sweep.workers_current") // workers of the latest parallel pass
)

// observing reports whether per-job timing should be collected: either the
// metric registry is live or a span sink is installed. One branch per job.
func observing() bool { return obs.Enabled() || obs.Tracing() }

// defaultWorkers holds the process-wide worker count used by Run when the
// caller does not specify one. Zero (the initial value) means "use
// runtime.GOMAXPROCS(0)". cmd/capsim's -parallel flag sets it.
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the process-wide default worker count. n < 1
// restores the automatic default (GOMAXPROCS).
func SetDefaultWorkers(n int) {
	if n < 1 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// DefaultWorkers returns the worker count Run will use: the value set by
// SetDefaultWorkers, or runtime.GOMAXPROCS(0) when unset.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// workersKey is the context key of a per-context worker-count override.
type workersKey struct{}

// WithWorkers returns a context whose RunCtx/EachCtx/GridCtx calls use n
// workers instead of the process default. The experiment API server uses it
// to honour a request's `parallel` field without touching the process-wide
// SetDefaultWorkers (which would race between concurrent requests). n < 1
// removes any override.
func WithWorkers(ctx context.Context, n int) context.Context {
	if n < 1 {
		n = 0
	}
	return context.WithValue(ctx, workersKey{}, n)
}

// CtxWorkers returns the WithWorkers override carried by ctx, or 0 when the
// context has none (callers fall back to DefaultWorkers). The experiment API
// server uses it to report the worker count a run actually executed with.
func CtxWorkers(ctx context.Context) int {
	if n, ok := ctx.Value(workersKey{}).(int); ok && n > 0 {
		return n
	}
	return 0
}

// ctxWorkers resolves the effective worker count for ctx: the WithWorkers
// override when present and positive, the process default otherwise.
func ctxWorkers(ctx context.Context) int {
	if n := CtxWorkers(ctx); n > 0 {
		return n
	}
	return DefaultWorkers()
}

// Run executes jobs 0..n-1 with the default worker count and collects their
// results by index. See RunNCtx.
func Run[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return RunNCtx(context.Background(), DefaultWorkers(), n, fn)
}

// RunCtx is Run under a context: the worker count comes from WithWorkers (or
// the process default), and the pool stops claiming jobs once ctx is done.
func RunCtx[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	return RunNCtx(ctx, ctxWorkers(ctx), n, fn)
}

// RunN executes jobs 0..n-1 on at most `workers` concurrent goroutines. See
// RunNCtx.
func RunN[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return RunNCtx(context.Background(), workers, n, fn)
}

// RunNCtx executes jobs 0..n-1 on at most `workers` concurrent goroutines.
// results[i] always holds job i's value. The returned error is the
// lowest-indexed job error, or ctx.Err() if the run was cancelled before
// every job completed, or nil.
//
// Error abort: the pool stops claiming jobs whose index is above the lowest
// failing index observed so far, so an early failure does not burn CPU on
// the rest of the grid. Jobs *below* that index still run — one of them
// could fail with a lower index — which is what keeps the selected error
// identical to the serial path's (the serial loop stops at its first error,
// by construction the lowest-indexed one).
//
// RunNCtx may be nested: a job may itself call Run/RunCtx. Each invocation
// spawns its own bounded goroutine set and holds no locks while jobs
// execute, so nesting cannot deadlock; it merely oversubscribes the
// scheduler briefly.
func RunNCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]T, n)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	obsRuns.Inc1()
	// Flight-recorder progress: one pulse per completed job so a streaming
	// client sees movement during long sweeps. Checked once per pass; plain
	// runs pay one ctx.Value + one atomic load.
	prog := flight.Active(ctx)
	if workers == 1 {
		// Serial fast path: no goroutines, no synchronization. This is the
		// baseline the determinism tests compare parallel runs against. The
		// telemetry branch below never influences fn — it only measures it.
		if observing() {
			tid := obs.WorkerTIDs(1, "sweep-serial")
			for i := 0; i < n; i++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				sp := obs.StartSpan("sweep.job", tid)
				t0 := time.Now()
				v, err := fn(i)
				ns := time.Since(t0).Nanoseconds()
				sp.End(obs.Arg{K: "i", V: i})
				obsJobs.Inc(0)
				obsBusyNS.Add(0, ns)
				obsJobNS.Observe(ns)
				if err != nil {
					return nil, err
				}
				results[i] = v
				if prog {
					flight.PublishProgress(ctx, flight.Progress{Done: i + 1, Total: n, Label: "sweep"})
				}
			}
			return results, nil
		}
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = v
			if prog {
				flight.PublishProgress(ctx, flight.Progress{Done: i + 1, Total: n, Label: "sweep"})
			}
		}
		return results, nil
	}

	obsWorkers.Set(int64(workers))
	errs := make([]error, n)
	var next, executed atomic.Int64
	// minErr is the lowest failing job index observed so far; n means "no
	// error yet". Workers skip any claim above it (the abort), but still run
	// claims below it (the determinism guarantee).
	var minErr atomic.Int64
	minErr.Store(int64(n))
	var wg sync.WaitGroup
	wg.Add(workers)
	// Reserve a block of fresh trace thread ids for this pass so nested
	// RunN invocations render on distinct timeline tracks. Zero when no
	// trace sink is installed.
	tidBase := obs.WorkerTIDs(workers, "sweep")
	watch := observing()
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if int64(i) > minErr.Load() {
					// A lower-indexed job already failed; this one's result
					// could never be returned. Skip without running.
					obsSkipped.Inc(w)
					continue
				}
				if watch {
					// Depth is approximate by design: it samples the shared
					// claim counter, which other workers advance concurrently.
					if left := int64(n) - next.Load(); left > 0 {
						obsQueueDepth.Set(left)
					} else {
						obsQueueDepth.Set(0)
					}
					sp := obs.StartSpan("sweep.job", tidBase+int64(w))
					t0 := time.Now()
					results[i], errs[i] = fn(i)
					ns := time.Since(t0).Nanoseconds()
					sp.End(obs.Arg{K: "i", V: i})
					// Busy time lands on the worker's own counter lane so
					// concurrent adds never share a cache line.
					obsJobs.Inc(w)
					obsBusyNS.Add(w, ns)
					obsJobNS.Observe(ns)
				} else {
					results[i], errs[i] = fn(i)
				}
				done := executed.Add(1)
				if prog {
					flight.PublishProgress(ctx, flight.Progress{Done: int(done), Total: n, Label: "sweep"})
				}
				if errs[i] != nil {
					for {
						cur := minErr.Load()
						if int64(i) >= cur || minErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if idx := minErr.Load(); idx < int64(n) {
		return nil, errs[idx]
	}
	if executed.Load() < int64(n) {
		// Gaps without a recorded job error can only come from cancellation.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Each is Run for jobs without results.
func Each(n int, fn func(i int) error) error {
	return EachCtx(context.Background(), n, fn)
}

// EachCtx is RunCtx for jobs without results.
func EachCtx(ctx context.Context, n int, fn func(i int) error) error {
	_, err := RunCtx(ctx, n, func(i int) (struct{}, error) { return struct{}{}, fn(i) })
	return err
}

// Grid is a helper for two-dimensional sweeps over an (outer x inner) cross
// product, the shape of every figure in the paper. Job (o, i) runs at flat
// index o*inner+i; results are returned as a dense [outer][inner] matrix.
func Grid[T any](outer, inner int, fn func(o, i int) (T, error)) ([][]T, error) {
	return GridCtx(context.Background(), outer, inner, fn)
}

// GridCtx is Grid under a context.
func GridCtx[T any](ctx context.Context, outer, inner int, fn func(o, i int) (T, error)) ([][]T, error) {
	flat, err := RunCtx(ctx, outer*inner, func(j int) (T, error) {
		return fn(j/inner, j%inner)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]T, outer)
	for o := range out {
		out[o] = flat[o*inner : (o+1)*inner : (o+1)*inner]
	}
	return out, nil
}
