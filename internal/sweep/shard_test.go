package sweep

import (
	"fmt"
	"testing"
)

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"0/1": {0, 1},
		"0/4": {0, 4},
		"3/4": {3, 4},
		"7/8": {7, 8},
	}
	for spec, want := range good {
		got, err := ParseShard(spec)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %+v, %v; want %+v", spec, got, err, want)
		}
		if got.String() != spec {
			t.Errorf("String() = %q, want %q", got.String(), spec)
		}
	}
	for _, spec := range []string{"", "1", "4/4", "-1/4", "0/0", "0/-2", "a/b", "1/2/3x"} {
		if s, err := ParseShard(spec); err == nil {
			t.Errorf("ParseShard(%q) = %+v, want error", spec, s)
		}
	}
}

// TestPartitionCompleteAndDisjoint is the contract the merge depends on:
// every key is owned by exactly one of the N shards, for every shard count
// the differential test exercises.
func TestPartitionCompleteAndDisjoint(t *testing.T) {
	keys := make([]string, 0, 500)
	for i := 0; i < 500; i++ {
		keys = append(keys, fmt.Sprintf("study|app%d|cfg=%d", i%7, i))
	}
	for _, n := range []int{1, 2, 3, 4, 8, 13} {
		for _, k := range keys {
			owners := 0
			for b := 0; b < n; b++ {
				if (Shard{Bucket: b, Of: n}).Owns(k) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("key %q owned by %d shards of %d, want exactly 1", k, owners, n)
			}
		}
	}
}

// TestBucketAssignmentDeterministic: the key→bucket map is a pure function —
// the property that lets independently-started worker processes agree on the
// partition with no coordination.
func TestBucketAssignmentDeterministic(t *testing.T) {
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("row|%d", i)
		first := BucketOf(k, 8)
		for rep := 0; rep < 5; rep++ {
			if got := BucketOf(k, 8); got != first {
				t.Fatalf("BucketOf(%q, 8) flapped: %d vs %d", k, got, first)
			}
		}
	}
}

// TestBucketSpread: DeriveSeed-quality bits should spread keys across
// buckets roughly uniformly — no shard should starve or hog the grid.
func TestBucketSpread(t *testing.T) {
	const n, total = 8, 4000
	counts := make([]int, n)
	for i := 0; i < total; i++ {
		counts[BucketOf(fmt.Sprintf("study|bench%d|boundary=%d", i%23, i), n)]++
	}
	for b, c := range counts {
		if c < total/n/2 || c > total/n*2 {
			t.Errorf("bucket %d holds %d of %d keys (expect ~%d)", b, c, total, total/n)
		}
	}
}

func TestActiveShardLifecycle(t *testing.T) {
	defer ClearShard()
	if _, ok := ActiveShard(); ok {
		t.Fatal("shard active before SetShard")
	}
	if !OwnsKey("anything") {
		t.Fatal("unsharded process must own every key")
	}
	if err := SetShard(Shard{Bucket: 2, Of: 4}); err != nil {
		t.Fatal(err)
	}
	got, ok := ActiveShard()
	if !ok || got != (Shard{Bucket: 2, Of: 4}) {
		t.Fatalf("ActiveShard = %+v, %v", got, ok)
	}
	// OwnsKey must agree with the explicit shard.
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%d", i)
		if OwnsKey(k) != got.Owns(k) {
			t.Fatalf("OwnsKey(%q) disagrees with ActiveShard().Owns", k)
		}
	}
	if err := SetShard(Shard{Bucket: 4, Of: 4}); err == nil {
		t.Fatal("out-of-range SetShard accepted")
	}
	ClearShard()
	if _, ok := ActiveShard(); ok {
		t.Fatal("shard still active after ClearShard")
	}
}
