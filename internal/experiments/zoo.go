package experiments

import (
	"context"
	"strings"

	"capsim/internal/core"
	"capsim/internal/flight"
	"capsim/internal/sweep"
	"capsim/internal/workload"
)

func init() {
	register("zoo", "Policy zoo: adaptive contenders raced against fixed baselines and the per-interval oracle", zoo)
}

// The zoo experiment races every adaptive-policy contender through ONE
// lockstep MultiPolicy engine per (application, penalty) cell, alongside the
// fixed-configuration baselines and the synthesized oracle, and renders the
// league/dwell/summary tables from the engines' own flight accumulators
// (flight.LeagueReport — the same rendering path behind `capsim -report`).
// Because the tables are built from published run columns, re-running
// `capsim -report` over a ledger the experiment emitted (-ledger-out)
// reproduces them byte-for-byte.

// zooApps pairs the phase-modulated synthetic profiles (which reward
// adaptation: each phase prefers a different window size) with two paper
// applications as stationarity controls.
func zooApps() []string { return []string{"flutter", "squall", "turb3d", "vortex"} }

// zooSizes is the three-point configuration menu: the fast-clock small
// window, the paper's adaptive midpoint, and the full window.
var zooSizes = []int{16, 64, 128}

// zooPenalties sweeps the clock-switch cost from free through punitive —
// the axis that separates eager switchers from dwellers.
var zooPenalties = []int{0, 50, 200}

// zooContenders builds one fresh stateful instance of every adaptive policy.
// All tunables are zero — the documented defaults (internal/core's
// negative-sentinel convention), so the league measures the out-of-the-box
// controllers. Deliberately NOT penalty-tuned: stretching dwell floors and
// exploration cadences with the switch cost was tried and is fragile — it
// trades the punitive-penalty switch tax for response lag whose regret cost
// varies per policy and per workload (it regressed more cells than it
// fixed). The punitive-penalty column is where the league is supposed to
// separate eager switchers from dwellers; tuning it away would blunt the
// instrument.
func zooContenders() []core.PolicySpec {
	menu := []int{0, 1, 2}
	return []core.PolicySpec{
		{Policy: &core.IntervalPolicy{Configs: menu}},
		{Policy: &core.HysteresisPolicy{Configs: menu}},
		{Policy: &core.PIDPolicy{Configs: menu}},
		{Policy: &core.SlopeBanditPolicy{Configs: menu}},
		{Policy: &core.ProfileThenCommitPolicy{Configs: menu}},
	}
}

// zooPolicyNames canonicalizes the contender list for the study-row key:
// a changed roster must miss the persistent cache.
func zooPolicyNames() string {
	var names []string
	for _, s := range zooContenders() {
		names = append(names, s.Policy.Name())
	}
	return strings.Join(names, ",")
}

// zooIntervals scales the race length with the queue budget so the smoke
// configurations stay cheap, with a floor long enough for every contender to
// leave its bootstrap phase.
func zooIntervals(cfg Config) int64 {
	n := cfg.QueueInstrs / 250
	if n < 60 {
		n = 60
	}
	return n
}

// zooPass runs one (application, penalty) cell: the oracle column, the three
// fixed baselines, and a single Race of all contenders, all through one
// MultiPolicy engine. A private Capture collector reduces every published
// column to its league summary; the fan-out in flight.Publish means a
// process-wide ledger (-ledger-out) records the identical columns.
func zooPass(ctx context.Context, cfg Config, app string, pen int, intervals int64) ([]flight.RunSummary, error) {
	b, err := workload.ByName(app)
	if err != nil {
		return nil, err
	}
	sink := flight.NewCapture()
	cctx := flight.WithCollector(ctx, flight.NewCollector(sink))
	mp, err := core.NewMultiPolicy(b, cfg.Seed, zooSizes, cfg.IntervalInstrs, pen, cfg.Feature)
	if err != nil {
		return nil, err
	}
	if _, err := mp.RunOracle(cctx, intervals); err != nil {
		return nil, err
	}
	for c := range zooSizes {
		if _, err := mp.RunFixed(cctx, c, intervals); err != nil {
			return nil, err
		}
	}
	if _, err := mp.Race(cctx, zooContenders(), intervals); err != nil {
		return nil, err
	}
	return sink.Summaries(), nil
}

// zoo is the driver: fan the (application × penalty) grid across the sweep
// pool (each cell one persistable study row), dedup the summaries, and
// render the three league tables. No notes — the rendered body is exactly
// the tables, which is what lets `capsim -report` reproduce it.
func zoo(ctx context.Context, cfg Config) (Result, error) {
	apps := zooApps()
	intervals := zooIntervals(cfg)
	grid, err := sweep.GridCtx(ctx, len(apps), len(zooPenalties), func(a, p int) ([]flight.RunSummary, error) {
		return zooRow(cfg, apps[a], zooPenalties[p], intervals, func() ([]flight.RunSummary, error) {
			return zooPass(ctx, cfg, apps[a], zooPenalties[p], intervals)
		})
	})
	if err != nil {
		return Result{}, err
	}
	seen := map[string]bool{}
	var runs []flight.RunSummary
	for _, row := range grid {
		for _, cell := range row {
			for _, s := range cell {
				k := flight.SummaryKey(s)
				if seen[k] {
					continue
				}
				seen[k] = true
				runs = append(runs, s)
			}
		}
	}
	return Result{
		ID:     "zoo",
		Title:  "policy zoo league: adaptive contenders vs fixed baselines vs oracle",
		Tables: flight.LeagueReport(runs),
	}, nil
}
