package experiments

import (
	"context"
	"fmt"

	"capsim/internal/bpred"
	"capsim/internal/metrics"
	"capsim/internal/sweep"
	"capsim/internal/tlb"
	"capsim/internal/trace"
	"capsim/internal/workload"
)

func init() {
	register("ablation-tlb", "Adaptive TLB primary/backup sizing (Sections 4.2 and 7 extension)", ablationTLB)
	register("ablation-bpred", "Adaptive branch-predictor table sizing (Section 7 extension)", ablationBpred)
}

// ablationTLB evaluates the paper's Section 4.2 backup strategy: instead of
// hard-disabling the TLB groups beyond the single-cycle primary section,
// keep them as a two-cycle backup. Without the backup, shrinking the primary
// shrinks the whole TLB and large-footprint applications pay page walks;
// with it, every configuration retains full capacity and the fast small
// primary is nearly always the right choice.
func ablationTLB(ctx context.Context, cfg Config) (Result, error) {
	p := tlb.DefaultParams()
	p.Feature = cfg.Feature
	t := metrics.Table{
		ID:    "ablation-tlb",
		Title: "Average translation time (ns): hard-disabled vs backup section",
		Columns: []string{"benchmark", "no-backup best", "no-backup config",
			"backup best", "backup config", "backup advantage"},
	}
	apps := []string{"gcc", "vortex", "stereo", "applu", "appcg"}
	// Every (application, mode, group count) cell replays the application's
	// reference stream from the master seed through a private cursor over the
	// shared materialized store (trace.RefSourceFor) and shares no mutable
	// state with its neighbours: fan the whole application x (2 modes x
	// Groups) grid across the sweep pool and reduce each row to its per-mode
	// best serially (the reduction scans groups in ascending order, so the
	// first-strictly-smaller tie-break matches the old serial loop).
	grid, err := sweep.GridCtx(ctx, len(apps), 2*p.Groups, func(a, j int) (float64, error) {
		b, err := workload.ByName(apps[a])
		if err != nil {
			return 0, err
		}
		g, backup := j%p.Groups+1, j >= p.Groups
		key := fmt.Sprintf("tlb|seed=%d|warm=%d|refs=%d|p=%+v|backup=%v|groups=%d|app=%s",
			cfg.Seed, cfg.CacheWarmRefs, cfg.CacheRefs, p, backup, g, b.Name)
		return scalarRow(key, func() (float64, error) {
			tr := trace.RefSourceFor(b, cfg.Seed)
			var tb *tlb.TLB
			var err error
			if backup {
				tb, err = tlb.New(p, g)
			} else {
				tb, err = tlb.NewWithoutBackup(p, g)
			}
			if err != nil {
				return 0, err
			}
			for i := int64(0); i < cfg.CacheWarmRefs; i++ {
				tb.Lookup(tr.Next().Addr)
			}
			tb.ResetStats()
			for i := int64(0); i < cfg.CacheRefs; i++ {
				tb.Lookup(tr.Next().Addr)
			}
			return tlb.Evaluate(p, g, tb.Stats()), nil
		})
	})
	if err != nil {
		return Result{}, err
	}
	for a, name := range apps {
		best := func(backup bool) (int, float64) {
			off := 0
			if backup {
				off = p.Groups
			}
			bg, bt := 0, 0.0
			for g := 1; g <= p.Groups; g++ {
				if v := grid[a][off+g-1]; bg == 0 || v < bt {
					bg, bt = g, v
				}
			}
			return bg, bt
		}
		ng, nt := best(false)
		bg, bt := best(true)
		t.Rows = append(t.Rows, []string{
			name, metrics.F(nt), fmt.Sprintf("%d entries", ng*p.GroupEntries),
			metrics.F(bt), fmt.Sprintf("%d+%d entries", bg*p.GroupEntries, (p.Groups-bg)*p.GroupEntries),
			metrics.Pct(metrics.Reduction(nt, bt)),
		})
	}
	return Result{
		ID: "ablation-tlb", Title: t.Title, Tables: []metrics.Table{t},
		Notes: []string{"backup section: evicted translations fall to a 2-cycle section instead of being dropped (paper Section 4.2)"},
	}, nil
}

// ablationBpred sizes the adaptive gshare table under varying aliasing
// pressure (static branch population standing in for application size).
func ablationBpred(ctx context.Context, cfg Config) (Result, error) {
	p := bpred.DefaultParams()
	p.Feature = cfg.Feature
	sizes := p.Sizes()
	t := metrics.Table{
		ID:      "ablation-bpred",
		Title:   "Average per-branch time (ns) by active table size",
		Columns: append([]string{"static branches"}, append(sizeLabels(sizes), "best")...),
	}
	// Each (static population, table size) cell owns its predictor and
	// branch generator: sweep the grid and assemble rows by index.
	statics := []int{200, 800, 1600, 3200}
	grid, err := sweep.GridCtx(ctx, len(statics), len(sizes), func(s, i int) (float64, error) {
		key := fmt.Sprintf("bpred|seed=%d|p=%+v|size=%d|static=%d",
			cfg.Seed, p, sizes[i], statics[s])
		return scalarRow(key, func() (float64, error) {
			pr := bpred.MustNew(p, sizes[i])
			g := bpred.NewBranchGen(cfg.Seed, statics[s], 0.3)
			const warm, measure = 120_000, 200_000
			for j := 0; j < warm; j++ {
				pc, taken := g.Next()
				pr.Predict(pc, taken)
			}
			pr.ResetStats()
			for j := 0; j < measure; j++ {
				pc, taken := g.Next()
				pr.Predict(pc, taken)
			}
			return bpred.Evaluate(p, sizes[i], pr.Stats()), nil
		})
	})
	if err != nil {
		return Result{}, err
	}
	for s, static := range statics {
		row := []string{fmt.Sprintf("%d", static)}
		best, bestT := 0, 0.0
		for i, n := range sizes {
			v := grid[s][i]
			row = append(row, metrics.F(v))
			if i == 0 || v < bestT {
				best, bestT = n, v
			}
		}
		row = append(row, fmt.Sprintf("%d", best))
		t.Rows = append(t.Rows, row)
	}
	return Result{
		ID: "ablation-bpred", Title: t.Title, Tables: []metrics.Table{t},
		Notes: []string{"moderate aliasing pays for a larger, slower table; tiny programs and hopelessly aliased ones both favour the fast small table"},
	}, nil
}

func sizeLabels(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, n := range sizes {
		out[i] = fmt.Sprintf("%dK", n/1024)
	}
	return out
}
