package experiments

import (
	"fmt"

	"capsim/internal/bpred"
	"capsim/internal/metrics"
	"capsim/internal/tlb"
	"capsim/internal/workload"
)

func init() {
	register("ablation-tlb", "Adaptive TLB primary/backup sizing (Sections 4.2 and 7 extension)", ablationTLB)
	register("ablation-bpred", "Adaptive branch-predictor table sizing (Section 7 extension)", ablationBpred)
}

// ablationTLB evaluates the paper's Section 4.2 backup strategy: instead of
// hard-disabling the TLB groups beyond the single-cycle primary section,
// keep them as a two-cycle backup. Without the backup, shrinking the primary
// shrinks the whole TLB and large-footprint applications pay page walks;
// with it, every configuration retains full capacity and the fast small
// primary is nearly always the right choice.
func ablationTLB(cfg Config) (Result, error) {
	p := tlb.DefaultParams()
	p.Feature = cfg.Feature
	t := metrics.Table{
		ID:    "ablation-tlb",
		Title: "Average translation time (ns): hard-disabled vs backup section",
		Columns: []string{"benchmark", "no-backup best", "no-backup config",
			"backup best", "backup config", "backup advantage"},
	}
	apps := []string{"gcc", "vortex", "stereo", "applu", "appcg"}
	for _, name := range apps {
		b, err := workload.ByName(name)
		if err != nil {
			return Result{}, err
		}
		run := func(g int, backup bool) (float64, error) {
			tr := workload.NewAddressTrace(b, cfg.Seed)
			var tb *tlb.TLB
			var err error
			if backup {
				tb, err = tlb.New(p, g)
			} else {
				tb, err = tlb.NewWithoutBackup(p, g)
			}
			if err != nil {
				return 0, err
			}
			for i := int64(0); i < cfg.CacheWarmRefs; i++ {
				tb.Lookup(tr.Next().Addr)
			}
			tb.ResetStats()
			for i := int64(0); i < cfg.CacheRefs; i++ {
				tb.Lookup(tr.Next().Addr)
			}
			return tlb.Evaluate(p, g, tb.Stats()), nil
		}
		best := func(backup bool) (int, float64, error) {
			bg, bt := 0, 0.0
			for g := 1; g <= p.Groups; g++ {
				v, err := run(g, backup)
				if err != nil {
					return 0, 0, err
				}
				if bg == 0 || v < bt {
					bg, bt = g, v
				}
			}
			return bg, bt, nil
		}
		ng, nt, err := best(false)
		if err != nil {
			return Result{}, err
		}
		bg, bt, err := best(true)
		if err != nil {
			return Result{}, err
		}
		t.Rows = append(t.Rows, []string{
			name, metrics.F(nt), fmt.Sprintf("%d entries", ng*p.GroupEntries),
			metrics.F(bt), fmt.Sprintf("%d+%d entries", bg*p.GroupEntries, (p.Groups-bg)*p.GroupEntries),
			metrics.Pct(metrics.Reduction(nt, bt)),
		})
	}
	return Result{
		ID: "ablation-tlb", Title: t.Title, Tables: []metrics.Table{t},
		Notes: []string{"backup section: evicted translations fall to a 2-cycle section instead of being dropped (paper Section 4.2)"},
	}, nil
}

// ablationBpred sizes the adaptive gshare table under varying aliasing
// pressure (static branch population standing in for application size).
func ablationBpred(cfg Config) (Result, error) {
	p := bpred.DefaultParams()
	p.Feature = cfg.Feature
	sizes := p.Sizes()
	t := metrics.Table{
		ID:      "ablation-bpred",
		Title:   "Average per-branch time (ns) by active table size",
		Columns: append([]string{"static branches"}, append(sizeLabels(sizes), "best")...),
	}
	for _, static := range []int{200, 800, 1600, 3200} {
		row := []string{fmt.Sprintf("%d", static)}
		best, bestT := 0, 0.0
		for i, n := range sizes {
			pr := bpred.MustNew(p, n)
			g := bpred.NewBranchGen(cfg.Seed, static, 0.3)
			const warm, measure = 120_000, 200_000
			for j := 0; j < warm; j++ {
				pc, taken := g.Next()
				pr.Predict(pc, taken)
			}
			pr.ResetStats()
			for j := 0; j < measure; j++ {
				pc, taken := g.Next()
				pr.Predict(pc, taken)
			}
			v := bpred.Evaluate(p, n, pr.Stats())
			row = append(row, metrics.F(v))
			if i == 0 || v < bestT {
				best, bestT = n, v
			}
		}
		row = append(row, fmt.Sprintf("%d", best))
		t.Rows = append(t.Rows, row)
	}
	return Result{
		ID: "ablation-bpred", Title: t.Title, Tables: []metrics.Table{t},
		Notes: []string{"moderate aliasing pays for a larger, slower table; tiny programs and hopelessly aliased ones both favour the fast small table"},
	}, nil
}

func sizeLabels(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, n := range sizes {
		out[i] = fmt.Sprintf("%dK", n/1024)
	}
	return out
}
