package experiments

import (
	"fmt"
	"testing"

	"capsim/internal/obs"
	"capsim/internal/sweep"
)

// shardTestConfig returns the trimmed budgets the shard differential runs
// under — the full registry is rendered once per shard count plus once per
// shard, so this must fit the package budget under -race on one core.
func shardTestConfig() Config {
	cfg := fastConfig()
	cfg.CacheWarmRefs = 5_000
	cfg.CacheRefs = 20_000
	cfg.QueueInstrs = 10_000
	cfg.IntervalInstrs = 400
	return cfg
}

// TestShardMergeByteIdentical is the tentpole acceptance differential: for
// every experiment driver and shard counts {1, 2, 3, 8}, running each shard
// as its own partition (capsim -shard i/N in miniature: sweep.SetShard +
// cold study memos, rows published to a shared persistent store) and then
// merging — a plain unsharded run against the warm store — produces renders
// byte-identical to a never-sharded baseline. ResetStudies between legs
// plays the role of the process boundary; the persistent store is the only
// channel shards share. Run with -race to certify the row layer's memory
// discipline.
func TestShardMergeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every experiment once per shard plus merges")
	}
	cfg := shardTestConfig()
	defer sweep.ClearShard()
	defer SetStudyCacheDir("")

	renderAll := func(leg string) map[string]string {
		out := map[string]string{}
		for _, id := range IDs() {
			res, err := Run(id, cfg)
			if err != nil {
				t.Fatalf("%s %s: %v", leg, id, err)
			}
			out[id] = res.Render()
		}
		return out
	}

	// Baseline: never sharded, no persistent store.
	if err := SetStudyCacheDir(""); err != nil {
		t.Fatal(err)
	}
	ResetCaches()
	want := renderAll("baseline")

	for _, n := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			// Fresh store per shard count: the merge must be reconstructible
			// from this count's own shard runs, not a previous count's.
			if err := SetStudyCacheDir(t.TempDir()); err != nil {
				t.Fatal(err)
			}
			// Shard legs: each computes and publishes only the rows it owns;
			// its render (full of stubs) is discarded, as cmd/capsim does.
			for i := 0; i < n; i++ {
				if err := sweep.SetShard(sweep.Shard{Bucket: i, Of: n}); err != nil {
					t.Fatal(err)
				}
				ResetStudies() // process boundary: study memos must not leak across shards
				for _, id := range IDs() {
					if _, err := Run(id, cfg); err != nil {
						t.Fatalf("shard %d/%d %s: %v", i, n, id, err)
					}
				}
			}
			// Merge: a plain unsharded run against the warm store.
			sweep.ClearShard()
			ResetStudies()
			got := renderAll(fmt.Sprintf("merge after %d shards", n))
			for _, id := range IDs() {
				if got[id] != want[id] {
					t.Errorf("%s: merged render of %d shards differs from single-process render", id, n)
				}
			}
		})
	}
}

// TestPersistentCacheReuseObservable is the warm-cache acceptance check: a
// second cold process (simulated by resetting every in-memory tier) against
// a warm persistent store must reuse the published studies — zero new row
// computes, memo.persist_hits climbing — and render byte-identically.
func TestPersistentCacheReuseObservable(t *testing.T) {
	cfg := shardTestConfig()
	defer SetStudyCacheDir("")
	if err := SetStudyCacheDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)

	run := func() string {
		res, err := Run("fig10", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Render()
	}

	ResetCaches()
	s0 := obs.TakeSnapshot()
	first := run()
	s1 := obs.TakeSnapshot()
	cold := s1.DiffCounters(s0)
	if cold["memo.persist_writes"] == 0 {
		t.Fatalf("cold run published no rows: %v", cold)
	}
	if cold["memo.persist_hits"] != 0 {
		t.Fatalf("cold run against an empty store claimed persist hits: %v", cold)
	}

	ResetCaches() // process boundary: in-memory memos and trace stores gone
	second := run()
	s2 := obs.TakeSnapshot()
	warm := s2.DiffCounters(s1)
	if warm["memo.persist_hits"] == 0 {
		t.Fatalf("warm run reused nothing: %v", warm)
	}
	if warm["memo.persist_writes"] != 0 {
		t.Errorf("warm run recomputed and republished rows: %v", warm)
	}
	if second != first {
		t.Error("warm-store render differs from cold render")
	}
}

// TestStudyCacheDirLifecycle: enabling, querying and disabling the
// persistent tier; a bad directory is rejected without replacing the store.
func TestStudyCacheDirLifecycle(t *testing.T) {
	defer SetStudyCacheDir("")
	if StudyCacheDir() != "" {
		t.Fatal("store active before SetStudyCacheDir")
	}
	dir := t.TempDir()
	if err := SetStudyCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	if StudyCacheDir() == "" {
		t.Fatal("StudyCacheDir empty after enabling")
	}
	if err := SetStudyCacheDir("/dev/null/not-a-dir"); err == nil {
		t.Error("unusable directory accepted")
	}
	if err := SetStudyCacheDir(""); err != nil {
		t.Fatal(err)
	}
	if StudyCacheDir() != "" {
		t.Fatal("store still active after disabling")
	}
}
