package experiments

import (
	"context"
	"fmt"

	"capsim/internal/core"
	"capsim/internal/metrics"
	"capsim/internal/workload"
)

func init() {
	register("fig12", "turb3d interval snapshots, 64- vs 128-entry queue (Figure 12)", fig12)
	register("fig13", "vortex interval snapshots, 16- vs 64-entry queue (Figure 13)", fig13)
}

// intervalTraces runs the fixed queue configurations interval-by-interval
// over the application's stream and returns per-configuration, per-interval
// TPI for intervals [0, n) — one shared-stream pass for the whole family
// under -onepass, independent machines fanned across the sweep pool
// otherwise (see core.ProfileQueueTraces). The whole family pass is one
// study row (traceRow): shard-partitionable and persistently reusable.
func intervalTraces(ctx context.Context, cfg Config, app string, entries []int, n int64) ([][]float64, error) {
	b, err := workload.ByName(app)
	if err != nil {
		return nil, err
	}
	return traceRow(b, cfg.Seed, entries, n, cfg.IntervalInstrs, cfg.PenaltyCycles, cfg.Feature,
		func() ([][]float64, error) {
			return core.ProfileQueueTraces(ctx, b, cfg.Seed, entries, n, cfg.IntervalInstrs, cfg.PenaltyCycles, cfg.Feature)
		})
}

// snapshotFigure builds one snapshot panel comparing two configurations over
// the interval range [lo, hi).
func snapshotFigure(id, title string, lo, hi int64, nameA, nameB string, a, b []float64) metrics.Figure {
	var xs, ya, yb []float64
	for i := lo; i < hi && i < int64(len(a)); i++ {
		xs = append(xs, float64(i))
		ya = append(ya, a[i])
		yb = append(yb, b[i])
	}
	return metrics.Figure{
		ID:     id,
		Title:  title,
		XLabel: "interval (of IntervalInstrs instructions)",
		YLabel: "TPI (ns)",
		Series: []metrics.Series{
			{Name: nameA, X: xs, Y: ya},
			{Name: nameB, X: xs, Y: yb},
		},
	}
}

// snapshotNote summarizes which configuration wins a snapshot and by how
// much, plus how often the winner flips — the quantities the paper's
// Section 6 prose reads off the plots.
func snapshotNote(label, nameA, nameB string, lo, hi int64, a, b []float64) string {
	var sumA, sumB float64
	flips, prev := 0, 0
	for i := lo; i < hi && i < int64(len(a)); i++ {
		sumA += a[i]
		sumB += b[i]
		cur := 1
		if a[i] <= b[i] {
			cur = -1
		}
		if prev != 0 && cur != prev {
			flips++
		}
		prev = cur
	}
	n := float64(hi - lo)
	avgA, avgB := sumA/n, sumB/n
	winner, margin := nameA, metrics.Reduction(avgB, avgA)
	if avgB < avgA {
		winner, margin = nameB, metrics.Reduction(avgA, avgB)
	}
	return fmt.Sprintf("%s: %s wins by %.1f%% on average (%s=%.4f %s=%.4f ns); best-config flips %d times",
		label, winner, 100*margin, nameA, avgA, nameB, avgB, flips)
}

func fig12(ctx context.Context, cfg Config) (Result, error) {
	// turb3d alternates 64- and 128-entry-favouring phases in blocks of
	// PeriodInstrs; snapshot (a) sits inside the first (base) block,
	// snapshot (b) inside the second (alt) block.
	b, err := workload.ByName("turb3d")
	if err != nil {
		return Result{}, err
	}
	block := b.ILP.PeriodInstrs / cfg.IntervalInstrs // intervals per phase block
	loA, hiA := block/5, block/5+200
	loB, hiB := block+block/5, block+block/5+200
	total := hiB + 10

	traces, err := intervalTraces(ctx, cfg, "turb3d", []int{64, 128}, total)
	if err != nil {
		return Result{}, err
	}
	t64, t128 := traces[0], traces[1]
	figA := snapshotFigure("fig12a", "turb3d snapshot (a): 64-entry phase", loA, hiA, "64 entries", "128 entries", t64, t128)
	figB := snapshotFigure("fig12b", "turb3d snapshot (b): 128-entry phase", loB, hiB, "64 entries", "128 entries", t64, t128)
	return Result{
		ID:      "fig12",
		Title:   "Two snapshots of turb3d's execution (64 vs 128 entries)",
		Figures: []metrics.Figure{figA, figB},
		Notes: []string{
			snapshotNote("snapshot (a)", "64", "128", loA, hiA, t64, t128),
			snapshotNote("snapshot (b)", "64", "128", loB, hiB, t64, t128),
		},
	}, nil
}

func fig13(ctx context.Context, cfg Config) (Result, error) {
	// vortex alternates regular stretches (the best configuration flips
	// about every 15 intervals) with irregular stretches; snapshot (a)
	// sits in the regular super-block, snapshot (b) in the irregular one.
	b, err := workload.ByName("vortex")
	if err != nil {
		return Result{}, err
	}
	super := b.ILP.SuperPeriodInstrs / cfg.IntervalInstrs
	loA, hiA := super/4, super/4+150
	loB, hiB := super+super/6, super+super/6+300
	total := hiB + 10

	traces, err := intervalTraces(ctx, cfg, "vortex", []int{16, 64}, total)
	if err != nil {
		return Result{}, err
	}
	t16, t64 := traces[0], traces[1]
	figA := snapshotFigure("fig13a", "vortex snapshot (a): regular alternation", loA, hiA, "16 entries", "64 entries", t16, t64)
	figB := snapshotFigure("fig13b", "vortex snapshot (b): irregular region", loB, hiB, "16 entries", "64 entries", t16, t64)
	return Result{
		ID:      "fig13",
		Title:   "Two snapshots of vortex's execution (16 vs 64 entries)",
		Figures: []metrics.Figure{figA, figB},
		Notes: []string{
			snapshotNote("snapshot (a)", "16", "64", loA, hiA, t16, t64),
			snapshotNote("snapshot (b)", "16", "64", loB, hiB, t16, t64),
		},
	}, nil
}
