package experiments

import (
	"context"
	"fmt"

	"capsim/internal/cacti"
	"capsim/internal/metrics"
	"capsim/internal/palacharla"
	"capsim/internal/tech"
	"capsim/internal/wire"
)

func init() {
	register("fig1a", "Cache wire delay vs number of 2KB subarrays (Figure 1a)",
		func(_ context.Context, cfg Config) (Result, error) { return wireCacheFig("fig1a", 2048, cfg) })
	register("fig1b", "Cache wire delay vs number of 4KB subarrays (Figure 1b)",
		func(_ context.Context, cfg Config) (Result, error) { return wireCacheFig("fig1b", 4096, cfg) })
	register("fig2", "Integer queue wire delay vs number of entries (Figure 2)", fig2)
}

// refFeature is the generation whose layout the wire figures freeze: the
// paper scales buffer (device) delays linearly with feature size while wire
// delays remain constant, i.e. it evaluates successively faster devices on
// the same physical wires. This is also why its unbuffered curve is unique.
const refFeature = tech.Micron025

// arrayBusLoad is the address-bus load per cache subarray, in repeater input
// capacitances.
const arrayBusLoad = 8.0

// wireCacheFig regenerates Figure 1(a) or 1(b): unbuffered vs optimally
// buffered address-bus delay over a stack of cache subarrays.
func wireCacheFig(id string, subarrayBytes int, _ Config) (Result, error) {
	ref := tech.ForFeature(refFeature)
	bank := cacti.Config{SizeBytes: subarrayBytes, BlockBytes: 32, Assoc: 2}
	_, pitch := cacti.Dimensions(bank, ref)

	ns := []int{4, 6, 8, 10, 12, 14, 16}
	xs := make([]float64, len(ns))
	unbuf := make([]float64, len(ns))
	for i, n := range ns {
		xs[i] = float64(n)
		l := wire.Line{LengthMM: float64(n) * pitch, LoadC: float64(n) * arrayBusLoad * ref.BufferC}
		unbuf[i] = wire.UnbufferedDelay(l, ref)
	}
	fig := metrics.Figure{
		ID:     id,
		Title:  fmt.Sprintf("Address-bus wire delay, %dKB subarrays", subarrayBytes/1024),
		XLabel: "number of cache arrays",
		YLabel: "wire delay (ns)",
		Series: []metrics.Series{{Name: "Unbuffered", X: xs, Y: unbuf}},
	}
	for _, f := range tech.Generations() {
		p := tech.ForFeature(f)
		ys := make([]float64, len(ns))
		for i, n := range ns {
			// Frozen geometry, scaled devices: wire length from the
			// reference layout, loads and buffers from generation f.
			l := wire.Line{LengthMM: float64(n) * pitch, LoadC: float64(n) * arrayBusLoad * p.BufferC}
			ys[i], _ = wire.OptimalBufferedDelay(l, p)
		}
		fig.Series = append(fig.Series, metrics.Series{Name: "Buffers, " + f.String(), X: xs, Y: ys})
	}
	return Result{
		ID:      id,
		Title:   fig.Title,
		Figures: []metrics.Figure{fig},
		Notes:   crossoverNotes(fig),
	}, nil
}

// fig2 regenerates Figure 2: integer-queue bus delay vs entry count, with
// each R10000-style entry equivalent to ~60 bytes of single-ported RAM.
func fig2(_ context.Context, _ Config) (Result, error) {
	ref := tech.ForFeature(refFeature)
	ns := []int{16, 24, 32, 40, 48, 56, 64}
	xs := make([]float64, len(ns))
	unbuf := make([]float64, len(ns))
	for i, n := range ns {
		xs[i] = float64(n)
		l := wire.Line{
			LengthMM: palacharla.BusLengthMM(n, ref),
			LoadC:    float64(n) * palacharla.EntryLoadPF(ref),
		}
		unbuf[i] = wire.UnbufferedDelay(l, ref)
	}
	fig := metrics.Figure{
		ID:     "fig2",
		Title:  "Integer queue wire delay vs entries",
		XLabel: "instruction queue entries",
		YLabel: "wire delay (ns)",
		Series: []metrics.Series{{Name: "Unbuffered", X: xs, Y: unbuf}},
	}
	for _, f := range tech.Generations() {
		p := tech.ForFeature(f)
		ys := make([]float64, len(ns))
		for i, n := range ns {
			l := wire.Line{
				LengthMM: palacharla.BusLengthMM(n, ref),
				LoadC:    float64(n) * palacharla.EntryLoadPF(p),
			}
			ys[i], _ = wire.OptimalBufferedDelay(l, p)
		}
		fig.Series = append(fig.Series, metrics.Series{Name: "Buffers, " + f.String(), X: xs, Y: ys})
	}
	return Result{
		ID:      "fig2",
		Title:   fig.Title,
		Figures: []metrics.Figure{fig},
		Notes:   crossoverNotes(fig),
	}, nil
}

// crossoverNotes reports, per buffered series, the first X at which
// buffering beats the unbuffered wire — the quantity the paper's Section 2
// prose highlights.
func crossoverNotes(fig metrics.Figure) []string {
	if len(fig.Series) == 0 {
		return nil
	}
	un := fig.Series[0]
	var notes []string
	for _, s := range fig.Series[1:] {
		cross := -1.0
		for i := range s.X {
			if s.Y[i] < un.Y[i] {
				cross = s.X[i]
				break
			}
		}
		if cross >= 0 {
			notes = append(notes, fmt.Sprintf("%s: buffering wins from %g %s", s.Name, cross, fig.XLabel))
		} else {
			notes = append(notes, fmt.Sprintf("%s: buffering never wins in range", s.Name))
		}
	}
	return notes
}
