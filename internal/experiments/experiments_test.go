package experiments

import (
	"fmt"
	"strings"
	"testing"

	"capsim/internal/metrics"
)

// fastConfig returns a reduced-budget configuration for tests.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.CacheWarmRefs = 20_000
	cfg.CacheRefs = 80_000
	cfg.QueueInstrs = 25_000
	return cfg
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1a", "fig1b", "fig2", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13",
		"ablation-interval", "ablation-switch", "ablation-increment", "ablation-power",
		"ablation-tlb", "ablation-bpred", "ablation-combined",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	for _, id := range IDs() {
		if title, err := Title(id); err != nil || title == "" {
			t.Errorf("%s: bad title (%v)", id, err)
		}
	}
	if _, err := Title("nope"); err == nil {
		t.Error("unknown title accepted")
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", fastConfig()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := fastConfig()
	cfg.CacheRefs = 10
	if _, err := Run("fig1a", cfg); err == nil {
		t.Error("tiny cache budget accepted")
	}
}

func TestWireFigures(t *testing.T) {
	for _, id := range []string{"fig1a", "fig1b", "fig2"} {
		res, err := Run(id, fastConfig())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Figures) != 1 {
			t.Fatalf("%s: %d figures", id, len(res.Figures))
		}
		fig := res.Figures[0]
		if len(fig.Series) != 4 { // unbuffered + 3 generations
			t.Fatalf("%s: %d series", id, len(fig.Series))
		}
		un := fig.Series[0]
		// Unbuffered curve grows superlinearly.
		n := len(un.Y)
		if un.Y[n-1] <= un.Y[0]*float64(n) {
			t.Errorf("%s: unbuffered curve not superlinear: %v", id, un.Y)
		}
		// Buffered curves are ordered by feature size at the largest X
		// (smaller feature = faster devices).
		last := func(s metrics.Series) float64 { return s.Y[len(s.Y)-1] }
		if !(last(fig.Series[1]) > last(fig.Series[2]) && last(fig.Series[2]) > last(fig.Series[3])) {
			t.Errorf("%s: buffered curves not ordered by generation", id)
		}
		// At the largest size every generation's buffering must win.
		if last(fig.Series[2]) >= last(un) {
			t.Errorf("%s: 0.18u buffering loses at max size", id)
		}
		if len(res.Notes) == 0 {
			t.Errorf("%s: no crossover notes", id)
		}
		if !strings.Contains(res.Render(), fig.ID) {
			t.Errorf("%s: render missing figure id", id)
		}
	}
}

func TestFig1aCrossoverMatchesPaper(t *testing.T) {
	// Paper Section 2: with 2KB subarrays at 0.18 micron, caches of 16KB
	// (8 arrays) and larger benefit from buffering.
	res, err := Run("fig1a", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figures[0]
	un, b18 := fig.Series[0], fig.Series[2]
	if !strings.Contains(b18.Name, "0.18") {
		t.Fatalf("series order changed: %s", b18.Name)
	}
	for i, x := range un.X {
		buffered := b18.Y[i] < un.Y[i]
		if x <= 6 && buffered {
			t.Errorf("0.18u buffering already wins at %v arrays", x)
		}
		if x >= 10 && !buffered {
			t.Errorf("0.18u buffering still loses at %v arrays", x)
		}
	}
}

func TestCacheFigures(t *testing.T) {
	cfg := fastConfig()
	res7, err := Run("fig7", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res7.Figures) != 2 {
		t.Fatalf("fig7 panels: %d", len(res7.Figures))
	}
	ints, fps := res7.Figures[0], res7.Figures[1]
	if len(ints.Series) != 7 { // 8 SPECint minus go
		t.Errorf("fig7a has %d series, want 7", len(ints.Series))
	}
	if len(fps.Series) != 14 {
		t.Errorf("fig7b has %d series, want 14", len(fps.Series))
	}
	for _, s := range append(ints.Series, fps.Series...) {
		if len(s.X) != 8 {
			t.Fatalf("%s: %d points", s.Name, len(s.X))
		}
		if s.X[0] != 8 || s.X[7] != 64 {
			t.Fatalf("%s: L1 sizes %v", s.Name, s.X)
		}
		for _, y := range s.Y {
			if y <= 0 || y > 5 {
				t.Fatalf("%s: implausible TPI %v", s.Name, y)
			}
		}
	}

	res9, err := Run("fig9", cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := res9.Tables[0]
	if len(tab.Rows) != 22 { // 21 apps + average
		t.Fatalf("fig9 rows: %d", len(tab.Rows))
	}
	if tab.Rows[21][0] != "average" {
		t.Errorf("last row %v", tab.Rows[21])
	}

	res8, err := Run("fig8", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res8.Tables[0].Rows) != 22 {
		t.Fatalf("fig8 rows: %d", len(res8.Tables[0].Rows))
	}
}

func TestCacheHeadlineShape(t *testing.T) {
	// The adaptive scheme must never lose to the conventional baseline
	// (it can always pick the baseline), and the workload-average gain
	// must be positive with stereo among the big winners.
	res, err := Run("fig9", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	var stereoGain string
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[4], "-") {
			t.Errorf("%s: adaptive lost to conventional (%s)", row[0], row[4])
		}
		if row[0] == "stereo" {
			stereoGain = row[4]
		}
	}
	if !strings.HasPrefix(stereoGain, "+4") && !strings.HasPrefix(stereoGain, "+5") && !strings.HasPrefix(stereoGain, "+6") {
		t.Errorf("stereo gain %s, want ~+40-60%% (paper: 46%%)", stereoGain)
	}
}

func TestQueueFigures(t *testing.T) {
	cfg := fastConfig()
	res10, err := Run("fig10", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res10.Figures) != 2 {
		t.Fatalf("fig10 panels: %d", len(res10.Figures))
	}
	if n := len(res10.Figures[0].Series); n != 8 { // 8 SPECint
		t.Errorf("fig10a series %d, want 8", n)
	}
	if n := len(res10.Figures[1].Series); n != 14 {
		t.Errorf("fig10b series %d, want 14", n)
	}

	res11, err := Run("fig11", cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := res11.Tables[0]
	if len(tab.Rows) != 23 { // 22 apps + average
		t.Fatalf("fig11 rows: %d", len(tab.Rows))
	}
	gainers := map[string]bool{}
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[4], "-") {
			t.Errorf("%s: adaptive lost to conventional", row[0])
		}
		if strings.HasPrefix(row[4], "+") && row[4] != "+0.0%" {
			gainers[row[0]] = true
		}
	}
	// The paper's biggest queue winners.
	for _, app := range []string{"appcg", "fpppp", "radar"} {
		if !gainers[app] {
			t.Errorf("%s shows no adaptive gain", app)
		}
	}
}

func TestIntervalFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("interval snapshots are slow")
	}
	cfg := fastConfig()
	res12, err := Run("fig12", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res12.Figures) != 2 || len(res12.Notes) != 2 {
		t.Fatalf("fig12 shape: %d figures %d notes", len(res12.Figures), len(res12.Notes))
	}
	// Snapshot (a) is in the 64-favouring phase, (b) in the 128 phase.
	if !strings.Contains(res12.Notes[0], "64 wins") {
		t.Errorf("fig12(a): %s", res12.Notes[0])
	}
	if !strings.Contains(res12.Notes[1], "128 wins") {
		t.Errorf("fig12(b): %s", res12.Notes[1])
	}

	res13, err := Run("fig13", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res13.Figures) != 2 {
		t.Fatalf("fig13 figures: %d", len(res13.Figures))
	}
	// The irregular snapshot flips frequently.
	if !strings.Contains(res13.Notes[1], "flips") {
		t.Errorf("fig13(b): %s", res13.Notes[1])
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	cfg := fastConfig()
	for _, id := range []string{"ablation-switch", "ablation-increment", "ablation-power", "ablation-tlb", "ablation-bpred"} {
		res, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Figures)+len(res.Tables) == 0 {
			t.Errorf("%s: empty result", id)
		}
	}
}

func TestAblationIntervalOracleBound(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := Run("ablation-interval", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	for _, row := range tab.Rows {
		var fixed, adaptive, oracle float64
		if _, err := sscan(row[2], &fixed); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[3], &adaptive); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[4], &oracle); err != nil {
			t.Fatal(err)
		}
		// The oracle (no switch costs, perfect prediction) lower-bounds
		// everything; the adaptive policy must not be wildly worse than
		// the best fixed configuration.
		if oracle > fixed+1e-9 {
			t.Errorf("%s: oracle %v worse than best fixed %v", row[0], oracle, fixed)
		}
		if adaptive > fixed*1.15 {
			t.Errorf("%s: interval policy %v much worse than fixed %v", row[0], adaptive, fixed)
		}
	}
}

func sscan(s string, f *float64) (int, error) {
	return fmt.Sscan(s, f)
}
