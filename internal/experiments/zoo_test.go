package experiments

import (
	"context"
	"strings"
	"testing"

	"capsim/internal/flight"
)

// zooTestConfig is the smallest budget the zoo runs at: 60 intervals, long
// enough for every contender to leave its bootstrap phase.
func zooTestConfig() Config {
	cfg := DefaultConfig()
	cfg.QueueInstrs = 10_000
	return cfg
}

// TestZooPassInvariants pins one cell's regret accounting: the oracle column
// has zero regret by construction, every other column's regret is
// non-negative, and the cell publishes exactly oracle + fixed baselines +
// contenders.
func TestZooPassInvariants(t *testing.T) {
	cfg := zooTestConfig()
	intervals := zooIntervals(cfg)
	runs, err := zooPass(context.Background(), cfg, "flutter", 50, intervals)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + len(zooSizes) + len(zooContenders())
	if len(runs) != want {
		t.Fatalf("%d runs published, want %d", len(runs), want)
	}
	kinds := map[string]int{}
	for _, r := range runs {
		kinds[r.Meta.Kind]++
		if r.End.Intervals != intervals {
			t.Errorf("%s/%s: %d intervals, want %d", r.Meta.Policy, r.Meta.Kind, r.End.Intervals, intervals)
		}
		if r.End.CumRegretNS < 0 || r.MaxRegretNS < 0 {
			t.Errorf("%s/%s: negative regret (%v, %v)", r.Meta.Policy, r.Meta.Kind, r.End.CumRegretNS, r.MaxRegretNS)
		}
		if r.Meta.Kind == flight.KindOracle {
			if r.Meta.Policy != "oracle" || r.End.CumRegretNS != 0 || r.MaxRegretNS != 0 {
				t.Errorf("oracle with non-zero regret: %+v", r)
			}
		}
	}
	if kinds[flight.KindOracle] != 1 || kinds[flight.KindFixed] != len(zooSizes) || kinds[flight.KindRace] != len(zooContenders()) {
		t.Errorf("kind census %v", kinds)
	}
}

// TestZooExperiment runs the full driver at the smoke budget and pins the
// rendered shape plus repeated-pass byte-identity (the contract the
// sharding/report gates build on).
func TestZooExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo race is slow")
	}
	cfg := zooTestConfig()
	res, err := Run("zoo", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 3 || len(res.Figures) != 0 || len(res.Notes) != 0 {
		t.Fatalf("zoo shape: %d tables %d figures %d notes", len(res.Tables), len(res.Figures), len(res.Notes))
	}
	for i, id := range []string{"league", "dwell", "summary"} {
		if res.Tables[i].ID != id {
			t.Errorf("table %d is %q, want %q", i, res.Tables[i].ID, id)
		}
	}
	cells := len(zooApps()) * len(zooPenalties)
	wantRows := cells * (1 + len(zooSizes) + len(zooContenders()))
	if len(res.Tables[0].Rows) != wantRows {
		t.Errorf("league rows %d, want %d", len(res.Tables[0].Rows), wantRows)
	}
	// The league is ranked by total regret within each app: the first row of
	// every app block is an oracle run with zero total regret.
	for _, row := range res.Tables[0].Rows {
		if row[1] == "oracle" && row[9] != "0.0000" {
			t.Errorf("oracle row with regret %s", row[9])
		}
	}
	if !strings.Contains(res.Render(), "oracle") {
		t.Error("render missing oracle rows")
	}

	first := res.Render()
	ResetCaches()
	ResetStudies()
	res2, err := Run("zoo", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second := res2.Render(); second != first {
		t.Errorf("zoo render not reproducible:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}
