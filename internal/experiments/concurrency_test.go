package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRunByteIdentical locks the experiment service's core safety
// claim: RunCtx invoked from many goroutines at once — the API server's
// steady state — renders byte-identically to a serial run. The reference
// pass computes each render, then the caches are reset so the concurrent
// pass re-executes the full compute (singleflighted) rather than replaying
// memo entries. Run with -race to certify the memory discipline of the
// shared study memos, trace stores, and sweep pools under request-level
// concurrency.
func TestConcurrentRunByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the cache and queue studies twice")
	}
	cfg := fastConfig()
	cfg.CacheWarmRefs = 5_000
	cfg.CacheRefs = 20_000
	cfg.QueueInstrs = 10_000
	cfg.IntervalInstrs = 400

	// Mixed workload: two ids sharing the queue study, one cache-study id,
	// one pure-math id — requests for the same and different experiments
	// interleave, as they would against the API server.
	ids := []string{"fig10", "fig11", "fig9", "fig1a"}

	ref := map[string]string{}
	for _, id := range ids {
		res, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("reference %s: %v", id, err)
		}
		ref[id] = res.Render()
	}
	ResetCaches()

	const waves = 3 // each id requested by several goroutines at once
	var wg sync.WaitGroup
	var mu sync.Mutex
	got := map[string][]string{}
	for w := 0; w < waves; w++ {
		for _, id := range ids {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				res, err := RunCtx(context.Background(), id, cfg)
				if err != nil {
					t.Errorf("concurrent %s: %v", id, err)
					return
				}
				mu.Lock()
				got[id] = append(got[id], res.Render())
				mu.Unlock()
			}(id)
		}
	}
	wg.Wait()
	for _, id := range ids {
		if len(got[id]) != waves {
			t.Fatalf("%s: %d/%d concurrent runs succeeded", id, len(got[id]), waves)
		}
		for i, r := range got[id] {
			if r != ref[id] {
				t.Errorf("%s: concurrent render %d differs from serial reference", id, i)
			}
		}
	}
}

// TestRunCtxPreCancelled: a request that is already dead never starts.
func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, "fig1a", DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCancelledRunDoesNotPoisonMemo locks the studyDo contract: a request
// cancelled mid-profiling must not memoize its context error for the
// configuration — the next request with a live context re-runs the compute
// and succeeds. (Before studyDo, the first cancelled request poisoned the
// study-cache key forever.)
func TestCancelledRunDoesNotPoisonMemo(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a queue study")
	}
	cfg := fastConfig()
	cfg.QueueInstrs = 30_000
	ResetCaches()

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := RunCtx(ctx, "fig10", cfg)
	if err == nil {
		// The budget finished inside 1ms on this machine; nothing to
		// poison, nothing to assert.
		t.Skip("run completed before the deadline; cannot exercise poisoning")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want a context error", err)
	}

	res, err := RunCtx(context.Background(), "fig10", cfg)
	if err != nil {
		t.Fatalf("run after cancelled run: %v (memo poisoned)", err)
	}
	if len(res.Figures) == 0 && len(res.Tables) == 0 {
		t.Error("recovered run produced no output")
	}
}
