package experiments

import (
	"context"
	"testing"

	"capsim/internal/ooo"
	"capsim/internal/sweep"
	"capsim/internal/trace"
)

// TestParallelDeterminism locks the tentpole contract of the sweep engine, of
// the shared-trace one-pass path AND of the issue-queue engines: every
// experiment renders byte-identically whether the sweeps run serially
// (workers=1) or fanned out (workers=8), whether the profiling passes replay
// the shared materialized trace stores (onepass, the default) or regenerate
// every stream per cell (the legacy oracle, capsim -onepass=false), and
// whether the out-of-order cores run the event-driven wakeup/select engine
// (default) or the per-cycle window scan (capsim -queue-engine=scan). Each
// pass starts from a cold study memo and cold trace stores — otherwise the
// second pass would trivially replay the first pass's numbers instead of
// re-running the compute under the other schedule. Run with -race to also
// certify the worker pool's and the chunked stores' memory discipline across
// the full driver set.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every experiment five times")
	}
	cfg := fastConfig()
	// Trim budgets further: this test runs the complete registry five times,
	// and must fit the per-package budget under -race on one core.
	// IntervalInstrs drives the Section 6 studies (fixed interval counts x
	// interval length), which dominate the registry's wall time.
	cfg.CacheWarmRefs = 5_000
	cfg.CacheRefs = 20_000
	cfg.QueueInstrs = 10_000
	cfg.IntervalInstrs = 400

	old := sweep.DefaultWorkers()
	oldEng := ooo.DefaultEngine()
	defer sweep.SetDefaultWorkers(old)
	defer trace.SetEnabled(true)
	defer ooo.SetDefaultEngine(oldEng)

	render := func(workers int, onepass bool, eng ooo.Engine) map[string]string {
		sweep.SetDefaultWorkers(workers)
		trace.SetEnabled(onepass)
		ooo.SetDefaultEngine(eng)
		ResetCaches()
		out := map[string]string{}
		for _, id := range IDs() {
			res, err := Run(id, cfg)
			if err != nil {
				t.Fatalf("workers=%d onepass=%v engine=%v %s: %v", workers, onepass, eng, id, err)
			}
			out[id] = res.Render()
		}
		return out
	}
	passes := []struct {
		name    string
		workers int
		onepass bool
		engine  ooo.Engine
	}{
		{"serial/onepass/event", 1, true, ooo.EngineEvent},
		{"parallel/onepass/event", 8, true, ooo.EngineEvent},
		{"parallel/legacy/event", 8, false, ooo.EngineEvent},
		{"parallel/onepass/scan", 8, true, ooo.EngineScan},
		{"serial/legacy/scan", 1, false, ooo.EngineScan},
	}
	ref := render(passes[0].workers, passes[0].onepass, passes[0].engine)
	for _, p := range passes[1:] {
		got := render(p.workers, p.onepass, p.engine)
		for _, id := range IDs() {
			if ref[id] != got[id] {
				t.Errorf("%s: render differs between %s and %s", id, passes[0].name, p.name)
			}
		}
	}
}

// TestExperimentDeterminism locks the reproducibility contract: the same
// configuration renders byte-identical results across runs (the memoized
// study cache must not be the only thing providing this, so the second run
// uses a fresh config value that hashes to the same key).
func TestExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full cache studies")
	}
	for _, id := range []string{"fig1a", "fig2", "fig9", "fig11"} {
		cfg1 := fastConfig()
		r1, err := Run(id, cfg1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		// A distinct-but-equal config: the memo lookup key is value
		// derived, so this exercises the cache path; the wire figures
		// have no memo at all and re-run fully.
		cfg2 := fastConfig()
		r2, err := Run(id, cfg2)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if r1.Render() != r2.Render() {
			t.Errorf("%s: renders differ across identical configs", id)
		}
	}
}

// TestSeedSensitivity checks that the workload seed actually reaches the
// simulations: a different seed must change the measured tables (while
// preserving the qualitative anchors asserted elsewhere).
func TestSeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full queue studies")
	}
	a := fastConfig()
	b := fastConfig()
	b.Seed = a.Seed + 1
	ra, err := Run("fig11", a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run("fig11", b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Render() == rb.Render() {
		t.Error("changing the seed did not change fig11 at all")
	}
}

// TestBudgetScaling checks that doubling the measurement budget moves the
// headline averages only marginally — the stationarity claim DESIGN.md and
// EXPERIMENTS.md rely on when scaling down from the paper's 100 M
// references.
func TestBudgetScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full cache studies")
	}
	small := fastConfig()
	big := fastConfig()
	big.CacheRefs = small.CacheRefs * 2

	avg := func(cfg Config) float64 {
		s, err := runCacheStudy(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, b := range s.apps {
			sum += s.tpi[b.Name][s.convBest]
		}
		return sum / float64(len(s.apps))
	}
	a, b := avg(small), avg(big)
	diff := (a - b) / b
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.05 {
		t.Errorf("conventional-mean TPI moved %.1f%% when doubling the budget (%.4f vs %.4f)", 100*diff, a, b)
	}
}
