package experiments

import (
	"context"
	"fmt"

	"capsim/internal/core"
	"capsim/internal/memo"
	"capsim/internal/metrics"
	"capsim/internal/sweep"
	"capsim/internal/workload"
)

func init() {
	register("fig10", "Average TPI vs instruction queue size per application (Figure 10)", fig10)
	register("fig11", "Average TPI: conventional vs process-level adaptive queue (Figure 11)", fig11)
}

// queueStudy is the shared profiling pass behind Figures 10-11.
type queueStudy struct {
	apps     []workload.Benchmark
	sizes    []int
	tpi      map[string][]float64 // by app, dense by config index
	convBest int                  // config index with smallest average TPI
}

// queueStudies memoizes the profiling pass per configuration key
// (singleflight per key, like cacheStudies): fig10 and fig11 — and the
// interval/combined studies that reuse the table — share one pass instead of
// repeating it.
var queueStudies memo.Memo[string, *queueStudy]

func queueStudyKey(cfg Config) string {
	return fmt.Sprintf("%d/%d/%v", cfg.Seed, cfg.QueueInstrs, cfg.Feature)
}

// runQueueStudy profiles every application at every queue size. Applications
// — 22 for the paper's setup — fan out across the sweep pool; within each,
// core.ProfileQueueTPI evaluates all 8 window sizes in one ooo.MultiCore
// pass over the application's shared instruction stream (or, with the shared
// trace disabled, sweeps them as nested per-configuration jobs). Results are
// collected by index, never by completion order, so output is byte-identical
// at any worker count, either -onepass setting, and either -queue-engine.
func runQueueStudy(ctx context.Context, cfg Config) (*queueStudy, error) {
	return studyDo(ctx, &queueStudies, queueStudyKey(cfg), func() (*queueStudy, error) {
		s := &queueStudy{
			apps:  workload.QueueApps(),
			sizes: core.PaperQueueSizes(),
			tpi:   map[string][]float64{},
		}
		rows, err := sweep.RunCtx(ctx, len(s.apps), func(a int) ([]float64, error) {
			return queueProfileRow(s.apps[a], cfg.Seed, s.sizes, cfg.QueueInstrs, cfg.Feature)
		})
		if err != nil {
			return nil, err
		}
		for a, b := range s.apps {
			s.tpi[b.Name] = rows[a]
		}
		bestI, bestAvg := -1, 0.0
		for i := range s.sizes {
			var sum float64
			for _, b := range s.apps {
				sum += s.tpi[b.Name][i]
			}
			avg := sum / float64(len(s.apps))
			if bestI < 0 || avg < bestAvg {
				bestI, bestAvg = i, avg
			}
		}
		s.convBest = bestI
		return s, nil
	})
}

// fig10 renders per-application TPI vs queue size, split into the paper's
// integer (a) and floating-point (b) panels.
func fig10(ctx context.Context, cfg Config) (Result, error) {
	s, err := runQueueStudy(ctx, cfg)
	if err != nil {
		return Result{}, err
	}
	mk := func(id, title string, fp bool) metrics.Figure {
		fig := metrics.Figure{
			ID:     id,
			Title:  title,
			XLabel: "instruction queue size (entries)",
			YLabel: "Avg TPI (ns)",
		}
		for _, b := range s.apps {
			if b.FloatingPoint != fp {
				continue
			}
			var xs, ys []float64
			for i, w := range s.sizes {
				xs = append(xs, float64(w))
				ys = append(ys, s.tpi[b.Name][i])
			}
			fig.Series = append(fig.Series, metrics.Series{Name: b.Name, X: xs, Y: ys})
		}
		return fig
	}
	return Result{
		ID:    "fig10",
		Title: "Variation of average TPI with instruction queue size",
		Figures: []metrics.Figure{
			mk("fig10a", "Integer benchmarks", false),
			mk("fig10b", "Floating-point benchmarks", true),
		},
		Notes: []string{fmt.Sprintf("best conventional configuration: %d entries", s.sizes[s.convBest])},
	}, nil
}

func fig11(ctx context.Context, cfg Config) (Result, error) {
	s, err := runQueueStudy(ctx, cfg)
	if err != nil {
		return Result{}, err
	}
	t := metrics.Table{
		ID:      "fig11",
		Title:   "Average TPI (ns): conventional vs process-level adaptive queue",
		Columns: []string{"benchmark", "best conventional", "process-level adaptive", "adaptive queue", "reduction"},
	}
	var convSum, adptSum float64
	for _, b := range s.apps {
		bestI := core.SelectBestIndex(s.tpi[b.Name])
		conv := s.tpi[b.Name][s.convBest]
		adpt := s.tpi[b.Name][bestI]
		convSum += conv
		adptSum += adpt
		t.Rows = append(t.Rows, []string{
			b.Name, metrics.F(conv), metrics.F(adpt),
			fmt.Sprintf("%d entries", s.sizes[bestI]),
			metrics.Pct(metrics.Reduction(conv, adpt)),
		})
	}
	n := float64(len(s.apps))
	t.Rows = append(t.Rows, []string{
		"average", metrics.F(convSum / n), metrics.F(adptSum / n), "",
		metrics.Pct(metrics.Reduction(convSum/n, adptSum/n)),
	})
	return Result{
		ID: "fig11", Title: t.Title, Tables: []metrics.Table{t},
		Notes: []string{fmt.Sprintf("conventional baseline: %d entries", s.sizes[s.convBest])},
	}, nil
}
