package experiments

import (
	"context"
	"fmt"

	"capsim/internal/core"
	"capsim/internal/metrics"
	"capsim/internal/sweep"
	"capsim/internal/workload"
)

func init() {
	register("ablation-combined", "Joint cache+queue CAP: per-structure vs joint adaptation (Figure 5)", ablationCombined)
}

// combinedQueueSizes is the reduced queue set for the joint space (the full
// cross product of 8 queue sizes x 8 boundaries is needlessly fine for the
// study; the paper itself notes per-structure configuration counts shrink
// when structures are combined, "the number of configurations for a given
// structure might be limited due to larger delays in other structures").
func combinedQueueSizes() []int { return []int{16, 64, 128} }

// combinedBoundaries is the reduced boundary set for the joint space.
func combinedBoundaries() []int { return []int{1, 2, 6, 8} }

// ablationCombined evaluates the full Figure 5 processor: both adaptive
// structures under one configuration manager, with the clock set by the
// worst case of the enabled configurations. It compares three management
// strategies per application:
//
//   - conventional: the workload-wide best fixed joint configuration;
//   - per-structure: each structure picks its own best as if alone (the
//     naive composition of the paper's two experiments), then the joint
//     clock is applied — cross-structure coupling can void the choice;
//   - joint oracle: the best configuration of the joint space.
func ablationCombined(ctx context.Context, cfg Config) (Result, error) {
	apps := []string{"gcc", "stereo", "appcg", "compress", "swim"}
	qs := combinedQueueSizes()
	bs := combinedBoundaries()

	type profiled struct {
		name  string
		tpi   map[core.CombinedConfig]float64
		joint core.CombinedConfig
	}
	intervals := cfg.QueueInstrs / cfg.IntervalInstrs
	if intervals < 10 {
		intervals = 10
	}

	// One ProfileCombined call per application covers its whole (boundary x
	// queue-size) grid: under -onepass that is a single joint-kernel pass
	// per app (stream decoded once, hierarchy rows shared across queue
	// columns); under the legacy oracle it fans the independent per-point
	// machines across the sweep pool, exactly as the old flat grid did.
	// Joint-space point j maps to (bs[j/len(qs)], qs[j%len(qs)]), preserving
	// the original scan order, so the joint-best tie-break (first
	// strictly-smaller wins) is unchanged.
	points := make([]core.CombinedConfig, 0, len(bs)*len(qs))
	for _, k := range bs {
		for _, w := range qs {
			points = append(points, core.CombinedConfig{QueueEntries: w, Boundary: k})
		}
	}
	grid, err := sweep.RunCtx(ctx, len(apps), func(a int) ([]float64, error) {
		b, err := workload.ByName(apps[a])
		if err != nil {
			return nil, err
		}
		// One study row per application: the whole joint grid pass is the
		// unit of shard distribution and persistent reuse.
		return combinedRow(apps[a], cfg.Seed, points, cfg.CacheParams, intervals, cfg.IntervalInstrs, cfg.PenaltyCycles, cfg.Feature,
			func() ([]float64, error) {
				return core.ProfileCombined(ctx, b, cfg.Seed, qs, cfg.CacheParams, core.PaperMaxBoundary,
					points, intervals, cfg.IntervalInstrs, cfg.PenaltyCycles, cfg.Feature)
			})
	})
	if err != nil {
		return Result{}, err
	}
	profiles := make([]profiled, 0, len(apps))
	for a, app := range apps {
		p := profiled{name: app, tpi: map[core.CombinedConfig]float64{}}
		for j, cc := range points {
			v := grid[a][j]
			p.tpi[cc] = v
			if j == 0 || v < p.tpi[p.joint] {
				p.joint = cc
			}
		}
		profiles = append(profiles, p)
	}

	// Conventional: the single joint configuration with the smallest
	// workload-mean TPI.
	var conv core.CombinedConfig
	bestMean := 0.0
	for _, k := range bs {
		for _, w := range qs {
			cc := core.CombinedConfig{QueueEntries: w, Boundary: k}
			var sum float64
			for _, p := range profiles {
				sum += p.tpi[cc]
			}
			if bestMean == 0 || sum < bestMean {
				conv, bestMean = cc, sum
			}
		}
	}

	t := metrics.Table{
		ID:    "ablation-combined",
		Title: "Joint CAP TPI (ns): conventional vs per-structure vs joint adaptation",
		Columns: []string{"benchmark", "conventional", "per-structure", "joint adaptive",
			"joint config", "joint vs conventional"},
	}
	var convSum, perSum, jointSum float64
	for _, p := range profiles {
		// Per-structure: best queue at the conventional boundary, best
		// boundary at the conventional queue — composed independently.
		bestQ := conv.QueueEntries
		for _, w := range qs {
			if p.tpi[core.CombinedConfig{QueueEntries: w, Boundary: conv.Boundary}] <
				p.tpi[core.CombinedConfig{QueueEntries: bestQ, Boundary: conv.Boundary}] {
				bestQ = w
			}
		}
		bestK := conv.Boundary
		for _, k := range bs {
			if p.tpi[core.CombinedConfig{QueueEntries: conv.QueueEntries, Boundary: k}] <
				p.tpi[core.CombinedConfig{QueueEntries: conv.QueueEntries, Boundary: bestK}] {
				bestK = k
			}
		}
		per := p.tpi[core.CombinedConfig{QueueEntries: bestQ, Boundary: bestK}]
		convV := p.tpi[conv]
		jointV := p.tpi[p.joint]
		convSum += convV
		perSum += per
		jointSum += jointV
		t.Rows = append(t.Rows, []string{
			p.name, metrics.F(convV), metrics.F(per), metrics.F(jointV),
			fmt.Sprintf("IQ=%d/L1=%dKB", p.joint.QueueEntries, p.joint.Boundary*8),
			metrics.Pct(metrics.Reduction(convV, jointV)),
		})
	}
	n := float64(len(profiles))
	t.Rows = append(t.Rows, []string{
		"average", metrics.F(convSum / n), metrics.F(perSum / n), metrics.F(jointSum / n), "",
		metrics.Pct(metrics.Reduction(convSum/n, jointSum/n)),
	})
	return Result{
		ID: "ablation-combined", Title: t.Title, Tables: []metrics.Table{t},
		Notes: []string{
			fmt.Sprintf("conventional baseline: IQ=%d/L1=%dKB (workload-mean best)", conv.QueueEntries, conv.Boundary*8),
			"the joint clock is the worst case of both structures, so per-structure choices can interact",
		},
	}, nil
}
