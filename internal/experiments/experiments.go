// Package experiments regenerates every table and figure of the paper's
// evaluation (Figures 1, 2, 7, 8, 9, 10, 11, 12 and 13), plus the ablation
// studies DESIGN.md calls out. Each experiment is a named driver that
// returns typed figures/tables rendered as aligned text; cmd/capsim exposes
// them on the command line and bench_test.go wraps each in a testing.B
// benchmark.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"capsim/internal/cache"
	"capsim/internal/classify"
	"capsim/internal/core"
	"capsim/internal/memo"
	"capsim/internal/metrics"
	"capsim/internal/obs"
	"capsim/internal/tech"
	"capsim/internal/trace"
)

// Telemetry (internal/obs): one counter bump and one span per experiment —
// the coarsest boundary in the process.
var (
	obsExperiments = obs.NewCounter("experiments.runs")
	obsExpErrors   = obs.NewCounter("experiments.errors")
	obsExpNS       = obs.NewHistogram("experiments.wall_ns")
)

// Config holds the run budgets. The paper uses 100 M references /
// instructions per application; the defaults here are scaled down (the
// synthetic profiles are stationary long before that) and can be raised for
// full runs.
type Config struct {
	// Seed is the master workload seed.
	Seed uint64
	// CacheWarmRefs references warm each cache configuration before
	// measurement begins.
	CacheWarmRefs int64
	// CacheRefs references are measured per cache configuration.
	CacheRefs int64
	// QueueInstrs instructions are measured per queue configuration.
	QueueInstrs int64
	// IntervalInstrs is the interval length for the Section 6 studies
	// (the paper uses 2000 instructions).
	IntervalInstrs int64
	// PenaltyCycles is the clock-switch penalty (<0 = default).
	PenaltyCycles int
	// Feature is the process generation for the performance studies.
	Feature tech.FeatureSize
	// CacheParams is the adaptive-hierarchy geometry.
	CacheParams cache.Params
}

// DefaultConfig returns the standard budgets used by tests and benchmarks.
func DefaultConfig() Config {
	return Config{
		Seed:           1998, // ISCA 1998
		CacheWarmRefs:  100_000,
		CacheRefs:      400_000,
		QueueInstrs:    150_000,
		IntervalInstrs: 2_000,
		PenaltyCycles:  -1,
		Feature:        tech.Micron018,
		CacheParams:    cache.PaperParams(),
	}
}

// CanonicalKey canonicalizes the render-determining fields of the
// configuration into a stable string: everything that changes rendered bytes
// is in, everything render-neutral (workers, onepass, queue engine, shard,
// study cache) is out. The server's response cache and the shard/persist row
// keys both build on this discipline; the server prefixes the experiment id.
func (c Config) CanonicalKey() string {
	return fmt.Sprintf("seed=%d|warm=%d|refs=%d|qi=%d|iv=%d|pen=%d|f=%g|cp=%+v",
		c.Seed, c.CacheWarmRefs, c.CacheRefs, c.QueueInstrs,
		c.IntervalInstrs, c.PenaltyCycles, float64(c.Feature), c.CacheParams)
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	switch {
	case c.CacheRefs < 1000:
		return fmt.Errorf("experiments: CacheRefs %d too small", c.CacheRefs)
	case c.QueueInstrs < 1000:
		return fmt.Errorf("experiments: QueueInstrs %d too small", c.QueueInstrs)
	case c.IntervalInstrs < 100:
		return fmt.Errorf("experiments: IntervalInstrs %d too small", c.IntervalInstrs)
	case c.CacheWarmRefs < 0:
		return fmt.Errorf("experiments: negative warm-up")
	}
	return c.CacheParams.Validate()
}

// Result is the output of one experiment.
type Result struct {
	ID      string
	Title   string
	Figures []metrics.Figure
	Tables  []metrics.Table
	Notes   []string
}

// Render returns the complete text form of the result.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, f := range r.Figures {
		b.WriteString(f.Render())
		b.WriteByte('\n')
	}
	for _, t := range r.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is an experiment driver. Drivers observe ctx at sweep-job
// granularity: cancellation stops the driver's worker pools from claiming
// new simulation jobs (see DESIGN.md "Experiment service & the cancellation
// contract"); a job already executing runs to completion.
type Runner func(ctx context.Context, cfg Config) (Result, error)

var registry = map[string]struct {
	title string
	run   Runner
}{}

func register(id, title string, run Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = struct {
		title string
		run   Runner
	}{title, run}
}

// IDs returns all experiment identifiers, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns the experiment's title.
func Title(id string) (string, error) {
	e, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return e.title, nil
}

// ResetCaches discards the memoized cache- and queue-study profiling passes
// and the shared materialized trace stores. Long-lived processes that sweep
// many configurations can call it to bound memory; the determinism tests call
// it between serial and parallel passes so the comparison re-runs the full
// compute instead of hitting the memo.
func ResetCaches() {
	cacheStudies.Reset()
	queueStudies.Reset()
	trace.Reset()
	classify.Reset()
	core.ResetPolicyFamilies()
}

// Run executes the experiment with the given configuration. It is RunCtx
// under context.Background() — the one-shot CLI path, which nothing cancels.
func Run(id string, cfg Config) (Result, error) {
	return RunCtx(context.Background(), id, cfg)
}

// RunCtx executes the experiment with the given configuration under ctx.
// Cancelling ctx stops the driver's sweep pools from claiming new simulation
// jobs and returns ctx's error; partial results are never returned. RunCtx
// is safe for concurrent use — the experiment API server invokes it from one
// goroutine per request — and concurrent invocations with equal
// configurations share the memoized profiling passes (singleflight).
func RunCtx(ctx context.Context, id string, cfg Config) (Result, error) {
	e, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	obsExperiments.Inc1()
	sp := obs.StartSpan("experiment:"+id, 0)
	t0 := time.Now()
	res, err := e.run(ctx, cfg)
	obsExpNS.Observe(time.Since(t0).Nanoseconds())
	if err != nil {
		obsExpErrors.Inc1()
		sp.End(obs.Arg{K: "err", V: err.Error()})
		return res, err
	}
	sp.End(obs.Arg{K: "figures", V: len(res.Figures)}, obs.Arg{K: "tables", V: len(res.Tables)})
	return res, nil
}

// SetStudyCacheCap bounds the memoized cache- and queue-study passes to at
// most n entries each, with deterministic LRU eviction (memo.SetCap). The
// long-lived API server sets this at startup so a stream of requests with
// distinct seeds or budgets cannot grow the process without bound; the
// one-shot CLI never calls it and keeps the unbounded default.
func SetStudyCacheCap(n int) {
	cacheStudies.SetCap(n)
	queueStudies.SetCap(n)
}

// studyDo wraps a study memo's Do with the cancellation contract: a
// profiling pass that failed with a context error is forgotten instead of
// memoized, because the cancellation belonged to whichever request happened
// to compute the entry — not to the configuration. Callers whose own ctx is
// still live retry (and recompute under their ctx); callers whose ctx caused
// the cancellation return it. Deterministic compute errors stay memoized as
// before.
func studyDo[V any](ctx context.Context, m *memo.Memo[string, V], key string, fn func() (V, error)) (V, error) {
	for {
		v, err := m.Do(key, fn)
		if err == nil || (!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)) {
			return v, err
		}
		m.Forget(key)
		if ctx.Err() != nil {
			return v, err
		}
	}
}
