package experiments

import (
	"fmt"
	"math"
	"sync/atomic"

	"capsim/internal/cache"
	"capsim/internal/classify"
	"capsim/internal/core"
	"capsim/internal/flight"
	"capsim/internal/memo"
	"capsim/internal/sweep"
	"capsim/internal/tech"
	"capsim/internal/workload"
)

// Study rows: the unit of cross-process distribution and persistent reuse.
//
// Every heavy experiment driver decomposes into independent *rows* — one
// (application × configuration-family) profiling pass — fanned across the
// sweep pool. This file wraps each row computation in studyRow, which layers
// two orthogonal mechanisms over the plain compute:
//
//   - Persistent reuse: with a study cache directory set (capsim
//     -study-cache, experiments.SetStudyCacheDir), finished rows are
//     published to a content-addressed store (internal/memo.Store) and later
//     processes — repeated CLI runs, CI, shard workers — load them instead
//     of recomputing. Values are gob-encoded, so float64 round-trips
//     bit-exactly and the byte-identical-render contract survives the disk
//     hop.
//
//   - Shard partition: with a process shard set (capsim -shard i/N,
//     sweep.SetShard), a row is computed (and persisted) only if the active
//     shard owns its key (sweep.OwnsKey); unowned rows return shape-correct
//     zero stubs and the shard's render is discarded. The merge is a plain
//     unsharded run against the warm store: every row hits disk and the
//     driver renders normally — byte-identical to a never-sharded run, and
//     self-healing (a row no shard published is simply recomputed).
//
// Row keys are canonical strings over exactly the row's render-determining
// inputs (the same canonicalization discipline as server.cacheKey /
// Config.CanonicalKey). Two drivers that need the same pass share one key —
// ablation-power and half of ablation-increment reuse the fig7 cache-study
// rows — so a warm store accelerates across experiments, not just within
// one.
//
// CONTRACT: studyRow calls must never nest. A row's fn must not invoke
// another studyRow-wrapped helper: under sharding, the outer row's owner may
// not own the inner key, and would silently persist a value computed from a
// stub. Wrap leaf computations only; compose above the row layer.

// studyStore is the process-wide persistent row store, nil when disabled;
// studyBudget is the byte ceiling applied to it (and to stores opened later).
var (
	studyStore  atomic.Pointer[memo.Store]
	studyBudget atomic.Int64
)

// SetStudyCacheDir backs the study-row memo tier with a persistent
// content-addressed store rooted at dir (created if needed); "" disables
// persistence. Safe to call concurrently with runs: rows started before the
// switch finish against the store they began with.
func SetStudyCacheDir(dir string) error {
	if dir == "" {
		studyStore.Store(nil)
		classify.SetStore(nil)
		return nil
	}
	s, err := memo.OpenStore(dir)
	if err != nil {
		return err
	}
	s.SetBudget(studyBudget.Load())
	studyStore.Store(s)
	// The classification tier shares the same content-addressed store: its
	// keys are namespaced ("classify|v1|..."), so study rows and class
	// streams coexist in one directory and one byte budget.
	classify.SetStore(s)
	return nil
}

// SetStudyCacheBudget bounds the persistent study cache's disk footprint to n
// bytes (0 = unbounded, the default): whenever a row publication pushes the
// store past the ceiling, its least-recently-used entries are pruned, oldest
// access first, ties broken by path — deterministic, so replicas sharing one
// directory agree on what goes. Applies to the active store immediately and
// to any store SetStudyCacheDir opens later.
func SetStudyCacheBudget(n int64) {
	studyBudget.Store(n)
	if s := studyStore.Load(); s != nil {
		s.SetBudget(n)
	}
}

// StudyCacheDir returns the active persistent store's versioned root, or ""
// when persistence is disabled.
func StudyCacheDir() string {
	if s := studyStore.Load(); s != nil {
		return s.Dir()
	}
	return ""
}

// ResetStudies discards the in-memory memoized study passes without touching
// the materialized trace stores or the persistent disk tier. Shard workers
// call it between bucket claims: the study-level memo would otherwise serve
// a study assembled under the previous bucket's ownership (stubs included)
// instead of computing the newly-owned rows. Trace stores stay warm — they
// are keyed by (benchmark, seed) and ownership-independent.
func ResetStudies() {
	cacheStudies.Reset()
	queueStudies.Reset()
}

// studyRow runs one shard-distributable row: skip() when the active shard
// does not own key, otherwise the persistent-store-backed computation.
func studyRow[V any](key string, skip func() V, fn func() (V, error)) (V, error) {
	if !sweep.OwnsKey(key) {
		return skip(), nil
	}
	return memo.PersistDo(studyStore.Load(), key, fn)
}

// cacheRow is one application's cache-boundary profiling pass (dense by
// boundary k, slot 0 = +Inf padding). Exported fields for gob.
type cacheRow struct {
	TPI  []float64
	Miss []float64
}

// cacheProfileRow is the row behind Figures 7-9, ablation-power, and the
// paper-design half of ablation-increment: one ProfileCacheTPI pass. The key
// carries every argument (cache.Params includes the feature size), so the
// same (app, geometry, budget) pass is shared across those drivers.
func cacheProfileRow(b workload.Benchmark, seed uint64, p cache.Params, maxB int, warm, refs int64) (cacheRow, error) {
	key := fmt.Sprintf("cacheprof|seed=%d|warm=%d|refs=%d|maxB=%d|p=%+v|app=%s",
		seed, warm, refs, maxB, p, b.Name)
	return studyRow(key,
		func() cacheRow {
			tpi := make([]float64, maxB+1)
			miss := make([]float64, maxB+1)
			tpi[0], miss[0] = math.Inf(1), math.Inf(1)
			return cacheRow{TPI: tpi, Miss: miss}
		},
		func() (cacheRow, error) {
			tpi, miss, err := core.ProfileCacheTPI(b, seed, p, maxB, warm, refs)
			return cacheRow{TPI: tpi, Miss: miss}, err
		})
}

// queueProfileRow is the row behind Figures 10-11: one ProfileQueueTPI pass
// over all window sizes (dense by size index).
func queueProfileRow(b workload.Benchmark, seed uint64, sizes []int, instrs int64, f tech.FeatureSize) ([]float64, error) {
	key := fmt.Sprintf("queueprof|seed=%d|qi=%d|f=%g|sizes=%v|app=%s",
		seed, instrs, float64(f), sizes, b.Name)
	return studyRow(key,
		func() []float64 { return make([]float64, len(sizes)) },
		func() ([]float64, error) {
			return core.ProfileQueueTPI(b, seed, sizes, instrs, f)
		})
}

// traceRow is the row behind the Section 6 interval studies (fig12, fig13,
// the per-interval oracle): per-configuration, per-interval TPI traces.
func traceRow(b workload.Benchmark, seed uint64, entries []int, n, iv int64, pen int, f tech.FeatureSize, fn func() ([][]float64, error)) ([][]float64, error) {
	key := fmt.Sprintf("qtrace|seed=%d|iv=%d|pen=%d|f=%g|entries=%v|n=%d|app=%s",
		seed, iv, pen, float64(f), entries, n, b.Name)
	return studyRow(key,
		func() [][]float64 {
			rows := make([][]float64, len(entries))
			for i := range rows {
				rows[i] = make([]float64, n)
			}
			return rows
		},
		fn)
}

// policyRow is the row behind ablation-interval and ablation-switch: one
// policy-driven QueueMachine run. label names the policy ("fixed:0",
// "adaptive") — policies are stateful, so the key carries the caller's
// canonical name rather than a formatted struct.
func policyRow(app string, seed uint64, sizes []int, label string, intervals, iv int64, pen int, f tech.FeatureSize, fn func() (core.RunResult, error)) (core.RunResult, error) {
	key := fmt.Sprintf("qpolicy|seed=%d|iv=%d|pen=%d|f=%g|sizes=%v|n=%d|policy=%s|app=%s",
		seed, iv, pen, float64(f), sizes, intervals, label, app)
	return studyRow(key, func() core.RunResult { return core.RunResult{} }, fn)
}

// combinedRow is the row behind ablation-combined: one application's joint
// (boundary × queue) grid, dense by point index.
func combinedRow(app string, seed uint64, points []core.CombinedConfig, p cache.Params, intervals, iv int64, pen int, f tech.FeatureSize, fn func() ([]float64, error)) ([]float64, error) {
	key := fmt.Sprintf("combined|seed=%d|iv=%d|pen=%d|f=%g|p=%+v|points=%+v|n=%d|app=%s",
		seed, iv, pen, float64(f), p, points, intervals, app)
	return studyRow(key,
		func() []float64 { return make([]float64, len(points)) },
		fn)
}

// scalarRow is the generic single-cell row used by the TLB and
// branch-predictor ablations; key is the caller's full canonical cell key.
func scalarRow(key string, fn func() (float64, error)) (float64, error) {
	return studyRow(key, func() float64 { return 0 }, fn)
}

// zooRow is the row behind the zoo experiment: one (application, penalty)
// cell's complete pass — oracle, fixed baselines, and the contender race —
// reduced to league summaries. Summaries are what the tables render from, so
// the persisted value stays small (no event columns) and a warm store
// re-renders byte-identically. The key carries the contender roster: a
// changed zoo must miss the cache.
func zooRow(cfg Config, app string, pen int, intervals int64, fn func() ([]flight.RunSummary, error)) ([]flight.RunSummary, error) {
	key := fmt.Sprintf("zoo|seed=%d|iv=%d|pen=%d|f=%g|sizes=%v|n=%d|policies=%s|app=%s",
		cfg.Seed, cfg.IntervalInstrs, pen, float64(cfg.Feature), zooSizes, intervals, zooPolicyNames(), app)
	return studyRow(key, func() []flight.RunSummary { return nil }, fn)
}
