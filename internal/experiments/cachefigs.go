package experiments

import (
	"context"
	"fmt"

	"capsim/internal/core"
	"capsim/internal/memo"
	"capsim/internal/metrics"
	"capsim/internal/sweep"
	"capsim/internal/workload"
)

func init() {
	register("fig7", "Average TPI vs L1 Dcache size per application (Figure 7)", fig7)
	register("fig8", "Average TPImiss: conventional vs process-level adaptive (Figure 8)", fig8)
	register("fig9", "Average TPI: conventional vs process-level adaptive (Figure 9)", fig9)
}

// cacheStudy is the shared profiling pass behind Figures 7-9: per
// application, TPI and TPImiss at every boundary position. Tables are dense
// slices indexed by boundary k (slot 0 is +Inf padding; boundaries are
// 1-based).
type cacheStudy struct {
	apps    []workload.Benchmark
	tpi     map[string][]float64
	tpiMiss map[string][]float64
	// convBest is the boundary whose workload-average TPI is smallest —
	// the paper's "best-performing conventional configuration".
	convBest int
}

// cacheStudies memoizes the profiling pass per configuration key with
// singleflight semantics: Figures 7, 8 and 9 share one pass, and — unlike
// the old global-mutex pattern — two *distinct* configurations profile
// concurrently instead of queueing behind each other for the whole
// multi-second compute.
var cacheStudies memo.Memo[string, *cacheStudy]

func cacheStudyKey(cfg Config) string {
	return fmt.Sprintf("%d/%d/%d/%v/%+v", cfg.Seed, cfg.CacheWarmRefs, cfg.CacheRefs, cfg.Feature, cfg.CacheParams)
}

// runCacheStudy profiles every application at every boundary. Applications —
// 21 for the paper's setup — fan out across the sweep pool as study rows
// (cacheProfileRow: shard-partitionable, persistently reusable); within each
// application core.ProfileCacheTPI evaluates the whole boundary family in one
// pass over the shared materialized trace (or, with -onepass=false, sweeps
// the 8 boundaries as nested jobs). Results land at their slice index, so the
// output is byte-identical at any worker count and on either path.
func runCacheStudy(ctx context.Context, cfg Config) (*cacheStudy, error) {
	return studyDo(ctx, &cacheStudies, cacheStudyKey(cfg), func() (*cacheStudy, error) {
		s := &cacheStudy{
			apps:    workload.CacheApps(),
			tpi:     map[string][]float64{},
			tpiMiss: map[string][]float64{},
		}
		nB := core.PaperMaxBoundary
		rows, err := sweep.RunCtx(ctx, len(s.apps), func(a int) (cacheRow, error) {
			return cacheProfileRow(s.apps[a], cfg.Seed, cfg.CacheParams, nB, cfg.CacheWarmRefs, cfg.CacheRefs)
		})
		if err != nil {
			return nil, err
		}
		for a, b := range s.apps {
			s.tpi[b.Name] = rows[a].TPI
			s.tpiMiss[b.Name] = rows[a].Miss
		}
		// Best conventional configuration: smallest workload-average TPI.
		bestK, bestAvg := 0, 0.0
		for k := 1; k <= nB; k++ {
			var sum float64
			for _, b := range s.apps {
				sum += s.tpi[b.Name][k]
			}
			avg := sum / float64(len(s.apps))
			if bestK == 0 || avg < bestAvg {
				bestK, bestAvg = k, avg
			}
		}
		s.convBest = bestK
		return s, nil
	})
}

// fig7 renders the per-application TPI-vs-L1-size curves, split into the
// paper's integer (a) and floating-point (b) panels.
func fig7(ctx context.Context, cfg Config) (Result, error) {
	s, err := runCacheStudy(ctx, cfg)
	if err != nil {
		return Result{}, err
	}
	mk := func(id, title string, fp bool) metrics.Figure {
		fig := metrics.Figure{
			ID:     id,
			Title:  title,
			XLabel: "L1 Dcache size (KB)",
			YLabel: "Avg TPI (ns)",
		}
		for _, b := range s.apps {
			if b.FloatingPoint != fp {
				continue
			}
			var xs, ys []float64
			for k := 1; k <= core.PaperMaxBoundary; k++ {
				xs = append(xs, float64(cfg.CacheParams.L1Bytes(k))/1024)
				ys = append(ys, s.tpi[b.Name][k])
			}
			fig.Series = append(fig.Series, metrics.Series{Name: b.Name, X: xs, Y: ys})
		}
		return fig
	}
	conv := cfg.CacheParams
	return Result{
		ID:    "fig7",
		Title: "Variation of average TPI with L1 Dcache size (fixed boundary)",
		Figures: []metrics.Figure{
			mk("fig7a", "Integer benchmarks", false),
			mk("fig7b", "Floating-point benchmarks", true),
		},
		Notes: []string{fmt.Sprintf("best conventional configuration: L1=%dKB %d-way (boundary k=%d)",
			conv.L1Bytes(s.convBest)/1024, conv.L1Assoc(s.convBest), s.convBest)},
	}, nil
}

// cacheCompareTable builds the Figure 8/9-style per-application comparison
// between the best conventional configuration and the process-level
// adaptive choice, using the selector to pick TPI or TPImiss.
func cacheCompareTable(cfg Config, s *cacheStudy, id, title string, pick func(app string, k int) float64) metrics.Table {
	t := metrics.Table{
		ID:      id,
		Title:   title,
		Columns: []string{"benchmark", "best conventional", "process-level adaptive", "adaptive boundary", "reduction"},
	}
	var convSum, adptSum float64
	for _, b := range s.apps {
		bestK := core.SelectBestIndex(s.tpi[b.Name]) // adaptivity always optimizes overall TPI
		conv := pick(b.Name, s.convBest)
		adpt := pick(b.Name, bestK)
		convSum += conv
		adptSum += adpt
		t.Rows = append(t.Rows, []string{
			b.Name, metrics.F(conv), metrics.F(adpt),
			fmt.Sprintf("k=%d (%dKB)", bestK, cfg.CacheParams.L1Bytes(bestK)/1024),
			metrics.Pct(metrics.Reduction(conv, adpt)),
		})
	}
	n := float64(len(s.apps))
	t.Rows = append(t.Rows, []string{
		"average", metrics.F(convSum / n), metrics.F(adptSum / n), "",
		metrics.Pct(metrics.Reduction(convSum/n, adptSum/n)),
	})
	return t
}

func fig8(ctx context.Context, cfg Config) (Result, error) {
	s, err := runCacheStudy(ctx, cfg)
	if err != nil {
		return Result{}, err
	}
	t := cacheCompareTable(cfg, s, "fig8", "Average TPImiss (ns): conventional vs process-level adaptive",
		func(app string, k int) float64 { return s.tpiMiss[app][k] })
	return Result{
		ID: "fig8", Title: t.Title, Tables: []metrics.Table{t},
		Notes: []string{fmt.Sprintf("conventional baseline: boundary k=%d (L1=%dKB %d-way)",
			s.convBest, cfg.CacheParams.L1Bytes(s.convBest)/1024, cfg.CacheParams.L1Assoc(s.convBest))},
	}, nil
}

func fig9(ctx context.Context, cfg Config) (Result, error) {
	s, err := runCacheStudy(ctx, cfg)
	if err != nil {
		return Result{}, err
	}
	t := cacheCompareTable(cfg, s, "fig9", "Average TPI (ns): conventional vs process-level adaptive",
		func(app string, k int) float64 { return s.tpi[app][k] })
	return Result{
		ID: "fig9", Title: t.Title, Tables: []metrics.Table{t},
		Notes: []string{fmt.Sprintf("conventional baseline: boundary k=%d (L1=%dKB %d-way)",
			s.convBest, cfg.CacheParams.L1Bytes(s.convBest)/1024, cfg.CacheParams.L1Assoc(s.convBest))},
	}, nil
}
