package experiments

import (
	"context"
	"fmt"

	"capsim/internal/cache"
	"capsim/internal/core"
	"capsim/internal/metrics"
	"capsim/internal/sweep"
	"capsim/internal/workload"
)

func init() {
	register("ablation-interval", "Interval-adaptive predictor vs process-level vs per-interval oracle (Section 6 extension)", ablationInterval)
	register("ablation-switch", "Clock-switch penalty sweep for the interval predictor", ablationSwitch)
	register("ablation-increment", "Cache increment granularity: 16x8KB 2-way vs 32x4KB direct-mapped (Section 5.2.1)", ablationIncrement)
	register("ablation-power", "Low-power mode: minimum structures at the slowest clock (Section 4.1)", ablationPower)
}

// intervalCandidates returns the two-configuration setup Section 6 studies
// for an application.
func intervalCandidates(app string) (sizes []int, err error) {
	switch app {
	case "turb3d":
		return []int{64, 128}, nil
	case "vortex":
		return []int{16, 64}, nil
	default:
		return nil, fmt.Errorf("experiments: no interval-study candidates for %s", app)
	}
}

// runIntervalPolicy drives a QueueMachine restricted to the two candidate
// sizes under the given policy and returns the aggregate result. label names
// the policy canonically ("fixed:0", "interval-adaptive") — it is the
// policy's identity in the study-row key, so each (app, sizes, penalty,
// policy) run is one shard-partitionable, persistently reusable row.
func runIntervalPolicy(ctx context.Context, cfg Config, app string, sizes []int, label string, p core.Policy, intervals int64) (core.RunResult, error) {
	return policyRow(app, cfg.Seed, sizes, label, intervals, cfg.IntervalInstrs, cfg.PenaltyCycles, cfg.Feature,
		func() (core.RunResult, error) {
			b, err := workload.ByName(app)
			if err != nil {
				return core.RunResult{}, err
			}
			return core.RunPolicyStudy(ctx, b, cfg.Seed, sizes, p, intervals, cfg.IntervalInstrs, cfg.PenaltyCycles, cfg.Feature)
		})
}

// oracleTPI computes the per-interval oracle: the TPI of always running the
// better of the two configurations each interval, ignoring switch costs — a
// lower bound no realizable predictor can beat. Both traces come from one
// shared-stream family pass (or a parallel legacy fan-out; see
// core.ProfileQueueTraces).
func oracleTPI(ctx context.Context, cfg Config, app string, sizes []int, intervals int64) (float64, error) {
	traces, err := intervalTraces(ctx, cfg, app, sizes, intervals)
	if err != nil {
		return 0, err
	}
	a, b := traces[0], traces[1]
	var sum float64
	for i := range a {
		if a[i] < b[i] {
			sum += a[i]
		} else {
			sum += b[i]
		}
	}
	return sum / float64(len(a)), nil
}

func ablationInterval(ctx context.Context, cfg Config) (Result, error) {
	const intervals = 1500
	t := metrics.Table{
		ID:      "ablation-interval",
		Title:   "TPI (ns) by configuration-management policy",
		Columns: []string{"benchmark", "configs", "best fixed", "interval-adaptive", "per-interval oracle", "switches", "adaptive vs fixed"},
	}
	apps := []string{"turb3d", "vortex"}
	type row struct {
		sizes     []int
		fixedBest float64
		adaptive  core.RunResult
		oracle    float64
	}
	// The per-application studies are independent; within one, the fixed
	// baselines, the adaptive run and the oracle are independent too. Fan
	// all of it out (nested sweeps are safe) and assemble rows in app order.
	rows, err := sweep.RunCtx(ctx, len(apps), func(ai int) (row, error) {
		app := apps[ai]
		sizes, err := intervalCandidates(app)
		if err != nil {
			return row{}, err
		}
		// Best fixed: run both configurations to completion, keep the
		// better (the process-level choice between the two).
		fixed, err := sweep.RunCtx(ctx, len(sizes), func(i int) (float64, error) {
			r, err := runIntervalPolicy(ctx, cfg, app, sizes, fmt.Sprintf("fixed:%d", i), core.FixedPolicy{Config: i}, intervals)
			return r.TPI, err
		})
		if err != nil {
			return row{}, err
		}
		fixedBest := fixed[0]
		for _, v := range fixed[1:] {
			if v < fixedBest {
				fixedBest = v
			}
		}
		adaptive, err := runIntervalPolicy(ctx, cfg, app, sizes, "interval-adaptive",
			&core.IntervalPolicy{Configs: []int{0, 1}}, intervals)
		if err != nil {
			return row{}, err
		}
		oracle, err := oracleTPI(ctx, cfg, app, sizes, intervals)
		if err != nil {
			return row{}, err
		}
		return row{sizes: sizes, fixedBest: fixedBest, adaptive: adaptive, oracle: oracle}, nil
	})
	if err != nil {
		return Result{}, err
	}
	for ai, r := range rows {
		t.Rows = append(t.Rows, []string{
			apps[ai], fmt.Sprintf("%v", r.sizes),
			metrics.F(r.fixedBest), metrics.F(r.adaptive.TPI), metrics.F(r.oracle),
			fmt.Sprintf("%d", r.adaptive.Switches),
			metrics.Pct(metrics.Reduction(r.fixedBest, r.adaptive.TPI)),
		})
	}
	return Result{
		ID: "ablation-interval", Title: t.Title, Tables: []metrics.Table{t},
		Notes: []string{"oracle ignores reconfiguration costs; the predictor pays drain + clock-switch penalties"},
	}, nil
}

func ablationSwitch(ctx context.Context, cfg Config) (Result, error) {
	const intervals = 1200
	sizes, err := intervalCandidates("vortex")
	if err != nil {
		return Result{}, err
	}
	fig := metrics.Figure{
		ID:     "ablation-switch",
		Title:  "vortex: interval-adaptive TPI vs clock-switch penalty",
		XLabel: "switch penalty (cycles)",
		YLabel: "TPI (ns)",
	}
	// Each penalty point is an independent simulation: sweep them in
	// parallel, collecting by penalty index.
	penalties := []int{0, 10, 20, 50, 100, 200}
	runs, err := sweep.RunCtx(ctx, len(penalties), func(i int) (core.RunResult, error) {
		c := cfg
		c.PenaltyCycles = penalties[i]
		return runIntervalPolicy(ctx, c, "vortex", sizes, "interval-adaptive", &core.IntervalPolicy{Configs: []int{0, 1}}, intervals)
	})
	if err != nil {
		return Result{}, err
	}
	var xs, ys, sw []float64
	for i, r := range runs {
		xs = append(xs, float64(penalties[i]))
		ys = append(ys, r.TPI)
		sw = append(sw, float64(r.Switches))
	}
	fig.Series = []metrics.Series{
		{Name: "adaptive TPI", X: xs, Y: ys},
		{Name: "switches", X: xs, Y: sw},
	}
	return Result{
		ID: "ablation-switch", Title: fig.Title, Figures: []metrics.Figure{fig},
		Notes: []string{"the paper estimates tens of cycles to pause one clock and reliably start another"},
	}, nil
}

// ablationIncrement compares the paper's chosen 8KB 2-way increment design
// against the competing 4KB direct-mapped two-way-banked increment design it
// mentions rejecting in Section 5.2.1.
func ablationIncrement(ctx context.Context, cfg Config) (Result, error) {
	alt := cache.Params{
		Increments:     32,
		IncrementBytes: 4 * 1024,
		IncrementAssoc: 1,
		BlockBytes:     cfg.CacheParams.BlockBytes,
		Feature:        cfg.CacheParams.Feature,
	}
	apps := []string{"gcc", "stereo", "appcg", "swim"}
	t := metrics.Table{
		ID:      "ablation-increment",
		Title:   "Adaptive TPI (ns) by increment design",
		Columns: []string{"benchmark", "8KB 2-way x16 (paper)", "4KB 1-way x32 (alternative)", "difference"},
	}
	// Sweep the (application x design) grid; ProfileCacheTPI additionally
	// parallelizes its boundaries internally. Column 0 is the paper's 8KB
	// 2-way design, column 1 the rejected 4KB direct-mapped alternative
	// (same 64 KB maximum L1: 16 increments of 4 KB). Column 0 shares its
	// study rows with the fig7-9 cache study — a warm persistent cache pays
	// across drivers.
	grid, err := sweep.GridCtx(ctx, len(apps), 2, func(a, d int) (float64, error) {
		b, err := workload.ByName(apps[a])
		if err != nil {
			return 0, err
		}
		p, maxB := cfg.CacheParams, core.PaperMaxBoundary
		if d == 1 {
			p, maxB = alt, 16
		}
		row, err := cacheProfileRow(b, cfg.Seed, p, maxB, cfg.CacheWarmRefs, cfg.CacheRefs)
		if err != nil {
			return 0, err
		}
		return row.TPI[core.SelectBestIndex(row.TPI)], nil
	})
	if err != nil {
		return Result{}, err
	}
	for a, app := range apps {
		paper, altTPI := grid[a][0], grid[a][1]
		t.Rows = append(t.Rows, []string{
			app, metrics.F(paper), metrics.F(altTPI),
			metrics.Pct(metrics.Reduction(altTPI, paper)),
		})
	}
	return Result{
		ID: "ablation-increment", Title: t.Title, Tables: []metrics.Table{t},
		Notes: []string{"the paper chose 8KB 2-way increments as the better granularity/delay tradeoff"},
	}, nil
}

// ablationPower evaluates the Section 4.1 low-power mode: all adaptive
// structures at minimum size on the slowest clock. The energy proxy per
// instruction is active-capacity-fraction x CPI (switched capacitance scales
// with enabled structure, energy with cycles spent).
func ablationPower(ctx context.Context, cfg Config) (Result, error) {
	apps := []string{"gcc", "swim", "stereo"}
	t := metrics.Table{
		ID:      "ablation-power",
		Title:   "Low-power mode vs performance mode (cache hierarchy)",
		Columns: []string{"benchmark", "mode", "boundary", "TPI (ns)", "active L1 fraction", "energy proxy/instr"},
	}
	// Per-application profiling passes are independent; sweep them and
	// assemble rows in app order.
	tables, err := sweep.RunCtx(ctx, len(apps), func(a int) ([]float64, error) {
		b, err := workload.ByName(apps[a])
		if err != nil {
			return nil, err
		}
		// Same row as the fig7-9 cache study (shared key): a warm
		// persistent cache serves this driver without recomputation.
		row, err := cacheProfileRow(b, cfg.Seed, cfg.CacheParams, core.PaperMaxBoundary, cfg.CacheWarmRefs, cfg.CacheRefs)
		return row.TPI, err
	})
	if err != nil {
		return Result{}, err
	}
	for a, app := range apps {
		tpi := tables[a]
		bestK := core.SelectBestIndex(tpi)
		// Performance mode: the process-level best boundary at its own
		// (full-rate) clock. Low-power mode: minimum structure (least
		// switched capacitance) deliberately run on the SLOWEST clock in
		// the source table (paper Section 4.1) — CPI is that of k=1 but
		// every cycle is stretched to the k=max period.
		perf := cache.TimingFor(cfg.CacheParams, bestK)
		perfCPI := tpi[bestK] / perf.CycleNS
		perfFrac := float64(bestK) / float64(core.PaperMaxBoundary)
		t.Rows = append(t.Rows, []string{
			app, "performance", fmt.Sprintf("k=%d", bestK),
			metrics.F(tpi[bestK]), fmt.Sprintf("%.2f", perfFrac), metrics.F(perfFrac * perfCPI),
		})
		slow := cache.TimingFor(cfg.CacheParams, core.PaperMaxBoundary)
		lpCPI := tpi[1] / cache.TimingFor(cfg.CacheParams, 1).CycleNS
		lpFrac := 1.0 / float64(core.PaperMaxBoundary)
		t.Rows = append(t.Rows, []string{
			app, "low-power", "k=1 @ slow clk",
			metrics.F(lpCPI * slow.CycleNS), fmt.Sprintf("%.2f", lpFrac), metrics.F(lpFrac * lpCPI),
		})
	}
	return Result{
		ID: "ablation-power", Title: t.Title, Tables: []metrics.Table{t},
		Notes: []string{
			"low-power mode: minimum structure + slowest clock (paper Section 4.1); proxy = active fraction x CPI",
			"running slower additionally permits voltage scaling, which the proxy does not credit",
		},
	}, nil
}
