package palacharla

import (
	"testing"

	"capsim/internal/tech"
)

var p18 = tech.ForFeature(tech.Micron018)

func q(entries int) Queue { return Queue{Entries: entries, IssueWidth: 8} }

func TestValidate(t *testing.T) {
	if err := q(16).Validate(); err != nil {
		t.Errorf("valid queue rejected: %v", err)
	}
	if err := (Queue{Entries: 0, IssueWidth: 8}).Validate(); err == nil {
		t.Error("zero entries accepted")
	}
	if err := (Queue{Entries: 16, IssueWidth: 0}).Validate(); err == nil {
		t.Error("zero issue width accepted")
	}
}

func TestSelectTreeHeight(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 4: 1, 5: 2, 16: 2, 17: 3, 64: 3, 65: 4, 128: 4}
	for entries, want := range cases {
		if got := SelectTreeHeight(entries); got != want {
			t.Errorf("SelectTreeHeight(%d) = %d, want %d", entries, got, want)
		}
	}
}

func TestCycleTimeMonotoneInEntries(t *testing.T) {
	prev := 0.0
	for w := 16; w <= 128; w += 16 {
		c := CycleTime(q(w), p18)
		if c <= prev {
			t.Errorf("W=%d: cycle %v not greater than W=%d's %v", w, c, w-16, prev)
		}
		prev = c
	}
}

func TestCycleTimeAnchors(t *testing.T) {
	// Calibration anchors at 0.18 micron: a 16-entry 8-way queue cycles
	// around 0.45-0.50 ns; 128 entries around 0.8-0.95 ns.
	c16 := CycleTime(q(16), p18)
	c128 := CycleTime(q(128), p18)
	if c16 < 0.35 || c16 > 0.60 {
		t.Errorf("16-entry cycle %v ns outside anchor band", c16)
	}
	if c128 < 0.70 || c128 > 1.05 {
		t.Errorf("128-entry cycle %v ns outside anchor band", c128)
	}
	ratio := c128 / c16
	if ratio < 1.4 || ratio > 2.2 {
		t.Errorf("128/16 cycle ratio %v outside plausible band", ratio)
	}
}

func TestCycleTimeScalesWithFeature(t *testing.T) {
	c25 := CycleTime(q(64), tech.ForFeature(tech.Micron025))
	c18 := CycleTime(q(64), p18)
	c12 := CycleTime(q(64), tech.ForFeature(tech.Micron012))
	if !(c12 < c18 && c18 < c25) {
		t.Errorf("cycle times not ordered by feature: %v %v %v", c25, c18, c12)
	}
}

func TestWakeupGrowsWithIssueWidth(t *testing.T) {
	w8 := WakeupDelay(Queue{Entries: 64, IssueWidth: 8}, p18)
	w16 := WakeupDelay(Queue{Entries: 64, IssueWidth: 16}, p18)
	if w16 <= w8 {
		t.Errorf("16-wide wakeup %v not slower than 8-wide %v", w16, w8)
	}
}

func TestSelectDelayStepsAtTreeLevels(t *testing.T) {
	// Select delay is constant within a tree level and jumps across it.
	s64 := SelectDelay(q(64), p18)
	s48 := SelectDelay(q(48), p18)
	s80 := SelectDelay(q(80), p18)
	if s64 != s48 {
		t.Errorf("48 and 64 entries share a tree height; %v vs %v", s48, s64)
	}
	if s80 <= s64 {
		t.Errorf("80 entries needs a taller tree; %v vs %v", s80, s64)
	}
}

func TestGeometryHelpers(t *testing.T) {
	h := EntryHeightMM(p18)
	if h <= 0 || h > 0.1 {
		t.Errorf("entry height %v mm implausible", h)
	}
	if got := BusLengthMM(64, p18); got != 64*h {
		t.Errorf("bus length %v, want %v", got, 64*h)
	}
	if got := BusLengthMM(-3, p18); got != 0 {
		t.Errorf("negative entries bus length %v, want 0", got)
	}
	if EntryLoadPF(p18) <= 0 {
		t.Error("non-positive entry load")
	}
	// Loads scale with feature size (gate capacitance).
	if EntryLoadPF(tech.ForFeature(tech.Micron012)) >= EntryLoadPF(p18) {
		t.Error("entry load should shrink with feature size")
	}
}

func TestWakeupPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WakeupDelay(Queue{Entries: 0, IssueWidth: 8}, p18)
}
