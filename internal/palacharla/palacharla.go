// Package palacharla models the timing of out-of-order instruction-queue
// wakeup and selection logic, following Palacharla, Jouppi & Smith
// ("Quantifying the complexity of superscalar processors", TR-96-1328, and
// the ISCA'97 complexity-effective paper) — the delay source the CAP paper
// uses for its adaptive instruction queue (Section 5.1).
//
// The combined wakeup+select operation must complete atomically in one cycle
// so dependent instructions can issue in consecutive cycles; the CAP paper
// therefore sets the processor cycle time of each queue configuration to
// wakeup(W) + select(W) for the active window size W.
//
// Wakeup: result tags are broadcast on tag lines running the length of the
// CAM array; each entry compares the tags against its waiting operands. With
// the tag lines buffered between each group of 16 entries (the adaptive
// increment size), tag-drive delay grows essentially linearly in the number
// of active entries, with a small quadratic term inside a group.
//
// Select: a tree of 4-input priority encoders arbitrates among ready
// instructions; delay grows with the tree height ceil(log4(W)) (request
// propagates up, grant back down). Encoders attached to disabled window
// entries are turned off, and the height of the tree follows the active
// window size — the paper's adaptive selection logic.
package palacharla

import (
	"fmt"
	"math"

	"capsim/internal/memo"
	"capsim/internal/tech"
)

// GroupSize is the tag-line buffering increment: the adaptive queue grows
// and shrinks in groups of 16 entries, and repeaters are placed between
// groups (paper Section 5.1).
const GroupSize = 16

// Queue describes an issue-queue implementation whose timing is being
// evaluated.
type Queue struct {
	// Entries is the number of active window entries W.
	Entries int
	// IssueWidth is the machine issue width (tags broadcast per cycle);
	// it widens each entry and adds tag comparators. The paper models an
	// 8-way machine.
	IssueWidth int
}

// Validate reports whether the queue shape is usable.
func (q Queue) Validate() error {
	if q.Entries < 1 {
		return fmt.Errorf("palacharla: entries %d must be >= 1", q.Entries)
	}
	if q.IssueWidth < 1 {
		return fmt.Errorf("palacharla: issue width %d must be >= 1", q.IssueWidth)
	}
	return nil
}

// Timing constants, anchored at 0.18 micron (the generation the paper
// evaluates) and scaled linearly with feature size for the device-limited
// parts. The anchors reproduce the published trend: a 16-entry 8-way queue
// cycles in ~0.45 ns and a 128-entry one in ~0.85 ns at 0.18 micron.
const (
	anchorFeature = float64(tech.Micron018)

	// Tag drive: fixed driver stage + per-entry wire/diffusion load along
	// the buffered tag line (linear), + a small quadratic term within the
	// last 16-entry group (unbuffered segment).
	tagDriveBase    = 0.080 // ns
	tagDrivePerEnt  = 0.0019
	tagDriveGroupQ  = 0.00009 // ns per (entries-within-group)^2
	tagMatch        = 0.070   // ns, CAM compare
	matchOR         = 0.040   // ns, OR across IssueWidth match lines (8-way anchor)
	selectPerLevel  = 0.045   // ns per priority-encoder tree level
	selectRootGrant = 0.040   // ns, root arbitration + grant driver
)

// scale returns the linear device-scaling factor from the 0.18 micron
// anchor to the target process.
func scale(p tech.Params) float64 {
	return float64(p.Feature) / anchorFeature
}

// WakeupDelay returns the wakeup (tag drive + tag match + match OR) delay in
// ns for the queue at the given process.
func WakeupDelay(q Queue, p tech.Params) float64 {
	if err := q.Validate(); err != nil {
		panic(err)
	}
	within := q.Entries % GroupSize
	if within == 0 {
		within = GroupSize
	}
	widthFactor := 1.0 + 0.05*float64(q.IssueWidth-8)/8.0
	drive := tagDriveBase + tagDrivePerEnt*float64(q.Entries)*widthFactor +
		tagDriveGroupQ*float64(within*within)
	return (drive + tagMatch + matchOR) * scale(p)
}

// SelectTreeHeight returns the number of 4-input priority-encoder levels
// needed to arbitrate among W entries: ceil(log4(W)).
func SelectTreeHeight(entries int) int {
	if entries <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(entries)) / 2.0))
}

// SelectDelay returns the selection-logic delay in ns: request propagation
// up the 4-ary priority-encoder tree and grant propagation back down, plus
// root arbitration. Encoders for inactive entries are disabled and the tree
// height follows the active window size.
func SelectDelay(q Queue, p tech.Params) float64 {
	if err := q.Validate(); err != nil {
		panic(err)
	}
	h := SelectTreeHeight(q.Entries)
	return (selectRootGrant + 2.0*selectPerLevel*float64(h)) * scale(p)
}

// cycleKey keys the CycleTime memo; Queue and tech.Params are flat scalar
// structs, so the pair describes the computation completely.
type cycleKey struct {
	q Queue
	p tech.Params
}

// cycleTimes memoizes CycleTime: every QueueMachine and CombinedMachine
// construction evaluates the full configuration set, and parallel sweeps
// construct thousands of machines over the same handful of queue shapes.
// Validation (which panics) runs before entering the memo.
var cycleTimes memo.Memo[cycleKey, float64]

// CycleTime returns the atomic wakeup+select delay in ns — the processor
// cycle time for this queue configuration in the CAP paper's experiment
// ("the instruction queue wakeup and selection logic is on the critical
// timing path for all configurations"). Results are memoized per
// (Queue, Params).
func CycleTime(q Queue, p tech.Params) float64 {
	if err := q.Validate(); err != nil {
		panic(err)
	}
	return cycleTimes.Get(cycleKey{q, p}, func() float64 {
		return WakeupDelay(q, p) + SelectDelay(q, p)
	})
}

// --- Physical geometry for the Figure 2 wire-delay study -----------------

// EntryEquivalentBytes is the single-ported-RAM-equivalent area of one
// R10000-style integer queue entry: 52 bits of single-ported RAM, 12 bits of
// triple-ported CAM and 6 bits of quadruple-ported CAM; with CAM cells twice
// RAM area and area quadratic in ports, roughly 60 bytes of single-ported
// RAM (paper Section 2).
const EntryEquivalentBytes = 60

// entryRowCells is the assumed layout width of an entry in equivalent RAM
// cells; the rest of the entry's cell budget stacks vertically. 40 cells of
// width (the multi-ported CAM fields dominate the pitch) gives a 12-row
// entry, matching R10000-class queue footprints.
const entryRowCells = 40

// EntryHeightMM returns the vertical pitch of one queue entry in mm at the
// given process.
func EntryHeightMM(p tech.Params) float64 {
	cells := float64(EntryEquivalentBytes * 8)
	rows := math.Ceil(cells / entryRowCells)
	return rows * p.BitCellSide()
}

// BusLengthMM returns the length in mm of the global tag/data bus spanning
// `entries` queue entries at the given process.
func BusLengthMM(entries int, p tech.Params) float64 {
	if entries < 0 {
		entries = 0
	}
	return float64(entries) * EntryHeightMM(p)
}

// EntryLoadPF returns the capacitive load one entry hangs on the global bus
// in pF (CAM match-line gates across the issue-width comparators); it scales
// with feature size like any gate capacitance.
func EntryLoadPF(p tech.Params) float64 {
	return 5.0 * p.BufferC
}
