// Package memo provides a small concurrency-safe, singleflight-style
// memoization primitive used by the experiment drivers and the analytic
// timing models (cacti, wire, palacharla, cache.TimingFor).
//
// Unlike a plain mutex-guarded map, Memo never holds its lock while the
// memoized function runs: each key owns a sync.Once, so two goroutines asking
// for *different* keys compute concurrently, while two goroutines asking for
// the *same* key share one computation (the second blocks only on that key's
// Once). This is the fix for the old cacheStudyMu pattern, which serialized
// unrelated configurations behind one global lock for the entire multi-second
// profiling pass.
//
// Memoized functions must be deterministic in their key: the first caller's
// result is returned to everyone, forever (until Reset). Functions that can
// panic must validate and panic *before* entering the memo — a panic inside
// sync.Once marks the entry complete and later callers would silently see the
// zero value.
package memo

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"capsim/internal/obs"
)

// Telemetry (internal/obs): cheap global counters over all Memo instances.
// Hits/misses partition Do calls by whether this call ran fn; waits count the
// calls that blocked on another goroutine's in-flight computation — the
// singleflight stalls the trace timeline makes visible. All of it is gated on
// obs being live, so the plain path pays one predicted branch per Do.
var (
	obsHits    = obs.NewCounter("memo.hits")         // result already memoized
	obsMisses  = obs.NewCounter("memo.misses")       // this call computed the entry
	obsWaits   = obs.NewCounter("memo.waits")        // blocked on an in-flight compute
	obsEvicts  = obs.NewCounter("memo.evictions")    // entries evicted by a SetCap bound
	obsForgets = obs.NewCounter("memo.forgets")      // entries dropped by Forget
	obsWaitNS  = obs.NewHistogram("memo.wait_ns")    // time spent blocked
	obsCompNS  = obs.NewHistogram("memo.compute_ns") // time inside fn
)

// entry is one key's slot: a Once guarding the computed value. done is
// telemetry only — it lets an instrumented Do distinguish a settled hit from
// a singleflight wait without perturbing the Once fast path. elem is the
// entry's node in the recency list when an entry cap is set (nil otherwise).
type entry[V any] struct {
	once sync.Once
	done atomic.Bool
	val  V
	err  error
	elem *list.Element
}

// Memo memoizes a function from K to (V, error). The zero value is ready to
// use and unbounded. All methods are safe for concurrent use.
type Memo[K comparable, V any] struct {
	mu  sync.Mutex
	m   map[K]*entry[V]
	cap int        // 0 = unbounded (the one-shot CLI default)
	lru *list.List // recency order, front = most recent; element values are keys
}

// SetCap bounds the memo to at most n entries with deterministic
// least-recently-used eviction: when an insert would exceed the cap, the
// entry whose slot was touched longest ago is dropped. n <= 0 restores the
// default unbounded behaviour. Long-lived processes (the experiment API
// server) set a cap so the memo cannot grow without bound; one-shot CLI runs
// never call it and keep the original grow-only semantics.
//
// Recency is tracked from the memo's first insert, so applying a cap to an
// already-populated memo evicts down to the bound immediately, in
// least-recently-used order over the accesses that actually happened (it
// used to be a documented caveat that pre-cap entries were uncollectable).
// Evicting an entry whose computation is still in flight is safe — in-flight
// callers complete against the orphaned entry; later callers recompute.
func (c *Memo[K, V]) SetCap(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n <= 0 {
		c.cap = 0
		return
	}
	c.cap = n
	c.evictLocked()
}

// slot returns (creating if needed) the entry for k. The map lock is held
// only for the lookup, never during computation. Recency is maintained
// unconditionally — unbounded memos pay one list node per entry so that a
// later SetCap can evict in true LRU order.
func (c *Memo[K, V]) slot(k K) *entry[V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[K]*entry[V])
	}
	if c.lru == nil {
		c.lru = list.New()
	}
	e, ok := c.m[k]
	if !ok {
		e = &entry[V]{}
		c.m[k] = e
		e.elem = c.lru.PushFront(k)
		c.evictLocked()
	} else if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
	return e
}

// evictLocked drops least-recently-used entries until the cap is respected;
// c.mu must be held.
func (c *Memo[K, V]) evictLocked() {
	if c.cap <= 0 || c.lru == nil {
		return
	}
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		if back == nil {
			return
		}
		k := back.Value.(K)
		if e, ok := c.m[k]; ok && e.elem == back {
			delete(c.m, k)
		}
		c.lru.Remove(back)
		obsEvicts.Inc1()
	}
}

// Forget drops k's entry, if any, so the next Do recomputes it. The
// experiment drivers use it to un-memoize context-cancellation errors: a
// request cancelled mid-computation must not poison the entry for every
// later request with the same key (deterministic *compute* errors stay
// memoized — retrying those cannot help). An in-flight computation completes
// against the orphaned entry; its waiters still observe its result.
func (c *Memo[K, V]) Forget(k K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[k]
	if !ok {
		return
	}
	delete(c.m, k)
	if e.elem != nil {
		c.lru.Remove(e.elem)
	}
	obsForgets.Inc1()
}

// Do returns the memoized result for k, computing it with fn on first use.
// Concurrent callers with the same key share one fn invocation; callers with
// distinct keys never block each other. Errors are memoized too (the
// computations here are deterministic, so retrying cannot help).
func (c *Memo[K, V]) Do(k K, fn func() (V, error)) (V, error) {
	e := c.slot(k)
	if !obs.Enabled() && !obs.Tracing() {
		e.once.Do(func() {
			e.val, e.err = fn()
			e.done.Store(true)
		})
		return e.val, e.err
	}
	return c.doObserved(e, fn)
}

// doObserved is Do's telemetry path: identical semantics, plus counters and —
// when a trace sink is installed — an async span over any singleflight wait.
func (c *Memo[K, V]) doObserved(e *entry[V], fn func() (V, error)) (V, error) {
	settled := e.done.Load()
	ran := false
	var as obs.AsyncSpan
	if !settled {
		// Either we are about to compute or we are about to block on the
		// goroutine that is; the span is dropped below if we computed.
		as = obs.StartAsync("memo", "wait")
	}
	t0 := time.Now()
	e.once.Do(func() {
		ran = true
		e.val, e.err = fn()
		e.done.Store(true)
	})
	ns := time.Since(t0).Nanoseconds()
	switch {
	case ran:
		obsMisses.Inc1()
		obsCompNS.Observe(ns)
	case settled:
		obsHits.Inc1()
	default:
		// Entry existed but was still being computed when we arrived: we
		// blocked on that key's Once.
		obsHits.Inc1()
		obsWaits.Inc1()
		obsWaitNS.Observe(ns)
		as.End()
	}
	return e.val, e.err
}

// Get is Do for infallible functions.
func (c *Memo[K, V]) Get(k K, fn func() V) V {
	v, _ := c.Do(k, func() (V, error) { return fn(), nil })
	return v
}

// Has reports whether k currently has an entry (settled or in-flight)
// without touching its recency — a pure read, unlike Do/Get, which insert
// and promote.
func (c *Memo[K, V]) Has(k K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.m[k]
	return ok
}

// Len returns the number of memoized keys (including in-flight ones).
func (c *Memo[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Reset discards all memoized entries (the cap, if set, is kept). In-flight
// computations complete against the old entries; subsequent Do calls
// recompute.
func (c *Memo[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = nil
	if c.lru != nil {
		c.lru = list.New()
	}
}
