// Package memo provides a small concurrency-safe, singleflight-style
// memoization primitive used by the experiment drivers and the analytic
// timing models (cacti, wire, palacharla, cache.TimingFor).
//
// Unlike a plain mutex-guarded map, Memo never holds its lock while the
// memoized function runs: each key owns a sync.Once, so two goroutines asking
// for *different* keys compute concurrently, while two goroutines asking for
// the *same* key share one computation (the second blocks only on that key's
// Once). This is the fix for the old cacheStudyMu pattern, which serialized
// unrelated configurations behind one global lock for the entire multi-second
// profiling pass.
//
// Memoized functions must be deterministic in their key: the first caller's
// result is returned to everyone, forever (until Reset). Functions that can
// panic must validate and panic *before* entering the memo — a panic inside
// sync.Once marks the entry complete and later callers would silently see the
// zero value.
package memo

import (
	"sync"
	"sync/atomic"
	"time"

	"capsim/internal/obs"
)

// Telemetry (internal/obs): cheap global counters over all Memo instances.
// Hits/misses partition Do calls by whether this call ran fn; waits count the
// calls that blocked on another goroutine's in-flight computation — the
// singleflight stalls the trace timeline makes visible. All of it is gated on
// obs being live, so the plain path pays one predicted branch per Do.
var (
	obsHits   = obs.NewCounter("memo.hits")         // result already memoized
	obsMisses = obs.NewCounter("memo.misses")       // this call computed the entry
	obsWaits  = obs.NewCounter("memo.waits")        // blocked on an in-flight compute
	obsWaitNS = obs.NewHistogram("memo.wait_ns")    // time spent blocked
	obsCompNS = obs.NewHistogram("memo.compute_ns") // time inside fn
)

// entry is one key's slot: a Once guarding the computed value. done is
// telemetry only — it lets an instrumented Do distinguish a settled hit from
// a singleflight wait without perturbing the Once fast path.
type entry[V any] struct {
	once sync.Once
	done atomic.Bool
	val  V
	err  error
}

// Memo memoizes a function from K to (V, error). The zero value is ready to
// use. All methods are safe for concurrent use.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*entry[V]
}

// slot returns (creating if needed) the entry for k. The map lock is held
// only for the lookup, never during computation.
func (c *Memo[K, V]) slot(k K) *entry[V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[K]*entry[V])
	}
	e, ok := c.m[k]
	if !ok {
		e = &entry[V]{}
		c.m[k] = e
	}
	return e
}

// Do returns the memoized result for k, computing it with fn on first use.
// Concurrent callers with the same key share one fn invocation; callers with
// distinct keys never block each other. Errors are memoized too (the
// computations here are deterministic, so retrying cannot help).
func (c *Memo[K, V]) Do(k K, fn func() (V, error)) (V, error) {
	e := c.slot(k)
	if !obs.Enabled() && !obs.Tracing() {
		e.once.Do(func() {
			e.val, e.err = fn()
			e.done.Store(true)
		})
		return e.val, e.err
	}
	return c.doObserved(e, fn)
}

// doObserved is Do's telemetry path: identical semantics, plus counters and —
// when a trace sink is installed — an async span over any singleflight wait.
func (c *Memo[K, V]) doObserved(e *entry[V], fn func() (V, error)) (V, error) {
	settled := e.done.Load()
	ran := false
	var as obs.AsyncSpan
	if !settled {
		// Either we are about to compute or we are about to block on the
		// goroutine that is; the span is dropped below if we computed.
		as = obs.StartAsync("memo", "wait")
	}
	t0 := time.Now()
	e.once.Do(func() {
		ran = true
		e.val, e.err = fn()
		e.done.Store(true)
	})
	ns := time.Since(t0).Nanoseconds()
	switch {
	case ran:
		obsMisses.Inc1()
		obsCompNS.Observe(ns)
	case settled:
		obsHits.Inc1()
	default:
		// Entry existed but was still being computed when we arrived: we
		// blocked on that key's Once.
		obsHits.Inc1()
		obsWaits.Inc1()
		obsWaitNS.Observe(ns)
		as.End()
	}
	return e.val, e.err
}

// Get is Do for infallible functions.
func (c *Memo[K, V]) Get(k K, fn func() V) V {
	v, _ := c.Do(k, func() (V, error) { return fn(), nil })
	return v
}

// Len returns the number of memoized keys (including in-flight ones).
func (c *Memo[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Reset discards all memoized entries. In-flight computations complete
// against the old entries; subsequent Do calls recompute.
func (c *Memo[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = nil
}
