package memo

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"time"

	"capsim/internal/obs"
)

// Byte budget: an optional ceiling on the persistent store's disk footprint.
//
// The store is an unbounded append-only cache by default — correct, but a
// long-lived directory shared by CI, shard fleets and interactive runs
// accumulates every (seed, budget, geometry) variation ever computed. SetBudget
// bounds it: whenever a write pushes the store past the ceiling, the
// least-recently-USED entries are pruned first (access time, which GetBytes
// refreshes explicitly so the policy does not depend on the filesystem's
// atime mount options), ties broken by path so two replicas pruning the same
// directory remove the same entries. Eviction is safe by construction — every
// read path degrades to a recompute — so a pruned entry costs wall time, never
// correctness.
var obsPersistEvicts = obs.NewCounter("memo.persist_evictions")

// SetBudget sets the store's byte ceiling (0 or negative = unbounded) and
// prunes immediately if the existing contents already exceed it.
func (s *Store) SetBudget(n int64) {
	s.budget.Store(n)
	s.prune()
}

// Budget returns the store's byte ceiling (0 = unbounded).
func (s *Store) Budget() int64 { return s.budget.Load() }

// pruneEntry is one on-disk entry as seen by the pruner.
type pruneEntry struct {
	path  string
	size  int64
	atime time.Time
}

// prune removes least-recently-used entries until the store fits its budget.
// Concurrent prunes coalesce behind one mutex; concurrent writers can push
// the store transiently over budget between a rename and the next prune,
// which is fine — the ceiling bounds steady state, not instants. All removal
// is best-effort: an entry that vanishes mid-walk was evicted by a racing
// replica, which only helps.
func (s *Store) prune() {
	budget := s.budget.Load()
	if budget <= 0 {
		return
	}
	s.pruneMu.Lock()
	defer s.pruneMu.Unlock()

	var entries []pruneEntry
	var total int64
	filepath.WalkDir(s.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(p) != ".gob" {
			return nil // temp files and transient walk errors are not entries
		}
		fi, err := d.Info()
		if err != nil {
			return nil
		}
		entries = append(entries, pruneEntry{path: p, size: fi.Size(), atime: atimeOf(fi)})
		total += fi.Size()
		return nil
	})
	if total <= budget {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].atime.Equal(entries[j].atime) {
			return entries[i].atime.Before(entries[j].atime)
		}
		return entries[i].path < entries[j].path
	})
	for _, e := range entries {
		if total <= budget {
			break
		}
		if os.Remove(e.path) == nil {
			obsPersistEvicts.Inc1()
		}
		total -= e.size // racing replica's removal counts toward the goal too
	}
}

// touch refreshes an entry's access time after a hit, making the LRU policy
// explicit instead of relying on atime mount semantics (relatime, noatime).
// Best-effort: a failed touch only ages the entry faster.
func (s *Store) touch(p string) {
	now := time.Now()
	os.Chtimes(p, now, now)
}
