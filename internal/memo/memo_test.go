package memo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoComputesOncePerKey(t *testing.T) {
	var m Memo[int, int]
	var calls atomic.Int32
	for i := 0; i < 5; i++ {
		v, err := m.Do(7, func() (int, error) { calls.Add(1); return 49, nil })
		if err != nil || v != 49 {
			t.Fatalf("Do: %d %v", v, err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("fn called %d times, want 1", calls.Load())
	}
	if m.Len() != 1 {
		t.Errorf("Len %d, want 1", m.Len())
	}
}

func TestDoMemoizesErrors(t *testing.T) {
	var m Memo[string, int]
	want := errors.New("deterministic failure")
	var calls atomic.Int32
	for i := 0; i < 3; i++ {
		_, err := m.Do("bad", func() (int, error) { calls.Add(1); return 0, want })
		if !errors.Is(err, want) {
			t.Fatalf("err %v", err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("failing fn retried %d times", calls.Load())
	}
}

// TestDistinctKeysComputeConcurrently is the singleflight property the cache
// study needed: one slow key must not serialize an unrelated key behind it.
func TestDistinctKeysComputeConcurrently(t *testing.T) {
	var m Memo[int, int]
	slowStarted := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		m.Do(1, func() (int, error) {
			close(slowStarted)
			<-release
			return 1, nil
		})
		close(done)
	}()
	<-slowStarted
	// While key 1 is mid-computation, key 2 must complete immediately.
	fast := make(chan struct{})
	go func() {
		m.Get(2, func() int { return 2 })
		close(fast)
	}()
	select {
	case <-fast:
	case <-time.After(5 * time.Second):
		t.Fatal("distinct key blocked behind an in-flight computation")
	}
	close(release)
	<-done
}

func TestSameKeySharesOneComputation(t *testing.T) {
	var m Memo[int, int]
	var calls atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := m.Get(42, func() int {
				calls.Add(1)
				time.Sleep(time.Millisecond)
				return 99
			})
			if v != 99 {
				t.Errorf("got %d", v)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("shared key computed %d times", calls.Load())
	}
}

func TestReset(t *testing.T) {
	var m Memo[int, int]
	var calls atomic.Int32
	f := func() int { calls.Add(1); return 1 }
	m.Get(1, f)
	m.Reset()
	if m.Len() != 0 {
		t.Errorf("Len %d after Reset", m.Len())
	}
	m.Get(1, f)
	if calls.Load() != 2 {
		t.Errorf("Reset did not force recompute (calls=%d)", calls.Load())
	}
}

func TestZeroValueUsable(t *testing.T) {
	var m Memo[struct{ A, B int }, string]
	if got := m.Get(struct{ A, B int }{1, 2}, func() string { return "ok" }); got != "ok" {
		t.Fatalf("zero-value memo: %q", got)
	}
}
