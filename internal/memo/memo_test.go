package memo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoComputesOncePerKey(t *testing.T) {
	var m Memo[int, int]
	var calls atomic.Int32
	for i := 0; i < 5; i++ {
		v, err := m.Do(7, func() (int, error) { calls.Add(1); return 49, nil })
		if err != nil || v != 49 {
			t.Fatalf("Do: %d %v", v, err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("fn called %d times, want 1", calls.Load())
	}
	if m.Len() != 1 {
		t.Errorf("Len %d, want 1", m.Len())
	}
}

func TestDoMemoizesErrors(t *testing.T) {
	var m Memo[string, int]
	want := errors.New("deterministic failure")
	var calls atomic.Int32
	for i := 0; i < 3; i++ {
		_, err := m.Do("bad", func() (int, error) { calls.Add(1); return 0, want })
		if !errors.Is(err, want) {
			t.Fatalf("err %v", err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("failing fn retried %d times", calls.Load())
	}
}

// TestDistinctKeysComputeConcurrently is the singleflight property the cache
// study needed: one slow key must not serialize an unrelated key behind it.
func TestDistinctKeysComputeConcurrently(t *testing.T) {
	var m Memo[int, int]
	slowStarted := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		m.Do(1, func() (int, error) {
			close(slowStarted)
			<-release
			return 1, nil
		})
		close(done)
	}()
	<-slowStarted
	// While key 1 is mid-computation, key 2 must complete immediately.
	fast := make(chan struct{})
	go func() {
		m.Get(2, func() int { return 2 })
		close(fast)
	}()
	select {
	case <-fast:
	case <-time.After(5 * time.Second):
		t.Fatal("distinct key blocked behind an in-flight computation")
	}
	close(release)
	<-done
}

func TestSameKeySharesOneComputation(t *testing.T) {
	var m Memo[int, int]
	var calls atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := m.Get(42, func() int {
				calls.Add(1)
				time.Sleep(time.Millisecond)
				return 99
			})
			if v != 99 {
				t.Errorf("got %d", v)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("shared key computed %d times", calls.Load())
	}
}

func TestReset(t *testing.T) {
	var m Memo[int, int]
	var calls atomic.Int32
	f := func() int { calls.Add(1); return 1 }
	m.Get(1, f)
	m.Reset()
	if m.Len() != 0 {
		t.Errorf("Len %d after Reset", m.Len())
	}
	m.Get(1, f)
	if calls.Load() != 2 {
		t.Errorf("Reset did not force recompute (calls=%d)", calls.Load())
	}
}

// TestSetCapEvictsLRU locks the bounded-memo bugfix for long-lived server
// processes: with a cap of 2, inserting a third key evicts the
// least-recently-used one, and touching a key protects it.
func TestSetCapEvictsLRU(t *testing.T) {
	var m Memo[int, int]
	m.SetCap(2)
	var calls atomic.Int32
	get := func(k int) int {
		return m.Get(k, func() int { calls.Add(1); return k * 10 })
	}
	get(1)
	get(2)
	get(1) // touch 1: it is now most recent
	get(3) // evicts 2 (LRU), not 1
	if m.Len() != 2 {
		t.Fatalf("Len %d, want 2", m.Len())
	}
	calls.Store(0)
	get(1)
	if calls.Load() != 0 {
		t.Errorf("key 1 was evicted despite being recently used")
	}
	get(2)
	if calls.Load() != 1 {
		t.Errorf("key 2 survived eviction (calls=%d, want 1 recompute)", calls.Load())
	}
}

// TestSetCapDeterministicEviction: the same access sequence always evicts
// the same keys — the policy is pure LRU over slot() order.
func TestSetCapDeterministicEviction(t *testing.T) {
	survivors := func() string {
		var m Memo[int, string]
		m.SetCap(3)
		seq := []int{1, 2, 3, 1, 4, 5, 2, 6}
		for _, k := range seq {
			m.Get(k, func() string { return "v" })
		}
		out := ""
		for k := 1; k <= 6; k++ {
			if m.Has(k) { // pure read: probing must not perturb recency
				out += string(rune('0' + k))
			}
		}
		return out
	}
	first := survivors()
	for i := 0; i < 10; i++ {
		if got := survivors(); got != first {
			t.Fatalf("eviction nondeterministic: %q vs %q", got, first)
		}
	}
	if first != "256" {
		t.Errorf("survivors %q, want 2, 5, 6 (LRU over the access sequence)", first)
	}
}

// TestSetCapOnPopulatedEvictsImmediately locks the bugfix for capping an
// already-populated memo: entries inserted before SetCap carry recency from
// their actual accesses, so the cap applies immediately and evicts in true
// LRU order (it used to be a doc-comment caveat that pre-cap entries were
// permanently uncollectable).
func TestSetCapOnPopulatedEvictsImmediately(t *testing.T) {
	var m Memo[int, int]
	for k := 1; k <= 5; k++ {
		m.Get(k, func() int { return k })
	}
	m.Get(2, func() int { return 2 }) // touch 2: recency is now 2,5,4,3,1
	m.SetCap(3)
	if m.Len() != 3 {
		t.Fatalf("Len %d immediately after SetCap(3) on populated memo, want 3", m.Len())
	}
	for _, k := range []int{2, 4, 5} {
		if !m.Has(k) {
			t.Errorf("key %d evicted despite being among the 3 most recent", k)
		}
	}
	// Tightening the cap keeps evicting from the least-recent end: 4, then 5.
	m.SetCap(2)
	if m.Has(4) || !m.Has(2) || !m.Has(5) {
		t.Errorf("SetCap(2) should evict 4 next (have 2=%v 4=%v 5=%v)",
			m.Has(2), m.Has(4), m.Has(5))
	}
	m.SetCap(1)
	if m.Has(5) || !m.Has(2) {
		t.Errorf("SetCap(1) should leave only the most recent key 2")
	}
}

// TestForgetRacesRegeneration drives Forget against singleflight
// regeneration of the same key — the cancelled-run-poisoning path: one
// request's context error is forgotten while other requests are already
// recomputing the entry. Run under -race; the invariant is no torn state and
// every Do observing either its own or a concurrent computation's value.
func TestForgetRacesRegeneration(t *testing.T) {
	var m Memo[int, int]
	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if w%2 == 0 {
					v, err := m.Do(1, func() (int, error) { return 11, nil })
					if err != nil || v != 11 {
						t.Errorf("Do during Forget race: %d %v", v, err)
						return
					}
				} else {
					m.Forget(1)
				}
			}
		}(w)
	}
	wg.Wait()
	// The memo must still be fully functional afterwards.
	if v := m.Get(1, func() int { return 11 }); v != 11 {
		t.Fatalf("post-race Get: %d", v)
	}
}

// TestUncappedUnchanged: without SetCap, the memo keeps its original
// grow-only behaviour — the one-shot CLI path is untouched by the cap.
func TestUncappedUnchanged(t *testing.T) {
	var m Memo[int, int]
	for k := 0; k < 1000; k++ {
		m.Get(k, func() int { return k })
	}
	if m.Len() != 1000 {
		t.Errorf("uncapped memo evicted entries: Len %d, want 1000", m.Len())
	}
}

func TestForget(t *testing.T) {
	var m Memo[string, int]
	var calls atomic.Int32
	f := func() (int, error) { calls.Add(1); return 7, nil }
	m.Do("k", f)
	m.Forget("k")
	if m.Len() != 0 {
		t.Errorf("Len %d after Forget", m.Len())
	}
	m.Do("k", f)
	if calls.Load() != 2 {
		t.Errorf("Forget did not force recompute (calls=%d)", calls.Load())
	}
	m.Forget("absent") // must be a no-op, not a panic
}

// TestForgetWithCap: forgetting a capped entry removes its recency node too,
// so the cap accounting stays exact.
func TestForgetWithCap(t *testing.T) {
	var m Memo[int, int]
	m.SetCap(2)
	m.Get(1, func() int { return 1 })
	m.Get(2, func() int { return 2 })
	m.Forget(1)
	m.Get(3, func() int { return 3 })
	// 2 and 3 fit in the cap; nothing should have been evicted.
	for _, k := range []int{2, 3} {
		if !m.Has(k) {
			t.Errorf("key %d missing after Forget(1)", k)
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var m Memo[struct{ A, B int }, string]
	if got := m.Get(struct{ A, B int }{1, 2}, func() string { return "ok" }); got != "ok" {
		t.Fatalf("zero-value memo: %q", got)
	}
}
