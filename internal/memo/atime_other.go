//go:build !linux

package memo

import (
	"os"
	"time"
)

// atimeOf degrades to the modification time on platforms without a portable
// access-time field; GetBytes's explicit touch updates both, so the LRU
// policy is unchanged.
func atimeOf(fi os.FileInfo) time.Time { return fi.ModTime() }
