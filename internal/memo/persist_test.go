package memo

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s
}

func TestOpenStoreRequiresDir(t *testing.T) {
	if _, err := OpenStore(""); err == nil {
		t.Fatal("OpenStore(\"\") should fail")
	}
}

func TestStoreRoundtrip(t *testing.T) {
	s := testStore(t)
	if _, ok := s.GetBytes("k"); ok {
		t.Fatal("empty store reported a hit")
	}
	want := []byte("payload bytes")
	if err := s.PutBytes("k", want); err != nil {
		t.Fatalf("PutBytes: %v", err)
	}
	got, ok := s.GetBytes("k")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("GetBytes: %q ok=%v, want %q", got, ok, want)
	}
	if !s.Has("k") || s.Has("other") {
		t.Errorf("Has: k=%v other=%v", s.Has("k"), s.Has("other"))
	}
}

// TestPersistDoReusesAcrossInstances is the cross-process contract in
// miniature: a second Store opened on the same directory serves the entry
// without calling fn — what lets shard workers and repeated CLI runs share
// studies.
func TestPersistDoReusesAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int32
	fn := func() ([]float64, error) { calls.Add(1); return []float64{1, 2, 3}, nil }

	s1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := PersistDo(s1, "study|a", fn)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir) // fresh handle = "new process"
	if err != nil {
		t.Fatal(err)
	}
	v2, err := PersistDo(s2, "study|a", fn)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Errorf("fn called %d times across two store handles, want 1", calls.Load())
	}
	if len(v1) != 3 || len(v2) != 3 || v1[1] != v2[1] {
		t.Errorf("values diverge: %v vs %v", v1, v2)
	}
}

func TestPersistDoNilStoreDegrades(t *testing.T) {
	var calls atomic.Int32
	for i := 0; i < 2; i++ {
		v, err := PersistDo(nil, "k", func() (int, error) { calls.Add(1); return 5, nil })
		if err != nil || v != 5 {
			t.Fatalf("nil-store PersistDo: %d %v", v, err)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("nil store must compute every time (calls=%d)", calls.Load())
	}
}

// TestPersistDoRoundTripsInf locks the reason the codec is gob, not JSON:
// study rows carry ±Inf padding (ProfileCacheTPI's tpi[0]) and the
// byte-identical-render contract needs float64 round-tripped bit-exactly.
func TestPersistDoRoundTripsInf(t *testing.T) {
	s := testStore(t)
	want := []float64{math.Inf(1), 1.25, math.Inf(-1), 0.1 + 0.2}
	fn := func() ([]float64, error) { return append([]float64(nil), want...), nil }
	if _, err := PersistDo(s, "inf", fn); err != nil {
		t.Fatal(err)
	}
	got, err := PersistDo(s, "inf", func() ([]float64, error) {
		t.Error("fn called despite a persisted entry")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Errorf("slot %d: %x != %x (not bit-exact)", i,
				math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

func TestPersistDoNeverPersistsErrors(t *testing.T) {
	s := testStore(t)
	boom := errors.New("transient")
	var calls atomic.Int32
	for i := 0; i < 2; i++ {
		_, err := PersistDo(s, "bad", func() (int, error) { calls.Add(1); return 0, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("err %v", err)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("error was persisted: fn called %d times, want 2", calls.Load())
	}
	if s.Has("bad") {
		t.Error("failed computation left an entry on disk")
	}
}

// TestCorruptEntryIsMissAndRepaired: truncation, garbage, wrong key and
// wrong schema all degrade to a miss, remove the bad file, and the next
// compute republishes a good entry.
func TestCorruptEntryIsMissAndRepaired(t *testing.T) {
	corruptions := map[string]func(s *Store, p string){
		"truncated": func(s *Store, p string) {
			raw, _ := os.ReadFile(p)
			os.WriteFile(p, raw[:len(raw)/2], 0o644)
		},
		"garbage": func(s *Store, p string) {
			os.WriteFile(p, []byte("not a gob stream"), 0o644)
		},
		"wrong-key": func(s *Store, p string) {
			var buf bytes.Buffer
			e := storeEntry{Schema: storeSchema, Key: "other", Sum: 0, Payload: nil}
			gob.NewEncoder(&buf).Encode(&e)
			os.WriteFile(p, buf.Bytes(), 0o644)
		},
		"wrong-schema": func(s *Store, p string) {
			var buf bytes.Buffer
			e := storeEntry{Schema: "capsim/study-cache/v0", Key: "k",
				Sum: 0, Payload: nil}
			gob.NewEncoder(&buf).Encode(&e)
			os.WriteFile(p, buf.Bytes(), 0o644)
		},
		"bad-checksum": func(s *Store, p string) {
			var buf bytes.Buffer
			e := storeEntry{Schema: storeSchema, Key: "k", Sum: 12345,
				Payload: []byte("payload")}
			gob.NewEncoder(&buf).Encode(&e)
			os.WriteFile(p, buf.Bytes(), 0o644)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s := testStore(t)
			if err := s.PutBytes("k", []byte("good")); err != nil {
				t.Fatal(err)
			}
			p := s.path("k")
			corrupt(s, p)
			if _, ok := s.GetBytes("k"); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Errorf("corrupt entry not removed (stat err %v)", err)
			}
			// The next write repairs the slot.
			if err := s.PutBytes("k", []byte("good")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.GetBytes("k"); !ok || string(got) != "good" {
				t.Errorf("repaired entry unreadable: %q ok=%v", got, ok)
			}
		})
	}
}

// TestConcurrentPutSameKey: racing writers (the cross-process publish race,
// squeezed into goroutines) must each leave the entry readable and valid —
// atomic temp+rename means readers never observe a torn file.
func TestConcurrentPutSameKey(t *testing.T) {
	s := testStore(t)
	payload := bytes.Repeat([]byte("deterministic"), 1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.PutBytes("hot", payload); err != nil {
					t.Errorf("PutBytes: %v", err)
					return
				}
				if got, ok := s.GetBytes("hot"); ok && !bytes.Equal(got, payload) {
					t.Error("read a torn entry")
					return
				}
			}
		}()
	}
	wg.Wait()
	got, ok := s.GetBytes("hot")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("entry unreadable after concurrent writes")
	}
	// No temp files left behind: every writer either renamed or removed.
	leftovers, _ := filepath.Glob(filepath.Join(s.Dir(), "put-*.tmp"))
	if len(leftovers) != 0 {
		t.Errorf("stray temp files: %v", leftovers)
	}
}

func TestStoreFanOut(t *testing.T) {
	s := testStore(t)
	p := s.path("some key")
	rel, err := filepath.Rel(s.Dir(), p)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Dir(rel)
	if len(dir) != 2 {
		t.Errorf("fan-out dir %q, want a two-hex-digit prefix", dir)
	}
}
