package memo

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// entrySize returns the on-disk size of key's entry (envelope included).
func entrySize(t *testing.T, s *Store, key string) int64 {
	t.Helper()
	fi, err := os.Stat(s.path(key))
	if err != nil {
		t.Fatalf("stat %q: %v", key, err)
	}
	return fi.Size()
}

// age backdates key's entry by d so the LRU order is under test control
// instead of the wall clock.
func age(t *testing.T, s *Store, key string, d time.Duration) {
	t.Helper()
	when := time.Now().Add(-d)
	if err := os.Chtimes(s.path(key), when, when); err != nil {
		t.Fatalf("chtimes %q: %v", key, err)
	}
}

// TestStoreBudgetPrunesLRU: publications past the ceiling evict the
// least-recently-used entries first, and a read refreshes an entry's age.
func TestStoreBudgetPrunesLRU(t *testing.T) {
	s := testStore(t)
	for _, k := range []string{"a", "b", "c"} {
		if err := s.PutBytes(k, make([]byte, 256)); err != nil {
			t.Fatalf("PutBytes(%q): %v", k, err)
		}
	}
	one := entrySize(t, s, "a")
	age(t, s, "a", 3*time.Hour)
	age(t, s, "b", 2*time.Hour)
	age(t, s, "c", 1*time.Hour)

	// Reading "a" must refresh it: after the touch, "b" is the oldest.
	if _, ok := s.GetBytes("a"); !ok {
		t.Fatal("entry a unreadable")
	}

	// Budget for two entries plus the incoming third: publishing "d" must
	// evict exactly the stalest survivors until the total fits.
	s.SetBudget(3 * one)
	if err := s.PutBytes("d", make([]byte, 256)); err != nil {
		t.Fatalf("PutBytes(d): %v", err)
	}
	if s.Has("b") {
		t.Error("LRU entry b survived past-budget publication")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !s.Has(k) {
			t.Errorf("entry %q evicted out of LRU order", k)
		}
	}
}

// TestStoreBudgetUnbounded: the default budget never evicts.
func TestStoreBudgetUnbounded(t *testing.T) {
	s := testStore(t)
	if s.Budget() != 0 {
		t.Fatalf("default budget %d, want 0", s.Budget())
	}
	for i := 0; i < 8; i++ {
		if err := s.PutBytes(fmt.Sprint("k", i), make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if !s.Has(fmt.Sprint("k", i)) {
			t.Errorf("entry k%d missing under unbounded budget", i)
		}
	}
}

// TestStoreBudgetSetPrunesImmediately: attaching a budget to a directory that
// already exceeds it prunes on the spot (the SetStudyCacheDir wiring relies
// on this ordering being irrelevant).
func TestStoreBudgetSetPrunesImmediately(t *testing.T) {
	s := testStore(t)
	for _, k := range []string{"x", "y"} {
		if err := s.PutBytes(k, make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	age(t, s, "x", time.Hour)
	s.SetBudget(entrySize(t, s, "y"))
	if s.Has("x") {
		t.Error("older entry x survived SetBudget below current footprint")
	}
	if !s.Has("y") {
		t.Error("newer entry y evicted by SetBudget")
	}
}

// TestStoreBudgetTieBreakDeterministic: equal access times prune in path
// order, so replicas sweeping a shared directory remove the same entries.
func TestStoreBudgetTieBreakDeterministic(t *testing.T) {
	keys := []string{"t0", "t1", "t2", "t3"}
	build := func() (*Store, []string) {
		s := testStore(t)
		when := time.Now().Add(-time.Hour)
		for _, k := range keys {
			if err := s.PutBytes(k, make([]byte, 128)); err != nil {
				t.Fatal(err)
			}
			if err := os.Chtimes(s.path(k), when, when); err != nil {
				t.Fatal(err)
			}
		}
		s.SetBudget(2 * entrySize(t, s, keys[0]))
		var kept []string
		for _, k := range keys {
			if s.Has(k) {
				kept = append(kept, k)
			}
		}
		return s, kept
	}
	_, kept1 := build()
	_, kept2 := build()
	if len(kept1) != 2 {
		t.Fatalf("kept %d entries, want 2 (%v)", len(kept1), kept1)
	}
	if fmt.Sprint(kept1) != fmt.Sprint(kept2) {
		t.Errorf("tie-break nondeterministic: %v vs %v", kept1, kept2)
	}
}
