//go:build linux

package memo

import (
	"os"
	"syscall"
	"time"
)

// atimeOf returns the file's access time, falling back to the modification
// time when the stat shape is not the expected platform one.
func atimeOf(fi os.FileInfo) time.Time {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return time.Unix(st.Atim.Sec, st.Atim.Nsec)
	}
	return fi.ModTime()
}
