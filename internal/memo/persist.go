// Persistent tier: an optional content-addressed study cache on disk.
//
// A Store maps canonical key strings to encoded values under a root
// directory, so independent replicas, repeated CLI runs, shard workers and
// CI share memoized studies instead of recomputing them. The design follows
// the rest of the memo package: correctness never depends on the cache —
// every read path degrades to a recompute — so the store can be deleted,
// truncated, or concurrently written at any time.
//
//   - Content addressing: the file name is the SHA-256 of the key, fanned
//     out over 256 subdirectories; the full key is stored inside the entry
//     and verified on read, so a hash collision degrades to a miss, never to
//     a wrong value.
//   - Atomic publication: writers encode into a unique temp file in the
//     store root and rename(2) it into place. Readers therefore see either a
//     complete entry or none; two writers racing on one key both publish a
//     byte-equivalent entry and the later rename wins.
//   - Corruption tolerance: any decode problem — truncated file, wrong
//     magic, wrong schema version, key mismatch, checksum mismatch — counts
//     as a miss, bumps memo.persist_errors, and best-effort removes the bad
//     entry so the next write repairs it.
//   - Versioned schema: entries live under <root>/v1 and carry the schema
//     string inside the envelope. A future incompatible layout bumps the
//     directory and the string; old entries are simply never read again.
package memo

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"capsim/internal/obs"
)

// Telemetry (internal/obs): the persistent tier's counters, distinct from
// the in-memory hit/miss pair so a warm-disk cold-process run is observable
// (memo.hits stays 0 while memo.persist_hits climbs).
var (
	obsPersistHits   = obs.NewCounter("memo.persist_hits")   // entry served from disk
	obsPersistMisses = obs.NewCounter("memo.persist_misses") // no usable entry on disk
	obsPersistWrites = obs.NewCounter("memo.persist_writes") // entries published
	obsPersistErrors = obs.NewCounter("memo.persist_errors") // corrupt/unreadable entries or failed writes
)

// storeSchema versions the on-disk entry envelope; storeDir versions the
// layout. Bump both together on incompatible changes.
const (
	storeSchema = "capsim/study-cache/v1"
	storeDir    = "v1"
)

// storeEntry is the on-disk envelope. Payload is the caller's encoded value;
// Sum is its CRC-32 (IEEE), the cheap end-to-end check that catches
// truncation and bit rot without re-hashing the whole key space.
type storeEntry struct {
	Schema  string
	Key     string
	Sum     uint32
	Payload []byte
}

// Store is a persistent content-addressed blob cache rooted at a directory.
// The zero value is not usable; create one with OpenStore. All methods are
// safe for concurrent use by any number of goroutines and processes.
type Store struct {
	root string // <user dir>/v1

	// budget is the optional byte ceiling (0 = unbounded); pruneMu
	// serializes LRU sweeps. See budget.go.
	budget  atomic.Int64
	pruneMu sync.Mutex
}

// OpenStore opens (creating if needed) a persistent store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("memo: empty store directory")
	}
	root := filepath.Join(dir, storeDir)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("memo: open store: %w", err)
	}
	return &Store{root: root}, nil
}

// Dir returns the store's versioned root directory.
func (s *Store) Dir() string { return s.root }

// path returns the entry file for key: two-hex-digit fan-out over the
// SHA-256 of the key, so no single directory grows unboundedly.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.root, name[:2], name+".gob")
}

// GetBytes returns the payload stored for key, or ok=false when the entry is
// absent or unusable. Unusable entries (truncated, wrong schema, key or
// checksum mismatch) are removed best-effort so a later write repairs them.
func (s *Store) GetBytes(key string) ([]byte, bool) {
	p := s.path(key)
	raw, err := os.ReadFile(p)
	if err != nil {
		obsPersistMisses.Inc1()
		return nil, false
	}
	var e storeEntry
	if derr := gob.NewDecoder(bytes.NewReader(raw)).Decode(&e); derr != nil ||
		e.Schema != storeSchema || e.Key != key || e.Sum != crc32.ChecksumIEEE(e.Payload) {
		obsPersistErrors.Inc1()
		obsPersistMisses.Inc1()
		os.Remove(p) // best-effort repair; the next Put rewrites it
		return nil, false
	}
	obsPersistHits.Inc1()
	s.touch(p) // refresh LRU age explicitly; see budget.go
	return e.Payload, true
}

// PutBytes publishes payload under key: encode to a unique temp file in the
// store root, then rename into place. Concurrent writers for the same key
// are both deterministic producers of the same bytes, so whichever rename
// lands last is equivalent.
func (s *Store) PutBytes(key string, payload []byte) error {
	var buf bytes.Buffer
	e := storeEntry{Schema: storeSchema, Key: key, Sum: crc32.ChecksumIEEE(payload), Payload: payload}
	if err := gob.NewEncoder(&buf).Encode(&e); err != nil {
		obsPersistErrors.Inc1()
		return fmt.Errorf("memo: encode %q: %w", key, err)
	}
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		obsPersistErrors.Inc1()
		return err
	}
	tmp, err := os.CreateTemp(s.root, "put-*.tmp")
	if err != nil {
		obsPersistErrors.Inc1()
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		obsPersistErrors.Inc1()
		return err
	}
	if err := tmp.Close(); err != nil {
		obsPersistErrors.Inc1()
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		obsPersistErrors.Inc1()
		return err
	}
	obsPersistWrites.Inc1()
	s.prune() // enforce the byte budget after every publication
	return nil
}

// Has reports whether a usable entry exists for key without decoding its
// payload into a value (it still fully validates the envelope).
func (s *Store) Has(key string) bool {
	_, ok := s.GetBytes(key)
	return ok
}

// PersistDo is Do against a Store: return the decoded entry for key if one
// is usable, otherwise compute with fn and publish the result. A nil store
// degrades to a plain fn() call, so callers thread one optional pointer.
//
// Values are encoded with encoding/gob, which round-trips float64 bit-exactly
// (including ±Inf and NaN) — the byte-identical-render contract therefore
// survives the disk hop. V must be a gob-encodable type with exported fields.
// Errors from fn are never persisted (the disk tier memoizes results, not
// failures), and a failed publish degrades to returning the computed value.
func PersistDo[V any](s *Store, key string, fn func() (V, error)) (V, error) {
	if s == nil {
		return fn()
	}
	if raw, ok := s.GetBytes(key); ok {
		var v V
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&v); err == nil {
			return v, nil
		}
		// Payload decoded as an envelope but not as V: treat as corruption.
		obsPersistErrors.Inc1()
		os.Remove(s.path(key))
	}
	v, err := fn()
	if err != nil {
		return v, err
	}
	var buf bytes.Buffer
	if encErr := gob.NewEncoder(&buf).Encode(&v); encErr == nil {
		// Publish failures are non-fatal by design: the value is correct,
		// the disk tier just stays cold for this key.
		_ = s.PutBytes(key, buf.Bytes())
	} else {
		obsPersistErrors.Inc1()
	}
	return v, nil
}
