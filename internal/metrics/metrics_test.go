package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if got := GeoMean([]float64{1, -1}); got != 0 {
		t.Errorf("GeoMean with negative = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
}

func TestGeoMeanEdgeCases(t *testing.T) {
	// A zero element (not just negative) must also short-circuit to 0:
	// log(0) would otherwise poison the sum with -Inf.
	if got := GeoMean([]float64{3, 0, 5}); got != 0 {
		t.Errorf("GeoMean with zero element = %v", got)
	}
	// Single element: the geometric mean is the element itself.
	if got := GeoMean([]float64{7.25}); math.Abs(got-7.25) > 1e-12 {
		t.Errorf("GeoMean single = %v", got)
	}
	// Identical elements: mean equals the common value exactly (up to
	// rounding through log/exp).
	if got := GeoMean([]float64{2.5, 2.5, 2.5}); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("GeoMean constant = %v", got)
	}
	// Values whose product overflows float64 still work via the log-sum
	// form: geomean(1e200, 1e200, 1e-200) = 1e200^(2/3) * 1e-200^(1/3).
	got := GeoMean([]float64{1e200, 1e200, 1e-200})
	want := math.Exp((2*math.Log(1e200) + math.Log(1e-200)) / 3)
	if math.IsInf(got, 0) || math.Abs(got-want) > want*1e-12 {
		t.Errorf("GeoMean overflow-resistant = %v want %v", got, want)
	}
	// Empty (as opposed to nil) slice.
	if got := GeoMean([]float64{}); got != 0 {
		t.Errorf("GeoMean(empty) = %v", got)
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(2, 1); got != 0.5 {
		t.Errorf("Reduction = %v", got)
	}
	if got := Reduction(0, 1); got != 0 {
		t.Errorf("Reduction(0,..) = %v", got)
	}
	if got := Reduction(1, 2); got != -1 {
		t.Errorf("negative reduction = %v", got)
	}
}

func TestReductionEdgeCases(t *testing.T) {
	// Zero base with zero improved: still the defined 0, not NaN.
	if got := Reduction(0, 0); got != 0 {
		t.Errorf("Reduction(0,0) = %v", got)
	}
	// Improved == base: no change.
	if got := Reduction(3.5, 3.5); got != 0 {
		t.Errorf("Reduction(equal) = %v", got)
	}
	// Improved down to zero: full (100%) reduction.
	if got := Reduction(4, 0); got != 1 {
		t.Errorf("Reduction(4,0) = %v", got)
	}
	// Negative base is not special-cased; the ratio is still well defined
	// and must not be NaN.
	if got := Reduction(-2, -1); math.IsNaN(got) {
		t.Errorf("Reduction(-2,-1) = %v", got)
	}
}

func TestMeanSingle(t *testing.T) {
	if got := Mean([]float64{41.5}); got != 41.5 {
		t.Errorf("Mean single = %v", got)
	}
	if got := Mean([]float64{}); got != 0 {
		t.Errorf("Mean(empty) = %v", got)
	}
}

func TestFigureRenderEmpty(t *testing.T) {
	// A figure with no series renders its header without panicking.
	out := Figure{ID: "fig0", Title: "empty", XLabel: "x", YLabel: "y"}.Render()
	if !strings.Contains(out, "fig0") || !strings.Contains(out, "empty") {
		t.Errorf("empty figure render:\n%s", out)
	}
	// A series with no points likewise.
	out = Figure{
		ID: "fig0", Title: "empty series", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "a"}},
	}.Render()
	if !strings.Contains(out, "a") {
		t.Errorf("empty-series figure render:\n%s", out)
	}
}

func TestTableRenderRagged(t *testing.T) {
	// Rows wider than the column header list must not panic or corrupt
	// alignment of the declared columns.
	tb := Table{
		ID: "t2", Title: "ragged",
		Columns: []string{"name"},
		Rows:    [][]string{{"alpha"}, {"beta"}},
	}
	out := tb.Render()
	for _, want := range []string{"t2", "ragged", "alpha", "beta"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Empty table: header + separator only.
	out = Table{ID: "t3", Title: "empty", Columns: []string{"c"}}.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("empty table line count %d:\n%s", len(lines), out)
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{
		ID: "figX", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{0.1, 0.2}},
			{Name: "b", X: []float64{2, 3}, Y: []float64{0.3, 0.4}},
		},
	}
	out := f.Render()
	for _, want := range []string{"figX", "demo", "a", "b", "0.1000", "0.4000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Series b has no value at x=1: rendered as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing placeholder for absent point:\n%s", out)
	}
	// The union domain is sorted: 1 before 3.
	if strings.Index(out, " 1") > strings.Index(out, " 3") {
		t.Errorf("x values out of order:\n%s", out)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		ID: "t1", Title: "demo table",
		Columns: []string{"name", "value"},
		Rows:    [][]string{{"alpha", "1.0"}, {"b", "22.5"}},
	}
	out := tb.Render()
	for _, want := range []string{"t1", "demo table", "name", "alpha", "22.5", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + separator + 2 rows + title line.
	if len(lines) != 5 {
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if got := F(0.123456); got != "0.1235" {
		t.Errorf("F = %q", got)
	}
	if got := Pct(0.256); got != "+25.6%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(-0.01); got != "-1.0%" {
		t.Errorf("Pct = %q", got)
	}
}
