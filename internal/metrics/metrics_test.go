package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if got := GeoMean([]float64{1, -1}); got != 0 {
		t.Errorf("GeoMean with negative = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(2, 1); got != 0.5 {
		t.Errorf("Reduction = %v", got)
	}
	if got := Reduction(0, 1); got != 0 {
		t.Errorf("Reduction(0,..) = %v", got)
	}
	if got := Reduction(1, 2); got != -1 {
		t.Errorf("negative reduction = %v", got)
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{
		ID: "figX", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{0.1, 0.2}},
			{Name: "b", X: []float64{2, 3}, Y: []float64{0.3, 0.4}},
		},
	}
	out := f.Render()
	for _, want := range []string{"figX", "demo", "a", "b", "0.1000", "0.4000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Series b has no value at x=1: rendered as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing placeholder for absent point:\n%s", out)
	}
	// The union domain is sorted: 1 before 3.
	if strings.Index(out, " 1") > strings.Index(out, " 3") {
		t.Errorf("x values out of order:\n%s", out)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		ID: "t1", Title: "demo table",
		Columns: []string{"name", "value"},
		Rows:    [][]string{{"alpha", "1.0"}, {"b", "22.5"}},
	}
	out := tb.Render()
	for _, want := range []string{"t1", "demo table", "name", "alpha", "22.5", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + separator + 2 rows + title line.
	if len(lines) != 5 {
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if got := F(0.123456); got != "0.1235" {
		t.Errorf("F = %q", got)
	}
	if got := Pct(0.256); got != "+25.6%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(-0.01); got != "-1.0%" {
		t.Errorf("Pct = %q", got)
	}
}
