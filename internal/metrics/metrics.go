// Package metrics provides the TPI bookkeeping and plain-text rendering the
// experiment harness uses to reproduce the paper's tables and figures as
// aligned text series.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice) — the
// paper's "average" rows aggregate per-application TPI arithmetically.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 if any element is
// non-positive or the slice is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Reduction returns the fractional reduction from base to improved
// (positive = improvement), 0 when base is 0.
func Reduction(base, improved float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - improved) / base
}

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproduced paper figure: a set of series over a common domain.
type Figure struct {
	ID     string // "fig7a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render prints the figure as an aligned text table: one row per X value,
// one column per series.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%s vs %s\n", f.YLabel, f.XLabel)
	// Collect the union of X values.
	xset := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xset[x] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	w := 0
	for _, s := range f.Series {
		if len(s.Name) > w {
			w = len(s.Name)
		}
	}
	if w < 8 {
		w = 8
	}
	fmt.Fprintf(&b, "%*s", w, "")
	for _, x := range xs {
		fmt.Fprintf(&b, " %9.4g", x)
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%*s", w, s.Name)
		idx := map[float64]float64{}
		for i, x := range s.X {
			idx[x] = s.Y[i]
		}
		for _, x := range xs {
			if y, ok := idx[x]; ok {
				fmt.Fprintf(&b, " %9.4f", y)
			} else {
				fmt.Fprintf(&b, " %9s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table is a reproduced result table (per-application bars of Figures 8, 9
// and 11 render naturally as tables).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Render prints the table with aligned columns.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// F formats a float with 4 significant digits for table cells.
func F(x float64) string { return fmt.Sprintf("%.4f", x) }

// Pct formats a fraction as a signed percentage.
func Pct(x float64) string { return fmt.Sprintf("%+.1f%%", 100*x) }
