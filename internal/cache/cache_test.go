package cache

import (
	"testing"
	"testing/quick"

	"capsim/internal/rng"
)

func smallParams() Params {
	p := PaperParams()
	return p
}

func TestParamsValidate(t *testing.T) {
	if err := PaperParams().Validate(); err != nil {
		t.Fatalf("paper params rejected: %v", err)
	}
	bad := PaperParams()
	bad.Increments = 1
	if err := bad.Validate(); err == nil {
		t.Error("single increment accepted")
	}
	bad = PaperParams()
	bad.BlockBytes = 48
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two block accepted")
	}
	bad = PaperParams()
	bad.IncrementBytes = 1000
	if err := bad.Validate(); err == nil {
		t.Error("indivisible increment accepted")
	}
}

func TestGeometryHelpers(t *testing.T) {
	p := PaperParams()
	if got := p.Sets(); got != 128 {
		t.Errorf("sets = %d, want 128", got)
	}
	if got := p.TotalWays(); got != 32 {
		t.Errorf("total ways = %d, want 32", got)
	}
	if got := p.TotalBytes(); got != 128*1024 {
		t.Errorf("total bytes = %d, want 128K", got)
	}
	if got := p.L1Bytes(2); got != 16*1024 {
		t.Errorf("L1Bytes(2) = %d", got)
	}
	if got := p.L1Assoc(2); got != 4 {
		t.Errorf("L1Assoc(2) = %d", got)
	}
	lo, hi := p.Boundaries()
	if lo != 1 || hi != 15 {
		t.Errorf("boundaries [%d,%d], want [1,15]", lo, hi)
	}
}

func TestNewRejectsBadBoundary(t *testing.T) {
	p := PaperParams()
	if _, err := New(p, 0); err == nil {
		t.Error("boundary 0 accepted")
	}
	if _, err := New(p, 16); err == nil {
		t.Error("boundary = increments accepted")
	}
}

func TestHitAfterFill(t *testing.T) {
	h := MustNew(smallParams(), 2)
	addr := uint64(0x12340)
	if lvl := h.Access(addr, false); lvl != Miss {
		t.Fatalf("first access level %v, want Miss", lvl)
	}
	if lvl := h.Access(addr, false); lvl != L1Hit {
		t.Fatalf("second access level %v, want L1Hit", lvl)
	}
	// Same block, different word.
	if lvl := h.Access(addr+8, false); lvl != L1Hit {
		t.Fatalf("same-block access level %v, want L1Hit", lvl)
	}
	// Different block.
	if lvl := h.Access(addr+uint64(h.Params().BlockBytes), false); lvl != Miss {
		t.Fatalf("next-block access should miss")
	}
}

func TestL1EvictionGoesToL2(t *testing.T) {
	p := smallParams()
	h := MustNew(p, 1) // 2 L1 ways per set
	sets := uint64(p.Sets())
	blk := uint64(p.BlockBytes)
	// Fill 3 blocks mapping to set 0: L1 holds 2; the first should be
	// demoted to L2, not lost.
	a0 := uint64(0)
	a1 := sets * blk
	a2 := 2 * sets * blk
	h.Access(a0, false)
	h.Access(a1, false)
	h.Access(a2, false) // evicts a0 (LRU) into L2
	if lvl := h.Access(a0, false); lvl != L2Hit {
		t.Fatalf("demoted block access level %v, want L2Hit", lvl)
	}
	// Exclusive swap: a0 is now back in L1.
	if lvl, ok := h.Contains(a0); !ok || lvl != L1Hit {
		t.Errorf("swapped-in block at %v (present %v), want L1", lvl, ok)
	}
	if err := h.CheckExclusive(); err != nil {
		t.Error(err)
	}
}

func TestLRUWithinL1(t *testing.T) {
	p := smallParams()
	h := MustNew(p, 1)
	sets := uint64(p.Sets())
	blk := uint64(p.BlockBytes)
	a0, a1, a2 := uint64(0), sets*blk, 2*sets*blk
	h.Access(a0, false)
	h.Access(a1, false)
	h.Access(a0, false) // a0 now MRU; a1 is LRU
	h.Access(a2, false) // must evict a1
	if lvl, _ := h.Contains(a0); lvl != L1Hit {
		t.Error("MRU block was evicted")
	}
	if lvl, _ := h.Contains(a1); lvl != L2Hit {
		t.Error("LRU block was not demoted")
	}
}

func TestBoundaryMovePreservesContents(t *testing.T) {
	p := smallParams()
	h := MustNew(p, 2)
	r := rng.New(99)
	addrs := make([]uint64, 600)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1 << 18))
		h.Access(addrs[i], r.Bool(0.3))
	}
	before := h.BlockCount()
	if err := h.SetBoundary(6); err != nil {
		t.Fatal(err)
	}
	if after := h.BlockCount(); after != before {
		t.Errorf("boundary move changed block count %d -> %d", before, after)
	}
	if err := h.CheckExclusive(); err != nil {
		t.Error(err)
	}
	// Every resident block must still be found somewhere.
	for _, a := range addrs {
		if _, ok := h.Contains(a); !ok {
			t.Fatalf("block %#x lost after reconfiguration", a)
		}
	}
	if err := h.SetBoundary(0); err == nil {
		t.Error("illegal boundary accepted")
	}
}

func TestExclusivityProperty(t *testing.T) {
	// Property: after any access sequence with interleaved boundary
	// moves, no block is in two places, and a re-access of the last
	// address always hits.
	f := func(seed uint64, moves []uint8) bool {
		p := smallParams()
		h := MustNew(p, 2)
		r := rng.New(seed)
		var last uint64
		for i := 0; i < 400; i++ {
			last = uint64(r.Intn(1 << 17))
			h.Access(last, r.Bool(0.3))
			if len(moves) > 0 && i%37 == 0 {
				k := 1 + int(moves[i%len(moves)])%8
				if err := h.SetBoundary(k); err != nil {
					return false
				}
			}
		}
		if err := h.CheckExclusive(); err != nil {
			return false
		}
		return h.Access(last, false) == L1Hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	h := MustNew(smallParams(), 2)
	h.Access(0, true)
	h.Access(0, false)
	s := h.Stats()
	if s.Refs != 2 || s.Writes != 1 || s.L1Misses != 1 || s.L2Misses != 1 {
		t.Errorf("stats %+v", s)
	}
	if s.L1MissRatio() != 0.5 || s.L2MissRatio() != 0.5 {
		t.Errorf("ratios %v %v", s.L1MissRatio(), s.L2MissRatio())
	}
	h.ResetStats()
	if h.Stats().Refs != 0 {
		t.Error("ResetStats did not clear")
	}
	if h.BlockCount() == 0 {
		t.Error("ResetStats cleared contents")
	}
}

func TestWritebackCounting(t *testing.T) {
	p := smallParams()
	h := MustNew(p, 1)
	sets := uint64(p.Sets())
	blk := uint64(p.BlockBytes)
	// Fill all 32 ways of set 0 with dirty blocks, then push one more:
	// the L2 LRU eviction must count a writeback.
	for i := uint64(0); i < 32; i++ {
		h.Access(i*sets*blk, true)
	}
	if h.Stats().Writebacks != 0 {
		t.Fatalf("premature writebacks: %d", h.Stats().Writebacks)
	}
	h.Access(32*sets*blk, true)
	if h.Stats().Writebacks == 0 {
		t.Error("dirty eviction not counted as writeback")
	}
}

func TestLevelString(t *testing.T) {
	if L1Hit.String() != "L1" || L2Hit.String() != "L2" || Miss.String() != "memory" {
		t.Error("Level.String broken")
	}
}
