package cache

import "capsim/internal/obs"

// Telemetry (internal/obs). The per-reference hot paths (Hierarchy.Access,
// MultiHierarchy.Access) are never touched: both simulators keep accumulating
// their local Stats exactly as before, and PublishObs hands the *delta since
// the last publish* to the global counters at coarse boundaries (end of a
// profile pass or interval run). The only hot-path addition is two plain
// (non-atomic, unconditional) int64 increments in MultiHierarchy classifying
// fast- vs slow-path accesses — deterministic, identical with obs on or off,
// and far cheaper than the probe loop they annotate.
var (
	obsRefs       = obs.NewCounter("cache.refs")       // references simulated (Hierarchy)
	obsWritesC    = obs.NewCounter("cache.writes")     // write references (Hierarchy)
	obsL1Misses   = obs.NewCounter("cache.l1_misses")  // L1 misses (Hierarchy)
	obsL2Misses   = obs.NewCounter("cache.l2_misses")  // structure misses (Hierarchy)
	obsSwaps      = obs.NewCounter("cache.swaps")      // exclusive L1<->L2 swaps (Hierarchy)
	obsWritebacks = obs.NewCounter("cache.writebacks") // dirty evictions (Hierarchy)

	obsMultiRefs  = obs.NewCounter("cache.multi.refs")        // references through MultiHierarchy
	obsMultiFast  = obs.NewCounter("cache.multi.fast_hits")   // stack-distance-zero fast-path hits
	obsMultiSlow  = obs.NewCounter("cache.multi.slow_accs")   // lockstep slow-path accesses
	obsMultiL1    = obs.NewCounter("cache.multi.l1_misses")   // L1 misses summed over the boundary family
	obsMultiL2    = obs.NewCounter("cache.multi.l2_misses")   // structure misses summed over the family
	obsMultiSwaps = obs.NewCounter("cache.multi.swaps")       // exclusive swaps summed over the family
	obsTimings    = obs.NewCounter("cache.timing_evals")      // timingFor evaluations (memo misses)
	obsPublishes  = obs.NewCounter("cache.publishes")         // PublishObs invocations with obs live
	obsBlocksLive = obs.NewGauge("cache.blocks_current")      // resident blocks at the last publish
	obsBoundaryG  = obs.NewGauge("cache.boundary_current")    // boundary of the last published Hierarchy
	obsMultiFastR = obs.NewGauge("cache.multi.fast_permille") // fast-path hits per 1000 refs (last publish)
)

// sub returns the per-field difference cur-prev of two Stats snapshots.
func sub(cur, prev Stats) Stats {
	return Stats{
		Refs:       cur.Refs - prev.Refs,
		Writes:     cur.Writes - prev.Writes,
		L1Misses:   cur.L1Misses - prev.L1Misses,
		L2Misses:   cur.L2Misses - prev.L2Misses,
		Swaps:      cur.Swaps - prev.Swaps,
		Writebacks: cur.Writebacks - prev.Writebacks,
	}
}

// PublishObs publishes the statistics accumulated since the previous
// PublishObs (or since construction/ResetStats) to the global obs counters.
// Call it at coarse boundaries only — never per reference. A no-op while obs
// is disabled; the delta baseline still advances so enabling obs mid-process
// never double-counts history.
func (h *Hierarchy) PublishObs() {
	d := sub(h.stats, h.pub)
	h.pub = h.stats
	if !obs.Enabled() {
		return
	}
	obsPublishes.Inc1()
	obsRefs.Add1(int64(d.Refs))
	obsWritesC.Add1(int64(d.Writes))
	obsL1Misses.Add1(int64(d.L1Misses))
	obsL2Misses.Add1(int64(d.L2Misses))
	obsSwaps.Add1(int64(d.Swaps))
	obsWritebacks.Add1(int64(d.Writebacks))
	obsBoundaryG.Set(int64(h.boundary))
	obsBlocksLive.Set(int64(h.BlockCount()))
}

// PublishObs publishes the one-pass evaluator's statistics accumulated since
// the previous publish: shared reference counts, the fast/slow path split,
// and the miss/swap totals summed over the whole boundary family.
func (m *MultiHierarchy) PublishObs() {
	refs, fast, slow := m.refs, m.fastHits, m.slowAccs
	var l1, l2, swaps uint64
	for k := 1; k <= m.maxB; k++ {
		l1 += m.stats[k].L1Misses
		l2 += m.stats[k].L2Misses
		swaps += m.stats[k].Swaps
	}
	d := [6]uint64{
		refs - m.pub[0], fast - m.pub[1], slow - m.pub[2],
		l1 - m.pub[3], l2 - m.pub[4], swaps - m.pub[5],
	}
	m.pub = [6]uint64{refs, fast, slow, l1, l2, swaps}
	if !obs.Enabled() {
		return
	}
	obsPublishes.Inc1()
	obsMultiRefs.Add1(int64(d[0]))
	obsMultiFast.Add1(int64(d[1]))
	obsMultiSlow.Add1(int64(d[2]))
	obsMultiL1.Add1(int64(d[3]))
	obsMultiL2.Add1(int64(d[4]))
	obsMultiSwaps.Add1(int64(d[5]))
	if refs > 0 {
		obsMultiFastR.Set(int64(fast * 1000 / refs))
	}
}
