package cache

import (
	"testing"
	"testing/quick"

	"capsim/internal/rng"
)

// synthStream generates a deterministic address stream with heavy spatial
// locality (sequential word runs exercise MultiHierarchy's stack-distance-zero
// fast path) punctuated by random jumps inside a bounded footprint (which
// force conflicts, swaps, structure misses and writebacks).
type synthStream struct {
	r         *rng.Source
	last      uint64
	footprint uint64
}

func newSynthStream(seed, footprint uint64) *synthStream {
	return &synthStream{r: rng.New(seed), footprint: footprint}
}

func (s *synthStream) next() (addr uint64, write bool) {
	if s.r.Bool(0.7) {
		s.last += 4 // sequential word access
	} else {
		s.last = uint64(s.r.Intn(int(s.footprint)))
	}
	return s.last, s.r.Bool(0.3)
}

// nonPow2Params builds a geometry whose set count (24) is NOT a power of two,
// forcing the div/mod decode path in both Hierarchy and MultiHierarchy.
func nonPow2Params() Params {
	p := PaperParams()
	p.IncrementBytes = 1536
	p.IncrementAssoc = 2
	p.BlockBytes = 32
	p.Increments = 5
	return p
}

// runDifferential replays one synthetic stream through a MultiHierarchy and
// maxB independent Hierarchy oracles in parallel, checking per-interval stats
// equality, residency agreement and the exclusivity invariant on both sides.
func runDifferential(t *testing.T, p Params, maxB int, seed, footprint uint64, intervals, refsPerInterval int) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("params: %v", err)
	}
	mh, err := NewMulti(p, maxB)
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	oracles := make([]*Hierarchy, maxB+1)
	for k := 1; k <= maxB; k++ {
		oracles[k] = MustNew(p, k)
	}
	gen := newSynthStream(seed, footprint)
	var lastAddr uint64
	for iv := 0; iv < intervals; iv++ {
		for i := 0; i < refsPerInterval; i++ {
			addr, write := gen.next()
			lastAddr = addr
			mh.AccessAddr(addr, write)
			for k := 1; k <= maxB; k++ {
				oracles[k].Access(addr, write)
			}
		}
		for k := 1; k <= maxB; k++ {
			got, want := mh.BoundaryStats(k), oracles[k].Stats()
			if got != want {
				t.Fatalf("interval %d boundary %d: stats diverge\n one-pass: %+v\n oracle:   %+v", iv, k, got, want)
			}
		}
		if err := mh.CheckExclusive(); err != nil {
			t.Fatalf("interval %d: %v", iv, err)
		}
		for k := 1; k <= maxB; k++ {
			if err := oracles[k].CheckExclusive(); err != nil {
				t.Fatalf("interval %d oracle %d: %v", iv, k, err)
			}
			gl, gok := mh.Contains(k, lastAddr)
			wl, wok := oracles[k].Contains(lastAddr)
			if gl != wl || gok != wok {
				t.Fatalf("interval %d boundary %d: Contains(%#x) = (%v,%v), oracle (%v,%v)",
					iv, k, lastAddr, gl, gok, wl, wok)
			}
		}
	}
}

// TestMultiHierarchyDifferential is the bit-identity contract of the one-pass
// engine: for every boundary position, MultiHierarchy's counters equal those
// of an independent Hierarchy replaying the same stream — checked interval by
// interval across pow2 and non-pow2 geometries, including both edge
// boundaries (k=1 and k=Increments-1 via maxB = Increments-1).
func TestMultiHierarchyDifferential(t *testing.T) {
	paper := PaperParams()
	cases := []struct {
		name      string
		p         Params
		maxB      int
		footprint uint64
	}{
		{"paper/maxB=8", paper, 8, 1 << 17},
		{"paper/maxB=1", paper, 1, 1 << 16},
		{"paper/maxB=max", paper, paper.Increments - 1, 1 << 18},
		{"nonpow2/maxB=4", nonPow2Params(), 4, 1 << 14},
		{"nonpow2/maxB=1", nonPow2Params(), 1, 1 << 13},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			intervals, refs := 12, 800
			if testing.Short() {
				intervals, refs = 4, 400
			}
			runDifferential(t, tc.p, tc.maxB, 1998, tc.footprint, intervals, refs)
		})
	}
}

// TestMultiHierarchyQuick fuzzes the differential property over random seeds
// and boundary counts.
func TestMultiHierarchyQuick(t *testing.T) {
	f := func(seed uint64, bRaw uint8) bool {
		p := PaperParams()
		maxB := 1 + int(bRaw)%(p.Increments-1)
		mh, err := NewMulti(p, maxB)
		if err != nil {
			return false
		}
		oracles := make([]*Hierarchy, maxB+1)
		for k := 1; k <= maxB; k++ {
			oracles[k] = MustNew(p, k)
		}
		gen := newSynthStream(seed, 1<<17)
		for i := 0; i < 2000; i++ {
			addr, write := gen.next()
			mh.AccessAddr(addr, write)
			for k := 1; k <= maxB; k++ {
				oracles[k].Access(addr, write)
			}
		}
		for k := 1; k <= maxB; k++ {
			if mh.BoundaryStats(k) != oracles[k].Stats() {
				return false
			}
		}
		return mh.CheckExclusive() == nil
	}
	n := 25
	if testing.Short() {
		n = 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Error(err)
	}
}

// sliceSource feeds a fixed pre-decoded slice; it implements DecodedSource.
type sliceSource struct {
	sets   []int32
	tags   []uint64
	writes []bool
	i      int
}

func (s *sliceSource) NextDecoded() (int32, uint64, bool) {
	i := s.i
	s.i++
	return s.sets[i], s.tags[i], s.writes[i]
}

// TestMultiReplayMatchesAccessAddr checks that Replay over a pre-decoded
// stream equals the same references applied through AccessAddr — i.e. the
// decode split commutes with the update.
func TestMultiReplayMatchesAccessAddr(t *testing.T) {
	p := PaperParams()
	a, err := NewMulti(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMulti(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	gen := newSynthStream(7, 1<<16)
	src := &sliceSource{}
	n := 3000
	for i := 0; i < n; i++ {
		addr, write := gen.next()
		a.AccessAddr(addr, write)
		set, tag := a.ix.index(addr)
		src.sets = append(src.sets, int32(set))
		src.tags = append(src.tags, tag)
		src.writes = append(src.writes, write)
	}
	b.Replay(src, int64(n))
	for k := 1; k <= 4; k++ {
		if a.BoundaryStats(k) != b.BoundaryStats(k) {
			t.Fatalf("boundary %d: AccessAddr %+v != Replay %+v", k, a.BoundaryStats(k), b.BoundaryStats(k))
		}
	}
}

// TestNewMultiRejects locks the constructor's validation.
func TestNewMultiRejects(t *testing.T) {
	p := PaperParams()
	if _, err := NewMulti(p, 0); err == nil {
		t.Error("maxBoundary 0 accepted")
	}
	if _, err := NewMulti(p, p.Increments); err == nil {
		t.Error("maxBoundary = Increments accepted")
	}
	bad := p
	bad.BlockBytes = 48
	if _, err := NewMulti(bad, 4); err == nil {
		t.Error("invalid params accepted")
	}
	m, err := NewMulti(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxBoundary() != 4 {
		t.Errorf("MaxBoundary = %d", m.MaxBoundary())
	}
	if m.Params() != p {
		t.Error("Params not preserved")
	}
	if got := len(m.Stats()); got != 5 {
		t.Errorf("Stats length %d, want 5", got)
	}
}

// TestAccessLevelsDifferential checks the joint-kernel classification
// contract: AccessLevels reports, per boundary, exactly the Level that an
// independent Hierarchy.Access would return for the same reference — through
// both the fast path (spatial runs) and the slow lockstep path — while
// keeping the stats bit-identical to plain Access.
func TestAccessLevelsDifferential(t *testing.T) {
	for _, tc := range []struct {
		name      string
		p         Params
		maxB      int
		footprint uint64
	}{
		{"paper/maxB=8", PaperParams(), 8, 1 << 17},
		{"nonpow2/maxB=4", nonPow2Params(), 4, 1 << 14},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mh, err := NewMulti(tc.p, tc.maxB)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := NewMulti(tc.p, tc.maxB)
			if err != nil {
				t.Fatal(err)
			}
			oracles := make([]*Hierarchy, tc.maxB+1)
			for k := 1; k <= tc.maxB; k++ {
				oracles[k] = MustNew(tc.p, k)
			}
			gen := newSynthStream(42, tc.footprint)
			levels := make([]Level, tc.maxB)
			n := 20000
			if testing.Short() {
				n = 4000
			}
			for i := 0; i < n; i++ {
				addr, write := gen.next()
				set, tag := mh.ix.index(addr)
				mh.AccessLevels(set, tag, write, levels)
				plain.Access(set, tag, write)
				for k := 1; k <= tc.maxB; k++ {
					if want := oracles[k].Access(addr, write); levels[k-1] != want {
						t.Fatalf("ref %d boundary %d: level %v, oracle %v", i, k, levels[k-1], want)
					}
				}
			}
			for k := 1; k <= tc.maxB; k++ {
				if mh.BoundaryStats(k) != plain.BoundaryStats(k) {
					t.Fatalf("boundary %d: AccessLevels stats %+v != Access stats %+v",
						k, mh.BoundaryStats(k), plain.BoundaryStats(k))
				}
			}
		})
	}
}
