package cache

import (
	"testing"

	"capsim/internal/rng"
)

// benchAddrs builds a deterministic address stream with the spatial mix the
// simulators see (sequential word runs + random jumps).
func benchAddrs(n int, footprint uint64) []uint64 {
	gen := newSynthStream(1998, footprint)
	out := make([]uint64, n)
	for i := range out {
		out[i], _ = gen.next()
	}
	return out
}

// BenchmarkIndexPow2 measures the shift/mask decode (PaperParams: 128 sets).
func BenchmarkIndexPow2(b *testing.B) {
	ix := newIndexer(PaperParams())
	addrs := benchAddrs(1<<12, 1<<20)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		set, tag := ix.index(addrs[i&(len(addrs)-1)])
		sink += uint64(set) + tag
	}
	_ = sink
}

// BenchmarkIndexNonPow2 measures the div/mod fallback (24 sets).
func BenchmarkIndexNonPow2(b *testing.B) {
	ix := newIndexer(nonPow2Params())
	addrs := benchAddrs(1<<12, 1<<20)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		set, tag := ix.index(addrs[i&(len(addrs)-1)])
		sink += uint64(set) + tag
	}
	_ = sink
}

// BenchmarkHierarchyAccess measures single-hierarchy access throughput.
func BenchmarkHierarchyAccess(b *testing.B) {
	h := MustNew(PaperParams(), 4)
	addrs := benchAddrs(1<<16, 1<<18)
	r := rng.New(7)
	writes := make([]bool, len(addrs))
	for i := range writes {
		writes[i] = r.Bool(0.3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & (len(addrs) - 1)
		h.Access(addrs[j], writes[j])
	}
}

// BenchmarkMultiHierarchyAccess measures the one-pass engine evaluating all
// 8 paper boundaries per reference. Compare ns/op against 8x
// BenchmarkIndependentBoundaries to see the one-pass advantage (shared
// decode, fast path, SoA locality).
func BenchmarkMultiHierarchyAccess(b *testing.B) {
	m, err := NewMulti(PaperParams(), 8)
	if err != nil {
		b.Fatal(err)
	}
	addrs := benchAddrs(1<<16, 1<<18)
	r := rng.New(7)
	writes := make([]bool, len(addrs))
	for i := range writes {
		writes[i] = r.Bool(0.3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & (len(addrs) - 1)
		m.AccessAddr(addrs[j], writes[j])
	}
}

// BenchmarkIndependentBoundaries measures the legacy oracle's cost per
// reference: 8 independent hierarchies each replaying the same stream.
func BenchmarkIndependentBoundaries(b *testing.B) {
	p := PaperParams()
	hs := make([]*Hierarchy, 8)
	for k := 1; k <= 8; k++ {
		hs[k-1] = MustNew(p, k)
	}
	addrs := benchAddrs(1<<16, 1<<18)
	r := rng.New(7)
	writes := make([]bool, len(addrs))
	for i := range writes {
		writes[i] = r.Bool(0.3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & (len(addrs) - 1)
		for _, h := range hs {
			h.Access(addrs[j], writes[j])
		}
	}
}
