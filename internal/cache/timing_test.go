package cache

import (
	"testing"
)

func TestTimingCycleGrowsWithBoundary(t *testing.T) {
	p := PaperParams()
	prev := 0.0
	for k := 1; k <= 8; k++ {
		tm := TimingFor(p, k)
		if tm.CycleNS <= prev {
			t.Errorf("k=%d: cycle %v not greater than k=%d's %v", k, tm.CycleNS, k-1, prev)
		}
		if tm.Boundary != k {
			t.Errorf("k=%d: timing boundary %d", k, tm.Boundary)
		}
		prev = tm.CycleNS
	}
}

func TestTimingAnchors(t *testing.T) {
	// Calibration anchors at 0.18 micron: the 16KB 4-way configuration
	// (the paper's best conventional) cycles near 0.48 ns, and the
	// memory latency is the paper's 30 ns converted at that clock.
	p := PaperParams()
	tm := TimingFor(p, 2)
	if tm.CycleNS < 0.40 || tm.CycleNS > 0.60 {
		t.Errorf("k=2 cycle %v ns outside anchor band", tm.CycleNS)
	}
	if tm.L1AccessNS <= tm.CycleNS*2.9 || tm.L1AccessNS >= tm.CycleNS*3.1 {
		t.Errorf("L1 access %v not ~3 cycles of %v", tm.L1AccessNS, tm.CycleNS)
	}
	wantMem := int(30.0 / tm.CycleNS)
	if tm.MemCycles < wantMem || tm.MemCycles > wantMem+1 {
		t.Errorf("mem cycles %d, want ~%d", tm.MemCycles, wantMem)
	}
	// The paper: 30 ns is 2-3x the L2 hit latency.
	l2ns := float64(tm.L2HitCycles) * tm.CycleNS
	if ratio := 30.0 / l2ns; ratio < 2 || ratio > 6 {
		t.Errorf("30ns / L2 hit = %v, want roughly 2-5", ratio)
	}
}

func TestL2HitCyclesDecreaseWithSlowerClock(t *testing.T) {
	// The L2 access time in ns is boundary-independent (full structure),
	// so a slower clock means fewer cycles.
	p := PaperParams()
	if TimingFor(p, 8).L2HitCycles > TimingFor(p, 1).L2HitCycles {
		t.Error("L2 hit cycles should not grow with a slower clock")
	}
}

func TestEvaluate(t *testing.T) {
	tm := Timing{Boundary: 2, CycleNS: 0.5, L2HitCycles: 10, MemCycles: 60}
	s := Stats{Refs: 1000, L1Misses: 100, L2Misses: 20}
	res := Evaluate(tm, s, 4000)
	// stall = 80*10 + 20*70 = 2200 cycles over 4000 instructions.
	wantMissCPI := 2200.0 / 4000.0
	if res.MissCPI != wantMissCPI {
		t.Errorf("miss CPI %v, want %v", res.MissCPI, wantMissCPI)
	}
	wantTPI := 0.5 * (1.0/2.67 + wantMissCPI)
	if diff := res.TPI - wantTPI; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("TPI %v, want %v", res.TPI, wantTPI)
	}
	if res.TPIMiss != 0.5*wantMissCPI {
		t.Errorf("TPImiss %v", res.TPIMiss)
	}
	if res.RefsPerKI != 250 {
		t.Errorf("refs/KI %v, want 250", res.RefsPerKI)
	}
}

func TestEvaluateZeroInstrs(t *testing.T) {
	res := Evaluate(Timing{CycleNS: 0.5, L2HitCycles: 1, MemCycles: 1}, Stats{}, 0)
	if res.TPI <= 0 {
		t.Error("zero-instruction Evaluate should still produce base TPI")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct {
		x, y float64
		want int
	}{{30, 0.5, 60}, {30.1, 0.5, 61}, {0.9, 1, 1}, {2.0, 1.0, 2}}
	for _, c := range cases {
		if got := ceilDiv(c.x, c.y); got != c.want {
			t.Errorf("ceilDiv(%v,%v) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestTimingForPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TimingFor(Params{}, 1)
}
