package cache

import "fmt"

// DecodedSource yields pre-decoded references: the set index and tag under
// the hierarchy's geometry plus the write flag. internal/trace's
// DecodedCursor implements it; tests feed synthetic streams.
type DecodedSource interface {
	NextDecoded() (set int32, tag uint64, write bool)
}

// Way-state flag bits for MultiHierarchy's packed SoA arrays.
const (
	mhValid uint8 = 1 << iota
	mhDirty
)

// Reference outcome classes (AccessClasses): the complete per-boundary
// result of one access, packed into two bits. The class refines Level with
// the side effects the service path implies — an L2 hit always performs an
// exclusive swap, and a structure miss either finds a clean (or invalid) L2
// victim or writes a dirty one back — so a recorded class stream replays a
// boundary's statistics and latencies exactly (internal/classify).
const (
	ClassL1Hit    uint8 = iota // serviced by L1, no structural side effects
	ClassL2Swap                // L2 hit: exclusive swap with the L1 LRU victim
	ClassMissLoad              // structure miss, L2 victim clean or invalid
	ClassMissWB                // structure miss with a dirty-victim writeback
)

// ClassLevel maps a reference class back to its service level.
func ClassLevel(c uint8) Level {
	switch c {
	case ClassL1Hit:
		return L1Hit
	case ClassL2Swap:
		return L2Hit
	default:
		return Miss
	}
}

// MultiHierarchy evaluates EVERY boundary position k = 1..maxBoundary of one
// adaptive hierarchy in a single pass over the reference stream — the
// Mattson-style one-pass engine behind the process-level profiling pass.
//
// Where the per-boundary oracle builds maxBoundary independent Hierarchy
// instances and replays (and decodes, and for the old code even
// re-generates) the identical stream once per boundary, MultiHierarchy
// decodes each reference exactly once — legal because the paper's
// constant-index mapping rule gives every boundary the same (set, tag)
// decomposition — and updates all boundary positions in lockstep.
//
// Lockstep (rather than a single shared stack simulation) is required for
// bit-identical results: the structure is NOT a pure LRU stack. On an
// exclusive swap the demoted block is re-stamped MRU within L2, and on a
// structure miss the eviction victim is the LRU of the *L2 way range*, both
// of which depend on where the boundary sits — so resident contents diverge
// across boundaries and a shared Mattson stack would mispredict evictions.
// What the recency ordering DOES prove (see the fast path below) is that
// after any access the referenced block is the L1 MRU at every boundary,
// because every access path — L1 hit, exclusive swap, miss fill — leaves the
// block in L1 with the globally newest stamp. A repeat reference to the same
// (set, tag), i.e. stack distance zero within the set, is therefore an L1
// hit at a known way for all boundaries simultaneously and needs no probe.
// With 32 B blocks and word-granularity references, spatial runs make this
// the common case.
//
// Per-boundary way state lives in flat structure-of-arrays slices
// (tags/stamps/flags), laid out [set][boundary][way] so one access touches
// one contiguous span, with no [][]way pointer chasing.
//
// Replay is bit-identical to maxBoundary independent Hierarchy runs: each
// boundary's update replicates Hierarchy.Access exactly (same probe order,
// same LRU tie-breaks, same stamp sequence — every independent Hierarchy
// sees every reference, so one shared stamp counter matches them all), which
// TestMultiHierarchyDifferential verifies per interval.
type MultiHierarchy struct {
	p    Params
	ix   indexer
	maxB int
	ways int // total ways per set (constant across boundaries)

	// Flat SoA way state, indexed ((set*maxB + (k-1))*ways + way).
	tags   []uint64
	stamps []uint64
	flags  []uint8

	stamp uint64
	stats []Stats // dense, indexed by boundary k; slot 0 unused

	// refs/writes count once for all boundaries: every boundary position
	// sees every reference, so Stats.Refs and Stats.Writes are identical
	// across the family and need not be maintained per boundary.
	refs   uint64
	writes uint64

	// Stack-distance-zero fast path state: per set, the tag of the last
	// reference to that set and, per boundary, the L1 way it occupies.
	lastTag   []uint64
	lastValid []bool
	lastWay   []int32 // indexed (set*maxB + k-1)

	// Lazy fast-path effects. A fast-path hit must re-stamp the block MRU
	// (and possibly dirty it) at every boundary — but those stamps and dirty
	// bits are only ever READ by a later slow access to the same set (LRU
	// victim selection and writeback accounting; Contains and CheckExclusive
	// inspect tags and validity only). So the fast path merely records the
	// newest stamp and the dirty OR per set, and accessSlow applies them on
	// entry, making the common case O(1) instead of O(maxBoundary).
	// pendStamp[set] == 0 means nothing pending (stamps start at 1).
	pendStamp []uint64
	pendDirty []bool

	// Telemetry tallies (obs.go). Plain unconditional increments — cheap,
	// deterministic, and published only as deltas by PublishObs.
	fastHits uint64
	slowAccs uint64
	pub      [6]uint64 // refs/fast/slow/l1/l2/swaps at the last publish
}

// NewMulti creates a one-pass evaluator for boundaries 1..maxBoundary.
func NewMulti(p Params, maxBoundary int) (*MultiHierarchy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	min, max := p.Boundaries()
	if maxBoundary < min || maxBoundary > max {
		return nil, fmt.Errorf("cache: max boundary %d outside [%d,%d]", maxBoundary, min, max)
	}
	sets, ways := p.Sets(), p.TotalWays()
	n := sets * maxBoundary * ways
	return &MultiHierarchy{
		p:         p,
		ix:        newIndexer(p),
		maxB:      maxBoundary,
		ways:      ways,
		tags:      make([]uint64, n),
		stamps:    make([]uint64, n),
		flags:     make([]uint8, n),
		stats:     make([]Stats, maxBoundary+1),
		lastTag:   make([]uint64, sets),
		lastValid: make([]bool, sets),
		lastWay:   make([]int32, sets*maxBoundary),
		pendStamp: make([]uint64, sets),
		pendDirty: make([]bool, sets),
	}, nil
}

// Params returns the physical parameters.
func (m *MultiHierarchy) Params() Params { return m.p }

// MaxBoundary returns the largest boundary evaluated.
func (m *MultiHierarchy) MaxBoundary() int { return m.maxB }

// Stats returns a dense copy of the per-boundary statistics, indexed by
// boundary k (slot 0 is unused and zero). Refs and Writes are filled from the
// shared counters (they are identical at every boundary).
func (m *MultiHierarchy) Stats() []Stats {
	out := make([]Stats, len(m.stats))
	copy(out, m.stats)
	for k := 1; k <= m.maxB; k++ {
		out[k].Refs, out[k].Writes = m.refs, m.writes
	}
	return out
}

// BoundaryStats returns boundary k's accumulated statistics.
func (m *MultiHierarchy) BoundaryStats(k int) Stats {
	if k < 1 || k > m.maxB {
		panic(fmt.Sprintf("cache: boundary %d outside [1,%d]", k, m.maxB))
	}
	st := m.stats[k]
	st.Refs, st.Writes = m.refs, m.writes
	return st
}

// Replay plays n pre-decoded references through every boundary position.
func (m *MultiHierarchy) Replay(src DecodedSource, n int64) {
	for i := int64(0); i < n; i++ {
		set, tag, write := src.NextDecoded()
		m.Access(int(set), tag, write)
	}
}

// AccessAddr decodes one address under the hierarchy's geometry and applies
// it to every boundary (tests and ad-hoc callers; the profiling path feeds
// pre-decoded streams through Replay).
func (m *MultiHierarchy) AccessAddr(addr uint64, write bool) {
	set, tag := m.ix.index(addr)
	m.Access(set, tag, write)
}

// Access applies one pre-decoded reference to every boundary position.
func (m *MultiHierarchy) Access(set int, tag uint64, write bool) {
	m.stamp++
	m.refs++
	if write {
		m.writes++
	}

	if m.lastValid[set] && m.lastTag[set] == tag {
		// Stack distance zero within the set: the previous access to this
		// set left this very block as the L1 MRU at every boundary (L1
		// hits refresh it in place, swaps promote it, misses fill it), and
		// only accesses to this set can move it. Guaranteed L1 hit
		// everywhere at the recorded ways — skip all probes and defer the
		// MRU re-stamp and dirty marking until the next slow access to this
		// set can observe them.
		m.pendStamp[set] = m.stamp
		if write {
			m.pendDirty[set] = true
		}
		m.fastHits++
		return
	}

	m.slowAccs++
	m.accessSlow(set, tag, write, nil, nil)
}

// AccessLevels is Access that also reports where the reference was serviced
// at every boundary position: levels[k-1] receives exactly what
// Hierarchy.Access at boundary k would have returned for this reference
// (L1Hit, L2Hit, or Miss). levels must have at least MaxBoundary elements.
// The joint cache×queue kernel uses this to derive every configuration's
// load latency from its own boundary's hierarchy state in the one shared
// pass; the stack-distance-zero fast path is an L1 hit at every boundary by
// the MRU argument above, so it fills the slice without probing.
func (m *MultiHierarchy) AccessLevels(set int, tag uint64, write bool, levels []Level) {
	m.stamp++
	m.refs++
	if write {
		m.writes++
	}

	if m.lastValid[set] && m.lastTag[set] == tag {
		m.pendStamp[set] = m.stamp
		if write {
			m.pendDirty[set] = true
		}
		m.fastHits++
		for kb := 0; kb < m.maxB; kb++ {
			levels[kb] = L1Hit
		}
		return
	}

	m.slowAccs++
	m.accessSlow(set, tag, write, levels, nil)
}

// AccessClasses is Access that records each boundary's full reference
// outcome class (ClassL1Hit/ClassL2Swap/ClassMissLoad/ClassMissWB) into
// classes[k-1] — the producer side of the classification-stream tier
// (internal/classify). classes must have at least MaxBoundary elements. The
// stack-distance-zero fast path is a ClassL1Hit at every boundary by the MRU
// argument above.
func (m *MultiHierarchy) AccessClasses(set int, tag uint64, write bool, classes []uint8) {
	m.stamp++
	m.refs++
	if write {
		m.writes++
	}

	if m.lastValid[set] && m.lastTag[set] == tag {
		m.pendStamp[set] = m.stamp
		if write {
			m.pendDirty[set] = true
		}
		m.fastHits++
		for kb := 0; kb < m.maxB; kb++ {
			classes[kb] = ClassL1Hit
		}
		return
	}

	m.slowAccs++
	m.accessSlow(set, tag, write, nil, classes)
}

// accessSlow is the lockstep replay path: one exact Hierarchy.Access
// replication per boundary position. When levels is non-nil it receives the
// per-boundary service level (AccessLevels); when classes is non-nil it
// receives the per-boundary outcome class (AccessClasses).
func (m *MultiHierarchy) accessSlow(set int, tag uint64, write bool, levels []Level, classes []uint8) {
	if ps := m.pendStamp[set]; ps != 0 {
		// Apply the deferred fast-path effects: the last repeat reference
		// left the resident block with this stamp (and dirty OR) at its
		// recorded L1 way at every boundary.
		lw := m.lastWay[set*m.maxB : set*m.maxB+m.maxB]
		dirty := m.pendDirty[set]
		for kb := 0; kb < m.maxB; kb++ {
			w := (set*m.maxB+kb)*m.ways + int(lw[kb])
			m.stamps[w] = ps
			if dirty {
				m.flags[w] |= mhDirty
			}
		}
		m.pendStamp[set], m.pendDirty[set] = 0, false
	}
	assoc := m.p.IncrementAssoc
	for kb := 0; kb < m.maxB; kb++ {
		base := (set*m.maxB + kb) * m.ways
		tags := m.tags[base : base+m.ways]
		stamps := m.stamps[base : base+m.ways]
		flags := m.flags[base : base+m.ways]
		st := &m.stats[kb+1]
		l1w := (kb + 1) * assoc

		// Probe: identical scan order to Hierarchy.Access (exclusivity
		// guarantees at most one hit).
		hit := -1
		for i := 0; i < m.ways; i++ {
			if flags[i]&mhValid != 0 && tags[i] == tag {
				hit = i
				break
			}
		}

		var final int
		lvl := Miss
		cls := ClassMissLoad
		switch {
		case hit >= 0 && hit < l1w: // L1 hit
			lvl = L1Hit
			cls = ClassL1Hit
			stamps[hit] = m.stamp
			if write {
				flags[hit] |= mhDirty
			}
			final = hit

		case hit >= 0: // L2 hit: exclusive swap with the L1 victim
			lvl = L2Hit
			cls = ClassL2Swap
			st.L1Misses++
			st.Swaps++
			victim := mhLRU(tags, stamps, flags, 0, l1w)
			tags[victim], tags[hit] = tags[hit], tags[victim]
			stamps[victim], stamps[hit] = stamps[hit], stamps[victim]
			flags[victim], flags[hit] = flags[hit], flags[victim]
			stamps[victim] = m.stamp
			if write {
				flags[victim] |= mhDirty
			}
			stamps[hit] = m.stamp // demoted block is MRU within L2
			final = victim

		default: // structure miss: fill from memory into L1
			st.L1Misses++
			st.L2Misses++
			victim := mhLRU(tags, stamps, flags, 0, l1w)
			if flags[victim]&mhValid != 0 {
				// Demote the L1 victim into L2, evicting L2's LRU.
				l2victim := mhLRU(tags, stamps, flags, l1w, m.ways)
				if flags[l2victim]&mhValid != 0 && flags[l2victim]&mhDirty != 0 {
					st.Writebacks++
					cls = ClassMissWB
				}
				tags[l2victim] = tags[victim]
				stamps[l2victim] = stamps[victim]
				flags[l2victim] = flags[victim]
			}
			tags[victim] = tag
			stamps[victim] = m.stamp
			flags[victim] = mhValid
			if write {
				flags[victim] |= mhDirty
			}
			final = victim
		}
		if levels != nil {
			levels[kb] = lvl
		}
		if classes != nil {
			classes[kb] = cls
		}
		m.lastWay[set*m.maxB+kb] = int32(final)
	}
	m.lastTag[set] = tag
	m.lastValid[set] = true
}

// mhLRU mirrors Hierarchy.lruWay on the SoA arrays: the least-recently-used
// way in [lo, hi), preferring the first invalid frame, with the identical
// first-strictly-smaller tie-break.
func mhLRU(tags []uint64, stamps []uint64, flags []uint8, lo, hi int) int {
	if hi <= lo {
		panic("cache: empty way range")
	}
	best := lo
	for i := lo; i < hi; i++ {
		if flags[i]&mhValid == 0 {
			return i
		}
		if stamps[i] < stamps[best] {
			best = i
		}
	}
	return best
}

// Contains reports whether the block holding addr is resident at boundary k
// and at which level (invariant tests).
func (m *MultiHierarchy) Contains(k int, addr uint64) (Level, bool) {
	set, tag := m.ix.index(addr)
	base := (set*m.maxB + (k - 1)) * m.ways
	l1w := k * m.p.IncrementAssoc
	for i := 0; i < m.ways; i++ {
		if m.flags[base+i]&mhValid != 0 && m.tags[base+i] == tag {
			if i < l1w {
				return L1Hit, true
			}
			return L2Hit, true
		}
	}
	return Miss, false
}

// CheckExclusive verifies the exclusivity invariant for every boundary
// position: no tag appears twice within one (boundary, set) way span.
func (m *MultiHierarchy) CheckExclusive() error {
	sets := m.p.Sets()
	for set := 0; set < sets; set++ {
		for kb := 0; kb < m.maxB; kb++ {
			base := (set*m.maxB + kb) * m.ways
			for i := 0; i < m.ways; i++ {
				if m.flags[base+i]&mhValid == 0 {
					continue
				}
				for j := i + 1; j < m.ways; j++ {
					if m.flags[base+j]&mhValid != 0 && m.tags[base+j] == m.tags[base+i] {
						return fmt.Errorf("cache: boundary %d set %d holds tag %#x in ways %d and %d",
							kb+1, set, m.tags[base+i], i, j)
					}
				}
			}
		}
	}
	return nil
}
