// Package cache implements the complexity-adaptive two-level on-chip data
// cache hierarchy of the CAP paper (Section 5.2) as a trace-driven
// simulator.
//
// The hardware structure is a stack of identical cache increments — complete
// subcaches each containing tags, status and data — connected by optimally
// buffered global address and data buses (Figure 6 of the paper). A movable
// boundary assigns the first k increments to the L1 Dcache and the remaining
// increments to the L2. The mapping rule keeps the set index constant: as an
// increment moves across the boundary the cache's size AND associativity
// grow or shrink together, so a block's set never changes and reconfiguring
// never requires invalidation or data movement. Caching is exclusive: a
// block lives in exactly one increment, so after moving the boundary every
// block is still in exactly one of L1 or L2.
//
// The simulator models blocking caches and ignores access conflicts, exactly
// as the paper's methodology states.
package cache

import (
	"fmt"
	"math/bits"

	"capsim/internal/cacti"
	"capsim/internal/memo"
	"capsim/internal/tech"
	"capsim/internal/wire"
)

// Params describes the physical organization of the adaptive hierarchy.
type Params struct {
	// Increments is the number of cache increments in the structure.
	// The paper's design uses 16.
	Increments int
	// IncrementBytes is the capacity of one increment. The paper uses 8 KB.
	IncrementBytes int
	// IncrementAssoc is the associativity of one increment. The paper's
	// increments are 2-way set associative (and two-way banked, which
	// affects timing, not hit/miss behaviour).
	IncrementAssoc int
	// BlockBytes is the cache block size.
	BlockBytes int
	// Feature selects the process generation for timing.
	Feature tech.FeatureSize
}

// PaperParams returns the configuration evaluated in the paper: a 128 KB
// structure of 16 increments, each 8 KB 2-way, at 0.18 micron. Block size is
// 32 bytes (R10000-class L1 lines).
func PaperParams() Params {
	return Params{
		Increments:     16,
		IncrementBytes: 8 * 1024,
		IncrementAssoc: 2,
		BlockBytes:     32,
		Feature:        tech.Micron018,
	}
}

// Validate reports whether the parameters are consistent.
func (p Params) Validate() error {
	switch {
	case p.Increments < 2:
		return fmt.Errorf("cache: need at least 2 increments, got %d", p.Increments)
	case p.IncrementBytes <= 0:
		return fmt.Errorf("cache: increment size %d must be positive", p.IncrementBytes)
	case p.IncrementAssoc <= 0:
		return fmt.Errorf("cache: increment associativity %d must be positive", p.IncrementAssoc)
	case p.BlockBytes <= 0 || p.BlockBytes&(p.BlockBytes-1) != 0:
		return fmt.Errorf("cache: block size %d must be a positive power of two", p.BlockBytes)
	case p.IncrementBytes%(p.BlockBytes*p.IncrementAssoc) != 0:
		return fmt.Errorf("cache: increment %dB not divisible by block*assoc", p.IncrementBytes)
	case p.Feature <= 0:
		return fmt.Errorf("cache: invalid feature size %v", float64(p.Feature))
	}
	return nil
}

// Sets returns the number of sets — constant regardless of the boundary,
// which is the property that makes reconfiguration cheap.
func (p Params) Sets() int { return p.IncrementBytes / (p.BlockBytes * p.IncrementAssoc) }

// TotalWays returns the total associativity of the whole structure.
func (p Params) TotalWays() int { return p.Increments * p.IncrementAssoc }

// TotalBytes returns the combined L1+L2 capacity.
func (p Params) TotalBytes() int { return p.Increments * p.IncrementBytes }

// L1Bytes returns the L1 capacity for boundary k.
func (p Params) L1Bytes(k int) int { return k * p.IncrementBytes }

// L1Assoc returns the L1 associativity for boundary k (the mapping rule
// grows associativity with size).
func (p Params) L1Assoc(k int) int { return k * p.IncrementAssoc }

// Boundaries returns the legal boundary positions [minL1..maxL1] in
// increments. At least one increment must remain on each side so both levels
// exist; the paper additionally limits its exploration to L1 <= 64 KB (half
// the structure), which callers impose themselves.
func (p Params) Boundaries() (min, max int) { return 1, p.Increments - 1 }

// way holds one block frame.
type way struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-use stamp; larger = more recent
}

// indexer precomputes the address -> (set, tag) decomposition for a
// geometry. BlockBytes is always a power of two (Validate enforces it), so
// the block extraction is a shift; when the set count is also a power of two
// — true of every geometry the paper evaluates — the division and modulus
// collapse to a shift and a mask, which removes two 64-bit divisions from
// the per-reference hot path (BenchmarkHierarchyIndex shows the win). The
// general path remains for non-power-of-two set counts and produces
// identical values.
type indexer struct {
	sets       uint64
	pow2       bool
	blockShift uint
	setMask    uint64
	setShift   uint
}

// newIndexer builds the indexer for p (which must be valid).
func newIndexer(p Params) indexer {
	ix := indexer{
		sets:       uint64(p.Sets()),
		blockShift: uint(bits.TrailingZeros(uint(p.BlockBytes))),
	}
	if s := p.Sets(); s&(s-1) == 0 {
		ix.pow2 = true
		ix.setShift = uint(bits.TrailingZeros(uint(s)))
		ix.setMask = uint64(s - 1)
	}
	return ix
}

// index extracts the set index and tag for an address.
func (ix indexer) index(addr uint64) (set int, tag uint64) {
	block := addr >> ix.blockShift
	if ix.pow2 {
		return int(block & ix.setMask), block >> ix.setShift
	}
	return int(block % ix.sets), block / ix.sets
}

// Hierarchy is the runtime state of the adaptive cache structure.
type Hierarchy struct {
	p        Params
	ix       indexer
	boundary int // increments assigned to L1
	sets     [][]way
	stamp    uint64
	stats    Stats
	pub      Stats // snapshot at the last PublishObs (obs.go)
}

// Stats accumulates access outcomes. Misses are counted hierarchically: an
// L2Miss implies the reference also missed in L1.
type Stats struct {
	Refs       uint64
	Writes     uint64
	L1Misses   uint64 // references that missed in L1 (hit L2 or memory)
	L2Misses   uint64 // references that also missed in L2 (went to memory)
	Swaps      uint64 // exclusive L1<->L2 block exchanges
	Writebacks uint64 // dirty blocks evicted from the structure
}

// L1MissRatio returns L1 misses per reference.
func (s Stats) L1MissRatio() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(s.Refs)
}

// L2MissRatio returns structure (memory) misses per reference.
func (s Stats) L2MissRatio() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.L2Misses) / float64(s.Refs)
}

// New creates a hierarchy with the L1/L2 boundary after `boundary`
// increments.
func New(p Params, boundary int) (*Hierarchy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	min, max := p.Boundaries()
	if boundary < min || boundary > max {
		return nil, fmt.Errorf("cache: boundary %d outside [%d,%d]", boundary, min, max)
	}
	sets := make([][]way, p.Sets())
	backing := make([]way, p.Sets()*p.TotalWays())
	for i := range sets {
		sets[i], backing = backing[:p.TotalWays():p.TotalWays()], backing[p.TotalWays():]
	}
	return &Hierarchy{p: p, ix: newIndexer(p), boundary: boundary, sets: sets}, nil
}

// MustNew is New but panics on error; for tests and tables of known-good
// configurations.
func MustNew(p Params, boundary int) *Hierarchy {
	h, err := New(p, boundary)
	if err != nil {
		panic(err)
	}
	return h
}

// Params returns the physical parameters.
func (h *Hierarchy) Params() Params { return h.p }

// Boundary returns the current L1/L2 boundary in increments.
func (h *Hierarchy) Boundary() int { return h.boundary }

// Stats returns the accumulated statistics.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats zeroes the counters without touching cache contents (used when
// discarding warm-up references).
func (h *Hierarchy) ResetStats() { h.stats, h.pub = Stats{}, Stats{} }

// SetBoundary moves the L1/L2 boundary. Thanks to exclusivity and the
// constant index mapping this requires no flush: blocks keep their frames
// and are merely relabeled as L1 or L2. It returns an error if k is illegal.
func (h *Hierarchy) SetBoundary(k int) error {
	min, max := h.p.Boundaries()
	if k < min || k > max {
		return fmt.Errorf("cache: boundary %d outside [%d,%d]", k, min, max)
	}
	h.boundary = k
	return nil
}

// l1Ways returns the number of ways belonging to L1.
func (h *Hierarchy) l1Ways() int { return h.boundary * h.p.IncrementAssoc }

// Level identifies where a reference was satisfied.
type Level int

// Access outcome levels.
const (
	L1Hit Level = iota
	L2Hit
	Miss // satisfied from memory
)

func (l Level) String() string {
	switch l {
	case L1Hit:
		return "L1"
	case L2Hit:
		return "L2"
	default:
		return "memory"
	}
}

// index extracts the set index and tag for an address via the precomputed
// shift/mask (or div/mod) indexer.
func (h *Hierarchy) index(addr uint64) (set int, tag uint64) {
	return h.ix.index(addr)
}

// Access performs one data reference and returns the level that satisfied
// it, updating LRU state, performing exclusive swaps and fills, and
// accumulating statistics.
func (h *Hierarchy) Access(addr uint64, write bool) Level {
	h.stamp++
	h.stats.Refs++
	if write {
		h.stats.Writes++
	}
	setIdx, tag := h.index(addr)
	set := h.sets[setIdx]
	l1w := h.l1Ways()

	// Probe: every increment does local hit/miss determination in
	// parallel; exclusivity guarantees at most one hit anywhere.
	hit := -1
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			hit = i
			break
		}
	}

	switch {
	case hit >= 0 && hit < l1w: // L1 hit
		set[hit].lru = h.stamp
		if write {
			set[hit].dirty = true
		}
		return L1Hit

	case hit >= 0: // L2 hit: swap with the L1 victim to preserve exclusion
		h.stats.L1Misses++
		h.stats.Swaps++
		victim := h.lruWay(set, 0, l1w)
		set[victim], set[hit] = set[hit], set[victim]
		set[victim].lru = h.stamp
		// The demoted block keeps its dirty bit in L2; the promoted
		// block becomes dirty on a write.
		if write {
			set[victim].dirty = true
		}
		set[hit].lru = h.stamp // demoted block is MRU within L2
		return L2Hit

	default: // structure miss: fill from memory into L1
		h.stats.L1Misses++
		h.stats.L2Misses++
		victim := h.lruWay(set, 0, l1w)
		if set[victim].valid {
			// Demote the L1 victim into L2, evicting L2's LRU.
			l2victim := h.lruWay(set, l1w, len(set))
			if set[l2victim].valid && set[l2victim].dirty {
				h.stats.Writebacks++
			}
			set[l2victim] = set[victim]
		}
		set[victim] = way{tag: tag, valid: true, dirty: write, lru: h.stamp}
		return Miss
	}
}

// lruWay returns the index of the least-recently-used way in set[lo:hi],
// preferring invalid frames.
func (h *Hierarchy) lruWay(set []way, lo, hi int) int {
	if hi <= lo {
		// Degenerate slice (e.g. an empty L2 range); callers guarantee
		// at least one way per level via Boundaries, so this is a bug.
		panic("cache: empty way range")
	}
	best := lo
	for i := lo; i < hi; i++ {
		if !set[i].valid {
			return i
		}
		if set[i].lru < set[best].lru {
			best = i
		}
	}
	return best
}

// Contains reports whether the block holding addr is present, and at which
// level. Used by invariant tests.
func (h *Hierarchy) Contains(addr uint64) (Level, bool) {
	setIdx, tag := h.index(addr)
	set := h.sets[setIdx]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			if i < h.l1Ways() {
				return L1Hit, true
			}
			return L2Hit, true
		}
	}
	return Miss, false
}

// BlockCount returns the number of valid blocks currently resident (L1+L2).
func (h *Hierarchy) BlockCount() int {
	n := 0
	for _, set := range h.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// CheckExclusive verifies the exclusivity invariant: no tag appears twice
// within a set. It returns an error naming the first violation. The scan is
// allocation-free: a set holds at most Increments*IncrementAssoc ways (32 for
// the paper's geometry), so the pairwise comparison is cheaper than building
// a map per set — the old implementation allocated one map per set per call,
// which dominated the interval-policy hot loop's allocation profile.
func (h *Hierarchy) CheckExclusive() error {
	for s, set := range h.sets {
		for i := range set {
			if !set[i].valid {
				continue
			}
			for j := i + 1; j < len(set); j++ {
				if set[j].valid && set[j].tag == set[i].tag {
					return fmt.Errorf("cache: set %d holds tag %#x in ways %d and %d", s, set[i].tag, i, j)
				}
			}
		}
	}
	return nil
}

// --- Timing ---------------------------------------------------------------

// Timing holds the clock and latency consequences of a boundary position.
type Timing struct {
	// Boundary is the L1 increment count this timing corresponds to.
	Boundary int
	// CycleNS is the processor cycle time: the access time of the slowest
	// enabled L1 increment (bank access + buffered bus over the L1 span)
	// divided by the 3-cycle pipelined L1 latency the paper assumes.
	CycleNS float64
	// L1AccessNS is the full L1 access time.
	L1AccessNS float64
	// L2HitCycles is the additional stall on an L1 miss that hits in L2.
	L2HitCycles int
	// MemCycles is the additional stall beyond the L2 probe for a
	// reference that misses the whole structure (the paper's 30 ns
	// average, converted at this configuration's clock).
	MemCycles int
}

// l1PipeDepth is the paper's fixed 3-cycle L1 latency: the cycle time is the
// L1 access time divided by this pipeline depth.
const l1PipeDepth = 3

// memLatencyNS is the paper's average L2-miss (memory) latency.
const memLatencyNS = 30.0

// l2FixedNS is the non-bus overhead of an L2 probe + exclusive swap
// (miss determination, bank turnaround, swap sequencing).
const l2FixedNS = 2.0

// busLoadPerIncrement is the capacitive load one increment places on the
// global bus, in units of the process's repeater input capacitance (the
// increment's local address decoder and data drivers are two-way banked,
// doubling the hang-off relative to a monolithic bank).
const busLoadPerIncrement = 18.0

// timingKey keys the TimingFor memo; Params is a flat scalar struct, so
// (Params, k) describes the computation completely.
type timingKey struct {
	p Params
	k int
}

// timings memoizes TimingFor per (Params, boundary). Every CacheMachine and
// CombinedMachine construction evaluates the whole boundary table, and a
// parallel sweep constructs one machine per grid cell; the memo collapses
// that to one cacti+wire evaluation per distinct geometry. Validation (which
// panics) runs before entering the memo.
var timings memo.Memo[timingKey, Timing]

// TimingFor computes the Timing of boundary position k under params p.
// The global bus is buffered whenever buffering is faster (the paper applies
// the same rule to its conventional baselines), and the delay-hierarchy
// property of repeaters means the L1 sees only the bus segments it spans.
// Results are memoized: the model is pure in (Params, k).
func TimingFor(p Params, k int) Timing {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return timings.Get(timingKey{p, k}, func() Timing {
		obsTimings.Inc1()
		return timingFor(p, k)
	})
}

func timingFor(p Params, k int) Timing {
	tp := tech.ForFeature(p.Feature)
	inc := cacti.Config{SizeBytes: p.IncrementBytes, BlockBytes: p.BlockBytes, Assoc: p.IncrementAssoc}
	bank := cacti.AccessTime(inc, tp).Total()
	_, hinc := cacti.Dimensions(inc, tp)

	busOver := func(n int) float64 {
		l := wire.Line{LengthMM: float64(n) * hinc, LoadC: float64(n) * busLoadPerIncrement * tp.BufferC}
		d, _ := wire.BestDelay(l, tp)
		return d
	}

	l1Access := bank + busOver(k)
	cycle := l1Access / l1PipeDepth
	// L2 probe: address out over the full structure, local bank access in
	// the hit increment, data back over the full structure, plus fixed
	// sequencing overhead. Blocking cache: no pipelining of the two bus
	// crossings.
	l2Access := bank + 2*busOver(p.Increments) + l2FixedNS
	l2Cycles := ceilDiv(l2Access, cycle)
	memCycles := ceilDiv(memLatencyNS, cycle)
	return Timing{
		Boundary:    k,
		CycleNS:     cycle,
		L1AccessNS:  l1Access,
		L2HitCycles: l2Cycles,
		MemCycles:   memCycles,
	}
}

func ceilDiv(x, y float64) int {
	n := int(x / y)
	if float64(n)*y < x-1e-12 {
		n++
	}
	return n
}

// --- Performance integration ----------------------------------------------

// baseCPI is the paper's 4-way issue pipeline at 67% efficiency in the
// absence of L1 Dcache misses: 2.67 IPC.
const baseCPI = 1.0 / 2.67

// Result summarizes a run of one configuration on one workload using the
// paper's metric, average time per instruction.
type Result struct {
	Boundary  int
	Timing    Timing
	Stats     Stats
	Instrs    uint64
	TPI       float64 // ns per instruction
	TPIMiss   float64 // ns per instruction spent in Dcache miss stalls
	MissCPI   float64 // stall cycles per instruction
	RefsPerKI float64 // references per 1000 instructions, for reporting
}

// Evaluate converts raw simulation statistics into the paper's TPI metrics.
// instrs is the number of instructions the reference stream represents
// (refs / references-per-instruction); the paper runs a fixed number of
// references per application and derives time per instruction.
func Evaluate(t Timing, s Stats, instrs uint64) Result {
	if instrs == 0 {
		instrs = 1
	}
	l2Hits := s.L1Misses - s.L2Misses
	stallCycles := float64(l2Hits)*float64(t.L2HitCycles) +
		float64(s.L2Misses)*float64(t.L2HitCycles+t.MemCycles)
	missCPI := stallCycles / float64(instrs)
	cpi := baseCPI + missCPI
	return Result{
		Boundary:  t.Boundary,
		Timing:    t,
		Stats:     s,
		Instrs:    instrs,
		TPI:       t.CycleNS * cpi,
		TPIMiss:   t.CycleNS * missCPI,
		MissCPI:   missCPI,
		RefsPerKI: 1000 * float64(s.Refs) / float64(instrs),
	}
}
