// Package tlb implements a complexity-adaptive translation lookaside
// buffer, one of the structures the CAP paper names as the next targets for
// complexity-adaptive techniques (Sections 4.2 and 7: "branch predictor
// tables and TLBs may consist of single and two cycle lookup elements").
//
// The TLB is a fully associative CAM of entry groups. Instead of disabling
// the groups beyond the primary section, the design keeps them powered as a
// *backup* section with a one-cycle-longer lookup: the paper's suggestion
// for making better use of silicon than hard disables. An access that hits
// the primary section costs one cycle; a backup hit costs an extra cycle and
// promotes the entry into the primary section (swapping with the primary
// LRU, preserving exclusivity); a full miss pays the page-walk penalty.
//
// The adaptive knob is the primary-section size: a larger primary raises the
// single-cycle hit rate but, because the CAM's match spans the primary
// section, stretches the processor cycle exactly like the instruction
// queue's wakeup. The same TPI tradeoff the paper studies for caches and
// queues therefore applies here, and the structure slots into the same
// configuration-management machinery.
package tlb

import (
	"fmt"

	"capsim/internal/palacharla"
	"capsim/internal/tech"
)

// Params describes the adaptive TLB.
type Params struct {
	// Groups is the number of entry groups built.
	Groups int
	// GroupEntries is the number of translations per group.
	GroupEntries int
	// PageBytes is the page size.
	PageBytes int
	// WalkCycles is the page-walk penalty in cycles at the fastest clock
	// (scaled to the active clock by the evaluation).
	WalkCycles int
	// Feature selects the process generation for timing.
	Feature tech.FeatureSize
}

// DefaultParams returns a 128-entry TLB in four 32-entry groups with 4 KB
// pages — an R10000-class configuration.
func DefaultParams() Params {
	return Params{
		Groups:       4,
		GroupEntries: 32,
		PageBytes:    4096,
		WalkCycles:   30,
		Feature:      tech.Micron018,
	}
}

// Validate reports whether the parameters are consistent.
func (p Params) Validate() error {
	switch {
	case p.Groups < 1:
		return fmt.Errorf("tlb: groups %d must be >= 1", p.Groups)
	case p.GroupEntries < 1:
		return fmt.Errorf("tlb: group entries %d must be >= 1", p.GroupEntries)
	case p.PageBytes <= 0 || p.PageBytes&(p.PageBytes-1) != 0:
		return fmt.Errorf("tlb: page size %d must be a positive power of two", p.PageBytes)
	case p.WalkCycles < 1:
		return fmt.Errorf("tlb: walk cycles %d must be >= 1", p.WalkCycles)
	case p.Feature <= 0:
		return fmt.Errorf("tlb: invalid feature size")
	}
	return nil
}

// TotalEntries returns the built capacity.
func (p Params) TotalEntries() int { return p.Groups * p.GroupEntries }

// Outcome classifies one lookup.
type Outcome int

// Lookup outcomes.
const (
	PrimaryHit Outcome = iota
	BackupHit
	Walk
)

func (o Outcome) String() string {
	switch o {
	case PrimaryHit:
		return "primary"
	case BackupHit:
		return "backup"
	default:
		return "walk"
	}
}

// Stats accumulates lookup outcomes.
type Stats struct {
	Lookups     uint64
	PrimaryHits uint64
	BackupHits  uint64
	Walks       uint64
}

// MissRatio returns walks per lookup.
func (s Stats) MissRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Walks) / float64(s.Lookups)
}

// entry is one translation.
type entry struct {
	vpn   uint64
	valid bool
	lru   uint64
}

// TLB is the runtime state.
type TLB struct {
	p       Params
	primary int  // groups in the single-cycle section
	backup  bool // whether non-primary groups serve as a backup section
	entries []entry
	stamp   uint64
	stats   Stats
}

// New builds a TLB with `primary` groups in the single-cycle section and
// the remaining groups as a two-cycle backup section (the paper's Section
// 4.2 suggestion for using silicon that would otherwise be disabled).
func New(p Params, primary int) (*TLB, error) {
	return build(p, primary, true)
}

// NewWithoutBackup builds a TLB whose non-primary groups are hard-disabled:
// only primary entries exist, and evictions are dropped. This is the naive
// adaptive design the backup strategy improves on.
func NewWithoutBackup(p Params, primary int) (*TLB, error) {
	return build(p, primary, false)
}

func build(p Params, primary int, backup bool) (*TLB, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if primary < 1 || primary > p.Groups {
		return nil, fmt.Errorf("tlb: primary %d outside [1,%d]", primary, p.Groups)
	}
	return &TLB{
		p:       p,
		primary: primary,
		backup:  backup,
		entries: make([]entry, p.TotalEntries()),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(p Params, primary int) *TLB {
	t, err := New(p, primary)
	if err != nil {
		panic(err)
	}
	return t
}

// Params returns the physical parameters.
func (t *TLB) Params() Params { return t.p }

// Primary returns the primary-section size in groups.
func (t *TLB) Primary() int { return t.primary }

// Stats returns accumulated statistics.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes counters, keeping contents.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// SetPrimary moves the primary/backup boundary. Entries stay where they are
// — the boundary is just a relabeling, exactly like the cache hierarchy's
// movable L1/L2 boundary.
func (t *TLB) SetPrimary(groups int) error {
	if groups < 1 || groups > t.p.Groups {
		return fmt.Errorf("tlb: primary %d outside [1,%d]", groups, t.p.Groups)
	}
	t.primary = groups
	return nil
}

// primaryEntries returns the entry count of the single-cycle section.
func (t *TLB) primaryEntries() int { return t.primary * t.p.GroupEntries }

// Lookup translates the address, updating contents and statistics.
func (t *TLB) Lookup(addr uint64) Outcome {
	t.stamp++
	t.stats.Lookups++
	vpn := addr / uint64(t.p.PageBytes)
	pe := t.primaryEntries()

	limit := len(t.entries)
	if !t.backup {
		limit = pe
	}
	hit := -1
	for i := 0; i < limit; i++ {
		if t.entries[i].valid && t.entries[i].vpn == vpn {
			hit = i
			break
		}
	}
	switch {
	case hit >= 0 && hit < pe:
		t.stats.PrimaryHits++
		t.entries[hit].lru = t.stamp
		return PrimaryHit
	case hit >= 0:
		// Backup hit: promote into the primary section by swapping with
		// its LRU entry (the paper's on-deck/backup exchange).
		t.stats.BackupHits++
		victim := t.lru(0, pe)
		t.entries[victim], t.entries[hit] = t.entries[hit], t.entries[victim]
		t.entries[victim].lru = t.stamp
		t.entries[hit].lru = t.stamp
		return BackupHit
	default:
		t.stats.Walks++
		victim := t.lru(0, pe)
		if t.entries[victim].valid && t.backup && t.p.Groups > t.primary {
			// Demote the displaced translation into the backup
			// section rather than dropping it.
			bv := t.lru(pe, len(t.entries))
			t.entries[bv] = t.entries[victim]
		}
		t.entries[victim] = entry{vpn: vpn, valid: true, lru: t.stamp}
		return Walk
	}
}

// lru returns the least-recently-used index in [lo, hi), preferring invalid
// slots.
func (t *TLB) lru(lo, hi int) int {
	best := lo
	for i := lo; i < hi; i++ {
		if !t.entries[i].valid {
			return i
		}
		if t.entries[i].lru < t.entries[best].lru {
			best = i
		}
	}
	return best
}

// CheckUnique verifies that no VPN is cached twice.
func (t *TLB) CheckUnique() error {
	seen := map[uint64]int{}
	for i, e := range t.entries {
		if !e.valid {
			continue
		}
		if j, dup := seen[e.vpn]; dup {
			return fmt.Errorf("tlb: vpn %#x in entries %d and %d", e.vpn, j, i)
		}
		seen[e.vpn] = i
	}
	return nil
}

// LookupCycle returns the single-cycle lookup delay (ns) the primary section
// imposes on the clock: a CAM match across primary entries, reusing the
// queue wakeup model (a TLB entry is a wide CAM row like a queue entry's tag
// field).
func LookupCycle(p Params, primaryGroups int, tp tech.Params) float64 {
	entries := primaryGroups * p.GroupEntries
	return palacharla.WakeupDelay(palacharla.Queue{Entries: entries, IssueWidth: 2}, tp) * 1.2
}

// Evaluate converts statistics into an average lookup time in ns for the
// configuration: primary hits cost one cycle, backup hits two, walks
// WalkCycles.
func Evaluate(p Params, primaryGroups int, s Stats) float64 {
	tp := tech.ForFeature(p.Feature)
	cyc := LookupCycle(p, primaryGroups, tp)
	if s.Lookups == 0 {
		return cyc
	}
	cycles := float64(s.PrimaryHits) + 2*float64(s.BackupHits) +
		float64(s.Walks)*float64(p.WalkCycles)
	return cyc * cycles / float64(s.Lookups)
}
