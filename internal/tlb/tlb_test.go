package tlb

import (
	"testing"
	"testing/quick"

	"capsim/internal/rng"
	"capsim/internal/tech"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	bad := DefaultParams()
	bad.PageBytes = 3000
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two page accepted")
	}
	bad = DefaultParams()
	bad.Groups = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero groups accepted")
	}
	bad = DefaultParams()
	bad.WalkCycles = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero walk penalty accepted")
	}
}

func TestNewBounds(t *testing.T) {
	p := DefaultParams()
	if _, err := New(p, 0); err == nil {
		t.Error("primary 0 accepted")
	}
	if _, err := New(p, p.Groups+1); err == nil {
		t.Error("primary > groups accepted")
	}
	if p.TotalEntries() != 128 {
		t.Errorf("total entries %d", p.TotalEntries())
	}
}

func TestLookupBasics(t *testing.T) {
	tb := MustNew(DefaultParams(), 2)
	addr := uint64(0x1234567)
	if o := tb.Lookup(addr); o != Walk {
		t.Fatalf("first lookup %v, want walk", o)
	}
	if o := tb.Lookup(addr); o != PrimaryHit {
		t.Fatalf("second lookup %v, want primary hit", o)
	}
	// Same page, different offset.
	if o := tb.Lookup(addr + 100); o != PrimaryHit {
		t.Fatalf("same-page lookup %v", o)
	}
	// Different page.
	if o := tb.Lookup(addr + 4096); o != Walk {
		t.Fatalf("next-page lookup %v, want walk", o)
	}
	s := tb.Stats()
	if s.Lookups != 4 || s.Walks != 2 || s.PrimaryHits != 2 {
		t.Errorf("stats %+v", s)
	}
	if s.MissRatio() != 0.5 {
		t.Errorf("miss ratio %v", s.MissRatio())
	}
}

func TestBackupSectionCatchesEvictions(t *testing.T) {
	p := DefaultParams() // 4 groups of 32
	tb := MustNew(p, 1)  // primary = 32 entries, backup = 96
	// Touch 64 pages: the first 32 are demoted to backup, not lost.
	for i := 0; i < 64; i++ {
		tb.Lookup(uint64(i) * 4096)
	}
	tb.ResetStats()
	if o := tb.Lookup(0); o != BackupHit {
		t.Fatalf("evicted page lookup %v, want backup hit", o)
	}
	// The promotion moved it to the primary section.
	tb.ResetStats()
	if o := tb.Lookup(0); o != PrimaryHit {
		t.Fatalf("promoted page lookup %v, want primary hit", o)
	}
	if err := tb.CheckUnique(); err != nil {
		t.Error(err)
	}
}

func TestSetPrimaryRelabelsOnly(t *testing.T) {
	tb := MustNew(DefaultParams(), 2)
	for i := 0; i < 100; i++ {
		tb.Lookup(uint64(i) * 4096)
	}
	if err := tb.SetPrimary(4); err != nil {
		t.Fatal(err)
	}
	if err := tb.CheckUnique(); err != nil {
		t.Error(err)
	}
	if err := tb.SetPrimary(9); err == nil {
		t.Error("illegal primary accepted")
	}
}

func TestLookupCycleGrowsWithPrimary(t *testing.T) {
	p := DefaultParams()
	tp := tech.ForFeature(p.Feature)
	prev := 0.0
	for g := 1; g <= p.Groups; g++ {
		c := LookupCycle(p, g, tp)
		if c <= prev {
			t.Errorf("primary=%d: cycle %v not greater than %v", g, c, prev)
		}
		prev = c
	}
}

func TestEvaluateTradeoff(t *testing.T) {
	// A working set that fits 2 groups but not 1: the 2-group primary
	// should win TPI despite its slower lookup cycle.
	p := DefaultParams()
	src := rng.New(42)
	runFor := func(primary int) float64 {
		tb := MustNew(p, primary)
		s2 := rng.New(42)
		_ = src
		for i := 0; i < 60000; i++ {
			page := uint64(s2.Intn(60)) // 60 hot pages
			tb.Lookup(page * 4096)
		}
		return Evaluate(p, primary, tb.Stats())
	}
	t1, t2 := runFor(1), runFor(2)
	if t2 >= t1 {
		t.Errorf("2-group primary (%v ns) should beat 1-group (%v ns) on a 60-page set", t2, t1)
	}
}

func TestUniquenessProperty(t *testing.T) {
	f := func(seed uint64, moves []uint8) bool {
		p := DefaultParams()
		tb := MustNew(p, 2)
		r := rng.New(seed)
		for i := 0; i < 500; i++ {
			tb.Lookup(uint64(r.Intn(300)) * 4096)
			if len(moves) > 0 && i%53 == 0 {
				if err := tb.SetPrimary(1 + int(moves[i%len(moves)])%p.Groups); err != nil {
					return false
				}
			}
		}
		return tb.CheckUnique() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOutcomeString(t *testing.T) {
	if PrimaryHit.String() != "primary" || BackupHit.String() != "backup" || Walk.String() != "walk" {
		t.Error("Outcome.String broken")
	}
}
