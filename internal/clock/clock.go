// Package clock models the CAP's dynamic clocking system (paper Sections 4
// and 4.2): a set of predetermined clock sources — one per worst-case timing
// analysis of each combination of adaptive-structure configurations — behind
// a clock hold-and-multiplex scheme. Reliably stopping one clock and
// starting another costs tens of cycles (the paper's estimate), which this
// package accounts for.
package clock

import (
	"fmt"
	"sort"
)

// Source is one selectable processor clock.
type Source struct {
	// ID identifies the source; it conventionally equals the adaptive
	// structure's configuration index that requires it.
	ID int
	// PeriodNS is the clock period in nanoseconds.
	PeriodNS float64
	// Label names the configuration ("16KB 4-way L1", "64-entry IQ").
	Label string
}

// DefaultSwitchPenaltyCycles is the paper's "tens of cycles" estimate for
// pausing the active clock and reliably enabling the new one.
const DefaultSwitchPenaltyCycles = 20

// System is the dynamic clock: a source table plus the currently selected
// source and switch accounting.
type System struct {
	sources map[int]Source
	active  int
	penalty int

	switches    int64
	cycles      int64   // cycles accumulated via Advance
	timeNS      float64 // wall-clock time accumulated via Advance
	penaltyNS   float64 // portion of timeNS spent in switch penalties
	penaltyCycl int64
}

// NewSystem builds a dynamic clock from the given sources, initially running
// on initial. penaltyCycles < 0 selects the default penalty.
func NewSystem(sources []Source, initial int, penaltyCycles int) (*System, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("clock: no sources")
	}
	if penaltyCycles < 0 {
		penaltyCycles = DefaultSwitchPenaltyCycles
	}
	m := make(map[int]Source, len(sources))
	for _, s := range sources {
		if s.PeriodNS <= 0 {
			return nil, fmt.Errorf("clock: source %d has period %v", s.ID, s.PeriodNS)
		}
		if _, dup := m[s.ID]; dup {
			return nil, fmt.Errorf("clock: duplicate source id %d", s.ID)
		}
		m[s.ID] = s
	}
	if _, ok := m[initial]; !ok {
		return nil, fmt.Errorf("clock: initial source %d not in table", initial)
	}
	return &System{sources: m, active: initial, penalty: penaltyCycles}, nil
}

// MustNewSystem is NewSystem but panics on error.
func MustNewSystem(sources []Source, initial int, penaltyCycles int) *System {
	s, err := NewSystem(sources, initial, penaltyCycles)
	if err != nil {
		panic(err)
	}
	return s
}

// Active returns the currently selected source.
func (s *System) Active() Source { return s.sources[s.active] }

// Sources returns the source table sorted by ID.
func (s *System) Sources() []Source {
	out := make([]Source, 0, len(s.sources))
	for _, src := range s.sources {
		out = append(out, src)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PenaltyCycles returns the per-switch penalty in cycles.
func (s *System) PenaltyCycles() int { return s.penalty }

// Select switches to the source with the given ID, charging the switch
// penalty (at the OLD clock's period: the old clock must be reliably stopped
// before the new one starts). Selecting the active source is free. It
// returns the penalty charged in nanoseconds.
func (s *System) Select(id int) (float64, error) {
	if _, ok := s.sources[id]; !ok {
		return 0, fmt.Errorf("clock: unknown source %d", id)
	}
	if id == s.active {
		return 0, nil
	}
	pen := float64(s.penalty) * s.sources[s.active].PeriodNS
	s.active = id
	s.switches++
	s.cycles += int64(s.penalty)
	s.penaltyCycl += int64(s.penalty)
	s.timeNS += pen
	s.penaltyNS += pen
	return pen, nil
}

// Advance accounts for n cycles of execution at the active clock and returns
// the elapsed nanoseconds.
func (s *System) Advance(n int64) float64 {
	if n < 0 {
		n = 0
	}
	dt := float64(n) * s.sources[s.active].PeriodNS
	s.cycles += n
	s.timeNS += dt
	return dt
}

// Switches returns how many clock switches have occurred.
func (s *System) Switches() int64 { return s.switches }

// TimeNS returns total accumulated time.
func (s *System) TimeNS() float64 { return s.timeNS }

// PenaltyNS returns the accumulated switch-penalty time.
func (s *System) PenaltyNS() float64 { return s.penaltyNS }

// Cycles returns total accumulated cycles (including penalty cycles).
func (s *System) Cycles() int64 { return s.cycles }
