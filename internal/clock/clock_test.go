package clock

import (
	"math"
	"testing"
)

func sources() []Source {
	return []Source{
		{ID: 0, PeriodNS: 0.45, Label: "fast"},
		{ID: 1, PeriodNS: 0.60, Label: "mid"},
		{ID: 2, PeriodNS: 0.80, Label: "slow"},
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, 0, -1); err == nil {
		t.Error("empty source table accepted")
	}
	if _, err := NewSystem(sources(), 7, -1); err == nil {
		t.Error("unknown initial source accepted")
	}
	dup := append(sources(), Source{ID: 0, PeriodNS: 1})
	if _, err := NewSystem(dup, 0, -1); err == nil {
		t.Error("duplicate source id accepted")
	}
	bad := []Source{{ID: 0, PeriodNS: 0}}
	if _, err := NewSystem(bad, 0, -1); err == nil {
		t.Error("zero period accepted")
	}
}

func TestDefaultPenalty(t *testing.T) {
	s := MustNewSystem(sources(), 0, -1)
	if s.PenaltyCycles() != DefaultSwitchPenaltyCycles {
		t.Errorf("penalty %d, want default %d", s.PenaltyCycles(), DefaultSwitchPenaltyCycles)
	}
}

func TestAdvanceAccumulatesTime(t *testing.T) {
	s := MustNewSystem(sources(), 1, 0)
	dt := s.Advance(100)
	if math.Abs(dt-60) > 1e-9 {
		t.Errorf("100 cycles at 0.6ns = %v, want 60", dt)
	}
	if s.Cycles() != 100 || math.Abs(s.TimeNS()-60) > 1e-9 {
		t.Errorf("accumulators: %d cycles, %v ns", s.Cycles(), s.TimeNS())
	}
	if s.Advance(-5) != 0 {
		t.Error("negative advance should be a no-op")
	}
}

func TestSelectChargesPenaltyAtOldClock(t *testing.T) {
	s := MustNewSystem(sources(), 2, 10) // slow (0.8ns) initially
	pen, err := s.Select(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pen-8.0) > 1e-9 { // 10 cycles * 0.8 ns
		t.Errorf("penalty %v ns, want 8 (old clock)", pen)
	}
	if s.Active().ID != 0 {
		t.Errorf("active %d after switch", s.Active().ID)
	}
	if s.Switches() != 1 {
		t.Errorf("switch count %d", s.Switches())
	}
	if math.Abs(s.PenaltyNS()-8.0) > 1e-9 {
		t.Errorf("penalty accumulator %v", s.PenaltyNS())
	}
}

func TestSelectSameSourceFree(t *testing.T) {
	s := MustNewSystem(sources(), 1, 10)
	pen, err := s.Select(1)
	if err != nil || pen != 0 {
		t.Errorf("same-source select: pen=%v err=%v", pen, err)
	}
	if s.Switches() != 0 {
		t.Error("same-source select counted as a switch")
	}
}

func TestSelectUnknown(t *testing.T) {
	s := MustNewSystem(sources(), 0, 10)
	if _, err := s.Select(9); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestSourcesSorted(t *testing.T) {
	s := MustNewSystem([]Source{{ID: 2, PeriodNS: 1}, {ID: 0, PeriodNS: 1}, {ID: 1, PeriodNS: 1}}, 0, 0)
	got := s.Sources()
	for i, src := range got {
		if src.ID != i {
			t.Fatalf("sources not sorted: %v", got)
		}
	}
}

func TestFullScenario(t *testing.T) {
	s := MustNewSystem(sources(), 0, 20)
	s.Advance(1000)                        // 450 ns
	if _, err := s.Select(2); err != nil { // +20*0.45 = 9 ns
		t.Fatal(err)
	}
	s.Advance(1000) // 800 ns
	want := 450.0 + 9.0 + 800.0
	if math.Abs(s.TimeNS()-want) > 1e-9 {
		t.Errorf("total time %v, want %v", s.TimeNS(), want)
	}
	if s.Cycles() != 2020 {
		t.Errorf("cycles %d, want 2020", s.Cycles())
	}
}
