package classify

import (
	"fmt"
	"testing"

	"capsim/internal/cache"
	"capsim/internal/memo"
	"capsim/internal/trace"
	"capsim/internal/workload"
)

// fuzzParams is a small geometry so fuzz inputs of a few hundred references
// can exercise swaps, structure misses and writebacks, not just cold fills.
func fuzzParams() cache.Params {
	p := cache.PaperParams()
	p.IncrementBytes = 1024
	p.IncrementAssoc = 1
	p.BlockBytes = 32
	p.Increments = 4
	return p
}

// expectClass derives the ground-truth class for one reference from a
// Hierarchy oracle: the level Access returned plus the stat deltas that
// identify the structural side effects (swap on an L2 hit, dirty-victim
// writeback on a miss).
func expectClass(h *cache.Hierarchy, addr uint64, write bool) uint8 {
	before := h.Stats()
	lvl := h.Access(addr, write)
	after := h.Stats()
	switch lvl {
	case cache.L1Hit:
		return cache.ClassL1Hit
	case cache.L2Hit:
		if after.Swaps != before.Swaps+1 {
			panic("cache: L2 hit without a swap")
		}
		return cache.ClassL2Swap
	default:
		if after.Writebacks == before.Writebacks+1 {
			return cache.ClassMissWB
		}
		return cache.ClassMissLoad
	}
}

// FuzzClassifyRoundTrip drives a fuzz-derived reference stream through the
// classification producer (cache.MultiHierarchy.AccessClasses), checks every
// class against an independent per-boundary Hierarchy oracle — level AND
// side effects (swap, writeback) — then encodes each row with the RLE+varint
// codec and replays it through a Cursor, requiring the exact sequence back,
// run boundaries included. Finally it pins the overrun contract: reading one
// class past the materialized length panics.
func FuzzClassifyRoundTrip(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x01, 0x02, 0x03, 0xfe, 0xff, 0x80, 0x7f})
	f.Add([]byte("interleaved writes and jumps, enough bytes for a few sets"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 1<<12 {
			t.Skip()
		}
		p := fuzzParams()
		maxB := p.Increments - 1
		mh, err := cache.NewMulti(p, maxB)
		if err != nil {
			t.Fatalf("NewMulti: %v", err)
		}
		oracles := make([]*cache.Hierarchy, maxB+1)
		for k := 1; k <= maxB; k++ {
			oracles[k] = cache.MustNew(p, k)
		}
		sets, block := uint64(p.Sets()), uint64(p.BlockBytes)
		footprint := sets * block * 8 // a few times the structure size

		// Derive the stream from the fuzz bytes: each byte yields one
		// reference — bit 0 is the write flag, bit 1 selects sequential
		// vs. hashed jump, the rest perturbs the jump target.
		encs := make([]encoder, maxB)
		expected := make([][]uint8, maxB)
		classes := make([]uint8, maxB)
		var addr uint64
		for i, b := range data {
			write := b&1 == 1
			if b&2 == 2 {
				addr += block / 2 // straddles blocks every other step
			} else {
				addr = (addr*0x9e3779b97f4a7c15 + uint64(b) + uint64(i)) % footprint
			}
			blk := addr / block
			set, tag := int(blk%sets), blk/sets
			mh.AccessClasses(set, tag, write, classes)
			for k := 1; k <= maxB; k++ {
				want := expectClass(oracles[k], addr, write)
				if classes[k-1] != want {
					t.Fatalf("ref %d boundary %d: class %d, oracle %d", i, k, classes[k-1], want)
				}
				encs[k-1].add(classes[k-1])
				expected[k-1] = append(expected[k-1], want)
			}
		}
		s := &Stream{MaxB: maxB, NRefs: int64(len(data)), Rows: make([][]byte, maxB)}
		for kb := range encs {
			encs[kb].flush()
			s.Rows[kb] = encs[kb].buf
		}
		for k := 1; k <= maxB; k++ {
			c := s.Cursor(k)
			for i, want := range expected[k-1] {
				if got := c.Next(); got != want {
					t.Fatalf("boundary %d ref %d: decoded %d, want %d", k, i, got, want)
				}
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Fatalf("boundary %d: read past NRefs did not panic", k)
					}
				}()
				c.Next()
			}()
		}
	})
}

// TestClassLevel pins the class→level projection used by replay consumers.
func TestClassLevel(t *testing.T) {
	cases := []struct {
		cls  uint8
		want cache.Level
	}{
		{cache.ClassL1Hit, cache.L1Hit},
		{cache.ClassL2Swap, cache.L2Hit},
		{cache.ClassMissLoad, cache.Miss},
		{cache.ClassMissWB, cache.Miss},
	}
	for _, tc := range cases {
		if got := cache.ClassLevel(tc.cls); got != tc.want {
			t.Fatalf("ClassLevel(%d) = %v, want %v", tc.cls, got, tc.want)
		}
	}
}

// TestStreamForAgainstStats decodes a real application's stream end-to-end
// and requires the class census at every boundary to reproduce the hierarchy
// counters of an independent MultiHierarchy replay: hits, swaps, structure
// misses and writebacks all follow from the four classes.
func TestStreamForAgainstStats(t *testing.T) {
	defer Reset()
	Reset()
	b, err := workload.ByName("gcc")
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	p := cache.PaperParams()
	const (
		seed  = uint64(1998)
		maxB  = 3
		nrefs = int64(40_000)
	)
	s, err := StreamFor(b, seed, p, maxB, nrefs)
	if err != nil {
		t.Fatalf("StreamFor: %v", err)
	}
	if s.MaxB != maxB || s.NRefs != nrefs {
		t.Fatalf("stream shape (%d,%d), want (%d,%d)", s.MaxB, s.NRefs, maxB, nrefs)
	}
	mh, err := cache.NewMulti(p, maxB)
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	mh.Replay(trace.DecodedFor(trace.RefsFor(b, seed), trace.Geometry{BlockBytes: p.BlockBytes, Sets: p.Sets()}).Cursor(), nrefs)
	for k := 1; k <= maxB; k++ {
		var census [4]uint64
		c := s.Cursor(k)
		for i := int64(0); i < nrefs; i++ {
			census[c.Next()]++
		}
		st := mh.BoundaryStats(k)
		l1Miss := census[cache.ClassL2Swap] + census[cache.ClassMissLoad] + census[cache.ClassMissWB]
		l2Miss := census[cache.ClassMissLoad] + census[cache.ClassMissWB]
		if st.Refs != uint64(nrefs) || st.L1Misses != l1Miss || st.L2Misses != l2Miss ||
			st.Swaps != census[cache.ClassL2Swap] || st.Writebacks != census[cache.ClassMissWB] {
			t.Fatalf("boundary %d: census %v inconsistent with stats %+v", k, census, st)
		}
	}
	if s.Bytes() <= 0 || s.RawBytes() != nrefs*maxB {
		t.Fatalf("byte accounting: enc=%d raw=%d", s.Bytes(), s.RawBytes())
	}
	if TotalBytes() != s.Bytes() || TotalRawBytes() != s.RawBytes() {
		t.Fatalf("tier totals (%d,%d) != stream (%d,%d)", TotalBytes(), TotalRawBytes(), s.Bytes(), s.RawBytes())
	}
	if s.Bytes()*4 > s.RawBytes() {
		t.Fatalf("compression ratio %.2f worse than 0.25x raw", float64(s.Bytes())/float64(s.RawBytes()))
	}
}

// TestStreamForMemoized pins the singleflight contract: same key → the same
// *Stream, and Reset forces a regeneration that is byte-identical.
func TestStreamForMemoized(t *testing.T) {
	defer Reset()
	Reset()
	b, err := workload.ByName("compress")
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	p := cache.PaperParams()
	s1, err := StreamFor(b, 7, p, 2, 10_000)
	if err != nil {
		t.Fatalf("StreamFor: %v", err)
	}
	s2, err := StreamFor(b, 7, p, 2, 10_000)
	if err != nil {
		t.Fatalf("StreamFor: %v", err)
	}
	if s1 != s2 {
		t.Fatalf("same key returned distinct streams")
	}
	Reset()
	s3, err := StreamFor(b, 7, p, 2, 10_000)
	if err != nil {
		t.Fatalf("StreamFor after Reset: %v", err)
	}
	if s3 == s1 {
		t.Fatalf("Reset did not drop the memoized stream")
	}
	if fmt.Sprintf("%x", s1.Rows) != fmt.Sprintf("%x", s3.Rows) {
		t.Fatalf("regenerated stream is not byte-identical")
	}
}

// TestStreamForPersistRoundTrip publishes a stream through a persistent
// store, drops the in-process memo, and requires the reload to be
// byte-identical to the generated original — the cross-process warm path.
func TestStreamForPersistRoundTrip(t *testing.T) {
	defer func() {
		SetStore(nil)
		Reset()
	}()
	Reset()
	st, err := memo.OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	SetStore(st)
	b, err := workload.ByName("li")
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	p := cache.PaperParams()
	s1, err := StreamFor(b, 42, p, 2, 8_000)
	if err != nil {
		t.Fatalf("StreamFor: %v", err)
	}
	if !st.Has(Key(b, 42, p, 2, 8_000)) {
		t.Fatalf("stream not published to the persistent store")
	}
	Reset()
	s2, err := StreamFor(b, 42, p, 2, 8_000)
	if err != nil {
		t.Fatalf("StreamFor (warm): %v", err)
	}
	if s2 == s1 {
		t.Fatalf("expected a fresh load, got the old pointer")
	}
	if s2.MaxB != s1.MaxB || s2.NRefs != s1.NRefs || fmt.Sprintf("%x", s2.Rows) != fmt.Sprintf("%x", s1.Rows) {
		t.Fatalf("persisted stream differs from generated one")
	}
}

// TestCursorBounds pins the boundary-range contract of Stream.Cursor.
func TestCursorBounds(t *testing.T) {
	s := &Stream{MaxB: 2, NRefs: 1, Rows: [][]byte{{0x04}, {0x05}}}
	for _, k := range []int{0, 3, -1} {
		k := k
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Cursor(%d) did not panic", k)
				}
			}()
			s.Cursor(k)
		}()
	}
	if got := s.Cursor(2).Next(); got != cache.ClassL2Swap {
		t.Fatalf("Cursor(2).Next() = %d, want %d", got, cache.ClassL2Swap)
	}
}
