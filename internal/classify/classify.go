// Package classify is the classification-stream tier: for one application's
// reference stream it materializes, once, the per-reference OUTCOME of every
// cache-boundary position — which level each reference resolved at, plus the
// structural side effects (exclusive swap on an L2 hit, dirty-victim
// writeback on a miss) — and lets any number of consumers replay those
// outcomes without touching a hierarchy again.
//
// The stream is the memoization layer between the trace tier (raw references,
// internal/trace) and the simulation kernels (internal/core): where
// MultiHierarchy made the reference stream decode once per *family pass*,
// classify makes the hierarchy itself run once per (app, seed, geometry,
// boundary-range, length) — every later consumer (the joint cache×queue
// kernel's cells, warm re-runs, shard merges, future policy-zoo contenders)
// is a cursor over a compressed byte stream.
//
// Encoding. Each boundary row is an RLE + varint byte stream over the 4-class
// alphabet of cache.AccessClasses: runs of one class encode as a single
// LEB128 varint holding class | runLength<<2. Spatial locality makes L1-hit
// runs enormous (the stack-distance-zero fast path), so rows compress to a
// small fraction of one byte per reference. Rows are independent: a cursor
// holds (offset, remaining, class) — three words, no shared decode state.
//
// Publication. StreamFor is memoized behind internal/memo singleflight, and —
// when a persistent store is attached (SetStore, wired from the CLI's
// -study-cache) — published through memo.PersistDo under a canonical key, so
// shard workers and warm processes load the encoded rows instead of
// re-simulating the hierarchy. Generation is deterministic, so the persisted
// value is byte-stable across processes.
//
// Invalidation. A stream is immutable once built; the key carries every
// input that determines its content (seed, geometry params, boundary count,
// length, app), so there is nothing to invalidate in place — a new budget or
// geometry is simply a new key. Reset drops the in-process memo (the
// determinism tests use it); the persistent tier is content-addressed and
// never stale.
package classify

import (
	"fmt"
	"sync/atomic"
	"time"

	"capsim/internal/cache"
	"capsim/internal/memo"
	"capsim/internal/obs"
	"capsim/internal/trace"
	"capsim/internal/workload"
)

// Telemetry: stream generations and replays, plus the tier's resident
// footprint (encoded bytes across all memoized streams) against the flat
// one-byte-per-class equivalent. Counters are obs-gated; the byte totals are
// also tracked unconditionally (TotalBytes/TotalRawBytes) for bench reports.
var (
	obsGens    = obs.NewCounter("classify.gens")    // streams generated (hierarchy passes)
	obsReplays = obs.NewCounter("classify.replays") // cursors opened over a stream
	obsGenNS   = obs.NewHistogram("classify.gen_ns")
	obsBytes   = obs.NewGauge("classify.bytes")     // encoded bytes resident
	obsRawGag  = obs.NewGauge("classify.raw_bytes") // flat equivalent

	totalBytes    atomic.Int64
	totalRawBytes atomic.Int64
)

// Stream is one materialized classification family: for boundaries
// 1..MaxB, the outcome class of each of the first NRefs references of one
// (benchmark, seed, geometry) stream. Fields are exported for gob (the
// persistent tier); treat them as read-only.
type Stream struct {
	MaxB  int
	NRefs int64
	Rows  [][]byte // Rows[k-1]: boundary k's RLE+varint class stream
}

// Bytes returns the encoded size of all rows.
func (s *Stream) Bytes() int64 {
	var n int64
	for _, r := range s.Rows {
		n += int64(len(r))
	}
	return n
}

// RawBytes returns the flat one-byte-per-class equivalent.
func (s *Stream) RawBytes() int64 { return s.NRefs * int64(s.MaxB) }

// Cursor returns a replay cursor over boundary k's row (1-based, like
// cache.BoundaryStats). Cursors are independent and cheap; opening one
// counts as a replay.
func (s *Stream) Cursor(k int) *Cursor {
	if k < 1 || k > s.MaxB {
		panic(fmt.Sprintf("classify: boundary %d outside [1,%d]", k, s.MaxB))
	}
	obsReplays.Inc1()
	return &Cursor{row: s.Rows[k-1], limit: s.NRefs}
}

// Cursor decodes one boundary row incrementally: one class per Next, keeping
// only (byte offset, current run). Reading past the stream's materialized
// length panics — it means the consumer's reference budget was computed
// wrong, and silently recycling classes would corrupt a simulation.
type Cursor struct {
	row   []byte
	off   int
	run   int64 // remaining repetitions of cls, current run included
	cls   uint8
	read  int64
	limit int64
}

// Next returns the next reference's outcome class.
func (c *Cursor) Next() uint8 {
	if c.run == 0 {
		if c.read >= c.limit {
			panic(fmt.Sprintf("classify: replay past materialized stream (%d refs)", c.limit))
		}
		v, off := uvarintAt(c.row, c.off)
		c.off = off
		c.cls = uint8(v & 3)
		c.run = int64(v >> 2)
	}
	c.run--
	c.read++
	return c.cls
}

// encoder accumulates one row's RLE stream.
type encoder struct {
	buf []byte
	cls uint8
	run int64
}

func (e *encoder) add(cls uint8) {
	if cls == e.cls {
		e.run++
		return
	}
	e.flush()
	e.cls, e.run = cls, 1
}

func (e *encoder) flush() {
	if e.run > 0 {
		e.buf = appendUvarint(e.buf, uint64(e.run)<<2|uint64(e.cls&3))
	}
	e.run = 0
}

// appendUvarint and uvarintAt mirror the trace tier's LEB128 codec (the
// helpers are unexported there; the five lines are cheaper than an export).
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func uvarintAt(b []byte, off int) (uint64, int) {
	c := b[off]
	if c < 0x80 {
		return uint64(c), off + 1
	}
	v := uint64(c & 0x7f)
	s := uint(7)
	for {
		off++
		c = b[off]
		if c < 0x80 {
			return v | uint64(c)<<s, off + 1
		}
		v |= uint64(c&0x7f) << s
		s += 7
	}
}

// store is the optional persistent tier, shared with the study-row store
// (experiments.SetStudyCacheDir wires both to the same directory).
var store atomic.Pointer[memo.Store]

// SetStore attaches a persistent content-addressed store; nil detaches.
func SetStore(s *memo.Store) { store.Store(s) }

// streams is the in-process singleflight memo over stream keys.
var streams memo.Memo[string, *Stream]

// Reset discards the in-process memoized streams (the persistent tier, if
// any, is untouched). The determinism tests call it between passes.
func Reset() {
	streams.Reset()
	totalBytes.Store(0)
	totalRawBytes.Store(0)
	obsBytes.Set(0)
	obsRawGag.Set(0)
}

// TotalBytes returns the encoded bytes resident across memoized streams.
func TotalBytes() int64 { return totalBytes.Load() }

// TotalRawBytes returns their flat one-byte-per-class equivalent.
func TotalRawBytes() int64 { return totalRawBytes.Load() }

// Key returns the canonical stream key — exactly the content-determining
// inputs, same discipline as the study-row keys.
func Key(b workload.Benchmark, seed uint64, p cache.Params, maxB int, nrefs int64) string {
	return fmt.Sprintf("classify|v1|seed=%d|maxB=%d|nrefs=%d|p=%+v|app=%s", seed, maxB, nrefs, p, b.Name)
}

// StreamFor returns the classification stream for the first nrefs references
// of (b, seed) under geometry p, boundaries 1..maxB — generating it with one
// MultiHierarchy pass on first use, loading it from the persistent tier when
// attached and warm, and sharing one in-process copy among all consumers.
func StreamFor(b workload.Benchmark, seed uint64, p cache.Params, maxB int, nrefs int64) (*Stream, error) {
	key := Key(b, seed, p, maxB, nrefs)
	return streams.Do(key, func() (*Stream, error) {
		s, err := memo.PersistDo(store.Load(), key, func() (*Stream, error) {
			return generate(b, seed, p, maxB, nrefs)
		})
		if err != nil {
			return nil, err
		}
		totalBytes.Add(s.Bytes())
		totalRawBytes.Add(s.RawBytes())
		obsBytes.Add(s.Bytes())
		obsRawGag.Add(s.RawBytes())
		return s, nil
	})
}

// generate runs the one hierarchy pass: every reference decodes once from
// the shared trace tier and classifies at every boundary in lockstep
// (cache.AccessClasses), appending to the per-boundary RLE encoders.
func generate(b workload.Benchmark, seed uint64, p cache.Params, maxB int, nrefs int64) (*Stream, error) {
	as := obs.StartAsync("classify", "gen:"+b.Name)
	defer as.End(obs.Arg{K: "maxB", V: maxB}, obs.Arg{K: "nrefs", V: nrefs})
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lo, hi := p.Boundaries()
	if maxB < lo || maxB > hi {
		return nil, fmt.Errorf("classify: max boundary %d outside [%d,%d]", maxB, lo, hi)
	}
	if nrefs < 0 {
		return nil, fmt.Errorf("classify: negative reference count %d", nrefs)
	}
	mh, err := cache.NewMulti(p, maxB)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	dec := trace.DecodedFor(trace.RefsFor(b, seed), trace.Geometry{BlockBytes: p.BlockBytes, Sets: p.Sets()}).Cursor()
	encs := make([]encoder, maxB)
	classes := make([]uint8, maxB)
	for i := int64(0); i < nrefs; i++ {
		set, tag, write := dec.NextDecoded()
		mh.AccessClasses(int(set), tag, write, classes)
		for kb := range encs {
			encs[kb].add(classes[kb])
		}
	}
	rows := make([][]byte, maxB)
	for kb := range encs {
		encs[kb].flush()
		rows[kb] = encs[kb].buf
	}
	mh.PublishObs()
	obsGens.Inc1()
	obsGenNS.Observe(time.Since(t0).Nanoseconds())
	return &Stream{MaxB: maxB, NRefs: nrefs, Rows: rows}, nil
}
