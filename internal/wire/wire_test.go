package wire

import (
	"math"
	"testing"
	"testing/quick"

	"capsim/internal/tech"
)

var p18 = tech.ForFeature(tech.Micron018)

func TestUnbufferedDelayQuadraticInLength(t *testing.T) {
	// With no element load, doubling the length quadruples the delay.
	l1 := Line{LengthMM: 1}
	l2 := Line{LengthMM: 2}
	d1 := UnbufferedDelay(l1, p18)
	d2 := UnbufferedDelay(l2, p18)
	if math.Abs(d2/d1-4) > 1e-9 {
		t.Errorf("doubling length scaled delay by %v, want 4", d2/d1)
	}
}

func TestUnbufferedDelayFeatureIndependentWithoutLoad(t *testing.T) {
	// The wire itself does not scale with feature size — the paper's
	// single unbuffered curve.
	l := Line{LengthMM: 3}
	d25 := UnbufferedDelay(l, tech.ForFeature(tech.Micron025))
	d12 := UnbufferedDelay(l, tech.ForFeature(tech.Micron012))
	if math.Abs(d25-d12) > 1e-12 {
		t.Errorf("unbuffered delay varies with feature: %v vs %v", d25, d12)
	}
}

func TestBufferedBeatsUnbufferedOnLongLines(t *testing.T) {
	l := Line{LengthMM: 5, LoadC: 3}
	u := UnbufferedDelay(l, p18)
	b, k := OptimalBufferedDelay(l, p18)
	if b >= u {
		t.Errorf("long line: buffered %v not faster than unbuffered %v", b, u)
	}
	if k < 2 {
		t.Errorf("long line: expected multiple repeaters, got %d", k)
	}
}

func TestUnbufferedWinsOnShortLines(t *testing.T) {
	l := Line{LengthMM: 0.2, LoadC: 0.05}
	u := UnbufferedDelay(l, p18)
	b, _ := OptimalBufferedDelay(l, p18)
	if u >= b {
		t.Errorf("short line: unbuffered %v not faster than buffered %v", u, b)
	}
	d, buffered := BestDelay(l, p18)
	if buffered || d != u {
		t.Errorf("BestDelay picked buffered=%v d=%v, want unbuffered %v", buffered, d, u)
	}
}

func TestBufferedDelayImprovesWithScaling(t *testing.T) {
	// Buffered delay is device-limited, so smaller features are faster.
	l := Line{LengthMM: 4, LoadC: 2}
	var prev float64
	for i, f := range tech.Generations() { // 0.25, 0.18, 0.12
		b, _ := OptimalBufferedDelay(l, tech.ForFeature(f))
		if i > 0 && b >= prev {
			t.Errorf("%v: buffered delay %v not faster than previous generation %v", f, b, prev)
		}
		prev = b
	}
}

func TestOptimalRepeaterCountGrowsWithLength(t *testing.T) {
	prev := 0
	for _, mm := range []float64{0.5, 1, 2, 4, 8} {
		k := OptimalRepeaterCount(Line{LengthMM: mm, LoadC: mm}, p18)
		if k < prev {
			t.Errorf("length %vmm: repeater count %d decreased from %d", mm, k, prev)
		}
		prev = k
	}
	if prev < 2 {
		t.Errorf("8mm line should want several repeaters, got %d", prev)
	}
}

func TestBufferedDelayOptimalAtReportedK(t *testing.T) {
	// The reported optimal repeater count should be (near) the argmin of
	// BufferedDelay over k. Allow one step of slack for rounding.
	l := Line{LengthMM: 3.5, LoadC: 2}
	kOpt := OptimalRepeaterCount(l, p18)
	dOpt := BufferedDelay(l, kOpt, p18)
	for k := 1; k <= kOpt+8; k++ {
		if d := BufferedDelay(l, k, p18); d < dOpt*0.98 {
			t.Errorf("k=%d gives %v, substantially better than reported optimum k=%d (%v)", k, d, kOpt, dOpt)
		}
	}
}

func TestSegmentDelayHierarchy(t *testing.T) {
	// Repeater isolation: reaching half the elements costs half the
	// delay, and the enabled span's delay is independent of the total
	// structure beyond it.
	l := Line{LengthMM: 4, LoadC: 2}
	full, _ := OptimalBufferedDelay(l, p18)
	half := SegmentDelay(l, 8, 16, p18)
	if math.Abs(half-full/2) > 1e-9 {
		t.Errorf("half span delay %v, want %v", half, full/2)
	}
	if d := SegmentDelay(l, 0, 16, p18); d != 0 {
		t.Errorf("zero span delay %v, want 0", d)
	}
	if d := SegmentDelay(l, 20, 16, p18); math.Abs(d-full) > 1e-9 {
		t.Errorf("over-span clamps to full: %v vs %v", d, full)
	}
}

func TestValidate(t *testing.T) {
	if err := (Line{LengthMM: 1, LoadC: 0}).Validate(); err != nil {
		t.Errorf("valid line rejected: %v", err)
	}
	if err := (Line{LengthMM: -1}).Validate(); err == nil {
		t.Error("negative length accepted")
	}
	if err := (Line{LengthMM: 1, LoadC: -0.1}).Validate(); err == nil {
		t.Error("negative load accepted")
	}
}

func TestDelayMonotoneProperty(t *testing.T) {
	// Property: delays are positive and non-decreasing in both length and
	// load, for both wire disciplines.
	f := func(l1, l2, c1, c2 uint16) bool {
		a := Line{LengthMM: 0.1 + float64(l1%100)*0.1, LoadC: float64(c1%50) * 0.1}
		b := Line{LengthMM: a.LengthMM + float64(l2%50)*0.1, LoadC: a.LoadC + float64(c2%50)*0.1}
		ua, ub := UnbufferedDelay(a, p18), UnbufferedDelay(b, p18)
		ba, _ := OptimalBufferedDelay(a, p18)
		bb, _ := OptimalBufferedDelay(b, p18)
		return ua > 0 && ba > 0 && ub >= ua && bb >= ba*0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOptimalRepeaterSizeAtLeastOne(t *testing.T) {
	if h := OptimalRepeaterSize(Line{LengthMM: 0.01, LoadC: 0}, p18); h < 1 {
		t.Errorf("repeater size %v < 1", h)
	}
}
