// Package wire implements distributed-RC wire delay and Bakoglu's optimal
// repeater-insertion methodology (Bakoglu & Meindl, IEEE ToC 1985), the wire
// model the CAP paper uses for the global address and data buses of its
// adaptive structures (Section 2).
//
// An unbuffered wire of length L has Elmore delay 0.4*Rw*Cw*L^2 plus the
// driver term; it grows quadratically with length. Splitting the wire into k
// segments separated by repeaters makes each segment's quadratic term small,
// yielding total delay linear in L for the optimal k. The crossover between
// the two regimes, and its movement with feature size, is exactly what
// Figures 1 and 2 of the paper plot.
package wire

import (
	"fmt"
	"math"

	"capsim/internal/memo"
	"capsim/internal/tech"
)

// Line describes a global bus wire to be analyzed.
type Line struct {
	// LengthMM is the total routed length in millimetres.
	LengthMM float64
	// LoadC is the total distributed load capacitance hung on the wire by
	// the elements it feeds (pF), e.g. the gate capacitance of the local
	// decoders of every cache increment on an address bus. It is treated
	// as uniformly distributed along the line.
	LoadC float64
}

// Validate reports whether the line is physically sensible.
func (l Line) Validate() error {
	if l.LengthMM < 0 {
		return fmt.Errorf("wire: negative length %v", l.LengthMM)
	}
	if l.LoadC < 0 {
		return fmt.Errorf("wire: negative load capacitance %v", l.LoadC)
	}
	return nil
}

// totalRC returns the total wire resistance (ohm) and capacitance (pF)
// including the distributed element load.
func (l Line) totalRC(p tech.Params) (r, c float64) {
	r = p.WireRPerMM * l.LengthMM
	c = p.WireCPerMM*l.LengthMM + l.LoadC
	return r, c
}

// UnbufferedDelay returns the wire delay in ns of the line with no
// intermediate buffers:
//
//	t = 0.4*Rw*(Cw+Cl)
//
// the distributed-RC Elmore delay (the driver's own delay is excluded — the
// paper plots the wire delay proper, which is why its figures contain a
// single unbuffered curve: wire RC per mm is constant across generations).
// Because Rw and the capacitance are both proportional to line length, this
// grows quadratically with structure size.
func UnbufferedDelay(l Line, p tech.Params) float64 {
	r, c := l.totalRC(p)
	// ohm*pF = ps; 1e-3 converts to ns.
	return 0.4 * r * c * 1e-3
}

// OptimalRepeaterCount returns the optimal number of repeater stages for
// the line. It starts from Bakoglu's closed form
// k = sqrt(0.4*Rw*Cw / (0.7*R0*C0)) — exact for a pure distributed wire —
// and refines it by direct minimization of BufferedDelay, which matters when
// lumped element loads or the repeater intrinsic delay are significant.
func OptimalRepeaterCount(l Line, p tech.Params) int {
	r, c := l.totalRC(p)
	k0 := int(math.Round(math.Sqrt((0.4 * r * c) / (0.7 * p.BufferR * p.BufferC))))
	if k0 < 1 {
		k0 = 1
	}
	best, bestD := 1, BufferedDelay(l, 1, p)
	for k := 2; k <= 2*k0+4; k++ {
		if d := BufferedDelay(l, k, p); d < bestD {
			best, bestD = k, d
		}
	}
	return best
}

// OptimalRepeaterSize returns Bakoglu's optimal repeater sizing ratio
// h = sqrt(R0*Cw / (Rw*C0)) relative to a minimum repeater.
func OptimalRepeaterSize(l Line, p tech.Params) float64 {
	r, c := l.totalRC(p)
	if r == 0 || p.BufferC == 0 {
		return 1
	}
	h := math.Sqrt((p.BufferR * c) / (r * p.BufferC))
	if h < 1 {
		return 1
	}
	return h
}

// BufferedDelay returns the delay in ns of the line split into k equal
// segments by optimally sized repeaters:
//
//	t = k * [ 0.7*(R0/h)*(Cseg + h*C0) + 0.4*Rseg*Cseg + 0.7*Rseg*h*C0 + t_int ]
//
// Bakoglu's per-stage form: each of the k stages contributes a driver term
// (the upsized repeater charging its wire segment and the next repeater's
// input), a distributed wire term, and the repeater's unloaded intrinsic
// delay t_int. The driver and intrinsic terms scale linearly with feature
// size — the source of the per-generation buffered curves in the paper's
// figures — while the wire term does not.
func BufferedDelay(l Line, k int, p tech.Params) float64 {
	if k < 1 {
		k = 1
	}
	r, c := l.totalRC(p)
	h := OptimalRepeaterSize(l, p)
	rd := p.BufferR / h                                // upsized driver resistance
	cb := p.BufferC * h                                // upsized repeater input capacitance
	rs := r / float64(k)                               // per-segment wire resistance
	cs := c / float64(k)                               // per-segment wire capacitance
	perStage := 0.7*rd*(cs+cb) + 0.4*rs*cs + 0.7*rs*cb // ps
	return float64(k) * (perStage*1e-3 + p.BufferDelay)
}

// lineKey keys the repeater-optimization memo: Line and tech.Params are flat
// scalar structs, so the pair describes the computation completely.
type lineKey struct {
	l Line
	p tech.Params
}

// bufferedResult is a memoized (delay, repeater count) pair.
type bufferedResult struct {
	d float64
	k int
}

// buffered memoizes the repeater-count optimization, the only non-constant-
// time computation in this package. The model is pure, so the memo is sound.
// Every cache.TimingFor and queue timing evaluation lands here, often
// thousands of times per sweep over a handful of distinct lines.
var buffered memo.Memo[lineKey, bufferedResult]

// OptimalBufferedDelay returns the buffered delay using the optimal repeater
// count, together with that count. Results are memoized per (Line, Params).
func OptimalBufferedDelay(l Line, p tech.Params) (delay float64, repeaters int) {
	r := buffered.Get(lineKey{l, p}, func() bufferedResult {
		k := OptimalRepeaterCount(l, p)
		return bufferedResult{BufferedDelay(l, k, p), k}
	})
	return r.d, r.k
}

// BestDelay returns the smaller of the unbuffered and optimally buffered
// delays, and whether buffering won. The paper applies exactly this rule when
// constructing its conventional baselines: "whenever buffered line delays
// were faster than unbuffered delays, we used buffered values for the
// conventional cache hierarchy as well."
func BestDelay(l Line, p tech.Params) (delay float64, buffered bool) {
	u := UnbufferedDelay(l, p)
	b, _ := OptimalBufferedDelay(l, p)
	if b < u {
		return b, true
	}
	return u, false
}

// SegmentDelay returns the delay of traversing the first `span` of `total`
// equal segments of an optimally buffered line. This is the delay hierarchy
// property of Figure 3 in the paper: repeaters electrically isolate segments,
// so reaching element i costs a delay proportional to i and independent of
// how many further elements exist. Adaptive structures exploit it: the clock
// follows the *enabled* span, not the built span.
func SegmentDelay(l Line, span, total int, p tech.Params) float64 {
	if total < 1 {
		total = 1
	}
	if span < 0 {
		span = 0
	}
	if span > total {
		span = total
	}
	full, k := OptimalBufferedDelay(l, p)
	if k == 0 {
		return 0
	}
	return full * float64(span) / float64(total)
}
