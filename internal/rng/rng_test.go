package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 collisions between different seeds", same)
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	s1 := DeriveSeed(7, "alpha")
	s2 := DeriveSeed(7, "beta")
	s3 := DeriveSeed(8, "alpha")
	if s1 == s2 || s1 == s3 || s2 == s3 {
		t.Errorf("derived seeds collide: %x %x %x", s1, s2, s3)
	}
	if DeriveSeed(7, "alpha") != s1 {
		t.Error("DeriveSeed not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of range: %v", x)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v, want ~0.5", mean)
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	r.Intn(0)
}

func TestRange(t *testing.T) {
	r := New(6)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Range(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("Range(3,5) = %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 5; v++ {
		if !seen[v] {
			t.Errorf("value %d never produced", v)
		}
	}
	if got := r.Range(4, 4); got != 4 {
		t.Errorf("Range(4,4) = %d", got)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(7)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate %v", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(8)
	const p = 0.25
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	want := (1 - p) / p // = 3
	if mean := sum / n; math.Abs(mean-want) > 0.1 {
		t.Errorf("Geometric(%v) mean %v, want %v", p, mean, want)
	}
	if r.Geometric(1) != 0 {
		t.Error("Geometric(1) should be 0")
	}
}

func TestWeighted(t *testing.T) {
	r := New(9)
	counts := [3]int{}
	const n = 90000
	for i := 0; i < n; i++ {
		counts[r.Weighted([]float64{1, 2, 0})]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight index selected %d times", counts[2])
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if math.Abs(ratio-2) > 0.1 {
		t.Errorf("weight ratio %v, want 2", ratio)
	}
}

func TestWeightedPanics(t *testing.T) {
	r := New(10)
	for _, ws := range [][]float64{nil, {}, {0, 0}, {-1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Weighted(%v) did not panic", ws)
				}
			}()
			r.Weighted(ws)
		}()
	}
}

func TestPerm(t *testing.T) {
	r := New(11)
	out := make([]int, 20)
	r.Perm(out)
	seen := map[int]bool{}
	for _, v := range out {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", out)
		}
		seen[v] = true
	}
}

func TestSplitMix64KnownSequenceStable(t *testing.T) {
	// Lock the generator's output so workloads stay reproducible across
	// refactors: these values were produced by this implementation and
	// must never change.
	s := uint64(0)
	got := [3]uint64{SplitMix64(&s), SplitMix64(&s), SplitMix64(&s)}
	want := [3]uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	if got != want {
		t.Errorf("SplitMix64 sequence changed: %x", got)
	}
}

func TestUniformityProperty(t *testing.T) {
	// Property: for any seed, Intn(n) over many draws covers all residues.
	f := func(seed uint64) bool {
		r := New(seed)
		seen := map[int]bool{}
		for i := 0; i < 200; i++ {
			seen[r.Intn(8)] = true
		}
		return len(seen) == 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
