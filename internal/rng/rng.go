// Package rng supplies the deterministic pseudo-random number generation
// used by the synthetic workload generators. Everything in the repository
// that is stochastic draws from this package with an explicit seed, so every
// experiment is bit-reproducible across runs and machines.
//
// The core generator is xoshiro256**, seeded via SplitMix64 — small, fast,
// and high-quality; math/rand is avoided so the stream is stable regardless
// of Go version.
package rng

import "fmt"

// SplitMix64 advances the given state and returns the next 64-bit output.
// It is used to expand a single seed into the generator's state vector and
// to derive independent per-purpose seeds.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically combines a base seed with a label, producing
// an independent stream seed for a named purpose (e.g. one per benchmark).
func DeriveSeed(base uint64, label string) uint64 {
	s := base
	x := SplitMix64(&s)
	for _, b := range []byte(label) {
		x ^= uint64(b)
		x *= 0x100000001b3 // FNV prime
		x = SplitMix64(&x)
	}
	return x
}

// Source is a xoshiro256** generator. The zero value is NOT usable; create
// one with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = SplitMix64(&sm)
	}
	// A state of all zeros is invalid for xoshiro; SplitMix64 cannot
	// produce four consecutive zeros from any seed, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn with non-positive n=%d", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform int in [lo, hi]. It panics if hi < lo.
func (r *Source) Range(lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("rng: Range with hi=%d < lo=%d", hi, lo))
	}
	return lo + r.Intn(hi-lo+1)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p: the number of failures before the first success (support
// {0, 1, 2, ...}, mean (1-p)/p). p is clamped to (0, 1].
func (r *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p < 1e-9 {
		p = 1e-9
	}
	n := 0
	for !r.Bool(p) {
		n++
		if n > 1<<20 { // safety against pathological p
			break
		}
	}
	return n
}

// Weighted selects an index in [0, len(weights)) with probability
// proportional to the weights. Non-positive weights are treated as zero. It
// panics if the weights sum to zero or the slice is empty.
func (r *Source) Weighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if len(weights) == 0 || total <= 0 {
		panic("rng: Weighted requires at least one positive weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Perm fills out with a pseudo-random permutation of [0, len(out)).
func (r *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
