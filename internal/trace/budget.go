package trace

import (
	"sync"
	"sync/atomic"

	"capsim/internal/obs"
)

// Store byte budget. The materialized-trace tier trades memory for wall time;
// a long-lived process (the experiment API server, a large -experiment all
// run) may want that trade bounded. SetBudget imposes a soft ceiling on the
// total live bytes across every memoized store: whenever a cursor-facing
// chunk load leaves the tier over budget, the least-recently-used store OTHER
// than the one just touched is evicted — its chunks are dropped and its
// generator rewound — until the tier fits or no other store holds bytes.
//
// Eviction is transparent and deterministic: a store's contents are a pure
// function of its construction key, so an evicted store regenerates
// bit-identical chunks on the next access (TestEvictionRegeneratesIdentical).
// The memo entry survives eviction — callers keep their *RefStore/*OpStore
// pointers and singleflight identity; only the chunk storage resets. Cursors
// mid-replay hold direct pointers to immutable chunks, so an eviction under
// them costs regeneration work on their next chunk load, never correctness.
//
// The budget is enforced only at cursor-facing chunk loads (never while any
// store lock is held), so enforcement can take the registry lock and then a
// victim's lock without lock-order cycles: registry -> victim store, always.
var (
	obsEvicts = obs.NewCounter("trace.evictions") // budget-driven store evictions

	// budgetBytes <= 0 means unbounded (the default).
	budgetBytes atomic.Int64

	// useClock orders store touches for LRU victim selection; bumped on
	// every cursor-facing chunk load.
	useClock atomic.Uint64

	registry struct {
		mu     sync.Mutex
		stores []evictable
	}
)

// evictable is the registry's view of a store: live/nominal byte accounting,
// a recency stamp, and in-place eviction.
type evictable interface {
	liveBytes() int64
	nominalBytes() int64
	lastUse() uint64
	evict()
}

// SetBudget sets the process-wide live-byte ceiling for materialized stores;
// v <= 0 removes the ceiling. cmd/capsim exposes this as -trace-budget.
func SetBudget(v int64) { budgetBytes.Store(v) }

// Budget returns the current ceiling (<= 0 when unbounded).
func Budget() int64 { return budgetBytes.Load() }

// registerStore adds a newly created store to the eviction registry. Called
// from the memo constructors, which hold no store lock.
func registerStore(s evictable) {
	registry.mu.Lock()
	registry.stores = append(registry.stores, s)
	registry.mu.Unlock()
}

// clearRegistry forgets every store; Reset calls it after dropping the memos.
func clearRegistry() {
	registry.mu.Lock()
	registry.stores = nil
	registry.mu.Unlock()
}

// TotalBytes returns the live (compressed) bytes across all current stores.
func TotalBytes() int64 {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	var sum int64
	for _, s := range registry.stores {
		sum += s.liveBytes()
	}
	return sum
}

// TotalRawBytes returns what the same store contents would occupy in the
// pre-compression flat chunk layout; TotalBytes/TotalRawBytes is the tier's
// live compression ratio.
func TotalRawBytes() int64 {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	var sum int64
	for _, s := range registry.stores {
		sum += s.nominalBytes()
	}
	return sum
}

// touchStamp returns a fresh recency stamp for a cursor-facing chunk load.
func touchStamp() uint64 { return useClock.Add(1) }

// enforceBudget evicts cold stores until the tier fits the budget. self is
// the store the caller just touched and is never chosen as the victim (its
// cursor is actively replaying it). Callers must hold no store lock.
func enforceBudget(self evictable) {
	b := budgetBytes.Load()
	if b <= 0 {
		return
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	var total int64
	for _, s := range registry.stores {
		total += s.liveBytes()
	}
	for total > b {
		var victim evictable
		var oldest uint64
		for _, s := range registry.stores {
			if s == self {
				continue
			}
			live := s.liveBytes()
			if live == 0 {
				continue
			}
			if u := s.lastUse(); victim == nil || u < oldest {
				victim, oldest = s, u
			}
		}
		if victim == nil {
			return // nothing evictable but self; stay over budget
		}
		total -= victim.liveBytes()
		victim.evict()
		obsEvicts.Inc1()
	}
}
