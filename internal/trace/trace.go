// Package trace is the shared materialized-trace infrastructure behind the
// one-pass multi-configuration profiling path.
//
// The paper's configuration manager needs per-application profiles of every
// boundary/queue configuration, and every profile cell replays the *same*
// deterministic reference stream: all cells for one (benchmark, seed) derive
// their randomness from rng.DeriveSeed(seed, name+"/purpose") regardless of
// the configuration under test. Re-generating that stream per cell — eight
// times per application for the cache study, eight more for the queue study —
// is pure waste. This package materializes each stream once, behind
// internal/memo singleflight, into an append-only chunked store that every
// sweep worker shares read-only through cheap replay cursors:
//
//   - RefStore: the data-reference stream as structure-of-arrays chunks
//     (packed Addrs []uint64 plus a write bitset, ~8.125 MB per 1M refs);
//   - OpStore: the dynamic instruction stream as packed workload.Instr
//     chunks (12 B per instruction);
//   - DecodedStore: the (set, tag) decomposition of a RefStore for one cache
//     geometry, memoized per (store, geometry) so every boundary position —
//     which shares the set mapping by the paper's constant-index rule —
//     decodes each reference exactly once (12 B per ref per geometry).
//
// Stores grow lazily: a cursor that runs past the materialized prefix
// extends the store by whole chunks under the store's lock, then publishes
// the new chunk list atomically. Published chunks are immutable, so readers
// never synchronize with each other; replay is bit-identical to running the
// generator directly, at any worker count.
//
// The Enabled switch (cmd/capsim -onepass) selects between shared replay
// cursors and private per-machine generators, giving an A/B escape hatch:
// both paths produce byte-identical simulation results, differing only in
// wall time and memory.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"capsim/internal/memo"
	"capsim/internal/obs"
	"capsim/internal/workload"
)

// Telemetry (internal/obs). Materialization happens under each store's lock
// at chunk granularity, so one counter add per ChunkLen (32768) references is
// far off the replay hot path; cursors themselves are untouched.
var (
	obsRefChunks = obs.NewCounter("trace.ref_chunks")    // reference chunks materialized
	obsOpChunks  = obs.NewCounter("trace.op_chunks")     // instruction chunks materialized
	obsDecChunks = obs.NewCounter("trace.dec_chunks")    // decoded chunks materialized
	obsBytes     = obs.NewCounter("trace.bytes")         // bytes of materialized store data
	obsGenNS     = obs.NewHistogram("trace.gen_ns")      // per-chunk generation wall time
	obsStores    = obs.NewGauge("trace.stores_current")  // live stores after the last ensure
	obsResets    = obs.NewCounter("trace.stores_resets") // Reset invocations
)

// publishStoreGauge refreshes the live-store gauge; called after any store
// creation or Reset, both of which are rare and off the hot path.
func publishStoreGauge() {
	if !obs.Enabled() {
		return
	}
	r, o, d := StoreCounts()
	obsStores.Set(int64(r + o + d))
}

// ChunkLen is the number of references (or instructions) per store chunk.
// Chunks are generated whole before being published, so ChunkLen bounds both
// the generation batch and the over-materialization past the furthest cursor.
const ChunkLen = 1 << 15

// enabled gates the shared-store path; see SetEnabled. Stored inverted so
// the zero value means "enabled" (the default).
var disabled atomic.Bool

// SetEnabled turns the shared materialized-trace path on or off
// process-wide. Disabled, RefSourceFor/InstrSourceFor hand out private
// generators exactly as the pre-one-pass code did; results are byte-identical
// either way (cmd/capsim exposes this as -onepass for A/B runs).
func SetEnabled(v bool) { disabled.Store(!v) }

// Enabled reports whether the shared materialized-trace path is active.
func Enabled() bool { return !disabled.Load() }

// --- store keys -----------------------------------------------------------

// refKey identifies one materialized reference stream. The memory profile's
// pointer identity plus the name (which seeds the rng stream) and seed
// describe the generated stream completely: workload's registry hands out
// benchmark values sharing one canonical *MemProfile per application, and a
// test-constructed profile has its own pointer.
type refKey struct {
	mem  *workload.MemProfile
	name string
	seed uint64
}

// opKey identifies one materialized instruction stream. ILPProfile contains
// slices and so cannot key a map directly; fingerprint renders it to a
// deterministic value string.
type opKey struct {
	name        string
	seed        uint64
	fingerprint string
}

// ilpFingerprint renders an ILP profile as a value string (dereferencing Alt
// so the key never depends on pointer identity).
func ilpFingerprint(p workload.ILPProfile) string {
	alt := "-"
	if p.Alt != nil {
		alt = fmt.Sprintf("%+v", *p.Alt)
	}
	return fmt.Sprintf("%+v|%s|%d|%d|%d", p.Base, alt, p.Kind, p.PeriodInstrs, p.SuperPeriodInstrs)
}

var (
	refStores memo.Memo[refKey, *RefStore]
	opStores  memo.Memo[opKey, *OpStore]
	decStores memo.Memo[decKey, *DecodedStore]
)

// Reset discards every memoized store (reference, instruction and decoded).
// Long-lived processes can call it to bound memory; the determinism tests
// call it between passes so each pass re-materializes from scratch.
func Reset() {
	refStores.Reset()
	opStores.Reset()
	decStores.Reset()
	obsResets.Inc1()
	publishStoreGauge()
}

// StoreCounts reports how many reference, instruction and decoded stores are
// currently memoized (diagnostics and tests).
func StoreCounts() (refs, ops, decoded int) {
	return refStores.Len(), opStores.Len(), decStores.Len()
}

// --- reference store ------------------------------------------------------

// refChunk is one immutable span of ChunkLen references in
// structure-of-arrays form: packed addresses plus a write bitset.
type refChunk struct {
	addrs  [ChunkLen]uint64
	writes [ChunkLen / 64]uint64
}

// RefStore is an append-only materialized data-reference stream. One exists
// per (benchmark, seed); every sweep worker replays it through private
// cursors. Chunks are generated whole under mu, published by swapping the
// chunk-list pointer, and never mutated afterwards.
type RefStore struct {
	mu     sync.Mutex
	gen    *workload.AddressTrace // guarded by mu
	chunks atomic.Pointer[[]*refChunk]
}

// RefsFor returns the shared reference store for (b, seed), creating it
// (empty) on first use with singleflight semantics.
func RefsFor(b workload.Benchmark, seed uint64) *RefStore {
	if b.Mem == nil {
		panic("trace: " + b.Name + " has no memory profile")
	}
	return refStores.Get(refKey{b.Mem, b.Name, seed}, func() *RefStore {
		defer publishStoreGauge()
		return &RefStore{gen: workload.NewAddressTrace(b, seed)}
	})
}

// Len returns the number of materialized references.
func (s *RefStore) Len() int64 {
	if cs := s.chunks.Load(); cs != nil {
		return int64(len(*cs)) * ChunkLen
	}
	return 0
}

// ensure materializes chunks until at least n references exist.
func (s *RefStore) ensure(n int64) {
	if s.Len() >= n {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var cur []*refChunk
	if cs := s.chunks.Load(); cs != nil {
		cur = *cs
	}
	for int64(len(cur))*ChunkLen < n {
		t0 := time.Now()
		c := new(refChunk)
		for i := 0; i < ChunkLen; i++ {
			r := s.gen.Next()
			c.addrs[i] = r.Addr
			if r.Write {
				c.writes[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		next := make([]*refChunk, len(cur)+1)
		copy(next, cur)
		next[len(cur)] = c
		cur = next
		s.chunks.Store(&next)
		obsRefChunks.Inc1()
		obsBytes.Add1(int64(unsafe.Sizeof(refChunk{})))
		obsGenNS.Observe(time.Since(t0).Nanoseconds())
	}
}

// chunk returns the ci-th chunk, materializing it (and its predecessors) if
// necessary.
func (s *RefStore) chunk(ci int64) *refChunk {
	cs := s.chunks.Load()
	if cs == nil || ci >= int64(len(*cs)) {
		s.ensure((ci + 1) * ChunkLen)
		cs = s.chunks.Load()
	}
	return (*cs)[ci]
}

// Cursor returns a replay cursor positioned at the start of the stream. The
// cursor is not safe for concurrent use; each goroutine takes its own.
func (s *RefStore) Cursor() *RefCursor { return &RefCursor{s: s, idx: ChunkLen} }

// RefCursor replays a RefStore from the beginning, extending the store on
// demand. It implements workload.RefSource, so a simulator cannot tell it
// from the live generator.
type RefCursor struct {
	s   *RefStore
	ci  int64 // index of the NEXT chunk to load
	idx int   // position within the current chunk; ChunkLen forces a load
	c   *refChunk
}

// Next returns the next reference in the stream.
func (c *RefCursor) Next() workload.Ref {
	if c.idx == ChunkLen {
		c.c = c.s.chunk(c.ci)
		c.ci++
		c.idx = 0
	}
	i := c.idx
	c.idx++
	return workload.Ref{
		Addr:  c.c.addrs[i],
		Write: c.c.writes[i>>6]>>(uint(i)&63)&1 == 1,
	}
}

// --- instruction store ----------------------------------------------------

// opChunk is one immutable span of ChunkLen instructions.
type opChunk struct {
	ops [ChunkLen]workload.Instr
}

// OpStore is an append-only materialized instruction stream, the queue-side
// counterpart of RefStore.
type OpStore struct {
	mu     sync.Mutex
	gen    *workload.InstrStream // guarded by mu
	chunks atomic.Pointer[[]*opChunk]
}

// OpsFor returns the shared instruction store for (b, seed), creating it on
// first use with singleflight semantics.
func OpsFor(b workload.Benchmark, seed uint64) *OpStore {
	return opStores.Get(opKey{b.Name, seed, ilpFingerprint(b.ILP)}, func() *OpStore {
		defer publishStoreGauge()
		return &OpStore{gen: workload.NewInstrStream(b, seed)}
	})
}

// Len returns the number of materialized instructions.
func (s *OpStore) Len() int64 {
	if cs := s.chunks.Load(); cs != nil {
		return int64(len(*cs)) * ChunkLen
	}
	return 0
}

// ensure materializes chunks until at least n instructions exist.
func (s *OpStore) ensure(n int64) {
	if s.Len() >= n {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var cur []*opChunk
	if cs := s.chunks.Load(); cs != nil {
		cur = *cs
	}
	for int64(len(cur))*ChunkLen < n {
		t0 := time.Now()
		c := new(opChunk)
		for i := 0; i < ChunkLen; i++ {
			c.ops[i] = s.gen.Next()
		}
		next := make([]*opChunk, len(cur)+1)
		copy(next, cur)
		next[len(cur)] = c
		cur = next
		s.chunks.Store(&next)
		obsOpChunks.Inc1()
		obsBytes.Add1(int64(unsafe.Sizeof(opChunk{})))
		obsGenNS.Observe(time.Since(t0).Nanoseconds())
	}
}

// chunk returns the ci-th chunk, materializing as needed.
func (s *OpStore) chunk(ci int64) *opChunk {
	cs := s.chunks.Load()
	if cs == nil || ci >= int64(len(*cs)) {
		s.ensure((ci + 1) * ChunkLen)
		cs = s.chunks.Load()
	}
	return (*cs)[ci]
}

// Cursor returns a replay cursor positioned at the start of the stream.
func (s *OpStore) Cursor() *OpCursor { return &OpCursor{s: s, idx: ChunkLen} }

// OpCursor replays an OpStore from the beginning. It implements
// workload.InstrSource.
type OpCursor struct {
	s   *OpStore
	ci  int64
	idx int
	c   *opChunk
}

// Next returns the next instruction in the stream.
func (c *OpCursor) Next() workload.Instr {
	if c.idx == ChunkLen {
		c.c = c.s.chunk(c.ci)
		c.ci++
		c.idx = 0
	}
	i := c.idx
	c.idx++
	return c.c.ops[i]
}

// --- source selection -----------------------------------------------------

// RefSourceFor returns the reference stream for (b, seed): a shared-store
// replay cursor when the one-pass path is enabled, or a private generator
// when it is not. Both yield the identical sequence.
func RefSourceFor(b workload.Benchmark, seed uint64) workload.RefSource {
	if Enabled() {
		return RefsFor(b, seed).Cursor()
	}
	return workload.NewAddressTrace(b, seed)
}

// InstrSourceFor is RefSourceFor for the instruction stream.
func InstrSourceFor(b workload.Benchmark, seed uint64) workload.InstrSource {
	if Enabled() {
		return OpsFor(b, seed).Cursor()
	}
	return workload.NewInstrStream(b, seed)
}
