// Package trace is the shared materialized-trace infrastructure behind the
// one-pass multi-configuration profiling path.
//
// The paper's configuration manager needs per-application profiles of every
// boundary/queue configuration, and every profile cell replays the *same*
// deterministic reference stream: all cells for one (benchmark, seed) derive
// their randomness from rng.DeriveSeed(seed, name+"/purpose") regardless of
// the configuration under test. Re-generating that stream per cell — eight
// times per application for the cache study, eight more for the queue study —
// is pure waste. This package materializes each stream once, behind
// internal/memo singleflight, into an append-only chunked store that every
// sweep worker shares read-only through cheap replay cursors:
//
//   - RefStore: the data-reference stream as compressed chunks (a raw write
//     bitset plus zigzag-delta varint addresses; see codec.go);
//   - OpStore: the dynamic instruction stream as zigzag-varint packed
//     workload.Instr chunks;
//   - DecodedStore: the (set, tag) decomposition of a RefStore for one cache
//     geometry, memoized per (store, geometry) so every boundary position —
//     which shares the set mapping by the paper's constant-index rule —
//     decodes each reference exactly once, stored as zigzag-delta varints.
//
// Stores grow lazily: a cursor that runs past the materialized prefix
// extends the store by whole chunks under the store's lock, then publishes
// the new chunk list atomically. Published chunks are immutable, so readers
// never synchronize with each other; replay is bit-identical to running the
// generator directly, at any worker count. Total live bytes are tracked per
// store and can be capped with SetBudget (see budget.go): over budget, cold
// stores are evicted and transparently regenerate on their next touch.
//
// The Enabled switch (cmd/capsim -onepass) selects between shared replay
// cursors and private per-machine generators, giving an A/B escape hatch:
// both paths produce byte-identical simulation results, differing only in
// wall time and memory.
//
// # Lifecycle contract
//
// SetEnabled and Reset are coarse process-wide switches and are safe at any
// time, including while cursors are mid-replay on other goroutines:
//
//   - SetEnabled(v) only affects FUTURE RefSourceFor/InstrSourceFor calls
//     (which source flavor they hand out). Cursors already handed out keep
//     replaying their stores and remain bit-identical; they never consult
//     the switch again.
//   - Reset discards the memo tables and the eviction registry, so future
//     *For calls build fresh stores. Cursors mid-replay keep direct store
//     pointers and are unaffected: the orphaned store still extends itself
//     under its own lock and its published chunks are immutable, so the
//     replayed sequence is unchanged. The orphan is garbage once the last
//     cursor drops it.
//   - Budget eviction (budget.go) resets a store's chunk storage in place;
//     cursors mid-replay regenerate the identical chunks on their next
//     chunk-boundary load.
//
// TestEnabledResetRace exercises all three against concurrent replay under
// the race detector.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"capsim/internal/memo"
	"capsim/internal/obs"
	"capsim/internal/workload"
)

// Telemetry (internal/obs). Materialization happens under each store's lock
// at chunk granularity, so one counter add per ChunkLen (32768) references is
// far off the replay hot path; cursors themselves are untouched. The byte
// counters track LIVE bytes: evictions and Reset subtract what they free.
var (
	obsRefChunks = obs.NewCounter("trace.ref_chunks")    // reference chunks materialized
	obsOpChunks  = obs.NewCounter("trace.op_chunks")     // instruction chunks materialized
	obsDecChunks = obs.NewCounter("trace.dec_chunks")    // decoded chunks materialized
	obsBytes     = obs.NewCounter("trace.bytes")         // live bytes of store data (compressed)
	obsBytesRaw  = obs.NewCounter("trace.bytes_raw")     // same data in the flat pre-compression layout
	obsGenNS     = obs.NewHistogram("trace.gen_ns")      // per-chunk generation wall time
	obsStores    = obs.NewGauge("trace.stores_current")  // live stores after the last ensure
	obsResets    = obs.NewCounter("trace.stores_resets") // Reset invocations
)

// publishStoreGauge refreshes the live-store gauge; called after any store
// creation or Reset, both of which are rare and off the hot path.
func publishStoreGauge() {
	if !obs.Enabled() {
		return
	}
	r, o, d := StoreCounts()
	obsStores.Set(int64(r + o + d))
}

// ChunkLen is the number of references (or instructions) per store chunk.
// Chunks are generated whole before being published, so ChunkLen bounds both
// the generation batch and the over-materialization past the furthest cursor.
const ChunkLen = 1 << 15

// Nominal per-chunk sizes of the flat structure-of-arrays layout this
// package's compressed chunks replace: the denominator of the compression
// ratio and the basis of trace.bytes_raw.
const (
	rawRefChunkBytes = ChunkLen*8 + ChunkLen/8                           // addrs + write bitset
	rawOpChunkBytes  = ChunkLen * int64(unsafe.Sizeof(workload.Instr{})) // packed Instr array
	rawDecChunkBytes = ChunkLen*4 + ChunkLen*8                           // sets + tags
)

// enabled gates the shared-store path; see SetEnabled. Stored inverted so
// the zero value means "enabled" (the default).
var disabled atomic.Bool

// SetEnabled turns the shared materialized-trace path on or off
// process-wide. Disabled, RefSourceFor/InstrSourceFor hand out private
// generators exactly as the pre-one-pass code did; results are byte-identical
// either way (cmd/capsim exposes this as -onepass for A/B runs). The switch
// affects only future *For calls; see the lifecycle contract above.
func SetEnabled(v bool) { disabled.Store(!v) }

// Enabled reports whether the shared materialized-trace path is active.
func Enabled() bool { return !disabled.Load() }

// --- store keys -----------------------------------------------------------

// refKey identifies one materialized reference stream. The memory profile's
// pointer identity plus the name (which seeds the rng stream) and seed
// describe the generated stream completely: workload's registry hands out
// benchmark values sharing one canonical *MemProfile per application, and a
// test-constructed profile has its own pointer.
type refKey struct {
	mem  *workload.MemProfile
	name string
	seed uint64
}

// opKey identifies one materialized instruction stream. ILPProfile contains
// slices and so cannot key a map directly; fingerprint renders it to a
// deterministic value string.
type opKey struct {
	name        string
	seed        uint64
	fingerprint string
}

// ilpFingerprint renders an ILP profile as a value string (dereferencing Alt
// so the key never depends on pointer identity).
func ilpFingerprint(p workload.ILPProfile) string {
	alt := "-"
	if p.Alt != nil {
		alt = fmt.Sprintf("%+v", *p.Alt)
	}
	return fmt.Sprintf("%+v|%s|%d|%d|%d", p.Base, alt, p.Kind, p.PeriodInstrs, p.SuperPeriodInstrs)
}

var (
	refStores memo.Memo[refKey, *RefStore]
	opStores  memo.Memo[opKey, *OpStore]
	decStores memo.Memo[decKey, *DecodedStore]
)

// Reset discards every memoized store (reference, instruction and decoded)
// and the eviction registry. Long-lived processes can call it to bound
// memory; the determinism tests call it between passes so each pass
// re-materializes from scratch. Safe while cursors are mid-replay (see the
// lifecycle contract in the package comment).
func Reset() {
	obsBytes.Add1(-TotalBytes())
	obsBytesRaw.Add1(-TotalRawBytes())
	refStores.Reset()
	opStores.Reset()
	decStores.Reset()
	clearRegistry()
	obsResets.Inc1()
	publishStoreGauge()
}

// StoreCounts reports how many reference, instruction and decoded stores are
// currently memoized (diagnostics and tests).
func StoreCounts() (refs, ops, decoded int) {
	return refStores.Len(), opStores.Len(), decStores.Len()
}

// --- reference store ------------------------------------------------------

// refChunk is one immutable span of ChunkLen references: a raw write bitset
// (read directly by DecodedCursor too) plus zigzag-delta varint addresses.
// The delta chain restarts at zero per chunk, so chunks decode independently.
type refChunk struct {
	writes [ChunkLen / 64]uint64
	enc    []byte
}

// refChunkBytes is the chunk's live footprint.
func refChunkBytes(c *refChunk) int64 {
	return int64(unsafe.Sizeof(*c)) + int64(len(c.enc))
}

// RefStore is an append-only materialized data-reference stream. One exists
// per (benchmark, seed); every sweep worker replays it through private
// cursors. Chunks are generated whole under mu, published by swapping the
// chunk-list pointer, and never mutated afterwards.
type RefStore struct {
	mu      sync.Mutex
	gen     *workload.AddressTrace        // guarded by mu
	newGen  func() *workload.AddressTrace // rebuilds gen after eviction
	scratch []byte                        // encode buffer, guarded by mu
	chunks  atomic.Pointer[[]*refChunk]

	bytes atomic.Int64  // live compressed bytes
	use   atomic.Uint64 // LRU recency stamp (cursor-facing loads)
}

// RefsFor returns the shared reference store for (b, seed), creating it
// (empty) on first use with singleflight semantics.
func RefsFor(b workload.Benchmark, seed uint64) *RefStore {
	if b.Mem == nil {
		panic("trace: " + b.Name + " has no memory profile")
	}
	return refStores.Get(refKey{b.Mem, b.Name, seed}, func() *RefStore {
		defer publishStoreGauge()
		newGen := func() *workload.AddressTrace { return workload.NewAddressTrace(b, seed) }
		s := &RefStore{gen: newGen(), newGen: newGen}
		registerStore(s)
		return s
	})
}

// Len returns the number of materialized references.
func (s *RefStore) Len() int64 {
	if cs := s.chunks.Load(); cs != nil {
		return int64(len(*cs)) * ChunkLen
	}
	return 0
}

// ensure materializes chunks until at least n references exist.
func (s *RefStore) ensure(n int64) {
	if s.Len() >= n {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var cur []*refChunk
	if cs := s.chunks.Load(); cs != nil {
		cur = *cs
	}
	for int64(len(cur))*ChunkLen < n {
		t0 := time.Now()
		c := new(refChunk)
		enc := s.scratch[:0]
		var prev uint64
		for i := 0; i < ChunkLen; i++ {
			r := s.gen.Next()
			enc = appendUvarint(enc, zigzag(int64(r.Addr-prev)))
			prev = r.Addr
			if r.Write {
				c.writes[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		s.scratch = enc // keep the grown capacity for the next chunk
		c.enc = append(make([]byte, 0, len(enc)), enc...)
		next := make([]*refChunk, len(cur)+1)
		copy(next, cur)
		next[len(cur)] = c
		cur = next
		s.chunks.Store(&next)
		s.bytes.Add(refChunkBytes(c))
		obsRefChunks.Inc1()
		obsBytes.Add1(refChunkBytes(c))
		obsBytesRaw.Add1(rawRefChunkBytes)
		obsGenNS.Observe(time.Since(t0).Nanoseconds())
	}
}

// chunk returns the ci-th chunk, materializing it (and its predecessors) if
// necessary. Internal accessor: no budget bookkeeping (DecodedStore.ensure
// calls it while holding its own lock).
func (s *RefStore) chunk(ci int64) *refChunk {
	cs := s.chunks.Load()
	if cs == nil || ci >= int64(len(*cs)) {
		s.ensure((ci + 1) * ChunkLen)
		cs = s.chunks.Load()
	}
	return (*cs)[ci]
}

// cursorChunk is the cursor-facing chunk load: it stamps the store's recency
// and enforces the byte budget. Callers hold no store lock here.
func (s *RefStore) cursorChunk(ci int64) *refChunk {
	c := s.chunk(ci)
	s.use.Store(touchStamp())
	enforceBudget(s)
	return c
}

// evictable implementation (budget.go). evict drops the chunk storage and
// rewinds the generator; the store regenerates identically on next use.
func (s *RefStore) liveBytes() int64    { return s.bytes.Load() }
func (s *RefStore) nominalBytes() int64 { return s.Len() / ChunkLen * rawRefChunkBytes }
func (s *RefStore) lastUse() uint64     { return s.use.Load() }
func (s *RefStore) evict() {
	s.mu.Lock()
	defer s.mu.Unlock()
	obsBytes.Add1(-s.bytes.Load())
	obsBytesRaw.Add1(-s.nominalBytes())
	s.chunks.Store(nil)
	s.gen = s.newGen()
	s.bytes.Store(0)
}

// Cursor returns a replay cursor positioned at the start of the stream. The
// cursor is not safe for concurrent use; each goroutine takes its own.
func (s *RefStore) Cursor() *RefCursor { return &RefCursor{s: s, idx: ChunkLen} }

// RefCursor replays a RefStore from the beginning, extending the store on
// demand. It implements workload.RefSource, so a simulator cannot tell it
// from the live generator.
type RefCursor struct {
	s    *RefStore
	ci   int64 // index of the NEXT chunk to load
	idx  int   // position within the current chunk; ChunkLen forces a load
	off  int   // byte offset into c.enc of the next address
	prev uint64
	c    *refChunk
}

// Next returns the next reference in the stream.
func (c *RefCursor) Next() workload.Ref {
	if c.idx == ChunkLen {
		c.c = c.s.cursorChunk(c.ci)
		c.ci++
		c.idx = 0
		c.off = 0
		c.prev = 0
	}
	i := c.idx
	c.idx++
	u, off := uvarintAt(c.c.enc, c.off)
	c.off = off
	c.prev += uint64(unzigzag(u))
	return workload.Ref{
		Addr:  c.prev,
		Write: c.c.writes[i>>6]>>(uint(i)&63)&1 == 1,
	}
}

// --- instruction store ----------------------------------------------------

// opChunk is one immutable span of ChunkLen instructions, each encoded as
// three zigzag varints (src0, src1, latency).
type opChunk struct {
	enc []byte
}

// opChunkBytes is the chunk's live footprint.
func opChunkBytes(c *opChunk) int64 {
	return int64(unsafe.Sizeof(*c)) + int64(len(c.enc))
}

// OpStore is an append-only materialized instruction stream, the queue-side
// counterpart of RefStore.
type OpStore struct {
	mu      sync.Mutex
	gen     *workload.InstrStream        // guarded by mu
	newGen  func() *workload.InstrStream // rebuilds gen after eviction
	scratch []byte                       // encode buffer, guarded by mu
	chunks  atomic.Pointer[[]*opChunk]

	bytes atomic.Int64
	use   atomic.Uint64
}

// OpsFor returns the shared instruction store for (b, seed), creating it on
// first use with singleflight semantics.
func OpsFor(b workload.Benchmark, seed uint64) *OpStore {
	return opStores.Get(opKey{b.Name, seed, ilpFingerprint(b.ILP)}, func() *OpStore {
		defer publishStoreGauge()
		newGen := func() *workload.InstrStream { return workload.NewInstrStream(b, seed) }
		s := &OpStore{gen: newGen(), newGen: newGen}
		registerStore(s)
		return s
	})
}

// Len returns the number of materialized instructions.
func (s *OpStore) Len() int64 {
	if cs := s.chunks.Load(); cs != nil {
		return int64(len(*cs)) * ChunkLen
	}
	return 0
}

// ensure materializes chunks until at least n instructions exist.
func (s *OpStore) ensure(n int64) {
	if s.Len() >= n {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var cur []*opChunk
	if cs := s.chunks.Load(); cs != nil {
		cur = *cs
	}
	for int64(len(cur))*ChunkLen < n {
		t0 := time.Now()
		c := new(opChunk)
		enc := s.scratch[:0]
		for i := 0; i < ChunkLen; i++ {
			in := s.gen.Next()
			enc = appendUvarint(enc, zigzag(int64(in.Src[0])))
			enc = appendUvarint(enc, zigzag(int64(in.Src[1])))
			enc = appendUvarint(enc, zigzag(int64(in.Latency)))
		}
		s.scratch = enc
		c.enc = append(make([]byte, 0, len(enc)), enc...)
		next := make([]*opChunk, len(cur)+1)
		copy(next, cur)
		next[len(cur)] = c
		cur = next
		s.chunks.Store(&next)
		s.bytes.Add(opChunkBytes(c))
		obsOpChunks.Inc1()
		obsBytes.Add1(opChunkBytes(c))
		obsBytesRaw.Add1(rawOpChunkBytes)
		obsGenNS.Observe(time.Since(t0).Nanoseconds())
	}
}

// chunk returns the ci-th chunk, materializing as needed (internal, no
// budget bookkeeping).
func (s *OpStore) chunk(ci int64) *opChunk {
	cs := s.chunks.Load()
	if cs == nil || ci >= int64(len(*cs)) {
		s.ensure((ci + 1) * ChunkLen)
		cs = s.chunks.Load()
	}
	return (*cs)[ci]
}

// cursorChunk is the cursor-facing chunk load (recency stamp + budget).
func (s *OpStore) cursorChunk(ci int64) *opChunk {
	c := s.chunk(ci)
	s.use.Store(touchStamp())
	enforceBudget(s)
	return c
}

// evictable implementation (budget.go).
func (s *OpStore) liveBytes() int64    { return s.bytes.Load() }
func (s *OpStore) nominalBytes() int64 { return s.Len() / ChunkLen * rawOpChunkBytes }
func (s *OpStore) lastUse() uint64     { return s.use.Load() }
func (s *OpStore) evict() {
	s.mu.Lock()
	defer s.mu.Unlock()
	obsBytes.Add1(-s.bytes.Load())
	obsBytesRaw.Add1(-s.nominalBytes())
	s.chunks.Store(nil)
	s.gen = s.newGen()
	s.bytes.Store(0)
}

// Cursor returns a replay cursor positioned at the start of the stream.
func (s *OpStore) Cursor() *OpCursor { return &OpCursor{s: s, idx: ChunkLen} }

// OpCursor replays an OpStore from the beginning. It implements
// workload.InstrSource.
type OpCursor struct {
	s   *OpStore
	ci  int64
	idx int
	off int
	c   *opChunk
}

// Next returns the next instruction in the stream.
func (c *OpCursor) Next() workload.Instr {
	if c.idx == ChunkLen {
		c.c = c.s.cursorChunk(c.ci)
		c.ci++
		c.idx = 0
		c.off = 0
	}
	c.idx++
	enc := c.c.enc
	u0, off := uvarintAt(enc, c.off)
	u1, off := uvarintAt(enc, off)
	u2, off := uvarintAt(enc, off)
	c.off = off
	return workload.Instr{
		Src:     [2]int32{int32(unzigzag(u0)), int32(unzigzag(u1))},
		Latency: int8(unzigzag(u2)),
	}
}

// CopyNext decodes the next min(len(dst), remaining-in-chunk) instructions
// into dst and returns how many it wrote (always ≥ 1 for non-empty dst). It
// is Next batched: identical sequence, but the per-instruction loop stays
// inside one chunk with the encode buffer held in locals, which is what the
// shared-buffer refill in ooo.MultiCore wants (it discovers this method by
// type assertion).
func (c *OpCursor) CopyNext(dst []workload.Instr) int {
	if len(dst) == 0 {
		return 0
	}
	if c.idx == ChunkLen {
		c.c = c.s.cursorChunk(c.ci)
		c.ci++
		c.idx = 0
		c.off = 0
	}
	n := ChunkLen - c.idx
	if n > len(dst) {
		n = len(dst)
	}
	enc, off := c.c.enc, c.off
	for i := 0; i < n; i++ {
		u0, o := uvarintAt(enc, off)
		u1, o := uvarintAt(enc, o)
		u2, o := uvarintAt(enc, o)
		off = o
		dst[i] = workload.Instr{
			Src:     [2]int32{int32(unzigzag(u0)), int32(unzigzag(u1))},
			Latency: int8(unzigzag(u2)),
		}
	}
	c.off = off
	c.idx += n
	return n
}

// --- source selection -----------------------------------------------------

// RefSourceFor returns the reference stream for (b, seed): a shared-store
// replay cursor when the one-pass path is enabled, or a private generator
// when it is not. Both yield the identical sequence.
func RefSourceFor(b workload.Benchmark, seed uint64) workload.RefSource {
	if Enabled() {
		return RefsFor(b, seed).Cursor()
	}
	return workload.NewAddressTrace(b, seed)
}

// InstrSourceFor is RefSourceFor for the instruction stream.
func InstrSourceFor(b workload.Benchmark, seed uint64) workload.InstrSource {
	if Enabled() {
		return OpsFor(b, seed).Cursor()
	}
	return workload.NewInstrStream(b, seed)
}
