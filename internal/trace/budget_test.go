package trace

import (
	"testing"

	"capsim/internal/workload"
)

// TestEvictionRegeneratesIdentical locks the budget contract: a store evicted
// out from under a mid-replay cursor regenerates bit-identical chunks, so the
// replayed sequence is unchanged — only wall time is spent.
func TestEvictionRegeneratesIdentical(t *testing.T) {
	defer func() { SetBudget(0); Reset() }()
	Reset()
	b := bench(t, "gcc")

	// Materialize the reference stream once and snapshot it from the live
	// generator, which is the ground truth both generations must match.
	const n = ChunkLen*2 + 77
	want := make([]workload.Ref, n)
	gen := workload.NewAddressTrace(b, 4)
	for i := range want {
		want[i] = gen.Next()
	}

	s := RefsFor(b, 4)
	cur := s.Cursor()
	for i := 0; i < ChunkLen+10; i++ { // leave the cursor mid-replay in chunk 1
		if got := cur.Next(); got != want[i] {
			t.Fatalf("pre-eviction ref %d diverged", i)
		}
	}
	if s.liveBytes() == 0 {
		t.Fatal("no live bytes after materialization")
	}

	// Evict directly (the budget path routes here; TestBudgetEvictsColdStore
	// covers the selection) and confirm the cursor's continued replay and a
	// fresh cursor both see the identical stream.
	s.evict()
	if s.Len() != 0 || s.liveBytes() != 0 {
		t.Fatalf("eviction left Len=%d bytes=%d", s.Len(), s.liveBytes())
	}
	for i := ChunkLen + 10; i < n; i++ {
		if got := cur.Next(); got != want[i] {
			t.Fatalf("post-eviction ref %d diverged", i)
		}
	}
	fresh := s.Cursor()
	for i := 0; i < n; i++ {
		if got := fresh.Next(); got != want[i] {
			t.Fatalf("regenerated ref %d diverged", i)
		}
	}
}

// TestBudgetEvictsColdStore checks the enforcement policy: with a budget
// below two stores' footprint, touching the second store evicts the first
// (the cold one), never the store being replayed.
func TestBudgetEvictsColdStore(t *testing.T) {
	defer func() { SetBudget(0); Reset() }()
	Reset()
	cold := RefsFor(bench(t, "gcc"), 11)
	cold.Cursor().Next() // materialize one chunk
	coldBytes := cold.liveBytes()
	if coldBytes == 0 {
		t.Fatal("cold store empty")
	}

	SetBudget(coldBytes + 1) // room for one store only
	hot := RefsFor(bench(t, "swim"), 11)
	hot.Cursor().Next()
	if cold.liveBytes() != 0 {
		t.Errorf("cold store kept %d bytes under budget", cold.liveBytes())
	}
	if hot.liveBytes() == 0 {
		t.Error("hot store was evicted instead of the cold one")
	}

	// The evicted store remains usable and re-registers nothing: a fresh
	// touch regenerates it (and may evict the other, now-cold store).
	cold.Cursor().Next()
	if cold.liveBytes() == 0 {
		t.Error("evicted store did not regenerate on touch")
	}
}

// TestBudgetUnboundedByDefault: with no budget set, nothing is ever evicted.
func TestBudgetUnboundedByDefault(t *testing.T) {
	defer Reset()
	Reset()
	if Budget() != 0 {
		t.Fatalf("default budget %d, want 0 (unbounded)", Budget())
	}
	a := RefsFor(bench(t, "gcc"), 21)
	b := RefsFor(bench(t, "swim"), 21)
	a.Cursor().Next()
	b.Cursor().Next()
	if a.liveBytes() == 0 || b.liveBytes() == 0 {
		t.Error("store evicted with no budget configured")
	}
	if TotalBytes() != a.liveBytes()+b.liveBytes() {
		t.Errorf("TotalBytes %d != %d + %d", TotalBytes(), a.liveBytes(), b.liveBytes())
	}
}

// TestDecodedSurvivesSourceEviction: evicting the source RefStore under a
// DecodedStore leaves both consistent — the decoded cursor keeps yielding the
// exact decode of the regenerated source.
func TestDecodedSurvivesSourceEviction(t *testing.T) {
	defer func() { SetBudget(0); Reset() }()
	Reset()
	b := bench(t, "compress")
	s := RefsFor(b, 31)
	d := DecodedFor(s, Geometry{BlockBytes: 32, Sets: 128})
	ref := s.Cursor()
	dec := d.Cursor()
	check := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := ref.Next()
			wantSet, wantTag := d.Decode(r.Addr)
			set, tag, write := dec.NextDecoded()
			if set != wantSet || tag != wantTag || write != r.Write {
				t.Fatalf("ref %d: got (%d,%#x,%v), want (%d,%#x,%v)", i, set, tag, write, wantSet, wantTag, r.Write)
			}
		}
	}
	check(0, ChunkLen/2)
	s.evict()
	check(ChunkLen/2, ChunkLen+500) // crosses a chunk boundary post-eviction
	d.evict()
	check(ChunkLen+500, 2*ChunkLen+500)
}
