package trace

// Varint/zigzag codec for the compressed chunk payloads. Every store encodes
// its chunk contents as a byte stream of LEB128 varints (the encoding
// encoding/binary uses); signed or wraparound-prone quantities are zigzag
// folded first so small magnitudes of either sign stay short. Address and
// (set, tag) streams are additionally delta-encoded against the previous
// value IN THE SAME CHUNK — each chunk's delta chain starts from zero, so a
// chunk is decodable on its own and cursors never need cross-chunk state.
//
// Cursors decode incrementally, one value per Next, keeping only (previous
// value, byte offset) — no per-cursor decode buffer — so a dozen concurrent
// replay cursors cost a few words each, not a chunk's worth of scratch.

// zigzag folds a signed value into an unsigned code with the magnitude in
// the high bits and the sign in bit 0: 0,-1,1,-2,2... -> 0,1,2,3,4...
// Deltas of uint64 addresses are folded through int64 first, which makes the
// encoding wraparound-safe: the delta arithmetic is exact mod 2^64 on both
// sides, so decode(prev + unzigzag(code)) recovers the address even when the
// subtraction wrapped.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag is the inverse of zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendUvarint appends v in LEB128 form (identical output to
// binary.AppendUvarint, inlined here so the encoder and decoder sit side by
// side).
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// uvarintAt decodes the LEB128 value starting at b[off] and returns it with
// the first offset past it. Chunks are encoded whole before publication, so
// the stream can never be truncated mid-value and the loop needs no bounds
// checks beyond the slice's own.
func uvarintAt(b []byte, off int) (uint64, int) {
	// Fast path: single-byte values dominate every stream this package
	// encodes (small deltas, small dependence distances, small latencies).
	c := b[off]
	if c < 0x80 {
		return uint64(c), off + 1
	}
	v := uint64(c & 0x7f)
	s := uint(7)
	for {
		off++
		c = b[off]
		if c < 0x80 {
			return v | uint64(c)<<s, off + 1
		}
		v |= uint64(c&0x7f) << s
		s += 7
	}
}
