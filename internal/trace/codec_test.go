package trace

import (
	"encoding/binary"
	"math"
	"testing"

	"capsim/internal/rng"
)

// TestZigzagRoundTrip checks the fold/unfold pair over the full signed range,
// including the extremes where naive abs-based folds overflow.
func TestZigzagRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 2, -2, 63, -63, 64, -64, math.MaxInt64, math.MinInt64}
	for _, v := range cases {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("unzigzag(zigzag(%d)) = %d", v, got)
		}
	}
	// Small magnitudes must get small codes (that is the point of the fold).
	if zigzag(0) != 0 || zigzag(-1) != 1 || zigzag(1) != 2 || zigzag(-2) != 3 {
		t.Errorf("zigzag ordering broken: %d %d %d %d", zigzag(0), zigzag(-1), zigzag(1), zigzag(-2))
	}
}

// TestUvarintMatchesBinary locks the wire format to encoding/binary's LEB128
// and the incremental decoder to its values, across byte-length boundaries.
func TestUvarintMatchesBinary(t *testing.T) {
	vals := []uint64{0, 1, 0x7f, 0x80, 0x3fff, 0x4000, 1<<35 - 1, 1 << 35, math.MaxUint64}
	r := rng.New(rng.DeriveSeed(1, "codec-test"))
	for i := 0; i < 1000; i++ {
		vals = append(vals, r.Uint64()>>uint(r.Intn(64)))
	}
	var enc []byte
	for _, v := range vals {
		ref := binary.AppendUvarint(nil, v)
		got := appendUvarint(nil, v)
		if string(ref) != string(got) {
			t.Fatalf("appendUvarint(%d) = % x, binary says % x", v, got, ref)
		}
		enc = append(enc, got...)
	}
	off := 0
	for i, want := range vals {
		v, next := uvarintAt(enc, off)
		if v != want {
			t.Fatalf("value %d: decoded %d, want %d", i, v, want)
		}
		off = next
	}
	if off != len(enc) {
		t.Fatalf("decoder consumed %d of %d bytes", off, len(enc))
	}
}

// TestDeltaWraparound proves the address delta chain survives uint64
// wraparound: encoding a sequence that jumps across 2^64 decodes exactly.
func TestDeltaWraparound(t *testing.T) {
	addrs := []uint64{0, math.MaxUint64, 1, math.MaxUint64 - 5, 7, 0}
	var enc []byte
	var prev uint64
	for _, a := range addrs {
		enc = appendUvarint(enc, zigzag(int64(a-prev)))
		prev = a
	}
	prev, off := uint64(0), 0
	for i, want := range addrs {
		u, next := uvarintAt(enc, off)
		off = next
		prev += uint64(unzigzag(u))
		if prev != want {
			t.Fatalf("addr %d: decoded %#x, want %#x", i, prev, want)
		}
	}
}

// TestCompressionRatio checks the acceptance-criteria floor on the real
// workload streams: the standard benchmarks' materialized stores must be at
// least 30% smaller than the flat layout they replaced.
func TestCompressionRatio(t *testing.T) {
	defer Reset()
	Reset()
	for _, name := range []string{"gcc", "stereo", "appcg", "compress", "swim"} {
		b := bench(t, name)
		RefsFor(b, 1998).Cursor().Next()
		OpsFor(b, 1998).Cursor().Next()
		DecodedFor(RefsFor(b, 1998), Geometry{BlockBytes: 32, Sets: 128}).Cursor().NextDecoded()
	}
	live, raw := TotalBytes(), TotalRawBytes()
	if raw == 0 {
		t.Fatal("no bytes materialized")
	}
	ratio := float64(live) / float64(raw)
	t.Logf("live %d raw %d ratio %.3f", live, raw, ratio)
	if ratio > 0.70 {
		t.Errorf("compression ratio %.3f exceeds 0.70 (needs >= 30%% shrink)", ratio)
	}
}
