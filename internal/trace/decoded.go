package trace

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Geometry is the part of a cache organization that determines the
// (set, tag) decomposition of an address. By the paper's constant-index
// mapping rule, every boundary position of one adaptive hierarchy shares one
// Geometry — which is exactly why a single decoded stream serves the whole
// boundary family.
type Geometry struct {
	BlockBytes int
	Sets       int
}

// Validate reports whether the geometry is decodable.
func (g Geometry) Validate() error {
	if g.BlockBytes <= 0 || g.BlockBytes&(g.BlockBytes-1) != 0 {
		return fmt.Errorf("trace: block size %d must be a positive power of two", g.BlockBytes)
	}
	if g.Sets <= 0 {
		return fmt.Errorf("trace: set count %d must be positive", g.Sets)
	}
	return nil
}

// decKey identifies one decoded stream: source-store identity x geometry.
type decKey struct {
	src *RefStore
	geo Geometry
}

// decChunk is one immutable span of ChunkLen decoded references.
type decChunk struct {
	sets [ChunkLen]int32
	tags [ChunkLen]uint64
}

// DecodedStore caches the (set, tag) decomposition of a RefStore for one
// geometry, chunk-aligned with the source so a cursor can read the write
// bitset and the decoded fields in lockstep. Like the source stores it is
// append-only with atomically published immutable chunks.
type DecodedStore struct {
	src *RefStore
	geo Geometry

	// Power-of-two fast decode (blockShift/setMask/setShift) when Sets is a
	// power of two; div/mod fallback otherwise. Both produce identical
	// values — shift/mask IS div/mod for powers of two.
	pow2       bool
	blockShift uint
	setMask    uint64
	setShift   uint

	mu     sync.Mutex
	chunks atomic.Pointer[[]*decChunk]
}

// DecodedFor returns the decoded stream of store s under geometry g,
// memoized per (store, geometry) with singleflight semantics. It panics on
// an invalid geometry (callers validate their cache parameters first).
func DecodedFor(s *RefStore, g Geometry) *DecodedStore {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return decStores.Get(decKey{s, g}, func() *DecodedStore {
		defer publishStoreGauge()
		d := &DecodedStore{src: s, geo: g}
		d.blockShift = uint(bits.TrailingZeros(uint(g.BlockBytes)))
		if g.Sets&(g.Sets-1) == 0 {
			d.pow2 = true
			d.setShift = uint(bits.TrailingZeros(uint(g.Sets)))
			d.setMask = uint64(g.Sets - 1)
		}
		return d
	})
}

// Decode splits one address into its (set, tag) pair under the store's
// geometry; exported for tests that cross-check against cache.Hierarchy.
func (d *DecodedStore) Decode(addr uint64) (set int32, tag uint64) {
	block := addr >> d.blockShift
	if d.pow2 {
		return int32(block & d.setMask), block >> d.setShift
	}
	return int32(block % uint64(d.geo.Sets)), block / uint64(d.geo.Sets)
}

// Len returns the number of decoded references.
func (d *DecodedStore) Len() int64 {
	if cs := d.chunks.Load(); cs != nil {
		return int64(len(*cs)) * ChunkLen
	}
	return 0
}

// ensure decodes chunks until at least n references are available,
// materializing the source as needed.
func (d *DecodedStore) ensure(n int64) {
	if d.Len() >= n {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var cur []*decChunk
	if cs := d.chunks.Load(); cs != nil {
		cur = *cs
	}
	for int64(len(cur))*ChunkLen < n {
		t0 := time.Now()
		src := d.src.chunk(int64(len(cur)))
		c := new(decChunk)
		for i := 0; i < ChunkLen; i++ {
			c.sets[i], c.tags[i] = d.Decode(src.addrs[i])
		}
		next := make([]*decChunk, len(cur)+1)
		copy(next, cur)
		next[len(cur)] = c
		cur = next
		d.chunks.Store(&next)
		obsDecChunks.Inc1()
		obsBytes.Add1(int64(unsafe.Sizeof(decChunk{})))
		obsGenNS.Observe(time.Since(t0).Nanoseconds())
	}
}

// chunk returns the ci-th decoded chunk, decoding as needed.
func (d *DecodedStore) chunk(ci int64) *decChunk {
	cs := d.chunks.Load()
	if cs == nil || ci >= int64(len(*cs)) {
		d.ensure((ci + 1) * ChunkLen)
		cs = d.chunks.Load()
	}
	return (*cs)[ci]
}

// Cursor returns a replay cursor over the decoded stream. Not safe for
// concurrent use; each goroutine takes its own.
func (d *DecodedStore) Cursor() *DecodedCursor { return &DecodedCursor{d: d, idx: ChunkLen} }

// DecodedCursor replays pre-decoded (set, tag, write) references in stream
// order. It implements cache.DecodedSource.
type DecodedCursor struct {
	d   *DecodedStore
	ci  int64
	idx int
	dec *decChunk
	src *refChunk
}

// NextDecoded returns the next reference's set index, tag and write flag.
func (c *DecodedCursor) NextDecoded() (set int32, tag uint64, write bool) {
	if c.idx == ChunkLen {
		c.dec = c.d.chunk(c.ci)
		c.src = c.d.src.chunk(c.ci)
		c.ci++
		c.idx = 0
	}
	i := c.idx
	c.idx++
	return c.dec.sets[i], c.dec.tags[i], c.src.writes[i>>6]>>(uint(i)&63)&1 == 1
}
