package trace

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Geometry is the part of a cache organization that determines the
// (set, tag) decomposition of an address. By the paper's constant-index
// mapping rule, every boundary position of one adaptive hierarchy shares one
// Geometry — which is exactly why a single decoded stream serves the whole
// boundary family.
type Geometry struct {
	BlockBytes int
	Sets       int
}

// Validate reports whether the geometry is decodable.
func (g Geometry) Validate() error {
	if g.BlockBytes <= 0 || g.BlockBytes&(g.BlockBytes-1) != 0 {
		return fmt.Errorf("trace: block size %d must be a positive power of two", g.BlockBytes)
	}
	if g.Sets <= 0 {
		return fmt.Errorf("trace: set count %d must be positive", g.Sets)
	}
	return nil
}

// decKey identifies one decoded stream: source-store identity x geometry.
type decKey struct {
	src *RefStore
	geo Geometry
}

// decChunk is one immutable span of ChunkLen decoded references, encoded as
// interleaved zigzag-delta varint (set, tag) pairs. Both delta chains
// restart at zero per chunk; the write flags live in the source refChunk's
// raw bitset, which the cursor reads in lockstep.
type decChunk struct {
	enc []byte
}

// decChunkBytes is the chunk's live footprint.
func decChunkBytes(c *decChunk) int64 {
	return int64(unsafe.Sizeof(*c)) + int64(len(c.enc))
}

// DecodedStore caches the (set, tag) decomposition of a RefStore for one
// geometry, chunk-aligned with the source so a cursor can read the write
// bitset and the decoded fields in lockstep. Like the source stores it is
// append-only with atomically published immutable chunks.
type DecodedStore struct {
	src *RefStore
	geo Geometry

	// Power-of-two fast decode (blockShift/setMask/setShift) when Sets is a
	// power of two; div/mod fallback otherwise. Both produce identical
	// values — shift/mask IS div/mod for powers of two.
	pow2       bool
	blockShift uint
	setMask    uint64
	setShift   uint

	mu      sync.Mutex
	scratch []byte // encode buffer, guarded by mu
	chunks  atomic.Pointer[[]*decChunk]

	bytes atomic.Int64
	use   atomic.Uint64
}

// DecodedFor returns the decoded stream of store s under geometry g,
// memoized per (store, geometry) with singleflight semantics. It panics on
// an invalid geometry (callers validate their cache parameters first).
func DecodedFor(s *RefStore, g Geometry) *DecodedStore {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return decStores.Get(decKey{s, g}, func() *DecodedStore {
		defer publishStoreGauge()
		d := &DecodedStore{src: s, geo: g}
		d.blockShift = uint(bits.TrailingZeros(uint(g.BlockBytes)))
		if g.Sets&(g.Sets-1) == 0 {
			d.pow2 = true
			d.setShift = uint(bits.TrailingZeros(uint(g.Sets)))
			d.setMask = uint64(g.Sets - 1)
		}
		registerStore(d)
		return d
	})
}

// Decode splits one address into its (set, tag) pair under the store's
// geometry; exported for tests that cross-check against cache.Hierarchy.
func (d *DecodedStore) Decode(addr uint64) (set int32, tag uint64) {
	block := addr >> d.blockShift
	if d.pow2 {
		return int32(block & d.setMask), block >> d.setShift
	}
	return int32(block % uint64(d.geo.Sets)), block / uint64(d.geo.Sets)
}

// Len returns the number of decoded references.
func (d *DecodedStore) Len() int64 {
	if cs := d.chunks.Load(); cs != nil {
		return int64(len(*cs)) * ChunkLen
	}
	return 0
}

// ensure decodes chunks until at least n references are available,
// materializing the source as needed. The source chunk is decoded
// incrementally (it is itself delta-compressed), re-encoding each reference
// as interleaved (set, tag) deltas.
func (d *DecodedStore) ensure(n int64) {
	if d.Len() >= n {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var cur []*decChunk
	if cs := d.chunks.Load(); cs != nil {
		cur = *cs
	}
	for int64(len(cur))*ChunkLen < n {
		t0 := time.Now()
		src := d.src.chunk(int64(len(cur)))
		c := new(decChunk)
		enc := d.scratch[:0]
		var prevAddr, prevTag uint64
		var prevSet int32
		off := 0
		for i := 0; i < ChunkLen; i++ {
			u, o := uvarintAt(src.enc, off)
			off = o
			prevAddr += uint64(unzigzag(u))
			set, tag := d.Decode(prevAddr)
			enc = appendUvarint(enc, zigzag(int64(set-prevSet)))
			enc = appendUvarint(enc, zigzag(int64(tag-prevTag)))
			prevSet, prevTag = set, tag
		}
		d.scratch = enc
		c.enc = append(make([]byte, 0, len(enc)), enc...)
		next := make([]*decChunk, len(cur)+1)
		copy(next, cur)
		next[len(cur)] = c
		cur = next
		d.chunks.Store(&next)
		d.bytes.Add(decChunkBytes(c))
		obsDecChunks.Inc1()
		obsBytes.Add1(decChunkBytes(c))
		obsBytesRaw.Add1(rawDecChunkBytes)
		obsGenNS.Observe(time.Since(t0).Nanoseconds())
	}
}

// chunk returns the ci-th decoded chunk, decoding as needed (internal, no
// budget bookkeeping).
func (d *DecodedStore) chunk(ci int64) *decChunk {
	cs := d.chunks.Load()
	if cs == nil || ci >= int64(len(*cs)) {
		d.ensure((ci + 1) * ChunkLen)
		cs = d.chunks.Load()
	}
	return (*cs)[ci]
}

// cursorChunk is the cursor-facing chunk load (recency stamp + budget).
func (d *DecodedStore) cursorChunk(ci int64) *decChunk {
	c := d.chunk(ci)
	d.use.Store(touchStamp())
	enforceBudget(d)
	return c
}

// evictable implementation (budget.go). The decoded store has no generator
// of its own — eviction just drops the chunks; ensure re-derives them from
// the (possibly also re-materialized) source.
func (d *DecodedStore) liveBytes() int64    { return d.bytes.Load() }
func (d *DecodedStore) nominalBytes() int64 { return d.Len() / ChunkLen * rawDecChunkBytes }
func (d *DecodedStore) lastUse() uint64     { return d.use.Load() }
func (d *DecodedStore) evict() {
	d.mu.Lock()
	defer d.mu.Unlock()
	obsBytes.Add1(-d.bytes.Load())
	obsBytesRaw.Add1(-d.nominalBytes())
	d.chunks.Store(nil)
	d.bytes.Store(0)
}

// Cursor returns a replay cursor over the decoded stream. Not safe for
// concurrent use; each goroutine takes its own.
func (d *DecodedStore) Cursor() *DecodedCursor { return &DecodedCursor{d: d, idx: ChunkLen} }

// DecodedCursor replays pre-decoded (set, tag, write) references in stream
// order. It implements cache.DecodedSource.
type DecodedCursor struct {
	d       *DecodedStore
	ci      int64
	idx     int
	off     int
	prevSet int32
	prevTag uint64
	dec     *decChunk
	src     *refChunk
}

// NextDecoded returns the next reference's set index, tag and write flag.
func (c *DecodedCursor) NextDecoded() (set int32, tag uint64, write bool) {
	if c.idx == ChunkLen {
		c.dec = c.d.cursorChunk(c.ci)
		c.src = c.d.src.cursorChunk(c.ci)
		c.ci++
		c.idx = 0
		c.off = 0
		c.prevSet, c.prevTag = 0, 0
	}
	i := c.idx
	c.idx++
	enc := c.dec.enc
	u0, off := uvarintAt(enc, c.off)
	u1, off := uvarintAt(enc, off)
	c.off = off
	c.prevSet += int32(unzigzag(u0))
	c.prevTag += uint64(unzigzag(u1))
	return c.prevSet, c.prevTag, c.src.writes[i>>6]>>(uint(i)&63)&1 == 1
}
