package trace

import (
	"sync"
	"testing"
)

// TestEnabledResetRace exercises the lifecycle contract under the race
// detector: goroutines replay ref/op/decoded cursors while another thread
// flips SetEnabled, calls Reset, and toggles the byte budget. The contract
// (see the package doc) says a cursor taken before a Reset keeps replaying
// its orphaned store consistently, and SetEnabled only steers future *For
// calls — so every replayed value must still be bit-identical to a private
// generator, no matter how the lifecycle calls interleave.
func TestEnabledResetRace(t *testing.T) {
	defer func() { SetBudget(0); SetEnabled(true); Reset() }()
	SetEnabled(true)
	Reset()

	b := bench(t, "gcc")
	g := Geometry{BlockBytes: 32, Sets: 128}
	const perCursor = ChunkLen + ChunkLen/2

	var wg sync.WaitGroup
	start := make(chan struct{})

	// Replayers: each takes fresh stores/cursors (racing with Reset means
	// some get memo hits, some get fresh stores) and checks content.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			<-start
			refs := RefSourceFor(b, seed)
			for i := 0; i < perCursor; i++ {
				refs.Next()
			}
			ops := InstrSourceFor(b, seed)
			for i := 0; i < perCursor; i++ {
				ops.Next()
			}
			s := RefsFor(b, seed)
			dec := DecodedFor(s, g).Cursor()
			ref := s.Cursor()
			for i := 0; i < perCursor; i++ {
				r := ref.Next()
				set, tag, write := dec.NextDecoded()
				wantSet, wantTag := DecodedFor(s, g).Decode(r.Addr)
				if set != wantSet || tag != wantTag || write != r.Write {
					t.Errorf("decoded ref %d inconsistent with its source", i)
					return
				}
			}
		}(uint64(100 + w))
	}

	// Lifecycle churn: enable/disable, Reset, budget squeeze.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 200; i++ {
			SetEnabled(i%2 == 0)
			if i%10 == 0 {
				Reset()
			}
			if i%3 == 0 {
				SetBudget(int64(1 + i*1024))
			} else {
				SetBudget(0)
			}
			_ = Enabled()
			_ = TotalBytes()
			_ = TotalRawBytes()
		}
	}()

	close(start)
	wg.Wait()
}
