package trace

import (
	"sync"
	"testing"

	"capsim/internal/workload"
)

func bench(t testing.TB, name string) workload.Benchmark {
	t.Helper()
	b, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRefCursorMatchesGenerator locks the replay contract: a cursor over the
// materialized store yields exactly the sequence the live generator produces,
// across multiple chunk boundaries.
func TestRefCursorMatchesGenerator(t *testing.T) {
	defer Reset()
	b := bench(t, "gcc")
	const n = ChunkLen*2 + 1234 // spans three chunks
	gen := workload.NewAddressTrace(b, 42)
	cur := RefsFor(b, 42).Cursor()
	for i := 0; i < n; i++ {
		want := gen.Next()
		got := cur.Next()
		if got != want {
			t.Fatalf("ref %d: store %+v != generator %+v", i, got, want)
		}
	}
}

// TestOpCursorMatchesGenerator is the instruction-stream counterpart.
func TestOpCursorMatchesGenerator(t *testing.T) {
	defer Reset()
	b := bench(t, "gcc")
	const n = ChunkLen + 999
	gen := workload.NewInstrStream(b, 42)
	cur := OpsFor(b, 42).Cursor()
	for i := 0; i < n; i++ {
		want := gen.Next()
		got := cur.Next()
		if got != want {
			t.Fatalf("instr %d: store %+v != generator %+v", i, got, want)
		}
	}
}

// TestDecodedMatchesDecode checks that the decoded stream is exactly the
// per-address Decode of the source stream, for pow2 and non-pow2 set counts.
func TestDecodedMatchesDecode(t *testing.T) {
	defer Reset()
	b := bench(t, "compress")
	for _, g := range []Geometry{{BlockBytes: 32, Sets: 128}, {BlockBytes: 32, Sets: 24}} {
		s := RefsFor(b, 7)
		d := DecodedFor(s, g)
		ref := s.Cursor()
		dec := d.Cursor()
		for i := 0; i < ChunkLen+100; i++ {
			r := ref.Next()
			wantSet, wantTag := d.Decode(r.Addr)
			set, tag, write := dec.NextDecoded()
			if set != wantSet || tag != wantTag || write != r.Write {
				t.Fatalf("geometry %+v ref %d: got (%d,%#x,%v), want (%d,%#x,%v)",
					g, i, set, tag, write, wantSet, wantTag, r.Write)
			}
		}
	}
}

// TestDecodePow2EqualsDivMod proves the shift/mask decode is the div/mod
// decode for power-of-two set counts.
func TestDecodePow2EqualsDivMod(t *testing.T) {
	defer Reset()
	b := bench(t, "gcc")
	s := RefsFor(b, 3)
	d := DecodedFor(s, Geometry{BlockBytes: 32, Sets: 128})
	if !d.pow2 {
		t.Fatal("128 sets not detected as power of two")
	}
	cur := s.Cursor()
	for i := 0; i < 10000; i++ {
		addr := cur.Next().Addr
		set, tag := d.Decode(addr)
		block := addr / 32
		if int32(block%128) != set || block/128 != tag {
			t.Fatalf("addr %#x: shift/mask (%d,%#x) != div/mod (%d,%#x)",
				addr, set, tag, block%128, block/128)
		}
	}
}

// TestGeometryValidate locks the decodability checks.
func TestGeometryValidate(t *testing.T) {
	for _, g := range []Geometry{{BlockBytes: 0, Sets: 8}, {BlockBytes: 48, Sets: 8}, {BlockBytes: 32, Sets: 0}} {
		if err := g.Validate(); err == nil {
			t.Errorf("geometry %+v accepted", g)
		}
	}
	if err := (Geometry{BlockBytes: 32, Sets: 24}).Validate(); err != nil {
		t.Errorf("non-pow2 set count rejected: %v", err)
	}
}

// TestMemoization checks the store identity contract: one store per
// (benchmark, seed) and per (store, geometry), discarded by Reset.
func TestMemoization(t *testing.T) {
	defer Reset()
	Reset()
	b := bench(t, "gcc")
	if s1, s2 := RefsFor(b, 1), RefsFor(b, 1); s1 != s2 {
		t.Error("same (benchmark, seed) produced distinct ref stores")
	}
	if s1, s2 := RefsFor(b, 1), RefsFor(b, 2); s1 == s2 {
		t.Error("distinct seeds shared a ref store")
	}
	if o1, o2 := OpsFor(b, 1), OpsFor(b, 1); o1 != o2 {
		t.Error("same (benchmark, seed) produced distinct op stores")
	}
	g := Geometry{BlockBytes: 32, Sets: 128}
	if d1, d2 := DecodedFor(RefsFor(b, 1), g), DecodedFor(RefsFor(b, 1), g); d1 != d2 {
		t.Error("same (store, geometry) produced distinct decoded stores")
	}
	refs, ops, dec := StoreCounts()
	if refs != 2 || ops != 1 || dec != 1 {
		t.Errorf("StoreCounts = (%d,%d,%d), want (2,1,1)", refs, ops, dec)
	}
	Reset()
	if refs, ops, dec = StoreCounts(); refs+ops+dec != 0 {
		t.Errorf("Reset left (%d,%d,%d) stores", refs, ops, dec)
	}
}

// TestConcurrentCursors certifies the lock-free read path: many goroutines
// replay one store concurrently (racing to extend it) and every one observes
// the identical sequence. Run with -race.
func TestConcurrentCursors(t *testing.T) {
	defer Reset()
	b := bench(t, "swim")
	const n = ChunkLen + 500
	want := make([]workload.Ref, n)
	gen := workload.NewAddressTrace(b, 9)
	for i := range want {
		want[i] = gen.Next()
	}
	s := RefsFor(b, 9)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur := s.Cursor()
			for i := 0; i < n; i++ {
				if got := cur.Next(); got != want[i] {
					errs <- "sequence diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if s.Len() < n {
		t.Errorf("store length %d < %d", s.Len(), n)
	}
}

// TestSourceSelection checks the -onepass escape hatch: enabled hands out
// shared-store cursors, disabled hands out private generators, and both
// produce the identical stream.
func TestSourceSelection(t *testing.T) {
	defer func() { SetEnabled(true); Reset() }()
	b := bench(t, "gcc")

	SetEnabled(true)
	if _, ok := RefSourceFor(b, 5).(*RefCursor); !ok {
		t.Error("enabled path did not return a store cursor")
	}
	if _, ok := InstrSourceFor(b, 5).(*OpCursor); !ok {
		t.Error("enabled path did not return an op cursor")
	}
	shared := RefSourceFor(b, 5)

	SetEnabled(false)
	if !Enabled() {
		// Enabled() must report the switch.
	} else {
		t.Error("Enabled() still true after SetEnabled(false)")
	}
	if _, ok := RefSourceFor(b, 5).(*workload.AddressTrace); !ok {
		t.Error("disabled path did not return a private generator")
	}
	private := RefSourceFor(b, 5)
	for i := 0; i < 5000; i++ {
		if a, b := shared.Next(), private.Next(); a != b {
			t.Fatalf("ref %d: shared %+v != private %+v", i, a, b)
		}
	}
}
