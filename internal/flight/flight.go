// Package flight is capsim's adaptation flight recorder: a structured,
// per-interval decision ledger for the Section 6 interval engines. Where
// internal/obs answers "how much work did the process do", flight answers
// "what did the adaptation manager decide at interval 812, what did the
// decision cost, and how far did it trail the oracle" — one event per
// (run, policy column, interval), with exact clock/penalty accounting and
// regret bookkeeping against the per-interval oracle column.
//
// The recorder follows the internal/obs publication contract (DESIGN.md,
// "Observability"):
//
//   - Zero overhead when disabled. The whole package sits behind collector
//     pointers (one process-wide atomic, one context key). The engines check
//     Active(ctx) ONCE per run — never per interval — and only assemble
//     events when a collector is installed. A run without -ledger-out and
//     without a streaming request pays one atomic load and one ctx.Value per
//     policy run.
//   - Plain tallies on hot paths, publication at coarse boundaries. Engines
//     append events to a private slice while simulating and publish the whole
//     run column in one PublishRun call at the end, so concurrent sweep
//     workers never contend mid-run and every run's lines are contiguous in
//     the ledger.
//   - Byte-identical renders ledger-on/off. No simulated value ever depends
//     on recorder state; the events are stamped FROM the exact accumulators
//     the engines already maintain (the same float operation order), which is
//     what makes the ledger invariants in check.go exact rather than
//     approximate.
//
// The persisted artifact is versioned NDJSON (`capsim/ledger/v1`, one JSON
// object per line, gzip when the path ends ".gz"): a header line, then per
// run a "run" metadata line, its "iv" interval events, and an "end" summary.
// `capsim -report` (report.go) turns ledgers back into regret summaries,
// switch/dwell tables and a policy league table; the experiment API server
// streams the same lines live over POST /v1/run {"stream":true}.
package flight

import (
	"bufio"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"capsim/internal/obs"
)

// Schema versions the ledger artifact. Bump on breaking shape changes (same
// convention as obs.ManifestSchema and server.ResponseSchema).
const Schema = "capsim/ledger/v1"

// Telemetry (internal/obs): recorder volume and failure visibility.
var (
	obsRuns    = obs.NewCounter("flight.runs")         // run columns published
	obsEvents  = obs.NewCounter("flight.events")       // interval events published
	obsDropped = obs.NewCounter("flight.dropped_runs") // runs dropped after a sink error
)

// Run kinds: how the column was produced.
const (
	// KindTrace is a fixed-configuration replay column of an interval family
	// (core.MultiPolicy.Traces) — the raw material of fig12/fig13.
	KindTrace = "trace"
	// KindOracle is the synthesized per-interval oracle column: the
	// time-minimal family column at every interval, switching free of charge.
	KindOracle = "oracle"
	// KindFixed is a fixed-policy replay run (core.MultiPolicy.RunFixed),
	// including its interval-0 transition penalty.
	KindFixed = "fixed"
	// KindRace is a live stateful-policy column of a lockstep race
	// (core.MultiPolicy.Race).
	KindRace = "race"
)

// RunMeta identifies one run column: which application/stream it consumed,
// which configuration menu it adapted over, and which policy drove it.
type RunMeta struct {
	App     string `json:"app"`
	Seed    uint64 `json:"seed"`
	Sizes   []int  `json:"sizes"`
	N       int64  `json:"n"` // instructions per interval
	Penalty int    `json:"penalty_cycles"`
	Policy  string `json:"policy"`
	Kind    string `json:"kind"`
}

// Event is one per-interval adaptation decision record. The float fields are
// stamped from the engines' own accumulators in their exact operation order,
// so the ledger invariants (CheckRun) hold with float equality, not
// tolerance:
//
//	AdvNS       = float64(Cycles) × PeriodNS
//	CumTimeNS   = running ( += DrainNS; += PenaltyNS; += AdvNS )
//	RegretNS    = DrainNS + PenaltyNS + AdvNS − OracleNS  (0 for the oracle)
//	CumRegretNS = running ( += RegretNS )
//
// OracleNS is the per-interval oracle's time for this interval: the minimum
// cycles×period over the run's interval-family columns — the time-domain
// minimum, chosen over the min-TPI oracle the drivers print, because exact
// non-negative regret needs minima in the same unit the columns accumulate
// (see DESIGN.md "Flight recorder").
type Event struct {
	Interval    int64   `json:"iv"`
	Config      int     `json:"cfg"`
	Size        int     `json:"size"` // queue entries of Config
	Cycles      int64   `json:"cycles"`
	Issued      int64   `json:"issued"`
	PeriodNS    float64 `json:"period_ns"`
	DrainCycles int64   `json:"drain_cycles,omitempty"`
	DrainNS     float64 `json:"drain_ns"`
	PenaltyNS   float64 `json:"pen_ns"`
	AdvNS       float64 `json:"adv_ns"`
	CumTimeNS   float64 `json:"cum_time_ns"`
	TPI         float64 `json:"tpi_ns"` // AdvNS / Issued, the monitor's sample
	OracleCfg   int     `json:"oracle_cfg"`
	OracleNS    float64 `json:"oracle_ns"`
	RegretNS    float64 `json:"regret_ns"`
	CumRegretNS float64 `json:"cum_regret_ns"`
	Switched    bool    `json:"switched,omitempty"`
}

// RunEnd summarizes a completed run column; its totals must reproduce the
// event stream's running sums exactly (CheckRun).
type RunEnd struct {
	Intervals   int64   `json:"intervals"`
	Instrs      int64   `json:"instrs"`
	TimeNS      float64 `json:"time_ns"`
	TPI         float64 `json:"tpi_ns"`
	Switches    int64   `json:"switches"`
	CumRegretNS float64 `json:"cum_regret_ns"`
}

// Progress is a transient sweep-progress pulse (jobs completed out of total
// in the currently executing sweep pass). Streaming sinks forward it so a
// live client sees movement between run publications; the file sink drops it
// — the persisted ledger records decisions, not liveness.
type Progress struct {
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Label string `json:"label,omitempty"`
}

// Sink consumes recorder output. WriteRun receives one complete run column
// atomically (the collector serializes calls); WriteProgress receives
// transient pulses and may ignore them.
type Sink interface {
	WriteRun(run int64, meta RunMeta, events []Event, end RunEnd) error
	WriteProgress(p Progress) error
}

// Collector assigns run ids and serializes publication into a Sink. A
// collector is installed process-wide (SetCollector, the CLI's -ledger-out)
// or per-context (WithCollector, the server's streaming requests); engines
// publish through the package-level Publish*, which fans out to both.
type Collector struct {
	mu   sync.Mutex
	sink Sink
	seq  int64
	err  error
}

// NewCollector wraps sink in a collector.
func NewCollector(sink Sink) *Collector { return &Collector{sink: sink} }

// PublishRun validates (under -obs-assert) and writes one complete run
// column. After the first sink error the collector goes quiet and drops
// subsequent runs — a dead client or full disk must not fail the simulation;
// Err surfaces the failure to whoever owns the sink.
func (c *Collector) PublishRun(meta RunMeta, events []Event, end RunEnd) {
	if obs.AssertEnabled() {
		if err := CheckRun(meta, events, end); err != nil {
			obs.Fail(err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		obsDropped.Inc1()
		return
	}
	c.seq++
	if err := c.sink.WriteRun(c.seq, meta, events, end); err != nil {
		c.err = err
		obsDropped.Inc1()
		return
	}
	obsRuns.Inc1()
	obsEvents.Add1(int64(len(events)))
}

// PublishProgress forwards a progress pulse; errors are terminal like
// PublishRun's.
func (c *Collector) PublishProgress(p Progress) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	if err := c.sink.WriteProgress(p); err != nil {
		c.err = err
	}
}

// Err returns the first sink error, if any.
func (c *Collector) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// --- installation ----------------------------------------------------------

// proc is the process-wide collector (-ledger-out), nil when disabled.
var proc atomic.Pointer[Collector]

// SetCollector installs (or, with nil, removes) the process-wide collector.
func SetCollector(c *Collector) { proc.Store(c) }

// ctxKey carries a per-context collector (streaming requests).
type ctxKey struct{}

// WithCollector returns a context whose Publish* calls also reach c. The
// experiment API server installs one per streaming request, so concurrent
// requests record into their own streams without racing a process global.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// fromCtx returns the context-scoped collector, or nil.
func fromCtx(ctx context.Context) *Collector {
	c, _ := ctx.Value(ctxKey{}).(*Collector)
	return c
}

// Active reports whether any collector would receive a publication under
// ctx. Engines call it once per run and skip all event assembly when false —
// this check IS the zero-overhead-when-disabled gate.
func Active(ctx context.Context) bool {
	return proc.Load() != nil || fromCtx(ctx) != nil
}

// Publish fans one complete run column out to the process-wide and
// context-scoped collectors (each assigns its own run id). The events slice
// is handed off to the sinks (which may retain it for deferred encoding) and
// must never be mutated afterward; engines satisfy this for free by
// publishing a freshly built private slice and dropping their reference.
func Publish(ctx context.Context, meta RunMeta, events []Event, end RunEnd) {
	if c := proc.Load(); c != nil {
		c.PublishRun(meta, events, end)
	}
	if c := fromCtx(ctx); c != nil {
		c.PublishRun(meta, events, end)
	}
}

// PublishProgress fans a sweep-progress pulse out to the active collectors.
func PublishProgress(ctx context.Context, p Progress) {
	if c := proc.Load(); c != nil {
		c.PublishProgress(p)
	}
	if c := fromCtx(ctx); c != nil {
		c.PublishProgress(p)
	}
}

// --- NDJSON line shapes ----------------------------------------------------

// Line discriminators ("t" field) of the NDJSON stream.
const (
	LineHeader   = "ledger"
	LineRun      = "run"
	LineEvent    = "iv"
	LineEnd      = "end"
	LineProgress = "progress"
)

type headerLine struct {
	T         string `json:"t"`
	Schema    string `json:"schema"`
	Generated string `json:"generated,omitempty"`
}

type runLine struct {
	T   string `json:"t"`
	Run int64  `json:"run"`
	RunMeta
}

type eventLine struct {
	T   string `json:"t"`
	Run int64  `json:"run"`
	Event
}

type endLine struct {
	T   string `json:"t"`
	Run int64  `json:"run"`
	RunEnd
}

type progressLine struct {
	T string `json:"t"`
	Progress
}

// EncodeRun writes one run column in ledger line format to w: the "run"
// metadata line, one "iv" line per event, and the "end" summary. Shared by
// the file sink and the server's streaming sink so both emit identical
// bytes.
func EncodeRun(w io.Writer, run int64, meta RunMeta, events []Event, end RunEnd) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(runLine{T: LineRun, Run: run, RunMeta: meta}); err != nil {
		return err
	}
	for _, ev := range events {
		if err := enc.Encode(eventLine{T: LineEvent, Run: run, Event: ev}); err != nil {
			return err
		}
	}
	return enc.Encode(endLine{T: LineEnd, Run: run, RunEnd: end})
}

// EncodeProgress writes one progress pulse in ledger line format.
func EncodeProgress(w io.Writer, p Progress) error {
	return json.NewEncoder(w).Encode(progressLine{T: LineProgress, Progress: p})
}

// EncodeHeader writes the versioned header line.
func EncodeHeader(w io.Writer, generated string) error {
	return json.NewEncoder(w).Encode(headerLine{T: LineHeader, Schema: Schema, Generated: generated})
}

// --- file sink -------------------------------------------------------------

// LedgerWriter is the persistent NDJSON sink behind `capsim -ledger-out`:
// buffered, optionally gzipped (path ends ".gz"), header-first. WriteRun
// only enqueues; a single background goroutine does the JSON encoding and
// compression, so recording adds queue-handoff cost — not encode+gzip cost —
// to the simulated run's wall time. Run columns are written in publication
// order (one channel, one consumer), which keeps the on-disk ledger
// byte-identical to what a synchronous writer would produce.
type LedgerWriter struct {
	f    *os.File
	gz   *gzip.Writer
	bw   *bufio.Writer
	dst  io.Writer
	ch   chan ledgerRec
	done chan struct{}
	werr atomic.Pointer[error] // first encode error, set by the write loop
}

// ledgerRec is one queued run column awaiting encoding.
type ledgerRec struct {
	run    int64
	meta   RunMeta
	events []Event
	end    RunEnd
}

// CreateLedger creates (truncates) the ledger file at path, writes the
// schema header, and starts the background write loop. Close (exactly once)
// drains the queue, flushes and closes every layer.
func CreateLedger(path string) (*LedgerWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	l := &LedgerWriter{f: f, bw: bufio.NewWriterSize(f, 1<<16)}
	l.dst = l.bw
	if strings.HasSuffix(path, ".gz") {
		// BestSpeed: the ledger is NDJSON with heavily repeated keys, so even
		// the fastest level compresses ~10x; deeper levels only add CPU to
		// the recording run's wall time.
		l.gz, _ = gzip.NewWriterLevel(l.bw, gzip.BestSpeed)
		l.dst = l.gz
	}
	if err := EncodeHeader(l.dst, time.Now().UTC().Format(time.RFC3339)); err != nil {
		f.Close()
		return nil, err
	}
	l.ch = make(chan ledgerRec, 64)
	l.done = make(chan struct{})
	go l.writeLoop()
	return l, nil
}

// writeLoop drains the queue on a dedicated goroutine. After the first
// encode error it keeps draining (so producers never block on a dead sink)
// but stops writing; the error surfaces through WriteRun and Close.
func (l *LedgerWriter) writeLoop() {
	defer close(l.done)
	for rec := range l.ch {
		if l.werr.Load() != nil {
			continue
		}
		if err := EncodeRun(l.dst, rec.run, rec.meta, rec.events, rec.end); err != nil {
			l.werr.Store(&err)
		}
	}
}

// WriteRun implements Sink: it enqueues the run column for the write loop,
// blocking only when the queue is full (backpressure, not loss). The events
// slice is retained until encoded and must not be mutated by the caller.
func (l *LedgerWriter) WriteRun(run int64, meta RunMeta, events []Event, end RunEnd) error {
	if ep := l.werr.Load(); ep != nil {
		return *ep
	}
	l.ch <- ledgerRec{run: run, meta: meta, events: events, end: end}
	return nil
}

// WriteProgress implements Sink: the persisted ledger records decisions, not
// liveness — progress pulses are dropped.
func (l *LedgerWriter) WriteProgress(Progress) error { return nil }

// Close drains the write queue, flushes the gzip and buffer layers and
// closes the file, reporting the first error (including deferred encode
// errors) so a truncated ledger is visible instead of shipping silently.
func (l *LedgerWriter) Close() error {
	close(l.ch)
	<-l.done
	var first error
	if ep := l.werr.Load(); ep != nil {
		first = *ep
	}
	if l.gz != nil {
		if err := l.gz.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := l.bw.Flush(); err != nil && first == nil {
		first = err
	}
	if err := l.f.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// openLedgerReader opens path for reading, transparently ungzipping by
// content (magic bytes, not extension — a renamed ledger still reads).
func openLedgerReader(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	magic, err := br.Peek(2)
	if err == nil && len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("flight: %s: %w", path, err)
		}
		return struct {
			io.Reader
			io.Closer
		}{gz, f}, nil
	}
	return struct {
		io.Reader
		io.Closer
	}{br, f}, nil
}
