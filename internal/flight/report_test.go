package flight

import (
	"path/filepath"
	"strings"
	"testing"

	"capsim/internal/obs"
)

// writeTestLedger records an oracle column plus two policy columns with
// distinct regret and returns the path.
func writeTestLedger(t *testing.T, name string, extra ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	lw, err := CreateLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(lw)
	mo, eo, do := mkRun("oracle", KindOracle, 30, 0)
	c.PublishRun(mo, eo, do)
	// fixed(0) carries per-interval regret iv%3; fixed(1) adds switch
	// penalties on top, so it must rank below fixed(0).
	m0, e0, d0 := mkRun("fixed(0)", KindFixed, 30, 0)
	c.PublishRun(m0, e0, d0)
	m1, e1, d1 := mkRun("fixed(1)", KindFixed, 30, 8)
	c.PublishRun(m1, e1, d1)
	for _, p := range extra {
		m, e, d := mkRun(p, KindRace, 30, 2)
		c.PublishRun(m, e, d)
	}
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportRegretOrdering(t *testing.T) {
	path := writeTestLedger(t, "l.ndjson", "adaptive")
	in, err := ReadReportInput(path)
	if err != nil {
		t.Fatal(err)
	}
	out := Report([]ReportInput{in})

	// The league table ranks by total regret: oracle (zero) first, then
	// fixed(0), with penalty-burdened fixed(1) last.
	iOracle := strings.Index(out, "oracle")
	i0 := strings.Index(out, "fixed(0)")
	i1 := strings.Index(out, "fixed(1)")
	if iOracle < 0 || i0 < 0 || i1 < 0 {
		t.Fatalf("league table missing rows:\n%s", out)
	}
	if !(iOracle < i0 && i0 < i1) {
		t.Fatalf("league order wrong (oracle@%d fixed0@%d fixed1@%d):\n%s", iOracle, i0, i1, out)
	}
	for _, want := range []string{"league:", "dwell:", "summary:", "switches/1k_iv", "total_regret_ns"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// The same runs appearing in two ledger files are counted once.
func TestReportDedupAcrossLedgers(t *testing.T) {
	p1 := writeTestLedger(t, "a.ndjson")
	p2 := writeTestLedger(t, "b.ndjson")
	in1, err := ReadReportInput(p1)
	if err != nil {
		t.Fatal(err)
	}
	in2, err := ReadReportInput(p2)
	if err != nil {
		t.Fatal(err)
	}
	out := Report([]ReportInput{in1, in2})
	if !strings.Contains(out, "3 runs (0 new)") {
		t.Fatalf("second ledger not deduplicated:\n%s", out)
	}
	if n := strings.Count(out, "fixed(0)"); n != 3 { // league + dwell + summary, once each
		t.Fatalf("fixed(0) appears %d times, want 3:\n%s", n, out)
	}
}

// A run manifest rides along as provenance.
func TestReportAcceptsManifest(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "manifest.json")
	m := obs.NewManifest()
	if err := m.WriteFile(mpath); err != nil {
		t.Fatal(err)
	}
	in, err := ReadReportInput(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if in.Manifest == nil {
		t.Fatal("manifest not recognized")
	}
	lin, err := ReadReportInput(writeTestLedger(t, "l.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	out := Report([]ReportInput{in, lin})
	if !strings.Contains(out, "manifest "+mpath) {
		t.Fatalf("manifest provenance missing:\n%s", out)
	}
}
