package flight

import (
	"fmt"
	"sort"
	"sync"

	"capsim/internal/metrics"
)

// This file is the league-analytics layer shared by `capsim -report` and
// the zoo experiment driver: both reduce run columns to RunSummary values
// and render the same three tables through the same builders, which is what
// makes the experiment's league table byte-for-byte reproducible from its
// own ledger. Summaries carry everything the tables need (ends, residency,
// max regret) so the experiment tier can persist them in study rows and
// re-render from a warm cache without the event columns.

// RunSummary is the per-run reduction the league tables are built from.
type RunSummary struct {
	Meta RunMeta
	End  RunEnd
	// MaxRegretNS is the worst single-interval regret observed.
	MaxRegretNS float64
	// Residency counts intervals spent at each config.
	Residency map[int]int64
	// SizeOf labels each resident config with its queue size.
	SizeOf map[int]int
}

// Summarize reduces one run column to its league summary.
func Summarize(meta RunMeta, events []Event, end RunEnd) RunSummary {
	s := RunSummary{
		Meta:      meta,
		End:       end,
		Residency: make(map[int]int64, len(meta.Sizes)),
		SizeOf:    make(map[int]int, len(meta.Sizes)),
	}
	for _, ev := range events {
		s.Residency[ev.Config]++
		s.SizeOf[ev.Config] = ev.Size
		if ev.RegretNS > s.MaxRegretNS {
			s.MaxRegretNS = ev.RegretNS
		}
	}
	return s
}

// SummaryKey dedups run columns across sources: re-recording the same study
// appends identical columns, and a report must count each once.
func SummaryKey(s RunSummary) string {
	m := s.Meta
	return fmt.Sprintf("%s|%v|%d|%d|%s|%s|%d", m.App, m.Sizes, m.N, m.Penalty, m.Policy, m.Kind, s.End.Intervals)
}

// SortRunSummaries orders summaries by the league's TOTAL order: app, then
// total regret (the oracle, at zero, leads by construction), then penalty,
// kind, policy, and interval count as deterministic tie-breaks. A total
// order is load-bearing: ledger file order depends on sweep scheduling, and
// byte-identical renders at any worker/shard count require the sort alone
// to fix the row sequence.
func SortRunSummaries(rs []RunSummary) {
	sort.SliceStable(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Meta.App != b.Meta.App {
			return a.Meta.App < b.Meta.App
		}
		if a.End.CumRegretNS != b.End.CumRegretNS {
			return a.End.CumRegretNS < b.End.CumRegretNS
		}
		if a.Meta.Penalty != b.Meta.Penalty {
			return a.Meta.Penalty < b.Meta.Penalty
		}
		if a.Meta.Kind != b.Meta.Kind {
			return a.Meta.Kind < b.Meta.Kind
		}
		if a.Meta.Policy != b.Meta.Policy {
			return a.Meta.Policy < b.Meta.Policy
		}
		return a.End.Intervals < b.End.Intervals
	})
}

// LeagueTable renders the per-app policy league: every run ranked by total
// regret vs the oracle, with mean and worst-interval regret, switch counts,
// and the penalty point it was charged under.
func LeagueTable(runs []RunSummary) metrics.Table {
	t := metrics.Table{
		ID:      "league",
		Title:   "policy league table (ranked by total regret vs oracle)",
		Columns: []string{"app", "policy", "kind", "pen", "intervals", "tpi_ns", "switches", "regret_ns/iv", "max_regret_ns", "total_regret_ns"},
	}
	for _, r := range runs {
		perIV := 0.0
		if r.End.Intervals > 0 {
			perIV = r.End.CumRegretNS / float64(r.End.Intervals)
		}
		t.Rows = append(t.Rows, []string{
			r.Meta.App, r.Meta.Policy, r.Meta.Kind, fmt.Sprint(r.Meta.Penalty),
			fmt.Sprint(r.End.Intervals), metrics.F(r.End.TPI),
			fmt.Sprint(r.End.Switches), metrics.F(perIV),
			metrics.F(r.MaxRegretNS), metrics.F(r.End.CumRegretNS),
		})
	}
	return t
}

// DwellTable renders adaptation dynamics per run. Dwell is the mean run
// length at one configuration (intervals per switch+1); residency names the
// configuration holding the most intervals.
func DwellTable(runs []RunSummary) metrics.Table {
	t := metrics.Table{
		ID:      "dwell",
		Title:   "switch rate and dwell time",
		Columns: []string{"app", "policy", "kind", "pen", "switches/1k_iv", "mean_dwell_iv", "top_cfg", "top_cfg_share"},
	}
	for _, r := range runs {
		if r.End.Intervals == 0 {
			continue
		}
		rate := 1000 * float64(r.End.Switches) / float64(r.End.Intervals)
		md := float64(r.End.Intervals) / float64(r.End.Switches+1)
		top, topN := 0, int64(-1)
		for cfg, n := range r.Residency {
			if n > topN || (n == topN && cfg < top) {
				top, topN = cfg, n
			}
		}
		label, share := "-", 0.0
		if topN >= 0 {
			label = fmt.Sprintf("IQ=%d", r.SizeOf[top])
			share = float64(topN) / float64(r.End.Intervals)
		}
		t.Rows = append(t.Rows, []string{
			r.Meta.App, r.Meta.Policy, r.Meta.Kind, fmt.Sprint(r.Meta.Penalty),
			metrics.F(rate), metrics.F(md), label, metrics.Pct(share),
		})
	}
	return t
}

// PolicySummaryTable renders the cross-app view: one row per policy/kind,
// averaging regret-per-interval over every run it appears in — the league
// table's single-number ranking.
func PolicySummaryTable(runs []RunSummary) metrics.Table {
	type agg struct {
		policy, kind string
		perIV        []float64
	}
	byPolicy := map[string]*agg{}
	var polOrder []string
	for _, r := range runs {
		if r.End.Intervals == 0 {
			continue
		}
		k := r.Meta.Policy + "|" + r.Meta.Kind
		a := byPolicy[k]
		if a == nil {
			a = &agg{policy: r.Meta.Policy, kind: r.Meta.Kind}
			byPolicy[k] = a
			polOrder = append(polOrder, k)
		}
		a.perIV = append(a.perIV, r.End.CumRegretNS/float64(r.End.Intervals))
	}
	sort.SliceStable(polOrder, func(i, j int) bool {
		mi, mj := metrics.Mean(byPolicy[polOrder[i]].perIV), metrics.Mean(byPolicy[polOrder[j]].perIV)
		if mi != mj {
			return mi < mj
		}
		return polOrder[i] < polOrder[j]
	})
	t := metrics.Table{
		ID:      "summary",
		Title:   "cross-app policy summary (mean regret per interval)",
		Columns: []string{"policy", "kind", "runs", "mean_regret_ns/iv"},
	}
	for _, k := range polOrder {
		a := byPolicy[k]
		t.Rows = append(t.Rows, []string{
			a.policy, a.kind, fmt.Sprint(len(a.perIV)), metrics.F(metrics.Mean(a.perIV)),
		})
	}
	return t
}

// LeagueReport renders the three league tables from pre-deduplicated
// summaries, sorting them into the total order first. It is the single
// rendering path behind both `capsim -report` and the zoo experiment.
func LeagueReport(runs []RunSummary) []metrics.Table {
	SortRunSummaries(runs)
	return []metrics.Table{LeagueTable(runs), DwellTable(runs), PolicySummaryTable(runs)}
}

// Capture is an in-memory Sink reducing every published run to its
// RunSummary as it arrives — the zoo driver's private collector target, so
// experiment rows carry league data without retaining event columns.
type Capture struct {
	mu   sync.Mutex
	runs []RunSummary
}

// NewCapture returns an empty capture sink.
func NewCapture() *Capture { return &Capture{} }

// WriteRun implements Sink.
func (c *Capture) WriteRun(run int64, meta RunMeta, events []Event, end RunEnd) error {
	s := Summarize(meta, events, end)
	c.mu.Lock()
	c.runs = append(c.runs, s)
	c.mu.Unlock()
	return nil
}

// WriteProgress implements Sink.
func (c *Capture) WriteProgress(Progress) error { return nil }

// Summaries returns the captured run summaries in publication order.
func (c *Capture) Summaries() []RunSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RunSummary, len(c.runs))
	copy(out, c.runs)
	return out
}
