package flight

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReportTruncatedGzLedger is the hardening gate: a .gz ledger cut at an
// arbitrary byte mid-record (killed writer, mid-stream disconnect) must
// warn and analyze the complete prefix instead of failing the report.
func TestReportTruncatedGzLedger(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ndjson.gz")
	lw, err := CreateLedger(full)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(lw)
	for _, p := range []string{"oracle", "fixed(0)", "fixed(1)", "adaptive"} {
		kind := KindFixed
		if p == "oracle" {
			kind = KindOracle
		}
		m, e, d := mkRun(p, kind, 30, 2)
		c.PublishRun(m, e, d)
	}
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}

	buf, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.ndjson.gz")
	if err := os.WriteFile(cut, buf[:len(buf)*3/5], 0o644); err != nil {
		t.Fatal(err)
	}

	in, err := ReadReportInput(cut)
	if err != nil {
		t.Fatalf("truncated .gz ledger failed instead of degrading: %v", err)
	}
	if in.Ledger == nil {
		t.Fatal("truncated ledger not recognized as a ledger")
	}
	if len(in.Ledger.Warnings) == 0 {
		t.Fatal("no truncation warning recorded")
	}
	if n := len(in.Ledger.Runs); n == 0 || n >= 4 {
		t.Fatalf("complete prefix has %d runs, want between 1 and 3", n)
	}
	out := Report([]ReportInput{in})
	if !strings.Contains(out, "warning") || !strings.Contains(out, "league:") {
		t.Fatalf("report over truncated ledger missing warning or league table:\n%s", out)
	}
}

// TestReportTruncatedPlainLedger: a plain NDJSON ledger with a partial
// final line parses its complete prefix with a warning.
func TestReportTruncatedPlainLedger(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ndjson")
	lw, err := CreateLedger(full)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(lw)
	m, e, d := mkRun("fixed(0)", KindFixed, 10, 0)
	c.PublishRun(m, e, d)
	m2, e2, d2 := mkRun("fixed(1)", KindFixed, 10, 3)
	c.PublishRun(m2, e2, d2)
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way through the final line: strip the newline and a few bytes.
	cutBytes := buf[:len(buf)-7]
	cut := filepath.Join(dir, "cut.ndjson")
	if err := os.WriteFile(cut, cutBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	in, err := ReadReportInput(cut)
	if err != nil {
		t.Fatalf("partial final line failed instead of degrading: %v", err)
	}
	l := in.Ledger
	if l == nil || len(l.Warnings) == 0 {
		t.Fatalf("want warnings on partial final line, got %+v", l)
	}
	if len(l.Runs) != 1 || l.Runs[0].Meta.Policy != "fixed(0)" {
		t.Fatalf("complete prefix wrong: %d runs", len(l.Runs))
	}
}

// TestParseLedgerMidFileGarbageStillFails: damage followed by intact lines
// is corruption, not truncation — the parser must refuse.
func TestParseLedgerMidFileGarbageStillFails(t *testing.T) {
	var b strings.Builder
	if err := EncodeHeader(&b, ""); err != nil {
		t.Fatal(err)
	}
	meta, evs, end := mkRun("p", KindTrace, 3, 0)
	if err := EncodeRun(&b, 1, meta, evs, end); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	lines[1] = lines[1][:len(lines[1])/2] // damage a line that is NOT last
	doc := strings.Join(lines, "\n") + "\n"
	if _, err := ParseLedger(strings.NewReader(doc)); err == nil {
		t.Fatal("mid-file garbage accepted")
	}
}

// TestCaptureSummarize: the in-memory sink reduces runs to the same
// summaries Report builds from a ledger round-trip.
func TestCaptureSummarize(t *testing.T) {
	sink := NewCapture()
	c := NewCollector(sink)
	m, e, d := mkRun("adaptive", KindRace, 30, 2)
	c.PublishRun(m, e, d)
	got := sink.Summaries()
	if len(got) != 1 {
		t.Fatalf("%d summaries", len(got))
	}
	s := got[0]
	if s.Meta.Policy != "adaptive" || s.End != d {
		t.Fatalf("summary mismatch: %+v", s)
	}
	var wantMax float64
	res := map[int]int64{}
	for _, ev := range e {
		res[ev.Config]++
		if ev.RegretNS > wantMax {
			wantMax = ev.RegretNS
		}
	}
	if s.MaxRegretNS != wantMax {
		t.Errorf("MaxRegretNS %v, want %v", s.MaxRegretNS, wantMax)
	}
	for cfg, n := range res {
		if s.Residency[cfg] != n {
			t.Errorf("residency[%d] = %d, want %d", cfg, s.Residency[cfg], n)
		}
		if s.SizeOf[cfg] != m.Sizes[cfg] {
			t.Errorf("sizeOf[%d] = %d, want %d", cfg, s.SizeOf[cfg], m.Sizes[cfg])
		}
	}
}

// TestSortRunSummariesTotalOrder: any input permutation sorts to the same
// sequence — the property byte-identical renders at any worker count rest
// on.
func TestSortRunSummariesTotalOrder(t *testing.T) {
	mk := func(app, policy, kind string, pen int, regret float64) RunSummary {
		return RunSummary{
			Meta: RunMeta{App: app, Policy: policy, Kind: kind, Penalty: pen},
			End:  RunEnd{Intervals: 10, CumRegretNS: regret},
		}
	}
	base := []RunSummary{
		mk("a", "oracle", KindOracle, 0, 0),
		mk("a", "oracle", KindOracle, 50, 0),
		mk("a", "fixed(0)", KindFixed, 0, 5),
		mk("a", "pid-tpi", KindRace, 0, 5),
		mk("b", "oracle", KindOracle, 0, 0),
	}
	perm := []RunSummary{base[3], base[4], base[0], base[2], base[1]}
	SortRunSummaries(base)
	SortRunSummaries(perm)
	for i := range base {
		if SummaryKey(base[i]) != SummaryKey(perm[i]) {
			t.Fatalf("row %d differs across permutations: %+v vs %+v", i, base[i], perm[i])
		}
	}
	// Ties on regret resolve by penalty, then kind sorts race after fixed.
	if base[0].Meta.Penalty != 0 || base[1].Meta.Penalty != 50 {
		t.Errorf("oracle penalty tie-break wrong: %+v", base[:2])
	}
	if base[2].Meta.Kind != KindFixed || base[3].Meta.Kind != KindRace {
		t.Errorf("kind tie-break wrong: %+v", base[2:4])
	}
}
