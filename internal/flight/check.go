package flight

import "fmt"

// CheckRun validates one run column against the ledger invariants. The
// checks use exact float equality, not tolerances: the engines stamp events
// from their own accumulators in the same operation order the checker
// replays, so any mismatch is a real bookkeeping bug, not rounding.
//
// Invariants:
//
//  1. Interval indices are sequential from the first event.
//  2. AdvNS == float64(Cycles) × PeriodNS for every event, and the running
//     sum (+= DrainNS; += PenaltyNS; += AdvNS) reproduces each event's
//     CumTimeNS and the run's end.TimeNS — per-interval cycles×period sums
//     reproduce the run's total time.
//  3. RegretNS is never negative, its running sum reproduces CumRegretNS and
//     end.CumRegretNS, and therefore CumRegretNS is monotone non-decreasing.
//  4. The oracle column's regret is identically zero.
//  5. end.Intervals, end.Instrs and end.Switches match the event stream.
func CheckRun(meta RunMeta, events []Event, end RunEnd) error {
	var (
		timeNS   float64
		regretNS float64
		instrs   int64
		switches int64
	)
	var base int64
	if len(events) > 0 {
		base = events[0].Interval
	}
	for i, ev := range events {
		if ev.Interval != base+int64(i) {
			return fmt.Errorf("flight: %s/%s: event %d has interval %d, want %d",
				meta.Policy, meta.Kind, i, ev.Interval, base+int64(i))
		}
		if want := float64(ev.Cycles) * ev.PeriodNS; ev.AdvNS != want {
			return fmt.Errorf("flight: %s/%s iv=%d: adv_ns %v != cycles×period %v",
				meta.Policy, meta.Kind, ev.Interval, ev.AdvNS, want)
		}
		timeNS += ev.DrainNS
		timeNS += ev.PenaltyNS
		timeNS += ev.AdvNS
		if ev.CumTimeNS != timeNS {
			return fmt.Errorf("flight: %s/%s iv=%d: cum_time_ns %v != replayed sum %v",
				meta.Policy, meta.Kind, ev.Interval, ev.CumTimeNS, timeNS)
		}
		if ev.RegretNS < 0 {
			return fmt.Errorf("flight: %s/%s iv=%d: negative regret %v",
				meta.Policy, meta.Kind, ev.Interval, ev.RegretNS)
		}
		if meta.Kind == KindOracle && ev.RegretNS != 0 {
			return fmt.Errorf("flight: oracle column %s iv=%d: regret %v != 0",
				meta.Policy, ev.Interval, ev.RegretNS)
		}
		regretNS += ev.RegretNS
		if ev.CumRegretNS != regretNS {
			return fmt.Errorf("flight: %s/%s iv=%d: cum_regret_ns %v != replayed sum %v",
				meta.Policy, meta.Kind, ev.Interval, ev.CumRegretNS, regretNS)
		}
		instrs += ev.Issued
		if ev.Switched {
			switches++
		}
	}
	if end.TimeNS != timeNS {
		return fmt.Errorf("flight: %s/%s: end time_ns %v != event sum %v",
			meta.Policy, meta.Kind, end.TimeNS, timeNS)
	}
	if end.CumRegretNS != regretNS {
		return fmt.Errorf("flight: %s/%s: end cum_regret_ns %v != event sum %v",
			meta.Policy, meta.Kind, end.CumRegretNS, regretNS)
	}
	if meta.Kind == KindOracle && end.CumRegretNS != 0 {
		return fmt.Errorf("flight: oracle column %s: end regret %v != 0", meta.Policy, end.CumRegretNS)
	}
	if end.Intervals != int64(len(events)) {
		return fmt.Errorf("flight: %s/%s: end intervals %d != %d events",
			meta.Policy, meta.Kind, end.Intervals, len(events))
	}
	if end.Instrs != instrs {
		return fmt.Errorf("flight: %s/%s: end instrs %d != event sum %d",
			meta.Policy, meta.Kind, end.Instrs, instrs)
	}
	if end.Switches != switches {
		return fmt.Errorf("flight: %s/%s: end switches %d != %d switched events",
			meta.Policy, meta.Kind, end.Switches, switches)
	}
	return nil
}
