package flight

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"capsim/internal/obs"
)

// mkRun builds a valid synthetic run column: per-interval cycles around a
// base, a penalty charged on each config change, and all derived fields
// computed by the same replay order CheckRun verifies.
func mkRun(policy, kind string, intervals int, penNS float64) (RunMeta, []Event, RunEnd) {
	meta := RunMeta{App: "synap", Seed: 7, Sizes: []int{16, 64}, N: 100, Penalty: 10, Policy: policy, Kind: kind}
	if kind == KindOracle {
		penNS = 0 // the oracle switches free of charge
	}
	var (
		timeNS   float64
		regretNS float64
		instrs   int64
		switches int64
	)
	evs := make([]Event, intervals)
	cur := 0
	for iv := 0; iv < intervals; iv++ {
		cfg := (iv / 3) % 2
		var pen float64
		switched := false
		if cfg != cur {
			pen = penNS
			switched = true
			switches++
			cur = cfg
		}
		cycles := int64(100 + iv%5)
		period := 0.5 + 0.25*float64(cfg)
		adv := float64(cycles) * period
		oracle := adv // synthetic oracle tracks the column's own advance
		if kind != KindOracle {
			oracle = adv - float64(iv%3) // regret = pen + iv%3
		}
		timeNS += 0
		timeNS += pen
		timeNS += adv
		tot := 0 + pen + adv
		regret := tot - oracle
		regretNS += regret
		issued := int64(100)
		instrs += issued
		evs[iv] = Event{
			Interval:    int64(iv),
			Config:      cfg,
			Size:        meta.Sizes[cfg],
			Cycles:      cycles,
			Issued:      issued,
			PeriodNS:    period,
			PenaltyNS:   pen,
			AdvNS:       adv,
			CumTimeNS:   timeNS,
			TPI:         adv / float64(issued),
			OracleCfg:   cfg,
			OracleNS:    oracle,
			RegretNS:    regret,
			CumRegretNS: regretNS,
			Switched:    switched,
		}
	}
	end := RunEnd{
		Intervals:   int64(intervals),
		Instrs:      instrs,
		TimeNS:      timeNS,
		TPI:         timeNS / float64(instrs),
		Switches:    switches,
		CumRegretNS: regretNS,
	}
	return meta, evs, end
}

func TestCheckRunValid(t *testing.T) {
	for _, kind := range []string{KindTrace, KindOracle, KindFixed, KindRace} {
		meta, evs, end := mkRun("p", kind, 20, 3.5)
		if err := CheckRun(meta, evs, end); err != nil {
			t.Fatalf("valid %s run tripped: %v", kind, err)
		}
	}
}

// Trip test 1: cumulative regret must be monotone non-decreasing — a
// negative instantaneous regret trips the checker.
func TestCheckRunTripsNegativeRegret(t *testing.T) {
	meta, evs, end := mkRun("p", KindFixed, 10, 0)
	evs[4].RegretNS = -1
	evs[4].CumRegretNS = evs[3].CumRegretNS - 1
	if err := CheckRun(meta, evs, end); err == nil || !strings.Contains(err.Error(), "negative regret") {
		t.Fatalf("want negative-regret trip, got %v", err)
	}
}

// Trip test 2: the oracle column's regret is identically zero.
func TestCheckRunTripsOracleRegret(t *testing.T) {
	meta, evs, end := mkRun("oracle", KindOracle, 10, 0)
	evs[2].RegretNS = 0.5
	// Keep the running sum self-consistent so the zero-regret invariant is
	// what trips, not the sum replay.
	for iv := 2; iv < len(evs); iv++ {
		evs[iv].CumRegretNS += 0.5
	}
	end.CumRegretNS += 0.5
	if err := CheckRun(meta, evs, end); err == nil || !strings.Contains(err.Error(), "oracle") {
		t.Fatalf("want oracle-regret trip, got %v", err)
	}
}

// Trip test 3: per-interval cycles × period must reproduce the run's total
// time — corrupting one advance breaks both the per-event product check and
// the end-time replay.
func TestCheckRunTripsTimeSum(t *testing.T) {
	meta, evs, end := mkRun("p", KindTrace, 10, 0)
	evs[7].AdvNS += 1
	if err := CheckRun(meta, evs, end); err == nil || !strings.Contains(err.Error(), "cycles×period") {
		t.Fatalf("want cycles×period trip, got %v", err)
	}
	meta, evs, end = mkRun("p", KindTrace, 10, 0)
	end.TimeNS += 1
	if err := CheckRun(meta, evs, end); err == nil || !strings.Contains(err.Error(), "end time_ns") {
		t.Fatalf("want end-time trip, got %v", err)
	}
}

func TestCheckRunTripsSequenceAndTotals(t *testing.T) {
	meta, evs, end := mkRun("p", KindRace, 10, 2)
	evs[5].Interval = 9
	if err := CheckRun(meta, evs, end); err == nil {
		t.Fatal("want interval-sequence trip")
	}
	meta, evs, end = mkRun("p", KindRace, 10, 2)
	end.Switches++
	if err := CheckRun(meta, evs, end); err == nil {
		t.Fatal("want switches trip")
	}
	meta, evs, end = mkRun("p", KindRace, 10, 2)
	end.Instrs--
	if err := CheckRun(meta, evs, end); err == nil {
		t.Fatal("want instrs trip")
	}
}

// PublishRun under -obs-assert funnels a corrupt run into obs.Fail (panic).
func TestCollectorAssertTrips(t *testing.T) {
	obs.SetAssert(true)
	defer obs.SetAssert(false)
	meta, evs, end := mkRun("p", KindFixed, 5, 0)
	end.TimeNS++
	c := NewCollector(&memSink{})
	defer func() {
		if recover() == nil {
			t.Fatal("want obs.Fail panic")
		}
	}()
	c.PublishRun(meta, evs, end)
}

// memSink accumulates runs in memory.
type memSink struct {
	mu    sync.Mutex
	runs  []int64
	metas []RunMeta
	evs   [][]Event
	ends  []RunEnd
	progs []Progress
	err   error
}

func (s *memSink) WriteRun(run int64, meta RunMeta, events []Event, end RunEnd) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.runs = append(s.runs, run)
	s.metas = append(s.metas, meta)
	s.evs = append(s.evs, append([]Event(nil), events...))
	s.ends = append(s.ends, end)
	return nil
}

func (s *memSink) WriteProgress(p Progress) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.progs = append(s.progs, p)
	return nil
}

func TestPublishFanOut(t *testing.T) {
	procSink, ctxSink := &memSink{}, &memSink{}
	SetCollector(NewCollector(procSink))
	defer SetCollector(nil)
	ctx := WithCollector(context.Background(), NewCollector(ctxSink))

	if !Active(ctx) || !Active(context.Background()) {
		t.Fatal("collectors installed but Active is false")
	}
	meta, evs, end := mkRun("p", KindTrace, 5, 0)
	Publish(ctx, meta, evs, end)
	PublishProgress(ctx, Progress{Done: 1, Total: 2})
	if len(procSink.runs) != 1 || len(ctxSink.runs) != 1 {
		t.Fatalf("fan-out missed: proc=%d ctx=%d", len(procSink.runs), len(ctxSink.runs))
	}
	if len(procSink.progs) != 1 || len(ctxSink.progs) != 1 {
		t.Fatal("progress fan-out missed")
	}

	SetCollector(nil)
	if Active(context.Background()) {
		t.Fatal("Active true with no collectors")
	}
}

func TestCollectorSinkErrorGoesQuiet(t *testing.T) {
	s := &memSink{err: fmt.Errorf("disk full")}
	c := NewCollector(s)
	meta, evs, end := mkRun("p", KindTrace, 3, 0)
	c.PublishRun(meta, evs, end)
	c.PublishRun(meta, evs, end)
	if c.Err() == nil {
		t.Fatal("sink error not surfaced")
	}
	if len(s.runs) != 0 {
		t.Fatal("runs recorded despite sink error")
	}
}

// Concurrent publication through one collector must be race-free and assign
// unique run ids (the ci-race lane exercises this under -race).
func TestCollectorConcurrentPublish(t *testing.T) {
	s := &memSink{}
	c := NewCollector(s)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			meta, evs, end := mkRun("p", KindTrace, 4, 0)
			for i := 0; i < 25; i++ {
				c.PublishRun(meta, evs, end)
			}
		}()
	}
	wg.Wait()
	if len(s.runs) != 200 {
		t.Fatalf("got %d runs, want 200", len(s.runs))
	}
	seen := map[int64]bool{}
	for _, id := range s.runs {
		if seen[id] {
			t.Fatalf("duplicate run id %d", id)
		}
		seen[id] = true
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	for _, name := range []string{"run.ndjson", "run.ndjson.gz"} {
		path := filepath.Join(t.TempDir(), name)
		lw, err := CreateLedger(path)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCollector(lw)
		m1, e1, d1 := mkRun("fixed(0)", KindFixed, 12, 0)
		m2, e2, d2 := mkRun("oracle", KindOracle, 12, 0)
		c.PublishRun(m1, e1, d1)
		c.PublishRun(m2, e2, d2)
		c.PublishProgress(Progress{Done: 1, Total: 2}) // file sink drops these
		if err := lw.Close(); err != nil {
			t.Fatal(err)
		}

		l, err := ReadLedger(path)
		if err != nil {
			t.Fatal(err)
		}
		if l.Schema != Schema {
			t.Fatalf("schema %q", l.Schema)
		}
		if len(l.Runs) != 2 {
			t.Fatalf("%s: got %d runs, want 2", name, len(l.Runs))
		}
		if !reflect.DeepEqual(l.Runs[0].Meta, m1) || l.Runs[1].Meta.Policy != "oracle" {
			t.Fatalf("%s: meta mismatch: %+v", name, l.Runs[0].Meta)
		}
		if len(l.Runs[0].Events) != 12 || l.Runs[0].End != d1 || l.Runs[1].End != d2 {
			t.Fatalf("%s: run payload mismatch", name)
		}
		// Everything that came back must still satisfy the invariants.
		for _, r := range l.Runs {
			if err := CheckRun(r.Meta, r.Events, r.End); err != nil {
				t.Fatalf("%s: round-tripped run trips: %v", name, err)
			}
		}
	}
}

func TestParseLedgerTruncated(t *testing.T) {
	var b strings.Builder
	if err := EncodeHeader(&b, ""); err != nil {
		t.Fatal(err)
	}
	meta, evs, _ := mkRun("p", KindTrace, 3, 0)
	// Emit run + events but no end line: a stream cut mid-run.
	if err := EncodeRun(&b, 1, meta, evs, RunEnd{}); err != nil {
		t.Fatal(err)
	}
	cut := b.String()
	cut = cut[:strings.LastIndex(strings.TrimRight(cut, "\n"), "\n")+1]
	l, err := ParseLedger(strings.NewReader(cut))
	if err != nil {
		t.Fatalf("mid-run cut must degrade to a warning, got error: %v", err)
	}
	if len(l.Runs) != 0 {
		t.Fatalf("endless run kept: %d runs", len(l.Runs))
	}
	if len(l.Warnings) == 0 || !strings.Contains(l.Warnings[0], "no end line") {
		t.Fatalf("want no-end-line warning, got %v", l.Warnings)
	}
}

func TestParseLedgerRejectsGarbage(t *testing.T) {
	if _, err := ParseLedger(strings.NewReader("{\"t\":\"iv\",\"run\":1}\n")); err == nil {
		t.Fatal("want error for event before run line")
	}
	if _, err := ParseLedger(strings.NewReader("not json\n")); err == nil {
		t.Fatal("want error for non-JSON input")
	}
	if _, err := ParseLedger(strings.NewReader("{\"t\":\"other\"}\n")); err == nil {
		t.Fatal("want error for missing header")
	}
}
