package flight

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"capsim/internal/metrics"
	"capsim/internal/obs"
)

// Ledger is one parsed ledger artifact.
type Ledger struct {
	Schema string
	Runs   []LedgerRun
}

// LedgerRun is one reassembled run column.
type LedgerRun struct {
	Run    int64
	Meta   RunMeta
	Events []Event
	End    RunEnd
	ended  bool
}

// ReadLedger opens and parses the NDJSON ledger at path, transparently
// ungzipping by content.
func ReadLedger(path string) (Ledger, error) {
	r, err := openLedgerReader(path)
	if err != nil {
		return Ledger{}, err
	}
	defer r.Close()
	l, err := ParseLedger(r)
	if err != nil {
		return Ledger{}, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

// ParseLedger reassembles run columns from a ledger line stream. Unknown
// line types are skipped (forward compatibility within the major schema);
// a run whose "end" line never arrived — a stream cut mid-run — is dropped
// with an error, because its totals are not trustworthy.
func ParseLedger(r io.Reader) (Ledger, error) {
	var out Ledger
	runs := map[int64]*LedgerRun{}
	order := []int64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var disc struct {
			T   string `json:"t"`
			Run int64  `json:"run"`
		}
		if err := json.Unmarshal(line, &disc); err != nil {
			return Ledger{}, fmt.Errorf("line %d: %w", lineNo, err)
		}
		switch disc.T {
		case LineHeader:
			var h headerLine
			if err := json.Unmarshal(line, &h); err != nil {
				return Ledger{}, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if !strings.HasPrefix(h.Schema, "capsim/ledger/") {
				return Ledger{}, fmt.Errorf("line %d: not a capsim ledger (schema %q)", lineNo, h.Schema)
			}
			out.Schema = h.Schema
		case LineRun:
			var rl runLine
			if err := json.Unmarshal(line, &rl); err != nil {
				return Ledger{}, fmt.Errorf("line %d: %w", lineNo, err)
			}
			lr := &LedgerRun{Run: rl.Run, Meta: rl.RunMeta}
			runs[rl.Run] = lr
			order = append(order, rl.Run)
		case LineEvent:
			var el eventLine
			if err := json.Unmarshal(line, &el); err != nil {
				return Ledger{}, fmt.Errorf("line %d: %w", lineNo, err)
			}
			lr := runs[el.Run]
			if lr == nil {
				return Ledger{}, fmt.Errorf("line %d: event for unknown run %d", lineNo, el.Run)
			}
			lr.Events = append(lr.Events, el.Event)
		case LineEnd:
			var el endLine
			if err := json.Unmarshal(line, &el); err != nil {
				return Ledger{}, fmt.Errorf("line %d: %w", lineNo, err)
			}
			lr := runs[el.Run]
			if lr == nil {
				return Ledger{}, fmt.Errorf("line %d: end for unknown run %d", lineNo, el.Run)
			}
			lr.End = el.RunEnd
			lr.ended = true
		case LineProgress:
			// Transient; nothing to reassemble.
		default:
			// Forward compatibility: skip unknown line types.
		}
	}
	if err := sc.Err(); err != nil {
		return Ledger{}, err
	}
	if out.Schema == "" {
		return Ledger{}, fmt.Errorf("no ledger header line")
	}
	for _, id := range order {
		lr := runs[id]
		if !lr.ended {
			return Ledger{}, fmt.Errorf("run %d (%s/%s) has no end line: truncated ledger", id, lr.Meta.Policy, lr.Meta.Kind)
		}
		out.Runs = append(out.Runs, *lr)
	}
	return out, nil
}

// ReportInput is one source document for BuildReport: a parsed ledger or a
// run manifest accepted for provenance.
type ReportInput struct {
	Path     string
	Ledger   *Ledger
	Manifest *obs.Manifest
}

// ReadReportInput loads path as either a ledger (NDJSON, optionally
// gzipped) or a run manifest (capsim/run-manifest JSON). Manifests ride
// along as provenance — the report's header names the commands that
// produced the runs it summarizes.
func ReadReportInput(path string) (ReportInput, error) {
	r, err := openLedgerReader(path)
	if err != nil {
		return ReportInput{}, err
	}
	defer r.Close()
	buf, err := io.ReadAll(r)
	if err != nil {
		return ReportInput{}, fmt.Errorf("%s: %w", path, err)
	}
	// A manifest is ONE JSON document; a ledger is many, one per line, so a
	// whole-buffer Unmarshal succeeds only for manifests. Try that first and
	// fall back to ledger parsing.
	var m obs.Manifest
	if jerr := json.Unmarshal(buf, &m); jerr == nil && strings.HasPrefix(m.Schema, "capsim/run-manifest/") {
		return ReportInput{Path: path, Manifest: &m}, nil
	}
	l, err := ParseLedger(bytes.NewReader(buf))
	if err != nil {
		return ReportInput{}, fmt.Errorf("%s: %w", path, err)
	}
	return ReportInput{Path: path, Ledger: &l}, nil
}

// runKey dedups run columns across ledger files: re-recording the same
// study appends identical columns, and the report must count each once.
func runKey(m RunMeta, intervals int64) string {
	return fmt.Sprintf("%s|%v|%d|%d|%s|%s|%d", m.App, m.Sizes, m.N, m.Penalty, m.Policy, m.Kind, intervals)
}

// Report renders ledger analytics: the per-app policy league table (ranked
// by total regret), the switch-rate/dwell-time table, and a cross-app
// per-policy summary.
func Report(inputs []ReportInput) string {
	var b strings.Builder
	fmt.Fprintf(&b, "capsim flight report (%s)\n", Schema)

	seen := map[string]bool{}
	var runs []LedgerRun
	for _, in := range inputs {
		switch {
		case in.Ledger != nil:
			kept := 0
			for _, r := range in.Ledger.Runs {
				k := runKey(r.Meta, r.End.Intervals)
				if seen[k] {
					continue
				}
				seen[k] = true
				runs = append(runs, r)
				kept++
			}
			fmt.Fprintf(&b, "  ledger   %s: %d runs (%d new)\n", in.Path, len(in.Ledger.Runs), kept)
		case in.Manifest != nil:
			fmt.Fprintf(&b, "  manifest %s: %s\n", in.Path, in.Manifest.Command)
		}
	}
	b.WriteByte('\n')
	if len(runs) == 0 {
		b.WriteString("no runs recorded\n")
		return b.String()
	}

	// League table: per app, ranked by total regret (the oracle, at zero,
	// leads by construction).
	sort.SliceStable(runs, func(i, j int) bool {
		if runs[i].Meta.App != runs[j].Meta.App {
			return runs[i].Meta.App < runs[j].Meta.App
		}
		return runs[i].End.CumRegretNS < runs[j].End.CumRegretNS
	})
	league := metrics.Table{
		ID:      "league",
		Title:   "policy league table (ranked by total regret vs oracle)",
		Columns: []string{"app", "policy", "kind", "intervals", "tpi_ns", "switches", "regret_ns/iv", "total_regret_ns"},
	}
	for _, r := range runs {
		perIV := 0.0
		if r.End.Intervals > 0 {
			perIV = r.End.CumRegretNS / float64(r.End.Intervals)
		}
		league.Rows = append(league.Rows, []string{
			r.Meta.App, r.Meta.Policy, r.Meta.Kind,
			fmt.Sprint(r.End.Intervals), metrics.F(r.End.TPI),
			fmt.Sprint(r.End.Switches), metrics.F(perIV), metrics.F(r.End.CumRegretNS),
		})
	}
	b.WriteString(league.Render())
	b.WriteByte('\n')

	// Switch-rate / dwell-time table: adaptation dynamics per run. Dwell is
	// the mean run length at one configuration (intervals per switch+1);
	// residency names the configuration holding the most intervals.
	dwell := metrics.Table{
		ID:      "dwell",
		Title:   "switch rate and dwell time",
		Columns: []string{"app", "policy", "kind", "switches/1k_iv", "mean_dwell_iv", "top_cfg", "top_cfg_share"},
	}
	for _, r := range runs {
		if r.End.Intervals == 0 {
			continue
		}
		rate := 1000 * float64(r.End.Switches) / float64(r.End.Intervals)
		md := float64(r.End.Intervals) / float64(r.End.Switches+1)
		res := map[int]int64{}
		for _, ev := range r.Events {
			res[ev.Config]++
		}
		top, topN := 0, int64(-1)
		for cfg, n := range res {
			if n > topN || (n == topN && cfg < top) {
				top, topN = cfg, n
			}
		}
		share := float64(topN) / float64(r.End.Intervals)
		label := "-"
		if topN >= 0 {
			label = fmt.Sprint(top)
			for _, ev := range r.Events {
				if ev.Config == top {
					label = fmt.Sprintf("IQ=%d", ev.Size)
					break
				}
			}
		}
		dwell.Rows = append(dwell.Rows, []string{
			r.Meta.App, r.Meta.Policy, r.Meta.Kind,
			metrics.F(rate), metrics.F(md), label, metrics.Pct(share),
		})
	}
	b.WriteString(dwell.Render())
	b.WriteByte('\n')

	// Cross-app summary: one row per policy, averaging regret-per-interval
	// across the apps it ran on — the league table's single-number view.
	type agg struct {
		policy, kind string
		apps         int
		perIV        []float64
	}
	byPolicy := map[string]*agg{}
	var polOrder []string
	for _, r := range runs {
		if r.End.Intervals == 0 {
			continue
		}
		k := r.Meta.Policy + "|" + r.Meta.Kind
		a := byPolicy[k]
		if a == nil {
			a = &agg{policy: r.Meta.Policy, kind: r.Meta.Kind}
			byPolicy[k] = a
			polOrder = append(polOrder, k)
		}
		a.apps++
		a.perIV = append(a.perIV, r.End.CumRegretNS/float64(r.End.Intervals))
	}
	sort.SliceStable(polOrder, func(i, j int) bool {
		return metrics.Mean(byPolicy[polOrder[i]].perIV) < metrics.Mean(byPolicy[polOrder[j]].perIV)
	})
	summary := metrics.Table{
		ID:      "summary",
		Title:   "cross-app policy summary (mean regret per interval)",
		Columns: []string{"policy", "kind", "runs", "mean_regret_ns/iv"},
	}
	for _, k := range polOrder {
		a := byPolicy[k]
		summary.Rows = append(summary.Rows, []string{
			a.policy, a.kind, fmt.Sprint(a.apps), metrics.F(metrics.Mean(a.perIV)),
		})
	}
	b.WriteString(summary.Render())
	return b.String()
}
