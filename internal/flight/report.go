package flight

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"capsim/internal/obs"
)

// Ledger is one parsed ledger artifact.
type Ledger struct {
	Schema string
	Runs   []LedgerRun
	// Warnings records recoverable damage — a truncated stream, a partial
	// final line, runs cut before their end line — that reduced the run set
	// without failing the parse.
	Warnings []string
}

// LedgerRun is one reassembled run column.
type LedgerRun struct {
	Run    int64
	Meta   RunMeta
	Events []Event
	End    RunEnd
	ended  bool
}

// ReadLedger opens and parses the NDJSON ledger at path, transparently
// ungzipping by content.
func ReadLedger(path string) (Ledger, error) {
	r, err := openLedgerReader(path)
	if err != nil {
		return Ledger{}, err
	}
	defer r.Close()
	l, err := ParseLedger(r)
	if err != nil {
		return Ledger{}, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

// truncationErr reports whether a stream error is the signature of a ledger
// cut mid-write (killed writer, mid-stream disconnect): an unexpected EOF,
// or the corrupt-deflate errors a gzip member truncated at an arbitrary
// byte produces.
func truncationErr(err error) bool {
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var cie flate.CorruptInputError
	return errors.As(err, &cie)
}

// ParseLedger reassembles run columns from a ledger line stream. Unknown
// line types are skipped (forward compatibility within the major schema).
// Damage with a truncation signature is tolerated: a partial FINAL line, a
// stream error mid-gzip-member, or runs whose "end" line never arrived are
// reported through Ledger.Warnings and the complete prefix is analyzed. A
// malformed line with intact lines after it is still a hard error — that is
// corruption, not truncation.
func ParseLedger(r io.Reader) (Ledger, error) {
	var out Ledger
	runs := map[int64]*LedgerRun{}
	order := []int64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	var pendingErr error
	pendingLine := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// The bad line was NOT the final one: corrupt mid-file.
			return Ledger{}, fmt.Errorf("line %d: %w", pendingLine, pendingErr)
		}
		var disc struct {
			T   string `json:"t"`
			Run int64  `json:"run"`
		}
		if err := json.Unmarshal(line, &disc); err != nil {
			pendingErr, pendingLine = err, lineNo
			continue
		}
		switch disc.T {
		case LineHeader:
			var h headerLine
			if err := json.Unmarshal(line, &h); err != nil {
				pendingErr, pendingLine = err, lineNo
				continue
			}
			if !strings.HasPrefix(h.Schema, "capsim/ledger/") {
				return Ledger{}, fmt.Errorf("line %d: not a capsim ledger (schema %q)", lineNo, h.Schema)
			}
			out.Schema = h.Schema
		case LineRun:
			var rl runLine
			if err := json.Unmarshal(line, &rl); err != nil {
				pendingErr, pendingLine = err, lineNo
				continue
			}
			lr := &LedgerRun{Run: rl.Run, Meta: rl.RunMeta}
			runs[rl.Run] = lr
			order = append(order, rl.Run)
		case LineEvent:
			var el eventLine
			if err := json.Unmarshal(line, &el); err != nil {
				pendingErr, pendingLine = err, lineNo
				continue
			}
			lr := runs[el.Run]
			if lr == nil {
				return Ledger{}, fmt.Errorf("line %d: event for unknown run %d", lineNo, el.Run)
			}
			lr.Events = append(lr.Events, el.Event)
		case LineEnd:
			var el endLine
			if err := json.Unmarshal(line, &el); err != nil {
				pendingErr, pendingLine = err, lineNo
				continue
			}
			lr := runs[el.Run]
			if lr == nil {
				return Ledger{}, fmt.Errorf("line %d: end for unknown run %d", lineNo, el.Run)
			}
			lr.End = el.RunEnd
			lr.ended = true
		case LineProgress:
			// Transient; nothing to reassemble.
		default:
			// Forward compatibility: skip unknown line types.
		}
	}
	if err := sc.Err(); err != nil {
		if !truncationErr(err) {
			return Ledger{}, err
		}
		out.Warnings = append(out.Warnings,
			fmt.Sprintf("stream truncated after line %d (%v); analyzing the complete prefix", lineNo, err))
	}
	if pendingErr != nil {
		out.Warnings = append(out.Warnings,
			fmt.Sprintf("partial final line %d (%v); analyzing the complete prefix", pendingLine, pendingErr))
	}
	if out.Schema == "" {
		return Ledger{}, fmt.Errorf("no ledger header line")
	}
	for _, id := range order {
		lr := runs[id]
		if !lr.ended {
			out.Warnings = append(out.Warnings,
				fmt.Sprintf("run %d (%s/%s) has no end line: dropped (cut mid-run)", id, lr.Meta.Policy, lr.Meta.Kind))
			continue
		}
		out.Runs = append(out.Runs, *lr)
	}
	return out, nil
}

// ReportInput is one source document for BuildReport: a parsed ledger or a
// run manifest accepted for provenance.
type ReportInput struct {
	Path     string
	Ledger   *Ledger
	Manifest *obs.Manifest
}

// ReadReportInput loads path as either a ledger (NDJSON, optionally
// gzipped) or a run manifest (capsim/run-manifest JSON). Manifests ride
// along as provenance — the report's header names the commands that
// produced the runs it summarizes.
func ReadReportInput(path string) (ReportInput, error) {
	r, err := openLedgerReader(path)
	if err != nil {
		return ReportInput{}, err
	}
	defer r.Close()
	buf, err := io.ReadAll(r)
	if err != nil && !truncationErr(err) {
		return ReportInput{}, fmt.Errorf("%s: %w", path, err)
	}
	// A manifest is ONE JSON document; a ledger is many, one per line, so a
	// whole-buffer Unmarshal succeeds only for manifests. Try that first and
	// fall back to ledger parsing.
	var m obs.Manifest
	if jerr := json.Unmarshal(buf, &m); jerr == nil && strings.HasPrefix(m.Schema, "capsim/run-manifest/") {
		return ReportInput{Path: path, Manifest: &m}, nil
	}
	l, perr := ParseLedger(bytes.NewReader(buf))
	if perr != nil {
		return ReportInput{}, fmt.Errorf("%s: %w", path, perr)
	}
	if err != nil {
		// The gzip stream itself was cut; the line prefix parsed clean.
		l.Warnings = append(l.Warnings,
			fmt.Sprintf("compressed stream truncated (%v); analyzing the complete prefix", err))
	}
	return ReportInput{Path: path, Ledger: &l}, nil
}

// Report renders ledger analytics: the per-app policy league table (ranked
// by total regret), the switch-rate/dwell-time table, and a cross-app
// per-policy summary — through the same table builders the zoo experiment
// renders with, so a report over an experiment's ledger reproduces its
// tables byte-for-byte.
func Report(inputs []ReportInput) string {
	var b strings.Builder
	fmt.Fprintf(&b, "capsim flight report (%s)\n", Schema)

	seen := map[string]bool{}
	var runs []RunSummary
	for _, in := range inputs {
		switch {
		case in.Ledger != nil:
			kept := 0
			for _, r := range in.Ledger.Runs {
				s := Summarize(r.Meta, r.Events, r.End)
				k := SummaryKey(s)
				if seen[k] {
					continue
				}
				seen[k] = true
				runs = append(runs, s)
				kept++
			}
			fmt.Fprintf(&b, "  ledger   %s: %d runs (%d new)\n", in.Path, len(in.Ledger.Runs), kept)
			for _, w := range in.Ledger.Warnings {
				fmt.Fprintf(&b, "  warning  %s: %s\n", in.Path, w)
			}
		case in.Manifest != nil:
			fmt.Fprintf(&b, "  manifest %s: %s\n", in.Path, in.Manifest.Command)
		}
	}
	b.WriteByte('\n')
	if len(runs) == 0 {
		b.WriteString("no runs recorded\n")
		return b.String()
	}

	for i, t := range LeagueReport(runs) {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(t.Render())
	}
	return b.String()
}
