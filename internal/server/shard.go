// Shard coordinator: the minimal work-claiming HTTP protocol behind
// `capsim -shard-coordinator N`.
//
// The coordinator owns a fixed bucket space (M buckets, M >= worker count so
// fast workers absorb slow workers' tail) and hands buckets out on demand:
//
//	POST /v1/shard/claim   {"worker":"w0"}          -> {"bucket":3,"buckets":16}
//	                                                   or 204 when exhausted
//	POST /v1/shard/done    {"worker":"w0","bucket":3} -> {"remaining":12}
//	GET  /v1/shard/status                            -> progress snapshot
//
// Workers loop claim -> run every experiment as shard bucket/M (publishing
// owned study rows to the shared persistent store) -> done, until claim
// returns 204. The coordinator never sees a render: the persistent store is
// the data plane, this protocol is control plane only. Crash tolerance is
// delegated to the merge contract — a bucket claimed by a worker that died
// is simply recomputed during the merge run — so the coordinator needs no
// lease/requeue machinery.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"

	"capsim/internal/obs"
)

var (
	obsShardClaims   = obs.NewCounter("server.shard_claims")
	obsShardDones    = obs.NewCounter("server.shard_dones")
	obsShardRequests = obs.NewCounter("server.shard_requests")
)

// ClaimResponse is the 200 body of POST /v1/shard/claim.
type ClaimResponse struct {
	Bucket  int `json:"bucket"`  // 0-based bucket to run as -shard bucket/buckets
	Buckets int `json:"buckets"` // total bucket space
}

// doneRequest is the body of POST /v1/shard/done (claim shares the shape;
// its bucket field is ignored there).
type doneRequest struct {
	Worker string `json:"worker"`
	Bucket int    `json:"bucket"`
}

// ShardStatus is the GET /v1/shard/status body.
type ShardStatus struct {
	Buckets   int `json:"buckets"`
	Claimed   int `json:"claimed"`
	Done      int `json:"done"`
	Remaining int `json:"remaining"` // buckets not yet claimed
}

// ShardCoordinator is the control-plane service. Create with
// NewShardCoordinator, attach with Handler (tests) or Start, stop with
// Shutdown. All methods are safe for concurrent use.
type ShardCoordinator struct {
	buckets int

	mu      sync.Mutex
	claimed []string // worker name per bucket, "" = unclaimed
	done    []bool
	next    int // lowest never-claimed bucket
	nDone   int

	mux      *http.ServeMux
	httpSrv  *http.Server
	listener net.Listener
	srvDone  chan struct{}
}

// NewShardCoordinator builds a coordinator over a bucket space of size
// buckets (>= 1).
func NewShardCoordinator(buckets int) (*ShardCoordinator, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("server: shard bucket count %d, want >= 1", buckets)
	}
	c := &ShardCoordinator{
		buckets: buckets,
		claimed: make([]string, buckets),
		done:    make([]bool, buckets),
		srvDone: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shard/claim", c.handleClaim)
	mux.HandleFunc("POST /v1/shard/done", c.handleDone)
	mux.HandleFunc("GET /v1/shard/status", c.handleStatus)
	c.mux = mux
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *ShardCoordinator) Handler() http.Handler { return c.mux }

// Start binds addr and serves in a background goroutine, returning the bound
// address (use "127.0.0.1:0" for an ephemeral port).
func (c *ShardCoordinator) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	c.listener = ln
	c.httpSrv = &http.Server{Handler: c.mux}
	go func() {
		c.httpSrv.Serve(ln)
		close(c.srvDone)
	}()
	return ln.Addr().String(), nil
}

// Shutdown closes the listener and waits for the accept loop to exit.
func (c *ShardCoordinator) Shutdown() error {
	if c.httpSrv == nil {
		return nil
	}
	err := c.httpSrv.Close()
	<-c.srvDone
	return err
}

// Status returns a progress snapshot.
func (c *ShardCoordinator) Status() ShardStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked()
}

func (c *ShardCoordinator) statusLocked() ShardStatus {
	nClaimed := 0
	for _, w := range c.claimed {
		if w != "" {
			nClaimed++
		}
	}
	return ShardStatus{
		Buckets:   c.buckets,
		Claimed:   nClaimed,
		Done:      c.nDone,
		Remaining: c.buckets - c.next,
	}
}

// handleClaim hands out the lowest never-claimed bucket, 204 when the space
// is exhausted. Buckets are never reissued — see the package comment for why
// crash tolerance lives in the merge, not here.
func (c *ShardCoordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	obsShardRequests.Inc1()
	var req doneRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid claim body: %v", err))
		return
	}
	c.mu.Lock()
	if c.next >= c.buckets {
		c.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	b := c.next
	c.next++
	worker := req.Worker
	if worker == "" {
		worker = r.RemoteAddr
	}
	c.claimed[b] = worker
	c.mu.Unlock()
	obsShardClaims.Inc1()
	writeJSON(w, http.StatusOK, ClaimResponse{Bucket: b, Buckets: c.buckets})
}

// handleDone records a finished bucket (idempotent).
func (c *ShardCoordinator) handleDone(w http.ResponseWriter, r *http.Request) {
	obsShardRequests.Inc1()
	var req doneRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid done body: %v", err))
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Bucket < 0 || req.Bucket >= c.buckets {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bucket %d out of range [0,%d)", req.Bucket, c.buckets))
		return
	}
	if c.claimed[req.Bucket] == "" {
		writeError(w, http.StatusConflict, fmt.Sprintf("bucket %d was never claimed", req.Bucket))
		return
	}
	if !c.done[req.Bucket] {
		c.done[req.Bucket] = true
		c.nDone++
		obsShardDones.Inc1()
	}
	writeJSON(w, http.StatusOK, struct {
		Remaining int `json:"remaining"`
	}{c.buckets - c.nDone})
}

// handleStatus serves the progress snapshot.
func (c *ShardCoordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	obsShardRequests.Inc1()
	c.mu.Lock()
	st := c.statusLocked()
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// ClaimBucket is the worker-side client of POST /v1/shard/claim against
// baseURL (e.g. "http://127.0.0.1:8419"). ok=false means the bucket space is
// exhausted and the worker should exit.
func ClaimBucket(baseURL, worker string) (claim ClaimResponse, ok bool, err error) {
	body, _ := json.Marshal(doneRequest{Worker: worker})
	resp, err := http.Post(baseURL+"/v1/shard/claim", "application/json", bytes.NewReader(body))
	if err != nil {
		return ClaimResponse{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return ClaimResponse{}, false, nil
	case http.StatusOK:
		if err := json.NewDecoder(resp.Body).Decode(&claim); err != nil {
			return ClaimResponse{}, false, fmt.Errorf("server: decode claim: %w", err)
		}
		return claim, true, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return ClaimResponse{}, false, fmt.Errorf("server: claim: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
}

// ReportDone is the worker-side client of POST /v1/shard/done.
func ReportDone(baseURL, worker string, bucket int) error {
	body, _ := json.Marshal(doneRequest{Worker: worker, Bucket: bucket})
	resp, err := http.Post(baseURL+"/v1/shard/done", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("server: done: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}
