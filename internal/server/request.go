package server

import (
	"fmt"
	"net/http"

	"capsim/internal/experiments"
	"capsim/internal/obs"
	"capsim/internal/ooo"
	"capsim/internal/tech"
	"capsim/internal/trace"
)

// ResponseSchema versions the POST /v1/run response document. Bump on
// breaking shape changes (same convention as obs.ManifestSchema).
const ResponseSchema = "capsim/run-response/v1"

// RunRequest is the POST /v1/run body. Every budget field is optional
// (pointer); an absent field inherits the server's base configuration, so a
// minimal request is just {"experiment":"fig10"}. The knobs mirror the
// capsim CLI flags one-for-one — the server is the CLI's experiment loop
// behind HTTP, nothing more.
type RunRequest struct {
	// Experiment is the registered experiment id (see GET /v1/experiments).
	Experiment string `json:"experiment"`

	// Budget overrides (CLI: -seed, -cache-refs, -cache-warm, -queue-instrs,
	// -interval, -switch-penalty, -feature).
	Seed          *uint64  `json:"seed,omitempty"`
	CacheRefs     *int64   `json:"cache_refs,omitempty"`
	CacheWarmRefs *int64   `json:"cache_warm,omitempty"`
	QueueInstrs   *int64   `json:"queue_instrs,omitempty"`
	IntervalInstr *int64   `json:"interval,omitempty"`
	SwitchPenalty *int     `json:"switch_penalty,omitempty"`
	Feature       *float64 `json:"feature,omitempty"`

	// Parallel overrides the sweep worker count for this request only
	// (context-scoped via sweep.WithWorkers; it never touches the process
	// default). 0/absent inherits the server's setting. Render-neutral.
	Parallel int `json:"parallel,omitempty"`

	// Onepass and QueueEngine, when present, must match the process-wide
	// settings the server was started with (trace materialization and the
	// issue-queue engine are process globals; both are render-neutral, so
	// there is nothing to gain from flipping them per request). A mismatch
	// is rejected with 422 rather than silently ignored.
	Onepass     *bool  `json:"onepass,omitempty"`
	QueueEngine string `json:"queue_engine,omitempty"`

	// TimeoutMS bounds this run's wall time; expiry cancels the sweep and
	// returns 504. 0/absent inherits the server's run timeout, if any.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// NoCache forces a fresh execution, bypassing (and not populating) the
	// response cache. For benchmarking the service itself.
	NoCache bool `json:"no_cache,omitempty"`

	// Stream switches the response to a live flight-recorder feed: NDJSON
	// ledger lines (or SSE under `Accept: text/event-stream`) with run
	// columns and sweep progress as they happen, terminated by a "result"
	// line carrying the ordinary RunResponse (or an in-band "error" line).
	// Streamed runs always execute fresh — events are the product, so the
	// response cache and request coalescing are bypassed like NoCache.
	Stream bool `json:"stream,omitempty"`
}

// httpError carries an HTTP status through the run pipeline to the handler.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

func unprocessable(format string, args ...any) *httpError {
	return &httpError{http.StatusUnprocessableEntity, fmt.Sprintf(format, args...)}
}

// resolve merges the request over the server's base configuration and
// validates the result. It returns the effective experiments.Config; request
// shape errors surface as 400 and semantic conflicts (unknown experiment,
// unrunnable budgets, process-global mismatches) as 422.
func (r *RunRequest) resolve(base experiments.Config) (experiments.Config, error) {
	if r.Experiment == "" {
		return base, badRequest("missing required field %q", "experiment")
	}
	if _, err := experiments.Title(r.Experiment); err != nil {
		return base, unprocessable("%v", err)
	}

	cfg := base
	if r.Seed != nil {
		cfg.Seed = *r.Seed
	}
	if r.CacheRefs != nil {
		cfg.CacheRefs = *r.CacheRefs
	}
	if r.CacheWarmRefs != nil {
		cfg.CacheWarmRefs = *r.CacheWarmRefs
	}
	if r.QueueInstrs != nil {
		cfg.QueueInstrs = *r.QueueInstrs
	}
	if r.IntervalInstr != nil {
		cfg.IntervalInstrs = *r.IntervalInstr
	}
	if r.SwitchPenalty != nil {
		cfg.PenaltyCycles = *r.SwitchPenalty
	}
	if r.Feature != nil {
		cfg.Feature = tech.FeatureSize(*r.Feature)
		cfg.CacheParams.Feature = cfg.Feature
	}
	if r.Parallel < 0 {
		return cfg, badRequest("parallel must be >= 0, got %d", r.Parallel)
	}
	if r.TimeoutMS < 0 {
		return cfg, badRequest("timeout_ms must be >= 0, got %d", r.TimeoutMS)
	}

	// Process-global knobs: accepted only when they agree with the running
	// process. Both are render-neutral (byte-identical output either way),
	// so a mismatch means the client wants a performance shape this server
	// instance cannot provide — tell it, don't pretend.
	if r.Onepass != nil && *r.Onepass != trace.Enabled() {
		return cfg, unprocessable(
			"onepass=%v conflicts with this server's process-wide setting (onepass=%v); output is byte-identical either way — restart the server with -onepass=%v if you need that execution strategy",
			*r.Onepass, trace.Enabled(), *r.Onepass)
	}
	if r.QueueEngine != "" {
		eng, err := ooo.ParseEngine(r.QueueEngine)
		if err != nil {
			return cfg, badRequest("%v", err)
		}
		if eng != ooo.DefaultEngine() {
			return cfg, unprocessable(
				"queue_engine=%q conflicts with this server's process-wide engine (%q); output is byte-identical either way — restart the server with -queue-engine %s if you need that engine",
				r.QueueEngine, ooo.DefaultEngine(), r.QueueEngine)
		}
	}

	if err := cfg.Validate(); err != nil {
		return cfg, unprocessable("%v", err)
	}
	return cfg, nil
}

// cacheKey canonicalizes the render-determining inputs of a run. Everything
// that changes the rendered bytes is in the key; everything render-neutral
// (parallel, timeout, onepass, queue engine — byte-identity is the repo's
// central contract) is deliberately out, so requests differing only in
// execution strategy share one cached response.
func cacheKey(id string, cfg experiments.Config) string {
	return id + "|" + cfg.CanonicalKey()
}

// ResolvedConfig echoes the effective run budgets in the response, so a
// client can reproduce the run from the response alone (CLI flag per field).
type ResolvedConfig struct {
	Seed          uint64  `json:"seed"`
	CacheRefs     int64   `json:"cache_refs"`
	CacheWarmRefs int64   `json:"cache_warm"`
	QueueInstrs   int64   `json:"queue_instrs"`
	IntervalInstr int64   `json:"interval"`
	SwitchPenalty int     `json:"switch_penalty"`
	Feature       float64 `json:"feature"`
}

func resolvedConfig(cfg experiments.Config) ResolvedConfig {
	return ResolvedConfig{
		Seed:          cfg.Seed,
		CacheRefs:     cfg.CacheRefs,
		CacheWarmRefs: cfg.CacheWarmRefs,
		QueueInstrs:   cfg.QueueInstrs,
		IntervalInstr: cfg.IntervalInstrs,
		SwitchPenalty: cfg.PenaltyCycles,
		Feature:       float64(cfg.Feature),
	}
}

// RunResponse is the POST /v1/run response body. Render carries the exact
// bytes the CLI prints for the same configuration (the serve-smoke CI target
// byte-compares the two), plus run-manifest-style metadata.
type RunResponse struct {
	Schema     string         `json:"schema"`
	Experiment string         `json:"experiment"`
	Title      string         `json:"title"`
	Render     string         `json:"render"`
	Cached     bool           `json:"cached"`
	WallNS     int64          `json:"wall_ns"`
	Generated  string         `json:"generated"`
	Build      obs.BuildInfo  `json:"build"`
	Parallel   int            `json:"parallel"`
	Onepass    bool           `json:"onepass"`
	QueueEng   string         `json:"queue_engine"`
	Config     ResolvedConfig `json:"config"`
}

// ErrorResponse is the JSON error envelope for every non-2xx status.
type ErrorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}
