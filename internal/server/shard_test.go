package server

import (
	"net/http/httptest"
	"sync"
	"testing"
)

func startCoordinator(t *testing.T, buckets int) (string, *ShardCoordinator) {
	t.Helper()
	c, err := NewShardCoordinator(buckets)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return srv.URL, c
}

func TestShardClaimDrainsBucketSpace(t *testing.T) {
	url, c := startCoordinator(t, 4)
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		claim, ok, err := ClaimBucket(url, "w0")
		if err != nil || !ok {
			t.Fatalf("claim %d: ok=%v err=%v", i, ok, err)
		}
		if claim.Buckets != 4 {
			t.Fatalf("claim.Buckets = %d, want 4", claim.Buckets)
		}
		if seen[claim.Bucket] {
			t.Fatalf("bucket %d issued twice", claim.Bucket)
		}
		seen[claim.Bucket] = true
		if err := ReportDone(url, "w0", claim.Bucket); err != nil {
			t.Fatalf("done %d: %v", claim.Bucket, err)
		}
	}
	// Space exhausted: ok=false, no error.
	if _, ok, err := ClaimBucket(url, "w0"); ok || err != nil {
		t.Fatalf("exhausted claim: ok=%v err=%v", ok, err)
	}
	st := c.Status()
	if st.Done != 4 || st.Remaining != 0 || st.Claimed != 4 {
		t.Errorf("status %+v, want all 4 claimed and done", st)
	}
}

// TestShardClaimConcurrent drives many workers claiming at once: every
// bucket must be issued exactly once across all of them (the partition
// disjointness the merge relies on, at the protocol layer).
func TestShardClaimConcurrent(t *testing.T) {
	const buckets, workers = 32, 8
	url, c := startCoordinator(t, buckets)
	var mu sync.Mutex
	counts := make([]int, buckets)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for {
				claim, ok, err := ClaimBucket(url, name)
				if err != nil {
					t.Errorf("worker %s: %v", name, err)
					return
				}
				if !ok {
					return
				}
				mu.Lock()
				counts[claim.Bucket]++
				mu.Unlock()
				if err := ReportDone(url, name, claim.Bucket); err != nil {
					t.Errorf("worker %s done %d: %v", name, claim.Bucket, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for b, n := range counts {
		if n != 1 {
			t.Errorf("bucket %d issued %d times, want exactly once", b, n)
		}
	}
	if st := c.Status(); st.Done != buckets {
		t.Errorf("done %d, want %d", st.Done, buckets)
	}
}

func TestShardDoneValidation(t *testing.T) {
	url, _ := startCoordinator(t, 2)
	// Done on a never-claimed bucket: conflict.
	if err := ReportDone(url, "w0", 1); err == nil {
		t.Error("done on unclaimed bucket accepted")
	}
	// Out of range: bad request.
	if err := ReportDone(url, "w0", 7); err == nil {
		t.Error("out-of-range bucket accepted")
	}
	claim, ok, err := ClaimBucket(url, "w0")
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	// Done is idempotent.
	for i := 0; i < 2; i++ {
		if err := ReportDone(url, "w0", claim.Bucket); err != nil {
			t.Fatalf("done (attempt %d): %v", i, err)
		}
	}
}

func TestNewShardCoordinatorValidates(t *testing.T) {
	if _, err := NewShardCoordinator(0); err == nil {
		t.Error("bucket count 0 accepted")
	}
}

func TestShardCoordinatorStartShutdown(t *testing.T) {
	c, err := NewShardCoordinator(1)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr
	if _, ok, err := ClaimBucket(url, "w0"); !ok || err != nil {
		t.Fatalf("claim over real listener: ok=%v err=%v", ok, err)
	}
	if err := c.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The listener is gone: further claims fail at the transport.
	if _, _, err := ClaimBucket(url, "w0"); err == nil {
		t.Error("claim succeeded after shutdown")
	}
}
