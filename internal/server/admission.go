package server

import (
	"context"
	"errors"
	"time"
)

// ErrBusy is returned by admission.acquire when every run slot is occupied
// and the queue-wait budget expires; handlers map it to HTTP 429.
var ErrBusy = errors.New("server: too many runs in flight")

// admission is the server's bounded in-flight controller: a counting
// semaphore over experiment executions plus a queue-wait budget. An
// experiment run can occupy every core for seconds, so unbounded concurrency
// would not make requests finish sooner — it would thrash the sweep pools
// and grow memory with materialized traces. Instead, at most `inFlight` runs
// execute at once; a request that cannot be admitted within `maxWait` is
// rejected with ErrBusy so the client can back off and retry (HTTP 429),
// which is cheaper for everyone than queueing unboundedly.
type admission struct {
	slots   chan struct{}
	maxWait time.Duration
}

// newAdmission builds a controller with `inFlight` slots (min 1) and the
// given queue-wait budget (<= 0 means reject immediately when full).
func newAdmission(inFlight int, maxWait time.Duration) *admission {
	if inFlight < 1 {
		inFlight = 1
	}
	return &admission{slots: make(chan struct{}, inFlight), maxWait: maxWait}
}

// acquire takes a run slot: immediately if one is free, otherwise waiting up
// to the queue-wait budget. It returns ErrBusy when the budget expires and
// ctx.Err() when the request is cancelled while queued. Every successful
// acquire must be paired with release.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.maxWait <= 0 {
		return ErrBusy
	}
	t := time.NewTimer(a.maxWait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-t.C:
		return ErrBusy
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot taken by acquire.
func (a *admission) release() { <-a.slots }

// inUse reports the currently occupied slot count (telemetry/health only).
func (a *admission) inUse() int { return len(a.slots) }
