package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"capsim/internal/experiments"
	"capsim/internal/flight"
)

// streamLines POSTs a streamed run and returns the status, Content-Type, raw
// body and parsed NDJSON lines.
func streamLines(t *testing.T, ts *httptest.Server, body, accept string) (int, string, string, []map[string]json.RawMessage) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	ct := resp.Header.Get("Content-Type")
	var raw strings.Builder
	var lines []map[string]json.RawMessage
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		raw.WriteString(line)
		raw.WriteByte('\n')
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// SSE framing: strip the data: prefix before JSON decoding.
		line = strings.TrimPrefix(line, "data: ")
		var m map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("non-JSON stream line %q: %v", line, err)
		}
		lines = append(lines, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, ct, raw.String(), lines
}

func lineType(t *testing.T, m map[string]json.RawMessage) string {
	t.Helper()
	var s string
	if err := json.Unmarshal(m["t"], &s); err != nil {
		t.Fatalf("line without t: %v", m)
	}
	return s
}

// A streamed run over the adaptive-policy study produces a parseable ledger
// feed — header, run columns with per-interval events and end summaries, all
// satisfying the ledger invariants — terminated by a result line whose render
// is byte-identical to the buffered response for the same configuration.
func TestStreamRunLedgerAndRender(t *testing.T) {
	// The in-process study memos elide recomputation (and with it, event
	// emission); start cold so the stream carries the actual run columns.
	experiments.ResetStudies()
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()

	code, ct, raw, lines := streamLines(t, ts, `{"experiment":"ablation-interval","stream":true}`, "")
	if code != http.StatusOK {
		t.Fatalf("streamed run: status %d", code)
	}
	if !strings.Contains(ct, "application/x-ndjson") {
		t.Fatalf("content type %q", ct)
	}
	if len(lines) < 3 {
		t.Fatalf("only %d stream lines", len(lines))
	}
	if lineType(t, lines[0]) != flight.LineHeader {
		t.Fatalf("first line is %q, want %q", lineType(t, lines[0]), flight.LineHeader)
	}
	var schema string
	json.Unmarshal(lines[0]["schema"], &schema)
	if schema != flight.Schema {
		t.Fatalf("stream schema %q", schema)
	}

	kinds := map[string]int{}
	for _, m := range lines {
		kinds[lineType(t, m)]++
	}
	if kinds[flight.LineRun] == 0 || kinds[flight.LineEvent] == 0 || kinds[flight.LineEnd] == 0 {
		t.Fatalf("stream lacks ledger lines: %v", kinds)
	}
	if kinds["result"] != 1 {
		t.Fatalf("want exactly one result line: %v", kinds)
	}
	if lineType(t, lines[len(lines)-1]) != "result" {
		t.Fatalf("stream does not end with result: %q", lineType(t, lines[len(lines)-1]))
	}

	// The pre-result portion is a verbatim ledger: parse it with the report
	// reader and re-check every column's invariants.
	l, err := flight.ParseLedger(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Runs) == 0 {
		t.Fatal("stream carried no run columns")
	}
	byKind := map[string]int{}
	for _, r := range l.Runs {
		byKind[r.Meta.Kind]++
		if err := flight.CheckRun(r.Meta, r.Events, r.End); err != nil {
			t.Errorf("column %s/%s trips: %v", r.Meta.Policy, r.Meta.Kind, err)
		}
	}
	// ablation-interval races the adaptive policy and runs both fixed
	// baselines per application.
	if byKind[flight.KindFixed] == 0 || byKind[flight.KindRace] == 0 {
		t.Fatalf("missing run kinds: %v", byKind)
	}

	var got RunResponse
	if err := json.Unmarshal(lines[len(lines)-1]["response"], &got); err != nil {
		t.Fatal(err)
	}
	if got.Cached {
		t.Error("streamed run reported cached")
	}

	// Buffered run of the same experiment renders the same bytes.
	code, buffered := post(t, ts, `{"experiment":"ablation-interval","no_cache":true}`)
	if code != http.StatusOK {
		t.Fatalf("buffered run: status %d: %s", code, buffered)
	}
	if want := decodeRun(t, buffered); got.Render != want.Render {
		t.Errorf("streamed render differs from buffered:\n--- stream ---\n%s\n--- buffered ---\n%s", got.Render, want.Render)
	}
}

// SSE negotiation wraps every line in data: frames.
func TestStreamSSE(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	req, err := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(`{"experiment":"fig1a","stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	data := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			t.Fatalf("non-SSE line %q", line)
		}
		data++
	}
	if data < 2 { // at least the ledger header and the result
		t.Fatalf("only %d SSE events", data)
	}
}

// A mid-stream client disconnect cancels the run: the runner observes the
// cancellation and in_flight returns to zero.
func TestStreamDisconnectCancels(t *testing.T) {
	started := make(chan struct{})
	canceled := make(chan struct{})
	srv := New(Options{
		Runner: func(ctx context.Context, id string, cfg experiments.Config) (experiments.Result, error) {
			close(started)
			<-ctx.Done()
			close(canceled)
			return experiments.Result{}, ctx.Err()
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run", strings.NewReader(`{"experiment":"fig1a","stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("run never started")
	}
	cancel() // client walks away mid-stream
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("disconnect did not cancel the run")
	}
	<-errc
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in_flight stuck at %d after disconnect", srv.InFlight())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Streamed errors arrive in-band: 200 header, terminal "error" line carrying
// the status mapErr would have chosen.
func TestStreamErrorInBand(t *testing.T) {
	srv := New(Options{
		Runner: func(ctx context.Context, id string, cfg experiments.Config) (experiments.Result, error) {
			return experiments.Result{}, context.DeadlineExceeded
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, _, _, lines := streamLines(t, ts, `{"experiment":"fig1a","stream":true}`, "")
	if code != http.StatusOK {
		t.Fatalf("status %d (stream errors are in-band)", code)
	}
	last := lines[len(lines)-1]
	if lineType(t, last) != "error" {
		t.Fatalf("want terminal error line, got %q", lineType(t, last))
	}
	var status int
	json.Unmarshal(last["status"], &status)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("in-band status %d, want 504", status)
	}
}

// Streaming bypasses the response cache and coalescing: every streamed run
// executes, and none populates the cache a buffered request would hit.
func TestStreamBypassesCache(t *testing.T) {
	var runs atomic.Int32
	srv := New(Options{
		Runner: func(ctx context.Context, id string, cfg experiments.Config) (experiments.Result, error) {
			runs.Add(1)
			return fakeResult(id)
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		code, _, _, lines := streamLines(t, ts, `{"experiment":"fig1a","stream":true}`, "")
		if code != http.StatusOK || len(lines) == 0 {
			t.Fatalf("stream %d failed: %d", i, code)
		}
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("streamed runs executed %d times, want 2", got)
	}
	// A buffered request afterwards still computes fresh (cache untouched).
	code, b := post(t, ts, `{"experiment":"fig1a"}`)
	if code != http.StatusOK {
		t.Fatalf("buffered: %d %s", code, b)
	}
	if rr := decodeRun(t, b); rr.Cached {
		t.Error("buffered run hit a cache the streams should not have populated")
	}
	if got := runs.Load(); got != 3 {
		t.Fatalf("total runs %d, want 3", got)
	}
}
