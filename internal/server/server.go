// Package server is the experiment-as-a-service layer: a small HTTP JSON API
// that executes any registered experiment with per-request budgets and
// streams back the byte-identical render the CLI would produce, plus
// run-manifest metadata.
//
//	GET  /v1/experiments   registered experiment ids and titles
//	POST /v1/run           execute one experiment (RunRequest -> RunResponse)
//	GET  /healthz          liveness + admission/drain state
//	/metrics, /debug/vars  the obs live-telemetry surface (obs.Handler)
//
// The service exists because an experiment run is heavy — a single POST can
// occupy every core for seconds — so the server's job is mostly to say "not
// yet" correctly:
//
//   - Admission control bounds in-flight runs (semaphore + queue-wait
//     budget); an inadmissible request gets 429 and backs off.
//   - Per-request deadlines and client disconnects cancel the underlying
//     sweep via context — workers stop claiming simulation jobs.
//   - Identical concurrent requests coalesce (singleflight) and completed
//     responses are cached in a bounded LRU keyed by the render-determining
//     configuration, so a dashboard refreshing fig10 costs one simulation.
//   - Shutdown drains: new runs get 503, in-flight runs finish within the
//     grace period, then the root context cancels whatever remains.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"capsim/internal/experiments"
	"capsim/internal/memo"
	"capsim/internal/obs"
	"capsim/internal/ooo"
	"capsim/internal/sweep"
	"capsim/internal/trace"
)

// Telemetry (internal/obs): request-level counters and the in-flight gauge.
var (
	obsRequests  = obs.NewCounter("server.requests")
	obsRunOK     = obs.NewCounter("server.run_ok")
	obsRunErrors = obs.NewCounter("server.run_errors")
	obsCacheHits = obs.NewCounter("server.cache_hits")
	obsBusy      = obs.NewCounter("server.rejected_busy")
	obsDraining  = obs.NewCounter("server.rejected_draining")
	obsInFlight  = obs.NewGauge("server.in_flight")
	obsLatency   = obs.NewHistogram("server.latency_ns")
)

// maxRequestBody bounds the POST /v1/run body; the schema is a handful of
// scalars, so anything larger is a client bug, not a bigger experiment.
const maxRequestBody = 1 << 16

// Runner executes one experiment; it exists so tests can inject slow,
// failing, or cancellation-observing stand-ins for experiments.RunCtx.
type Runner func(ctx context.Context, id string, cfg experiments.Config) (experiments.Result, error)

// Options configures a Server. The zero value is usable: defaults are
// filled in by New.
type Options struct {
	// BaseConfig is the configuration a request's absent fields inherit.
	// Zero value means experiments.DefaultConfig().
	BaseConfig experiments.Config

	// MaxInFlight bounds concurrently executing runs (default 2). One run
	// can already saturate the machine via its sweep pool; stacking more
	// trades latency for nothing.
	MaxInFlight int

	// QueueWait is how long an inadmissible request may wait for a slot
	// before 429 (default 2s; negative means reject immediately).
	QueueWait time.Duration

	// RunTimeout bounds any single run's wall time (0 = unbounded). A
	// request's timeout_ms can only tighten it, never extend it.
	RunTimeout time.Duration

	// CacheEntries bounds the response cache (default 64, <0 disables
	// caching). The study-pass memos underneath are bounded separately by
	// the caller (experiments.SetStudyCacheCap).
	CacheEntries int

	// MaxParallel caps a request's parallel override (default
	// sweep.DefaultWorkers(); requests asking for more are clamped, not
	// rejected — worker count is render-neutral).
	MaxParallel int

	// Runner executes experiments (default experiments.RunCtx). Tests
	// inject doubles here.
	Runner Runner
}

// Server is the experiment API service. Create with New, attach with
// Handler (tests) or Start (production), stop with Shutdown.
type Server struct {
	opt      Options
	adm      *admission
	cache    *memo.Memo[string, *RunResponse]
	mux      *http.ServeMux
	build    obs.BuildInfo
	draining atomic.Bool

	// root is cancelled when the drain grace period expires, releasing any
	// in-flight runs that outlive the drain.
	root       context.Context
	rootCancel context.CancelFunc

	httpSrv  *http.Server
	listener net.Listener
	done     chan struct{} // closed when the accept loop exits
	serveErr error         // set before done closes
}

// New builds a Server from opt, filling defaults for zero fields.
func New(opt Options) *Server {
	if opt.BaseConfig == (experiments.Config{}) {
		opt.BaseConfig = experiments.DefaultConfig()
	}
	if opt.MaxInFlight <= 0 {
		opt.MaxInFlight = 2
	}
	if opt.QueueWait == 0 {
		opt.QueueWait = 2 * time.Second
	}
	if opt.CacheEntries == 0 {
		opt.CacheEntries = 64
	}
	if opt.MaxParallel <= 0 {
		opt.MaxParallel = sweep.DefaultWorkers()
	}
	if opt.Runner == nil {
		opt.Runner = experiments.RunCtx
	}
	root, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:        opt,
		adm:        newAdmission(opt.MaxInFlight, opt.QueueWait),
		build:      obs.ReadBuildInfo(),
		root:       root,
		rootCancel: cancel,
		done:       make(chan struct{}),
	}
	if opt.CacheEntries > 0 {
		s.cache = &memo.Memo[string, *RunResponse]{}
		s.cache.SetCap(opt.CacheEntries)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/experiments", s.handleList)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	obsMux := obs.Handler()
	mux.Handle("/metrics", obsMux)
	mux.Handle("/debug/vars", obsMux)
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler (httptest attaches here).
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (e.g. ":8418" or "127.0.0.1:0") and serves in a
// background goroutine, returning the bound address. Call Shutdown to stop.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.listener = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go func() {
		s.serveErr = s.httpSrv.Serve(ln)
		close(s.done)
	}()
	return ln.Addr().String(), nil
}

// Shutdown drains the service: the draining flag flips (new POST /v1/run
// gets 503 immediately), the listener closes, and in-flight runs are given
// until ctx expires to finish — at which point the root context cancels and
// their sweeps stop claiming jobs. Safe to call more than once; a Server
// that was never Started just flips the flag and cancels.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Cancel in-flight runs a margin *before* the grace expires, so their
	// error responses can still flush over connections the HTTP drain below
	// is waiting on. Cancelling exactly at the deadline would race the
	// drain itself: the run's 503 and Shutdown's give-up land at the same
	// instant and the response is lost.
	cancelCtx := ctx
	if dl, ok := ctx.Deadline(); ok {
		margin := time.Until(dl) / 5
		if margin > time.Second {
			margin = time.Second
		}
		if margin > 0 {
			var cc context.CancelFunc
			cancelCtx, cc = context.WithDeadline(context.Background(), dl.Add(-margin))
			defer cc()
		}
	}
	stop := context.AfterFunc(cancelCtx, s.rootCancel)
	defer stop()
	defer s.rootCancel()
	if s.httpSrv == nil {
		return nil
	}
	err := s.httpSrv.Shutdown(ctx)
	if err != nil {
		// Grace expired with responses still in flight: the root cancel
		// above is already stopping their sweeps; force-close the
		// connections rather than hang.
		s.rootCancel()
		s.httpSrv.Close()
	}
	select {
	case <-s.done:
		if err == nil && s.serveErr != nil && !errors.Is(s.serveErr, http.ErrServerClosed) {
			err = s.serveErr
		}
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// InFlight reports currently executing runs (health/tests).
func (s *Server) InFlight() int { return s.adm.inUse() }

// handleList serves GET /v1/experiments.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	obsRequests.Inc1()
	type item struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	ids := experiments.IDs()
	out := struct {
		Experiments []item `json:"experiments"`
	}{Experiments: make([]item, 0, len(ids))}
	for _, id := range ids {
		title, _ := experiments.Title(id)
		out.Experiments = append(out.Experiments, item{id, title})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealth serves GET /healthz: liveness plus admission and drain state.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	st := struct {
		Status   string `json:"status"`
		InFlight int    `json:"in_flight"`
		MaxRuns  int    `json:"max_in_flight"`
		Draining bool   `json:"draining"`
	}{"ok", s.adm.inUse(), s.opt.MaxInFlight, s.draining.Load()}
	code := http.StatusOK
	if st.Draining {
		st.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

// handleRun serves POST /v1/run: decode, resolve, execute (via cache /
// singleflight / admission), respond.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	obsRequests.Inc1()
	t0 := time.Now()
	defer func() { obsLatency.Observe(time.Since(t0).Nanoseconds()) }()

	if s.draining.Load() {
		obsDraining.Inc1()
		writeError(w, http.StatusServiceUnavailable, "server is draining; retry against another instance")
		return
	}

	var req RunRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return
	}
	cfg, err := req.resolve(s.opt.BaseConfig)
	if err != nil {
		var he *httpError
		if errors.As(err, &he) {
			writeError(w, he.status, he.msg)
		} else {
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}

	if req.Stream {
		s.handleStream(w, r, &req, cfg)
		return
	}

	sp := obs.StartSpan("server.run:"+req.Experiment, 0)
	resp, err := s.execute(r.Context(), &req, cfg)
	if err != nil {
		obsRunErrors.Inc1()
		status, msg := s.mapErr(err)
		sp.End(obs.Arg{K: "err", V: msg}, obs.Arg{K: "status", V: status})
		writeError(w, status, msg)
		return
	}
	obsRunOK.Inc1()
	sp.End(obs.Arg{K: "cached", V: resp.Cached})
	writeJSON(w, http.StatusOK, resp)
}

// execute runs the resolved request through the cache + singleflight +
// admission pipeline and returns the response.
//
// Admission is taken inside the singleflight compute function, so N
// identical concurrent requests consume one run slot between them — they are
// one simulation. Failed computes are never memoized (Forget on error): a
// failure belongs to the request that suffered it (timeout, drain, transient
// budget problem), not to the configuration.
func (s *Server) execute(reqCtx context.Context, req *RunRequest, cfg experiments.Config) (*RunResponse, error) {
	// Request context: client disconnect ∧ server drain-expiry ∧ deadline,
	// plus the context-scoped worker override (concurrent requests with
	// different parallel settings never race a process global). Shared with
	// the streaming path (stream.go).
	ctx, cleanup := s.runCtx(reqCtx, req)
	defer cleanup()

	if s.cache == nil || req.NoCache {
		return s.compute(ctx, req.Experiment, cfg)
	}

	key := cacheKey(req.Experiment, cfg)
	for {
		computed := false
		resp, err := s.cache.Do(key, func() (*RunResponse, error) {
			computed = true
			return s.compute(ctx, req.Experiment, cfg)
		})
		switch {
		case err != nil:
			// Never memoize failures; and if the failure was another
			// request's cancellation, retry under our own live context.
			s.cache.Forget(key)
			if isCtxErr(err) && ctx.Err() == nil {
				continue
			}
			return nil, err
		case computed:
			return resp, nil
		default:
			obsCacheHits.Inc1()
			// Cached flag goes on a copy: the memoized response is shared
			// across requests and must stay immutable.
			c := *resp
			c.Cached = true
			return &c, nil
		}
	}
}

// compute performs one admitted experiment run and builds its response.
func (s *Server) compute(ctx context.Context, id string, cfg experiments.Config) (*RunResponse, error) {
	if err := s.adm.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.adm.release()
	obsInFlight.Add(1)
	defer obsInFlight.Add(-1)

	t0 := time.Now()
	res, err := s.opt.Runner(ctx, id, cfg)
	if err != nil {
		return nil, err
	}
	title, _ := experiments.Title(id)
	if title == "" {
		title = res.Title
	}
	return &RunResponse{
		Schema:     ResponseSchema,
		Experiment: id,
		Title:      title,
		Render:     res.Render(),
		WallNS:     time.Since(t0).Nanoseconds(),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Build:      s.build,
		Parallel:   s.effectiveWorkers(ctx),
		Onepass:    trace.Enabled(),
		QueueEng:   ooo.DefaultEngine().String(),
		Config:     resolvedConfig(cfg),
	}, nil
}

// effectiveWorkers reports the sweep worker count this run executed with.
func (s *Server) effectiveWorkers(ctx context.Context) int {
	if n := sweep.CtxWorkers(ctx); n > 0 {
		return n
	}
	return sweep.DefaultWorkers()
}

// mapErr translates pipeline errors to HTTP status codes.
func (s *Server) mapErr(err error) (int, string) {
	switch {
	case errors.Is(err, ErrBusy):
		obsBusy.Inc1()
		return http.StatusTooManyRequests,
			fmt.Sprintf("all %d run slots busy and queue-wait budget expired; back off and retry", s.opt.MaxInFlight)
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "run exceeded its deadline and was cancelled"
	case errors.Is(err, context.Canceled):
		if s.draining.Load() {
			return http.StatusServiceUnavailable, "run cancelled: server drain grace period expired"
		}
		return http.StatusInternalServerError, "run cancelled"
	default:
		var he *httpError
		if errors.As(err, &he) {
			return he.status, he.msg
		}
		return http.StatusInternalServerError, err.Error()
	}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Status: status})
}
