package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"capsim/internal/experiments"
	"capsim/internal/flight"
	"capsim/internal/obs"
	"capsim/internal/sweep"
)

// This file is the live run feed behind POST /v1/run {"stream": true}: the
// flight recorder's ledger lines (run columns, sweep progress) pushed to the
// client as the experiment computes, terminated by a "result" line carrying
// the ordinary RunResponse. The stream speaks NDJSON by default and SSE when
// the client asks (`Accept: text/event-stream`), so both `curl | jq` and
// EventSource dashboards work.
//
// Contract notes:
//
//   - The recorder is installed per-request via flight.WithCollector, so
//     concurrent streamed runs never interleave events; the process-wide
//     -ledger-out collector (if any) still sees every run.
//   - Streamed runs bypass the response cache AND singleflight: the events
//     are the product, and a coalesced run would deliver them to whichever
//     request computed first. Admission control still applies — a streamed
//     run occupies a run slot like any other.
//   - Client disconnect cancels the run through the same context plumbing as
//     the buffered path (request context ∧ drain-expiry ∧ timeout); a write
//     failure additionally quiets the collector so a dead client costs no
//     further encoding.
//   - Errors after the 200 header are in-band: a terminal "error" line with
//     the same status code mapErr would have chosen.

var obsStreams = obs.NewCounter("server.streams") // streamed runs started

// streamSink adapts an http.ResponseWriter into a flight.Sink, flushing
// after every write so events reach the client as they happen.
type streamSink struct {
	mu    sync.Mutex
	w     io.Writer
	flush func()
	sse   bool
}

// WriteRun implements flight.Sink.
func (s *streamSink) WriteRun(run int64, meta flight.RunMeta, events []flight.Event, end flight.RunEnd) error {
	var buf bytes.Buffer
	if err := flight.EncodeRun(&buf, run, meta, events, end); err != nil {
		return err
	}
	return s.emit(buf.Bytes())
}

// WriteProgress implements flight.Sink.
func (s *streamSink) WriteProgress(p flight.Progress) error {
	var buf bytes.Buffer
	if err := flight.EncodeProgress(&buf, p); err != nil {
		return err
	}
	return s.emit(buf.Bytes())
}

// emit writes one or more NDJSON lines to the client, wrapping each as an
// SSE data event when negotiated, and flushes.
func (s *streamSink) emit(lines []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.sse {
		for _, line := range bytes.Split(bytes.TrimRight(lines, "\n"), []byte("\n")) {
			if _, err = fmt.Fprintf(s.w, "data: %s\n\n", line); err != nil {
				break
			}
		}
	} else {
		_, err = s.w.Write(lines)
	}
	if s.flush != nil {
		s.flush()
	}
	return err
}

// emitJSON marshals v as one ledger-style line ({"t": t, ...payload}).
func (s *streamSink) emitJSON(v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return s.emit(append(buf, '\n'))
}

// handleStream serves a {"stream": true} run: 200 + event feed + terminal
// result/error line.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, req *RunRequest, cfg experiments.Config) {
	obsStreams.Inc1()
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)

	sink := &streamSink{w: w, sse: sse}
	if f, ok := w.(http.Flusher); ok {
		sink.flush = f.Flush
	}

	// The versioned header line opens the stream (same shape as a ledger
	// file, so `capsim -report` parses a saved stream verbatim).
	var hdr bytes.Buffer
	if err := flight.EncodeHeader(&hdr, time.Now().UTC().Format(time.RFC3339)); err == nil {
		sink.emit(hdr.Bytes())
	}

	ctx, cleanup := s.runCtx(r.Context(), req)
	defer cleanup()
	collector := flight.NewCollector(sink)
	ctx = flight.WithCollector(ctx, collector)

	sp := obs.StartSpan("server.stream:"+req.Experiment, 0)
	resp, err := s.compute(ctx, req.Experiment, cfg)
	if err != nil {
		obsRunErrors.Inc1()
		status, msg := s.mapErr(err)
		sp.End(obs.Arg{K: "err", V: msg}, obs.Arg{K: "status", V: status})
		sink.emitJSON(struct {
			T      string `json:"t"`
			Error  string `json:"error"`
			Status int    `json:"status"`
		}{T: "error", Error: msg, Status: status})
		return
	}
	obsRunOK.Inc1()
	sp.End(obs.Arg{K: "cached", V: false})
	sink.emitJSON(struct {
		T        string       `json:"t"`
		Response *RunResponse `json:"response"`
	}{T: "result", Response: resp})
}

// runCtx assembles a run's execution context — client disconnect ∧ server
// drain-expiry ∧ timeout, plus the per-request worker override — shared by
// the buffered and streaming paths. The returned cleanup releases every
// layer; call it when the run is done.
func (s *Server) runCtx(reqCtx context.Context, req *RunRequest) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(reqCtx)
	stop := context.AfterFunc(s.root, cancel)
	timeout := s.opt.RunTimeout
	if d := time.Duration(req.TimeoutMS) * time.Millisecond; d > 0 && (timeout == 0 || d < timeout) {
		timeout = d
	}
	tcancel := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, tcancel = context.WithTimeout(ctx, timeout)
	}
	workers := req.Parallel
	if workers > s.opt.MaxParallel {
		workers = s.opt.MaxParallel
	}
	if workers > 0 {
		ctx = sweep.WithWorkers(ctx, workers)
	}
	return ctx, func() {
		tcancel()
		stop()
		cancel()
	}
}
