package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"capsim/internal/experiments"
	"capsim/internal/metrics"
)

// post sends a RunRequest body to the test server and decodes the response.
func post(t *testing.T, ts *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b
}

func decodeRun(t *testing.T, b []byte) RunResponse {
	t.Helper()
	var rr RunResponse
	if err := json.Unmarshal(b, &rr); err != nil {
		t.Fatalf("decode RunResponse: %v\n%s", err, b)
	}
	return rr
}

// fakeResult builds a minimal deterministic experiment result.
func fakeResult(id string) (experiments.Result, error) {
	return experiments.Result{
		ID:    id,
		Title: "fake " + id,
		Figures: []metrics.Figure{{
			ID: id, Title: "fake", XLabel: "x", YLabel: "y",
			Series: []metrics.Series{{Name: "s", X: []float64{1, 2}, Y: []float64{3, 4}}},
		}},
	}, nil
}

// TestListExperiments: GET /v1/experiments returns every registered id.
func TestListExperiments(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Experiments []struct{ ID, Title string } `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	want := experiments.IDs()
	if len(out.Experiments) != len(want) {
		t.Fatalf("got %d experiments, want %d", len(out.Experiments), len(want))
	}
	for i, e := range out.Experiments {
		if e.ID != want[i] {
			t.Errorf("experiment[%d] = %q, want %q", i, e.ID, want[i])
		}
	}
}

// TestRunRenderMatchesCLI is the tentpole contract: the render field of
// POST /v1/run is byte-identical to what experiments.Run produces for the
// same configuration (which is exactly what the CLI prints). fig1a is pure
// closed-form math, so the test is fast.
func TestRunRenderMatchesCLI(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()

	want, err := experiments.Run("fig1a", experiments.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	code, b := post(t, ts, `{"experiment":"fig1a"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, b)
	}
	rr := decodeRun(t, b)
	if rr.Render != want.Render() {
		t.Errorf("render differs from CLI:\n--- api ---\n%s\n--- cli ---\n%s", rr.Render, want.Render())
	}
	if rr.Schema != ResponseSchema {
		t.Errorf("schema = %q, want %q", rr.Schema, ResponseSchema)
	}
	if rr.Cached {
		t.Error("first run reported cached")
	}
	if rr.Config.Seed != experiments.DefaultConfig().Seed {
		t.Errorf("config echo seed = %d", rr.Config.Seed)
	}
}

// TestRunValidation covers the request-shape rejections.
func TestRunValidation(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	cases := []struct {
		name, body string
		want       int
	}{
		{"missing experiment", `{}`, http.StatusBadRequest},
		{"unknown experiment", `{"experiment":"fig99"}`, http.StatusUnprocessableEntity},
		{"bad json", `{"experiment":`, http.StatusBadRequest},
		{"unknown field", `{"experiment":"fig1a","bogus":1}`, http.StatusBadRequest},
		{"negative parallel", `{"experiment":"fig1a","parallel":-1}`, http.StatusBadRequest},
		{"tiny budget", `{"experiment":"fig10","cache_refs":10}`, http.StatusUnprocessableEntity},
		{"bad engine", `{"experiment":"fig1a","queue_engine":"vliw"}`, http.StatusBadRequest},
		{"onepass mismatch", `{"experiment":"fig1a","onepass":false}`, http.StatusUnprocessableEntity},
		{"engine mismatch", `{"experiment":"fig1a","queue_engine":"scan"}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, b := post(t, ts, tc.body)
			if code != tc.want {
				t.Fatalf("status %d, want %d: %s", code, tc.want, b)
			}
			var er ErrorResponse
			if err := json.Unmarshal(b, &er); err != nil || er.Error == "" {
				t.Fatalf("error envelope missing: %s", b)
			}
		})
	}
}

// TestCacheAndSingleflight: N identical concurrent requests execute the
// experiment once and receive byte-identical responses; a later request is
// served from cache with Cached=true; no_cache forces a re-run.
func TestCacheAndSingleflight(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	s := New(Options{
		MaxInFlight: 1,
		Runner: func(ctx context.Context, id string, cfg experiments.Config) (experiments.Result, error) {
			runs.Add(1)
			<-release
			return fakeResult(id)
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 4
	codes := make([]int, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], bodies[i] = post(t, ts, `{"experiment":"fig10"}`)
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let all four coalesce on one flight
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("runner executed %d times for identical concurrent requests, want 1", got)
	}
	var renders []string
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		renders = append(renders, decodeRun(t, bodies[i]).Render)
	}
	for i := 1; i < n; i++ {
		if renders[i] != renders[0] {
			t.Errorf("request %d render differs from request 0", i)
		}
	}

	// A later identical request is a cache hit.
	code, b := post(t, ts, `{"experiment":"fig10"}`)
	if code != http.StatusOK {
		t.Fatalf("cached request: status %d", code)
	}
	if rr := decodeRun(t, b); !rr.Cached {
		t.Error("expected cached response")
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("cache hit re-ran the experiment (%d runs)", got)
	}

	// no_cache bypasses both lookup and population.
	code, b = post(t, ts, `{"experiment":"fig10","no_cache":true}`)
	if code != http.StatusOK {
		t.Fatalf("no_cache request: status %d: %s", code, b)
	}
	if rr := decodeRun(t, b); rr.Cached {
		t.Error("no_cache response claims cached")
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("no_cache did not re-run (%d runs)", got)
	}
}

// TestAdmission429: with one slot occupied and no queue-wait budget, a
// request for a *different* configuration is rejected with 429.
func TestAdmission429(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s := New(Options{
		MaxInFlight: 1,
		QueueWait:   -1, // reject immediately when full
		Runner: func(ctx context.Context, id string, cfg experiments.Config) (experiments.Result, error) {
			close(started)
			<-release
			return fakeResult(id)
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	errc := make(chan error, 1)
	go func() {
		code, b := post(t, ts, `{"experiment":"fig10","seed":1}`)
		if code != http.StatusOK {
			errc <- fmt.Errorf("occupier: status %d: %s", code, b)
			return
		}
		errc <- nil
	}()
	<-started
	if got := s.InFlight(); got != 1 {
		t.Errorf("InFlight = %d, want 1", got)
	}
	code, b := post(t, ts, `{"experiment":"fig10","seed":2}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", code, b)
	}
	var er ErrorResponse
	if err := json.Unmarshal(b, &er); err != nil || !strings.Contains(er.Error, "busy") {
		t.Errorf("429 envelope: %s", b)
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestRunTimeout504: a run exceeding its request deadline is cancelled and
// mapped to 504, and the failure is not memoized — a retry succeeds.
func TestRunTimeout504(t *testing.T) {
	var calls atomic.Int64
	s := New(Options{
		Runner: func(ctx context.Context, id string, cfg experiments.Config) (experiments.Result, error) {
			if calls.Add(1) == 1 {
				<-ctx.Done() // simulate a sweep observing cancellation
				return experiments.Result{}, ctx.Err()
			}
			return fakeResult(id)
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, b := post(t, ts, `{"experiment":"fig10","timeout_ms":30}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", code, b)
	}
	// The timeout must not poison the cache entry for this configuration.
	code, b = post(t, ts, `{"experiment":"fig10"}`)
	if code != http.StatusOK {
		t.Fatalf("retry after timeout: status %d: %s", code, b)
	}
	if rr := decodeRun(t, b); rr.Cached {
		t.Error("retry reported cached — the failed compute was memoized")
	}
}

// TestForeignCancellationRetry: request A (tight deadline) starts the
// compute; request B joins the same flight. A's deadline cancels the shared
// compute, but B's context is still live, so B retries under its own
// context and succeeds instead of inheriting A's cancellation.
func TestForeignCancellationRetry(t *testing.T) {
	var calls atomic.Int64
	inFirst := make(chan struct{})
	s := New(Options{
		Runner: func(ctx context.Context, id string, cfg experiments.Config) (experiments.Result, error) {
			if calls.Add(1) == 1 {
				close(inFirst)
				<-ctx.Done()
				return experiments.Result{}, ctx.Err()
			}
			return fakeResult(id)
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	go func() { // request A; its own outcome (504) is not under test here
		resp, err := http.Post(ts.URL+"/v1/run", "application/json",
			strings.NewReader(`{"experiment":"fig10","timeout_ms":50}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-inFirst
	code, b := post(t, ts, `{"experiment":"fig10"}`) // request B joins A's flight
	if code != http.StatusOK {
		t.Fatalf("request B inherited A's cancellation: status %d: %s", code, b)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("runner calls = %d, want 2 (A's cancelled compute + B's retry)", got)
	}
}

// TestDrain: during Shutdown new runs get 503 immediately, an in-flight run
// whose grace expires is cancelled (503 under drain), and /healthz flips to
// draining.
func TestDrain(t *testing.T) {
	started := make(chan struct{})
	s := New(Options{
		Runner: func(ctx context.Context, id string, cfg experiments.Config) (experiments.Result, error) {
			close(started)
			<-ctx.Done() // a well-behaved sweep: stops when cancelled
			return experiments.Result{}, ctx.Err()
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type res struct {
		code int
		body []byte
	}
	inflight := make(chan res, 1)
	go func() {
		code, b := post(t, ts, `{"experiment":"fig10"}`)
		inflight <- res{code, b}
	}()
	<-started

	// Drain with a short grace: the stuck run must be cancelled.
	sctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(sctx) }()

	// New runs during the drain are rejected immediately.
	deadline := time.After(2 * time.Second)
	for {
		code, _ := post(t, ts, `{"experiment":"fig10","seed":9}`)
		if code == http.StatusServiceUnavailable {
			break
		}
		select {
		case <-deadline:
			t.Fatal("drain never started rejecting new runs")
		case <-time.After(5 * time.Millisecond):
		}
	}

	r := <-inflight
	if r.code != http.StatusServiceUnavailable {
		t.Errorf("in-flight run after grace expiry: status %d, want 503: %s", r.code, r.body)
	}
	if err := <-done; err != nil && err != context.DeadlineExceeded {
		t.Errorf("Shutdown: %v", err)
	}

	// healthz reports draining.
	resp, err := http.Get(ts.URL + "/healthz")
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/healthz status %d, want 503 while draining", resp.StatusCode)
		}
	}
}

// TestStartShutdown exercises the real listener path end-to-end.
func TestStartShutdown(t *testing.T) {
	s := New(Options{})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestParallelOverrideEcho: the response reports the clamped worker count.
func TestParallelOverrideEcho(t *testing.T) {
	s := New(Options{
		MaxParallel: 2,
		Runner: func(ctx context.Context, id string, cfg experiments.Config) (experiments.Result, error) {
			return fakeResult(id)
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, b := post(t, ts, `{"experiment":"fig10","parallel":64}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, b)
	}
	if rr := decodeRun(t, b); rr.Parallel != 2 {
		t.Errorf("parallel echo = %d, want clamp to 2", rr.Parallel)
	}
}

// TestResponseImmutable: mutating one response must not leak into another
// request's view of the cached entry (the Cached flag is set on a copy).
func TestResponseImmutable(t *testing.T) {
	s := New(Options{Runner: func(ctx context.Context, id string, cfg experiments.Config) (experiments.Result, error) {
		return fakeResult(id)
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_, first := post(t, ts, `{"experiment":"fig10"}`)
	_, second := post(t, ts, `{"experiment":"fig10"}`)
	rr1, rr2 := decodeRun(t, first), decodeRun(t, second)
	if rr1.Cached {
		t.Error("first response cached")
	}
	if !rr2.Cached {
		t.Error("second response not cached")
	}
	if rr1.Render != rr2.Render || !bytes.Equal([]byte(rr1.Render), []byte(rr2.Render)) {
		t.Error("cached render differs")
	}
}
