package bpred

import (
	"testing"

	"capsim/internal/tech"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	bad := DefaultParams()
	bad.MaxEntries = 3000
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two max accepted")
	}
	bad = DefaultParams()
	bad.MinEntries = bad.MaxEntries * 2
	if err := bad.Validate(); err == nil {
		t.Error("min > max accepted")
	}
}

func TestSizes(t *testing.T) {
	p := DefaultParams()
	sizes := p.Sizes()
	if len(sizes) != 5 { // 1K, 2K, 4K, 8K, 16K
		t.Fatalf("sizes %v", sizes)
	}
	if sizes[0] != 1024 || sizes[4] != 16*1024 {
		t.Errorf("sizes %v", sizes)
	}
}

func TestPredictLearnsBias(t *testing.T) {
	pr := MustNew(DefaultParams(), 1024)
	// An always-taken branch must converge to ~0 mispredictions.
	for i := 0; i < 100; i++ {
		pr.Predict(0x1000, true)
	}
	pr.ResetStats()
	for i := 0; i < 1000; i++ {
		pr.Predict(0x1000, true)
	}
	if r := pr.Stats().MispredictRate(); r > 0.01 {
		t.Errorf("always-taken mispredict rate %v", r)
	}
}

func TestPredictLearnsLoopPattern(t *testing.T) {
	// A loop branch (T T T N repeating) with gshare history should be
	// predicted well once warmed, far better than the 25% a bias-only
	// predictor would manage on the not-taken arm.
	pr := MustNew(DefaultParams(), 4096)
	seq := func(i int) bool { return i%4 != 3 }
	for i := 0; i < 4000; i++ {
		pr.Predict(0x2000, seq(i))
	}
	pr.ResetStats()
	for i := 4000; i < 12000; i++ {
		pr.Predict(0x2000, seq(i))
	}
	if r := pr.Stats().MispredictRate(); r > 0.10 {
		t.Errorf("loop-pattern mispredict rate %v, want < 0.10", r)
	}
}

func TestLargerTableReducesAliasing(t *testing.T) {
	// Many static branches alias in a small table; accuracy must improve
	// monotonically (within noise) with active size.
	p := DefaultParams()
	rate := func(active int) float64 {
		pr := MustNew(p, active)
		g := NewBranchGen(7, 1200, 0.3)
		for i := 0; i < 100000; i++ { // warm
			pc, taken := g.Next()
			pr.Predict(pc, taken)
		}
		pr.ResetStats()
		for i := 0; i < 120000; i++ {
			pc, taken := g.Next()
			pr.Predict(pc, taken)
		}
		return pr.Stats().MispredictRate()
	}
	small, large := rate(1024), rate(16*1024)
	if large >= small {
		t.Errorf("16K-entry rate %v not better than 1K-entry %v", large, small)
	}
}

func TestResizePreservesState(t *testing.T) {
	pr := MustNew(DefaultParams(), 16*1024)
	for i := 0; i < 200; i++ {
		pr.Predict(0x3000, true)
	}
	if err := pr.Resize(1024); err != nil {
		t.Fatal(err)
	}
	if pr.Active() != 1024 {
		t.Errorf("active %d", pr.Active())
	}
	if err := pr.Resize(3000); err == nil {
		t.Error("non-power-of-two resize accepted")
	}
	if err := pr.Resize(512); err == nil {
		t.Error("below-min resize accepted")
	}
}

func TestLookupDelayGrowsWithSize(t *testing.T) {
	tp := tech.ForFeature(tech.Micron018)
	prev := 0.0
	for _, n := range DefaultParams().Sizes() {
		d := LookupDelay(n, tp)
		if d <= prev {
			t.Errorf("%d entries: delay %v not greater than %v", n, d, prev)
		}
		prev = d
	}
}

func TestEvaluateTradeoff(t *testing.T) {
	// With heavy aliasing, some larger-than-minimum table should win the
	// per-branch time despite its slower lookup.
	p := DefaultParams()
	timeFor := func(active int) float64 {
		pr := MustNew(p, active)
		g := NewBranchGen(9, 1200, 0.3)
		for i := 0; i < 100000; i++ {
			pc, taken := g.Next()
			pr.Predict(pc, taken)
		}
		pr.ResetStats()
		for i := 0; i < 120000; i++ {
			pc, taken := g.Next()
			pr.Predict(pc, taken)
		}
		return Evaluate(p, active, pr.Stats())
	}
	if timeFor(4096) >= timeFor(1024) {
		// The exact winner depends on calibration; the essential
		// property is that size CAN pay for itself under aliasing.
		t.Log("4K table did not beat 1K on this stream (acceptable, checking 16K)")
		if timeFor(16*1024) >= timeFor(1024) {
			t.Error("no larger table ever pays for itself under heavy aliasing")
		}
	}
}

func TestBranchGenDeterminism(t *testing.T) {
	g1 := NewBranchGen(3, 100, 0.5)
	g2 := NewBranchGen(3, 100, 0.5)
	for i := 0; i < 1000; i++ {
		pc1, t1 := g1.Next()
		pc2, t2 := g2.Next()
		if pc1 != pc2 || t1 != t2 {
			t.Fatalf("generators diverged at %d", i)
		}
	}
}
