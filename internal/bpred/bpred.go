// Package bpred implements a complexity-adaptive branch predictor table,
// the other structure the CAP paper singles out for future
// complexity-adaptive treatment (Sections 4.2 and 7). The predictor is a
// gshare-style table of two-bit saturating counters whose *active* size can
// be changed at runtime in power-of-two steps: a larger table suffers less
// aliasing (higher prediction accuracy, higher IPC) but its longer wordlines
// and decode stretch the cycle, exactly the IPC/clock-rate tradeoff of the
// paper's cache and queue structures.
//
// Resizing keeps the table physically built at maximum size and changes only
// the number of index bits in use, so growing or shrinking needs no flash
// clear: shrinking folds the large table onto its lower half (counters
// retrain quickly); growing exposes counters that retain their last values
// — the paper's "cleanup operations are simple and have low enough
// overhead" observation holds here too.
package bpred

import (
	"fmt"
	"math"

	"capsim/internal/rng"
	"capsim/internal/tech"
)

// Params describes the adaptive predictor.
type Params struct {
	// MaxEntries is the built table size (power of two).
	MaxEntries int
	// MinEntries is the smallest selectable active size (power of two).
	MinEntries int
	// HistoryBits is the global-history length XORed into the index.
	HistoryBits int
	// MispredictCycles is the pipeline refill penalty.
	MispredictCycles int
	// Feature selects the process generation for timing.
	Feature tech.FeatureSize
}

// DefaultParams returns a 1K-16K-entry gshare with 10 history bits and an
// 8-cycle misprediction penalty.
func DefaultParams() Params {
	return Params{
		MaxEntries:       16 * 1024,
		MinEntries:       1024,
		HistoryBits:      4,
		MispredictCycles: 8,
		Feature:          tech.Micron018,
	}
}

// Validate reports whether the parameters are consistent.
func (p Params) Validate() error {
	switch {
	case p.MaxEntries < 2 || p.MaxEntries&(p.MaxEntries-1) != 0:
		return fmt.Errorf("bpred: max entries %d must be a power of two >= 2", p.MaxEntries)
	case p.MinEntries < 2 || p.MinEntries&(p.MinEntries-1) != 0:
		return fmt.Errorf("bpred: min entries %d must be a power of two >= 2", p.MinEntries)
	case p.MinEntries > p.MaxEntries:
		return fmt.Errorf("bpred: min %d exceeds max %d", p.MinEntries, p.MaxEntries)
	case p.HistoryBits < 0 || p.HistoryBits > 24:
		return fmt.Errorf("bpred: history bits %d out of range", p.HistoryBits)
	case p.MispredictCycles < 1:
		return fmt.Errorf("bpred: mispredict cycles %d must be >= 1", p.MispredictCycles)
	case p.Feature <= 0:
		return fmt.Errorf("bpred: invalid feature size")
	}
	return nil
}

// Sizes enumerates the selectable active sizes, smallest first.
func (p Params) Sizes() []int {
	var out []int
	for n := p.MinEntries; n <= p.MaxEntries; n *= 2 {
		out = append(out, n)
	}
	return out
}

// Stats accumulates prediction outcomes.
type Stats struct {
	Branches    uint64
	Mispredicts uint64
}

// MispredictRate returns mispredictions per branch.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// Predictor is the runtime state.
type Predictor struct {
	p       Params
	table   []uint8 // 2-bit counters, initialized weakly taken
	active  int     // active entries (power of two)
	history uint64
	stats   Stats
}

// New builds the predictor with the given active size.
func New(p Params, active int) (*Predictor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkActive(p, active); err != nil {
		return nil, err
	}
	t := make([]uint8, p.MaxEntries)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &Predictor{p: p, table: t, active: active}, nil
}

// MustNew is New but panics on error.
func MustNew(p Params, active int) *Predictor {
	pr, err := New(p, active)
	if err != nil {
		panic(err)
	}
	return pr
}

func checkActive(p Params, active int) error {
	if active < p.MinEntries || active > p.MaxEntries || active&(active-1) != 0 {
		return fmt.Errorf("bpred: active size %d not a power of two in [%d,%d]",
			active, p.MinEntries, p.MaxEntries)
	}
	return nil
}

// Active returns the active table size.
func (pr *Predictor) Active() int { return pr.active }

// Stats returns accumulated statistics.
func (pr *Predictor) Stats() Stats { return pr.stats }

// ResetStats zeroes counters, keeping table state.
func (pr *Predictor) ResetStats() { pr.stats = Stats{} }

// Resize changes the active size; table contents persist (the smaller table
// is the lower slice of the larger one).
func (pr *Predictor) Resize(active int) error {
	if err := checkActive(pr.p, active); err != nil {
		return err
	}
	pr.active = active
	return nil
}

// index folds the PC and global history into the active table.
func (pr *Predictor) index(pc uint64) int {
	h := pr.history & ((1 << uint(pr.p.HistoryBits)) - 1)
	return int((pc>>2 ^ h) & uint64(pr.active-1))
}

// Predict returns the predicted direction for the branch at pc and records
// the actual outcome, updating the counter and global history.
func (pr *Predictor) Predict(pc uint64, taken bool) bool {
	i := pr.index(pc)
	pred := pr.table[i] >= 2
	pr.stats.Branches++
	if pred != taken {
		pr.stats.Mispredicts++
	}
	if taken {
		if pr.table[i] < 3 {
			pr.table[i]++
		}
	} else if pr.table[i] > 0 {
		pr.table[i]--
	}
	pr.history = pr.history<<1 | b2u(taken)
	return pred
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// --- Timing ---------------------------------------------------------------

// LookupDelay returns the table's lookup delay in ns for an active size: a
// RAM read whose decode depth grows with log2(entries) and whose bitline
// load grows with the active rows (the repeaters between size increments
// isolate the inactive rows, per the paper's adaptive-structure recipe).
func LookupDelay(active int, tp tech.Params) float64 {
	// Subarray-partitioned SRAM: decode deepens with log2(rows) and the
	// active wordline/bitline load adds a weak sqrt term.
	rows := float64(active) / 8 // 8 counters per row
	return tp.GateDelayFO4 * (1.0 + 0.10*math.Log2(rows) + 0.002*math.Sqrt(rows))
}

// Evaluate returns the average per-branch time in ns for an active size
// given measured statistics: every branch pays the lookup-limited cycle;
// mispredictions add the refill penalty.
func Evaluate(p Params, active int, s Stats) float64 {
	tp := tech.ForFeature(p.Feature)
	cyc := LookupDelay(active, tp)
	if s.Branches == 0 {
		return cyc
	}
	cycles := float64(s.Branches) + float64(s.Mispredicts)*float64(p.MispredictCycles)
	return cyc * cycles / float64(s.Branches)
}

// --- Synthetic branch workload --------------------------------------------

// BranchGen produces a synthetic branch stream with a configurable static
// branch population: each static branch has a bias, and a fraction follow a
// short repeating pattern that global history can capture. Aliasing pressure
// (and therefore the benefit of a larger table) grows with the number of
// static branches.
type BranchGen struct {
	src      *rng.Source
	pcs      []uint64
	bias     []float64
	loopy    []bool
	phase    []int
	loopLens []int
}

// NewBranchGen builds a generator with `static` distinct branches; loopFrac
// of them follow deterministic short loops.
func NewBranchGen(seed uint64, static int, loopFrac float64) *BranchGen {
	if static < 1 {
		static = 1
	}
	src := rng.New(rng.DeriveSeed(seed, "bpred"))
	g := &BranchGen{
		src:      src,
		pcs:      make([]uint64, static),
		bias:     make([]float64, static),
		loopy:    make([]bool, static),
		phase:    make([]int, static),
		loopLens: make([]int, static),
	}
	for i := range g.pcs {
		g.pcs[i] = uint64(0x400000 + i*64)
		g.bias[i] = 0.5 + 0.45*src.Float64()
		if src.Bool(0.5) {
			g.bias[i] = 1 - g.bias[i]
		}
		g.loopy[i] = src.Bool(loopFrac)
		g.loopLens[i] = 3 + src.Intn(6)
	}
	return g
}

// Next returns the next (pc, taken) pair.
func (g *BranchGen) Next() (uint64, bool) {
	i := g.src.Intn(len(g.pcs))
	if g.loopy[i] {
		g.phase[i]++
		// Loop-closing branch: taken for loopLen-1 iterations, then
		// falls through.
		taken := g.phase[i]%g.loopLens[i] != 0
		return g.pcs[i], taken
	}
	return g.pcs[i], g.src.Bool(g.bias[i])
}
