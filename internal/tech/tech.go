// Package tech models CMOS process-technology parameters and their scaling
// with feature size, following the first-order rules used in the CAP paper
// (Albonesi, ISCA 1998, Section 2): device (transistor and buffer) delays
// scale linearly with feature size, while wire delays per unit length remain
// constant. Parameters are anchored at a 0.80 micron base process (the CACTI
// reference technology) and scaled down from there.
//
// All delays are in nanoseconds, capacitances in picofarads, resistances in
// ohms, and lengths in millimetres unless noted otherwise.
package tech

import (
	"fmt"
	"sort"
)

// FeatureSize identifies a process generation by its drawn feature size in
// microns. The paper studies 0.25, 0.18 and 0.12 micron technologies.
type FeatureSize float64

// Process generations referenced by the paper.
const (
	Micron080 FeatureSize = 0.80 // CACTI base technology
	Micron025 FeatureSize = 0.25
	Micron018 FeatureSize = 0.18
	Micron012 FeatureSize = 0.12
)

// Generations returns the process generations studied in the paper, largest
// feature size first (matching the figure legends).
func Generations() []FeatureSize {
	return []FeatureSize{Micron025, Micron018, Micron012}
}

func (f FeatureSize) String() string {
	return fmt.Sprintf("%.2fu", float64(f))
}

// Params holds the electrical parameters of a process generation that the
// wire and timing models need.
type Params struct {
	Feature FeatureSize

	// ScaleFactor is Feature / 0.80: device delays in this technology are
	// the 0.80 micron delays multiplied by this factor (linear scaling).
	ScaleFactor float64

	// BufferDelay is the unloaded intrinsic delay of a repeater stage in
	// ns (its loaded drive delay is computed separately from BufferR and
	// BufferC). Scales linearly with feature size.
	BufferDelay float64

	// BufferR is the output resistance of a minimum-size repeater in ohms.
	// To first order it is constant across generations (smaller devices
	// have higher resistance per square but repeaters are sized up).
	BufferR float64

	// BufferC is the input capacitance of a minimum-size repeater in pF.
	// Scales linearly with feature size.
	BufferC float64

	// WireRPerMM is wire resistance per millimetre in ohms. Wire
	// cross-sections shrink with scaling, so resistance per mm rises as
	// feature size falls; the paper's first-order treatment keeps the
	// wire RC product per mm constant, which we follow by holding both R
	// and C per mm constant and attributing all scaling to devices.
	WireRPerMM float64

	// WireCPerMM is wire capacitance per millimetre in pF. Constant to
	// first order (fringing dominates).
	WireCPerMM float64

	// GateDelayFO4 is the fanout-of-4 inverter delay in ns, the canonical
	// logic-speed yardstick for the generation.
	GateDelayFO4 float64
}

// base holds the 0.80 micron anchor values. The buffer parameters follow
// Bakoglu's canonical examples (Rbuf ~ 1 kOhm, Cbuf ~ 0.1 pF driver at the
// base generation); wire parameters are intra-structure intermediate metal
// (R = 300 Ohm/mm, C = 0.25 pF/mm — thin, tightly pitched routing, the kind
// of wire that runs the global address/data buses inside a cache or queue).
// These reproduce the magnitude of the delays in the paper's Figures 1-2
// (0.1-6 ns for mm-scale buses).
var base = Params{
	Feature:      Micron080,
	ScaleFactor:  1.0,
	BufferDelay:  0.08,
	BufferR:      1000.0,
	BufferC:      0.100,
	WireRPerMM:   300.0,
	WireCPerMM:   0.25,
	GateDelayFO4: 0.80,
}

// ForFeature returns the process parameters for the given feature size,
// scaling device quantities linearly from the 0.80 micron anchor. Wire
// R and C per millimetre are held constant per the paper's first-order
// assumption. It panics if the feature size is not positive; use Validate
// for non-panicking checks.
func ForFeature(f FeatureSize) Params {
	if f <= 0 {
		panic(fmt.Sprintf("tech: non-positive feature size %v", float64(f)))
	}
	s := float64(f) / float64(Micron080)
	return Params{
		Feature:      f,
		ScaleFactor:  s,
		BufferDelay:  base.BufferDelay * s,
		BufferR:      base.BufferR,
		BufferC:      base.BufferC * s,
		WireRPerMM:   base.WireRPerMM,
		WireCPerMM:   base.WireCPerMM,
		GateDelayFO4: base.GateDelayFO4 * s,
	}
}

// Validate reports whether the parameters are physically sensible.
func (p Params) Validate() error {
	switch {
	case p.Feature <= 0:
		return fmt.Errorf("tech: feature size %v must be positive", float64(p.Feature))
	case p.BufferDelay <= 0:
		return fmt.Errorf("tech: buffer delay %v must be positive", p.BufferDelay)
	case p.BufferR <= 0 || p.BufferC <= 0:
		return fmt.Errorf("tech: buffer RC (%v, %v) must be positive", p.BufferR, p.BufferC)
	case p.WireRPerMM <= 0 || p.WireCPerMM <= 0:
		return fmt.Errorf("tech: wire RC per mm (%v, %v) must be positive", p.WireRPerMM, p.WireCPerMM)
	}
	return nil
}

// WireTauPerMM2 returns the distributed wire RC time constant per square
// millimetre in ns/mm^2. The Elmore delay of an unbuffered wire of length L
// is 0.4 * tau * L^2 (0.5 for a lumped approximation; 0.4 matches the
// distributed-RC coefficient Bakoglu uses).
func (p Params) WireTauPerMM2() float64 {
	// ohm * pF = picoseconds; convert to ns.
	return p.WireRPerMM * p.WireCPerMM * 1e-3
}

// BitCellSide returns the layout edge of a single-ported SRAM cell in mm for
// this generation. CACTI's base cell is roughly 16 lambda on a side; with
// lambda = feature/2 this gives an 8*feature square cell, which reproduces
// typical published macro sizes (an 8 KB bank ~1 mm^2 at 0.25u with
// overheads).
func (p Params) BitCellSide() float64 {
	const lambdaPerSide = 16.0
	return lambdaPerSide * float64(p.Feature) / 2.0 / 1000.0 // um -> mm
}

// PortArea scales a cell's area for a multi-ported cell: both wordlines and
// bitlines replicate per port, so area grows quadratically with the number
// of ports (paper Section 2, citing Mulder's area model).
func PortArea(baseArea float64, ports int) float64 {
	if ports < 1 {
		ports = 1
	}
	return baseArea * float64(ports) * float64(ports)
}

// SortedFeatures returns the given feature sizes sorted descending (largest
// first), the order figure legends use.
func SortedFeatures(fs []FeatureSize) []FeatureSize {
	out := append([]FeatureSize(nil), fs...)
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}
