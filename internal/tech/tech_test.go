package tech

import (
	"math"
	"testing"
	"testing/quick"
)

func TestForFeatureScalesDevicesLinearly(t *testing.T) {
	base := ForFeature(Micron080)
	for _, f := range []FeatureSize{Micron025, Micron018, Micron012} {
		p := ForFeature(f)
		s := float64(f) / float64(Micron080)
		if got := p.ScaleFactor; math.Abs(got-s) > 1e-12 {
			t.Errorf("%v: scale factor %v, want %v", f, got, s)
		}
		if got, want := p.BufferDelay, base.BufferDelay*s; math.Abs(got-want) > 1e-12 {
			t.Errorf("%v: buffer delay %v, want %v", f, got, want)
		}
		if got, want := p.BufferC, base.BufferC*s; math.Abs(got-want) > 1e-12 {
			t.Errorf("%v: buffer C %v, want %v", f, got, want)
		}
		if got, want := p.GateDelayFO4, base.GateDelayFO4*s; math.Abs(got-want) > 1e-12 {
			t.Errorf("%v: FO4 %v, want %v", f, got, want)
		}
	}
}

func TestForFeatureKeepsWireConstant(t *testing.T) {
	base := ForFeature(Micron080)
	for _, f := range Generations() {
		p := ForFeature(f)
		if p.WireRPerMM != base.WireRPerMM || p.WireCPerMM != base.WireCPerMM {
			t.Errorf("%v: wire RC (%v,%v) changed from base (%v,%v)",
				f, p.WireRPerMM, p.WireCPerMM, base.WireRPerMM, base.WireCPerMM)
		}
	}
}

func TestForFeaturePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive feature size")
		}
	}()
	ForFeature(0)
}

func TestValidate(t *testing.T) {
	good := ForFeature(Micron018)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := good
	bad.BufferDelay = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero buffer delay accepted")
	}
	bad = good
	bad.WireRPerMM = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative wire R accepted")
	}
	bad = good
	bad.Feature = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative feature accepted")
	}
}

func TestWireTauPositiveAndConstant(t *testing.T) {
	var last float64
	for i, f := range Generations() {
		tau := ForFeature(f).WireTauPerMM2()
		if tau <= 0 {
			t.Fatalf("%v: non-positive tau %v", f, tau)
		}
		if i > 0 && math.Abs(tau-last) > 1e-15 {
			t.Errorf("%v: tau %v differs from previous %v (wire RC should not scale)", f, tau, last)
		}
		last = tau
	}
}

func TestBitCellSideShrinksWithFeature(t *testing.T) {
	prev := math.Inf(1)
	for _, f := range Generations() { // descending feature size
		side := ForFeature(f).BitCellSide()
		if side <= 0 {
			t.Fatalf("%v: non-positive cell side", f)
		}
		if side >= prev {
			t.Errorf("%v: cell side %v not smaller than previous %v", f, side, prev)
		}
		prev = side
	}
}

func TestPortAreaQuadratic(t *testing.T) {
	base := 10.0
	if got := PortArea(base, 1); got != base {
		t.Errorf("1 port: %v, want %v", got, base)
	}
	if got := PortArea(base, 3); got != 9*base {
		t.Errorf("3 ports: %v, want %v", got, 9*base)
	}
	// Non-positive ports clamp to 1.
	if got := PortArea(base, 0); got != base {
		t.Errorf("0 ports: %v, want %v", got, base)
	}
}

func TestSortedFeaturesDescending(t *testing.T) {
	in := []FeatureSize{Micron012, Micron025, Micron018}
	out := SortedFeatures(in)
	if len(out) != 3 || out[0] != Micron025 || out[1] != Micron018 || out[2] != Micron012 {
		t.Errorf("got %v", out)
	}
	// Input untouched.
	if in[0] != Micron012 {
		t.Error("SortedFeatures mutated its input")
	}
}

func TestScalingMonotonicProperty(t *testing.T) {
	// Property: for any positive feature size pair f1 < f2, every
	// device-limited parameter at f1 is strictly smaller.
	f := func(a, b uint8) bool {
		f1 := FeatureSize(0.05 + float64(a%200)*0.005)
		f2 := f1 + FeatureSize(0.005+float64(b%100)*0.005)
		p1, p2 := ForFeature(f1), ForFeature(f2)
		return p1.BufferDelay < p2.BufferDelay &&
			p1.BufferC < p2.BufferC &&
			p1.GateDelayFO4 < p2.GateDelayFO4 &&
			p1.BitCellSide() < p2.BitCellSide()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if got := Micron018.String(); got != "0.18u" {
		t.Errorf("String() = %q", got)
	}
}
