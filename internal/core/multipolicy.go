package core

import (
	"context"
	"fmt"
	"sync"

	"capsim/internal/clock"
	"capsim/internal/flight"
	"capsim/internal/memo"
	"capsim/internal/obs"
	"capsim/internal/ooo"
	"capsim/internal/palacharla"
	"capsim/internal/tech"
	"capsim/internal/trace"
	"capsim/internal/workload"
)

// obsPolicyCells counts (policy column × interval) simulation cells computed
// by the one-pass interval engines — the unit of work the family cache and
// the lockstep race amortize.
var obsPolicyCells = obs.NewCounter("policy.cells")

// intervalKey identifies one interval family: the per-size, per-interval raw
// core outcomes (cycles, issued) of an application's stream chopped into
// n-instruction intervals. The key deliberately EXCLUDES the clock-switch
// penalty and the feature size: interval outcomes are pure core statistics —
// periods and penalties are applied at replay time — so fig12/fig13, the
// per-interval oracle, and every ablation penalty point share one family.
type intervalKey struct {
	app   string
	seed  uint64
	sizes string // fmt.Sprint of the size list (order matters)
	n     int64  // instructions per interval
}

// intervalFamily is the memoized computation behind the one-pass interval
// engines: a live MultiCore (one member per queue size) advancing through
// the shared instruction stream, plus the per-size append-only streams of
// raw interval outcomes it has produced so far. Consumers extend it to the
// interval count they need and replay the prefix; a later consumer needing
// more intervals resumes the same cores — the family is a fresh full-length
// run paused at its high-water mark, so prefixes are bit-identical at every
// extension.
type intervalFamily struct {
	mu     sync.Mutex
	mc     *ooo.MultiCore
	stream workload.InstrSource
	n      int64
	done   int64
	cycles [][]int64 // [size][interval]: core cycles of that interval
	issued [][]int64 // [size][interval]: instructions issued (>= n)
}

// families memoizes interval families per key with singleflight semantics;
// the family itself serializes extension under its own mutex.
var families memo.Memo[intervalKey, *intervalFamily]

// ResetPolicyFamilies drops all memoized interval families (tests and
// long-lived processes; one-shot CLI runs never need it).
func ResetPolicyFamilies() { families.Reset() }

// familyFor returns the (possibly already advanced) interval family for the
// given application and size list.
func familyFor(b workload.Benchmark, seed uint64, sizes []int, n int64) (*intervalFamily, error) {
	key := intervalKey{app: b.Name, seed: seed, sizes: fmt.Sprint(sizes), n: n}
	return families.Do(key, func() (*intervalFamily, error) {
		if len(sizes) == 0 {
			return nil, fmt.Errorf("core: no queue sizes")
		}
		cfgs := make([]ooo.Config, len(sizes))
		for i, w := range sizes {
			if w < 1 {
				return nil, fmt.Errorf("core: queue size %d invalid", w)
			}
			cfgs[i] = ooo.PaperConfig(w)
		}
		mc, err := ooo.NewMultiCore(cfgs)
		if err != nil {
			return nil, err
		}
		return &intervalFamily{
			mc:     mc,
			stream: trace.InstrSourceFor(b, seed),
			n:      n,
			cycles: make([][]int64, len(sizes)),
			issued: make([][]int64, len(sizes)),
		}, nil
	})
}

// extendTo advances the family to at least `intervals` materialized
// intervals, one lockstep RunEach round per interval. Partial progress is
// kept on cancellation — the family stays consistent at whatever interval
// count it reached. Callers must hold f.mu.
func (f *intervalFamily) extendTo(ctx context.Context, intervals int64) error {
	for f.done < intervals {
		if err := ctx.Err(); err != nil {
			return err
		}
		for i, st := range f.mc.RunEach(f.stream, f.n) {
			f.cycles[i] = append(f.cycles[i], st.Cycles)
			f.issued[i] = append(f.issued[i], st.Issued)
		}
		f.done++
		obsPolicyCells.Add1(int64(len(f.cycles)))
	}
	return nil
}

// rows extends the family to `intervals` and returns copies of the
// per-size outcome prefixes. Copies, not views: another goroutine may
// extend (and so reallocate) the live streams as soon as the lock drops.
func (f *intervalFamily) rows(ctx context.Context, intervals int64) (cycles, issued [][]int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.extendTo(ctx, intervals); err != nil {
		return nil, nil, err
	}
	cycles = make([][]int64, len(f.cycles))
	issued = make([][]int64, len(f.issued))
	for i := range f.cycles {
		cycles[i] = append([]int64(nil), f.cycles[i][:intervals]...)
		issued[i] = append([]int64(nil), f.issued[i][:intervals]...)
	}
	f.mc.PublishObs()
	return cycles, issued, nil
}

// MultiPolicy races interval policies over one application without
// re-simulating the core per policy. Fixed-configuration policies (the
// paper's baselines, and the columns the per-interval oracle minimizes
// over) replay the memoized interval family — raw (cycles, issued) outcomes
// with the policy's clock arithmetic applied in replay order, bit-identical
// to a private QueueMachine. Stateful policies that actually reconfigure
// run as lockstep columns of one MultiCore over the shared stream, each
// with its own coupled clock, monitor and transition-cost accounting —
// mirroring MultiCombined's row/cell structure with policies as columns.
type MultiPolicy struct {
	b       workload.Benchmark
	seed    uint64
	sizes   []int
	n       int64
	penalty int
	sources []clock.Source
	cycs    []float64
}

// PolicySpec is one contender in a Race. Policies are stateful; give each
// spec its own instance.
type PolicySpec struct {
	Policy Policy
}

// NewMultiPolicy builds the replay engine for one application. The
// parameters mirror NewQueueMachine (initial configuration 0, the
// interval-driver convention); penaltyCycles < 0 selects the default
// clock-switch penalty.
func NewMultiPolicy(b workload.Benchmark, seed uint64, sizes []int, n int64, penaltyCycles int, f tech.FeatureSize) (*MultiPolicy, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("core: no queue sizes")
	}
	tp := tech.ForFeature(f)
	configs := make([]Config, len(sizes))
	sources := make([]clock.Source, len(sizes))
	cycs := make([]float64, len(sizes))
	for i, w := range sizes {
		if w < 1 {
			return nil, fmt.Errorf("core: queue size %d invalid", w)
		}
		cyc := palacharla.CycleTime(palacharla.Queue{Entries: w, IssueWidth: 8}, tp)
		configs[i] = Config{ID: i, Label: fmt.Sprintf("IQ=%d", w), CycleNS: cyc}
		sources[i] = clock.Source{ID: i, PeriodNS: cyc, Label: configs[i].Label}
		cycs[i] = cyc
	}
	if err := validateConfigs(configs); err != nil {
		return nil, err
	}
	return &MultiPolicy{
		b:       b,
		seed:    seed,
		sizes:   sizes,
		n:       n,
		penalty: penaltyCycles,
		sources: sources,
		cycs:    cycs,
	}, nil
}

// Traces returns per-size, per-interval TPI from the memoized family — the
// ProfileQueueTraces product. The expression replicates
// QueueMachine.RunInterval's float operation order (cycles × period, divided
// by issued), so each trace is bit-identical to a private machine.
func (mp *MultiPolicy) Traces(ctx context.Context, intervals int64) ([][]float64, error) {
	fam, err := familyFor(mp.b, mp.seed, mp.sizes, mp.n)
	if err != nil {
		return nil, err
	}
	cycles, issued, err := fam.rows(ctx, intervals)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(mp.sizes))
	for i := range out {
		out[i] = make([]float64, intervals)
		for iv := int64(0); iv < intervals; iv++ {
			out[i][iv] = float64(cycles[i][iv]) * mp.cycs[i] / float64(issued[i][iv])
		}
	}
	if flight.Active(ctx) {
		mp.publishTraceRuns(ctx, cycles, issued, out, intervals)
	}
	return out, nil
}

// RunFixed replays RunQueue(FixedPolicy{cfg}) from the family: the same
// clock.System performs the same Advance/Select sequence a private
// QueueMachine would, in the same order, over the memoized raw outcomes.
//
// The one reconfiguration a fixed policy performs — interval 0, away from
// the construction default 0 — happens on an EMPTY core, so its drain is
// exactly zero stall cycles and the family's column (a core built at the
// target size) observes the identical instruction stream; the transition
// differential tests pin this against direct simulation.
func (mp *MultiPolicy) RunFixed(ctx context.Context, cfg int, intervals int64) (RunResult, error) {
	if cfg < 0 || cfg >= len(mp.sizes) {
		return RunResult{}, fmt.Errorf("core: fixed config %d outside [0,%d)", cfg, len(mp.sizes))
	}
	fam, err := familyFor(mp.b, mp.seed, mp.sizes, mp.n)
	if err != nil {
		return RunResult{}, err
	}
	cycles, issued, err := fam.rows(ctx, intervals)
	if err != nil {
		return RunResult{}, err
	}
	clk, err := clock.NewSystem(mp.sources, 0, mp.penalty)
	if err != nil {
		return RunResult{}, err
	}
	rec := flight.Active(ctx)
	var (
		evs      []flight.Event
		oCfg     []int
		oNS      []float64
		regretNS float64
	)
	if rec {
		evs = make([]flight.Event, 0, intervals)
		oCfg, oNS = mp.flightOracle(cycles, intervals)
	}
	var timeNS float64
	var instrs int64
	var pen0 float64 // interval-0 switch penalty (ledger attribution)
	if cfg != 0 {
		// QueueMachine.SetConfig order: drain at the old clock (zero
		// cycles — the core is empty at interval 0), then the switch
		// penalty at the old period.
		timeNS += clk.Advance(0)
		pen, err := clk.Select(cfg)
		if err != nil {
			return RunResult{}, err
		}
		timeNS += pen
		pen0 = pen
	}
	for iv := int64(0); iv < intervals; iv++ {
		dt := clk.Advance(cycles[cfg][iv])
		instrs += issued[cfg][iv]
		timeNS += dt
		if rec {
			var pen float64
			if iv == 0 {
				pen = pen0
			}
			tot := pen + dt
			regret := tot - oNS[iv]
			regretNS += regret
			evs = append(evs, flight.Event{
				Interval:    iv,
				Config:      cfg,
				Size:        mp.sizes[cfg],
				Cycles:      cycles[cfg][iv],
				Issued:      issued[cfg][iv],
				PeriodNS:    mp.cycs[cfg],
				PenaltyNS:   pen,
				AdvNS:       dt,
				CumTimeNS:   timeNS,
				TPI:         dt / float64(issued[cfg][iv]),
				OracleCfg:   oCfg[iv],
				OracleNS:    oNS[iv],
				RegretNS:    regret,
				CumRegretNS: regretNS,
				Switched:    iv == 0 && cfg != 0,
			})
		}
	}
	res := RunResult{Policy: FixedPolicy{Config: cfg}.Name(), Instrs: instrs, TimeNS: timeNS, Switches: clk.Switches()}
	if instrs != 0 {
		res.TPI = timeNS / float64(instrs)
	}
	if rec {
		meta := mp.flightMeta(res.Policy, flight.KindFixed)
		flight.Publish(ctx, meta, evs, flightEnd(intervals, instrs, res.Switches, timeNS, regretNS))
	}
	return res, nil
}

// Race runs N stateful policies as lockstep columns of ONE MultiCore over
// the shared instruction stream: per interval, each column consults its
// policy, performs its own reconfiguration (drain at the old clock + switch
// penalty, QueueMachine.SetConfig's exact order), then a single RunEach
// round advances every column together. Per-column results are bit-identical
// to private QueueMachine runs: member cores consume the stream exactly as
// they would privately, and resizes between rounds reproduce private-machine
// behaviour (see ooo.MultiCore.Cores).
func (mp *MultiPolicy) Race(ctx context.Context, specs []PolicySpec, intervals int64) ([]RunResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: no policies to race")
	}
	cfgs := make([]ooo.Config, len(specs))
	for j := range specs {
		cfgs[j] = ooo.PaperConfig(mp.sizes[0])
	}
	mc, err := ooo.NewMultiCore(cfgs)
	if err != nil {
		return nil, err
	}
	cores := mc.Cores()
	stream := trace.InstrSourceFor(mp.b, mp.seed)

	// Flight recording: the oracle reference comes from the memoized interval
	// family (materialized here if no other consumer has yet — the same pass
	// Traces replays). Per-interval drain/penalty attribution is captured into
	// slices the RunEach loop reads; all simulated arithmetic below is
	// unchanged whether or not rec is set.
	rec := flight.Active(ctx)
	var (
		recEvs     [][]flight.Event
		recRegret  []float64
		oCfg       []int
		oNS        []float64
		ivDrainCyc []int64
		ivDrainNS  []float64
		ivPenNS    []float64
		ivSwitched []bool
	)
	if rec {
		fam, err := familyFor(mp.b, mp.seed, mp.sizes, mp.n)
		if err != nil {
			return nil, err
		}
		famCycles, _, err := fam.rows(ctx, intervals)
		if err != nil {
			return nil, err
		}
		oCfg, oNS = mp.flightOracle(famCycles, intervals)
		recEvs = make([][]flight.Event, len(specs))
		for j := range recEvs {
			recEvs[j] = make([]flight.Event, 0, intervals)
		}
		recRegret = make([]float64, len(specs))
		ivDrainCyc = make([]int64, len(specs))
		ivDrainNS = make([]float64, len(specs))
		ivPenNS = make([]float64, len(specs))
		ivSwitched = make([]bool, len(specs))
	}

	clks := make([]*clock.System, len(specs))
	mons := make([]*Monitor, len(specs))
	cur := make([]int, len(specs))
	timeNS := make([]float64, len(specs))
	instrs := make([]int64, len(specs))
	for j := range specs {
		clks[j], err = clock.NewSystem(mp.sources, 0, mp.penalty)
		if err != nil {
			return nil, err
		}
		mons[j] = NewMonitor(64)
		mons[j].Current = 0
	}
	for iv := int64(0); iv < intervals; iv++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if rec {
			for j := range specs {
				ivDrainCyc[j], ivDrainNS[j], ivPenNS[j], ivSwitched[j] = 0, 0, 0, false
			}
		}
		for j, spec := range specs {
			want := spec.Policy.Next(mons[j])
			if want == cur[j] {
				continue
			}
			if want < 0 || want >= len(mp.sizes) {
				return nil, fmt.Errorf("core: policy %q selected config %d outside [0,%d)", spec.Policy.Name(), want, len(mp.sizes))
			}
			before := cores[j].Stats().DrainStalls
			if err := cores[j].Resize(mp.sizes[want]); err != nil {
				return nil, err
			}
			drain := cores[j].Stats().DrainStalls - before
			dd := clks[j].Advance(drain)
			timeNS[j] += dd
			pen, err := clks[j].Select(want)
			if err != nil {
				return nil, err
			}
			timeNS[j] += pen
			cur[j] = want
			if rec {
				ivDrainCyc[j], ivDrainNS[j], ivPenNS[j], ivSwitched[j] = drain, dd, pen, true
			}
		}
		for j, st := range mc.RunEach(stream, mp.n) {
			dt := clks[j].Advance(st.Cycles)
			instrs[j] += st.Issued
			timeNS[j] += dt
			mons[j].Record(Sample{
				Interval: iv,
				Config:   cur[j],
				TPI:      dt / float64(st.Issued),
				IPC:      st.IPC(),
			})
			if rec {
				tot := ivDrainNS[j] + ivPenNS[j] + dt
				// Live race columns diverge from the family columns after a
				// resize, so an interval can occasionally beat every family
				// column; regret vs the family oracle is floored at zero to
				// keep the ledger's monotonicity invariant meaningful.
				regret := tot - oNS[iv]
				if regret < 0 {
					regret = 0
				}
				recRegret[j] += regret
				recEvs[j] = append(recEvs[j], flight.Event{
					Interval:    iv,
					Config:      cur[j],
					Size:        mp.sizes[cur[j]],
					Cycles:      st.Cycles,
					Issued:      st.Issued,
					PeriodNS:    mp.cycs[cur[j]],
					DrainCycles: ivDrainCyc[j],
					DrainNS:     ivDrainNS[j],
					PenaltyNS:   ivPenNS[j],
					AdvNS:       dt,
					CumTimeNS:   timeNS[j],
					TPI:         dt / float64(st.Issued),
					OracleCfg:   oCfg[iv],
					OracleNS:    oNS[iv],
					RegretNS:    regret,
					CumRegretNS: recRegret[j],
					Switched:    ivSwitched[j],
				})
			}
		}
		obsPolicyCells.Add1(int64(len(specs)))
	}
	mc.PublishObs()
	out := make([]RunResult, len(specs))
	for j, spec := range specs {
		out[j] = RunResult{Policy: spec.Policy.Name(), Instrs: instrs[j], TimeNS: timeNS[j], Switches: clks[j].Switches()}
		if instrs[j] != 0 {
			out[j].TPI = timeNS[j] / float64(instrs[j])
		}
		if rec {
			meta := mp.flightMeta(out[j].Policy, flight.KindRace)
			flight.Publish(ctx, meta, recEvs[j], flightEnd(intervals, instrs[j], out[j].Switches, timeNS[j], recRegret[j]))
		}
	}
	return out, nil
}

// RunPolicyStudy is the interval drivers' entry point: one policy-driven run
// of `intervals` intervals of `n` instructions at initial configuration 0.
// With the shared-trace path enabled (the default) fixed policies replay the
// memoized interval family and stateful policies run through the lockstep
// Race engine; otherwise a private QueueMachine simulates directly. All
// paths are bit-identical (TestRunPolicyStudyOnepass,
// TestMultiPolicyTransitionCosts).
func RunPolicyStudy(ctx context.Context, b workload.Benchmark, seed uint64, sizes []int, p Policy, intervals, n int64, penaltyCycles int, f tech.FeatureSize) (RunResult, error) {
	if err := ctx.Err(); err != nil {
		return RunResult{}, err
	}
	if trace.Enabled() {
		mp, err := NewMultiPolicy(b, seed, sizes, n, penaltyCycles, f)
		if err != nil {
			return RunResult{}, err
		}
		if fp, ok := p.(FixedPolicy); ok {
			return mp.RunFixed(ctx, fp.Config, intervals)
		}
		res, err := mp.Race(ctx, []PolicySpec{{Policy: p}}, intervals)
		if err != nil {
			return RunResult{}, err
		}
		return res[0], nil
	}
	m, err := NewQueueMachine(b, seed, sizes, 0, penaltyCycles, f)
	if err != nil {
		return RunResult{}, err
	}
	return RunQueue(m, p, intervals, n, false), nil
}
