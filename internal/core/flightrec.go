package core

import (
	"context"

	"capsim/internal/flight"
)

// This file is the flight-recorder emission layer of the one-pass interval
// engines (multipolicy.go). The recorder obeys the obs publication contract:
// Traces/RunFixed/Race check flight.Active(ctx) ONCE per run, assemble
// events in private slices stamped FROM the engines' own accumulators (the
// exact float operation order — which is what makes flight.CheckRun's
// invariants exact), and publish whole run columns at the end of the run.
// Nothing here feeds back into a simulated value; renders are byte-identical
// recorder-on/off.
//
// The per-interval oracle reference is the TIME-domain minimum over the
// interval family's columns (min over i of cycles[i][iv] × period[i]), not
// the min-TPI column the ablation driver prints. Minimizing in the same unit
// the columns accumulate is what makes trace/fixed regret exactly
// non-negative and the oracle column's regret exactly zero; the two minima
// pick the same column except on sub-ulp ties, so policy orderings agree.
//
// Note on coverage: the study-row tier (internal/experiments) memoizes
// trace/policy passes persistently, and a warm -study-cache elides the
// compute entirely — along with its ledger events. Record complete ledgers
// from a fresh process without -study-cache (EXPERIMENTS.md, "Reading the
// flight ledger").

// flightOracle computes the per-interval oracle reference over the family's
// raw outcome rows: for each interval, the column index minimizing
// float64(cycles) × period (strict <, first column wins ties) and that
// minimal time.
func (mp *MultiPolicy) flightOracle(cycles [][]int64, intervals int64) (cfg []int, ns []float64) {
	cfg = make([]int, intervals)
	ns = make([]float64, intervals)
	for iv := int64(0); iv < intervals; iv++ {
		best := 0
		bestNS := float64(cycles[0][iv]) * mp.cycs[0]
		for i := 1; i < len(mp.cycs); i++ {
			if t := float64(cycles[i][iv]) * mp.cycs[i]; t < bestNS {
				best, bestNS = i, t
			}
		}
		cfg[iv] = best
		ns[iv] = bestNS
	}
	return cfg, ns
}

// flightMeta stamps the engine's shared run identity.
func (mp *MultiPolicy) flightMeta(policy, kind string) flight.RunMeta {
	return flight.RunMeta{
		App:     mp.b.Name,
		Seed:    mp.seed,
		Sizes:   append([]int(nil), mp.sizes...),
		N:       mp.n,
		Penalty: mp.penalty,
		Policy:  policy,
		Kind:    kind,
	}
}

// flightEnd summarizes a completed column with RunResult's TPI convention.
func flightEnd(intervals, instrs, switches int64, timeNS, regretNS float64) flight.RunEnd {
	end := flight.RunEnd{
		Intervals:   intervals,
		Instrs:      instrs,
		TimeNS:      timeNS,
		Switches:    switches,
		CumRegretNS: regretNS,
	}
	if instrs != 0 {
		end.TPI = timeNS / float64(instrs)
	}
	return end
}

// publishTraceRuns emits the fixed-configuration replay columns of Traces —
// one run per family column plus the synthesized oracle column (which
// switches free of charge: the oracle bounds achievable time, it does not
// model a realizable controller).
func (mp *MultiPolicy) publishTraceRuns(ctx context.Context, cycles, issued [][]int64, tpi [][]float64, intervals int64) {
	oCfg, oNS := mp.flightOracle(cycles, intervals)
	for i := range mp.sizes {
		var (
			timeNS   float64
			regretNS float64
			instrs   int64
		)
		evs := make([]flight.Event, intervals)
		for iv := int64(0); iv < intervals; iv++ {
			adv := float64(cycles[i][iv]) * mp.cycs[i]
			timeNS += adv
			regret := adv - oNS[iv]
			regretNS += regret
			instrs += issued[i][iv]
			evs[iv] = flight.Event{
				Interval:    iv,
				Config:      i,
				Size:        mp.sizes[i],
				Cycles:      cycles[i][iv],
				Issued:      issued[i][iv],
				PeriodNS:    mp.cycs[i],
				AdvNS:       adv,
				CumTimeNS:   timeNS,
				TPI:         tpi[i][iv],
				OracleCfg:   oCfg[iv],
				OracleNS:    oNS[iv],
				RegretNS:    regret,
				CumRegretNS: regretNS,
			}
		}
		meta := mp.flightMeta("trace:"+mp.sources[i].Label, flight.KindTrace)
		flight.Publish(ctx, meta, evs, flightEnd(intervals, instrs, 0, timeNS, regretNS))
	}
	evs, instrs, switches, timeNS := mp.oracleColumn(cycles, issued, oCfg, oNS, intervals, true)
	meta := mp.flightMeta("oracle", flight.KindOracle)
	flight.Publish(ctx, meta, evs, flightEnd(intervals, instrs, switches, timeNS, 0))
}

// oracleColumn assembles the synthesized oracle run from the family's raw
// outcome rows: every interval advances by the oracle's minimal time on the
// oracle's config, switches are free of charge (the oracle bounds achievable
// time, it does not model a realizable controller), and regret is zero by
// construction. Events are built only when rec; the accumulators always are,
// in the same float operation order either way.
func (mp *MultiPolicy) oracleColumn(cycles, issued [][]int64, oCfg []int, oNS []float64, intervals int64, rec bool) (evs []flight.Event, instrs, switches int64, timeNS float64) {
	if rec {
		evs = make([]flight.Event, intervals)
	}
	for iv := int64(0); iv < intervals; iv++ {
		c := oCfg[iv]
		adv := oNS[iv]
		timeNS += adv
		instrs += issued[c][iv]
		switched := iv > 0 && c != oCfg[iv-1]
		if switched {
			switches++
		}
		if rec {
			evs[iv] = flight.Event{
				Interval:  iv,
				Config:    c,
				Size:      mp.sizes[c],
				Cycles:    cycles[c][iv],
				Issued:    issued[c][iv],
				PeriodNS:  mp.cycs[c],
				AdvNS:     adv,
				CumTimeNS: timeNS,
				TPI:       adv / float64(issued[c][iv]),
				OracleCfg: c,
				OracleNS:  adv,
				Switched:  switched,
			}
		}
	}
	return evs, instrs, switches, timeNS
}

// RunOracle synthesizes the per-interval oracle as a first-class run: the
// TIME-domain minimum over the interval family at every interval, charged no
// reconfiguration costs. It is the zero line every regret column is measured
// against; the zoo experiment races it alongside the real contenders so the
// league table carries its own reference. When the recorder is active the
// column is published under kind "oracle" with cumulative regret exactly 0.
func (mp *MultiPolicy) RunOracle(ctx context.Context, intervals int64) (RunResult, error) {
	fam, err := familyFor(mp.b, mp.seed, mp.sizes, mp.n)
	if err != nil {
		return RunResult{}, err
	}
	cycles, issued, err := fam.rows(ctx, intervals)
	if err != nil {
		return RunResult{}, err
	}
	oCfg, oNS := mp.flightOracle(cycles, intervals)
	rec := flight.Active(ctx)
	evs, instrs, switches, timeNS := mp.oracleColumn(cycles, issued, oCfg, oNS, intervals, rec)
	res := RunResult{Policy: "oracle", Instrs: instrs, TimeNS: timeNS, Switches: switches}
	if instrs != 0 {
		res.TPI = timeNS / float64(instrs)
	}
	if rec {
		flight.Publish(ctx, mp.flightMeta("oracle", flight.KindOracle), evs, flightEnd(intervals, instrs, switches, timeNS, 0))
	}
	return res, nil
}
