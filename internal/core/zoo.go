package core

import "math"

// This file is the dynamic-policy zoo: four adaptation schemes beyond the
// paper's interval predictor, each a drop-in Policy raced through the
// one-pass MultiPolicy engine. They bracket the design space the ROADMAP
// calls out — damped reaction (hysteresis), proportional control (PID),
// optimism-driven exploration (bandit), and explicit phases (profile-then-
// commit). All four follow two package-wide rules: tunables use the
// negative-sentinel convention (see tunableF in policy.go), and candidate
// configurations are marked visited when DISPATCHED, never when their
// sample returns, so a configuration that never yields a Monitor.Last()
// sample cannot livelock the bootstrap.

// driftTripped reports whether a fresh TPI sample deviates from its own
// smoothed estimate by more than a fractional gain. Every zoo policy uses
// this as its phase-change detector: a regime flip is visible in the
// incumbent configuration's OWN samples — which arrive every interval, for
// free — so re-exploration can trigger immediately instead of waiting out a
// periodic explore timer whose period may exceed the phase length.
func driftTripped(est, tpi, gain float64) bool {
	if est <= 0 {
		return false
	}
	d := tpi - est
	if d < 0 {
		d = -d
	}
	return d/est > gain
}

// driftConfirm is how many CONSECUTIVE deviating incumbent samples a phase
// flip must show before a policy reacts. While a streak is pending the
// reference estimate is frozen: a genuine flip keeps deviating from the
// old-regime reference and confirms on the second sample, while
// interval-by-interval flapping swings back inside the gain band and resets
// the streak — the discriminator that keeps drift detection from amplifying
// exactly the thrash the dwell/deadband machinery exists to damp.
const driftConfirm = 2

// ewmaUpdate folds a new TPI sample into a per-configuration estimate
// table with weight alpha (first sample is taken verbatim).
func ewmaUpdate(est map[int]float64, cfg int, tpi, alpha float64) {
	if old, have := est[cfg]; have {
		est[cfg] = old*(1-alpha) + tpi*alpha
	} else {
		est[cfg] = tpi
	}
}

// bestEstimate returns the candidate with the smallest estimated TPI,
// scanning configs in slice order so ties break toward the earlier
// (faster-clock) entry. Falls back to cur when nothing is estimated yet.
func bestEstimate(est map[int]float64, configs []int, cur int) (int, float64) {
	best, bestTPI := cur, est[cur]
	for _, id := range configs {
		if e, ok := est[id]; ok && e < bestTPI {
			best, bestTPI = id, e
		}
	}
	return best, bestTPI
}

// HysteresisPolicy reconfigures through a deadband: it tracks the same
// per-configuration TPI estimates as IntervalPolicy but replaces the
// confidence counter with two damping mechanisms — a minimum fractional
// gain (the deadband, entered only when the estimated improvement clears
// SwitchGain) and a minimum dwell time after every move. The combination
// is classic hysteresis: small oscillations around the switching threshold
// produce no reconfigurations at all, while the dwell floor bounds the
// worst-case switch rate even when the workload alternates faster than the
// policy can follow.
type HysteresisPolicy struct {
	// Configs are the candidate configuration IDs.
	Configs []int
	// SwitchGain is the fractional TPI improvement required before the
	// deadband opens (default 0.08; negative means zero: any gain moves).
	SwitchGain float64
	// DwellMin is the minimum number of intervals between voluntary
	// moves (default 6; negative means zero: no dwell floor).
	DwellMin int64
	// ExplorePeriod is how many intervals between estimate-refreshing
	// visits (default 64; negative disables exploration). Drift detection
	// is the primary phase-change trigger; exploration is the staleness
	// backstop for shifts too small to see from the incumbent, so it can
	// afford a sparse cadence.
	ExplorePeriod int64
	// Alpha is the EWMA weight of a new sample (default 0.3; negative
	// means zero: estimates freeze at their first sample).
	Alpha float64
	// DriftGain is the fractional deviation of a fresh incumbent sample
	// from its smoothed estimate that signals a phase change and forces an
	// immediate re-exploration sweep (default 0.08, tight enough to see a
	// flip a saturated incumbent shows only faintly — see
	// IntervalPolicy.DriftGain; negative means zero:
	// any deviation re-sweeps).
	DriftGain float64

	est        map[int]float64
	seen       map[int]bool
	dwell      int64
	intervals  int64
	exploreIdx int
	exploring  bool
	driftRun   int
	current    int
	inited     bool
}

// Name implements Policy.
func (p *HysteresisPolicy) Name() string { return "hysteresis" }

func (p *HysteresisPolicy) defaults() {
	if p.est != nil {
		return
	}
	p.SwitchGain = tunableF(p.SwitchGain, 0.08)
	p.DwellMin = tunableI64(p.DwellMin, 6)
	p.ExplorePeriod = tunableI64(p.ExplorePeriod, 64)
	p.Alpha = tunableF(p.Alpha, 0.3)
	p.DriftGain = tunableF(p.DriftGain, 0.08)
	p.est = make(map[int]float64, len(p.Configs))
	p.seen = make(map[int]bool, len(p.Configs))
}

// Next implements Policy.
func (p *HysteresisPolicy) Next(m *Monitor) int {
	p.defaults()
	if len(p.Configs) == 0 {
		return m.Current
	}
	if !p.inited {
		p.inited = true
		p.current = m.Current
	}
	if last, ok := m.Last(); ok {
		switch {
		case last.Config == p.current && driftTripped(p.est[last.Config], last.TPI, p.DriftGain):
			p.driftRun++
			if p.driftRun >= driftConfirm {
				// Confirmed phase flip seen from inside the incumbent: the
				// whole estimate table describes the old regime. Restart it
				// — the fresh sample verbatim, every other configuration
				// re-swept.
				p.est = map[int]float64{last.Config: last.TPI}
				for _, id := range p.Configs {
					if id != p.current {
						delete(p.seen, id)
					}
				}
				p.driftRun = 0
			}
			// Streak pending: freeze the estimate so the old-regime
			// reference doesn't chase the candidate new level.
		case last.Config == p.current:
			p.driftRun = 0
			ewmaUpdate(p.est, last.Config, last.TPI, p.Alpha)
		case driftTripped(p.est[last.Config], last.TPI, p.DriftGain):
			// An exploration visit contradicting its own stale estimate:
			// phase-flip evidence from outside the incumbent (see
			// IntervalPolicy.Next). Verbatim, so the deadband comparison
			// sees the new regime immediately.
			p.est[last.Config] = last.TPI
		default:
			ewmaUpdate(p.est, last.Config, last.TPI, p.Alpha)
		}
	}
	p.intervals++
	p.dwell++

	for _, id := range p.Configs {
		if !p.seen[id] {
			p.seen[id] = true
			p.exploring = true
			return id
		}
	}
	// A returning visit's sample is already folded in: fall through and
	// decide on it now rather than coasting an interval at the incumbent.
	p.exploring = false
	// Rotation skips the incumbent so every period probes a stale estimate.
	if p.ExplorePeriod > 0 && p.intervals%p.ExplorePeriod == 0 && len(p.Configs) > 1 {
		for range p.Configs {
			p.exploreIdx = (p.exploreIdx + 1) % len(p.Configs)
			if id := p.Configs[p.exploreIdx]; id != p.current {
				p.exploring = true
				return id
			}
		}
	}

	best, bestTPI := bestEstimate(p.est, p.Configs, p.current)
	cur := p.est[p.current]
	if best != p.current && p.dwell >= p.DwellMin && cur > 0 && (cur-bestTPI)/cur >= p.SwitchGain {
		p.current = best
		p.dwell = 0
	}
	return p.current
}

// PIDPolicy closes a PID loop around the monitored TPI: the process
// variable is the incumbent configuration's estimated TPI, the setpoint is
// the best TPI seen anywhere on the menu, and the error is the fractional
// slowdown between them. Proportional, integral (clamped against windup)
// and derivative terms combine into a control output; when it exceeds the
// actuation deadband the policy slews ONE menu position toward the best
// estimate — a control loop moves its plant incrementally rather than
// jumping across the actuator range — and discharges the integrator.
type PIDPolicy struct {
	// Configs are the candidate configuration IDs.
	Configs []int
	// KP, KI, KD are the PID gains on the fractional TPI error
	// (defaults 0.6, 0.25, 0.15; negative means zero: term disabled).
	KP, KI, KD float64
	// Deadband is the control-output magnitude required to actuate
	// (default 0.12; negative means zero: every error actuates).
	Deadband float64
	// WindupMax clamps the integral term (default 1.5; negative means
	// zero: pure PD control).
	WindupMax float64
	// ExplorePeriod is how many intervals between estimate-refreshing
	// visits (default 64; negative disables exploration); as with
	// HysteresisPolicy, a staleness backstop behind drift detection.
	ExplorePeriod int64
	// Alpha is the EWMA weight of a new sample (default 0.3; negative
	// means zero: estimates freeze at their first sample).
	Alpha float64
	// DriftGain is the fractional deviation of a fresh incumbent sample
	// from its smoothed estimate that signals a phase change and forces an
	// immediate re-exploration sweep (default 0.08, tight enough to see a
	// flip a saturated incumbent shows only faintly — see
	// IntervalPolicy.DriftGain; negative means zero:
	// any deviation re-sweeps).
	DriftGain float64

	est        map[int]float64
	seen       map[int]bool
	integral   float64
	prevErr    float64
	havePrev   bool
	intervals  int64
	exploreIdx int
	exploring  bool
	driftRun   int
	current    int
	inited     bool
}

// Name implements Policy.
func (p *PIDPolicy) Name() string { return "pid-tpi" }

func (p *PIDPolicy) defaults() {
	if p.est != nil {
		return
	}
	p.KP = tunableF(p.KP, 0.6)
	p.KI = tunableF(p.KI, 0.25)
	p.KD = tunableF(p.KD, 0.15)
	p.Deadband = tunableF(p.Deadband, 0.12)
	p.WindupMax = tunableF(p.WindupMax, 1.5)
	p.ExplorePeriod = tunableI64(p.ExplorePeriod, 64)
	p.Alpha = tunableF(p.Alpha, 0.3)
	p.DriftGain = tunableF(p.DriftGain, 0.08)
	p.est = make(map[int]float64, len(p.Configs))
	p.seen = make(map[int]bool, len(p.Configs))
}

// stepToward moves cur one position along configs toward best, used as the
// PID actuator. Unknown positions jump straight to best.
func stepToward(configs []int, cur, best int) int {
	ci, bi := -1, -1
	for i, id := range configs {
		if id == cur {
			ci = i
		}
		if id == best {
			bi = i
		}
	}
	if ci < 0 || bi < 0 || ci == bi {
		return best
	}
	if bi > ci {
		return configs[ci+1]
	}
	return configs[ci-1]
}

// Next implements Policy.
func (p *PIDPolicy) Next(m *Monitor) int {
	p.defaults()
	if len(p.Configs) == 0 {
		return m.Current
	}
	if !p.inited {
		p.inited = true
		p.current = m.Current
	}
	if last, ok := m.Last(); ok {
		switch {
		case last.Config == p.current && driftTripped(p.est[last.Config], last.TPI, p.DriftGain):
			p.driftRun++
			if p.driftRun >= driftConfirm {
				// Confirmed phase flip: rebuild the estimate table from the
				// new regime and discharge the loop — integral and
				// derivative state accumulated against the old plant would
				// mis-actuate against the new one.
				p.est = map[int]float64{last.Config: last.TPI}
				for _, id := range p.Configs {
					if id != p.current {
						delete(p.seen, id)
					}
				}
				p.integral, p.prevErr, p.havePrev = 0, 0, false
				p.driftRun = 0
			}
		case last.Config == p.current:
			p.driftRun = 0
			ewmaUpdate(p.est, last.Config, last.TPI, p.Alpha)
		case driftTripped(p.est[last.Config], last.TPI, p.DriftGain):
			// Exploration visit contradicting its stale estimate: verbatim,
			// as in IntervalPolicy.Next — the loop must see the new regime's
			// error signal immediately, not an EWMA-lagged shadow of it.
			p.est[last.Config] = last.TPI
		default:
			ewmaUpdate(p.est, last.Config, last.TPI, p.Alpha)
		}
	}
	p.intervals++

	for _, id := range p.Configs {
		if !p.seen[id] {
			p.seen[id] = true
			p.exploring = true
			return id
		}
	}
	// A returning visit's sample is already folded in: fall through and
	// decide on it now rather than coasting an interval at the incumbent.
	p.exploring = false
	// Rotation skips the incumbent so every period probes a stale estimate.
	if p.ExplorePeriod > 0 && p.intervals%p.ExplorePeriod == 0 && len(p.Configs) > 1 {
		for range p.Configs {
			p.exploreIdx = (p.exploreIdx + 1) % len(p.Configs)
			if id := p.Configs[p.exploreIdx]; id != p.current {
				p.exploring = true
				return id
			}
		}
	}

	best, bestTPI := bestEstimate(p.est, p.Configs, p.current)
	cur := p.est[p.current]
	if best == p.current || cur <= 0 || bestTPI <= 0 {
		// On target (or nothing to steer by): bleed the loop state so a
		// stale error cannot actuate after the plant has already settled.
		p.integral, p.prevErr, p.havePrev = 0, 0, false
		return p.current
	}
	e := (cur - bestTPI) / cur // fractional slowdown vs the best known
	p.integral += e
	if p.integral > p.WindupMax {
		p.integral = p.WindupMax
	}
	var d float64
	if p.havePrev {
		d = e - p.prevErr
	}
	p.prevErr, p.havePrev = e, true
	u := p.KP*e + p.KI*p.integral + p.KD*d
	if u > p.Deadband {
		p.current = stepToward(p.Configs, p.current, best)
		p.integral, p.prevErr, p.havePrev = 0, 0, false
	}
	return p.current
}

// SlopeBanditPolicy treats the configuration menu as bandit arms. Each
// arm keeps a sliding window of recent TPI samples; the decision index is
// the windowed mean, plus a one-step slope projection (an arm trending
// worse is charged its momentum), minus a UCB-flavored exploration bonus
// that grows for rarely pulled arms. The sliding window is what lets the
// bandit track phase changes: stale history ages out instead of anchoring
// the mean. Because the UCB bonus grows only logarithmically — far too
// slowly to re-audition a clearly-losing arm within a phase — a staleness
// horizon forces a pull of any arm idle longer than Staleness intervals
// (the sliding-window bandit discipline: statistics older than the horizon
// are not evidence), and a forced pull that contradicts the arm's stale
// window restarts that window on the fresh sample.
type SlopeBanditPolicy struct {
	// Configs are the candidate configuration IDs.
	Configs []int
	// Explore weights the exploration bonus, in units of the mean TPI
	// scale (default 0.35; negative means zero: pure exploitation).
	Explore float64
	// SlopeWeight weights the one-step trend projection
	// (default 0.5; negative means zero: plain windowed mean).
	SlopeWeight float64
	// Window is the per-arm sample memory (default 8; negative is
	// clamped to 1: last-value only).
	Window int
	// Staleness is the age, in pulls of any arm, past which an idle arm
	// is forcibly re-auditioned (default 32; negative disables forced
	// re-audition). It bounds how long a phase flip invisible from the
	// home arm can go unnoticed; the bandit keeps a denser cadence than
	// the est-based policies because forced pulls are its only source of
	// off-home freshness.
	Staleness int64
	// DriftGain is the fractional deviation of a fresh incumbent sample
	// from its windowed mean that signals a phase change and restarts
	// every other arm's statistics (default 0.25; negative means zero:
	// any deviation restarts). Deliberately wider than
	// IntervalPolicy.DriftGain: a restart collapses an arm's window to a
	// single sample, and single-sample windows make the value+slope score
	// flappy — the bandit's sliding windows already track gradual regime
	// shifts, so drift restarts are reserved for unambiguous cliffs.
	DriftGain float64

	hist       map[int][]float64
	pulls      map[int]int64
	lastPull   map[int]int64
	dispatched map[int]bool
	t          int64
	driftRun   int
	home       int
	current    int
	inited     bool
}

// Name implements Policy.
func (p *SlopeBanditPolicy) Name() string { return "slope-bandit" }

func (p *SlopeBanditPolicy) defaults() {
	if p.hist != nil {
		return
	}
	p.Explore = tunableF(p.Explore, 0.35)
	p.SlopeWeight = tunableF(p.SlopeWeight, 0.5)
	p.Window = tunableI(p.Window, 8)
	if p.Window < 1 {
		p.Window = 1
	}
	p.Staleness = tunableI64(p.Staleness, 32)
	p.DriftGain = tunableF(p.DriftGain, 0.25)
	p.hist = make(map[int][]float64, len(p.Configs))
	p.pulls = make(map[int]int64, len(p.Configs))
	p.lastPull = make(map[int]int64, len(p.Configs))
	p.dispatched = make(map[int]bool, len(p.Configs))
}

// windowMean returns the arm's windowed mean TPI, or 0 with no samples.
func (p *SlopeBanditPolicy) windowMean(id int) float64 {
	h := p.hist[id]
	if len(h) == 0 {
		return 0
	}
	var s float64
	for _, v := range h {
		s += v
	}
	return s / float64(len(h))
}

// Next implements Policy.
func (p *SlopeBanditPolicy) Next(m *Monitor) int {
	p.defaults()
	if len(p.Configs) == 0 {
		return m.Current
	}
	if !p.inited {
		p.inited = true
		p.current = m.Current
		p.home = m.Current
	}
	if last, ok := m.Last(); ok {
		switch {
		case last.Config == p.home && driftTripped(p.windowMean(last.Config), last.TPI, p.DriftGain):
			p.driftRun++
			if p.driftRun >= driftConfirm {
				// Confirmed phase flip seen from inside the home arm: every
				// window holds old-regime samples. Restart the home arm on
				// the fresh sample and mark the other arms undispatched so
				// the bootstrap loop re-auditions each once under the new
				// regime.
				p.hist = map[int][]float64{last.Config: {last.TPI}}
				p.pulls = map[int]int64{last.Config: 1}
				p.lastPull = map[int]int64{last.Config: p.t}
				for _, id := range p.Configs {
					if id != p.home {
						delete(p.dispatched, id)
					}
				}
				p.driftRun = 0
			}
			// Streak pending: keep the window frozen as the old-regime
			// reference.
			p.t++
		case last.Config != p.home && driftTripped(p.windowMean(last.Config), last.TPI, p.DriftGain):
			// A re-audition contradicting the arm's stale window: the
			// window predates a regime change, so it is not evidence —
			// restart it on the fresh sample (phase-flip coverage for flips
			// the home arm's own TPI does not show).
			p.hist[last.Config] = []float64{last.TPI}
			p.pulls[last.Config]++
			p.lastPull[last.Config] = p.t
			p.t++
		default:
			if last.Config == p.home {
				p.driftRun = 0
			}
			h := append(p.hist[last.Config], last.TPI)
			if len(h) > p.Window {
				h = h[len(h)-p.Window:]
			}
			p.hist[last.Config] = h
			p.pulls[last.Config]++
			p.lastPull[last.Config] = p.t
			p.t++
		}
	}

	for _, id := range p.Configs {
		if !p.dispatched[id] {
			p.dispatched[id] = true
			p.current = id
			return id
		}
	}

	// Forced re-audition: any non-home arm idle past the staleness horizon
	// gets pulled (stalest first, menu order breaking ties). This, not the
	// log-growth UCB bonus, is what bounds phase-flip discovery time.
	if p.Staleness > 0 {
		stalest, age := -1, p.Staleness
		for _, id := range p.Configs {
			if id == p.home {
				continue
			}
			if a := p.t - p.lastPull[id]; a > age {
				stalest, age = id, a
			}
		}
		if stalest >= 0 {
			p.current = stalest
			return stalest
		}
	}

	// TPI scale for the exploration bonus: mean of the arm means, so the
	// bonus competes in the same units as the decision index.
	var scale float64
	var arms int
	for _, id := range p.Configs {
		if h := p.hist[id]; len(h) > 0 {
			var s float64
			for _, v := range h {
				s += v
			}
			scale += s / float64(len(h))
			arms++
		}
	}
	if arms == 0 {
		return p.current // no samples ever: settle on the incumbent
	}
	scale /= float64(arms)

	best, bestV := -1, math.Inf(1)
	for _, id := range p.Configs {
		n := p.pulls[id]
		if n == 0 {
			continue // dispatched but never sampled: nothing to judge
		}
		h := p.hist[id]
		var mean float64
		for _, v := range h {
			mean += v
		}
		mean /= float64(len(h))
		var slope float64
		if len(h) >= 2 {
			slope = h[len(h)-1] - h[len(h)-2]
		}
		v := mean + p.SlopeWeight*slope - p.Explore*scale*math.Sqrt(math.Log(float64(p.t+1))/float64(n))
		if best < 0 || v < bestV {
			best, bestV = id, v
		}
	}
	if best >= 0 {
		p.current = best
		p.home = best
	}
	return p.current
}

// ProfileThenCommitPolicy is the software-managed scheme: dedicate a short
// profiling round to each candidate (ProbeIntervals dispatches apiece),
// commit to the configuration with the best mean TPI, and hold it. With a
// positive RecommitPeriod the commitment expires and profiling restarts
// from scratch — the explore/exploit boundary is explicit and scheduled,
// the opposite end of the design space from the bandit's continuous
// hedging.
type ProfileThenCommitPolicy struct {
	// Configs are the candidate configuration IDs.
	Configs []int
	// ProbeIntervals is how many intervals each candidate is profiled
	// per round (default 2; negative is clamped to 1).
	ProbeIntervals int64
	// RecommitPeriod is how many committed intervals pass before
	// re-profiling regardless of drift (default 150; negative means zero:
	// commit until drift). Drift detection is the primary recommit
	// trigger; the period is a staleness backstop.
	RecommitPeriod int64
	// DriftGain is the fractional deviation of a committed incumbent's
	// sample from its smoothed estimate that expires the commitment and
	// restarts profiling immediately (default 0.25; negative means zero:
	// any deviation recommits). Deliberately wider than
	// IntervalPolicy.DriftGain: every expiry pays a full profiling sweep
	// (ProbeIntervals visits to each configuration), so on irregular
	// phase structure a tight gain turns jittery-but-committed regions
	// into permanent profiling churn.
	DriftGain float64

	sum        map[int]float64
	cnt        map[int]int64
	probed     int64
	committed  bool
	commitLeft int64
	commitEst  float64
	haveEst    bool
	driftRun   int
	current    int
	inited     bool
}

// Name implements Policy.
func (p *ProfileThenCommitPolicy) Name() string { return "profile-commit" }

func (p *ProfileThenCommitPolicy) defaults() {
	if p.sum != nil {
		return
	}
	p.ProbeIntervals = tunableI64(p.ProbeIntervals, 2)
	if p.ProbeIntervals < 1 {
		p.ProbeIntervals = 1
	}
	p.RecommitPeriod = tunableI64(p.RecommitPeriod, 150)
	p.DriftGain = tunableF(p.DriftGain, 0.25)
	p.sum = make(map[int]float64, len(p.Configs))
	p.cnt = make(map[int]int64, len(p.Configs))
}

// reprofile discards the committed state and restarts the probe round.
func (p *ProfileThenCommitPolicy) reprofile() {
	p.committed = false
	p.probed = 0
	p.haveEst = false
	p.driftRun = 0
	p.sum = make(map[int]float64, len(p.Configs))
	p.cnt = make(map[int]int64, len(p.Configs))
}

// Next implements Policy.
func (p *ProfileThenCommitPolicy) Next(m *Monitor) int {
	p.defaults()
	if len(p.Configs) == 0 {
		return m.Current
	}
	if !p.inited {
		p.inited = true
		p.current = m.Current
	}
	if last, ok := m.Last(); ok {
		switch {
		case !p.committed:
			p.sum[last.Config] += last.TPI
			p.cnt[last.Config]++
		case last.Config == p.current:
			// Committed: watch the incumbent for phase drift. The profile
			// the commitment rests on describes the regime it was taken
			// in; an incumbent that persistently deviates from it means
			// that profile is stale.
			switch {
			case p.haveEst && driftTripped(p.commitEst, last.TPI, p.DriftGain):
				p.driftRun++
				if p.driftRun >= driftConfirm {
					p.reprofile()
				}
				// Streak pending: commitEst frozen as the reference.
			case p.haveEst:
				p.driftRun = 0
				p.commitEst = p.commitEst*0.7 + last.TPI*0.3
			default:
				p.commitEst, p.haveEst = last.TPI, true
			}
		}
	}

	if !p.committed {
		// Profiling advances by DISPATCH count, so a candidate that
		// never returns a sample still consumes its probe slots instead
		// of stalling the round.
		if p.probed < p.ProbeIntervals*int64(len(p.Configs)) {
			id := p.Configs[p.probed/p.ProbeIntervals]
			p.probed++
			p.current = id
			return id
		}
		best, bestTPI := p.current, math.Inf(1)
		found := false
		for _, id := range p.Configs {
			if p.cnt[id] == 0 {
				continue
			}
			if mean := p.sum[id] / float64(p.cnt[id]); !found || mean < bestTPI {
				best, bestTPI, found = id, mean, true
			}
		}
		if found {
			p.current = best
		}
		p.committed = true
		p.commitLeft = p.RecommitPeriod
		p.haveEst = false
	}
	if p.committed && p.RecommitPeriod > 0 {
		p.commitLeft--
		if p.commitLeft <= 0 {
			// Commitment expired: restart profiling from scratch on the
			// next decision, with fresh statistics for the new phase.
			p.reprofile()
		}
	}
	return p.current
}
