package core

import (
	"fmt"
	"math"
)

// FixedPolicy never reconfigures: it models a conventional processor whose
// complexity was frozen at design time (the paper's baselines).
type FixedPolicy struct {
	Config int
}

// Name implements Policy.
func (p FixedPolicy) Name() string { return fmt.Sprintf("fixed(%d)", p.Config) }

// Next implements Policy.
func (p FixedPolicy) Next(*Monitor) int { return p.Config }

// ProcessLevelPolicy is the paper's evaluation model (Section 5.1): the
// configuration is fixed for the duration of an application, chosen as the
// best overall configuration for that application by a CAP compiler or
// runtime environment (modeled as an oracle profiling pass), and the
// configuration registers are reloaded by the operating system on context
// switches. Within a run it behaves like FixedPolicy; the per-application
// choice is made by SelectBest.
type ProcessLevelPolicy struct {
	// Best is the profiled best configuration for the running application.
	Best int
}

// Name implements Policy.
func (p ProcessLevelPolicy) Name() string { return fmt.Sprintf("process-level(%d)", p.Best) }

// Next implements Policy.
func (p ProcessLevelPolicy) Next(*Monitor) int { return p.Best }

// SelectBest returns the configuration ID with the smallest TPI from a
// profiling table, breaking ties toward the smaller (faster-clock)
// configuration. It panics on an empty table.
func SelectBest(tpiByConfig map[int]float64) int {
	if len(tpiByConfig) == 0 {
		panic("core: SelectBest on empty table")
	}
	best, bestTPI := math.MaxInt, math.Inf(1)
	for id, tpi := range tpiByConfig {
		if tpi < bestTPI || (tpi == bestTPI && id < best) {
			best, bestTPI = id, tpi
		}
	}
	return best
}

// SelectBestIndex is SelectBest for the dense profiling tables the parallel
// sweep produces: it returns the index of the smallest finite TPI, breaking
// ties toward the smaller (faster-clock) index. Non-finite entries (the +Inf
// padding in slot 0 of cache tables, whose boundaries are 1-based) are
// skipped. It panics if no finite entry exists.
func SelectBestIndex(tpiByConfig []float64) int {
	best, bestTPI := -1, math.Inf(1)
	for id, tpi := range tpiByConfig {
		if math.IsInf(tpi, 0) || math.IsNaN(tpi) {
			continue
		}
		if tpi < bestTPI || best < 0 {
			best, bestTPI = id, tpi
		}
	}
	if best < 0 {
		panic("core: SelectBestIndex on empty table")
	}
	return best
}

// IntervalPolicy is the Section 6 extension: a hardware predictor that reads
// the performance-monitoring hardware every interval, predicts the
// best-performing configuration for the next interval, and switches when
// confident. The design follows the paper's two observations:
//
//   - long stable phases and regular alternation patterns are exploitable
//     with simple last-value prediction over per-configuration TPI
//     estimates;
//   - irregular regions (Figure 13(b)) must not cause reconfiguration
//     thrash, so predictions carry a saturating confidence counter and a
//     minimum-gain threshold, "as with value prediction ... a confidence
//     level ... to avoid needless reconfiguration overhead".
//
// The predictor maintains an exponentially weighted TPI estimate per
// configuration, refreshed by occasional exploration visits, and moves only
// when the estimated gain exceeds MinGain for ConfidenceMax consecutive
// intervals.
type IntervalPolicy struct {
	// Configs are the candidate configuration IDs.
	Configs []int
	// MinGain is the fractional TPI improvement required to switch
	// (default 0.03).
	MinGain float64
	// ConfidenceMax is the saturating-counter threshold (default 2).
	ConfidenceMax int
	// ExplorePeriod is how many intervals between exploration visits to a
	// stale configuration (default 32). Exploration is what keeps the
	// per-configuration estimates fresh without continuous sampling.
	ExplorePeriod int64
	// Alpha is the EWMA weight of a new sample (default 0.5).
	Alpha float64

	est        map[int]float64
	seen       map[int]bool
	confidence int
	candidate  int
	intervals  int64
	exploreIdx int
	exploring  bool
	current    int
	inited     bool
}

// Name implements Policy.
func (p *IntervalPolicy) Name() string { return "interval-adaptive" }

func (p *IntervalPolicy) defaults() {
	if p.MinGain == 0 {
		p.MinGain = 0.03
	}
	if p.ConfidenceMax == 0 {
		p.ConfidenceMax = 2
	}
	if p.ExplorePeriod == 0 {
		p.ExplorePeriod = 32
	}
	if p.Alpha == 0 {
		p.Alpha = 0.5
	}
	if p.est == nil {
		p.est = make(map[int]float64, len(p.Configs))
		p.seen = make(map[int]bool, len(p.Configs))
	}
}

// Next implements Policy.
func (p *IntervalPolicy) Next(m *Monitor) int {
	p.defaults()
	if len(p.Configs) == 0 {
		return m.Current
	}
	if !p.inited {
		p.inited = true
		p.current = m.Current
	}
	last, ok := m.Last()
	if ok {
		if old, have := p.est[last.Config]; have {
			p.est[last.Config] = old*(1-p.Alpha) + last.TPI*p.Alpha
		} else {
			p.est[last.Config] = last.TPI
		}
		p.seen[last.Config] = true
	}
	p.intervals++

	// Bootstrap: visit every configuration once to fill the table.
	for _, id := range p.Configs {
		if !p.seen[id] {
			p.exploring = true
			return id
		}
	}

	// Returning from an exploration visit: fall back to the incumbent
	// (the visit's sample has already updated the estimates).
	if p.exploring {
		p.exploring = false
		return p.current
	}

	// Periodic exploration to refresh stale estimates.
	if p.ExplorePeriod > 0 && p.intervals%p.ExplorePeriod == 0 && len(p.Configs) > 1 {
		p.exploreIdx = (p.exploreIdx + 1) % len(p.Configs)
		id := p.Configs[p.exploreIdx]
		if id != p.current {
			p.exploring = true
			return id
		}
	}

	// Prediction: best estimated configuration, confidence-gated.
	best, bestTPI := p.current, p.est[p.current]
	for _, id := range p.Configs {
		if e, ok := p.est[id]; ok && e < bestTPI {
			best, bestTPI = id, e
		}
	}
	cur := p.est[p.current]
	if best != p.current && cur > 0 && (cur-bestTPI)/cur >= p.MinGain {
		if best == p.candidate {
			p.confidence++
		} else {
			p.candidate, p.confidence = best, 1
		}
		if p.confidence >= p.ConfidenceMax {
			p.current = best
			p.confidence = 0
			p.candidate = -1
		}
	} else {
		p.confidence = 0
		p.candidate = -1
	}
	return p.current
}
