package core

import (
	"fmt"
	"math"
)

// Tunable-defaulting convention, shared by every adaptive policy in this
// package (IntervalPolicy and the zoo contenders in zoo.go): the Go zero
// value of a tunable selects its documented default, so short struct
// literals keep working, and a NEGATIVE value selects an explicit zero —
// which the zero value cannot express. &IntervalPolicy{MinGain: -1} demands
// "switch on any gain"; ExplorePeriod: -1 disables exploration outright.
// Without the sentinel, an explicitly configured zero was silently coerced
// back to the default.
func tunableF(v, def float64) float64 {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

func tunableI(v, def int) int {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

func tunableI64(v, def int64) int64 {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

// FixedPolicy never reconfigures: it models a conventional processor whose
// complexity was frozen at design time (the paper's baselines).
type FixedPolicy struct {
	Config int
}

// Name implements Policy.
func (p FixedPolicy) Name() string { return fmt.Sprintf("fixed(%d)", p.Config) }

// Next implements Policy.
func (p FixedPolicy) Next(*Monitor) int { return p.Config }

// ProcessLevelPolicy is the paper's evaluation model (Section 5.1): the
// configuration is fixed for the duration of an application, chosen as the
// best overall configuration for that application by a CAP compiler or
// runtime environment (modeled as an oracle profiling pass), and the
// configuration registers are reloaded by the operating system on context
// switches. Within a run it behaves like FixedPolicy; the per-application
// choice is made by SelectBest.
type ProcessLevelPolicy struct {
	// Best is the profiled best configuration for the running application.
	Best int
}

// Name implements Policy.
func (p ProcessLevelPolicy) Name() string { return fmt.Sprintf("process-level(%d)", p.Best) }

// Next implements Policy.
func (p ProcessLevelPolicy) Next(*Monitor) int { return p.Best }

// SelectBest returns the configuration ID with the smallest TPI from a
// profiling table, breaking ties toward the smaller (faster-clock)
// configuration. It panics on an empty table.
func SelectBest(tpiByConfig map[int]float64) int {
	if len(tpiByConfig) == 0 {
		panic("core: SelectBest on empty table")
	}
	best, bestTPI := math.MaxInt, math.Inf(1)
	for id, tpi := range tpiByConfig {
		if tpi < bestTPI || (tpi == bestTPI && id < best) {
			best, bestTPI = id, tpi
		}
	}
	return best
}

// SelectBestIndex is SelectBest for the dense profiling tables the parallel
// sweep produces: it returns the index of the smallest finite TPI, breaking
// ties toward the smaller (faster-clock) index. Non-finite entries (the +Inf
// padding in slot 0 of cache tables, whose boundaries are 1-based) are
// skipped. It panics if no finite entry exists.
func SelectBestIndex(tpiByConfig []float64) int {
	best, bestTPI := -1, math.Inf(1)
	for id, tpi := range tpiByConfig {
		if math.IsInf(tpi, 0) || math.IsNaN(tpi) {
			continue
		}
		if tpi < bestTPI || best < 0 {
			best, bestTPI = id, tpi
		}
	}
	if best < 0 {
		panic("core: SelectBestIndex on empty table")
	}
	return best
}

// IntervalPolicy is the Section 6 extension: a hardware predictor that reads
// the performance-monitoring hardware every interval, predicts the
// best-performing configuration for the next interval, and switches when
// confident. The design follows the paper's two observations:
//
//   - long stable phases and regular alternation patterns are exploitable
//     with simple last-value prediction over per-configuration TPI
//     estimates;
//   - irregular regions (Figure 13(b)) must not cause reconfiguration
//     thrash, so predictions carry a saturating confidence counter and a
//     minimum-gain threshold, "as with value prediction ... a confidence
//     level ... to avoid needless reconfiguration overhead".
//
// The predictor maintains an exponentially weighted TPI estimate per
// configuration, refreshed by occasional exploration visits, and moves only
// when the estimated gain exceeds MinGain for ConfidenceMax consecutive
// intervals.
type IntervalPolicy struct {
	// Configs are the candidate configuration IDs.
	Configs []int
	// MinGain is the fractional TPI improvement required to switch
	// (default 0.03; negative means zero: switch on any gain).
	MinGain float64
	// ConfidenceMax is the saturating-counter threshold (default 2;
	// negative means zero: switch without confidence buildup).
	ConfidenceMax int
	// ExplorePeriod is how many intervals between exploration visits to a
	// stale configuration (default 64; negative disables exploration).
	// Drift detection (DriftGain) is the primary phase-change trigger;
	// periodic exploration is the staleness backstop that catches regime
	// shifts too small for the drift detector to see from the incumbent,
	// so it can afford a sparse cadence.
	ExplorePeriod int64
	// Alpha is the EWMA weight of a new sample (default 0.5; negative
	// means zero: estimates freeze at their first sample).
	Alpha float64
	// DriftGain is the fractional deviation of a fresh incumbent sample
	// from its smoothed estimate that signals a phase change and forces an
	// immediate re-exploration sweep — the paper's observation that
	// performance variation, not a timer, is what should trigger
	// re-evaluation. Default 0.08: tight enough to see a flip that moves
	// the incumbent's TPI only a few percent (a saturated structure can be
	// nearly phase-blind even when the clock-rate tradeoff has flipped),
	// while the driftConfirm streak screens out one-interval jitter.
	// Negative means zero: any deviation re-sweeps.
	DriftGain float64

	est        map[int]float64
	seen       map[int]bool
	confidence int
	candidate  int
	intervals  int64
	exploreIdx int
	exploring  bool
	driftRun   int
	fresh      bool
	current    int
	inited     bool
}

// Name implements Policy.
func (p *IntervalPolicy) Name() string { return "interval-adaptive" }

func (p *IntervalPolicy) defaults() {
	if p.est != nil {
		return
	}
	p.MinGain = tunableF(p.MinGain, 0.03)
	p.ConfidenceMax = tunableI(p.ConfidenceMax, 2)
	p.ExplorePeriod = tunableI64(p.ExplorePeriod, 64)
	p.Alpha = tunableF(p.Alpha, 0.5)
	p.DriftGain = tunableF(p.DriftGain, 0.08)
	p.est = make(map[int]float64, len(p.Configs))
	p.seen = make(map[int]bool, len(p.Configs))
}

// Next implements Policy.
func (p *IntervalPolicy) Next(m *Monitor) int {
	p.defaults()
	if len(p.Configs) == 0 {
		return m.Current
	}
	if !p.inited {
		p.inited = true
		p.current = m.Current
	}
	last, ok := m.Last()
	if ok {
		switch {
		case last.Config == p.current && driftTripped(p.est[last.Config], last.TPI, p.DriftGain):
			p.driftRun++
			if p.driftRun >= driftConfirm {
				// Confirmed phase flip seen from inside the incumbent: the
				// whole estimate table describes the old regime. Restart it
				// — the fresh sample verbatim, every other configuration
				// re-swept — and drop any half-built confidence in an
				// old-regime candidate.
				p.est = map[int]float64{last.Config: last.TPI}
				for _, id := range p.Configs {
					if id != p.current {
						delete(p.seen, id)
					}
				}
				p.confidence, p.candidate = 0, -1
				p.driftRun = 0
				p.fresh = true
			}
			// Streak pending: freeze the estimate as the old-regime
			// reference (see driftConfirm in zoo.go).
		case last.Config == p.current:
			p.driftRun = 0
			ewmaUpdate(p.est, last.Config, last.TPI, p.Alpha)
		case driftTripped(p.est[last.Config], last.TPI, p.DriftGain):
			// An exploration visit contradicting its own stale estimate is
			// phase-flip evidence from the one vantage point incumbent drift
			// detection cannot cover: a flip that leaves the incumbent's TPI
			// unchanged while redrawing the rest of the menu. Take the sample
			// verbatim — EWMA-blending it into the old regime's level would
			// leave the estimate too stale to ever clear MinGain. Unlike a
			// confirmed drift streak this is a single sample, so it does NOT
			// bypass the confidence gate: a one-interval blip on a probe must
			// still build ConfidenceMax intervals of agreement to switch.
			p.est[last.Config] = last.TPI
		default:
			ewmaUpdate(p.est, last.Config, last.TPI, p.Alpha)
		}
	}
	p.intervals++

	// Bootstrap: visit every configuration once to fill the table. A
	// configuration is marked seen when DISPATCHED, not when its sample
	// returns: a visit that never produces a Monitor.Last() sample (a
	// zero-interval run, or a driver polling Next without recording) must
	// not be re-explored forever.
	for _, id := range p.Configs {
		if !p.seen[id] {
			p.seen[id] = true
			p.exploring = true
			return id
		}
	}

	// Returning from an exploration visit: the visit's sample has already
	// updated the estimates, so fall straight through to the prediction
	// instead of coasting an interval at the incumbent — when the visit
	// just revealed a regime change, that coasting interval is pure regret.
	p.exploring = false

	// Periodic exploration to refresh stale estimates. The rotation skips
	// over the incumbent (its estimate refreshes every interval for free)
	// so that EVERY period probes a genuinely stale configuration — a
	// rotation that silently lands on the incumbent would stretch the
	// effective revisit time past the phase lengths being tracked.
	if p.ExplorePeriod > 0 && p.intervals%p.ExplorePeriod == 0 && len(p.Configs) > 1 {
		for range p.Configs {
			p.exploreIdx = (p.exploreIdx + 1) % len(p.Configs)
			if id := p.Configs[p.exploreIdx]; id != p.current {
				p.exploring = true
				return id
			}
		}
	}

	// Prediction: best estimated configuration, confidence-gated.
	best, bestTPI := p.current, p.est[p.current]
	for _, id := range p.Configs {
		if e, ok := p.est[id]; ok && e < bestTPI {
			best, bestTPI = id, e
		}
	}
	cur := p.est[p.current]
	if best != p.current && cur > 0 && (cur-bestTPI)/cur >= p.MinGain {
		switch {
		case p.fresh:
			// The estimates were just rebuilt from direct regime evidence
			// (a confirmed drift streak, or a visit contradicting its own
			// estimate). The confidence counter exists to screen prediction
			// jitter, which this is not: re-building it here would charge
			// ConfidenceMax extra wrong-configuration intervals per phase
			// change.
			p.current = best
			p.confidence, p.candidate = 0, -1
		case best == p.candidate:
			p.confidence++
			if p.confidence >= p.ConfidenceMax {
				p.current = best
				p.confidence, p.candidate = 0, -1
			}
		default:
			p.candidate, p.confidence = best, 1
			if p.confidence >= p.ConfidenceMax {
				p.current = best
				p.confidence, p.candidate = 0, -1
			}
		}
	} else {
		p.confidence = 0
		p.candidate = -1
	}
	p.fresh = false // regime evidence is consumed by one prediction
	return p.current
}
