package core

import (
	"math"
	"testing"
)

func TestMonitorWindow(t *testing.T) {
	m := NewMonitor(3)
	if _, ok := m.Last(); ok {
		t.Error("empty monitor returned a sample")
	}
	for i := 0; i < 5; i++ {
		m.Record(Sample{Interval: int64(i), Config: i % 2, TPI: float64(i)})
	}
	if len(m.Window) != 3 {
		t.Fatalf("window length %d, want 3", len(m.Window))
	}
	last, ok := m.Last()
	if !ok || last.Interval != 4 {
		t.Errorf("last sample %+v", last)
	}
	if m.Current != 0 {
		t.Errorf("current config %d, want 0 (from sample 4)", m.Current)
	}
	s, ok := m.LastFor(1)
	if !ok || s.Interval != 3 {
		t.Errorf("LastFor(1) = %+v ok=%v", s, ok)
	}
	if _, ok := m.LastFor(9); ok {
		t.Error("LastFor(9) found a sample")
	}
}

func TestFixedPolicy(t *testing.T) {
	p := FixedPolicy{Config: 3}
	m := NewMonitor(4)
	m.Record(Sample{Config: 1, TPI: 0.5})
	if got := p.Next(m); got != 3 {
		t.Errorf("Next = %d", got)
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestProcessLevelPolicy(t *testing.T) {
	p := ProcessLevelPolicy{Best: 5}
	if got := p.Next(NewMonitor(1)); got != 5 {
		t.Errorf("Next = %d", got)
	}
}

func TestSelectBest(t *testing.T) {
	best := SelectBest(map[int]float64{1: 0.5, 2: 0.3, 3: 0.9})
	if best != 2 {
		t.Errorf("best = %d, want 2", best)
	}
	// Ties break toward the smaller configuration (faster clock).
	best = SelectBest(map[int]float64{4: 0.3, 2: 0.3})
	if best != 2 {
		t.Errorf("tie best = %d, want 2", best)
	}
}

func TestSelectBestPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SelectBest(nil)
}

func TestSelectBestIndex(t *testing.T) {
	if got := SelectBestIndex([]float64{0.5, 0.3, 0.9}); got != 1 {
		t.Errorf("best = %d, want 1", got)
	}
	// Ties break toward the smaller index (faster clock).
	if got := SelectBestIndex([]float64{0.4, 0.3, 0.3}); got != 1 {
		t.Errorf("tie best = %d, want 1", got)
	}
	// Inf/NaN padding slots (boundary 0 in the cache tables) are skipped.
	if got := SelectBestIndex([]float64{math.Inf(1), 0.7, 0.6, math.NaN()}); got != 2 {
		t.Errorf("padded best = %d, want 2", got)
	}
}

func TestSelectBestIndexPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SelectBestIndex([]float64{math.Inf(1)})
}

// feed runs the policy through a synthetic sequence where trueTPI gives each
// configuration's TPI; it returns the config chosen for each interval.
func feed(p Policy, trueTPI map[int]float64, intervals int) []int {
	m := NewMonitor(16)
	cur := 0
	m.Current = cur
	choices := make([]int, 0, intervals)
	for i := 0; i < intervals; i++ {
		cur = p.Next(m)
		choices = append(choices, cur)
		m.Record(Sample{Interval: int64(i), Config: cur, TPI: trueTPI[cur]})
	}
	return choices
}

func TestIntervalPolicyConvergesToBest(t *testing.T) {
	p := &IntervalPolicy{Configs: []int{0, 1, 2}}
	choices := feed(p, map[int]float64{0: 0.5, 1: 0.3, 2: 0.7}, 60)
	// After bootstrap + confidence, the policy should settle on config 1.
	settled := choices[len(choices)-10:]
	for _, c := range settled {
		// Occasional exploration visits are allowed; the incumbent
		// must be 1 for most of the tail.
		_ = c
	}
	count1 := 0
	for _, c := range choices[20:] {
		if c == 1 {
			count1++
		}
	}
	if frac := float64(count1) / float64(len(choices)-20); frac < 0.8 {
		t.Errorf("policy spent only %.0f%% of steady state on the best config", 100*frac)
	}
}

func TestIntervalPolicyConfidenceGating(t *testing.T) {
	// With a high confidence threshold, a one-interval blip must not
	// trigger a switch.
	p := &IntervalPolicy{Configs: []int{0, 1}, ConfidenceMax: 3, ExplorePeriod: 1 << 40, MinGain: 0.05}
	m := NewMonitor(16)
	m.Current = 0
	// Bootstrap both configs: 0 is better.
	m.Record(Sample{Config: 0, TPI: 0.30})
	p.Next(m) // will explore 1
	m.Record(Sample{Config: 1, TPI: 0.40})
	for i := 0; i < 5; i++ {
		c := p.Next(m)
		m.Record(Sample{Config: c, TPI: map[int]float64{0: 0.30, 1: 0.40}[c]})
	}
	// A single good sample for 1 should not flip the incumbent yet.
	m.Record(Sample{Config: 1, TPI: 0.10})
	if c := p.Next(m); c == 1 {
		t.Error("policy switched after a single confident interval (threshold 3)")
	}
}

func TestIntervalPolicyIgnoresSmallGains(t *testing.T) {
	p := &IntervalPolicy{Configs: []int{0, 1}, MinGain: 0.10, ExplorePeriod: 1 << 40}
	// Config 1 is only 2% better: below the gain threshold, stay put.
	choices := feed(p, map[int]float64{0: 0.300, 1: 0.294}, 40)
	switched := 0
	for _, c := range choices[5:] {
		if c == 1 {
			switched++
		}
	}
	if switched > 2 { // bootstrap visit only
		t.Errorf("policy switched to a <MinGain config %d times", switched)
	}
}

func TestIntervalPolicyTracksPhaseChange(t *testing.T) {
	// The best configuration flips mid-run; the policy must follow.
	p := &IntervalPolicy{Configs: []int{0, 1}, ExplorePeriod: 8}
	m := NewMonitor(16)
	m.Current = 0
	phase1 := map[int]float64{0: 0.2, 1: 0.4}
	phase2 := map[int]float64{0: 0.4, 1: 0.2}
	var tail []int
	for i := 0; i < 120; i++ {
		tpi := phase1
		if i >= 60 {
			tpi = phase2
		}
		c := p.Next(m)
		m.Record(Sample{Interval: int64(i), Config: c, TPI: tpi[c]})
		if i >= 100 {
			tail = append(tail, c)
		}
	}
	on1 := 0
	for _, c := range tail {
		if c == 1 {
			on1++
		}
	}
	if frac := float64(on1) / float64(len(tail)); frac < 0.7 {
		t.Errorf("policy on new best config only %.0f%% after phase change", 100*frac)
	}
}

func TestIntervalPolicyEmptyConfigs(t *testing.T) {
	p := &IntervalPolicy{}
	m := NewMonitor(4)
	m.Current = 7
	if got := p.Next(m); got != 7 {
		t.Errorf("empty-config policy moved to %d", got)
	}
}

func TestValidateConfigs(t *testing.T) {
	if err := validateConfigs(nil); err == nil {
		t.Error("empty table accepted")
	}
	if err := validateConfigs([]Config{{ID: 0, CycleNS: 0}}); err == nil {
		t.Error("zero cycle accepted")
	}
	if err := validateConfigs([]Config{{ID: 0, CycleNS: 1}, {ID: 0, CycleNS: 2}}); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := validateConfigs([]Config{{ID: 0, CycleNS: 1}, {ID: 1, CycleNS: 2}}); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
}
