package core

import (
	"context"
	"testing"

	"capsim/internal/cache"
	"capsim/internal/classify"
	"capsim/internal/tech"
	"capsim/internal/trace"
	"capsim/internal/workload"
)

// withLegacy runs f with the shared-trace path disabled, restoring the
// default afterwards and discarding any stores materialized either side —
// including the classification streams and interval families layered on the
// trace tier.
func withLegacy(f func()) {
	trace.Reset()
	classify.Reset()
	ResetPolicyFamilies()
	trace.SetEnabled(false)
	defer func() {
		trace.SetEnabled(true)
		trace.Reset()
		classify.Reset()
		ResetPolicyFamilies()
	}()
	f()
}

// TestProfileCacheTPIOnepass is the acceptance gate of the one-pass engine:
// ProfileCacheTPI must return bit-identical (TPI, TPImiss) tables whether it
// evaluates all boundaries in one pass over the shared trace (default) or
// sweeps one independent machine per boundary (-onepass=false). Equality is
// exact float64 equality, not approximate.
func TestProfileCacheTPIOnepass(t *testing.T) {
	p := cache.PaperParams()
	for _, name := range []string{"gcc", "compress", "swim"} {
		b := workload.MustByName(name)
		trace.Reset()
		oneTPI, oneMiss, err := ProfileCacheTPI(b, 1998, p, PaperMaxBoundary, 20000, 80000)
		if err != nil {
			t.Fatalf("%s onepass: %v", name, err)
		}
		var legTPI, legMiss []float64
		withLegacy(func() {
			legTPI, legMiss, err = ProfileCacheTPI(b, 1998, p, PaperMaxBoundary, 20000, 80000)
		})
		if err != nil {
			t.Fatalf("%s legacy: %v", name, err)
		}
		if len(oneTPI) != len(legTPI) || len(oneMiss) != len(legMiss) {
			t.Fatalf("%s: length mismatch", name)
		}
		for k := 1; k <= PaperMaxBoundary; k++ {
			if oneTPI[k] != legTPI[k] {
				t.Errorf("%s boundary %d: TPI onepass %v != legacy %v", name, k, oneTPI[k], legTPI[k])
			}
			if oneMiss[k] != legMiss[k] {
				t.Errorf("%s boundary %d: TPImiss onepass %v != legacy %v", name, k, oneMiss[k], legMiss[k])
			}
		}
	}
}

// TestProfileQueueTPIOnepass checks the queue-side stream sharing: replaying
// the materialized instruction store must give bit-identical TPI to private
// per-cell generators.
func TestProfileQueueTPIOnepass(t *testing.T) {
	b := workload.MustByName("gcc")
	sizes := PaperQueueSizes()
	trace.Reset()
	one, err := ProfileQueueTPI(b, 1998, sizes, 30000, tech.Micron018)
	if err != nil {
		t.Fatalf("onepass: %v", err)
	}
	var leg []float64
	withLegacy(func() {
		leg, err = ProfileQueueTPI(b, 1998, sizes, 30000, tech.Micron018)
	})
	if err != nil {
		t.Fatalf("legacy: %v", err)
	}
	for i := range sizes {
		if one[i] != leg[i] {
			t.Errorf("size %d: TPI onepass %v != legacy %v", sizes[i], one[i], leg[i])
		}
	}
}

// TestRunCacheOnepass drives a full policy-driven adaptive run (interval
// machine, clock switches and all) under both source paths and demands
// bit-identical aggregates — the cursors must be indistinguishable from the
// generators even mid-run.
func TestRunCacheOnepass(t *testing.T) {
	p := cache.PaperParams()
	b := workload.MustByName("gcc")
	run := func() CacheRunResult {
		m, err := NewCacheMachine(b, 7, p, PaperMaxBoundary, 2, -1)
		if err != nil {
			t.Fatal(err)
		}
		configs := make([]int, PaperMaxBoundary)
		for i := range configs {
			configs[i] = i + 1
		}
		pol := &IntervalPolicy{Configs: configs}
		return RunCache(m, pol, 40, 2000, false)
	}
	trace.Reset()
	one := run()
	var leg CacheRunResult
	withLegacy(func() { leg = run() })
	if one.TPI != leg.TPI || one.TPIMiss != leg.TPIMiss ||
		one.Refs != leg.Refs || one.Switches != leg.Switches {
		t.Errorf("adaptive cache run diverged:\n onepass: %+v\n legacy:  %+v", one, leg)
	}
}

// TestProfileCacheTPIOnepassErrors locks error propagation on the one-pass
// path (no memory profile, bad boundary).
func TestProfileCacheTPIOnepassErrors(t *testing.T) {
	trace.Reset()
	defer trace.Reset()
	p := cache.PaperParams()
	noMem := workload.Benchmark{Name: "synthetic", ILP: workload.MustByName("gcc").ILP}
	if _, _, err := ProfileCacheTPI(noMem, 1, p, PaperMaxBoundary, 0, 1000); err == nil {
		t.Error("missing memory profile accepted")
	}
	if _, _, err := ProfileCacheTPI(workload.MustByName("gcc"), 1, p, p.Increments, 0, 1000); err == nil {
		t.Error("out-of-range boundary accepted")
	}
}

// TestProfileCombinedOnepass is the acceptance gate of the joint kernel:
// ProfileCombined must return bit-identical per-point TPI whether the whole
// (boundary × queue) grid is evaluated by one MultiCombined pass (default)
// or by independent CombinedMachines (-onepass=false). Exact float64
// equality — the joint kernel replicates load placement, per-boundary
// hierarchy state, coupled clocks and the TPI arithmetic, not approximations
// of them.
func TestProfileCombinedOnepass(t *testing.T) {
	p := cache.PaperParams()
	sizes := []int{16, 64, 128}
	var points []CombinedConfig
	for _, k := range []int{1, 2, 6, 8} {
		for _, w := range sizes {
			points = append(points, CombinedConfig{QueueEntries: w, Boundary: k})
		}
	}
	intervals, n := int64(12), int64(2000)
	for _, name := range []string{"gcc", "swim"} {
		b := workload.MustByName(name)
		trace.Reset()
		one, err := ProfileCombined(context.Background(), b, 1998, sizes, p, PaperMaxBoundary, points, intervals, n, -1, tech.Micron018)
		if err != nil {
			t.Fatalf("%s onepass: %v", name, err)
		}
		var leg []float64
		withLegacy(func() {
			leg, err = ProfileCombined(context.Background(), b, 1998, sizes, p, PaperMaxBoundary, points, intervals, n, -1, tech.Micron018)
		})
		if err != nil {
			t.Fatalf("%s legacy: %v", name, err)
		}
		for j, cc := range points {
			if one[j] != leg[j] {
				t.Errorf("%s IQ=%d/L1=%d: TPI onepass %v != legacy %v", name, cc.QueueEntries, cc.Boundary, one[j], leg[j])
			}
		}
	}
}

// TestProfileCombinedOnepassErrors locks validation parity on the joint path.
func TestProfileCombinedOnepassErrors(t *testing.T) {
	trace.Reset()
	defer trace.Reset()
	ctx := context.Background()
	p := cache.PaperParams()
	b := workload.MustByName("gcc")
	noMem := workload.Benchmark{Name: "synthetic", ILP: b.ILP}
	pts := []CombinedConfig{{QueueEntries: 16, Boundary: 1}}
	if _, err := ProfileCombined(ctx, noMem, 1, []int{16}, p, PaperMaxBoundary, pts, 1, 100, -1, tech.Micron018); err == nil {
		t.Error("missing memory profile accepted")
	}
	if _, err := ProfileCombined(ctx, b, 1, []int{16}, p, PaperMaxBoundary, nil, 1, 100, -1, tech.Micron018); err == nil {
		t.Error("empty point list accepted")
	}
	bad := []CombinedConfig{{QueueEntries: 32, Boundary: 1}}
	if _, err := ProfileCombined(ctx, b, 1, []int{16}, p, PaperMaxBoundary, bad, 1, 100, -1, tech.Micron018); err == nil {
		t.Error("queue size outside table accepted")
	}
	bad = []CombinedConfig{{QueueEntries: 16, Boundary: PaperMaxBoundary + 1}}
	if _, err := ProfileCombined(ctx, b, 1, []int{16}, p, PaperMaxBoundary, bad, 1, 100, -1, tech.Micron018); err == nil {
		t.Error("out-of-range boundary accepted")
	}
}

// TestProfileQueueTracesOnepass checks the interval-trace sharing: every
// size's per-interval TPI trace from the shared MultiCore rounds must be
// bit-identical to a private fixed-configuration QueueMachine's.
func TestProfileQueueTracesOnepass(t *testing.T) {
	b := workload.MustByName("turb3d")
	sizes := []int{16, 64, 128}
	intervals, n := int64(25), int64(2000)
	trace.Reset()
	one, err := ProfileQueueTraces(context.Background(), b, 1998, sizes, intervals, n, -1, tech.Micron018)
	if err != nil {
		t.Fatalf("onepass: %v", err)
	}
	var leg [][]float64
	withLegacy(func() {
		leg, err = ProfileQueueTraces(context.Background(), b, 1998, sizes, intervals, n, -1, tech.Micron018)
	})
	if err != nil {
		t.Fatalf("legacy: %v", err)
	}
	for i, w := range sizes {
		for iv := range one[i] {
			if one[i][iv] != leg[i][iv] {
				t.Errorf("size %d interval %d: onepass %v != legacy %v", w, iv, one[i][iv], leg[i][iv])
			}
		}
	}
}
