package core

import "testing"

func TestTunableSentinels(t *testing.T) {
	if got := tunableF(0, 0.5); got != 0.5 {
		t.Errorf("tunableF(0) = %v, want default", got)
	}
	if got := tunableF(-1, 0.5); got != 0 {
		t.Errorf("tunableF(-1) = %v, want explicit zero", got)
	}
	if got := tunableF(0.2, 0.5); got != 0.2 {
		t.Errorf("tunableF(0.2) = %v", got)
	}
	if got := tunableI(-3, 7); got != 0 {
		t.Errorf("tunableI(-3) = %v, want 0", got)
	}
	if got := tunableI64(0, 32); got != 32 {
		t.Errorf("tunableI64(0) = %v, want default", got)
	}
}

// TestIntervalPolicyExplicitZeroGain locks the sentinel fix: MinGain: -1
// ("switch on any gain") and ConfidenceMax: -1 ("no confidence buildup")
// must make the policy take a 2% improvement the defaults would refuse.
func TestIntervalPolicyExplicitZeroGain(t *testing.T) {
	tpi := map[int]float64{0: 0.300, 1: 0.294} // 2% gain, below default MinGain
	strict := &IntervalPolicy{Configs: []int{0, 1}, ExplorePeriod: 1 << 40}
	eager := &IntervalPolicy{Configs: []int{0, 1}, ExplorePeriod: 1 << 40, MinGain: -1, ConfidenceMax: -1}
	tail := func(p Policy) int {
		choices := feed(p, tpi, 40)
		on1 := 0
		for _, c := range choices[len(choices)-10:] {
			if c == 1 {
				on1++
			}
		}
		return on1
	}
	if n := tail(strict); n != 0 {
		t.Errorf("default MinGain took a 2%% gain (%d/10 tail intervals on 1)", n)
	}
	if n := tail(eager); n != 10 {
		t.Errorf("explicit-zero MinGain ignored a 2%% gain (%d/10 tail intervals on 1)", n)
	}
}

// TestBootstrapNoSampleSettles locks the livelock fix across the whole zoo:
// a policy whose dispatches never produce a Monitor.Last() sample must
// visit each candidate at most a bounded number of times and then settle,
// instead of re-exploring the first configuration forever.
func TestBootstrapNoSampleSettles(t *testing.T) {
	mk := func() []Policy {
		return []Policy{
			&IntervalPolicy{Configs: []int{0, 1, 2}},
			&HysteresisPolicy{Configs: []int{0, 1, 2}},
			&PIDPolicy{Configs: []int{0, 1, 2}},
			&SlopeBanditPolicy{Configs: []int{0, 1, 2}},
			&ProfileThenCommitPolicy{Configs: []int{0, 1, 2}},
		}
	}
	for _, p := range mk() {
		m := NewMonitor(8) // never recorded into: Last() always fails
		m.Current = 0
		visits := map[int]int{}
		for i := 0; i < 200; i++ {
			visits[p.Next(m)]++
		}
		// Every candidate may be dispatched during bootstrap/probing and
		// periodic exploration, but the policy must spend the bulk of the
		// run settled, not cycling the bootstrap loop.
		settled := 0
		for _, n := range visits {
			if n > settled {
				settled = n
			}
		}
		if settled < 150 {
			t.Errorf("%s: no settled incumbent without samples (visits %v)", p.Name(), visits)
		}
	}
}

func TestHysteresisConvergesToBest(t *testing.T) {
	p := &HysteresisPolicy{Configs: []int{0, 1, 2}}
	choices := feed(p, map[int]float64{0: 0.5, 1: 0.3, 2: 0.7}, 60)
	on1 := 0
	for _, c := range choices[20:] {
		if c == 1 {
			on1++
		}
	}
	if frac := float64(on1) / float64(len(choices)-20); frac < 0.8 {
		t.Errorf("hysteresis spent only %.0f%% of steady state on the best config", 100*frac)
	}
}

func TestHysteresisDeadbandHolds(t *testing.T) {
	// A 3% gain sits inside the default 8% deadband: no switch.
	p := &HysteresisPolicy{Configs: []int{0, 1}, ExplorePeriod: 1 << 40}
	choices := feed(p, map[int]float64{0: 0.300, 1: 0.291}, 40)
	on1 := 0
	for _, c := range choices[5:] {
		if c == 1 {
			on1++
		}
	}
	if on1 > 0 {
		t.Errorf("deadband leaked: %d intervals on the 3%%-better config", on1)
	}
}

func TestHysteresisDwellFloor(t *testing.T) {
	// Alternate the best config every interval; the dwell floor must keep
	// the switch count well under the flip count.
	p := &HysteresisPolicy{Configs: []int{0, 1}, DwellMin: 10, ExplorePeriod: 1 << 40, Alpha: 1}
	m := NewMonitor(16)
	m.Current = 0
	switches, prev := 0, -1
	for i := 0; i < 100; i++ {
		tpi := map[int]float64{0: 0.2, 1: 0.4}
		if i%2 == 1 {
			tpi = map[int]float64{0: 0.4, 1: 0.2}
		}
		c := p.Next(m)
		if prev >= 0 && c != prev {
			switches++
		}
		prev = c
		m.Record(Sample{Interval: int64(i), Config: c, TPI: tpi[c]})
	}
	if switches > 12 {
		t.Errorf("dwell floor 10 allowed %d switches in 100 flapping intervals", switches)
	}
}

func TestPIDConvergesAndSlews(t *testing.T) {
	p := &PIDPolicy{Configs: []int{0, 1, 2}, ExplorePeriod: 1 << 40}
	choices := feed(p, map[int]float64{0: 0.5, 1: 0.3, 2: 0.1}, 60)
	// The actuator slews one menu position per actuation: on the way from
	// 0 to 2 the policy must pass through 1 after its bootstrap visits.
	post := choices[3:] // skip the three bootstrap dispatches
	first2 := -1
	via1 := false
	for i, c := range post {
		if c == 2 {
			first2 = i
			break
		}
		if c == 1 {
			via1 = true
		}
	}
	if first2 < 0 {
		t.Fatalf("PID never reached the best config: %v", choices)
	}
	if !via1 {
		t.Errorf("PID jumped 0->2 without slewing through 1: %v", choices)
	}
	on2 := 0
	for _, c := range choices[30:] {
		if c == 2 {
			on2++
		}
	}
	if frac := float64(on2) / float64(len(choices)-30); frac < 0.8 {
		t.Errorf("PID spent only %.0f%% of steady state on the best config", 100*frac)
	}
}

func TestPIDDeadbandHolds(t *testing.T) {
	// A tiny error never charges the loop past the actuation deadband.
	p := &PIDPolicy{Configs: []int{0, 1}, ExplorePeriod: 1 << 40, WindupMax: 0.05}
	choices := feed(p, map[int]float64{0: 0.300, 1: 0.297}, 60)
	on1 := 0
	for _, c := range choices[5:] {
		if c == 1 {
			on1++
		}
	}
	if on1 > 0 {
		t.Errorf("PID actuated on a 1%% error: %d intervals on config 1", on1)
	}
}

func TestSlopeBanditConvergesToBest(t *testing.T) {
	p := &SlopeBanditPolicy{Configs: []int{0, 1, 2}}
	choices := feed(p, map[int]float64{0: 0.5, 1: 0.3, 2: 0.7}, 120)
	on1 := 0
	for _, c := range choices[40:] {
		if c == 1 {
			on1++
		}
	}
	// UCB keeps re-auditioning the other arms, so demand a majority,
	// not a supermajority.
	if frac := float64(on1) / float64(len(choices)-40); frac < 0.6 {
		t.Errorf("bandit spent only %.0f%% of steady state on the best arm", 100*frac)
	}
}

func TestSlopeBanditTracksPhaseChange(t *testing.T) {
	p := &SlopeBanditPolicy{Configs: []int{0, 1}}
	m := NewMonitor(16)
	m.Current = 0
	var tail []int
	for i := 0; i < 160; i++ {
		tpi := map[int]float64{0: 0.2, 1: 0.4}
		if i >= 80 {
			tpi = map[int]float64{0: 0.4, 1: 0.2}
		}
		c := p.Next(m)
		m.Record(Sample{Interval: int64(i), Config: c, TPI: tpi[c]})
		if i >= 130 {
			tail = append(tail, c)
		}
	}
	on1 := 0
	for _, c := range tail {
		if c == 1 {
			on1++
		}
	}
	if frac := float64(on1) / float64(len(tail)); frac < 0.6 {
		t.Errorf("bandit on new best arm only %.0f%% after phase change", 100*frac)
	}
}

func TestProfileThenCommitCycle(t *testing.T) {
	p := &ProfileThenCommitPolicy{Configs: []int{0, 1, 2}, ProbeIntervals: 2, RecommitPeriod: 20}
	choices := feed(p, map[int]float64{0: 0.5, 1: 0.3, 2: 0.7}, 60)
	// Probe round: each candidate dispatched twice, in menu order.
	want := []int{0, 0, 1, 1, 2, 2}
	for i, w := range want {
		if choices[i] != w {
			t.Fatalf("probe dispatch %d = %d, want %d (%v)", i, choices[i], w, choices[:6])
		}
	}
	// Commit phase: locked on the best profiled candidate.
	for i := 6; i < 26; i++ {
		if choices[i] != 1 {
			t.Errorf("interval %d: committed policy on %d, want 1", i, choices[i])
		}
	}
	// Re-profile round starts after the commitment expires.
	if choices[26] != 0 || choices[27] != 0 {
		t.Errorf("recommit did not restart profiling: %v", choices[26:32])
	}
}

func TestStepToward(t *testing.T) {
	cfgs := []int{0, 1, 2}
	if got := stepToward(cfgs, 0, 2); got != 1 {
		t.Errorf("stepToward(0->2) = %d, want 1", got)
	}
	if got := stepToward(cfgs, 2, 0); got != 1 {
		t.Errorf("stepToward(2->0) = %d, want 1", got)
	}
	if got := stepToward(cfgs, 1, 1); got != 1 {
		t.Errorf("stepToward(1->1) = %d, want 1", got)
	}
	if got := stepToward(cfgs, 9, 2); got != 2 {
		t.Errorf("unknown incumbent: stepToward = %d, want jump to 2", got)
	}
}

func TestZooPolicyNames(t *testing.T) {
	names := map[string]bool{}
	for _, p := range []Policy{
		&HysteresisPolicy{}, &PIDPolicy{}, &SlopeBanditPolicy{}, &ProfileThenCommitPolicy{},
	} {
		n := p.Name()
		if n == "" || names[n] {
			t.Errorf("bad or duplicate policy name %q", n)
		}
		names[n] = true
	}
}

func TestZooEmptyConfigs(t *testing.T) {
	for _, p := range []Policy{
		&HysteresisPolicy{}, &PIDPolicy{}, &SlopeBanditPolicy{}, &ProfileThenCommitPolicy{},
	} {
		m := NewMonitor(4)
		m.Current = 7
		if got := p.Next(m); got != 7 {
			t.Errorf("%s: empty-config policy moved to %d", p.Name(), got)
		}
	}
}
