package core

import (
	"context"
	"fmt"
	"testing"

	"capsim/internal/tech"
	"capsim/internal/trace"
	"capsim/internal/workload"
)

// policyCase enumerates the interval-study grid the differential tests pin:
// both Section 6 applications with their candidate size pairs.
var policyCases = []struct {
	app   string
	sizes []int
}{
	{"turb3d", []int{64, 128}},
	{"vortex", []int{16, 64}},
}

// TestMultiPolicyTransitionCosts is the transition-cost accounting gate: for
// every policy × application × switch penalty, the one-pass replay
// (RunPolicyStudy: family replay for fixed policies, the lockstep Race
// engine for stateful ones) must charge the exact same reconfiguration
// costs — drain stalls at the old clock, switch penalty at the old period —
// as a direct private QueueMachine simulation. Equality is exact float64
// equality on every aggregate, including TimeNS (where a mischarged penalty
// would surface even when TPI rounds identically).
func TestMultiPolicyTransitionCosts(t *testing.T) {
	ctx := context.Background()
	intervals, n := int64(40), int64(2000)
	for _, tc := range policyCases {
		b := workload.MustByName(tc.app)
		for _, pen := range []int{-1, 0, 50, 200} {
			policies := func() []Policy {
				return []Policy{
					FixedPolicy{Config: 0},
					FixedPolicy{Config: 1},
					&IntervalPolicy{Configs: []int{0, 1}},
					&HysteresisPolicy{Configs: []int{0, 1}},
					&PIDPolicy{Configs: []int{0, 1}},
					&SlopeBanditPolicy{Configs: []int{0, 1}},
					&ProfileThenCommitPolicy{Configs: []int{0, 1}},
				}
			}
			// Policies are stateful: build fresh instances for each path.
			onePols, legPols := policies(), policies()
			for pi := range onePols {
				name := fmt.Sprintf("%s/pen=%d/%s", tc.app, pen, onePols[pi].Name())
				trace.Reset()
				ResetPolicyFamilies()
				one, err := RunPolicyStudy(ctx, b, 1998, tc.sizes, onePols[pi], intervals, n, pen, tech.Micron018)
				if err != nil {
					t.Fatalf("%s onepass: %v", name, err)
				}
				var leg RunResult
				withLegacy(func() {
					leg, err = RunPolicyStudy(ctx, b, 1998, tc.sizes, legPols[pi], intervals, n, pen, tech.Micron018)
				})
				if err != nil {
					t.Fatalf("%s legacy: %v", name, err)
				}
				if one.Policy != leg.Policy || one.Instrs != leg.Instrs || one.TimeNS != leg.TimeNS ||
					one.TPI != leg.TPI || one.Switches != leg.Switches {
					t.Errorf("%s: replay diverged from direct simulation\n onepass: %+v\n legacy:  %+v", name, one, leg)
				}
			}
		}
	}
}

// TestMultiPolicyRaceLockstep pins the multi-column engine itself: racing
// several policies in ONE MultiCore pass must give each column the exact
// result of its own private policy-driven machine — member cores consume
// the shared stream and resize mid-run without perturbing each other.
func TestMultiPolicyRaceLockstep(t *testing.T) {
	ctx := context.Background()
	intervals, n := int64(30), int64(2000)
	for _, tc := range policyCases {
		b := workload.MustByName(tc.app)
		trace.Reset()
		ResetPolicyFamilies()
		mp, err := NewMultiPolicy(b, 1998, tc.sizes, n, 50, tech.Micron018)
		if err != nil {
			t.Fatalf("%s: NewMultiPolicy: %v", tc.app, err)
		}
		specs := []PolicySpec{
			{Policy: &IntervalPolicy{Configs: []int{0, 1}}},
			{Policy: FixedPolicy{Config: 1}},
			{Policy: &IntervalPolicy{Configs: []int{0, 1}, ConfidenceMax: 3}},
			{Policy: &HysteresisPolicy{Configs: []int{0, 1}}},
			{Policy: &PIDPolicy{Configs: []int{0, 1}}},
			{Policy: &SlopeBanditPolicy{Configs: []int{0, 1}}},
			{Policy: &ProfileThenCommitPolicy{Configs: []int{0, 1}}},
		}
		raced, err := mp.Race(ctx, specs, intervals)
		if err != nil {
			t.Fatalf("%s: Race: %v", tc.app, err)
		}
		direct := []Policy{
			&IntervalPolicy{Configs: []int{0, 1}},
			FixedPolicy{Config: 1},
			&IntervalPolicy{Configs: []int{0, 1}, ConfidenceMax: 3},
			&HysteresisPolicy{Configs: []int{0, 1}},
			&PIDPolicy{Configs: []int{0, 1}},
			&SlopeBanditPolicy{Configs: []int{0, 1}},
			&ProfileThenCommitPolicy{Configs: []int{0, 1}},
		}
		for j, p := range direct {
			var leg RunResult
			withLegacy(func() {
				m, err := NewQueueMachine(b, 1998, tc.sizes, 0, 50, tech.Micron018)
				if err != nil {
					t.Fatal(err)
				}
				leg = RunQueue(m, p, intervals, n, false)
			})
			r := raced[j]
			if r.Policy != leg.Policy || r.Instrs != leg.Instrs || r.TimeNS != leg.TimeNS ||
				r.TPI != leg.TPI || r.Switches != leg.Switches {
				t.Errorf("%s column %d (%s): race diverged from private machine\n race:   %+v\n direct: %+v",
					tc.app, j, p.Name(), r, leg)
			}
		}
	}
}

// TestIntervalFamilyExtension pins extension equivalence: traces read at a
// short horizon and then re-read at a longer one must agree on the common
// prefix, and the extended family must still match a cold full-length pass.
func TestIntervalFamilyExtension(t *testing.T) {
	ctx := context.Background()
	b := workload.MustByName("turb3d")
	sizes := []int{64, 128}
	n := int64(2000)
	trace.Reset()
	ResetPolicyFamilies()
	short, err := ProfileQueueTraces(ctx, b, 1998, sizes, 10, n, -1, tech.Micron018)
	if err != nil {
		t.Fatalf("short: %v", err)
	}
	long, err := ProfileQueueTraces(ctx, b, 1998, sizes, 25, n, -1, tech.Micron018)
	if err != nil {
		t.Fatalf("long: %v", err)
	}
	trace.Reset()
	ResetPolicyFamilies()
	cold, err := ProfileQueueTraces(ctx, b, 1998, sizes, 25, n, -1, tech.Micron018)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	for i := range sizes {
		for iv := 0; iv < 10; iv++ {
			if short[i][iv] != long[i][iv] {
				t.Errorf("size %d interval %d: prefix changed under extension: %v != %v", sizes[i], iv, short[i][iv], long[i][iv])
			}
		}
		for iv := 0; iv < 25; iv++ {
			if long[i][iv] != cold[i][iv] {
				t.Errorf("size %d interval %d: extended family %v != cold pass %v", sizes[i], iv, long[i][iv], cold[i][iv])
			}
		}
	}
}

// TestRunPolicyStudyErrors locks validation on the replay paths.
func TestRunPolicyStudyErrors(t *testing.T) {
	ctx := context.Background()
	b := workload.MustByName("gcc")
	trace.Reset()
	ResetPolicyFamilies()
	defer func() {
		trace.Reset()
		ResetPolicyFamilies()
	}()
	if _, err := RunPolicyStudy(ctx, b, 1, nil, FixedPolicy{}, 1, 2000, -1, tech.Micron018); err == nil {
		t.Error("empty size list accepted")
	}
	if _, err := RunPolicyStudy(ctx, b, 1, []int{16, 64}, FixedPolicy{Config: 2}, 1, 2000, -1, tech.Micron018); err == nil {
		t.Error("out-of-range fixed config accepted")
	}
	mp, err := NewMultiPolicy(b, 1, []int{16, 64}, 2000, -1, tech.Micron018)
	if err != nil {
		t.Fatalf("NewMultiPolicy: %v", err)
	}
	if _, err := mp.Race(ctx, nil, 1); err == nil {
		t.Error("empty spec list accepted")
	}
	if _, err := mp.Race(ctx, []PolicySpec{{Policy: FixedPolicy{Config: 9}}}, 1); err == nil {
		t.Error("policy selecting out-of-range config accepted")
	}
}
