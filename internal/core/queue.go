package core

import (
	"context"
	"fmt"

	"capsim/internal/clock"
	"capsim/internal/obs"
	"capsim/internal/ooo"
	"capsim/internal/palacharla"
	"capsim/internal/sweep"
	"capsim/internal/tech"
	"capsim/internal/trace"
	"capsim/internal/workload"
)

// PaperQueueSizes are the instruction-queue configurations evaluated in the
// paper: 16 to 128 entries in 16-entry increments (the tag-line buffering
// granularity).
func PaperQueueSizes() []int { return []int{16, 32, 48, 64, 80, 96, 112, 128} }

// QueueMachine is the complexity-adaptive instruction queue CAS bound to an
// out-of-order core, a dynamic clock and a workload: the system evaluated in
// Section 5.3 of the paper. Configuration ID i selects Sizes[i] entries.
type QueueMachine struct {
	sizes   []int
	feature tech.FeatureSize
	configs []Config

	core   *ooo.Core
	clk    *clock.System
	stream workload.InstrSource
	cur    int

	instrs int64
	timeNS float64
}

// NewQueueMachine builds the machine for one application. penaltyCycles < 0
// selects the default clock-switch penalty.
func NewQueueMachine(b workload.Benchmark, seed uint64, sizes []int, initial int, penaltyCycles int, f tech.FeatureSize) (*QueueMachine, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("core: no queue sizes")
	}
	if initial < 0 || initial >= len(sizes) {
		return nil, fmt.Errorf("core: initial config %d outside [0,%d)", initial, len(sizes))
	}
	tp := tech.ForFeature(f)
	configs := make([]Config, len(sizes))
	sources := make([]clock.Source, len(sizes))
	for i, w := range sizes {
		if w < 1 {
			return nil, fmt.Errorf("core: queue size %d invalid", w)
		}
		cyc := palacharla.CycleTime(palacharla.Queue{Entries: w, IssueWidth: 8}, tp)
		configs[i] = Config{ID: i, Label: fmt.Sprintf("IQ=%d", w), CycleNS: cyc}
		sources[i] = clock.Source{ID: i, PeriodNS: cyc, Label: configs[i].Label}
	}
	if err := validateConfigs(configs); err != nil {
		return nil, err
	}
	c, err := ooo.New(ooo.PaperConfig(sizes[initial]))
	if err != nil {
		return nil, err
	}
	clk, err := clock.NewSystem(sources, initial, penaltyCycles)
	if err != nil {
		return nil, err
	}
	return &QueueMachine{
		sizes:   sizes,
		feature: f,
		configs: configs,
		core:    c,
		clk:     clk,
		stream:  trace.InstrSourceFor(b, seed),
		cur:     initial,
	}, nil
}

// Name implements AdaptiveStructure.
func (q *QueueMachine) Name() string { return "int-queue" }

// Configs implements AdaptiveStructure.
func (q *QueueMachine) Configs() []Config {
	out := make([]Config, len(q.configs))
	copy(out, q.configs)
	return out
}

// Current implements AdaptiveStructure.
func (q *QueueMachine) Current() Config { return q.configs[q.cur] }

// SetConfig implements AdaptiveStructure: when shrinking, entries in the
// portion of the queue to be disabled must first issue (the drain stalls are
// charged at the old clock), then the clock switches to the new
// configuration's source.
func (q *QueueMachine) SetConfig(id int) (int64, error) {
	if id < 0 || id >= len(q.configs) {
		return 0, fmt.Errorf("core: unknown queue config %d", id)
	}
	if id == q.cur {
		return 0, nil
	}
	before := q.core.Stats().DrainStalls
	if err := q.core.Resize(q.sizes[id]); err != nil {
		return 0, err
	}
	drain := q.core.Stats().DrainStalls - before
	q.timeNS += q.clk.Advance(drain)
	pen, err := q.clk.Select(id)
	if err != nil {
		return drain, err
	}
	q.timeNS += pen
	q.cur = id
	return drain + int64(q.clk.PenaltyCycles()), nil
}

// RunInterval issues n instructions under the current configuration and
// returns the interval's sample.
func (q *QueueMachine) RunInterval(n int64) Sample {
	st := q.core.Run(q.stream, n)
	dt := q.clk.Advance(st.Cycles)
	q.instrs += st.Issued
	q.timeNS += dt
	return Sample{
		Config: q.cur,
		TPI:    dt / float64(st.Issued),
		IPC:    st.IPC(),
	}
}

// TotalTPI returns the cumulative time per instruction so far, including all
// reconfiguration overheads.
func (q *QueueMachine) TotalTPI() float64 {
	if q.instrs == 0 {
		return 0
	}
	return q.timeNS / float64(q.instrs)
}

// Instrs returns the instructions issued so far.
func (q *QueueMachine) Instrs() int64 { return q.instrs }

// TimeNS returns the accumulated execution time.
func (q *QueueMachine) TimeNS() float64 { return q.timeNS }

// Clock exposes the dynamic clock for reporting.
func (q *QueueMachine) Clock() *clock.System { return q.clk }

// PublishObs ships the core's accumulated telemetry deltas to the global
// registry. Drivers that step the machine directly (interval traces) should
// call it once at the end of the run; RunQueue and the profile passes do so
// themselves.
func (q *QueueMachine) PublishObs() { q.core.PublishObs() }

// RunResult aggregates a policy-driven run.
type RunResult struct {
	Policy   string
	Instrs   int64
	TimeNS   float64
	TPI      float64
	Switches int64
	// Samples holds per-interval records when requested.
	Samples []Sample
}

// RunQueue drives the machine for `intervals` intervals of `n` instructions
// under the policy, reconfiguring between intervals as the policy directs.
// keepSamples retains per-interval records (Figure 12/13 and the Section 6
// analyses need them; aggregate runs should not pay the memory).
func RunQueue(q *QueueMachine, p Policy, intervals, n int64, keepSamples bool) RunResult {
	mon := NewMonitor(64)
	mon.Current = q.cur
	res := RunResult{Policy: p.Name()}
	if keepSamples {
		res.Samples = make([]Sample, 0, intervals)
	}
	for i := int64(0); i < intervals; i++ {
		want := p.Next(mon)
		if want != q.cur {
			if _, err := q.SetConfig(want); err != nil {
				panic(err)
			}
		}
		s := q.RunInterval(n)
		s.Interval = i
		mon.Record(s)
		if keepSamples {
			res.Samples = append(res.Samples, s)
		}
	}
	res.Instrs = q.Instrs()
	res.TimeNS = q.TimeNS()
	res.TPI = q.TotalTPI()
	res.Switches = q.clk.Switches()
	q.core.PublishObs()
	return res
}

// ProfileQueueConfig runs ONE queue configuration on a fresh machine +
// stream for the given instruction budget and returns its TPI. Like
// ProfileCacheBoundary, it is the independent unit job of the parallel
// sweep: all state (core, clock, workload rng) is private to the call.
func ProfileQueueConfig(b workload.Benchmark, seed uint64, sizes []int, i int, instrs int64, f tech.FeatureSize) (float64, error) {
	m, err := NewQueueMachine(b, seed, sizes, i, -1, f)
	if err != nil {
		return 0, err
	}
	m.RunInterval(instrs)
	m.core.PublishObs()
	return m.TotalTPI(), nil
}

// ProfileQueueTPI runs each configuration for the given instruction budget
// and returns TPI as a dense slice indexed by configuration ID — the
// profiling pass the paper's process-level scheme assumes a CAP compiler or
// runtime performs.
//
// With the shared-trace path enabled (the default), all configurations are
// evaluated by ONE ooo.MultiCore pass over the shared instruction stream:
// the event-driven issue engine makes each core's cost proportional to
// instructions issued, and the MultiCore buffer means the stream is decoded
// once for all window sizes. Otherwise each configuration profiles on a
// fresh private machine, swept in parallel across the sweep pool. Both paths
// return bit-identical values (TestProfileQueueTPIOnepass).
func ProfileQueueTPI(b workload.Benchmark, seed uint64, sizes []int, instrs int64, f tech.FeatureSize) ([]float64, error) {
	as := obs.StartAsync("profile", "queue:"+b.Name)
	defer as.End(obs.Arg{K: "configs", V: len(sizes)}, obs.Arg{K: "onepass", V: trace.Enabled()})
	if trace.Enabled() {
		return profileQueueTPIOnepass(b, seed, sizes, instrs, f)
	}
	return sweep.Run(len(sizes), func(i int) (float64, error) {
		return ProfileQueueConfig(b, seed, sizes, i, instrs, f)
	})
}

// ProfileQueueTraces runs each queue size interval-by-interval over the
// application's stream and returns per-size, per-interval TPI — the raw
// material of the Figure 12/13 snapshots and the per-interval oracle.
//
// With the shared-trace path enabled (the default), all sizes advance
// together through ONE ooo.MultiCore over the shared instruction buffer, one
// RunEach round per interval; the stream is generated and decoded once for
// the whole family instead of once per size. Otherwise each size replays on
// a private fixed-configuration QueueMachine, fanned out across the sweep
// pool. Both paths are bit-identical (TestProfileQueueTracesOnepass).
func ProfileQueueTraces(ctx context.Context, b workload.Benchmark, seed uint64, sizes []int, intervals, n int64, penaltyCycles int, f tech.FeatureSize) ([][]float64, error) {
	as := obs.StartAsync("profile", "queue-trace:"+b.Name)
	defer as.End(obs.Arg{K: "configs", V: len(sizes)}, obs.Arg{K: "intervals", V: intervals}, obs.Arg{K: "onepass", V: trace.Enabled()})
	if trace.Enabled() {
		return profileQueueTracesOnepass(ctx, b, seed, sizes, intervals, n, f)
	}
	return sweep.RunCtx(ctx, len(sizes), func(i int) ([]float64, error) {
		m, err := NewQueueMachine(b, seed, []int{sizes[i]}, 0, penaltyCycles, f)
		if err != nil {
			return nil, err
		}
		out := make([]float64, intervals)
		for iv := int64(0); iv < intervals; iv++ {
			out[iv] = m.RunInterval(n).TPI
		}
		m.PublishObs()
		return out, nil
	})
}

// profileQueueTracesOnepass is the family-replay engine behind
// ProfileQueueTraces: the per-size raw interval outcomes come from the
// memoized interval family (one MultiCore pass shared with the fixed-policy
// replays and every other trace consumer of the same size list), and the
// per-interval TPI expression replicates QueueMachine.RunInterval's float
// operation order (cycles × period, divided by issued) so each trace is
// bit-identical to a private fixed-configuration machine.
func profileQueueTracesOnepass(ctx context.Context, b workload.Benchmark, seed uint64, sizes []int, intervals, n int64, f tech.FeatureSize) ([][]float64, error) {
	mp, err := NewMultiPolicy(b, seed, sizes, n, -1, f)
	if err != nil {
		return nil, err
	}
	return mp.Traces(ctx, intervals)
}

// profileQueueTPIOnepass is the MultiCore engine behind ProfileQueueTPI. The
// TPI arithmetic deliberately mirrors QueueMachine.RunInterval + TotalTPI
// operation for operation — float64(cycles) * period, then divide by
// float64(issued) — so the one-pass result is bit-identical to the per-config
// machines, not merely close.
func profileQueueTPIOnepass(b workload.Benchmark, seed uint64, sizes []int, instrs int64, f tech.FeatureSize) ([]float64, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("core: no queue sizes")
	}
	tp := tech.ForFeature(f)
	cfgs := make([]ooo.Config, len(sizes))
	for i, w := range sizes {
		if w < 1 {
			return nil, fmt.Errorf("core: queue size %d invalid", w)
		}
		cfgs[i] = ooo.PaperConfig(w)
	}
	mc, err := ooo.NewMultiCore(cfgs)
	if err != nil {
		return nil, err
	}
	stats := mc.RunEach(trace.InstrSourceFor(b, seed), instrs)
	mc.PublishObs()
	out := make([]float64, len(sizes))
	for i, st := range stats {
		cyc := palacharla.CycleTime(palacharla.Queue{Entries: sizes[i], IssueWidth: 8}, tp)
		out[i] = float64(st.Cycles) * cyc / float64(st.Issued)
	}
	return out, nil
}
