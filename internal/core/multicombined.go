package core

import (
	"context"
	"fmt"

	"capsim/internal/cache"
	"capsim/internal/obs"
	"capsim/internal/ooo"
	"capsim/internal/palacharla"
	"capsim/internal/sweep"
	"capsim/internal/tech"
	"capsim/internal/trace"
	"capsim/internal/workload"
)

// MultiCombined is the joint one-pass engine for the Figure 5 processor: it
// evaluates EVERY requested (cache boundary × queue size) configuration of
// CombinedMachine in a single lockstep pass over one shared trace stream,
// composing the two existing one-pass kernels.
//
// The decomposition rests on two facts about CombinedMachine:
//
//   - Load PLACEMENT is configuration-independent. Loads are attached to
//     dispatched instructions by a deterministic fractional accumulator at
//     the profile's refs-per-instruction rate, so the i-th load of every
//     configuration sits at the same stream position and consumes the same
//     reference r_i — whatever the queue size or boundary.
//
//   - Cache state is BOUNDARY-shared. A cell's hierarchy sees exactly the
//     load reference sequence r_0, r_1, ... in order, so two cells with the
//     same boundary have bit-identical hierarchy states at every load index;
//     the hierarchy column of the cross product collapses to one row per
//     boundary.
//
// The kernel therefore keeps one cache.MultiHierarchy (all boundary rows in
// lockstep, each reference decoded once via the shared trace tier) and one
// ooo.MultiCore (all queue columns over one shared instruction buffer). Each
// cell's load latencies come from ITS OWN boundary row's classification of
// r_i — served from a per-row class sequence that is extended on demand as
// the fastest cell reaches new load indices and trimmed below the slowest —
// while the cell's clock remains the joint worst case of its queue and cache
// timings. Per-cell results are bit-identical to independent
// CombinedMachines (TestProfileCombinedOnepass): same Stats, same memLat
// sequence, same float operation order in the TPI arithmetic.
type MultiCombined struct {
	points  []CombinedConfig
	periods []float64 // per cell: worst case of queue and cache cycle times
	rpi     float64

	mc      *ooo.MultiCore
	mh      *cache.MultiHierarchy
	dec     *trace.DecodedCursor
	istream workload.InstrSource

	// Shared load-classification state. rows lists the boundary indices
	// (kb = k-1) that at least one cell uses; classes is index-parallel to
	// rows and holds each row's service level per load, for absolute load
	// indices [base, base+len). levels is the AccessLevels scratch.
	rows    []int
	classes [][]uint8
	base    int64
	levels  []cache.Level

	loadIdx []int64 // per cell: absolute index of its next load
	memLat  []func(write bool) int64

	instrs []int64
	timeNS []float64
}

// NewMultiCombined builds the joint kernel for one application over the
// given configuration points. sizes is the machine's queue-size table (the
// legal values for points' QueueEntries), exactly as passed to
// NewCombinedMachine; maxBoundary bounds the boundary rows.
func NewMultiCombined(b workload.Benchmark, seed uint64, sizes []int, p cache.Params, maxBoundary int, points []CombinedConfig, f tech.FeatureSize) (*MultiCombined, error) {
	if b.Mem == nil {
		return nil, fmt.Errorf("core: %s has no memory profile", b.Name)
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("core: no configuration points")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lo, hi := p.Boundaries()
	if maxBoundary < lo || maxBoundary > hi {
		return nil, fmt.Errorf("core: max boundary %d outside [%d,%d]", maxBoundary, lo, hi)
	}
	m := &MultiCombined{
		points:  points,
		periods: make([]float64, len(points)),
		rpi:     b.Mem.RefsPerInstr,
		levels:  make([]cache.Level, maxBoundary),
		loadIdx: make([]int64, len(points)),
		memLat:  make([]func(write bool) int64, len(points)),
		instrs:  make([]int64, len(points)),
		timeNS:  make([]float64, len(points)),
	}

	mh, err := cache.NewMulti(p, maxBoundary)
	if err != nil {
		return nil, err
	}
	m.mh = mh
	m.dec = trace.DecodedFor(trace.RefsFor(b, seed), trace.Geometry{BlockBytes: p.BlockBytes, Sets: p.Sets()}).Cursor()
	m.istream = trace.InstrSourceFor(b, seed)

	// Map each used boundary to a class-row slot: the kernel only records
	// classification sequences for rows some cell actually reads.
	slotOf := make([]int, maxBoundary) // kb -> slot+1, 0 = unused
	for _, cc := range points {
		if cc.Boundary < 1 || cc.Boundary > maxBoundary {
			return nil, fmt.Errorf("core: boundary %d outside [1,%d]", cc.Boundary, maxBoundary)
		}
		if slotOf[cc.Boundary-1] == 0 {
			m.rows = append(m.rows, cc.Boundary-1)
			slotOf[cc.Boundary-1] = len(m.rows)
		}
	}
	m.classes = make([][]uint8, len(m.rows))

	cfgs := make([]ooo.Config, len(points))
	for i, cc := range points {
		ok := false
		for _, w := range sizes {
			if w == cc.QueueEntries {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("core: queue size %d not in table %v", cc.QueueEntries, sizes)
		}
		cfgs[i] = ooo.PaperConfig(cc.QueueEntries)
	}
	if m.mc, err = ooo.NewMultiCore(cfgs); err != nil {
		return nil, err
	}

	// Per-cell clocks and load-latency closures. The period is the worst
	// case of the queue's wakeup+select time and the cache timing, exactly
	// as NewCombinedMachine computes it; the latency switch mirrors
	// CombinedMachine.RunInterval's memLat term for term, reading this
	// cell's boundary row at this cell's own load index.
	tp := tech.ForFeature(f)
	for i, cc := range points {
		t := cache.TimingFor(p, cc.Boundary)
		cyc := palacharla.CycleTime(palacharla.Queue{Entries: cc.QueueEntries, IssueWidth: 8}, tp)
		if t.CycleNS > cyc {
			cyc = t.CycleNS
		}
		m.periods[i] = cyc
		slot := slotOf[cc.Boundary-1] - 1
		l2 := int64(t.L2HitCycles)
		mem := int64(t.L2HitCycles + t.MemCycles)
		i := i
		m.memLat[i] = func(write bool) int64 {
			idx := m.loadIdx[i]
			m.loadIdx[i]++
			if idx-m.base >= int64(len(m.classes[slot])) {
				m.extend(idx)
			}
			switch cache.Level(m.classes[slot][idx-m.base]) {
			case cache.L1Hit:
				return 0
			case cache.L2Hit:
				return l2
			default:
				return mem
			}
		}
	}
	return m, nil
}

// extend classifies loads through the shared hierarchy rows until absolute
// load index idx is covered. References decode once (shared decoded stream)
// and every boundary row advances in lockstep, so row state at load i equals
// an independent Hierarchy's after loads r_0..r_{i-1}.
func (m *MultiCombined) extend(idx int64) {
	for m.base+int64(len(m.classes[0])) <= idx {
		set, tag, write := m.dec.NextDecoded()
		m.mh.AccessLevels(int(set), tag, write, m.levels)
		for s, kb := range m.rows {
			m.classes[s] = append(m.classes[s], uint8(m.levels[kb]))
		}
	}
}

// trim recycles the classification prefix below the slowest cell. Peak
// buffered classification is bounded by the cells' load-index skew — window
// occupancy differences plus one refill batch — independent of run length.
func (m *MultiCombined) trim() {
	min := m.loadIdx[0]
	for _, v := range m.loadIdx[1:] {
		if v < min {
			min = v
		}
	}
	drop := int(min - m.base)
	if drop <= 0 {
		return
	}
	for s := range m.classes {
		kept := copy(m.classes[s], m.classes[s][drop:])
		m.classes[s] = m.classes[s][:kept]
	}
	m.base = min
}

// RunInterval advances every cell by n issued instructions and accumulates
// each cell's time at its own coupled clock — float64(cycles) × period, the
// identical float expression clock.System.Advance applies in the per-cell
// oracle. Per-cell fractional-load accumulators carry across intervals
// exactly as CombinedMachine's do.
func (m *MultiCombined) RunInterval(n int64) {
	sts := m.mc.RunEachWithLoads(m.istream, n, m.rpi, m.memLat)
	for i, st := range sts {
		m.instrs[i] += st.Issued
		m.timeNS[i] += float64(st.Cycles) * m.periods[i]
	}
	m.trim()
}

// TPIs returns each cell's cumulative ns per instruction, index-parallel to
// the construction points.
func (m *MultiCombined) TPIs() []float64 {
	out := make([]float64, len(m.points))
	for i := range m.points {
		if m.instrs[i] != 0 {
			out[i] = m.timeNS[i] / float64(m.instrs[i])
		}
	}
	return out
}

// PublishObs ships the member engines' telemetry deltas.
func (m *MultiCombined) PublishObs() {
	m.mc.PublishObs()
	m.mh.PublishObs()
}

// ProfileCombined profiles every joint configuration point for one
// application: each point runs `intervals` intervals of n instructions from
// a fresh machine state and the result is its TotalTPI, index-parallel to
// points — the profiling grid behind the Figure 5 experiment.
//
// With the shared-trace path enabled (the default), the whole grid is
// evaluated by ONE MultiCombined pass: the instruction stream is decoded
// once for all queue columns, each reference is decoded and classified once
// for all cache rows, and cells with the same boundary share hierarchy
// state. Otherwise every point profiles on a private CombinedMachine, swept
// in parallel across the pool. Both paths are bit-identical
// (TestProfileCombinedOnepass).
func ProfileCombined(ctx context.Context, b workload.Benchmark, seed uint64, sizes []int, p cache.Params, maxBoundary int, points []CombinedConfig, intervals, n int64, penaltyCycles int, f tech.FeatureSize) ([]float64, error) {
	as := obs.StartAsync("profile", "combined:"+b.Name)
	defer as.End(obs.Arg{K: "points", V: len(points)}, obs.Arg{K: "onepass", V: trace.Enabled()})
	if trace.Enabled() {
		m, err := NewMultiCombined(b, seed, sizes, p, maxBoundary, points, f)
		if err != nil {
			return nil, err
		}
		for i := int64(0); i < intervals; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			m.RunInterval(n)
		}
		m.PublishObs()
		return m.TPIs(), nil
	}
	return sweep.RunCtx(ctx, len(points), func(j int) (float64, error) {
		m, err := NewCombinedMachine(b, seed, sizes, p, maxBoundary, points[j], penaltyCycles, f)
		if err != nil {
			return 0, err
		}
		for i := int64(0); i < intervals; i++ {
			m.RunInterval(n)
		}
		return m.TotalTPI(), nil
	})
}
