package core

import (
	"context"
	"fmt"

	"capsim/internal/cache"
	"capsim/internal/classify"
	"capsim/internal/obs"
	"capsim/internal/ooo"
	"capsim/internal/palacharla"
	"capsim/internal/sweep"
	"capsim/internal/tech"
	"capsim/internal/trace"
	"capsim/internal/workload"
)

// MultiCombined is the joint one-pass engine for the Figure 5 processor: it
// evaluates EVERY requested (cache boundary × queue size) configuration of
// CombinedMachine in a single lockstep pass over one shared trace stream,
// composing the two existing one-pass kernels.
//
// The decomposition rests on two facts about CombinedMachine:
//
//   - Load PLACEMENT is configuration-independent. Loads are attached to
//     dispatched instructions by a deterministic fractional accumulator at
//     the profile's refs-per-instruction rate, so the i-th load of every
//     configuration sits at the same stream position and consumes the same
//     reference r_i — whatever the queue size or boundary.
//
//   - Cache state is BOUNDARY-shared. A cell's hierarchy sees exactly the
//     load reference sequence r_0, r_1, ... in order, so two cells with the
//     same boundary have bit-identical hierarchy states at every load index;
//     the hierarchy column of the cross product collapses to one row per
//     boundary.
//
// The kernel therefore replays the classification-stream tier
// (internal/classify): the per-reference outcome of every boundary is
// materialized once per (app, seed, geometry, budget) — by one
// MultiHierarchy pass, memoized in-process and in the persistent study
// store — and each cell serves its load latencies from its own replay
// cursor over its boundary's compressed row. Queue columns still advance
// over one shared instruction buffer (ooo.MultiCore), and the cell's clock
// remains the joint worst case of its queue and cache timings. Per-cell
// results are bit-identical to independent CombinedMachines
// (TestProfileCombinedOnepass): same Stats, same memLat sequence, same
// float operation order in the TPI arithmetic.
type MultiCombined struct {
	points  []CombinedConfig
	periods []float64 // per cell: worst case of queue and cache cycle times
	rpi     float64

	mc      *ooo.MultiCore
	istream workload.InstrSource

	memLat []func(write bool) int64

	instrs []int64
	timeNS []float64
}

// classifyBudget bounds the loads any cell can consume in `intervals`
// intervals of n instructions: per interval the issue target can overshoot
// by less than the issue width, dispatch leads issue by at most the window
// occupancy, and the fractional accumulator attaches at most rpi loads per
// dispatched instruction. The classification stream is materialized to this
// length; a cursor read past it panics (classify.Cursor), so an
// under-estimate is loud, never silently wrong.
func classifyBudget(intervals, n int64, maxWindow, issueWidth int, rpi float64) int64 {
	instrs := intervals*(n+int64(issueWidth)) + int64(maxWindow)
	return int64(float64(instrs)*rpi) + 2
}

// NewMultiCombined builds the joint kernel for one application over the
// given configuration points. sizes is the machine's queue-size table (the
// legal values for points' QueueEntries), exactly as passed to
// NewCombinedMachine; maxBoundary bounds the boundary rows. intervals and n
// size the classification stream: the kernel materializes (or reuses) the
// class outcomes for the whole planned run up front, so RunInterval may be
// called at most `intervals` times.
func NewMultiCombined(b workload.Benchmark, seed uint64, sizes []int, p cache.Params, maxBoundary int, points []CombinedConfig, intervals, n int64, f tech.FeatureSize) (*MultiCombined, error) {
	if b.Mem == nil {
		return nil, fmt.Errorf("core: %s has no memory profile", b.Name)
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("core: no configuration points")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lo, hi := p.Boundaries()
	if maxBoundary < lo || maxBoundary > hi {
		return nil, fmt.Errorf("core: max boundary %d outside [%d,%d]", maxBoundary, lo, hi)
	}
	m := &MultiCombined{
		points:  points,
		periods: make([]float64, len(points)),
		rpi:     b.Mem.RefsPerInstr,
		memLat:  make([]func(write bool) int64, len(points)),
		instrs:  make([]int64, len(points)),
		timeNS:  make([]float64, len(points)),
	}
	m.istream = trace.InstrSourceFor(b, seed)

	maxWindow := 0
	cfgs := make([]ooo.Config, len(points))
	for i, cc := range points {
		if cc.Boundary < 1 || cc.Boundary > maxBoundary {
			return nil, fmt.Errorf("core: boundary %d outside [1,%d]", cc.Boundary, maxBoundary)
		}
		ok := false
		for _, w := range sizes {
			if w == cc.QueueEntries {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("core: queue size %d not in table %v", cc.QueueEntries, sizes)
		}
		cfgs[i] = ooo.PaperConfig(cc.QueueEntries)
		if cfgs[i].WindowSize > maxWindow {
			maxWindow = cfgs[i].WindowSize
		}
	}
	var err error
	if m.mc, err = ooo.NewMultiCore(cfgs); err != nil {
		return nil, err
	}

	// One classification stream serves every cell: materialized once per
	// (app, seed, geometry, boundary range, budget) and replayed through
	// independent per-cell cursors, so cells sharing a boundary share the
	// row bytes without any cross-cell extend/trim coordination.
	nrefs := classifyBudget(intervals, n, maxWindow, cfgs[0].IssueWidth, m.rpi)
	cs, err := classify.StreamFor(b, seed, p, maxBoundary, nrefs)
	if err != nil {
		return nil, err
	}

	// Per-cell clocks and load-latency closures. The period is the worst
	// case of the queue's wakeup+select time and the cache timing, exactly
	// as NewCombinedMachine computes it; the latency switch mirrors
	// CombinedMachine.RunInterval's memLat term for term, reading this
	// cell's boundary row through this cell's own replay cursor.
	tp := tech.ForFeature(f)
	for i, cc := range points {
		t := cache.TimingFor(p, cc.Boundary)
		cyc := palacharla.CycleTime(palacharla.Queue{Entries: cc.QueueEntries, IssueWidth: 8}, tp)
		if t.CycleNS > cyc {
			cyc = t.CycleNS
		}
		m.periods[i] = cyc
		cur := cs.Cursor(cc.Boundary)
		l2 := int64(t.L2HitCycles)
		mem := int64(t.L2HitCycles + t.MemCycles)
		m.memLat[i] = func(write bool) int64 {
			switch cache.ClassLevel(cur.Next()) {
			case cache.L1Hit:
				return 0
			case cache.L2Hit:
				return l2
			default:
				return mem
			}
		}
	}
	return m, nil
}

// RunInterval advances every cell by n issued instructions and accumulates
// each cell's time at its own coupled clock — float64(cycles) × period, the
// identical float expression clock.System.Advance applies in the per-cell
// oracle. Per-cell fractional-load accumulators carry across intervals
// exactly as CombinedMachine's do.
func (m *MultiCombined) RunInterval(n int64) {
	sts := m.mc.RunEachWithLoads(m.istream, n, m.rpi, m.memLat)
	for i, st := range sts {
		m.instrs[i] += st.Issued
		m.timeNS[i] += float64(st.Cycles) * m.periods[i]
	}
}

// TPIs returns each cell's cumulative ns per instruction, index-parallel to
// the construction points.
func (m *MultiCombined) TPIs() []float64 {
	out := make([]float64, len(m.points))
	for i := range m.points {
		if m.instrs[i] != 0 {
			out[i] = m.timeNS[i] / float64(m.instrs[i])
		}
	}
	return out
}

// PublishObs ships the member engines' telemetry deltas. (The hierarchy
// pass behind the classification stream publishes its own at generation.)
func (m *MultiCombined) PublishObs() {
	m.mc.PublishObs()
}

// ProfileCombined profiles every joint configuration point for one
// application: each point runs `intervals` intervals of n instructions from
// a fresh machine state and the result is its TotalTPI, index-parallel to
// points — the profiling grid behind the Figure 5 experiment.
//
// With the shared-trace path enabled (the default), the whole grid is
// evaluated by ONE MultiCombined pass: the instruction stream is decoded
// once for all queue columns, each reference is decoded and classified once
// for all cache rows, and cells with the same boundary share hierarchy
// state. Otherwise every point profiles on a private CombinedMachine, swept
// in parallel across the pool. Both paths are bit-identical
// (TestProfileCombinedOnepass).
func ProfileCombined(ctx context.Context, b workload.Benchmark, seed uint64, sizes []int, p cache.Params, maxBoundary int, points []CombinedConfig, intervals, n int64, penaltyCycles int, f tech.FeatureSize) ([]float64, error) {
	as := obs.StartAsync("profile", "combined:"+b.Name)
	defer as.End(obs.Arg{K: "points", V: len(points)}, obs.Arg{K: "onepass", V: trace.Enabled()})
	if trace.Enabled() {
		m, err := NewMultiCombined(b, seed, sizes, p, maxBoundary, points, intervals, n, f)
		if err != nil {
			return nil, err
		}
		for i := int64(0); i < intervals; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			m.RunInterval(n)
		}
		m.PublishObs()
		return m.TPIs(), nil
	}
	return sweep.RunCtx(ctx, len(points), func(j int) (float64, error) {
		m, err := NewCombinedMachine(b, seed, sizes, p, maxBoundary, points[j], penaltyCycles, f)
		if err != nil {
			return 0, err
		}
		for i := int64(0); i < intervals; i++ {
			m.RunInterval(n)
		}
		return m.TotalTPI(), nil
	})
}
