package core

import (
	"testing"

	"capsim/internal/cache"
	"capsim/internal/tech"
	"capsim/internal/workload"
)

func combined(t *testing.T, app string, cc CombinedConfig) *CombinedMachine {
	t.Helper()
	b := workload.MustByName(app)
	m, err := NewCombinedMachine(b, 42, []int{16, 64, 128}, cache.PaperParams(),
		PaperMaxBoundary, cc, -1, tech.Micron018)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCombinedConfigSpace(t *testing.T) {
	m := combined(t, "gcc", CombinedConfig{QueueEntries: 64, Boundary: 2})
	cfgs := m.Configs()
	if len(cfgs) != 3*PaperMaxBoundary {
		t.Fatalf("%d configs, want %d", len(cfgs), 3*PaperMaxBoundary)
	}
	if m.Name() != "cap-processor" {
		t.Errorf("name %q", m.Name())
	}
	cc, err := m.Decode(m.Current().ID)
	if err != nil {
		t.Fatal(err)
	}
	if cc.QueueEntries != 64 || cc.Boundary != 2 {
		t.Errorf("decoded %+v", cc)
	}
	if _, err := m.Decode(-1); err == nil {
		t.Error("negative id accepted")
	}
}

func TestCombinedClockIsWorstCase(t *testing.T) {
	// With a large L1 and a small queue, the cache sets the cycle; with a
	// huge queue and a small L1, the queue does. Either way the joint
	// cycle is >= each structure's own requirement.
	m := combined(t, "gcc", CombinedConfig{QueueEntries: 16, Boundary: 8})
	cacheCyc := cache.TimingFor(cache.PaperParams(), 8).CycleNS
	if m.Current().CycleNS < cacheCyc {
		t.Errorf("joint cycle %v below cache requirement %v", m.Current().CycleNS, cacheCyc)
	}
	m2 := combined(t, "gcc", CombinedConfig{QueueEntries: 128, Boundary: 1})
	if m2.Current().CycleNS <= cache.TimingFor(cache.PaperParams(), 1).CycleNS {
		t.Errorf("128-entry queue should dominate the small-L1 cycle")
	}
}

func TestCombinedRunCouplesCache(t *testing.T) {
	// The same application must run slower (lower IPC) with a tiny L1
	// than with one that fits its working set, at the SAME queue size —
	// proof that loads actually traverse the hierarchy.
	small := combined(t, "stereo", CombinedConfig{QueueEntries: 64, Boundary: 1})
	large := combined(t, "stereo", CombinedConfig{QueueEntries: 64, Boundary: 6})
	sSmall := small.RunInterval(40000)
	sLarge := large.RunInterval(40000)
	if sSmall.IPC >= sLarge.IPC {
		t.Errorf("stereo IPC with 8KB L1 (%v) not below 48KB L1 (%v)", sSmall.IPC, sLarge.IPC)
	}
	if small.Hierarchy().Stats().Refs == 0 {
		t.Error("no cache references recorded")
	}
	if err := small.Hierarchy().CheckExclusive(); err != nil {
		t.Error(err)
	}
}

func TestCombinedSetConfig(t *testing.T) {
	m := combined(t, "gcc", CombinedConfig{QueueEntries: 128, Boundary: 2})
	m.RunInterval(5000)
	id, err := m.configID(CombinedConfig{QueueEntries: 16, Boundary: 6})
	if err != nil {
		t.Fatal(err)
	}
	stall, err := m.SetConfig(id)
	if err != nil {
		t.Fatal(err)
	}
	if stall <= 0 {
		t.Error("queue shrink + clock switch reported no stall")
	}
	cc, _ := m.Decode(m.Current().ID)
	if cc.QueueEntries != 16 || cc.Boundary != 6 {
		t.Errorf("post-reconfig %+v", cc)
	}
	if m.Hierarchy().Boundary() != 6 {
		t.Errorf("hierarchy boundary %d", m.Hierarchy().Boundary())
	}
	if _, err := m.SetConfig(999); err == nil {
		t.Error("unknown config accepted")
	}
}

func TestCombinedRejectsGo(t *testing.T) {
	b := workload.MustByName("go")
	_, err := NewCombinedMachine(b, 1, []int{16}, cache.PaperParams(), PaperMaxBoundary,
		CombinedConfig{QueueEntries: 16, Boundary: 1}, -1, tech.Micron018)
	if err == nil {
		t.Error("go (no memory profile) accepted")
	}
}

func TestRunCombinedWithPolicy(t *testing.T) {
	m := combined(t, "swim", CombinedConfig{QueueEntries: 16, Boundary: 1})
	target, err := m.configID(CombinedConfig{QueueEntries: 64, Boundary: 6})
	if err != nil {
		t.Fatal(err)
	}
	res := RunCombined(m, ProcessLevelPolicy{Best: target}, 10, 2000, true)
	if res.Switches != 1 {
		t.Errorf("switches %d", res.Switches)
	}
	for _, s := range res.Samples {
		if s.Config != target {
			t.Fatalf("interval ran on %d", s.Config)
		}
	}
	if res.TPI <= 0 {
		t.Error("no TPI")
	}
}

func TestCombinedLoadCarryOver(t *testing.T) {
	// The core's fractional-load accumulator must carry across interval
	// boundaries: a two-interval run consumes exactly the same reference
	// sequence — same hierarchy touch count, same cycle count — as one
	// unbroken run of the same total length. If RunWithLoads reset the
	// accumulator per call, the split run's second interval would restart
	// the rpi spacing and diverge on both counts.
	whole := combined(t, "gcc", CombinedConfig{QueueEntries: 64, Boundary: 2})
	split := combined(t, "gcc", CombinedConfig{QueueEntries: 64, Boundary: 2})
	whole.RunInterval(40000)
	split.RunInterval(20000)
	split.RunInterval(20000)
	// Interval overshoot telescopes the split run's final issue target past
	// the unbroken run's; top the shorter machine up to the longer one's
	// issued count so both stop on the same cycle, then demand exact
	// equality of every externally visible total.
	if d := split.Instrs() - whole.Instrs(); d > 0 {
		whole.RunInterval(d)
	} else if d < 0 {
		split.RunInterval(-d)
	}
	if whole.Instrs() != split.Instrs() {
		t.Fatalf("instruction counts differ: %d vs %d", whole.Instrs(), split.Instrs())
	}
	wr, sr := whole.Hierarchy().Stats().Refs, split.Hierarchy().Stats().Refs
	if wr != sr {
		t.Errorf("load counts differ across interval split: unbroken %d, split %d", wr, sr)
	}
	if a, b := whole.TotalTPI(), split.TotalTPI(); a != b {
		t.Errorf("TPI differs across interval split: %v vs %v", a, b)
	}
	if wr == 0 {
		t.Fatal("no loads recorded")
	}
}

func TestRunWithLoadsRate(t *testing.T) {
	// The deterministic thinning must call memLat at the profile rate.
	b := workload.MustByName("gcc")
	m, err := NewCombinedMachine(b, 42, []int{64}, cache.PaperParams(), PaperMaxBoundary,
		CombinedConfig{QueueEntries: 64, Boundary: 2}, -1, tech.Micron018)
	if err != nil {
		t.Fatal(err)
	}
	m.RunInterval(50000)
	refs := float64(m.Hierarchy().Stats().Refs)
	instrs := float64(m.Instrs())
	got := refs / instrs
	if got < b.Mem.RefsPerInstr*0.95 || got > b.Mem.RefsPerInstr*1.05 {
		t.Errorf("refs/instr %v, want ~%v", got, b.Mem.RefsPerInstr)
	}
}

// TestCombinedSetConfigTransitions is the table-driven transition-cost
// contract for the joint machine: a switch's reported cost is the queue
// drain (only when shrinking below occupancy) plus the clock-switch penalty,
// and a combined queue-resize + boundary-move pays both in ONE switch — not
// two clock penalties.
func TestCombinedSetConfigTransitions(t *testing.T) {
	cases := []struct {
		name      string
		from, to  CombinedConfig
		wantDrain bool // expect drain stalls on top of the clock penalty
	}{
		{"same-config no-op", CombinedConfig{64, 2}, CombinedConfig{64, 2}, false},
		{"queue grow only", CombinedConfig{16, 2}, CombinedConfig{64, 2}, false},
		{"queue shrink only", CombinedConfig{128, 2}, CombinedConfig{16, 2}, true},
		{"boundary move only", CombinedConfig{64, 1}, CombinedConfig{64, 8}, false},
		{"shrink + boundary move", CombinedConfig{128, 1}, CombinedConfig{16, 8}, true},
		{"grow + boundary move", CombinedConfig{16, 8}, CombinedConfig{128, 1}, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := combined(t, "gcc", tc.from)
			m.RunInterval(5000) // fill the window so shrinks have entries to drain
			id, err := m.configID(tc.to)
			if err != nil {
				t.Fatal(err)
			}
			switchesBefore := m.Clock().Switches()
			cost, err := m.SetConfig(id)
			if err != nil {
				t.Fatal(err)
			}
			if tc.from == tc.to {
				if cost != 0 {
					t.Fatalf("no-op switch cost %d", cost)
				}
				if m.Clock().Switches() != switchesBefore {
					t.Fatal("no-op switch touched the clock")
				}
				return
			}
			pen := int64(m.Clock().PenaltyCycles())
			if tc.wantDrain {
				if cost <= pen {
					t.Errorf("cost %d, want drain stalls beyond the %d-cycle penalty", cost, pen)
				}
			} else if cost != pen {
				t.Errorf("cost %d, want exactly the %d-cycle clock penalty", cost, pen)
			}
			if got := m.Clock().Switches() - switchesBefore; got != 1 {
				t.Errorf("%d clock switches, want 1", got)
			}
			cc, err := m.Decode(m.Current().ID)
			if err != nil {
				t.Fatal(err)
			}
			if cc != tc.to {
				t.Errorf("landed on %+v, want %+v", cc, tc.to)
			}
			if m.Hierarchy().Boundary() != tc.to.Boundary {
				t.Errorf("hierarchy boundary %d, want %d", m.Hierarchy().Boundary(), tc.to.Boundary)
			}
			if m.core.Config().WindowSize != tc.to.QueueEntries {
				t.Errorf("window %d, want %d", m.core.Config().WindowSize, tc.to.QueueEntries)
			}
			// The machine must still run correctly after the transition.
			if s := m.RunInterval(2000); s.TPI <= 0 {
				t.Errorf("post-switch interval TPI %v", s.TPI)
			}
		})
	}
}
