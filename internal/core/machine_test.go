package core

import (
	"testing"

	"capsim/internal/cache"
	"capsim/internal/tech"
	"capsim/internal/workload"
)

func queueMachine(t *testing.T, app string, initial int) *QueueMachine {
	t.Helper()
	b, err := workload.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewQueueMachine(b, 42, PaperQueueSizes(), initial, -1, tech.Micron018)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestQueueMachineConfigs(t *testing.T) {
	m := queueMachine(t, "gcc", 0)
	cfgs := m.Configs()
	if len(cfgs) != 8 {
		t.Fatalf("%d configs, want 8", len(cfgs))
	}
	for i := 1; i < len(cfgs); i++ {
		if cfgs[i].CycleNS <= cfgs[i-1].CycleNS {
			t.Errorf("config %d cycle %v not greater than %v", i, cfgs[i].CycleNS, cfgs[i-1].CycleNS)
		}
	}
	if m.Current().ID != 0 {
		t.Errorf("current %d, want 0", m.Current().ID)
	}
	if m.Name() != "int-queue" {
		t.Errorf("name %q", m.Name())
	}
}

func TestQueueMachineValidation(t *testing.T) {
	b := workload.MustByName("gcc")
	if _, err := NewQueueMachine(b, 1, nil, 0, -1, tech.Micron018); err == nil {
		t.Error("empty sizes accepted")
	}
	if _, err := NewQueueMachine(b, 1, []int{16}, 1, -1, tech.Micron018); err == nil {
		t.Error("out-of-range initial accepted")
	}
	if _, err := NewQueueMachine(b, 1, []int{0}, 0, -1, tech.Micron018); err == nil {
		t.Error("zero queue size accepted")
	}
}

func TestQueueMachineRunAccumulatesTPI(t *testing.T) {
	m := queueMachine(t, "gcc", 3)
	s := m.RunInterval(20000)
	if s.TPI <= 0 || s.IPC <= 0 {
		t.Fatalf("bad sample %+v", s)
	}
	if m.Instrs() < 20000 {
		t.Errorf("instrs %d", m.Instrs())
	}
	if m.TotalTPI() <= 0 || m.TimeNS() <= 0 {
		t.Error("no time accumulated")
	}
	// TPI = time/instrs consistency.
	if got := m.TimeNS() / float64(m.Instrs()); got != m.TotalTPI() {
		t.Errorf("TPI inconsistency: %v vs %v", got, m.TotalTPI())
	}
}

func TestQueueMachineReconfigure(t *testing.T) {
	m := queueMachine(t, "gcc", 7) // 128 entries
	m.RunInterval(5000)
	stall, err := m.SetConfig(0) // shrink to 16: drain + clock switch
	if err != nil {
		t.Fatal(err)
	}
	if stall <= 0 {
		t.Error("shrink reconfiguration reported no stall")
	}
	if m.Current().ID != 0 {
		t.Errorf("current %d", m.Current().ID)
	}
	if m.Clock().Switches() != 1 {
		t.Errorf("clock switches %d", m.Clock().Switches())
	}
	// No-op reconfiguration is free.
	stall, err = m.SetConfig(0)
	if err != nil || stall != 0 {
		t.Errorf("no-op reconfig: stall=%d err=%v", stall, err)
	}
	if _, err := m.SetConfig(99); err == nil {
		t.Error("unknown config accepted")
	}
}

func TestRunQueueWithPolicies(t *testing.T) {
	m := queueMachine(t, "gcc", 0)
	res := RunQueue(m, FixedPolicy{Config: 3}, 20, 1000, true)
	if len(res.Samples) != 20 {
		t.Fatalf("%d samples", len(res.Samples))
	}
	if res.Switches != 1 { // initial move 0 -> 3
		t.Errorf("switches %d, want 1", res.Switches)
	}
	for _, s := range res.Samples {
		if s.Config != 3 {
			t.Fatalf("interval %d ran on config %d", s.Interval, s.Config)
		}
	}
	if res.TPI <= 0 || res.Instrs < 20000 {
		t.Errorf("aggregate %+v", res)
	}
}

func TestRunQueueIntervalPolicy(t *testing.T) {
	b := workload.MustByName("vortex")
	m, err := NewQueueMachine(b, 42, []int{16, 64}, 0, -1, tech.Micron018)
	if err != nil {
		t.Fatal(err)
	}
	res := RunQueue(m, &IntervalPolicy{Configs: []int{0, 1}}, 200, 2000, false)
	if res.Samples != nil {
		t.Error("samples kept despite keepSamples=false")
	}
	if res.TPI <= 0 {
		t.Error("no TPI")
	}
	if res.Switches == 0 {
		t.Error("interval policy never explored the alternative configuration")
	}
}

func TestProfileQueueTPI(t *testing.T) {
	b := workload.MustByName("appcg")
	tpi, err := ProfileQueueTPI(b, 42, []int{16, 64}, 30000, tech.Micron018)
	if err != nil {
		t.Fatal(err)
	}
	if len(tpi) != 2 {
		t.Fatalf("profile table %v", tpi)
	}
	// appcg is dependence-bound: the fast 16-entry clock must win.
	if SelectBestIndex(tpi) != 0 {
		t.Errorf("appcg best config %d (table %v), want 16 entries", SelectBestIndex(tpi), tpi)
	}
}

func cacheMachine(t *testing.T, app string, initial int) *CacheMachine {
	t.Helper()
	b := workload.MustByName(app)
	m, err := NewCacheMachine(b, 42, cache.PaperParams(), PaperMaxBoundary, initial, -1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCacheMachineConfigs(t *testing.T) {
	m := cacheMachine(t, "gcc", 2)
	cfgs := m.Configs()
	if len(cfgs) != PaperMaxBoundary {
		t.Fatalf("%d configs", len(cfgs))
	}
	if m.Current().ID != 2 {
		t.Errorf("current %d", m.Current().ID)
	}
	if m.Name() != "dcache-hierarchy" {
		t.Errorf("name %q", m.Name())
	}
	if m.Timing(2).CycleNS <= 0 {
		t.Error("no timing")
	}
}

func TestCacheMachineRejectsGo(t *testing.T) {
	b := workload.MustByName("go")
	if _, err := NewCacheMachine(b, 1, cache.PaperParams(), PaperMaxBoundary, 2, -1); err == nil {
		t.Error("go (no memory profile) accepted")
	}
}

func TestCacheMachineRunAndMetrics(t *testing.T) {
	m := cacheMachine(t, "stereo", 2)
	s := m.RunInterval(50000)
	if s.TPI <= 0 || s.IPC <= 0 {
		t.Fatalf("bad sample %+v", s)
	}
	if m.TotalTPIMiss() <= 0 {
		t.Error("stereo at 16KB must have miss stalls")
	}
	if m.TotalTPI() <= m.TotalTPIMiss() {
		t.Error("TPI must exceed TPImiss (base pipeline)")
	}
	if m.Stats().Refs != 50000 {
		t.Errorf("refs %d", m.Stats().Refs)
	}
}

func TestCacheMachineReconfigureKeepsContents(t *testing.T) {
	m := cacheMachine(t, "gcc", 2)
	m.RunInterval(20000)
	blocks := m.Hierarchy().BlockCount()
	if _, err := m.SetConfig(6); err != nil {
		t.Fatal(err)
	}
	if got := m.Hierarchy().BlockCount(); got != blocks {
		t.Errorf("reconfiguration changed contents: %d -> %d", blocks, got)
	}
	if err := m.Hierarchy().CheckExclusive(); err != nil {
		t.Error(err)
	}
	if m.Clock().Switches() != 1 {
		t.Errorf("switches %d", m.Clock().Switches())
	}
	if _, err := m.SetConfig(0); err == nil {
		t.Error("boundary 0 accepted")
	}
}

func TestRunCacheProcessLevel(t *testing.T) {
	m := cacheMachine(t, "swim", 2)
	res := RunCache(m, ProcessLevelPolicy{Best: 6}, 10, 5000, true)
	if res.Refs != 50000 {
		t.Errorf("refs %d", res.Refs)
	}
	for _, s := range res.Samples {
		if s.Config != 6 {
			t.Fatalf("interval ran on %d", s.Config)
		}
	}
}

func TestProfileCacheTPIShape(t *testing.T) {
	// stereo's loop working set fits only in large L1s: its best boundary
	// must be past the 16KB conventional point, and its TPI at k=2 must
	// exceed its TPI at the best.
	b := workload.MustByName("stereo")
	tpi, miss, err := ProfileCacheTPI(b, 42, cache.PaperParams(), PaperMaxBoundary, 30000, 120000)
	if err != nil {
		t.Fatal(err)
	}
	best := SelectBestIndex(tpi)
	if best < 5 {
		t.Errorf("stereo best boundary k=%d, want >= 5 (48KB+)", best)
	}
	if tpi[2] <= tpi[best] {
		t.Error("stereo should improve over the 16KB conventional configuration")
	}
	if miss[2] <= miss[best] {
		t.Error("stereo TPImiss should fall at its best boundary")
	}
}

func TestQueueFigureShapeAnchors(t *testing.T) {
	// Spot-check the headline per-application shapes of Figure 10/11.
	sizes := PaperQueueSizes()
	check := func(app string, wantBest func(int) bool, desc string) {
		b := workload.MustByName(app)
		tpi, err := ProfileQueueTPI(b, 1998, sizes, 60000, tech.Micron018)
		if err != nil {
			t.Fatal(err)
		}
		best := sizes[SelectBestIndex(tpi)]
		if !wantBest(best) {
			t.Errorf("%s best queue %d entries, want %s (table %v)", app, best, desc, tpi)
		}
	}
	check("appcg", func(b int) bool { return b == 16 }, "16")
	check("fpppp", func(b int) bool { return b == 16 }, "16")
	check("radar", func(b int) bool { return b == 16 }, "16")
	check("m88ksim", func(b int) bool { return b >= 48 && b <= 80 }, "~64")
	check("compress", func(b int) bool { return b >= 96 }, ">=96")
}
