// Package core implements the paper's primary contribution: the
// Complexity-Adaptive Processor (CAP) control plane.
//
// A CAP intermixes fixed hardware structures with complexity-adaptive
// structures (CASes) whose size — and therefore whose worst-case timing —
// can be changed at runtime, together with a dynamic clock that lets every
// configuration run at its full clock-rate potential (paper Section 4). The
// pieces modeled here:
//
//   - AdaptiveStructure: the CAS abstraction — an enumerable set of
//     configurations, each with its own cycle time, plus the reconfiguration
//     ("cleanup") mechanics;
//   - Monitor: the on-chip performance-monitoring hardware, which measures
//     TPI (time per instruction = cycle time / IPC, the paper's metric) over
//     fixed instruction intervals;
//   - Policy: the configuration-management heuristic. The paper evaluates a
//     simple process-level scheme (one configuration per application,
//     selected by a profiling compiler/runtime and reloaded on context
//     switches); Section 6 sketches a hardware interval predictor with
//     confidence, implemented here as IntervalPolicy;
//   - Manager: glue that runs a workload on a CAS under a policy, charging
//     reconfiguration and clock-switch overheads.
//
// Two concrete CASes are provided in this package's siblings and adapted
// here: the complexity-adaptive two-level data-cache hierarchy
// (CacheMachine) and the complexity-adaptive instruction queue
// (QueueMachine).
package core

import "fmt"

// Config is one selectable configuration of an adaptive structure.
type Config struct {
	// ID indexes the configuration within its structure.
	ID int
	// Label is human-readable ("L1=16KB 4-way", "IQ=64").
	Label string
	// CycleNS is the processor cycle time this configuration imposes
	// (worst-case timing analysis of the structure at this size).
	CycleNS float64
}

// AdaptiveStructure is a CAS: hardware whose complexity can be changed at
// runtime among a predetermined set of configurations.
type AdaptiveStructure interface {
	// Name identifies the structure ("dcache-hierarchy", "int-queue").
	Name() string
	// Configs enumerates the available configurations, ordered by
	// increasing size.
	Configs() []Config
	// Current returns the active configuration.
	Current() Config
	// SetConfig reconfigures the structure, performing any cleanup the
	// transition requires (e.g. draining queue entries about to be
	// disabled), and returns the number of stall cycles the cleanup cost.
	SetConfig(id int) (stallCycles int64, err error)
}

// Sample is one interval measurement from the monitoring hardware.
type Sample struct {
	// Interval is the interval's ordinal number.
	Interval int64
	// Config is the configuration the interval ran under.
	Config int
	// TPI is the measured time per instruction in ns.
	TPI float64
	// IPC is the measured instructions per cycle.
	IPC float64
}

// Monitor is the performance-monitoring state a Policy may consult: the
// recent samples (most recent last) and the active configuration.
type Monitor struct {
	// Window holds the most recent samples, oldest first.
	Window []Sample
	// Current is the active configuration ID.
	Current int
	maxLen  int
}

// NewMonitor creates a monitor retaining up to n samples. The window is
// preallocated at its retention capacity so Record never allocates: it is
// called once per simulated interval by every machine's run loop.
func NewMonitor(n int) *Monitor {
	if n < 1 {
		n = 1
	}
	return &Monitor{maxLen: n, Window: make([]Sample, 0, n)}
}

// Record appends a sample, evicting the oldest beyond the retention window.
// Eviction happens before the append so the slice never exceeds its
// preallocated capacity — Record stays allocation-free in steady state.
func (m *Monitor) Record(s Sample) {
	if len(m.Window) >= m.maxLen {
		n := copy(m.Window, m.Window[len(m.Window)-m.maxLen+1:])
		m.Window = m.Window[:n]
	}
	m.Window = append(m.Window, s)
	m.Current = s.Config
}

// Last returns the most recent sample and whether one exists.
func (m *Monitor) Last() (Sample, bool) {
	if len(m.Window) == 0 {
		return Sample{}, false
	}
	return m.Window[len(m.Window)-1], true
}

// LastFor returns the most recent sample taken under the given
// configuration, and whether one exists.
func (m *Monitor) LastFor(config int) (Sample, bool) {
	for i := len(m.Window) - 1; i >= 0; i-- {
		if m.Window[i].Config == config {
			return m.Window[i], true
		}
	}
	return Sample{}, false
}

// Policy is a configuration-management heuristic: after each interval it
// chooses the configuration for the next interval.
type Policy interface {
	// Name identifies the policy for reporting.
	Name() string
	// Next returns the configuration to run the next interval under.
	Next(m *Monitor) int
}

// validateConfigs checks a configuration table for use by the machines.
func validateConfigs(configs []Config) error {
	if len(configs) == 0 {
		return fmt.Errorf("core: empty configuration table")
	}
	seen := make(map[int]bool, len(configs))
	for _, c := range configs {
		if c.CycleNS <= 0 {
			return fmt.Errorf("core: config %d (%s) has cycle %v", c.ID, c.Label, c.CycleNS)
		}
		if seen[c.ID] {
			return fmt.Errorf("core: duplicate config id %d", c.ID)
		}
		seen[c.ID] = true
	}
	return nil
}
