package core

import (
	"context"
	"sync"
	"testing"

	"capsim/internal/flight"
	"capsim/internal/obs"
	"capsim/internal/tech"
	"capsim/internal/workload"
)

// captureSink collects published runs in memory for inspection.
type captureSink struct {
	mu   sync.Mutex
	runs []capturedRun
}

type capturedRun struct {
	meta   flight.RunMeta
	events []flight.Event
	end    flight.RunEnd
}

func (s *captureSink) WriteRun(_ int64, meta flight.RunMeta, events []flight.Event, end flight.RunEnd) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runs = append(s.runs, capturedRun{meta, append([]flight.Event(nil), events...), end})
	return nil
}

func (s *captureSink) WriteProgress(flight.Progress) error { return nil }

func (s *captureSink) byKind(kind string) []capturedRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []capturedRun
	for _, r := range s.runs {
		if r.meta.Kind == kind {
			out = append(out, r)
		}
	}
	return out
}

// TestFlightRecorderEnginesExact drives all three interval engines with the
// recorder active and -obs-assert on: every published column must satisfy
// flight.CheckRun's exact-float invariants (any violation panics through
// obs.Fail), results must be bit-identical to a recorder-off run, and the
// oracle column must lower-bound every fixed/trace column's time.
func TestFlightRecorderEnginesExact(t *testing.T) {
	b := workload.MustByName("vortex")
	sizes := []int{16, 64}
	const intervals = 120
	mk := func() *MultiPolicy {
		mp, err := NewMultiPolicy(b, 1998, sizes, 2000, 40, tech.Micron018)
		if err != nil {
			t.Fatal(err)
		}
		return mp
	}

	// Recorder-off reference results.
	ResetPolicyFamilies()
	mp := mk()
	ctx := context.Background()
	refTraces, err := mp.Traces(ctx, intervals)
	if err != nil {
		t.Fatal(err)
	}
	refFixed, err := mp.RunFixed(ctx, 1, intervals)
	if err != nil {
		t.Fatal(err)
	}
	ResetPolicyFamilies()
	refRace, err := mk().Race(ctx, []PolicySpec{{Policy: &IntervalPolicy{Configs: []int{0, 1}}}}, intervals)
	if err != nil {
		t.Fatal(err)
	}

	// Recorder-on pass under assertions.
	obs.SetAssert(true)
	defer obs.SetAssert(false)
	sink := &captureSink{}
	rctx := flight.WithCollector(ctx, flight.NewCollector(sink))
	ResetPolicyFamilies()
	mp = mk()
	recTraces, err := mp.Traces(rctx, intervals)
	if err != nil {
		t.Fatal(err)
	}
	recFixed, err := mp.RunFixed(rctx, 1, intervals)
	if err != nil {
		t.Fatal(err)
	}
	ResetPolicyFamilies()
	recRace, err := mk().Race(rctx, []PolicySpec{{Policy: &IntervalPolicy{Configs: []int{0, 1}}}}, intervals)
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identical simulated results recorder-on/off.
	for i := range refTraces {
		for iv := range refTraces[i] {
			if refTraces[i][iv] != recTraces[i][iv] {
				t.Fatalf("trace %d iv %d diverged with recorder on", i, iv)
			}
		}
	}
	sameResult := func(a, b RunResult) bool {
		return a.Policy == b.Policy && a.Instrs == b.Instrs && a.TimeNS == b.TimeNS &&
			a.TPI == b.TPI && a.Switches == b.Switches
	}
	if !sameResult(refFixed, recFixed) {
		t.Fatalf("RunFixed diverged:\n off: %+v\n on:  %+v", refFixed, recFixed)
	}
	if !sameResult(refRace[0], recRace[0]) {
		t.Fatalf("Race diverged:\n off: %+v\n on:  %+v", refRace[0], recRace[0])
	}

	// Column inventory: one trace run per size + oracle + fixed + race.
	if n := len(sink.byKind(flight.KindTrace)); n != len(sizes) {
		t.Fatalf("got %d trace columns, want %d", n, len(sizes))
	}
	oracles := sink.byKind(flight.KindOracle)
	if len(oracles) != 1 {
		t.Fatalf("got %d oracle columns, want 1", len(oracles))
	}
	fixed := sink.byKind(flight.KindFixed)
	if len(fixed) != 1 || fixed[0].meta.Policy != "fixed(1)" {
		t.Fatalf("fixed column missing: %+v", fixed)
	}
	races := sink.byKind(flight.KindRace)
	if len(races) != 1 || races[0].meta.Policy != "interval-adaptive" {
		t.Fatalf("race column missing: %+v", races)
	}

	// The ledger's end summaries reproduce the engines' results exactly.
	if fixed[0].end.TimeNS != refFixed.TimeNS || fixed[0].end.TPI != refFixed.TPI ||
		fixed[0].end.Instrs != refFixed.Instrs || fixed[0].end.Switches != refFixed.Switches {
		t.Fatalf("fixed end %+v != engine result %+v", fixed[0].end, refFixed)
	}
	if races[0].end.TimeNS != refRace[0].TimeNS || races[0].end.TPI != refRace[0].TPI ||
		races[0].end.Switches != refRace[0].Switches {
		t.Fatalf("race end %+v != engine result %+v", races[0].end, refRace[0])
	}

	// Oracle lower-bounds every replay column's total time and carries zero
	// regret; every column replays CheckRun cleanly (also exercised by the
	// collector's assert hook above — this re-check documents intent).
	oracleTime := oracles[0].end.TimeNS
	for _, r := range sink.runs {
		if err := flight.CheckRun(r.meta, r.events, r.end); err != nil {
			t.Fatalf("column %s/%s trips: %v", r.meta.Policy, r.meta.Kind, err)
		}
		if r.meta.Kind == flight.KindTrace || r.meta.Kind == flight.KindFixed {
			if r.end.TimeNS < oracleTime {
				t.Fatalf("column %s beats the oracle: %v < %v", r.meta.Policy, r.end.TimeNS, oracleTime)
			}
		}
	}
}

// TestFlightRecorderInactive pins the zero-overhead contract's correctness
// side: with no collector installed, the engines publish nothing.
func TestFlightRecorderInactive(t *testing.T) {
	if flight.Active(context.Background()) {
		t.Skip("a process-wide collector is installed")
	}
	ResetPolicyFamilies()
	b := workload.MustByName("turb3d")
	mp, err := NewMultiPolicy(b, 1998, []int{16, 64}, 2000, 40, tech.Micron018)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mp.Traces(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	if _, err := mp.RunFixed(context.Background(), 1, 10); err != nil {
		t.Fatal(err)
	}
}
