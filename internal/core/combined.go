package core

import (
	"fmt"

	"capsim/internal/cache"
	"capsim/internal/clock"
	"capsim/internal/ooo"
	"capsim/internal/palacharla"
	"capsim/internal/tech"
	"capsim/internal/trace"
	"capsim/internal/workload"
)

// CombinedMachine is the full Complexity-Adaptive Processor of the paper's
// Figure 5: multiple complexity-adaptive structures — here the instruction
// queue AND the Dcache hierarchy — coexisting under one Configuration
// Manager and one dynamic clock. The processor clock is the worst case of
// the enabled configurations ("the various clock speeds are predetermined
// based on worst-case timing analysis of each FS and combination of CAS
// configurations"), which couples the two structures: a large L1 slows the
// queue's effective clock and vice versa, creating the cross-structure
// interactions the paper warns make next-configuration prediction complex.
//
// Unlike the two single-structure machines (which reproduce the paper's
// controlled experiments with their idealizing assumptions), the combined
// machine closes the loop between them: loads issue through the out-of-order
// window with latencies drawn from the live cache hierarchy instead of a
// perfect cache.
type CombinedMachine struct {
	sizes   []int // queue sizes
	maxL1   int   // cache boundaries 1..maxL1
	feature tech.FeatureSize
	configs []Config // flattened: ID = boundaryIdx*len(sizes) + queueIdx

	core    *ooo.Core
	hier    *cache.Hierarchy
	timings []cache.Timing
	clk     *clock.System
	istream workload.InstrSource
	refs    workload.RefSource
	rpi     float64
	cur     int

	instrs int64
	timeNS float64
}

// CombinedConfig identifies one point in the joint configuration space.
type CombinedConfig struct {
	QueueEntries int
	Boundary     int // L1 increments
}

// NewCombinedMachine builds the joint CAP for an application (which must
// have a memory profile). The configuration space is the cross product of
// the queue sizes and the cache boundaries 1..maxBoundary.
func NewCombinedMachine(b workload.Benchmark, seed uint64, sizes []int, p cache.Params, maxBoundary int, initial CombinedConfig, penaltyCycles int, f tech.FeatureSize) (*CombinedMachine, error) {
	if b.Mem == nil {
		return nil, fmt.Errorf("core: %s has no memory profile", b.Name)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("core: no queue sizes")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lo, hi := p.Boundaries()
	if maxBoundary < lo || maxBoundary > hi {
		return nil, fmt.Errorf("core: max boundary %d outside [%d,%d]", maxBoundary, lo, hi)
	}
	tp := tech.ForFeature(f)
	m := &CombinedMachine{
		sizes:   sizes,
		maxL1:   maxBoundary,
		feature: f,
		timings: make([]cache.Timing, maxBoundary+1),
		rpi:     b.Mem.RefsPerInstr,
	}
	var sources []clock.Source
	for k := 1; k <= maxBoundary; k++ {
		m.timings[k] = cache.TimingFor(p, k)
		for qi, w := range sizes {
			if w < 1 {
				return nil, fmt.Errorf("core: queue size %d invalid", w)
			}
			qCyc := palacharla.CycleTime(palacharla.Queue{Entries: w, IssueWidth: 8}, tp)
			cyc := qCyc
			if m.timings[k].CycleNS > cyc {
				cyc = m.timings[k].CycleNS // worst case of the enabled CASes
			}
			id := (k-1)*len(sizes) + qi
			c := Config{ID: id, Label: fmt.Sprintf("IQ=%d/L1=%dKB", w, p.L1Bytes(k)/1024), CycleNS: cyc}
			m.configs = append(m.configs, c)
			sources = append(sources, clock.Source{ID: id, PeriodNS: cyc, Label: c.Label})
		}
	}
	if err := validateConfigs(m.configs); err != nil {
		return nil, err
	}
	initID, err := m.configID(initial)
	if err != nil {
		return nil, err
	}
	if m.core, err = ooo.New(ooo.PaperConfig(initial.QueueEntries)); err != nil {
		return nil, err
	}
	if m.hier, err = cache.New(p, initial.Boundary); err != nil {
		return nil, err
	}
	if m.clk, err = clock.NewSystem(sources, initID, penaltyCycles); err != nil {
		return nil, err
	}
	m.istream = trace.InstrSourceFor(b, seed)
	m.refs = trace.RefSourceFor(b, seed)
	m.cur = initID
	return m, nil
}

// configID maps a joint configuration to its flattened ID.
func (m *CombinedMachine) configID(c CombinedConfig) (int, error) {
	if c.Boundary < 1 || c.Boundary > m.maxL1 {
		return 0, fmt.Errorf("core: boundary %d outside [1,%d]", c.Boundary, m.maxL1)
	}
	for qi, w := range m.sizes {
		if w == c.QueueEntries {
			return (c.Boundary-1)*len(m.sizes) + qi, nil
		}
	}
	return 0, fmt.Errorf("core: queue size %d not in table %v", c.QueueEntries, m.sizes)
}

// Decode maps a flattened configuration ID back to its joint configuration.
func (m *CombinedMachine) Decode(id int) (CombinedConfig, error) {
	if id < 0 || id >= len(m.configs) {
		return CombinedConfig{}, fmt.Errorf("core: unknown combined config %d", id)
	}
	return CombinedConfig{
		QueueEntries: m.sizes[id%len(m.sizes)],
		Boundary:     id/len(m.sizes) + 1,
	}, nil
}

// Name implements AdaptiveStructure.
func (m *CombinedMachine) Name() string { return "cap-processor" }

// Configs implements AdaptiveStructure.
func (m *CombinedMachine) Configs() []Config {
	out := make([]Config, len(m.configs))
	copy(out, m.configs)
	return out
}

// Current implements AdaptiveStructure.
func (m *CombinedMachine) Current() Config { return m.configs[m.cur] }

// SetConfig implements AdaptiveStructure: the queue drains if shrinking, the
// cache boundary relabels, and the clock switches to the joint worst case.
func (m *CombinedMachine) SetConfig(id int) (int64, error) {
	cc, err := m.Decode(id)
	if err != nil {
		return 0, err
	}
	if id == m.cur {
		return 0, nil
	}
	before := m.core.Stats().DrainStalls
	if err := m.core.Resize(cc.QueueEntries); err != nil {
		return 0, err
	}
	drain := m.core.Stats().DrainStalls - before
	m.timeNS += m.clk.Advance(drain)
	if err := m.hier.SetBoundary(cc.Boundary); err != nil {
		return 0, err
	}
	pen, err := m.clk.Select(id)
	if err != nil {
		return drain, err
	}
	m.timeNS += pen
	m.cur = id
	return drain + int64(m.clk.PenaltyCycles()), nil
}

// RunInterval issues n instructions with loads served by the live cache
// hierarchy, and returns the interval's sample. Memory references are
// attached to instructions at the profile's refs-per-instruction rate; a
// load's latency is the hierarchy's outcome at the current boundary
// (pipelined L1 hits cost nothing extra; L2 hits and structure misses add
// their stall cycles to the consumer-visible latency, a blocking-cache
// approximation consistent with the paper's cache methodology).
//
// The core's fractional-load accumulator deliberately carries over between
// successive RunInterval calls (see ooo.Core.RunWithLoads): the deterministic
// refs-per-instruction spacing continues across interval boundaries instead
// of restarting, so an interval-driven run consumes exactly the same
// reference sequence — and touches the hierarchy exactly the same number of
// times — as one unbroken run. TestCombinedLoadCarryOver pins this.
func (m *CombinedMachine) RunInterval(n int64) Sample {
	t := m.timings[m.cur/len(m.sizes)+1]
	st := m.core.RunWithLoads(m.istream, n, m.rpi, func(write bool) int64 {
		r := m.refs.Next()
		switch m.hier.Access(r.Addr, r.Write || write) {
		case cache.L1Hit:
			return 0
		case cache.L2Hit:
			return int64(t.L2HitCycles)
		default:
			return int64(t.L2HitCycles + t.MemCycles)
		}
	})
	dt := m.clk.Advance(st.Cycles)
	m.instrs += st.Issued
	m.timeNS += dt
	return Sample{Config: m.cur, TPI: dt / float64(st.Issued), IPC: st.IPC()}
}

// TotalTPI returns cumulative ns per instruction including overheads.
func (m *CombinedMachine) TotalTPI() float64 {
	if m.instrs == 0 {
		return 0
	}
	return m.timeNS / float64(m.instrs)
}

// Instrs returns instructions issued so far.
func (m *CombinedMachine) Instrs() int64 { return m.instrs }

// Clock exposes the dynamic clock.
func (m *CombinedMachine) Clock() *clock.System { return m.clk }

// Hierarchy exposes the cache (for invariant checks).
func (m *CombinedMachine) Hierarchy() *cache.Hierarchy { return m.hier }

// RunCombined drives the machine under a policy over the flattened joint
// configuration space.
func RunCombined(m *CombinedMachine, p Policy, intervals, n int64, keepSamples bool) RunResult {
	mon := NewMonitor(64)
	mon.Current = m.cur
	res := RunResult{Policy: p.Name()}
	if keepSamples {
		res.Samples = make([]Sample, 0, intervals)
	}
	for i := int64(0); i < intervals; i++ {
		want := p.Next(mon)
		if want != m.cur {
			if _, err := m.SetConfig(want); err != nil {
				panic(err)
			}
		}
		s := m.RunInterval(n)
		s.Interval = i
		mon.Record(s)
		if keepSamples {
			res.Samples = append(res.Samples, s)
		}
	}
	res.Instrs = m.Instrs()
	res.TimeNS = m.timeNS
	res.TPI = m.TotalTPI()
	res.Switches = m.clk.Switches()
	m.core.PublishObs()
	m.hier.PublishObs()
	return res
}
