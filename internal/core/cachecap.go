package core

import (
	"fmt"
	"math"

	"capsim/internal/cache"
	"capsim/internal/clock"
	"capsim/internal/obs"
	"capsim/internal/sweep"
	"capsim/internal/trace"
	"capsim/internal/workload"
)

// CacheMachine is the complexity-adaptive two-level Dcache hierarchy CAS
// bound to a trace, the blocking-cache performance model and a dynamic
// clock: the system evaluated in Section 5.2 of the paper. Configuration ID
// k (1-based) places the movable L1/L2 boundary after k increments.
type CacheMachine struct {
	params  cache.Params
	maxL1   int // largest boundary exposed (the paper explores L1 <= 64 KB)
	configs []Config
	timings []cache.Timing

	hier *cache.Hierarchy
	clk  *clock.System
	refs workload.RefSource
	rpi  float64 // references per instruction
	cur  int

	instrs float64
	timeNS float64
	missNS float64
}

// PaperMaxBoundary limits the explored L1 sizes to 8-64 KB (8 increments of
// 8 KB), the range the paper investigates.
const PaperMaxBoundary = 8

// NewCacheMachine builds the machine for one application (which must have a
// memory profile). penaltyCycles < 0 selects the default clock-switch
// penalty.
func NewCacheMachine(b workload.Benchmark, seed uint64, p cache.Params, maxBoundary, initial, penaltyCycles int) (*CacheMachine, error) {
	if b.Mem == nil {
		return nil, fmt.Errorf("core: %s has no memory profile", b.Name)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lo, hi := p.Boundaries()
	if maxBoundary < lo || maxBoundary > hi {
		return nil, fmt.Errorf("core: max boundary %d outside [%d,%d]", maxBoundary, lo, hi)
	}
	if initial < 1 || initial > maxBoundary {
		return nil, fmt.Errorf("core: initial boundary %d outside [1,%d]", initial, maxBoundary)
	}
	configs := make([]Config, 0, maxBoundary)
	timings := make([]cache.Timing, maxBoundary+1)
	sources := make([]clock.Source, 0, maxBoundary)
	for k := 1; k <= maxBoundary; k++ {
		t := cache.TimingFor(p, k)
		timings[k] = t
		label := fmt.Sprintf("L1=%dKB %d-way", p.L1Bytes(k)/1024, p.L1Assoc(k))
		configs = append(configs, Config{ID: k, Label: label, CycleNS: t.CycleNS})
		sources = append(sources, clock.Source{ID: k, PeriodNS: t.CycleNS, Label: label})
	}
	if err := validateConfigs(configs); err != nil {
		return nil, err
	}
	h, err := cache.New(p, initial)
	if err != nil {
		return nil, err
	}
	clk, err := clock.NewSystem(sources, initial, penaltyCycles)
	if err != nil {
		return nil, err
	}
	return &CacheMachine{
		params:  p,
		maxL1:   maxBoundary,
		configs: configs,
		timings: timings,
		hier:    h,
		clk:     clk,
		refs:    trace.RefSourceFor(b, seed),
		rpi:     b.Mem.RefsPerInstr,
		cur:     initial,
	}, nil
}

// Name implements AdaptiveStructure.
func (c *CacheMachine) Name() string { return "dcache-hierarchy" }

// Configs implements AdaptiveStructure.
func (c *CacheMachine) Configs() []Config {
	out := make([]Config, len(c.configs))
	copy(out, c.configs)
	return out
}

// Current implements AdaptiveStructure.
func (c *CacheMachine) Current() Config { return c.configs[c.cur-1] }

// SetConfig implements AdaptiveStructure: moving the L1/L2 boundary needs no
// flush or data movement (exclusive caching + constant index mapping), so
// the only cost is the clock switch.
func (c *CacheMachine) SetConfig(k int) (int64, error) {
	if k < 1 || k > c.maxL1 {
		return 0, fmt.Errorf("core: unknown cache config %d", k)
	}
	if k == c.cur {
		return 0, nil
	}
	if err := c.hier.SetBoundary(k); err != nil {
		return 0, err
	}
	pen, err := c.clk.Select(k)
	if err != nil {
		return 0, err
	}
	c.timeNS += pen
	c.cur = k
	return int64(c.clk.PenaltyCycles()), nil
}

// baseCPI matches the paper's 4-way issue pipeline at 2.67 IPC in the
// absence of L1 Dcache misses.
const baseCPI = 1.0 / 2.67

// RunInterval plays n references through the hierarchy under the current
// configuration and returns the interval's sample (TPI measured over the
// instructions those references represent).
func (c *CacheMachine) RunInterval(n int64) Sample {
	t := c.timings[c.cur]
	before := c.hier.Stats()
	for i := int64(0); i < n; i++ {
		r := c.refs.Next()
		c.hier.Access(r.Addr, r.Write)
	}
	after := c.hier.Stats()
	l1m := after.L1Misses - before.L1Misses
	l2m := after.L2Misses - before.L2Misses
	instrs := float64(n) / c.rpi
	stall := float64(l1m-l2m)*float64(t.L2HitCycles) + float64(l2m)*float64(t.L2HitCycles+t.MemCycles)
	cycles := instrs*baseCPI + stall
	dt := cycles * t.CycleNS
	c.instrs += instrs
	c.timeNS += dt
	c.missNS += stall * t.CycleNS
	return Sample{
		Config: c.cur,
		TPI:    dt / instrs,
		IPC:    instrs / cycles,
	}
}

// TotalTPI returns cumulative ns per instruction including reconfiguration
// overheads.
func (c *CacheMachine) TotalTPI() float64 {
	if c.instrs == 0 {
		return 0
	}
	return c.timeNS / c.instrs
}

// TotalTPIMiss returns cumulative Dcache-miss-stall ns per instruction (the
// paper's TPImiss metric).
func (c *CacheMachine) TotalTPIMiss() float64 {
	if c.instrs == 0 {
		return 0
	}
	return c.missNS / c.instrs
}

// Stats exposes the hierarchy's raw counters.
func (c *CacheMachine) Stats() cache.Stats { return c.hier.Stats() }

// Hierarchy exposes the underlying cache (invariant checks in tests).
func (c *CacheMachine) Hierarchy() *cache.Hierarchy { return c.hier }

// Clock exposes the dynamic clock for reporting.
func (c *CacheMachine) Clock() *clock.System { return c.clk }

// Timing returns the timing of boundary k.
func (c *CacheMachine) Timing(k int) cache.Timing { return c.timings[k] }

// CacheRunResult aggregates a policy-driven cache run.
type CacheRunResult struct {
	Policy   string
	Refs     int64
	TPI      float64
	TPIMiss  float64
	Switches int64
	Samples  []Sample
}

// RunCache drives the machine for `intervals` intervals of `n` references
// under the policy. The paper's process-level scheme only reconfigures on
// context switches; interval-level policies are the Section 6 extension.
func RunCache(c *CacheMachine, p Policy, intervals, n int64, keepSamples bool) CacheRunResult {
	mon := NewMonitor(64)
	mon.Current = c.cur
	res := CacheRunResult{Policy: p.Name()}
	if keepSamples {
		res.Samples = make([]Sample, 0, intervals)
	}
	for i := int64(0); i < intervals; i++ {
		want := p.Next(mon)
		if want != c.cur {
			if _, err := c.SetConfig(want); err != nil {
				panic(err)
			}
		}
		s := c.RunInterval(n)
		s.Interval = i
		mon.Record(s)
		if keepSamples {
			res.Samples = append(res.Samples, s)
		}
	}
	res.Refs = int64(c.hier.Stats().Refs)
	res.TPI = c.TotalTPI()
	res.TPIMiss = c.TotalTPIMiss()
	res.Switches = c.clk.Switches()
	c.hier.PublishObs()
	return res
}

// ProfileCacheBoundary runs ONE boundary position on a fresh hierarchy +
// trace for the given reference budget (after a warm-up that is discarded)
// and returns its (TPI, TPImiss). Each call builds its own machine and
// derives its own rng streams from (seed, benchmark name), so calls for
// distinct (benchmark, boundary) cells are independent and may execute
// concurrently — this is the unit job of the parallel sweep engine.
func ProfileCacheBoundary(b workload.Benchmark, seed uint64, p cache.Params, maxBoundary, k int, warm, refs int64) (tpi, tpiMiss float64, err error) {
	m, err := NewCacheMachine(b, seed, p, maxBoundary, k, -1)
	if err != nil {
		return 0, 0, err
	}
	if warm > 0 {
		m.RunInterval(warm)
		m.instrs, m.timeNS, m.missNS = 0, 0, 0
	}
	m.RunInterval(refs)
	m.hier.PublishObs()
	return m.TotalTPI(), m.TotalTPIMiss(), nil
}

// ProfileCacheTPI profiles every boundary for one application — the
// process-level profiling pass. Results are dense slices of length
// maxBoundary+1 indexed by boundary k (slot 0 is +Inf so SelectBestIndex can
// never choose it).
//
// When the shared-trace path is enabled (the default), the whole boundary
// family is evaluated in ONE pass over the materialized reference stream via
// cache.MultiHierarchy — each reference is generated and decoded exactly
// once instead of once per boundary. When disabled (capsim -onepass=false),
// the legacy oracle sweeps one independent machine per boundary across the
// sweep pool. Both paths are bit-identical (TestProfileCacheTPIOnepass).
func ProfileCacheTPI(b workload.Benchmark, seed uint64, p cache.Params, maxBoundary int, warm, refs int64) (tpi, tpiMiss []float64, err error) {
	// The async span makes each per-application profile cell its own
	// timeline row, whatever worker goroutine it runs on.
	as := obs.StartAsync("profile", "cache:"+b.Name)
	defer as.End(obs.Arg{K: "boundaries", V: maxBoundary}, obs.Arg{K: "onepass", V: trace.Enabled()})
	if trace.Enabled() {
		return profileCacheTPIOnepass(b, seed, p, maxBoundary, warm, refs)
	}
	type cell struct{ tpi, miss float64 }
	cells, err := sweep.Run(maxBoundary, func(i int) (cell, error) {
		t, m, err := ProfileCacheBoundary(b, seed, p, maxBoundary, i+1, warm, refs)
		return cell{t, m}, err
	})
	if err != nil {
		return nil, nil, err
	}
	tpi = make([]float64, maxBoundary+1)
	tpiMiss = make([]float64, maxBoundary+1)
	tpi[0], tpiMiss[0] = math.Inf(1), math.Inf(1)
	for i, c := range cells {
		tpi[i+1], tpiMiss[i+1] = c.tpi, c.miss
	}
	return tpi, tpiMiss, nil
}

// profileCacheTPIOnepass is the one-pass profiling engine: a single replay of
// the shared pre-decoded reference stream drives every boundary position in
// lockstep through cache.MultiHierarchy, then the same closed-form timing
// model as CacheMachine.RunInterval converts per-boundary miss counts into
// (TPI, TPImiss). The float expressions replicate RunInterval term for term,
// in the same order, so results are bit-identical to the per-boundary oracle.
func profileCacheTPIOnepass(b workload.Benchmark, seed uint64, p cache.Params, maxBoundary int, warm, refs int64) (tpi, tpiMiss []float64, err error) {
	if b.Mem == nil {
		return nil, nil, fmt.Errorf("core: %s has no memory profile", b.Name)
	}
	mh, err := cache.NewMulti(p, maxBoundary)
	if err != nil {
		return nil, nil, err
	}
	store := trace.RefsFor(b, seed)
	dec := trace.DecodedFor(store, trace.Geometry{BlockBytes: p.BlockBytes, Sets: p.Sets()})
	cur := dec.Cursor()
	if warm > 0 {
		mh.Replay(cur, warm)
	}
	base := mh.Stats()
	mh.Replay(cur, refs)
	after := mh.Stats()
	mh.PublishObs()

	instrs := float64(refs) / b.Mem.RefsPerInstr
	tpi = make([]float64, maxBoundary+1)
	tpiMiss = make([]float64, maxBoundary+1)
	tpi[0], tpiMiss[0] = math.Inf(1), math.Inf(1)
	for k := 1; k <= maxBoundary; k++ {
		t := cache.TimingFor(p, k)
		l1m := after[k].L1Misses - base[k].L1Misses
		l2m := after[k].L2Misses - base[k].L2Misses
		stall := float64(l1m-l2m)*float64(t.L2HitCycles) + float64(l2m)*float64(t.L2HitCycles+t.MemCycles)
		cycles := instrs*baseCPI + stall
		dt := cycles * t.CycleNS
		tpi[k] = dt / instrs
		tpiMiss[k] = (stall * t.CycleNS) / instrs
	}
	return tpi, tpiMiss, nil
}
