package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// This file renders the registry in the Prometheus text exposition format
// (version 0.0.4) for /metrics, replacing the earlier ad-hoc flat text:
//
//   - counters export as `capsim_<name>_total` with `# TYPE ... counter`;
//   - gauges export as `capsim_<name>` gauges;
//   - log2 histograms export as native Prometheus histograms — cumulative
//     `_bucket{le="..."}` series over the non-empty power-of-two bounds plus
//     the mandatory `le="+Inf"`, `_sum`, and `_count` — with the registry's
//     p50/p99 quantile estimates as companion gauges (`_p50`, `_p99`), since
//     text-format histograms carry no quantiles of their own;
//   - one `capsim_build_info{...} 1` gauge carries toolchain provenance, the
//     standard info-metric idiom (label values escaped per the format: `\`,
//     `"` and newline).
//
// Metric names mangle the registry's dotted names (`sweep.busy_ns` →
// `capsim_sweep_busy_ns_total`); the expvar JSON at /debug/vars keeps the
// original names, so dashboards can migrate one panel at a time.

// promName mangles a registry metric name into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("capsim_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the text exposition format.
func promEscape(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// WritePrometheus renders snapshot s in the text exposition format. Metrics
// render in sorted name order so output is deterministic (tests diff it).
func WritePrometheus(w io.Writer, s Snapshot, build BuildInfo) {
	for _, n := range s.SortedCounterNames() {
		pn := promName(n) + "_total"
		fmt.Fprintf(w, "# HELP %s capsim counter %s\n", pn, n)
		fmt.Fprintf(w, "# TYPE %s counter\n", pn)
		fmt.Fprintf(w, "%s %d\n", pn, s.Counters[n])
	}
	for _, n := range sortedKeys(s.Gauges) {
		pn := promName(n)
		fmt.Fprintf(w, "# HELP %s capsim gauge %s\n", pn, n)
		fmt.Fprintf(w, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(w, "%s %d\n", pn, s.Gauges[n])
	}
	for _, n := range sortedKeys(s.Histograms) {
		h := s.Histograms[n]
		pn := promName(n)
		fmt.Fprintf(w, "# HELP %s capsim histogram %s\n", pn, n)
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		// Cumulative buckets over the histogram's non-empty upper bounds.
		bounds := make([]int64, 0, len(h.Bkts))
		for ub := range h.Bkts {
			bounds = append(bounds, ub)
		}
		sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
		var cum int64
		for _, ub := range bounds {
			cum += h.Bkts[ub]
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, ub, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
		// Quantile estimates as companion gauges (log2-bucket upper bounds).
		for _, q := range []struct {
			suffix string
			v      int64
		}{{"_p50", h.P50}, {"_p99", h.P99}} {
			qn := pn + q.suffix
			fmt.Fprintf(w, "# TYPE %s gauge\n", qn)
			fmt.Fprintf(w, "%s %d\n", qn, q.v)
		}
	}
	fmt.Fprintf(w, "# HELP capsim_build_info build provenance of the running capsim binary\n")
	fmt.Fprintf(w, "# TYPE capsim_build_info gauge\n")
	fmt.Fprintf(w, "capsim_build_info{go_version=\"%s\",goos=\"%s\",goarch=\"%s\",revision=\"%s\"} 1\n",
		promEscape(build.GoVersion), promEscape(build.GOOS), promEscape(build.GOARCH), promEscape(build.VCSRevision))
}

// metricsProm is the /metrics handler: the Default registry in Prometheus
// text exposition format.
func metricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, TakeSnapshot(), ReadBuildInfo())
}
