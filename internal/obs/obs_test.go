package obs

import (
	"sync"
	"testing"
)

// withEnabled runs fn with metric recording forced on, restoring the prior
// state afterwards.
func withEnabled(t *testing.T, fn func()) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	fn()
}

func TestCounterDisabledIsNoop(t *testing.T) {
	r := &Registry{}
	c := r.NewCounter("t.counter")
	SetEnabled(false)
	c.Inc1()
	c.Add(3, 41)
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter accumulated %d", got)
	}
}

func TestCounterLanesSumAndStripe(t *testing.T) {
	r := &Registry{}
	c := r.NewCounter("t.lanes")
	withEnabled(t, func() {
		var wg sync.WaitGroup
		const perLane = 1000
		for w := 0; w < 2*NumLanes; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perLane; i++ {
					c.Inc(w)
				}
			}(w)
		}
		wg.Wait()
		if got, want := c.Value(), int64(2*NumLanes*perLane); got != want {
			t.Fatalf("Value = %d, want %d", got, want)
		}
		// Lane reduction is mod NumLanes: worker w and w+NumLanes share one
		// lane, so each lane holds exactly 2*perLane.
		for i := range c.lanes {
			if got := c.lanes[i].v.Load(); got != 2*perLane {
				t.Fatalf("lane %d = %d, want %d", i, got, 2*perLane)
			}
		}
	})
}

func TestGauge(t *testing.T) {
	r := &Registry{}
	g := r.NewGauge("t.gauge")
	SetEnabled(false)
	g.Set(7)
	if g.Value() != 0 {
		t.Fatal("disabled gauge recorded")
	}
	withEnabled(t, func() {
		g.Set(7)
		g.Add(-2)
		if got := g.Value(); got != 5 {
			t.Fatalf("gauge = %d, want 5", got)
		}
	})
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := &Registry{}
	r.NewCounter("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	r.NewGauge("dup") // duplicate across kinds must still panic
}

func TestRegistryEmptyNamePanics(t *testing.T) {
	r := &Registry{}
	defer func() {
		if recover() == nil {
			t.Fatal("empty name did not panic")
		}
	}()
	r.NewCounter("")
}

func TestSnapshotDiffCounters(t *testing.T) {
	r := &Registry{}
	a := r.NewCounter("t.a")
	b := r.NewCounter("t.b")
	withEnabled(t, func() {
		a.Add1(5)
		before := r.TakeSnapshot()
		a.Add1(2)
		b.Add1(9)
		after := r.TakeSnapshot()
		d := after.DiffCounters(before)
		if d["t.a"] != 2 || d["t.b"] != 9 {
			t.Fatalf("diff = %v", d)
		}
		if len(d) != 2 {
			t.Fatalf("diff kept zero deltas: %v", d)
		}
		// Snapshots name every registered metric, even zero ones.
		if _, ok := before.Counters["t.b"]; !ok {
			t.Fatal("snapshot omitted zero counter")
		}
	})
}

func TestRegistryReset(t *testing.T) {
	r := &Registry{}
	c := r.NewCounter("t.reset")
	g := r.NewGauge("t.reset.g")
	h := r.NewHistogram("t.reset.h")
	withEnabled(t, func() {
		c.Add1(3)
		g.Set(4)
		h.Observe(100)
		r.Reset()
		if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
			t.Fatalf("reset left values: c=%d g=%d h=%d/%d", c.Value(), g.Value(), h.Count(), h.Sum())
		}
	})
}

func TestAssertSwitch(t *testing.T) {
	prev := AssertEnabled()
	defer SetAssert(prev)
	SetAssert(true)
	if !AssertEnabled() {
		t.Fatal("SetAssert(true) not visible")
	}
	SetAssert(false)
	if AssertEnabled() {
		t.Fatal("SetAssert(false) not visible")
	}
}

func TestFailPanicsAndCounts(t *testing.T) {
	before := AssertFailures()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Fail did not panic")
			}
		}()
		Fail(errTest)
	}()
	if got := AssertFailures(); got != before+1 {
		t.Fatalf("assert failure counter %d, want %d", got, before+1)
	}
}

var errTest = errFixed("boom")

type errFixed string

func (e errFixed) Error() string { return string(e) }
