package obs

import (
	"bufio"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// promMetric is one parsed sample line.
type promMetric struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromText is a minimal Prometheus text-format (0.0.4) parser: it
// validates the line grammar the format requires — `# TYPE`/`# HELP`
// comments, `name{label="value",...} value` samples with escaped label
// values — and returns the samples plus declared types. Any line it cannot
// parse fails the test.
func parsePromText(t *testing.T, text string) (metrics []promMetric, types map[string]string) {
	t.Helper()
	types = map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	validName := func(s string) bool {
		if s == "" {
			return false
		}
		for i := 0; i < len(s); i++ {
			c := s[i]
			ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(i > 0 && c >= '0' && c <= '9')
			if !ok {
				return false
			}
		}
		return true
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				t.Fatalf("malformed comment line: %q", line)
			}
			if !validName(fields[2]) {
				t.Fatalf("invalid metric name in comment: %q", line)
			}
			if fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("invalid TYPE %q in %q", fields[3], line)
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		m := promMetric{labels: map[string]string{}}
		rest := line
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			m.name = rest[:i]
			end := strings.LastIndexByte(rest, '}')
			if end < i {
				t.Fatalf("unterminated label set: %q", line)
			}
			labelPart := rest[i+1 : end]
			rest = strings.TrimSpace(rest[end+1:])
			for labelPart != "" {
				eq := strings.IndexByte(labelPart, '=')
				if eq < 0 || eq+1 >= len(labelPart) || labelPart[eq+1] != '"' {
					t.Fatalf("malformed label in %q", line)
				}
				key := labelPart[:eq]
				if !validName(key) {
					t.Fatalf("invalid label name %q in %q", key, line)
				}
				// Scan the quoted value honouring escapes.
				val := strings.Builder{}
				j := eq + 2
				closed := false
				for j < len(labelPart) {
					c := labelPart[j]
					if c == '\\' {
						if j+1 >= len(labelPart) {
							t.Fatalf("dangling escape in %q", line)
						}
						switch labelPart[j+1] {
						case '\\':
							val.WriteByte('\\')
						case '"':
							val.WriteByte('"')
						case 'n':
							val.WriteByte('\n')
						default:
							t.Fatalf("invalid escape \\%c in %q", labelPart[j+1], line)
						}
						j += 2
						continue
					}
					if c == '"' {
						closed = true
						j++
						break
					}
					val.WriteByte(c)
					j++
				}
				if !closed {
					t.Fatalf("unterminated label value in %q", line)
				}
				m.labels[key] = val.String()
				labelPart = strings.TrimPrefix(strings.TrimSpace(labelPart[j:]), ",")
				labelPart = strings.TrimSpace(labelPart)
			}
		} else {
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				t.Fatalf("sample without value: %q", line)
			}
			m.name = rest[:sp]
			rest = strings.TrimSpace(rest[sp:])
		}
		if !validName(m.name) {
			t.Fatalf("invalid metric name %q in %q", m.name, line)
		}
		v, err := parsePromValue(rest)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		m.value = v
		metrics = append(metrics, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return metrics, types
}

func parsePromValue(s string) (float64, error) {
	if s == "+Inf" || s == "-Inf" || s == "NaN" {
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

func find(metrics []promMetric, name string, labels map[string]string) (promMetric, bool) {
	for _, m := range metrics {
		if m.name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if m.labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return m, true
		}
	}
	return promMetric{}, false
}

// /metrics output parses under the minimal text-format parser, declares
// types, and exposes registered counters/gauges with mangled names.
func TestPrometheusExpositionParses(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	defer Default.Reset()
	// Render the Default registry through the live handler to cover the
	// real serving path end to end.
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q lacks exposition version", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	metrics, types := parsePromText(t, text)
	if len(metrics) == 0 {
		t.Fatal("no samples")
	}
	// The obs package's own assert counter is always registered.
	if _, ok := find(metrics, "capsim_obs_assert_failures_total", nil); !ok {
		t.Fatalf("capsim_obs_assert_failures_total missing:\n%s", text)
	}
	if types["capsim_obs_assert_failures_total"] != "counter" {
		t.Fatal("assert-failures TYPE not counter")
	}
	if m, ok := find(metrics, "capsim_build_info", nil); !ok || m.value != 1 || m.labels["go_version"] == "" {
		t.Fatalf("capsim_build_info malformed: %+v", m)
	}
}

// Histogram buckets are cumulative, end at +Inf == count, and quantile
// companion gauges appear.
func TestPrometheusHistogramCumulative(t *testing.T) {
	r := &Registry{}
	h := r.NewHistogram("test.lat_ns")
	SetEnabled(true)
	defer SetEnabled(false)
	for _, v := range []int64{1, 2, 3, 100, 1000, 1000000} {
		h.Observe(v)
	}
	var b strings.Builder
	WritePrometheus(&b, r.TakeSnapshot(), BuildInfo{GoVersion: "gotest"})
	metrics, types := parsePromText(t, b.String())

	if types["capsim_test_lat_ns"] != "histogram" {
		t.Fatalf("TYPE missing:\n%s", b.String())
	}
	var lastCum float64 = -1
	var bucketCount int
	for _, m := range metrics {
		if m.name != "capsim_test_lat_ns_bucket" {
			continue
		}
		bucketCount++
		if m.value < lastCum {
			t.Fatalf("bucket not cumulative: %v after %v", m.value, lastCum)
		}
		lastCum = m.value
	}
	if bucketCount < 2 {
		t.Fatalf("expected several buckets, got %d", bucketCount)
	}
	inf, ok := find(metrics, "capsim_test_lat_ns_bucket", map[string]string{"le": "+Inf"})
	if !ok || inf.value != 6 {
		t.Fatalf("+Inf bucket wrong: %+v", inf)
	}
	cnt, ok := find(metrics, "capsim_test_lat_ns_count", nil)
	if !ok || cnt.value != 6 {
		t.Fatalf("_count wrong: %+v", cnt)
	}
	sum, ok := find(metrics, "capsim_test_lat_ns_sum", nil)
	if !ok || sum.value != 1001106 {
		t.Fatalf("_sum wrong: %+v", sum)
	}
	if _, ok := find(metrics, "capsim_test_lat_ns_p50", nil); !ok {
		t.Fatal("p50 companion gauge missing")
	}
	if _, ok := find(metrics, "capsim_test_lat_ns_p99", nil); !ok {
		t.Fatal("p99 companion gauge missing")
	}
}

// Label values with quotes, backslashes and newlines round-trip through the
// escaper and the parser.
func TestPrometheusLabelEscaping(t *testing.T) {
	raw := "weird\"value\\with\nnewline"
	var b strings.Builder
	WritePrometheus(&b, Snapshot{}, BuildInfo{GoVersion: raw, GOOS: "linux", GOARCH: "amd64"})
	metrics, _ := parsePromText(t, b.String())
	m, ok := find(metrics, "capsim_build_info", nil)
	if !ok {
		t.Fatalf("build_info missing:\n%s", b.String())
	}
	if m.labels["go_version"] != raw {
		t.Fatalf("escaping round-trip failed: %q != %q", m.labels["go_version"], raw)
	}
}

// promName mangles dotted registry names deterministically.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sweep.busy_ns":  "capsim_sweep_busy_ns",
		"server.req-err": "capsim_server_req_err",
		"a.b.c":          "capsim_a_b_c",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
