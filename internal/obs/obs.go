// Package obs is capsim's process-wide telemetry subsystem: a registry of
// sharded, cache-line-padded atomic counters, gauges and log2 histograms
// cheap enough to sit next to the simulator hot paths, a span tracer that
// emits Chrome trace-event JSONL (span.go), a run-manifest builder
// (manifest.go), and a live expvar/metrics HTTP endpoint (serve.go).
//
// Design rules, in priority order:
//
//  1. Observability must never perturb simulation. No obs state ever feeds
//     back into a simulator decision; renders are byte-identical whether
//     telemetry is on or off (the determinism tests and the bench-obs-smoke
//     gate in `make ci` enforce this). The simulators keep their existing
//     local Stats structs in the hot loops — obs only receives *deltas* at
//     coarse boundaries (end of a profile pass, an interval run, a sweep
//     job), never per-reference or per-cycle.
//  2. Disabled-mode cost must be noise. The whole package sits behind one
//     process-wide switch (SetEnabled — same pointer-swap/atomic pattern as
//     trace.SetEnabled): a disabled Counter.Add is one atomic bool load and
//     a predicted branch, and the publication call sites run at most once
//     per profile pass or interval, so `capsim` without any -obs flags pays
//     nothing measurable (BENCH_obs.json records the A/B).
//  3. Hot concurrent writers must not false-share. Counters are striped
//     across cache-line-padded lanes; writers with a natural identity (the
//     sweep pool passes its worker index) land on distinct lines, everyone
//     else uses lane 0.
//
// cmd/capsim exposes the subsystem as -metrics-out (run manifest),
// -trace-out (Chrome trace), -serve (live endpoint) and -obs (counters only,
// e.g. to feed -bench-json counter deltas).
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled is the process-wide counter/gauge/histogram switch. Stored
// directly (not inverted like trace.disabled) because the default here is
// OFF: plain runs pay nothing.
var enabled atomic.Bool

// SetEnabled turns metric recording on or off process-wide. The tracer
// (span.go) has its own independent switch — installing a trace sink enables
// spans without requiring counters, and vice versa.
func SetEnabled(v bool) { enabled.Store(v) }

// Enabled reports whether metric recording is active.
func Enabled() bool { return enabled.Load() }

// NumLanes is the stripe count of a Counter. Power of two so lane selection
// is a mask; 16 lanes × 64 B = 1 KB per counter, enough to give every sweep
// worker on a desktop-class part its own line.
const (
	NumLanes = 16
	laneMask = NumLanes - 1
)

// lane is one cache-line-padded counter cell. 64-byte alignment pads the
// 8-byte atomic to a full line so adjacent lanes never share one.
type lane struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter. The zero value is
// NOT usable — counters are created through NewCounter (or
// Registry.NewCounter) so they are discoverable by snapshots and the live
// endpoint.
type Counter struct {
	name  string
	lanes [NumLanes]lane
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add adds d on the given lane when telemetry is enabled. Callers with a
// natural worker identity (sweep workers) pass it as the lane so concurrent
// adds stay on distinct cache lines; lane values are reduced mod NumLanes.
func (c *Counter) Add(ln int, d int64) {
	if !enabled.Load() {
		return
	}
	c.lanes[ln&laneMask].v.Add(d)
}

// Inc is Add(lane, 1).
func (c *Counter) Inc(ln int) { c.Add(ln, 1) }

// Add1 is Add on lane 0, for call sites without a worker identity.
func (c *Counter) Add1(d int64) { c.Add(0, d) }

// Inc1 is Inc on lane 0.
func (c *Counter) Inc1() { c.Add(0, 1) }

// Value returns the sum over all lanes. Reads are not gated on Enabled so
// snapshots taken just after disabling still see the final totals.
func (c *Counter) Value() int64 {
	var s int64
	for i := range c.lanes {
		s += c.lanes[i].v.Load()
	}
	return s
}

// reset zeroes every lane (Registry.Reset).
func (c *Counter) reset() {
	for i := range c.lanes {
		c.lanes[i].v.Store(0)
	}
}

// Gauge is a last-value-wins instantaneous metric (queue depth, store
// counts). A single atomic cell: gauges are written at coarse boundaries, so
// striping would only blur the "current" value they exist to report.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores v when telemetry is enabled.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d when telemetry is enabled.
func (g *Gauge) Add(d int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// --- registry -------------------------------------------------------------

// Registry holds named metrics. The package-level Default registry is what
// the instrumented packages register into at init; tests construct private
// registries so their names cannot collide with the real instrumentation.
type Registry struct {
	mu     sync.Mutex
	names  map[string]bool
	counts []*Counter
	gauges []*Gauge
	hists  []*Histogram
}

// Default is the process-wide registry behind NewCounter/NewGauge/
// NewHistogram, the run manifest and the live endpoint.
var Default = &Registry{}

func (r *Registry) claim(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	if r.names == nil {
		r.names = make(map[string]bool)
	}
	if r.names[name] {
		panic("obs: duplicate metric name " + name)
	}
	r.names[name] = true
}

// NewCounter registers a new counter. Panics on a duplicate or empty name —
// metric names are package-level constants, so a collision is a programming
// error, not a runtime condition.
func (r *Registry) NewCounter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	c := &Counter{name: name}
	r.counts = append(r.counts, c)
	return c
}

// NewGauge registers a new gauge.
func (r *Registry) NewGauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	g := &Gauge{name: name}
	r.gauges = append(r.gauges, g)
	return g
}

// NewHistogram registers a new histogram.
func (r *Registry) NewHistogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	h := &Histogram{name: name}
	r.hists = append(r.hists, h)
	return h
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name string) *Counter { return Default.NewCounter(name) }

// NewGauge registers a gauge in the Default registry.
func NewGauge(name string) *Gauge { return Default.NewGauge(name) }

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name string) *Histogram { return Default.NewHistogram(name) }

// Reset zeroes every metric in the registry (not the registrations). Used
// between A/B passes and by tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counts {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Snapshot is a point-in-time copy of a registry's metric values.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// TakeSnapshot captures the registry's current values. Zero-valued counters
// are included — a snapshot names every registered metric, so diffs and the
// live endpoint have a stable shape.
func (r *Registry) TakeSnapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counts)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for _, c := range r.counts {
		s.Counters[c.name] = c.Value()
	}
	for _, g := range r.gauges {
		s.Gauges[g.name] = g.Value()
	}
	for _, h := range r.hists {
		s.Histograms[h.name] = h.Snapshot()
	}
	return s
}

// TakeSnapshot captures the Default registry.
func TakeSnapshot() Snapshot { return Default.TakeSnapshot() }

// DiffCounters returns this snapshot's counters minus prev's, keeping only
// non-zero deltas — the per-experiment counter attribution in the manifest.
func (s Snapshot) DiffCounters(prev Snapshot) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range s.Counters {
		if d := v - prev.Counters[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

// SortedCounterNames returns the snapshot's counter names in sorted order
// (stable rendering for the /metrics endpoint and tests).
func (s Snapshot) SortedCounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders a compact one-metric-per-line view (diagnostics).
func (s Snapshot) String() string {
	var b []byte
	for _, n := range s.SortedCounterNames() {
		b = fmt.Appendf(b, "%s %d\n", n, s.Counters[n])
	}
	return string(b)
}
