package obs

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// ManifestSchema versions the -metrics-out document. Bump on breaking shape
// changes.
const ManifestSchema = "capsim/run-manifest/v1"

// BuildInfo is the toolchain and VCS provenance of the running binary,
// captured from runtime/debug.ReadBuildInfo. Fields are empty when the
// binary was built outside a VCS checkout (e.g. `go test` archives).
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	Main        string `json:"module,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// ReadBuildInfo captures the current binary's build provenance.
func ReadBuildInfo() BuildInfo {
	b := BuildInfo{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		b.Main = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				b.VCSRevision = s.Value
			case "vcs.time":
				b.VCSTime = s.Value
			case "vcs.modified":
				b.VCSModified = s.Value == "true"
			}
		}
	}
	return b
}

// ExperimentRecord is one experiment's measured cost inside a manifest: wall
// time, process-wide allocation deltas, and — when metric recording was on —
// the non-zero counter deltas attributable to the experiment.
type ExperimentRecord struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	WallNS int64  `json:"wall_ns"`
	// Allocs and AllocBytes are process-wide deltas over the experiment
	// (runtime.ReadMemStats), attributing every allocation made by the
	// experiment's goroutines, including the sweep workers.
	Allocs     uint64           `json:"allocs"`
	AllocBytes uint64           `json:"alloc_bytes"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

// Manifest is the -metrics-out run document. It is a superset of the
// pre-obs -bench-json schema (generated/command/parallel/…/experiments/
// total_wall_ns keep their names and meaning), so existing consumers of
// -bench-json parse either file; the additions are the schema tag, build
// provenance, the full flag map, and the final metric snapshot.
type Manifest struct {
	Schema      string            `json:"schema"`
	Generated   string            `json:"generated"`
	Command     string            `json:"command"`
	Build       BuildInfo         `json:"build"`
	Flags       map[string]string `json:"flags,omitempty"`
	Parallel    int               `json:"parallel"`
	Onepass     bool              `json:"onepass"`
	QueueEngine string            `json:"queue_engine"`
	ObsEnabled  bool              `json:"obs_enabled"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	NumCPU      int               `json:"num_cpu"`
	Seed        uint64            `json:"seed"`
	CacheRefs   int64             `json:"cache_refs"`
	QueueInstrs int64             `json:"queue_instrs"`

	Experiments []ExperimentRecord `json:"experiments"`
	TotalWallNS int64              `json:"total_wall_ns"`

	// Final is the cumulative end-of-run metric snapshot (counters, gauges,
	// histogram summaries) from the Default registry.
	Final Snapshot `json:"final,omitempty"`
}

// NewManifest returns a manifest stamped with the current time, command line
// and build provenance.
func NewManifest() Manifest {
	return Manifest{
		Schema:     ManifestSchema,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Command:    commandLine(),
		Build:      ReadBuildInfo(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// commandLine reconstructs the invocation for the manifest header.
func commandLine() string {
	out := ""
	for i, a := range os.Args {
		if i > 0 {
			out += " "
		}
		out += a
	}
	return out
}

// WriteJSON writes the manifest as indented JSON with a trailing newline.
func (m Manifest) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteFile writes the manifest to path (0644).
func (m Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
