package obs

import (
	"fmt"
	"sync/atomic"
)

// This file is the -obs-assert switch: opt-in runtime self-checks that the
// instrumented simulators call at coarse boundaries (end of a Run, a Resize,
// a profile pass). The checks themselves live next to the state they verify
// (ooo.Core.CheckInvariants, cache CheckExclusive); this package only owns
// the switch and the failure funnel, so turning assertions on never adds a
// dependency edge from the simulators to anything but obs.

// assertOn gates the self-checks; default off (zero value).
var assertOn atomic.Bool

// SetAssert enables or disables runtime invariant self-checks process-wide
// (cmd/capsim -obs-assert).
func SetAssert(v bool) { assertOn.Store(v) }

// AssertEnabled reports whether self-checks are active.
func AssertEnabled() bool { return assertOn.Load() }

// assertFailures counts tripped assertions (visible in the manifest and the
// live endpoint, and usable by tests to observe a failure without a panic).
var assertFailures = NewCounter("obs.assert_failures")

// AssertFailures returns the number of assertion failures recorded so far.
func AssertFailures() int64 { return assertFailures.Value() }

// Fail records an assertion failure and panics with a descriptive message.
// Callers invoke it only under AssertEnabled, with the already-detected
// error — assertions are for catching impossible states during bring-up and
// A/B runs, so failing loudly is the point.
func Fail(err error) {
	// Count even when metric recording is off: an assertion tripping is
	// precisely the event the counter exists for.
	assertFailures.lanes[0].v.Add(1)
	panic(fmt.Sprintf("obs: assertion failed: %v", err))
}
