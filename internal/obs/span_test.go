package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// closeBuf is a strings.Builder that records Close calls.
type closeBuf struct {
	strings.Builder
	closed bool
}

func (b *closeBuf) Close() error { b.closed = true; return nil }

// parseTrace asserts the written trace is a valid Chrome trace-event JSON
// array and returns the events.
func parseTrace(t *testing.T, raw string) []map[string]any {
	t.Helper()
	var events []map[string]any
	if err := json.Unmarshal([]byte(raw), &events); err != nil {
		t.Fatalf("trace is not a valid JSON array: %v\n%s", err, raw)
	}
	return events
}

func TestSpanNoSinkIsNoop(t *testing.T) {
	if Tracing() {
		t.Fatal("unexpected installed tracer")
	}
	sp := StartSpan("x", 0)
	sp.End() // must not panic
	as := StartAsync("cat", "y")
	as.End()
	if WorkerTIDs(4, "w") != 0 {
		t.Fatal("WorkerTIDs without sink must return 0")
	}
	if err := StopTrace(); err != nil {
		t.Fatalf("StopTrace without sink: %v", err)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf closeBuf
	if err := StartTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !Tracing() {
		t.Fatal("Tracing() false after StartTrace")
	}
	if err := StartTrace(&closeBuf{}); err == nil {
		StopTrace()
		t.Fatal("second StartTrace must fail")
	}

	base := WorkerTIDs(2, "worker")
	sp := StartSpan("job", base)
	time.Sleep(time.Millisecond)
	sp.End(Arg{"i", 3}, Arg{"app", "gcc"})

	as := StartAsync("memo", "wait")
	as.End(Arg{"key", "k"})

	if err := StopTrace(); err != nil {
		t.Fatal(err)
	}
	if !buf.closed {
		t.Fatal("StopTrace must close a closable sink")
	}
	if Tracing() {
		t.Fatal("Tracing() true after StopTrace")
	}

	events := parseTrace(t, buf.String())
	var gotJob, gotBegin, gotEnd, gotMeta bool
	for _, e := range events {
		switch {
		case e["name"] == "job" && e["ph"] == "X":
			gotJob = true
			if e["dur"].(float64) < 900 { // >= ~1ms in µs
				t.Errorf("span dur %v too small", e["dur"])
			}
			args := e["args"].(map[string]any)
			if args["i"].(float64) != 3 || args["app"] != "gcc" {
				t.Errorf("span args = %v", args)
			}
			if int64(e["tid"].(float64)) != base {
				t.Errorf("span tid = %v, want %d", e["tid"], base)
			}
		case e["name"] == "wait" && e["ph"] == "b":
			gotBegin = true
			if e["cat"] != "memo" {
				t.Errorf("async cat = %v", e["cat"])
			}
		case e["name"] == "wait" && e["ph"] == "e":
			gotEnd = true
		case e["name"] == "thread_name" && e["ph"] == "M":
			gotMeta = true
		}
	}
	if !gotJob || !gotBegin || !gotEnd || !gotMeta {
		t.Fatalf("missing events: job=%v b=%v e=%v meta=%v in %v", gotJob, gotBegin, gotEnd, gotMeta, events)
	}
}

func TestServeHandler(t *testing.T) {
	r := Default // handler reads the Default registry
	_ = r
	withEnabled(t, func() {
		srv := httptest.NewServer(Handler())
		defer srv.Close()

		get := func(path string) (int, string) {
			resp, err := srv.Client().Get(srv.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var sb strings.Builder
			buf := make([]byte, 64<<10)
			for {
				n, err := resp.Body.Read(buf)
				sb.Write(buf[:n])
				if err != nil {
					break
				}
			}
			return resp.StatusCode, sb.String()
		}

		if code, body := get("/"); code != 200 || !strings.Contains(body, "capsim") {
			t.Fatalf("index: %d %q", code, body)
		}
		if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "obs.assert_failures") {
			t.Fatalf("/metrics: %d %q", code, body)
		}
		code, body := get("/debug/vars")
		if code != 200 {
			t.Fatalf("/debug/vars: %d", code)
		}
		var doc map[string]json.RawMessage
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("expvar JSON invalid: %v", err)
		}
		if _, ok := doc["capsim"]; !ok {
			t.Fatal("expvar missing capsim snapshot")
		}
		if code, _ := get("/nope"); code != 404 {
			t.Fatalf("unknown path: %d", code)
		}
	})
}

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest()
	if m.Schema != ManifestSchema || m.Build.GoVersion == "" || m.Command == "" {
		t.Fatalf("manifest header incomplete: %+v", m)
	}
	m.Experiments = append(m.Experiments, ExperimentRecord{ID: "fig7", WallNS: 42})
	m.Final = TakeSnapshot()
	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("manifest JSON invalid: %v", err)
	}
	if back.Schema != ManifestSchema || len(back.Experiments) != 1 || back.Experiments[0].ID != "fig7" {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if !strings.HasSuffix(sb.String(), "\n") {
		t.Fatal("manifest must end with newline")
	}
}
