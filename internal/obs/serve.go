package obs

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
)

// This file is the live endpoint behind `capsim -serve :addr`: a tiny HTTP
// server exposing the standard expvar surface plus the obs registry, for
// watching a long `-experiment all` run from another terminal:
//
//	capsim -experiment all -serve :8417 &
//	curl -s localhost:8417/metrics          # Prometheus text exposition
//	curl -s localhost:8417/debug/vars | jq .capsim
//
// The server only reads atomics; it cannot perturb the simulation, and
// nothing in the run waits on it.

// publishOnce guards the expvar registration (expvar panics on duplicate
// names, and tests may build several handlers).
var publishOnce sync.Once

// publishExpvar exposes the Default registry as the expvar "capsim" map.
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("capsim", expvar.Func(func() any {
			return TakeSnapshot()
		}))
	})
}

// Handler returns the live-endpoint HTTP handler:
//
//	/            one-line index
//	/metrics     Prometheus text exposition (prom.go)
//	/debug/vars  standard expvar JSON, including the "capsim" snapshot
func Handler() http.Handler {
	publishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", metricsProm)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "capsim live telemetry — /metrics (Prometheus text), /debug/vars (expvar JSON)\n")
	})
	return mux
}

// sortedKeys yields deterministic render order (maps iterate randomly).
func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Server is a handle on a live telemetry endpoint started by Serve. It owns
// the listener and the http.Server, so the endpoint can be drained instead
// of dying mid-write with the process. (The old Serve returned only the
// bound address and leaked both — a long-lived capsim process had no way to
// stop serving.)
type Server struct {
	addr     string
	srv      *http.Server
	done     chan struct{} // closed when the accept loop exits
	serveErr error         // set before done closes
}

// Addr returns the endpoint's bound address (useful with ":0").
func (s *Server) Addr() string { return s.addr }

// Shutdown gracefully drains the endpoint: the listener closes immediately,
// in-flight responses finish (until ctx expires), and the accept loop's
// terminal error — anything other than the expected http.ErrServerClosed —
// is surfaced instead of being dropped in a goroutine. Safe to call more
// than once.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
		if err == nil && s.serveErr != nil && !errors.Is(s.serveErr, http.ErrServerClosed) {
			err = s.serveErr
		}
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// Serve starts the live endpoint on addr (e.g. ":8417" or "127.0.0.1:0")
// in a background goroutine and returns a handle exposing the bound address
// and a graceful Shutdown. Metric recording is force-enabled — a live
// endpoint over frozen zeros would only mislead.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	SetEnabled(true)
	s := &Server{
		addr: ln.Addr().String(),
		srv:  &http.Server{Handler: Handler()},
		done: make(chan struct{}),
	}
	go func() {
		s.serveErr = s.srv.Serve(ln)
		close(s.done)
	}()
	return s, nil
}
