package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the span tracer: instrumented code opens spans around units
// of work (an experiment, a study's profiling pass, one sweep job, a memo
// singleflight wait) and the tracer streams them out in Chrome trace-event
// format — one JSON event object per line inside a top-level array, loadable
// directly in chrome://tracing or https://ui.perfetto.dev. Worker occupancy,
// queue stalls and per-cell cost become visible as a timeline instead of a
// guess.
//
// The sink follows the pointer-swap nil-sink pattern: a package-wide
// atomic.Pointer[Tracer] that is nil unless cmd/capsim installed a sink via
// -trace-out. StartSpan with a nil sink returns the zero Span, whose End is
// a no-op — two predicted branches and no time.Now() call, so the
// instrumentation is free when tracing is off.
//
// Emission order is completion order and timestamps come from the wall
// clock, so the trace is NOT deterministic run-to-run — which is fine,
// because nothing reads it back into the simulation; the byte-identity
// gates only cover rendered experiment output.

// Tracer streams Chrome trace events to an io.Writer. Safe for concurrent
// use; each event is serialized under one mutex (spans are coarse — per job,
// not per reference — so the lock is uncontended in practice).
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	c      io.Closer
	start  time.Time
	events int64
	err    error
}

// tracer is the installed sink; nil = tracing disabled.
var tracer atomic.Pointer[Tracer]

// ids hands out unique ids for async spans and worker tid blocks.
var ids atomic.Int64

// Tracing reports whether a trace sink is installed.
func Tracing() bool { return tracer.Load() != nil }

// StartTrace installs w as the process trace sink and writes the array
// opener. If w is also an io.Closer it is closed by StopTrace. Returns an
// error if a sink is already installed.
func StartTrace(w io.Writer) error {
	t := &Tracer{w: w, start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	if !tracer.CompareAndSwap(nil, t) {
		return fmt.Errorf("obs: trace sink already installed")
	}
	t.mu.Lock()
	_, t.err = io.WriteString(w, "[\n")
	t.mu.Unlock()
	// Name the orchestrator thread.
	t.meta(0, "main")
	return nil
}

// StopTrace removes the sink, terminates the JSON array and closes the
// underlying writer if it is closable. Safe to call when no sink is
// installed (returns nil). Returns the first write error encountered over
// the trace's lifetime, so a truncated trace is reported rather than
// silently shipped.
func StopTrace() error {
	t := tracer.Swap(nil)
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// The last real event line ends with ",\n"; a dummy metadata event
	// keeps the array strictly valid JSON without comma tracking.
	io.WriteString(t.w, `{"name":"trace_end","ph":"i","ts":0,"pid":1,"tid":0,"s":"g"}`+"\n]\n")
	if t.c != nil {
		if err := t.c.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// event is one Chrome trace event. TsUS/DurUS are microseconds (fractional
// values carry ns precision, which the viewers accept).
type event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TsUS  float64        `json:"ts"`
	DurUS float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int64          `json:"tid"`
	ID    int64          `json:"id,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// emit serializes one event line under the tracer lock.
func (t *Tracer) emit(e event) {
	e.PID = 1
	buf, err := json.Marshal(e)
	if err != nil {
		return // unmarshalable args: drop the event, never the run
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(append(buf, ',', '\n')); err != nil {
		t.err = err
		return
	}
	t.events++
}

// us converts a time to microseconds since trace start.
func (t *Tracer) us(at time.Time) float64 {
	return float64(at.Sub(t.start).Nanoseconds()) / 1e3
}

// meta emits a thread_name metadata record so the viewer labels tid's track.
func (t *Tracer) meta(tid int64, name string) {
	t.emit(event{Name: "thread_name", Phase: "M", TID: tid,
		Args: map[string]any{"name": name}})
}

// Span is one open duration on a thread track. The zero Span (tracing
// disabled) is valid and End on it is a no-op.
type Span struct {
	t     *Tracer
	name  string
	tid   int64
	start time.Time
}

// StartSpan opens a span on thread track tid. tid 0 is the orchestrator;
// sweep workers use tids from WorkerTIDs so concurrent jobs land on separate
// tracks.
func StartSpan(name string, tid int64) Span {
	t := tracer.Load()
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, tid: tid, start: time.Now()}
}

// End closes the span, emitting a complete ("X") event. Optional args
// attach key/value detail (grid index, app name, byte counts).
func (s Span) End(args ...Arg) {
	if s.t == nil {
		return
	}
	now := time.Now()
	e := event{
		Name:  s.name,
		Phase: "X",
		TsUS:  s.t.us(s.start),
		DurUS: float64(now.Sub(s.start).Nanoseconds()) / 1e3,
		TID:   s.tid,
	}
	if len(args) > 0 {
		e.Args = make(map[string]any, len(args))
		for _, a := range args {
			e.Args[a.K] = a.V
		}
	}
	s.t.emit(e)
}

// Arg is one span annotation.
type Arg struct {
	K string
	V any
}

// AsyncSpan is a span without thread affinity: the viewers render async
// ("b"/"e") pairs on their own per-name tracks, which is exactly right for
// work that happens *on* some worker goroutine but is interesting as its own
// timeline — per-(app x config) profile cells, singleflight waits.
type AsyncSpan struct {
	t     *Tracer
	name  string
	cat   string
	id    int64
	start time.Time
}

// StartAsync opens an async span under the given category.
func StartAsync(cat, name string) AsyncSpan {
	t := tracer.Load()
	if t == nil {
		return AsyncSpan{}
	}
	return AsyncSpan{t: t, name: name, cat: cat, id: ids.Add(1), start: time.Now()}
}

// End closes the async span (a no-op for the zero value).
func (s AsyncSpan) End(args ...Arg) {
	if s.t == nil {
		return
	}
	now := time.Now()
	var m map[string]any
	if len(args) > 0 {
		m = make(map[string]any, len(args))
		for _, a := range args {
			m[a.K] = a.V
		}
	}
	s.t.emit(event{Name: s.name, Cat: s.cat, Phase: "b", TsUS: s.t.us(s.start), TID: 0, ID: s.id, Args: m})
	s.t.emit(event{Name: s.name, Cat: s.cat, Phase: "e", TsUS: s.t.us(now), TID: 0, ID: s.id})
}

// WorkerTIDs reserves a block of n thread ids for a worker pool and labels
// them in the trace. Each RunN invocation gets a fresh block, so nested
// sweeps never interleave their jobs on one track. Returns the base tid
// (worker w uses base+w); with tracing off it returns 0 without reserving.
func WorkerTIDs(n int, label string) int64 {
	t := tracer.Load()
	if t == nil {
		return 0
	}
	base := ids.Add(int64(n)) - int64(n) + 1
	for w := 0; w < n; w++ {
		t.meta(base+int64(w), fmt.Sprintf("%s %d.%d", label, base, w))
	}
	return base
}

// Events returns the number of events written so far (tests).
func (t *Tracer) Events() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}
