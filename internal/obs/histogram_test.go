package obs

import (
	"math"
	"testing"
)

// TestBucketBoundaries pins the log2 bucket edges: bucket 0 holds v <= 0,
// bucket b >= 1 holds [2^(b-1), 2^b - 1].
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// A value must never exceed its bucket's upper bound, and must exceed
	// the previous bucket's.
	for _, c := range cases {
		b := BucketOf(c.v)
		if c.v > BucketUpperBound(b) {
			t.Errorf("value %d above its bucket %d bound %d", c.v, b, BucketUpperBound(b))
		}
		if b > 0 && c.v <= BucketUpperBound(b-1) {
			t.Errorf("value %d within previous bucket %d bound %d", c.v, b-1, BucketUpperBound(b-1))
		}
	}
}

func TestBucketUpperBound(t *testing.T) {
	if BucketUpperBound(0) != 0 {
		t.Fatalf("bucket 0 bound = %d", BucketUpperBound(0))
	}
	if BucketUpperBound(1) != 1 || BucketUpperBound(2) != 3 || BucketUpperBound(10) != 1023 {
		t.Fatal("power-of-two bounds wrong")
	}
	if BucketUpperBound(63) != math.MaxInt64 || BucketUpperBound(99) != math.MaxInt64 {
		t.Fatal("top bucket must saturate at MaxInt64")
	}
	if BucketUpperBound(-5) != 0 {
		t.Fatal("negative bucket index must map to underflow bound")
	}
}

func TestHistogramDisabledIsNoop(t *testing.T) {
	r := &Registry{}
	h := r.NewHistogram("t.h.off")
	SetEnabled(false)
	h.Observe(100)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("disabled histogram recorded")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := &Registry{}
	h := r.NewHistogram("t.h.q")
	withEnabled(t, func() {
		// 90 observations of 10 (bucket 4, bound 15) and 10 of 1000
		// (bucket 10, bound 1023).
		for i := 0; i < 90; i++ {
			h.Observe(10)
		}
		for i := 0; i < 10; i++ {
			h.Observe(1000)
		}
		if got := h.Count(); got != 100 {
			t.Fatalf("count = %d", got)
		}
		if got := h.Sum(); got != 90*10+10*1000 {
			t.Fatalf("sum = %d", got)
		}
		if got := h.Quantile(0.5); got != 15 {
			t.Fatalf("p50 = %d, want bucket bound 15", got)
		}
		if got := h.Quantile(0.90); got != 15 {
			t.Fatalf("p90 = %d, want 15 (exactly 90/100 within first bucket)", got)
		}
		if got := h.Quantile(0.99); got != 1023 {
			t.Fatalf("p99 = %d, want bucket bound 1023", got)
		}
		if got := h.Quantile(1.0); got != 1023 {
			t.Fatalf("p100 = %d, want 1023", got)
		}
		// Out-of-range q is clamped.
		if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
			t.Fatal("quantile clamping broken")
		}
	})
}

func TestHistogramQuantileEmpty(t *testing.T) {
	r := &Registry{}
	h := r.NewHistogram("t.h.empty")
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := &Registry{}
	h := r.NewHistogram("t.h.snap")
	withEnabled(t, func() {
		h.Observe(0) // underflow bucket
		h.Observe(5)
		h.Observe(5)
		s := h.Snapshot()
		if s.Count != 3 || s.Sum != 10 {
			t.Fatalf("snapshot count/sum = %d/%d", s.Count, s.Sum)
		}
		if s.Bkts[0] != 1 {
			t.Fatalf("underflow bucket = %d", s.Bkts[0])
		}
		if s.Bkts[7] != 2 { // 5 lands in bucket 3, bound 7
			t.Fatalf("bucket bound 7 = %d (%v)", s.Bkts[7], s.Bkts)
		}
		if s.Max != 7 {
			t.Fatalf("max bucket bound = %d", s.Max)
		}
	})
}
