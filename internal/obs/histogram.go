package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the bucket count of a Histogram: one underflow bucket for
// values <= 0 plus one bucket per power of two up to int64 range.
const NumBuckets = 64

// Histogram is a lock-free log2 histogram for non-negative magnitudes
// (durations in ns, sizes in bytes). Bucket b >= 1 holds values v with
// 2^(b-1) <= v <= 2^b - 1; bucket 0 holds v <= 0. Observations are two
// atomic adds (bucket + sum); like the other metrics it is a no-op while
// telemetry is disabled.
type Histogram struct {
	name    string
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// BucketOf returns the bucket index recording value v: 0 for v <= 0,
// otherwise bits.Len64(v) (the position of v's highest set bit, 1-based).
func BucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpperBound returns the largest value landing in bucket b:
// 0 for the underflow bucket, 2^b - 1 otherwise (MaxInt64 for the top
// bucket, whose range is truncated by the int64 domain).
func BucketUpperBound(b int) int64 {
	switch {
	case b <= 0:
		return 0
	case b >= 63:
		return math.MaxInt64
	default:
		return int64(1)<<b - 1
	}
}

// Observe records one value when telemetry is enabled.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	h.buckets[BucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// upper bound of the first bucket at which the cumulative count reaches
// q*Count. Returns 0 for an empty histogram. The estimate is exact to within
// the bucket's power-of-two resolution, which is all a wall-clock telemetry
// percentile needs.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < NumBuckets; b++ {
		cum += h.buckets[b].Load()
		if cum >= target {
			return BucketUpperBound(b)
		}
	}
	return math.MaxInt64
}

// reset zeroes all cells (Registry.Reset).
func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// HistSnapshot is the JSON-able point-in-time state of a histogram. Buckets
// maps the bucket's upper bound to its count, omitting empty buckets.
type HistSnapshot struct {
	Count int64           `json:"count"`
	Sum   int64           `json:"sum"`
	P50   int64           `json:"p50"`
	P99   int64           `json:"p99"`
	Max   int64           `json:"max_bucket_bound"`
	Bkts  map[int64]int64 `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Bkts:  map[int64]int64{},
	}
	for b := 0; b < NumBuckets; b++ {
		if n := h.buckets[b].Load(); n > 0 {
			ub := BucketUpperBound(b)
			s.Bkts[ub] = n
			s.Max = ub
		}
	}
	s.P50 = h.Quantile(0.50)
	s.P99 = h.Quantile(0.99)
	return s
}
