package obs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

// TestServeShutdown locks the leaked-listener bugfix: Serve returns a handle
// whose Shutdown closes the listener (subsequent connections fail) and
// returns cleanly, instead of leaking the server until process exit.
func TestServeShutdown(t *testing.T) {
	defer SetEnabled(false) // Serve force-enables metrics
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("http://%s/metrics", s.Addr())
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET before shutdown: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get(url); err == nil {
		t.Error("endpoint still accepting connections after Shutdown")
	}
}

// TestServeShutdownIdempotentish: a second Shutdown must not hang or panic.
func TestServeShutdownTwice(t *testing.T) {
	defer SetEnabled(false)
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("first Shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}
