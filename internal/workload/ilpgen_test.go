package workload

import (
	"math"
	"testing"
)

func TestInstrStreamDeterminism(t *testing.T) {
	b := MustByName("vortex")
	s1 := NewInstrStream(b, 11)
	s2 := NewInstrStream(b, 11)
	for i := 0; i < 20000; i++ {
		if s1.Next() != s2.Next() {
			t.Fatalf("streams diverged at instruction %d", i)
		}
	}
}

func TestDistancesPositiveAndBounded(t *testing.T) {
	for _, name := range []string{"gcc", "appcg", "compress", "turb3d"} {
		s := NewInstrStream(MustByName(name), 3)
		for i := 0; i < 20000; i++ {
			in := s.Next()
			for _, d := range in.Src {
				if d < 0 {
					t.Fatalf("%s: negative distance %d", name, d)
				}
			}
			if in.Latency < 1 {
				t.Fatalf("%s: latency %d < 1", name, in.Latency)
			}
		}
	}
}

func TestSourceCountDistribution(t *testing.T) {
	p := ILPParams{
		SrcWeights: [3]float64{0.2, 0.5, 0.3},
		Dists:      []GeomComponent{{Mean: 3, Weight: 1}},
		Lats:       []LatComponent{{Cycles: 1, Weight: 1}},
	}
	b := Benchmark{Name: "srcdist", ILP: ILPProfile{Base: p}}
	s := NewInstrStream(b, 5)
	counts := [3]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		in := s.Next()
		nsrc := 0
		if in.Src[0] > 0 {
			nsrc++
		}
		if in.Src[1] > 0 {
			nsrc++
		}
		counts[nsrc]++
	}
	for i, want := range []float64{0.2, 0.5, 0.3} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.015 {
			t.Errorf("%d-source fraction %v, want %v", i, got, want)
		}
	}
}

func TestDistanceMean(t *testing.T) {
	p := ILPParams{
		SrcWeights: [3]float64{0, 1, 0},
		Dists:      []GeomComponent{{Mean: 10, Weight: 1}},
		Lats:       []LatComponent{{Cycles: 1, Weight: 1}},
	}
	b := Benchmark{Name: "distmean", ILP: ILPProfile{Base: p}}
	s := NewInstrStream(b, 6)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(s.Next().Src[0])
	}
	// Distance = 1 + Geometric(1/10): mean = 1 + 9 = 10.
	if mean := sum / n; math.Abs(mean-10) > 0.3 {
		t.Errorf("distance mean %v, want ~10", mean)
	}
}

func TestLatencyMixture(t *testing.T) {
	p := ILPParams{
		SrcWeights: [3]float64{1, 0, 0},
		Dists:      []GeomComponent{{Mean: 2, Weight: 1}},
		Lats:       []LatComponent{{Cycles: 1, Weight: 0.5}, {Cycles: 4, Weight: 0.5}},
	}
	b := Benchmark{Name: "latmix", ILP: ILPProfile{Base: p}}
	s := NewInstrStream(b, 7)
	ones, fours := 0, 0
	const n = 50000
	for i := 0; i < n; i++ {
		switch s.Next().Latency {
		case 1:
			ones++
		case 4:
			fours++
		default:
			t.Fatal("unexpected latency")
		}
	}
	if math.Abs(float64(ones)/n-0.5) > 0.02 {
		t.Errorf("latency-1 fraction %v, want 0.5", float64(ones)/n)
	}
	_ = fours
}

func TestLongBlockPhases(t *testing.T) {
	// turb3d-style: the stream must alternate between Base and Alt in
	// blocks of PeriodInstrs.
	b := MustByName("turb3d")
	s := NewInstrStream(b, 8)
	period := b.ILP.PeriodInstrs
	// Walk to just before the first boundary: still in base.
	for i := int64(0); i < period-10; i++ {
		s.Next()
	}
	if s.InAltPhase() {
		t.Error("in Alt phase before first period boundary")
	}
	for i := int64(0); i < 20; i++ {
		s.Next()
	}
	if !s.InAltPhase() {
		t.Error("not in Alt phase after first period boundary")
	}
	// And back again after another period.
	for i := int64(0); i < period; i++ {
		s.Next()
	}
	if s.InAltPhase() {
		t.Error("still in Alt phase after second boundary")
	}
}

func TestRegularPhasesAlternateQuickly(t *testing.T) {
	// Bursty profiles (PhaseRegular, short period) must flip many times.
	b := MustByName("gcc")
	if b.ILP.Kind != PhaseRegular {
		t.Skip("gcc no longer bursty")
	}
	s := NewInstrStream(b, 9)
	flips, prev := 0, s.InAltPhase()
	for i := 0; i < 5000; i++ {
		s.Next()
		if cur := s.InAltPhase(); cur != prev {
			flips++
			prev = cur
		}
	}
	wantMin := int(5000/b.ILP.PeriodInstrs) - 2
	if flips < wantMin {
		t.Errorf("only %d phase flips in 5000 instructions (period %d)", flips, b.ILP.PeriodInstrs)
	}
}

func TestIrregularRunsVary(t *testing.T) {
	base := MustByName("gcc").ILP.Base
	alt := MustByName("gcc").ILP.Alt
	b := Benchmark{Name: "irr", ILP: ILPProfile{
		Base: base, Alt: alt, Kind: PhaseIrregular, PeriodInstrs: 3000,
	}}
	s := NewInstrStream(b, 10)
	var runs []int64
	cur, runLen := s.InAltPhase(), int64(0)
	for i := 0; i < 200000; i++ {
		s.Next()
		runLen++
		if s.InAltPhase() != cur {
			runs = append(runs, runLen)
			runLen = 0
			cur = s.InAltPhase()
		}
	}
	if len(runs) < 10 {
		t.Fatalf("too few phase runs: %d", len(runs))
	}
	// Runs must vary (irregular), unlike PhaseRegular.
	allSame := true
	for _, r := range runs[1:] {
		if r != runs[0] {
			allSame = false
			break
		}
	}
	if allSame {
		t.Error("irregular phase runs are all identical")
	}
}

func TestCompositeHasBothRegimes(t *testing.T) {
	b := MustByName("vortex")
	s := NewInstrStream(b, 12)
	// Collect phase-run lengths across two super-blocks.
	var runs []int64
	cur, runLen := s.InAltPhase(), int64(0)
	total := 2 * b.ILP.SuperPeriodInstrs
	for i := int64(0); i < total; i++ {
		s.Next()
		runLen++
		if s.InAltPhase() != cur {
			runs = append(runs, runLen)
			runLen = 0
			cur = s.InAltPhase()
		}
	}
	if len(runs) < 20 {
		t.Fatalf("too few runs: %d", len(runs))
	}
	// Regular super-block: many runs exactly equal to PeriodInstrs.
	exact := 0
	for _, r := range runs {
		if r == b.ILP.PeriodInstrs {
			exact++
		}
	}
	if exact < 5 {
		t.Errorf("no regular-alternation regime detected (%d exact runs)", exact)
	}
	// Irregular super-block: some runs that differ.
	if exact == len(runs) {
		t.Error("no irregular regime detected")
	}
}

func TestFillInstr(t *testing.T) {
	s := NewInstrStream(MustByName("li"), 13)
	buf := s.Fill(nil, 64)
	if len(buf) != 64 {
		t.Fatalf("Fill returned %d", len(buf))
	}
	if s.Index() != 64 {
		t.Errorf("Index() = %d, want 64", s.Index())
	}
}
