package workload

import (
	"capsim/internal/rng"
)

// Instr is one dynamic instruction of the synthetic stream. Sources are
// expressed as dependence distances: Src[i] = d > 0 means the instruction
// consumes the result of the instruction d positions earlier in the dynamic
// stream; 0 means no (or an already-retired) source.
type Instr struct {
	Src     [2]int32
	Latency int8
}

// InstrSource is anything that yields an infinite stream of instructions.
// *InstrStream (the generator) and internal/trace's replay cursors both
// implement it.
type InstrSource interface {
	Next() Instr
}

// InstrStream generates the synthetic dynamic instruction stream of a
// benchmark, applying its phase schedule. The stream is infinite and
// deterministic for a given seed.
type InstrStream struct {
	prof ILPProfile
	src  *rng.Source

	idx int64 // dynamic instruction index

	cur        ILPParams
	inAlt      bool
	phaseLeft  int64
	superLeft  int64
	superInReg bool // composite: currently in the regular super-block

	// cached sampling tables for the current params
	srcW  []float64
	distW []float64
	latW  []float64
}

// NewInstrStream creates the stream generator for benchmark b.
func NewInstrStream(b Benchmark, seed uint64) *InstrStream {
	if err := b.ILP.Validate(); err != nil {
		panic(err)
	}
	s := &InstrStream{
		prof: b.ILP,
		src:  rng.New(rng.DeriveSeed(seed, b.Name+"/ilp")),
	}
	s.superInReg = true
	s.superLeft = b.ILP.SuperPeriodInstrs
	s.setParams(b.ILP.Base, false)
	s.phaseLeft = s.firstPhaseLen()
	return s
}

// Index returns the number of instructions generated so far.
func (s *InstrStream) Index() int64 { return s.idx }

// InAltPhase reports whether the generator is currently in the Alt phase
// (diagnostics and phase-visualization tooling).
func (s *InstrStream) InAltPhase() bool { return s.inAlt }

func (s *InstrStream) setParams(p ILPParams, alt bool) {
	s.cur = p
	s.inAlt = alt
	s.srcW = append(s.srcW[:0], p.SrcWeights[0], p.SrcWeights[1], p.SrcWeights[2])
	s.distW = s.distW[:0]
	for _, d := range p.Dists {
		s.distW = append(s.distW, d.Weight)
	}
	s.latW = s.latW[:0]
	for _, l := range p.Lats {
		s.latW = append(s.latW, l.Weight)
	}
}

// firstPhaseLen returns the length of the initial phase block.
func (s *InstrStream) firstPhaseLen() int64 {
	switch s.prof.Kind {
	case PhaseStable:
		return 1 << 62
	case PhaseIrregular:
		return s.irregularLen(float64(s.prof.PeriodInstrs))
	case PhaseComposite:
		return s.prof.PeriodInstrs
	default:
		return s.prof.PeriodInstrs
	}
}

// irregularLen draws a geometric phase run with the given mean length.
func (s *InstrStream) irregularLen(mean float64) int64 {
	if mean < 512 {
		mean = 512
	}
	n := int64(float64(s.src.Geometric(1/(mean/256))) * 256)
	if n < 512 {
		n = 512
	}
	return n
}

// advancePhase flips the active parameter set when a phase block ends.
func (s *InstrStream) advancePhase() {
	if s.prof.Kind == PhaseStable {
		s.phaseLeft = 1 << 62
		return
	}
	// Composite: check super-block boundary first.
	if s.prof.Kind == PhaseComposite && s.superLeft <= 0 {
		s.superInReg = !s.superInReg
		s.superLeft = s.prof.SuperPeriodInstrs
	}
	flipTo := !s.inAlt
	if flipTo {
		s.setParams(*s.prof.Alt, true)
	} else {
		s.setParams(s.prof.Base, false)
	}
	switch s.prof.Kind {
	case PhaseIrregular:
		s.phaseLeft = s.irregularLen(float64(s.prof.PeriodInstrs))
	case PhaseComposite:
		if s.superInReg {
			s.phaseLeft = s.prof.PeriodInstrs
		} else {
			// Irregular stretches flip much faster than the regular
			// alternation (Figure 13(b): "varies frequently and
			// almost randomly").
			s.phaseLeft = s.irregularLen(float64(s.prof.PeriodInstrs) / 6)
		}
	default:
		s.phaseLeft = s.prof.PeriodInstrs
	}
}

// Next returns the next instruction.
func (s *InstrStream) Next() Instr {
	if s.phaseLeft <= 0 {
		s.advancePhase()
	}
	s.phaseLeft--
	if s.prof.Kind == PhaseComposite {
		s.superLeft--
	}
	s.idx++

	var in Instr
	nsrc := s.src.Weighted(s.srcW)
	for i := 0; i < nsrc; i++ {
		c := s.cur.Dists[s.src.Weighted(s.distW)]
		// Distance = 1 + geometric with mean (c.Mean - 1).
		d := int32(1)
		if c.Mean > 1 {
			d += int32(s.src.Geometric(1 / c.Mean))
		}
		in.Src[i] = d
	}
	lc := s.cur.Lats[s.src.Weighted(s.latW)]
	in.Latency = int8(lc.Cycles)
	return in
}

// Fill writes n instructions into out (allocating if needed) and returns the
// slice.
func (s *InstrStream) Fill(out []Instr, n int) []Instr {
	if cap(out) < n {
		out = make([]Instr, n)
	}
	out = out[:n]
	for i := range out {
		out[i] = s.Next()
	}
	return out
}
