package workload

import "testing"

// BenchmarkAddressTraceGen tracks the raw cost of synthetic trace generation
// — the quantity the one-pass profiling path amortizes from once-per-boundary
// to once-per-application. The buffer is reused across iterations, so after
// the first fill the loop is allocation-free (Fill only allocates when
// cap(out) < n); see BenchmarkAddressTraceGenNilBuf for the anti-pattern.
func BenchmarkAddressTraceGen(b *testing.B) {
	tr := NewAddressTrace(MustByName("gcc"), 1998)
	const batch = 1 << 12
	var buf []Ref
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		buf = tr.Fill(buf, batch)
	}
	if len(buf) != batch {
		b.Fatal("short fill")
	}
}

// BenchmarkAddressTraceGenNilBuf is the historical caller behaviour — a nil
// destination every batch — which pays one slice allocation per Fill.
func BenchmarkAddressTraceGenNilBuf(b *testing.B) {
	tr := NewAddressTrace(MustByName("gcc"), 1998)
	const batch = 1 << 12
	b.ReportAllocs()
	b.ResetTimer()
	var buf []Ref
	for i := 0; i < b.N; i += batch {
		buf = tr.Fill(nil, batch)
	}
	if len(buf) != batch {
		b.Fatal("short fill")
	}
}

// BenchmarkInstrStreamGen is the instruction-side counterpart: the cost of
// generating the synthetic dynamic instruction stream, amortized by the
// one-pass queue-profiling path from once-per-queue-size to
// once-per-application.
func BenchmarkInstrStreamGen(b *testing.B) {
	s := NewInstrStream(MustByName("gcc"), 1998)
	const batch = 1 << 12
	var buf []Instr
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		buf = s.Fill(buf, batch)
	}
	if len(buf) != batch {
		b.Fatal("short fill")
	}
}
