package workload

import "testing"

// TestZooRegistryIsolation: the zoo profiles resolve through ByName and
// ZooApps but must never leak into the paper's 22-application registry —
// All()/QueueApps() drive the figure experiments.
func TestZooRegistryIsolation(t *testing.T) {
	zoo := ZooApps()
	if len(zoo) != 2 {
		t.Fatalf("%d zoo apps, want 2", len(zoo))
	}
	names := map[string]bool{}
	for _, b := range zoo {
		names[b.Name] = true
		if b.Suite != Synthetic {
			t.Errorf("%s: suite %v, want Synthetic", b.Name, b.Suite)
		}
		if b.Mem != nil {
			t.Errorf("%s: zoo profiles are queue-only, Mem must be nil", b.Name)
		}
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if got, err := ByName(b.Name); err != nil || got.Name != b.Name {
			t.Errorf("ByName(%s) = %v, %v", b.Name, got.Name, err)
		}
	}
	if !names["flutter"] || !names["squall"] {
		t.Errorf("zoo apps %v, want flutter and squall", names)
	}
	for _, b := range All() {
		if names[b.Name] {
			t.Errorf("zoo profile %s leaked into the main registry", b.Name)
		}
	}
	if len(All()) != 22 {
		t.Errorf("main registry has %d apps, want 22", len(All()))
	}
}

// TestZooProfileSeededDeterminism: equal seeds generate byte-identical
// instruction streams, different seeds diverge — the property every
// replay/race differential in internal/core builds on.
func TestZooProfileSeededDeterminism(t *testing.T) {
	const n = 20_000
	for _, b := range ZooApps() {
		s1 := NewInstrStream(b, 7)
		s2 := NewInstrStream(b, 7)
		s3 := NewInstrStream(b, 8)
		same, diff := true, false
		for i := 0; i < n; i++ {
			a, bb, c := s1.Next(), s2.Next(), s3.Next()
			if a != bb {
				same = false
			}
			if a != c {
				diff = true
			}
		}
		if !same {
			t.Errorf("%s: same seed produced different streams", b.Name)
		}
		if !diff {
			t.Errorf("%s: seeds 7 and 8 produced identical %d-instr streams", b.Name, n)
		}
	}
}

// TestZooProfilesActuallyPhase: both profiles must spend real time in each
// regime — a zoo profile stuck in one phase would stress nothing.
func TestZooProfilesActuallyPhase(t *testing.T) {
	const n = 600_000
	for _, b := range ZooApps() {
		s := NewInstrStream(b, 1998)
		alt := 0
		flips := 0
		prev := s.InAltPhase()
		for i := 0; i < n; i++ {
			s.Next()
			cur := s.InAltPhase()
			if cur {
				alt++
			}
			if cur != prev {
				flips++
			}
			prev = cur
		}
		frac := float64(alt) / float64(n)
		if frac < 0.2 || frac > 0.8 {
			t.Errorf("%s: alt-phase residency %.0f%%, want balanced", b.Name, 100*frac)
		}
		if flips < 4 {
			t.Errorf("%s: only %d phase flips in %d instrs", b.Name, flips, n)
		}
	}
}
