package workload

import (
	"math"
	"testing"
)

func TestAddressTraceDeterminism(t *testing.T) {
	b := MustByName("gcc")
	a1 := NewAddressTrace(b, 7)
	a2 := NewAddressTrace(b, 7)
	for i := 0; i < 10000; i++ {
		r1, r2 := a1.Next(), a2.Next()
		if r1 != r2 {
			t.Fatalf("traces diverged at ref %d: %+v vs %+v", i, r1, r2)
		}
	}
}

func TestAddressTraceSeedSensitivity(t *testing.T) {
	b := MustByName("gcc")
	a1 := NewAddressTrace(b, 7)
	a2 := NewAddressTrace(b, 8)
	same := 0
	for i := 0; i < 1000; i++ {
		if a1.Next() == a2.Next() {
			same++
		}
	}
	if same > 900 {
		t.Errorf("different seeds produced nearly identical traces (%d/1000 equal)", same)
	}
}

func TestReferenceSharesMatchWeights(t *testing.T) {
	// Region weights are reference shares: however many references a
	// random-region visit issues, the realized mix must match.
	b := Benchmark{
		Name: "sharecheck",
		Mem: &MemProfile{
			RefsPerInstr: 0.3,
			Regions: []Region{
				{Name: "a", Kind: RandomRegion, Bytes: 8192, Weight: 0.5, Run: 8},
				{Name: "b", Kind: RandomRegion, Bytes: 8192, Weight: 0.3, Run: 1},
				{Name: "c", Kind: StreamRegion, Bytes: 1 << 20, Weight: 0.2, StrideBytes: 8},
			},
		},
		ILP: MustByName("gcc").ILP,
	}
	tr := NewAddressTrace(b, 3)
	counts := map[int]int{}
	const n = 300000
	for i := 0; i < n; i++ {
		r := tr.Next()
		switch {
		case r.Addr < tr.bases[1]:
			counts[0]++
		case r.Addr < tr.bases[2]:
			counts[1]++
		default:
			counts[2]++
		}
	}
	for i, want := range []float64{0.5, 0.3, 0.2} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("region %d share %v, want %v", i, got, want)
		}
	}
}

func TestAddressesStayInsideRegions(t *testing.T) {
	for _, b := range CacheApps() {
		tr := NewAddressTrace(b, 5)
		var limits []struct{ lo, hi uint64 }
		for i, r := range b.Mem.Regions {
			limits = append(limits, struct{ lo, hi uint64 }{tr.bases[i], tr.bases[i] + uint64(r.Bytes)})
		}
		for i := 0; i < 20000; i++ {
			r := tr.Next()
			ok := false
			for _, lim := range limits {
				if r.Addr >= lim.lo && r.Addr < lim.hi {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("%s: address %#x outside all regions", b.Name, r.Addr)
			}
		}
	}
}

func TestWriteFraction(t *testing.T) {
	b := MustByName("swim")
	tr := NewAddressTrace(b, 9)
	writes := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if tr.Next().Write {
			writes++
		}
	}
	got := float64(writes) / n
	if math.Abs(got-b.Mem.WriteFrac) > 0.02 {
		t.Errorf("write fraction %v, want %v", got, b.Mem.WriteFrac)
	}
}

func TestStreamRegionSequential(t *testing.T) {
	b := Benchmark{
		Name: "streamonly",
		Mem: &MemProfile{
			RefsPerInstr: 0.3,
			Regions:      []Region{{Name: "s", Kind: StreamRegion, Bytes: 4096, Weight: 1, StrideBytes: 16}},
		},
		ILP: MustByName("gcc").ILP,
	}
	tr := NewAddressTrace(b, 1)
	prev := tr.Next().Addr
	for i := 1; i < 600; i++ {
		cur := tr.Next().Addr
		delta := int64(cur) - int64(prev)
		if delta != 16 && delta != -(4096-16) {
			t.Fatalf("stream stride %d at ref %d (want +16 or wrap)", delta, i)
		}
		prev = cur
	}
}

func TestLoopRegionCyclic(t *testing.T) {
	b := Benchmark{
		Name: "looponly",
		Mem: &MemProfile{
			RefsPerInstr: 0.3,
			Regions:      []Region{{Name: "l", Kind: LoopRegion, Bytes: 1024, Weight: 1, StrideBytes: 8}},
		},
		ILP: MustByName("gcc").ILP,
	}
	tr := NewAddressTrace(b, 1)
	first := tr.Next().Addr
	period := 1024 / 8
	for i := 1; i < period; i++ {
		tr.Next()
	}
	if again := tr.Next().Addr; again != first {
		t.Errorf("loop did not wrap to start: %#x vs %#x", again, first)
	}
}

func TestSpatialRunLength(t *testing.T) {
	// A random region with Run=4 issues 4 consecutive word addresses per
	// visit.
	b := Benchmark{
		Name: "runonly",
		Mem: &MemProfile{
			RefsPerInstr: 0.3,
			Regions:      []Region{{Name: "r", Kind: RandomRegion, Bytes: 1 << 20, Weight: 1, Run: 4}},
		},
		ILP: MustByName("gcc").ILP,
	}
	tr := NewAddressTrace(b, 2)
	sequentialSteps := 0
	prev := tr.Next().Addr
	const n = 40000
	for i := 1; i < n; i++ {
		cur := tr.Next().Addr
		if cur == prev+4 {
			sequentialSteps++
		}
		prev = cur
	}
	got := float64(sequentialSteps) / n
	if math.Abs(got-0.75) > 0.03 { // 3 of every 4 steps are +4 bytes
		t.Errorf("sequential step fraction %v, want ~0.75", got)
	}
}

func TestFill(t *testing.T) {
	b := MustByName("li")
	tr := NewAddressTrace(b, 4)
	buf := tr.Fill(nil, 128)
	if len(buf) != 128 {
		t.Fatalf("Fill returned %d refs", len(buf))
	}
	buf2 := tr.Fill(buf, 64)
	if len(buf2) != 64 {
		t.Fatalf("Fill reuse returned %d refs", len(buf2))
	}
}

func TestNewAddressTracePanicsWithoutMem(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for benchmark without memory profile")
		}
	}()
	NewAddressTrace(MustByName("go"), 1)
}
