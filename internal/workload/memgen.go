package workload

import (
	"capsim/internal/rng"
)

// Ref is a single data reference.
type Ref struct {
	Addr  uint64
	Write bool
}

// RefSource is anything that yields an infinite stream of data references.
// *AddressTrace (the generator) and internal/trace's replay cursors both
// implement it, so simulators can run indistinguishably from a live generator
// or from a shared materialized trace store.
type RefSource interface {
	Next() Ref
}

// AddressTrace generates the synthetic data-reference stream of a benchmark.
// It is an infinite deterministic stream; callers draw as many references as
// their budget allows (the paper uses the first 100 M references of each
// application; this reproduction defaults to 1 M, which is past the point
// where the profiles' miss-rate curves are stationary).
type AddressTrace struct {
	prof    MemProfile
	src     *rng.Source
	weights []float64
	bases   []uint64 // region base addresses, spaced apart

	// current spatial run state
	region  int
	runLeft int
	cursor  uint64 // next address within the run

	// streaming state per region
	streamPos []uint64
}

// wordBytes is the reference granularity (a 4-byte word, matching the
// 32-bit-era benchmarks).
const wordBytes = 4

// NewAddressTrace creates the trace generator for benchmark b with the given
// seed. It panics if b has no memory profile (go) or the profile is invalid.
func NewAddressTrace(b Benchmark, seed uint64) *AddressTrace {
	if b.Mem == nil {
		panic("workload: " + b.Name + " has no memory profile")
	}
	if err := b.Mem.Validate(); err != nil {
		panic(err)
	}
	t := &AddressTrace{
		prof:      *b.Mem,
		src:       rng.New(rng.DeriveSeed(seed, b.Name+"/mem")),
		weights:   make([]float64, len(b.Mem.Regions)),
		bases:     make([]uint64, len(b.Mem.Regions)),
		streamPos: make([]uint64, len(b.Mem.Regions)),
	}
	// Lay regions out in a sparse address space so they never alias.
	var base uint64 = 1 << 20
	for i, r := range b.Mem.Regions {
		// Region weights are *reference* shares, but the generator picks
		// regions per *visit* and a random-region visit issues Run
		// references; divide so the realized reference mix matches.
		refsPerVisit := 1.0
		if r.Kind == RandomRegion {
			refsPerVisit = float64(r.Run)
		}
		t.weights[i] = r.Weight / refsPerVisit
		t.bases[i] = base
		// Round the footprint up and leave a guard gap.
		base += uint64(r.Bytes) + 1<<20
		base = (base + (1 << 16) - 1) &^ ((1 << 16) - 1)
	}
	return t
}

// Next returns the next reference in the stream.
func (t *AddressTrace) Next() Ref {
	if t.runLeft == 0 {
		t.startRun()
	}
	addr := t.cursor
	t.cursor += wordBytes
	t.runLeft--
	// Keep runs inside their region.
	r := t.prof.Regions[t.region]
	if t.cursor >= t.bases[t.region]+uint64(r.Bytes) {
		t.runLeft = 0
	}
	return Ref{Addr: addr, Write: t.src.Bool(t.prof.WriteFrac)}
}

// Fill writes n references into out and returns the slice. It reuses out's
// backing array whenever cap(out) >= n and allocates only otherwise, so a
// caller that drains the trace in fixed-size batches should pass the returned
// slice back in:
//
//	var buf []Ref
//	for ... {
//		buf = tr.Fill(buf, batch) // allocates on the first call only
//	}
//
// Passing nil every call defeats the reuse and pays one allocation per batch
// (BenchmarkAddressTraceGen tracks the difference).
func (t *AddressTrace) Fill(out []Ref, n int) []Ref {
	if cap(out) < n {
		out = make([]Ref, n)
	}
	out = out[:n]
	for i := range out {
		out[i] = t.Next()
	}
	return out
}

// startRun picks the next region and positions the cursor.
func (t *AddressTrace) startRun() {
	i := t.src.Weighted(t.weights)
	t.region = i
	r := t.prof.Regions[i]
	switch r.Kind {
	case StreamRegion, LoopRegion:
		// Advance the stream by its stride; one reference per visit
		// keeps the stream's share of references equal to its weight.
		pos := t.streamPos[i]
		t.cursor = t.bases[i] + pos
		t.runLeft = 1
		pos += uint64(r.StrideBytes)
		if pos >= uint64(r.Bytes) {
			pos = 0
		}
		t.streamPos[i] = pos
	default: // RandomRegion
		words := r.Bytes / wordBytes
		if words < 1 {
			words = 1
		}
		start := uint64(t.src.Intn(int(words))) * wordBytes
		t.cursor = t.bases[i] + start
		t.runLeft = r.Run
	}
}
